// Deterministic, splittable pseudo-random number generation.
//
// Tests, workload generators, and latency models all need reproducible
// randomness that can be forked per process/thread without coordination.
// SplitMix64 seeds xoshiro256**; both are tiny, fast, and public domain
// algorithms (Blackman & Vigna).

#pragma once

#include <cstdint>

namespace mc {

/// SplitMix64 — used to expand a single seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the workhorse generator.  Satisfies the essentials of
/// UniformRandomBitGenerator so it composes with <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with probability p of true.
  bool chance(double p);

  /// Derive an independent child generator (for per-thread streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace mc
