#include "common/bit_matrix.h"

#include <bit>

namespace mc {

std::size_t BitMatrix::edge_count() const {
  std::size_t n = 0;
  for (const auto w : bits_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

void BitMatrix::merge(const BitMatrix& other) {
  MC_CHECK(n_ == other.n_);
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
}

void BitMatrix::or_row_into(std::size_t src, std::size_t dst) {
  const std::uint64_t* s = &bits_[src * row_words_];
  std::uint64_t* d = &bits_[dst * row_words_];
  for (std::size_t w = 0; w < row_words_; ++w) d[w] |= s[w];
}

void BitMatrix::close_transitively() {
  // Row-oriented Warshall: for each intermediate k, every row i that can
  // reach k absorbs row k.  O(n^2) row-OR operations of n/64 words.
  for (std::size_t k = 0; k < n_; ++k) {
    for (std::size_t i = 0; i < n_; ++i) {
      if (i != k && get(i, k)) or_row_into(k, i);
    }
  }
}

BitMatrix BitMatrix::reduced() const {
  // In a DAG, edge (i,j) is redundant iff some direct successor k != j of i
  // reaches j in the closure.
  MC_CHECK_MSG(!has_cycle(), "transitive reduction requires a DAG");
  const BitMatrix closure = closed();
  BitMatrix out = *this;
  for (std::size_t i = 0; i < n_; ++i) {
    for (const std::size_t k : successors(i)) {
      for (const std::size_t j : successors(i)) {
        if (j != k && closure.get(k, j)) out.clear(i, j);
      }
    }
  }
  return out;
}

bool BitMatrix::has_cycle() const { return !topological_order().has_value(); }

std::optional<std::vector<std::size_t>> BitMatrix::topological_order() const {
  std::vector<std::size_t> indegree(n_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (const std::size_t j : successors(i)) ++indegree[j];
  }
  // Kahn's algorithm with a min-index frontier for determinism.  A sorted
  // vector used as a monotone bag is fine at history scale.
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < n_; ++i) {
    if (indegree[i] == 0) frontier.push_back(i);
  }
  std::vector<std::size_t> order;
  order.reserve(n_);
  while (!frontier.empty()) {
    // Extract the minimum index.
    std::size_t best = 0;
    for (std::size_t i = 1; i < frontier.size(); ++i) {
      if (frontier[i] < frontier[best]) best = i;
    }
    const std::size_t v = frontier[best];
    frontier[best] = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (const std::size_t j : successors(v)) {
      if (--indegree[j] == 0) frontier.push_back(j);
    }
  }
  if (order.size() != n_) return std::nullopt;
  return order;
}

void BitMatrix::mask(const std::vector<bool>& keep) {
  MC_CHECK(keep.size() == n_);
  std::vector<std::uint64_t> col_mask(row_words_, 0);
  for (std::size_t j = 0; j < n_; ++j) {
    if (keep[j]) col_mask[j / 64] |= (std::uint64_t{1} << (j % 64));
  }
  for (std::size_t i = 0; i < n_; ++i) {
    std::uint64_t* row = &bits_[i * row_words_];
    if (!keep[i]) {
      for (std::size_t w = 0; w < row_words_; ++w) row[w] = 0;
    } else {
      for (std::size_t w = 0; w < row_words_; ++w) row[w] &= col_mask[w];
    }
  }
}

std::vector<std::size_t> BitMatrix::successors(std::size_t i) const {
  MC_CHECK(i < n_);
  std::vector<std::size_t> out;
  const std::uint64_t* row = &bits_[i * row_words_];
  for (std::size_t w = 0; w < row_words_; ++w) {
    std::uint64_t word = row[w];
    while (word) {
      const int b = std::countr_zero(word);
      out.push_back(w * 64 + static_cast<std::size_t>(b));
      word &= word - 1;
    }
  }
  return out;
}

}  // namespace mc
