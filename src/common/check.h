// Lightweight contract checking used across the library.
//
// MC_CHECK is always on (these are distributed-protocol invariants whose
// violation means a consistency bug, not a recoverable condition), and
// terminates with a message identifying the failed expectation.

#pragma once

#include <cstdio>
#include <cstdlib>

namespace mc::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "MC_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace mc::detail

#define MC_CHECK(expr)                                              \
  do {                                                              \
    if (!(expr)) ::mc::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MC_CHECK_MSG(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) ::mc::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)
