#include "common/vector_clock.h"

#include <algorithm>
#include <numeric>

namespace mc {

void VectorClock::merge(const VectorClock& other) {
  MC_CHECK(c_.size() == other.c_.size());
  for (std::size_t i = 0; i < c_.size(); ++i) {
    c_[i] = std::max(c_[i], other.c_[i]);
  }
}

ClockOrder VectorClock::compare(const VectorClock& other) const {
  MC_CHECK(c_.size() == other.c_.size());
  bool le = true;
  bool ge = true;
  for (std::size_t i = 0; i < c_.size(); ++i) {
    if (c_[i] < other.c_[i]) ge = false;
    if (c_[i] > other.c_[i]) le = false;
  }
  if (le && ge) return ClockOrder::kEqual;
  if (le) return ClockOrder::kBefore;
  if (ge) return ClockOrder::kAfter;
  return ClockOrder::kConcurrent;
}

bool VectorClock::ready_after(const VectorClock& applied, ProcId writer,
                              bool allow_gap) const {
  MC_CHECK(c_.size() == applied.c_.size());
  MC_CHECK(writer < c_.size());
  if (allow_gap ? c_[writer] <= applied.c_[writer]
                : c_[writer] != applied.c_[writer] + 1) {
    return false;
  }
  for (std::size_t k = 0; k < c_.size(); ++k) {
    if (k == writer) continue;
    if (c_[k] > applied.c_[k]) return false;
  }
  return true;
}

bool VectorClock::dominates(const VectorClock& other) const {
  MC_CHECK(c_.size() == other.c_.size());
  for (std::size_t i = 0; i < c_.size(); ++i) {
    if (c_[i] < other.c_[i]) return false;
  }
  return true;
}

std::uint64_t VectorClock::total() const {
  return std::accumulate(c_.begin(), c_.end(), std::uint64_t{0});
}

std::string VectorClock::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < c_.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(c_[i]);
  }
  out += ']';
  return out;
}

}  // namespace mc
