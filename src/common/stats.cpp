#include "common/stats.h"

#include <algorithm>
#include <bit>

namespace mc {

int LatencyHistogram::bucket_of(std::uint64_t ns) {
  if (ns == 0) return 0;
  const int lg = 63 - std::countl_zero(ns);
  return lg >= kBuckets ? kBuckets - 1 : lg;
}

void LatencyHistogram::record_ns(std::uint64_t ns) {
  buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < ns &&
         !max_.compare_exchange_weak(prev, ns, std::memory_order_relaxed)) {
  }
}

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

double LatencyHistogram::mean_ns() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum_ns()) / static_cast<double>(n);
}

std::uint64_t LatencyHistogram::quantile_ns(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(n - 1)) + 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) return i >= 63 ? ~std::uint64_t{0} : (std::uint64_t{2} << i);
  }
  return max_ns();
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  std::uint64_t omax = other.max_.load(std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < omax &&
         !max_.compare_exchange_weak(prev, omax, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsSnapshot MetricsSnapshot::since(const MetricsSnapshot& base) const {
  MetricsSnapshot out;
  for (const auto& [k, v] : values) {
    const std::uint64_t b = base.get(k);
    out.values[k] = v >= b ? v - b : 0;
  }
  return out;
}

void MetricsSnapshot::add_histogram(const std::string& base, const LatencyHistogram& h) {
  const std::uint64_t n = h.count();
  if (n == 0) return;
  const std::uint64_t max = h.max_ns();
  values[base + ".count"] = n;
  values[base + ".sum"] = h.sum_ns();
  values[base + ".mean"] = static_cast<std::uint64_t>(h.mean_ns() + 0.5);
  values[base + ".p50"] = std::min(h.quantile_ns(0.5), max);
  values[base + ".p90"] = std::min(h.quantile_ns(0.9), max);
  values[base + ".p99"] = std::min(h.quantile_ns(0.99), max);
  values[base + ".max"] = max;
}

std::string MetricsSnapshot::to_string() const {
  std::string out;
  for (const auto& [k, v] : values) {
    if (!out.empty()) out += ' ';
    out += k;
    out += '=';
    out += std::to_string(v);
  }
  return out;
}

}  // namespace mc
