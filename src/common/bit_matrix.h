// Dense boolean relation over {0..n-1} with the graph algorithms the history
// checkers need: reachability closure, transitive reduction, cycle
// detection, and topological order.
//
// Histories in this reproduction are at most a few thousand operations, so a
// word-packed adjacency matrix with row-OR closure (Warshall by rows) is
// both the simplest and the fastest representation.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.h"

namespace mc {

class BitMatrix {
 public:
  BitMatrix() = default;
  explicit BitMatrix(std::size_t n) : n_(n), row_words_((n + 63) / 64), bits_(n_ * row_words_, 0) {}

  [[nodiscard]] std::size_t size() const { return n_; }

  void set(std::size_t i, std::size_t j) {
    MC_CHECK(i < n_ && j < n_);
    bits_[i * row_words_ + j / 64] |= (std::uint64_t{1} << (j % 64));
  }

  void clear(std::size_t i, std::size_t j) {
    MC_CHECK(i < n_ && j < n_);
    bits_[i * row_words_ + j / 64] &= ~(std::uint64_t{1} << (j % 64));
  }

  [[nodiscard]] bool get(std::size_t i, std::size_t j) const {
    MC_CHECK(i < n_ && j < n_);
    return (bits_[i * row_words_ + j / 64] >> (j % 64)) & 1u;
  }

  /// Number of set entries.
  [[nodiscard]] std::size_t edge_count() const;

  /// Union with another relation of the same size.
  void merge(const BitMatrix& other);

  /// Reflexive-free transitive closure, in place.  O(n^2 * n/64).
  void close_transitively();

  /// Returns the closure as a copy, leaving *this untouched.
  [[nodiscard]] BitMatrix closed() const {
    BitMatrix c = *this;
    c.close_transitively();
    return c;
  }

  /// Transitive reduction of a DAG: removes every edge (i,j) for which a
  /// longer path i -> k -> ... -> j exists.  Precondition: acyclic.
  /// Returns the reduced relation (the "PRAM order" construction in
  /// Definition 3 removes transitive edges this way).
  [[nodiscard]] BitMatrix reduced() const;

  /// True iff the relation (viewed as a digraph) has a directed cycle.
  [[nodiscard]] bool has_cycle() const;

  /// Topological order of the DAG; nullopt if cyclic.  Ties broken by the
  /// smallest vertex index, which makes the order deterministic.
  [[nodiscard]] std::optional<std::vector<std::size_t>> topological_order() const;

  /// All j with edge (i, j).
  [[nodiscard]] std::vector<std::size_t> successors(std::size_t i) const;

  /// Project the relation onto a subset of vertices: every edge with an
  /// endpoint outside `keep` is cleared.  `keep.size()` must equal size().
  void mask(const std::vector<bool>& keep);

  friend bool operator==(const BitMatrix&, const BitMatrix&) = default;

 private:
  void or_row_into(std::size_t src, std::size_t dst);

  std::size_t n_ = 0;
  std::size_t row_words_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace mc
