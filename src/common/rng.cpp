#include "common/rng.h"

#include <bit>

namespace mc {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // xoshiro's state must not be all zero; SplitMix64 cannot produce four
  // consecutive zeros from any seed, so no further handling is required.
}

std::uint64_t Rng::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded generation, without the rejection
  // loop: the tiny modulo bias (< 2^-64 * bound) is irrelevant for workload
  // generation and latency jitter.
  const unsigned __int128 m = static_cast<unsigned __int128>(next()) * bound;
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next()); }

}  // namespace mc
