// Instrumentation primitives used by the fabric, the DSM runtime, and the
// benchmark harnesses.
//
// The paper's performance arguments (Sections 6–7) are about *protocol
// cost*: how many messages and how much blocking each consistency level and
// propagation policy incurs.  Counters and latency histograms make those
// costs first-class, machine-independent outputs.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mc {

/// A monotone, thread-safe event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Fixed-layout log-scale latency histogram (nanoseconds).  Thread-safe,
/// lock-free recording; quantile extraction is approximate to bucket width.
class LatencyHistogram {
 public:
  void record(std::chrono::nanoseconds d) { record_ns(static_cast<std::uint64_t>(d.count())); }
  void record_ns(std::uint64_t ns);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::uint64_t sum_ns() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double mean_ns() const;
  /// q in [0,1] (clamped); returns the upper edge of the bucket containing
  /// quantile q.  An empty histogram (count() == 0) returns 0 for every q —
  /// there is no sample to bound, and 0 is unambiguous because any recorded
  /// sample lands in a bucket with a positive upper edge.  Flattened
  /// snapshots rely on this contract by emitting no keys at all for empty
  /// histograms (add_histogram below).
  [[nodiscard]] std::uint64_t quantile_ns(double q) const;
  [[nodiscard]] std::uint64_t max_ns() const { return max_.load(std::memory_order_relaxed); }

  void reset();

  /// Fold another histogram's samples into this one (bucket-wise sums).
  void merge(const LatencyHistogram& other);

  static constexpr int kBuckets = 64;

 private:
  static int bucket_of(std::uint64_t ns);
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// A named snapshot of metric values, used by benches to print paper-style
/// result rows and diff runs against each other.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> values;

  [[nodiscard]] std::uint64_t get(const std::string& k) const {
    auto it = values.find(k);
    return it == values.end() ? 0 : it->second;
  }

  /// Component-wise difference (this - base), clamped at zero.
  [[nodiscard]] MetricsSnapshot since(const MetricsSnapshot& base) const;

  /// Flatten a histogram into the snapshot as summary keys
  /// `<base>.{count,sum,mean,p50,p90,p99,max}` (see docs/METRICS.md).
  /// Quantiles are clamped to the observed maximum.  Histograms with no
  /// samples emit nothing.
  void add_histogram(const std::string& base, const LatencyHistogram& h);

  [[nodiscard]] std::string to_string() const;
};

/// Wall-clock stopwatch used in harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void restart() { start_ = clock::now(); }
  [[nodiscard]] std::chrono::nanoseconds elapsed() const { return clock::now() - start_; }
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(elapsed()).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mc
