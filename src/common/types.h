// Fundamental identifier and value types shared by every mixed-consistency
// module.
//
// The paper (Section 3) models a program as a fixed set of processes
// p_1..p_n issuing operations on memory locations and on a disjoint set of
// synchronization objects (locks, barriers).  We mirror that structure with
// small strong-ish typedefs: distinct enum-class id spaces would be heavier
// than the codebase needs, but we keep each id in its own named alias and
// never mix them implicitly in interfaces.

#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <string>

namespace mc {

/// Index of a process (0-based).  The paper's p_i.
using ProcId = std::uint32_t;

/// Index of a shared memory location (0-based).  The paper's x, y, z.
using VarId = std::uint32_t;

/// Index of a read/write lock object, disjoint from memory locations.
using LockId = std::uint32_t;

/// Index of a barrier object.  The default whole-program barrier is 0.
using BarrierId = std::uint32_t;

/// Raw 64-bit value stored in a memory location.  Applications that operate
/// on doubles use the bit-cast helpers below; the memory system itself never
/// interprets values.
using Value = std::uint64_t;

/// Per-process monotone sequence number of an issued operation.
using SeqNo = std::uint64_t;

inline constexpr ProcId kNoProc = std::numeric_limits<ProcId>::max();
inline constexpr VarId kNoVar = std::numeric_limits<VarId>::max();

/// Globally unique identity of a write operation: (issuing process, per-
/// process write sequence).  The paper assumes all written values are
/// distinct so that the reads-from relation is well defined; real programs
/// write duplicates, so the runtime tags every write with a WriteId instead
/// and the history checkers use it to derive reads-from exactly.
struct WriteId {
  ProcId proc = kNoProc;
  SeqNo seq = 0;

  friend bool operator==(const WriteId&, const WriteId&) = default;
  friend auto operator<=>(const WriteId&, const WriteId&) = default;

  [[nodiscard]] bool valid() const { return proc != kNoProc; }
};

/// The distinguished "initial value" pseudo-write: every location starts as
/// if written once, before the computation, by no process.
inline constexpr WriteId kInitialWrite{};

/// Reads are labeled per-operation, as in Definition 4 of the paper.
enum class ReadMode : std::uint8_t {
  kPram,    ///< Definition 3 — per-sender FIFO visibility.
  kCausal,  ///< Definition 2 — causality-consistent visibility.
};

[[nodiscard]] inline const char* to_string(ReadMode m) {
  return m == ReadMode::kPram ? "pram" : "causal";
}

/// Reinterpret a double as a storable Value and back.  Used by the numeric
/// applications (Section 5): the DSM stores opaque 64-bit words.
[[nodiscard]] inline Value value_of(double d) { return std::bit_cast<Value>(d); }
[[nodiscard]] inline double double_of(Value v) { return std::bit_cast<double>(v); }
[[nodiscard]] inline Value value_of(std::int64_t i) { return std::bit_cast<Value>(i); }
[[nodiscard]] inline std::int64_t int_of(Value v) { return std::bit_cast<std::int64_t>(v); }

}  // namespace mc

template <>
struct std::hash<mc::WriteId> {
  std::size_t operator()(const mc::WriteId& w) const noexcept {
    return std::hash<std::uint64_t>{}((std::uint64_t{w.proc} << 40) ^ w.seq);
  }
};
