// Vector clocks, the causality metadata of the Section 6 implementation.
//
// Each process maintains a vector timestamp that counts, per process, how
// many write operations it causally depends on.  Update messages carry the
// writer's timestamp; a receiver may apply an update to its *causal* view
// only once the update is causally ready (see `ready_after`).

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace mc {

/// Partial-order comparison outcomes for two vector clocks.
enum class ClockOrder : std::uint8_t { kEqual, kBefore, kAfter, kConcurrent };

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t n) : c_(n, 0) {}
  VectorClock(std::initializer_list<std::uint64_t> init) : c_(init) {}

  [[nodiscard]] std::size_t size() const { return c_.size(); }
  [[nodiscard]] bool empty() const { return c_.empty(); }

  [[nodiscard]] std::uint64_t operator[](ProcId p) const {
    MC_CHECK(p < c_.size());
    return c_[p];
  }

  /// Record one more local event of process `p` (a write in our protocol).
  void tick(ProcId p) {
    MC_CHECK(p < c_.size());
    ++c_[p];
  }

  void set(ProcId p, std::uint64_t v) {
    MC_CHECK(p < c_.size());
    c_[p] = v;
  }

  /// Component-wise maximum: the causal join used when a message's
  /// dependencies are absorbed into the local clock.
  void merge(const VectorClock& other);

  /// Compare under the standard vector-clock partial order.
  [[nodiscard]] ClockOrder compare(const VectorClock& other) const;

  [[nodiscard]] bool happens_before(const VectorClock& other) const {
    return compare(other) == ClockOrder::kBefore;
  }
  [[nodiscard]] bool concurrent_with(const VectorClock& other) const {
    return compare(other) == ClockOrder::kConcurrent;
  }

  /// Causal-delivery readiness test: an update written by `writer` carrying
  /// timestamp `*this` (the clock *after* the write ticked the writer's
  /// component) may be applied at a replica whose causal view has applied
  /// clock `applied` iff
  ///   (a) it is the next write of `writer`:  (*this)[writer] == applied[writer] + 1
  ///   (b) all other dependencies are in:     (*this)[k] <= applied[k], k != writer
  /// With `allow_gap`, condition (a) relaxes to (*this)[writer] >
  /// applied[writer]: coalesced batches (dsm/batch.h) legitimately skip
  /// writer sequence numbers whose updates were collapsed away, but still
  /// arrive FIFO per channel, so "strictly newer" is the right test.
  [[nodiscard]] bool ready_after(const VectorClock& applied, ProcId writer,
                                 bool allow_gap = false) const;

  /// True when every component of *this is >= the corresponding component
  /// of `other` (the "applied clock has reached the floor" test).
  [[nodiscard]] bool dominates(const VectorClock& other) const;

  /// `dominates`, restricted to the components whose bit is set in
  /// `alive_mask`.  Elastic membership (dsm/view.h) fences waits to the
  /// live view: a dependency on a crashed process that can never be
  /// satisfied is waived instead of wedging the reader.  Components at or
  /// beyond bit 64 are always checked (membership masks cap at 64 procs).
  [[nodiscard]] bool dominates_masked(const VectorClock& other,
                                      std::uint64_t alive_mask) const {
    MC_CHECK(c_.size() == other.c_.size());
    for (std::size_t k = 0; k < c_.size(); ++k) {
      if (k < 64 && ((alive_mask >> k) & 1) == 0) continue;
      if (c_[k] < other.c_[k]) return false;
    }
    return true;
  }

  /// `ready_after`, restricted to the live view: dependency components of
  /// crashed processes are waived (their missing updates will never arrive;
  /// re-mastering re-seeds surviving state instead).  The writer's own
  /// FIFO condition is never waived — a dead writer's queue is discarded
  /// wholesale, not drained.
  [[nodiscard]] bool ready_after_masked(const VectorClock& applied,
                                        ProcId writer, bool allow_gap,
                                        std::uint64_t alive_mask) const {
    MC_CHECK(c_.size() == applied.c_.size());
    MC_CHECK(writer < c_.size());
    if (allow_gap ? c_[writer] <= applied.c_[writer]
                  : c_[writer] != applied.c_[writer] + 1) {
      return false;
    }
    for (std::size_t k = 0; k < c_.size(); ++k) {
      if (k == writer) continue;
      if (k < 64 && ((alive_mask >> k) & 1) == 0) continue;
      if (c_[k] > applied.c_[k]) return false;
    }
    return true;
  }

  /// Raise component p to at least v.
  void raise(ProcId p, std::uint64_t v) {
    MC_CHECK(p < c_.size());
    if (c_[p] < v) c_[p] = v;
  }

  /// Sum of all components — a convenient total-progress measure.
  [[nodiscard]] std::uint64_t total() const;

  [[nodiscard]] std::span<const std::uint64_t> components() const { return c_; }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

 private:
  std::vector<std::uint64_t> c_;
};

}  // namespace mc
