#include "apps/em_field.h"

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "dsm/system.h"

namespace mc::apps {

namespace {

struct Strip {
  std::size_t begin;
  std::size_t end;
};

Strip strip_of(std::size_t m, std::size_t procs, std::size_t p) {
  return {p * m / procs, (p + 1) * m / procs};
}

/// E-phase arithmetic for nodes [s.begin, s.end): E[i] += cE*(H[i]-H[i-1]).
/// `h(i)` must provide H for i in [s.begin-1, s.end).
template <typename ReadH>
void update_e(const EmProblem& prob, const Strip& s, std::vector<double>& e, ReadH&& h) {
  for (std::size_t i = std::max<std::size_t>(s.begin, 1); i < s.end; ++i) {
    e[i] += prob.c_e * (h(i) - h(i - 1));
  }
}

/// H-phase arithmetic: H[i] += cH*(E[i+1]-E[i]) for i < m-1.
template <typename ReadE>
void update_h(const EmProblem& prob, const Strip& s, std::size_t m, std::vector<double>& h,
              ReadE&& e) {
  for (std::size_t i = s.begin; i < std::min(s.end, m - 1); ++i) {
    h[i] += prob.c_h * (e(i + 1) - e(i));
  }
}

}  // namespace

std::vector<double> EmProblem::initial_e() const {
  std::vector<double> e(m, 0.0);
  const double center = static_cast<double>(m) / 2.0;
  const double width = static_cast<double>(m) / 8.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double d = (static_cast<double>(i) - center) / width;
    if (std::abs(d) < 1.0) e[i] = 0.5 * (1.0 + std::cos(std::numbers::pi * d));
  }
  return e;
}

EmResult em_reference(const EmProblem& prob) {
  EmResult out;
  Stopwatch clock;
  out.e = prob.initial_e();
  out.h.assign(prob.m, 0.0);
  const Strip whole{0, prob.m};
  for (std::size_t step = 0; step < prob.steps; ++step) {
    std::vector<double> h_prev = out.h;
    update_e(prob, whole, out.e, [&](std::size_t i) { return h_prev[i]; });
    std::vector<double> e_prev = out.e;
    update_h(prob, whole, prob.m, out.h, [&](std::size_t i) { return e_prev[i]; });
  }
  out.elapsed_ms = clock.elapsed_ms();
  return out;
}

EmResult em_mixed(const EmProblem& prob, std::size_t procs, ReadMode mode,
                  EmSharing sharing, net::LatencyModel latency, std::uint64_t seed,
                  bool pattern_optimized, const std::optional<net::FaultPlan>& faults,
                  bool reliable, const std::optional<dsm::BatchingConfig>& batching,
                  const std::optional<dsm::DirectoryConfig>& directory) {
  MC_CHECK(procs >= 1 && procs <= prob.m);
  MC_CHECK_MSG(!pattern_optimized ||
                   (sharing == EmSharing::kGhost && mode == ReadMode::kPram),
               "pattern optimization requires ghost sharing and PRAM reads");
  MC_CHECK_MSG(!(pattern_optimized && directory.has_value()),
               "the directory supersedes static subscriber lists; "
               "pick one sharing optimization");
  dsm::Config cfg;
  cfg.num_procs = procs;
  cfg.latency = latency;
  cfg.seed = seed;
  cfg.faults = faults;
  cfg.reliable = reliable;
  cfg.batching = batching;
  cfg.directory = directory;

  EmResult out;
  out.e.assign(prob.m, 0.0);
  out.h.assign(prob.m, 0.0);

  if (sharing == EmSharing::kFullGrid) {
    // Every node lives in DSM: E at [0,m), H at [m,2m).
    cfg.num_vars = 2 * prob.m;
    dsm::MixedSystem sys(cfg);
    const auto ev = [](std::size_t i) { return static_cast<VarId>(i); };
    const auto hv = [&](std::size_t i) { return static_cast<VarId>(prob.m + i); };

    Stopwatch clock;
    sys.run([&](dsm::Node& n, ProcId p) {
      const Strip s = strip_of(prob.m, procs, p);
      // Initialize own strip, then rendezvous so phase 0 sees a complete
      // initial field.
      const std::vector<double> e0 = prob.initial_e();
      for (std::size_t i = s.begin; i < s.end; ++i) n.write_double(ev(i), e0[i]);
      n.barrier();

      std::vector<double> e(prob.m, 0.0);
      std::vector<double> h(prob.m, 0.0);
      for (std::size_t i = s.begin; i < s.end; ++i) e[i] = e0[i];

      for (std::size_t step = 0; step < prob.steps; ++step) {
        update_e(prob, s, e, [&](std::size_t i) { return n.read_double(hv(i), mode); });
        for (std::size_t i = s.begin; i < s.end; ++i) n.write_double(ev(i), e[i]);
        n.barrier();
        update_h(prob, s, prob.m, h,
                 [&](std::size_t i) { return n.read_double(ev(i), mode); });
        for (std::size_t i = s.begin; i < s.end; ++i) n.write_double(hv(i), h[i]);
        n.barrier();
      }
    });
    out.elapsed_ms = clock.elapsed_ms();

    for (std::size_t i = 0; i < prob.m; ++i) {
      out.e[i] = sys.node(0).read_double(ev(i), ReadMode::kPram);
      out.h[i] = sys.node(0).read_double(hv(i), ReadMode::kPram);
    }
    out.metrics = sys.metrics();
    return out;
  }

  // Ghost-copy sharing: only strip-adjoining nodes cross process
  // boundaries.  Process p publishes its first E node (read by p-1's
  // H phase) and its last H node (read by p+1's E phase).
  cfg.num_vars = 2 * procs;
  const auto first_e = [](ProcId p) { return static_cast<VarId>(p); };
  const auto last_h = [&](ProcId p) { return static_cast<VarId>(procs + p); };
  if (pattern_optimized) {
    // Section 6: elide timestamps (the program is PRAM-consistent) and
    // multicast each boundary value only to the neighbour that reads it.
    cfg.omit_timestamps = true;
    for (ProcId p = 0; p < procs; ++p) {
      // Edge strips publish values nobody reads: empty subscriber lists
      // suppress those messages entirely.
      cfg.update_subscribers[first_e(p)] =
          p > 0 ? std::vector<ProcId>{static_cast<ProcId>(p - 1)} : std::vector<ProcId>{};
      cfg.update_subscribers[last_h(p)] =
          p + 1 < procs ? std::vector<ProcId>{static_cast<ProcId>(p + 1)}
                        : std::vector<ProcId>{};
    }
  }
  dsm::MixedSystem sys(cfg);

  Stopwatch clock;
  sys.run([&](dsm::Node& n, ProcId p) {
    const Strip s = strip_of(prob.m, procs, p);
    const std::vector<double> e0 = prob.initial_e();
    std::vector<double> e(prob.m, 0.0);
    std::vector<double> h(prob.m, 0.0);
    for (std::size_t i = s.begin; i < s.end; ++i) e[i] = e0[i];
    n.write_double(first_e(p), e[s.begin]);
    n.write_double(last_h(p), 0.0);
    n.barrier();

    for (std::size_t step = 0; step < prob.steps; ++step) {
      if (p > 0) h[s.begin - 1] = n.read_double(last_h(p - 1), mode);
      update_e(prob, s, e, [&](std::size_t i) { return h[i]; });
      n.write_double(first_e(p), e[s.begin]);
      n.barrier();
      if (p + 1 < procs) e[s.end] = n.read_double(first_e(p + 1), mode);
      update_h(prob, s, prob.m, h, [&](std::size_t i) { return e[i]; });
      n.write_double(last_h(p), h[s.end - 1]);
      n.barrier();
    }

    for (std::size_t i = s.begin; i < s.end; ++i) {
      out.e[i] = e[i];
      out.h[i] = h[i];
    }
  });
  out.elapsed_ms = clock.elapsed_ms();
  out.metrics = sys.metrics();
  return out;
}

EmResult em_sc(const EmProblem& prob, std::size_t procs, net::LatencyModel latency,
               std::uint64_t seed) {
  MC_CHECK(procs >= 1 && procs <= prob.m);
  baseline::ScConfig cfg;
  cfg.num_procs = procs;
  cfg.num_vars = 2 * procs;
  cfg.latency = latency;
  cfg.seed = seed;
  baseline::ScSystem sys(cfg);
  const auto first_e = [](ProcId p) { return static_cast<VarId>(p); };
  const auto last_h = [&](ProcId p) { return static_cast<VarId>(procs + p); };

  EmResult out;
  out.e.assign(prob.m, 0.0);
  out.h.assign(prob.m, 0.0);

  Stopwatch clock;
  sys.run([&](baseline::ScNode& n, ProcId p) {
    const Strip s = strip_of(prob.m, procs, p);
    const std::vector<double> e0 = prob.initial_e();
    std::vector<double> e(prob.m, 0.0);
    std::vector<double> h(prob.m, 0.0);
    for (std::size_t i = s.begin; i < s.end; ++i) e[i] = e0[i];
    n.write_double(first_e(p), e[s.begin]);
    n.write_double(last_h(p), 0.0);
    n.barrier();

    for (std::size_t step = 0; step < prob.steps; ++step) {
      if (p > 0) h[s.begin - 1] = n.read_double(last_h(p - 1));
      update_e(prob, s, e, [&](std::size_t i) { return h[i]; });
      n.write_double(first_e(p), e[s.begin]);
      n.barrier();
      if (p + 1 < procs) e[s.end] = n.read_double(first_e(p + 1));
      update_h(prob, s, prob.m, h, [&](std::size_t i) { return e[i]; });
      n.write_double(last_h(p), h[s.end - 1]);
      n.barrier();
    }

    for (std::size_t i = s.begin; i < s.end; ++i) {
      out.e[i] = e[i];
      out.h[i] = h[i];
    }
  });
  out.elapsed_ms = clock.elapsed_ms();
  out.metrics = sys.metrics();
  return out;
}

}  // namespace mc::apps
