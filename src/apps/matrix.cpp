#include "apps/matrix.h"

#include <cmath>

#include "common/check.h"

namespace mc::apps {

LinearSystem LinearSystem::random(std::size_t n, std::uint64_t seed) {
  MC_CHECK(n > 0);
  LinearSystem sys;
  sys.n = n;
  sys.a.resize(n * n);
  sys.b.resize(n);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    double off_diag = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double v = rng.uniform(-1.0, 1.0);
      sys.a[i * n + j] = v;
      off_diag += std::abs(v);
    }
    sys.a[i * n + i] = off_diag + rng.uniform(1.0, 2.0);  // strict dominance
    sys.b[i] = rng.uniform(-10.0, 10.0);
  }
  return sys;
}

double residual_inf(const LinearSystem& sys, const std::vector<double>& x) {
  double worst = 0.0;
  for (std::size_t i = 0; i < sys.n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < sys.n; ++j) sum += sys.at(i, j) * x[j];
    worst = std::max(worst, std::abs(sum - sys.b[i]));
  }
  return worst;
}

JacobiReference jacobi_reference(const LinearSystem& sys, double tol,
                                 std::size_t max_iters) {
  JacobiReference out;
  out.x.assign(sys.n, 0.0);
  std::vector<double> temp(sys.n, 0.0);
  for (out.iterations = 0; out.iterations < max_iters; ++out.iterations) {
    if (residual_inf(sys, out.x) < tol) {
      out.converged = true;
      return out;
    }
    jacobi_rows(sys, 0, sys.n, [&](std::size_t j) { return out.x[j]; }, temp);
    out.x = temp;
  }
  out.converged = residual_inf(sys, out.x) < tol;
  return out;
}

double max_abs_diff(const std::vector<double>& u, const std::vector<double>& v) {
  MC_CHECK(u.size() == v.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    worst = std::max(worst, std::abs(u[i] - v[i]));
  }
  return worst;
}

}  // namespace mc::apps
