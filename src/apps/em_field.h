// Section 5.2: computation of electromagnetic fields — alternating E-field
// and H-field update phases over a spatial grid, strip-partitioned across
// processes, with barriers between phases (Figure 4).
//
// We use the classic 1-D staggered Yee scheme:
//   E[i] += cE * (H[i] - H[i-1])      (phase 1, reads H)
//   H[i] += cH * (E[i+1] - E[i])      (phase 2, reads E)
// Each process owns a contiguous strip and needs the adjoining nodes of its
// neighbours.  Updates made in a phase must be visible in subsequent phases
// — the program is PRAM-consistent (Corollary 2), so PRAM reads suffice.
//
// Two sharing disciplines are provided, mirroring the paper's Split-C
// "ghost copies" remark: kFullGrid keeps every node in DSM (the system does
// all the work), kGhost shares only the strip-boundary nodes through DSM
// and keeps the interior in process-local memory (the hand-optimized
// pattern whose bookkeeping the paper argues PRAM makes unnecessary).

#pragma once

#include <vector>

#include "baseline/sc_system.h"
#include "common/stats.h"
#include "dsm/config.h"

namespace mc::apps {

struct EmProblem {
  std::size_t m = 64;       ///< grid nodes per field
  std::size_t steps = 16;   ///< E/H phase pairs
  double c_e = 0.45;
  double c_h = 0.45;

  /// Initial E profile: a raised-cosine pulse centered in the grid.
  [[nodiscard]] std::vector<double> initial_e() const;
};

/// Fields after a simulation: E then H, concatenated.
struct EmResult {
  std::vector<double> e;
  std::vector<double> h;
  double elapsed_ms = 0.0;
  MetricsSnapshot metrics;
};

enum class EmSharing { kFullGrid, kGhost };

/// Sequential reference (identical arithmetic and update order).
EmResult em_reference(const EmProblem& prob);

/// Mixed-consistency run (Figure 4): barriers between phases, reads under
/// the given label.  With `pattern_optimized` (ghost sharing + PRAM reads
/// only) the Section 6 access-pattern optimizations kick in: update
/// timestamps are elided and each boundary value is multicast only to the
/// single neighbour that reads it.
EmResult em_mixed(const EmProblem& prob, std::size_t procs, ReadMode mode,
                  EmSharing sharing, net::LatencyModel latency = {},
                  std::uint64_t seed = 1, bool pattern_optimized = false,
                  const std::optional<net::FaultPlan>& faults = std::nullopt,
                  bool reliable = false,
                  const std::optional<dsm::BatchingConfig>& batching = std::nullopt,
                  const std::optional<dsm::DirectoryConfig>& directory = std::nullopt);

/// The same algorithm on the sequentially consistent baseline.
EmResult em_sc(const EmProblem& prob, std::size_t procs,
               net::LatencyModel latency = {}, std::uint64_t seed = 1);

}  // namespace mc::apps
