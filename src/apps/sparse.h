// Sparse symmetric positive-definite systems for Section 5.3: generation,
// symbolic factorization (fill pattern + column dependency counts — the
// paper's `count[j]`), the sequential Cholesky reference, and verification.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace mc::apps {

/// Symmetric positive-definite matrix with explicit sparsity, stored dense
/// (row-major) for simple arithmetic; the pattern drives parallelism.
struct SparseSpd {
  std::size_t n = 0;
  std::vector<double> a;  // n*n, symmetric

  [[nodiscard]] double at(std::size_t i, std::size_t j) const { return a[i * n + j]; }

  /// Banded symmetric matrix with random off-band fill, made SPD by strict
  /// diagonal dominance.
  static SparseSpd random(std::size_t n, std::size_t band, double fill_prob,
                          std::uint64_t seed);

  [[nodiscard]] std::size_t nnz_lower() const;
};

/// Symbolic factorization: the fill pattern of L and the dependency
/// structure of the column algorithm.
struct Symbolic {
  std::size_t n = 0;
  /// For column j: the rows i >= j with L[i][j] structurally nonzero
  /// (diagonal first, ascending).
  std::vector<std::vector<std::uint32_t>> col_rows;
  /// For column j: the columns k > j that column j updates (L[k][j] != 0).
  std::vector<std::vector<std::uint32_t>> col_updates;
  /// count[k] of Figure 5: number of columns j < k that update column k.
  std::vector<std::uint32_t> dep_count;

  [[nodiscard]] std::size_t fill_nnz() const;
};

Symbolic analyze(const SparseSpd& m);

/// Sequential right-looking sparse Cholesky following the pattern; returns
/// the dense lower-triangular factor (row-major full matrix, upper part
/// zero).
std::vector<double> cholesky_reference(const SparseSpd& m, const Symbolic& sym);

/// Max |(L L^T - A)[i][j]|.
double factorization_error(const SparseSpd& m, const std::vector<double>& l);

}  // namespace mc::apps
