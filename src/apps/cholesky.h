// Section 5.3: parallel sparse Cholesky factorization, in the paper's two
// formulations:
//
//   - Figure 5 (lock-based): columns are distributed across processes; a
//     process may start column j once count[j] reaches zero (await), and
//     updates to a remote column k happen inside a write-lock critical
//     section guarded by l[k], which also decrements count[k].  Causal
//     reads are required — PRAM reads could miss updates from critical
//     sections before the immediately preceding one (Section 5.3).
//
//   - Counter objects (Section 5.3's optimization, the variant Section 7
//     reports as significantly faster under Maya): every matrix entry and
//     count variable becomes a commutative decrement object, eliminating
//     all critical sections.  Accumulators are pure delta objects (never
//     overwritten); the finished column is published through write-once
//     result variables.

#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "apps/sparse.h"
#include "common/stats.h"
#include "dsm/config.h"
#include "history/history.h"

namespace mc::dsm {
class MixedSystem;
}

namespace mc::apps {

struct CholeskyOptions {
  std::size_t procs = 3;
  net::LatencyModel latency = net::LatencyModel::zero();
  std::uint64_t seed = 1;
  bool record_trace = false;
  dsm::LockPolicy lock_policy = dsm::LockPolicy::kLazy;  // lock variant only

  /// Chaos testing (docs/FAULTS.md): optional seeded fault plan plus the
  /// reliability layer that restores reliable-FIFO delivery beneath it.
  std::optional<net::FaultPlan> faults;
  bool reliable = false;
  /// Tuning for the reliability layer when `reliable` is set.
  net::ReliabilityConfig reliability;

  /// Crash drill (lock variant only; requires `reliable`): run elastic and
  /// crash-stop this process after it finishes its own columns — it goes
  /// silent instead of entering the final barrier, and the survivors
  /// complete once the view change evicts it.  Because the victim has
  /// already released every critical section, the survivors extract the
  /// complete factor (equal to a crash-free run's up to the usual
  /// schedule-dependent update ordering).
  std::optional<ProcId> crash_proc;

  /// Batched update propagation (Config::batching).  The counter variant
  /// exercises delta-sum coalescing; the lock variant flush-on-unlock.
  std::optional<dsm::BatchingConfig> batching;

  /// Directory-based partial replication (Config::directory; requires
  /// `batching`).  The counter variant additionally exercises delta
  /// write-allocation (a delta to an uncached variable fills first).
  std::optional<dsm::DirectoryConfig> directory;

  /// Observer hook, called with the constructed MixedSystem before any
  /// process thread starts (see SolverOptions::system_hook).
  std::function<void(dsm::MixedSystem&)> system_hook;

  /// When nonzero, run under a watchdog with this stall deadline: a wedged
  /// run terminates with CholeskyResult::stalled set instead of hanging.
  std::chrono::nanoseconds stall_timeout{0};

  /// Contention profiling (Config::profile): when set, the merged
  /// attribution lands in CholeskyResult::profile.
  std::optional<obs::ProfilerOptions> profile;
};

struct CholeskyResult {
  std::vector<double> l;  // dense row-major lower factor
  double elapsed_ms = 0.0;
  MetricsSnapshot metrics;
  history::History history{0};
  /// Watchdog outcome (only when CholeskyOptions::stall_timeout is set).
  bool stalled = false;
  std::string stall_reason;
  /// Merged contention profile (only when CholeskyOptions::profile is set).
  obs::ProfileReport profile;
};

/// Figure 5: write locks + causal reads.
CholeskyResult cholesky_locks(const SparseSpd& m, const Symbolic& sym,
                              const CholeskyOptions& opt);

/// Counter objects: commutative decrements, no critical sections.
CholeskyResult cholesky_counters(const SparseSpd& m, const Symbolic& sym,
                                 const CholeskyOptions& opt);

}  // namespace mc::apps
