#include "apps/equation_solver.h"

#include "common/check.h"
#include "dsm/system.h"

namespace mc::apps {

namespace {

/// Shared-variable layout of both solver formulations.
struct Layout {
  std::size_t n;
  std::size_t workers;

  [[nodiscard]] VarId x(std::size_t i) const { return static_cast<VarId>(i); }
  [[nodiscard]] VarId done() const { return static_cast<VarId>(n); }
  [[nodiscard]] VarId computed(std::size_t w) const { return static_cast<VarId>(n + 1 + w); }
  [[nodiscard]] VarId updated(std::size_t w) const {
    return static_cast<VarId>(n + 1 + workers + w);
  }
  [[nodiscard]] std::size_t num_vars() const { return n + 1 + 2 * workers; }

  [[nodiscard]] std::pair<std::size_t, std::size_t> rows(std::size_t w) const {
    return {w * n / workers, (w + 1) * n / workers};
  }
};

dsm::Config make_config(const LinearSystem& sys, const SolverOptions& opt, bool trace) {
  const Layout lay{sys.n, opt.workers, };
  dsm::Config cfg;
  cfg.num_procs = opt.workers + 1;
  cfg.num_vars = lay.num_vars();
  cfg.latency = opt.latency;
  cfg.seed = opt.seed;
  cfg.record_trace = trace;
  cfg.omit_timestamps = opt.omit_timestamps;
  cfg.faults = opt.faults;
  cfg.reliable = opt.reliable;
  cfg.reliability = opt.reliability;
  cfg.batching = opt.batching;
  cfg.directory = opt.directory;
  cfg.profile = opt.profile;
  return cfg;
}

/// Shared run shim: apply the observer hook, then run either bare or under
/// a watchdog (SolverOptions::stall_timeout) with the outcome folded into
/// the result.
void run_app(dsm::MixedSystem& dsm_sys, const SolverOptions& opt, SolverResult& out,
             const std::function<void(dsm::Node&, ProcId)>& body) {
  if (opt.system_hook) opt.system_hook(dsm_sys);
  if (opt.stall_timeout.count() > 0) {
    const auto outcome = dsm_sys.run(body, opt.stall_timeout);
    out.stalled = outcome.stalled;
    out.stall_reason = outcome.diagnostics.reason;
  } else {
    dsm_sys.run(body);
  }
}

SolverRun run_barrier(const LinearSystem& sys, const SolverOptions& opt, ReadMode mode,
                      bool trace) {
  MC_CHECK(opt.workers >= 1);
  const Layout lay{sys.n, opt.workers};
  dsm::MixedSystem dsm_sys(make_config(sys, opt, trace));

  SolverRun out;
  Stopwatch clock;
  run_app(dsm_sys, opt, out.result, [&](dsm::Node& node, ProcId p) {
    if (p == 0) {
      // Coordinator (Figure 2, left column): convergence checks between
      // barrier pairs.
      std::vector<double> xs(sys.n);
      std::size_t sweeps = 0;
      for (;;) {
        for (std::size_t i = 0; i < sys.n; ++i) xs[i] = node.read_double(lay.x(i), mode);
        const double resid = residual_inf(sys, xs);
        const bool stop = resid < opt.tol || sweeps >= opt.max_iters;
        if (stop) node.write_int(lay.done(), 1);
        node.barrier();
        node.barrier();
        if (stop) {
          out.result.x = xs;
          out.result.iterations = sweeps;
          out.result.converged = resid < opt.tol;
          break;
        }
        ++sweeps;
      }
    } else {
      // Worker (Figure 2, right column): compute sub-phase, barrier,
      // install sub-phase, barrier.
      const auto [r0, r1] = lay.rows(p - 1);
      std::vector<double> temp(sys.n, 0.0);
      for (;;) {
        jacobi_rows(sys, r0, r1,
                    [&](std::size_t j) { return node.read_double(lay.x(j), mode); }, temp);
        node.barrier();
        const bool stop = node.read_int(lay.done(), mode) != 0;
        if (!stop) {
          for (std::size_t i = r0; i < r1; ++i) node.write_double(lay.x(i), temp[i]);
        }
        node.barrier();
        if (stop) break;
      }
    }
  });
  out.result.elapsed_ms = clock.elapsed_ms();
  out.result.metrics = dsm_sys.metrics();
  if (opt.profile.has_value()) out.result.profile = dsm_sys.profile();
  if (trace) out.history = dsm_sys.collect_history();
  return out;
}

SolverRun run_handshake(const LinearSystem& sys, const SolverOptions& opt, bool trace) {
  MC_CHECK(opt.workers >= 1);
  const Layout lay{sys.n, opt.workers};
  dsm::MixedSystem dsm_sys(make_config(sys, opt, trace));

  SolverRun out;
  Stopwatch clock;
  run_app(dsm_sys, opt, out.result, [&](dsm::Node& node, ProcId p) {
    if (p == 0) {
      // Coordinator (Figure 3): four handshake rounds per phase.
      std::vector<double> xs(sys.n);
      std::int64_t phase = 0;
      for (;;) {
        ++phase;
        for (std::size_t w = 0; w < opt.workers; ++w) {
          node.await_int(lay.computed(w), phase);
        }
        for (std::size_t w = 0; w < opt.workers; ++w) {
          node.write_int(lay.computed(w), -phase);
        }
        for (std::size_t w = 0; w < opt.workers; ++w) {
          node.await_int(lay.updated(w), phase);
        }
        for (std::size_t i = 0; i < sys.n; ++i) {
          xs[i] = node.read_double(lay.x(i), ReadMode::kCausal);
        }
        const double resid = residual_inf(sys, xs);
        const bool stop = resid < opt.tol ||
                          static_cast<std::size_t>(phase) >= opt.max_iters;
        if (stop) node.write_int(lay.done(), 1);
        for (std::size_t w = 0; w < opt.workers; ++w) {
          node.write_int(lay.updated(w), -phase);
        }
        if (stop) {
          out.result.x = xs;
          out.result.iterations = static_cast<std::size_t>(phase);
          out.result.converged = resid < opt.tol;
          break;
        }
      }
    } else {
      // Worker (Figure 3): compute, handshake `computed`, install,
      // handshake `updated`, re-check `done` causally.
      const std::size_t w = p - 1;
      const auto [r0, r1] = lay.rows(w);
      std::vector<double> temp(sys.n, 0.0);
      std::int64_t phase = 0;
      for (;;) {
        ++phase;
        jacobi_rows(sys, r0, r1,
                    [&](std::size_t j) { return node.read_double(lay.x(j), ReadMode::kCausal); },
                    temp);
        node.write_int(lay.computed(w), phase);
        node.await_int(lay.computed(w), -phase);
        for (std::size_t i = r0; i < r1; ++i) node.write_double(lay.x(i), temp[i]);
        node.write_int(lay.updated(w), phase);
        node.await_int(lay.updated(w), -phase);
        if (node.read_int(lay.done(), ReadMode::kCausal) != 0) break;
      }
    }
  });
  out.result.elapsed_ms = clock.elapsed_ms();
  out.result.metrics = dsm_sys.metrics();
  if (opt.profile.has_value()) out.result.profile = dsm_sys.profile();
  if (trace) out.history = dsm_sys.collect_history();
  return out;
}

// ----- elastic-membership barrier solver (ElasticSchedule) -----

/// Variable layout of the elastic variant: the estimate, the done flag, the
/// coordinator's per-sweep plan word (bit w = worker w computes), and one
/// readiness flag per worker for the join handshake.
///
/// The plan is double-buffered by sweep parity: the plan governing sweep k
/// lives in slot k%2.  A worker reads slot (k+1)%2 right after sweep k's
/// install barrier, and the coordinator's next write to that slot (the plan
/// for sweep k+3, at the top of sweep k+2) happens strictly after sweep
/// k+1's install barrier releases — which the reader passed first.  A
/// single unversioned plan variable would race: the coordinator can
/// overwrite it for sweep k+2 before a slow worker reads the sweep-(k+1)
/// word, splitting the workers across two different partitions and leaving
/// a row uncovered for one sweep.
struct ElasticLayout {
  std::size_t n;
  std::size_t workers;
  [[nodiscard]] VarId x(std::size_t i) const { return static_cast<VarId>(i); }
  [[nodiscard]] VarId done() const { return static_cast<VarId>(n); }
  [[nodiscard]] VarId plan(std::size_t slot) const { return static_cast<VarId>(n + 1 + slot); }
  [[nodiscard]] VarId ready(std::size_t w) const { return static_cast<VarId>(n + 3 + w); }
  [[nodiscard]] std::size_t num_vars() const { return n + 3 + workers; }

  /// Rows of worker `w` under `plan`: the row range split evenly across the
  /// planned workers, by rank.  Empty when w is not planned.
  [[nodiscard]] std::pair<std::size_t, std::size_t> rows_under(
      std::uint64_t plan, std::size_t w) const {
    if (((plan >> w) & 1) == 0) return {0, 0};
    std::size_t rank = 0, active = 0;
    for (std::size_t v = 0; v < workers; ++v) {
      if (((plan >> v) & 1) == 0) continue;
      if (v < w) ++rank;
      ++active;
    }
    return {rank * n / active, (rank + 1) * n / active};
  }
};

}  // namespace

SolverResult solve_barrier_elastic(const LinearSystem& sys, const SolverOptions& opt,
                                   const ElasticSchedule& sched) {
  MC_CHECK(opt.workers >= 1 && opt.workers <= 62);
  const ElasticLayout lay{sys.n, opt.workers};

  std::uint64_t initial = 0;
  if (sched.initial_workers.empty()) {
    for (std::size_t w = 0; w < opt.workers; ++w) initial |= std::uint64_t{1} << w;
  } else {
    for (const std::size_t w : sched.initial_workers) {
      MC_CHECK(w < opt.workers);
      initial |= std::uint64_t{1} << w;
    }
  }
  for (const std::size_t w : sched.joiners) {
    MC_CHECK(w < opt.workers && ((initial >> w) & 1) == 0);
  }

  dsm::Config cfg;
  cfg.num_procs = opt.workers + 1;
  cfg.num_vars = lay.num_vars();
  cfg.latency = opt.latency;
  cfg.seed = opt.seed;
  cfg.record_trace = opt.record_trace;
  cfg.faults = opt.faults;
  cfg.reliable = opt.reliable;
  cfg.reliability = opt.reliability;
  cfg.batching = opt.batching;
  cfg.directory = opt.directory;
  cfg.profile = opt.profile;
  cfg.elastic = true;
  std::vector<ProcId> members{0};
  for (std::size_t w = 0; w < opt.workers; ++w) {
    if ((initial >> w) & 1) members.push_back(static_cast<ProcId>(w + 1));
  }
  cfg.initial_members = std::move(members);
  dsm::MixedSystem dsm_sys(cfg);

  SolverResult out;
  Stopwatch clock;
  run_app(dsm_sys, opt, out, [&](dsm::Node& node, ProcId p) {
    if (p == 0) {
      // Coordinator: convergence check, then publish the next sweep's plan
      // before the compute barrier — workers pick it up after the install
      // barrier, one sweep ahead of using it.
      std::vector<double> xs(sys.n);
      std::vector<bool> ready_seen(opt.workers, false);
      std::size_t sweep = 0;
      for (;;) {
        for (const std::size_t w : sched.joiners) {
          if (!ready_seen[w] && node.read_int(lay.ready(w), ReadMode::kPram) != 0) {
            ready_seen[w] = true;
          }
        }
        for (std::size_t i = 0; i < sys.n; ++i) {
          xs[i] = node.read_double(lay.x(i), ReadMode::kPram);
        }
        const double resid = residual_inf(sys, xs);
        const bool stop = resid < opt.tol || sweep >= opt.max_iters;
        if (stop) node.write_int(lay.done(), 1);
        const dsm::View view = node.view();
        std::uint64_t plan = 0;
        for (std::size_t w = 0; w < opt.workers; ++w) {
          const bool scripted = ((initial >> w) & 1) != 0 || ready_seen[w];
          const auto lv = sched.leave_after.find(w);
          const bool left = lv != sched.leave_after.end() && sweep + 1 > lv->second;
          if (scripted && !left && view.is_alive(static_cast<ProcId>(w + 1))) {
            plan |= std::uint64_t{1} << w;
          }
        }
        node.write_int(lay.plan((sweep + 1) % 2), static_cast<std::int64_t>(plan));
        node.barrier();
        node.barrier();
        if (stop) {
          out.x = xs;
          out.iterations = sweep;
          out.converged = resid < opt.tol;
          break;
        }
        ++sweep;
      }
      return;
    }

    const std::size_t w = p - 1;
    std::uint64_t plan = initial;
    std::size_t sweep = 0;
    if (((initial >> w) & 1) == 0) {
      // Joiner: enter the view, align with the two-barriers-per-sweep
      // structure already in flight, and announce readiness.  The plan can
      // only name this worker after the announcement is read, and the plan
      // itself is always read at the sweep boundary, so there is no sweep
      // where this worker is planned without knowing it.
      node.join();
      if (node.read_int(lay.done(), ReadMode::kPram) != 0) return;
      if (node.next_barrier_epoch() % 2 == 1) {
        node.barrier();  // consume the pending install-phase barrier
        if (node.read_int(lay.done(), ReadMode::kPram) != 0) return;
      }
      node.write_int(lay.ready(w), 1);
      plan = 0;  // passive until the coordinator plans us in
      // Recover the global sweep number from the barrier instance: sweep k
      // uses instances 2k (compute) and 2k+1 (install), so after the
      // alignment the next pending instance is sweep*2.
      sweep = node.next_barrier_epoch() / 2;
    }
    std::vector<double> temp(sys.n, 0.0);
    for (;;) {
      const auto [r0, r1] = lay.rows_under(plan, w);
      jacobi_rows(sys, r0, r1,
                  [&](std::size_t j) { return node.read_double(lay.x(j), ReadMode::kPram); },
                  temp);
      node.barrier();
      const bool stop = node.read_int(lay.done(), ReadMode::kPram) != 0;
      if (!stop) {
        for (std::size_t i = r0; i < r1; ++i) node.write_double(lay.x(i), temp[i]);
      }
      node.barrier();
      if (stop) break;
      const auto lv = sched.leave_after.find(w);
      if (lv != sched.leave_after.end() && sweep == lv->second) {
        node.leave();
        return;
      }
      const auto cr = sched.crash_after.find(w);
      if (cr != sched.crash_after.end() && sweep == cr->second) {
        // Crash-stop: silence the endpoint at the fabric, trip the plan
        // with one dropped write, and fall off the thread.  Survivors only
        // learn of this through keepalive probes giving up.
        net::FaultPlan crash = opt.faults.value_or(net::FaultPlan{});
        crash.crash_after_sends[static_cast<net::Endpoint>(p)] = 0;
        dsm_sys.fabric().inject_faults(crash);
        node.write_int(lay.ready(w), -1);
        return;
      }
      plan = static_cast<std::uint64_t>(
          node.read_int(lay.plan((sweep + 1) % 2), ReadMode::kPram));
      ++sweep;
    }
  });
  out.elapsed_ms = clock.elapsed_ms();
  out.metrics = dsm_sys.metrics();
  if (opt.profile.has_value()) out.profile = dsm_sys.profile();
  return out;
}

SolverResult solve_barrier_pram(const LinearSystem& sys, const SolverOptions& opt) {
  return run_barrier(sys, opt, ReadMode::kPram, opt.record_trace).result;
}

SolverResult solve_handshake_causal(const LinearSystem& sys, const SolverOptions& opt) {
  return run_handshake(sys, opt, opt.record_trace).result;
}

SolverRun solve_barrier_traced(const LinearSystem& sys, const SolverOptions& opt,
                               ReadMode mode) {
  return run_barrier(sys, opt, mode, true);
}

SolverRun solve_handshake_traced(const LinearSystem& sys, const SolverOptions& opt) {
  return run_handshake(sys, opt, true);
}

SolverResult solve_async_gauss_seidel(const LinearSystem& sys, const SolverOptions& opt) {
  MC_CHECK(opt.workers >= 1);
  const Layout lay{sys.n, opt.workers};
  dsm::MixedSystem dsm_sys(make_config(sys, opt, /*trace=*/false));

  SolverResult out;
  Stopwatch clock;
  run_app(dsm_sys, opt, out, [&](dsm::Node& node, ProcId p) {
    if (p == 0) {
      // Coordinator: poll the estimate until the residual is small.  No
      // synchronization with the workers at all — the only exit channel is
      // the `done` flag, which workers poll through PRAM reads.
      std::vector<double> xs(sys.n);
      std::size_t polls = 0;
      for (;;) {
        for (std::size_t i = 0; i < sys.n; ++i) {
          xs[i] = node.read_double(lay.x(i), ReadMode::kPram);
        }
        const double resid = residual_inf(sys, xs);
        ++polls;
        if (resid < opt.tol || polls >= opt.max_iters * 16) {
          node.write_int(lay.done(), 1);
          out.x = xs;
          out.iterations = polls;
          out.converged = resid < opt.tol;
          break;
        }
        std::this_thread::yield();
      }
    } else {
      // Worker: chaotic Gauss-Seidel relaxation — install each component
      // immediately and keep sweeping with whatever has arrived.
      const auto [r0, r1] = lay.rows(p - 1);
      while (node.read_int(lay.done(), ReadMode::kPram) == 0) {
        for (std::size_t i = r0; i < r1; ++i) {
          double sum = 0.0;
          for (std::size_t j = 0; j < sys.n; ++j) {
            sum += sys.at(i, j) * node.read_double(lay.x(j), ReadMode::kPram);
          }
          const double xi = node.read_double(lay.x(i), ReadMode::kPram) +
                            (sys.b[i] - sum) / sys.at(i, i);
          node.write_double(lay.x(i), xi);
        }
      }
    }
  });
  out.elapsed_ms = clock.elapsed_ms();
  out.metrics = dsm_sys.metrics();
  if (opt.profile.has_value()) out.profile = dsm_sys.profile();
  return out;
}

SolverResult solve_sc_baseline(const LinearSystem& sys, const SolverOptions& opt) {
  MC_CHECK(opt.workers >= 1);
  const Layout lay{sys.n, opt.workers};
  baseline::ScConfig cfg;
  cfg.num_procs = opt.workers + 1;
  cfg.num_vars = lay.num_vars();
  cfg.latency = opt.latency;
  cfg.seed = opt.seed;
  baseline::ScSystem sc(cfg);

  SolverResult out;
  Stopwatch clock;
  sc.run([&](baseline::ScNode& node, ProcId p) {
    if (p == 0) {
      std::vector<double> xs(sys.n);
      std::size_t sweeps = 0;
      for (;;) {
        for (std::size_t i = 0; i < sys.n; ++i) xs[i] = node.read_double(lay.x(i));
        const double resid = residual_inf(sys, xs);
        const bool stop = resid < opt.tol || sweeps >= opt.max_iters;
        if (stop) node.write_int(lay.done(), 1);
        node.barrier();
        node.barrier();
        if (stop) {
          out.x = xs;
          out.iterations = sweeps;
          out.converged = resid < opt.tol;
          break;
        }
        ++sweeps;
      }
    } else {
      const auto [r0, r1] = lay.rows(p - 1);
      std::vector<double> temp(sys.n, 0.0);
      for (;;) {
        jacobi_rows(sys, r0, r1, [&](std::size_t j) { return node.read_double(lay.x(j)); },
                    temp);
        node.barrier();
        const bool stop = node.read_int(lay.done()) != 0;
        if (!stop) {
          for (std::size_t i = r0; i < r1; ++i) node.write_double(lay.x(i), temp[i]);
        }
        node.barrier();
        if (stop) break;
      }
    }
  });
  out.elapsed_ms = clock.elapsed_ms();
  out.metrics = sc.metrics();
  return out;
}

}  // namespace mc::apps
