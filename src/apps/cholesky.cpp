#include "apps/cholesky.h"

#include <cmath>

#include "common/check.h"
#include "dsm/system.h"

namespace mc::apps {

namespace {

/// Packed lower-triangular variable index (i >= j).
VarId tri(std::size_t i, std::size_t j) {
  return static_cast<VarId>(i * (i + 1) / 2 + j);
}

std::size_t tri_size(std::size_t n) { return n * (n + 1) / 2; }

ProcId owner_of(std::size_t j, std::size_t procs) {
  return static_cast<ProcId>(j % procs);
}

/// Shared run shim: apply the observer hook, then run either bare or under
/// a watchdog (CholeskyOptions::stall_timeout) with the outcome folded into
/// the result.
void run_app(dsm::MixedSystem& sys, const CholeskyOptions& opt, CholeskyResult& out,
             const std::function<void(dsm::Node&, ProcId)>& body) {
  if (opt.system_hook) opt.system_hook(sys);
  if (opt.stall_timeout.count() > 0) {
    const auto outcome = sys.run(body, opt.stall_timeout);
    out.stalled = outcome.stalled;
    out.stall_reason = outcome.diagnostics.reason;
  } else {
    sys.run(body);
  }
}

}  // namespace

CholeskyResult cholesky_locks(const SparseSpd& m, const Symbolic& sym,
                              const CholeskyOptions& opt) {
  const std::size_t n = m.n;
  MC_CHECK(opt.procs >= 1);

  dsm::Config cfg;
  cfg.num_procs = opt.procs;
  cfg.num_vars = tri_size(n) + n;  // L entries, then count[k]
  cfg.latency = opt.latency;
  cfg.seed = opt.seed;
  cfg.record_trace = opt.record_trace;
  cfg.default_lock_policy = opt.lock_policy;
  cfg.faults = opt.faults;
  cfg.reliable = opt.reliable;
  cfg.reliability = opt.reliability;
  cfg.batching = opt.batching;
  cfg.directory = opt.directory;
  cfg.profile = opt.profile;
  if (opt.crash_proc) {
    MC_CHECK(opt.reliable && *opt.crash_proc != 0 && *opt.crash_proc < opt.procs);
    cfg.elastic = true;
  }
  const auto count_var = [&](std::size_t k) {
    return static_cast<VarId>(tri_size(n) + k);
  };

  dsm::MixedSystem sys(cfg);
  CholeskyResult out;
  out.l.assign(n * n, 0.0);

  Stopwatch clock;
  run_app(sys, opt, out, [&](dsm::Node& node, ProcId p) {
    // Process 0 installs the input (A's lower pattern values and the
    // dependency counts); the barrier makes initialization visible before
    // anyone awaits.
    if (p == 0) {
      for (std::size_t j = 0; j < n; ++j) {
        for (const std::uint32_t i : sym.col_rows[j]) node.write_double(tri(i, j), m.at(i, j));
        node.write_int(count_var(j), sym.dep_count[j]);
      }
    }
    node.barrier();

    std::vector<double> colj(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (owner_of(j, opt.procs) != p) continue;
      // Figure 5, line 1: wait for every dependency to be applied.
      node.await_int(count_var(j), 0);
      // Lines 2-3: finish column j locally (causal reads — the await's
      // causal floor covers every earlier critical section on l[j]).
      const double diag = std::sqrt(node.read_double(tri(j, j), ReadMode::kCausal));
      node.write_double(tri(j, j), diag);
      colj[j] = diag;
      for (const std::uint32_t i : sym.col_rows[j]) {
        if (i == j) continue;
        const double lij = node.read_double(tri(i, j), ReadMode::kCausal) / diag;
        node.write_double(tri(i, j), lij);
        colj[i] = lij;
      }
      // Lines 4-8: update every dependent column inside its critical
      // section, decrementing its count.
      for (const std::uint32_t k : sym.col_updates[j]) {
        node.wlock(static_cast<LockId>(k));
        for (const std::uint32_t i : sym.col_rows[k]) {
          const double v = node.read_double(tri(i, k), ReadMode::kCausal);
          node.write_double(tri(i, k), v - colj[i] * colj[k]);
        }
        node.write_int(count_var(k),
                       node.read_int(count_var(k), ReadMode::kCausal) - 1);
        node.wunlock(static_cast<LockId>(k));
      }
    }
    if (opt.crash_proc && *opt.crash_proc == p) {
      // Crash drill: every column and critical section of this process is
      // done, so go silent instead of joining the final barrier.  The
      // first send after the fault install is dropped by the injector, so
      // the tripwire write below never leaves this node.
      net::FaultPlan crash = opt.faults.value_or(net::FaultPlan{});
      crash.crash_after_sends[static_cast<net::Endpoint>(p)] = 0;
      sys.fabric().inject_faults(crash);
      node.write_int(count_var(0), 0);
      return;
    }
    node.barrier();
  });
  out.elapsed_ms = clock.elapsed_ms();

  // A stalled run has no coherent factor to extract — and a post-stall
  // causal read could itself block.
  if (!out.stalled) {
    for (std::size_t j = 0; j < n; ++j) {
      for (const std::uint32_t i : sym.col_rows[j]) {
        out.l[i * n + j] = sys.node(0).read_double(tri(i, j), ReadMode::kCausal);
      }
    }
  }
  out.metrics = sys.metrics();
  if (opt.profile.has_value()) out.profile = sys.profile();
  if (opt.record_trace) out.history = sys.collect_history();
  return out;
}

CholeskyResult cholesky_counters(const SparseSpd& m, const Symbolic& sym,
                                 const CholeskyOptions& opt) {
  const std::size_t n = m.n;
  MC_CHECK(opt.procs >= 1);

  dsm::Config cfg;
  cfg.num_procs = opt.procs;
  // Pure-delta accumulators, pure-delta counts, then write-once results.
  cfg.num_vars = tri_size(n) + n + tri_size(n);
  cfg.latency = opt.latency;
  cfg.seed = opt.seed;
  cfg.record_trace = opt.record_trace;
  cfg.faults = opt.faults;
  cfg.reliable = opt.reliable;
  cfg.reliability = opt.reliability;
  cfg.batching = opt.batching;
  cfg.directory = opt.directory;
  cfg.profile = opt.profile;
  const auto acc = [](std::size_t i, std::size_t j) { return tri(i, j); };
  const auto cnt = [&](std::size_t k) { return static_cast<VarId>(tri_size(n) + k); };
  const auto res = [&](std::size_t i, std::size_t j) {
    return static_cast<VarId>(tri_size(n) + n + tri(i, j));
  };

  dsm::MixedSystem sys(cfg);
  CholeskyResult out;
  out.l.assign(n * n, 0.0);

  Stopwatch clock;
  run_app(sys, opt, out, [&](dsm::Node& node, ProcId p) {
    // No initialization step: accumulators and counts are pure counter
    // objects starting at zero, and A is replicated program input.
    std::vector<double> colj(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (owner_of(j, opt.procs) != p) continue;
      // Counts decrement from zero; the column is ready at -dep_count.
      // Causal await + causal reads make the concurrently-arriving deltas
      // of the accumulators coherent (see cholesky.h).
      node.await_int(cnt(j), -static_cast<std::int64_t>(sym.dep_count[j]),
                     ReadMode::kCausal);
      const double full_diag =
          m.at(j, j) + node.read_double(acc(j, j), ReadMode::kCausal);
      const double diag = std::sqrt(full_diag);
      colj[j] = diag;
      node.write_double(res(j, j), diag);
      for (const std::uint32_t i : sym.col_rows[j]) {
        if (i == j) continue;
        const double full = m.at(i, j) + node.read_double(acc(i, j), ReadMode::kCausal);
        colj[i] = full / diag;
        node.write_double(res(i, j), colj[i]);
      }
      // No critical sections: every update is a commutative decrement.
      for (const std::uint32_t k : sym.col_updates[j]) {
        for (const std::uint32_t i : sym.col_rows[k]) {
          node.dec_double(acc(i, k), colj[i] * colj[k]);
        }
        node.dec_int(cnt(k), 1);
      }
    }
    node.barrier();
  });
  out.elapsed_ms = clock.elapsed_ms();

  if (!out.stalled) {
    for (std::size_t j = 0; j < n; ++j) {
      for (const std::uint32_t i : sym.col_rows[j]) {
        out.l[i * n + j] = sys.node(0).read_double(res(i, j), ReadMode::kCausal);
      }
    }
  }
  out.metrics = sys.metrics();
  if (opt.profile.has_value()) out.profile = sys.profile();
  if (opt.record_trace) out.history = sys.collect_history();
  return out;
}

}  // namespace mc::apps
