#include "apps/em_field2d.h"

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "dsm/system.h"

namespace mc::apps {

namespace {

struct Strip {
  std::size_t begin;
  std::size_t end;
};

Strip strip_of(std::size_t nx, std::size_t procs, std::size_t p) {
  return {p * nx / procs, (p + 1) * nx / procs};
}

/// E phase over rows [s.begin, s.end).  `hy` must cover rows
/// [s.begin - 1, s.end); `hx` rows [s.begin, s.end).  In-place: Ez reads
/// only H fields.
void update_ez(const Em2dProblem& prob, const Strip& s, std::vector<double>& ez,
               const std::vector<double>& hx, const std::vector<double>& hy) {
  const std::size_t ny = prob.ny;
  for (std::size_t i = std::max<std::size_t>(s.begin, 1); i < s.end; ++i) {
    for (std::size_t j = 1; j < ny; ++j) {
      ez[i * ny + j] += prob.c_e * (hy[i * ny + j] - hy[(i - 1) * ny + j] -
                                    hx[i * ny + j] + hx[i * ny + j - 1]);
    }
  }
}

/// H phase over rows [s.begin, s.end).  `ez` must cover rows
/// [s.begin, s.end] (one ghost row below for Hy).
void update_h(const Em2dProblem& prob, const Strip& s, std::size_t nx,
              std::vector<double>& hx, std::vector<double>& hy,
              const std::vector<double>& ez) {
  const std::size_t ny = prob.ny;
  for (std::size_t i = s.begin; i < s.end; ++i) {
    for (std::size_t j = 0; j + 1 < ny; ++j) {
      hx[i * ny + j] -= prob.c_h * (ez[i * ny + j + 1] - ez[i * ny + j]);
    }
  }
  for (std::size_t i = s.begin; i < std::min(s.end, nx - 1); ++i) {
    for (std::size_t j = 0; j < ny; ++j) {
      hy[i * ny + j] += prob.c_h * (ez[(i + 1) * ny + j] - ez[i * ny + j]);
    }
  }
}

}  // namespace

std::vector<double> Em2dProblem::initial_ez() const {
  std::vector<double> ez(nx * ny, 0.0);
  const double cx = static_cast<double>(nx) / 2.0;
  const double cy = static_cast<double>(ny) / 2.0;
  const double w = static_cast<double>(std::min(nx, ny)) / 6.0;
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ny; ++j) {
      const double dx = (static_cast<double>(i) - cx) / w;
      const double dy = (static_cast<double>(j) - cy) / w;
      const double d = std::sqrt(dx * dx + dy * dy);
      if (d < 1.0) ez[i * ny + j] = 0.5 * (1.0 + std::cos(std::numbers::pi * d));
    }
  }
  return ez;
}

Em2dResult em2d_reference(const Em2dProblem& prob) {
  Em2dResult out;
  Stopwatch clock;
  out.ez = prob.initial_ez();
  out.hx.assign(prob.nx * prob.ny, 0.0);
  out.hy.assign(prob.nx * prob.ny, 0.0);
  const Strip whole{0, prob.nx};
  for (std::size_t step = 0; step < prob.steps; ++step) {
    update_ez(prob, whole, out.ez, out.hx, out.hy);
    update_h(prob, whole, prob.nx, out.hx, out.hy, out.ez);
  }
  out.elapsed_ms = clock.elapsed_ms();
  return out;
}

Em2dResult em2d_mixed(const Em2dProblem& prob, std::size_t procs, ReadMode mode,
                      net::LatencyModel latency, std::uint64_t seed,
                      const std::optional<net::FaultPlan>& faults, bool reliable,
                      const std::optional<dsm::BatchingConfig>& batching,
                      const std::optional<dsm::DirectoryConfig>& directory,
                      const std::optional<obs::ProfilerOptions>& profile) {
  MC_CHECK(procs >= 1 && procs <= prob.nx);
  const std::size_t ny = prob.ny;

  dsm::Config cfg;
  cfg.num_procs = procs;
  cfg.num_vars = 2 * procs * ny;  // per proc: first Ez row + last Hy row
  cfg.latency = latency;
  cfg.seed = seed;
  cfg.faults = faults;
  cfg.reliable = reliable;
  cfg.batching = batching;
  cfg.directory = directory;
  cfg.profile = profile;
  dsm::MixedSystem sys(cfg);
  const auto first_ez = [&](ProcId p, std::size_t j) {
    return static_cast<VarId>(p * ny + j);
  };
  const auto last_hy = [&](ProcId p, std::size_t j) {
    return static_cast<VarId>(procs * ny + p * ny + j);
  };

  Em2dResult out;
  out.ez.assign(prob.nx * ny, 0.0);
  out.hx.assign(prob.nx * ny, 0.0);
  out.hy.assign(prob.nx * ny, 0.0);

  Stopwatch clock;
  sys.run([&](dsm::Node& n, ProcId p) {
    const Strip s = strip_of(prob.nx, procs, p);
    const std::vector<double> ez0 = prob.initial_ez();
    // Local state covers the full grid but only the strip (plus ghost rows
    // s.begin-1 for Hy and s.end for Ez) is ever touched.
    std::vector<double> ez(prob.nx * ny, 0.0);
    std::vector<double> hx(prob.nx * ny, 0.0);
    std::vector<double> hy(prob.nx * ny, 0.0);
    for (std::size_t i = s.begin; i < s.end; ++i) {
      for (std::size_t j = 0; j < ny; ++j) ez[i * ny + j] = ez0[i * ny + j];
    }
    for (std::size_t j = 0; j < ny; ++j) {
      n.write_double(first_ez(p, j), ez[s.begin * ny + j]);
      n.write_double(last_hy(p, j), 0.0);
    }
    n.barrier();

    for (std::size_t step = 0; step < prob.steps; ++step) {
      if (p > 0) {
        for (std::size_t j = 0; j < ny; ++j) {
          hy[(s.begin - 1) * ny + j] = n.read_double(last_hy(p - 1, j), mode);
        }
      }
      update_ez(prob, s, ez, hx, hy);
      for (std::size_t j = 0; j < ny; ++j) {
        n.write_double(first_ez(p, j), ez[s.begin * ny + j]);
      }
      n.barrier();

      if (p + 1 < procs) {
        for (std::size_t j = 0; j < ny; ++j) {
          ez[s.end * ny + j] = n.read_double(first_ez(p + 1, j), mode);
        }
      }
      update_h(prob, s, prob.nx, hx, hy, ez);
      for (std::size_t j = 0; j < ny; ++j) {
        n.write_double(last_hy(p, j), hy[(s.end - 1) * ny + j]);
      }
      n.barrier();
    }

    for (std::size_t i = s.begin; i < s.end; ++i) {
      for (std::size_t j = 0; j < ny; ++j) {
        out.ez[i * ny + j] = ez[i * ny + j];
        out.hx[i * ny + j] = hx[i * ny + j];
        out.hy[i * ny + j] = hy[i * ny + j];
      }
    }
  });
  out.elapsed_ms = clock.elapsed_ms();
  out.metrics = sys.metrics();
  if (profile.has_value()) out.profile = sys.profile();
  return out;
}

}  // namespace mc::apps
