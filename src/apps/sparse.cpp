#include "apps/sparse.h"

#include <cmath>

#include "common/check.h"

namespace mc::apps {

SparseSpd SparseSpd::random(std::size_t n, std::size_t band, double fill_prob,
                            std::uint64_t seed) {
  MC_CHECK(n > 0);
  SparseSpd m;
  m.n = n;
  m.a.assign(n * n, 0.0);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const bool in_band = i - j <= band;
      if (in_band || rng.chance(fill_prob)) {
        const double v = rng.uniform(-1.0, 1.0);
        m.a[i * n + j] = v;
        m.a[j * n + i] = v;
      }
    }
  }
  // Strict diagonal dominance implies positive definiteness for a
  // symmetric matrix with positive diagonal.
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) off += std::abs(m.a[i * n + j]);
    }
    m.a[i * n + i] = off + rng.uniform(1.0, 2.0);
  }
  return m;
}

std::size_t SparseSpd::nnz_lower() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      if (a[i * n + j] != 0.0) ++count;
    }
  }
  return count;
}

Symbolic analyze(const SparseSpd& m) {
  const std::size_t n = m.n;
  // Boolean right-looking elimination: start from A's lower pattern and add
  // fill — updating column k by column j fills every (i, k) with i in
  // pattern(j), i >= k.
  std::vector<std::vector<bool>> lower(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      if (m.at(i, j) != 0.0) lower[j][i] = true;  // lower[col][row]
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = j + 1; k < n; ++k) {
      if (!lower[j][k]) continue;
      for (std::size_t i = k; i < n; ++i) {
        if (lower[j][i]) lower[k][i] = true;  // fill-in
      }
    }
  }

  Symbolic sym;
  sym.n = n;
  sym.col_rows.resize(n);
  sym.col_updates.resize(n);
  sym.dep_count.assign(n, 0);
  for (std::size_t j = 0; j < n; ++j) {
    lower[j][j] = true;
    for (std::size_t i = j; i < n; ++i) {
      if (lower[j][i]) sym.col_rows[j].push_back(static_cast<std::uint32_t>(i));
    }
    for (std::size_t k = j + 1; k < n; ++k) {
      if (lower[j][k]) {
        sym.col_updates[j].push_back(static_cast<std::uint32_t>(k));
        ++sym.dep_count[k];
      }
    }
  }
  return sym;
}

std::size_t Symbolic::fill_nnz() const {
  std::size_t count = 0;
  for (const auto& rows : col_rows) count += rows.size();
  return count;
}

std::vector<double> cholesky_reference(const SparseSpd& m, const Symbolic& sym) {
  const std::size_t n = m.n;
  std::vector<double> l(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) l[i * n + j] = m.at(i, j);
  }
  // Right-looking, column by column — the exact computation Figure 5
  // distributes (lines 2-7), in the same floating-point order.
  for (std::size_t j = 0; j < n; ++j) {
    l[j * n + j] = std::sqrt(l[j * n + j]);
    for (const std::uint32_t i : sym.col_rows[j]) {
      if (i != j) l[i * n + j] /= l[j * n + j];
    }
    for (const std::uint32_t k : sym.col_updates[j]) {
      for (const std::uint32_t i : sym.col_rows[k]) {
        l[i * n + k] -= l[i * n + j] * l[k * n + j];
      }
    }
  }
  return l;
}

double factorization_error(const SparseSpd& m, const std::vector<double>& l) {
  const std::size_t n = m.n;
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) sum += l[i * n + k] * l[j * n + k];
      worst = std::max(worst, std::abs(sum - m.at(i, j)));
    }
  }
  return worst;
}

}  // namespace mc::apps
