// Section 5.2 in two dimensions: a TE-mode Yee scheme over a 2-D grid —
// the paper's application cites Madsen's Maxwell solvers on spatial grids,
// so alongside the 1-D pedagogical version (em_field.h) we provide the
// fuller 2-D computation:
//
//   Ez[i][j] += cE * (Hy[i][j] - Hy[i-1][j] - Hx[i][j] + Hx[i][j-1])
//   Hx[i][j] -= cH * (Ez[i][j+1] - Ez[i][j])
//   Hy[i][j] += cH * (Ez[i+1][j] - Ez[i][j])
//
// Row strips are distributed across processes; each E phase needs the
// upper neighbour's boundary Hy row and each H phase the lower neighbour's
// boundary Ez row.  Boundary rows are shared through DSM (ghost copies);
// the interior stays process-local.  Barriers separate phases and PRAM
// reads suffice (Corollary 2), exactly as in Figure 4.

#pragma once

#include <vector>

#include "common/stats.h"
#include "dsm/config.h"

namespace mc::apps {

struct Em2dProblem {
  std::size_t nx = 32;  ///< rows
  std::size_t ny = 32;  ///< columns
  std::size_t steps = 8;
  double c_e = 0.4;
  double c_h = 0.4;

  /// Initial Ez: a raised-cosine bump centered in the grid.
  [[nodiscard]] std::vector<double> initial_ez() const;
};

struct Em2dResult {
  std::vector<double> ez, hx, hy;  // nx*ny each, row-major
  double elapsed_ms = 0.0;
  MetricsSnapshot metrics;
  /// Merged contention profile (only when em2d_mixed's `profile` is set).
  obs::ProfileReport profile;
};

/// Sequential reference (identical arithmetic and update order).
Em2dResult em2d_reference(const Em2dProblem& prob);

/// Mixed-consistency run: row strips, ghost boundary rows, barriers, reads
/// under the given label.  Optional chaos-testing knobs mirror the other
/// Section 5 applications: a seeded fault plan, the reliability layer that
/// repairs it, and batched update propagation.
Em2dResult em2d_mixed(const Em2dProblem& prob, std::size_t procs, ReadMode mode,
                      net::LatencyModel latency = {}, std::uint64_t seed = 1,
                      const std::optional<net::FaultPlan>& faults = std::nullopt,
                      bool reliable = false,
                      const std::optional<dsm::BatchingConfig>& batching = std::nullopt,
                      const std::optional<dsm::DirectoryConfig>& directory = std::nullopt,
                      const std::optional<obs::ProfilerOptions>& profile = std::nullopt);

}  // namespace mc::apps
