// Section 5.1: the synchronous iterative linear-equation solver, in the
// paper's two parallel formulations plus the sequentially consistent
// baseline:
//
//   - Figure 2: barriers split each iteration into a read sub-phase and an
//     install sub-phase; the program is PRAM-consistent (Corollary 2), so
//     all shared reads are PRAM reads.
//   - Figure 3: no barriers — a coordinator handshakes with the workers
//     through `computed`/`updated` flags and await statements; Theorem 1
//     requires causal reads here (PRAM reads can observe inconsistent
//     estimates).
//   - The same barrier algorithm on the SC baseline, as the strong-memory
//     reference point.
//
// A coordinator (process 0) checks convergence; workers own row blocks.
// The arithmetic is shared with the sequential reference (matrix.h), so
// converged results agree bitwise and iteration counts are comparable.

#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "apps/matrix.h"
#include "baseline/sc_system.h"
#include "common/stats.h"
#include "dsm/config.h"

namespace mc::dsm {
class MixedSystem;
}

namespace mc::apps {

struct SolverOptions {
  std::size_t workers = 3;
  double tol = 1e-8;
  std::size_t max_iters = 400;
  net::LatencyModel latency = net::LatencyModel::zero();
  std::uint64_t seed = 1;
  bool record_trace = false;

  /// Section 6 optimization: elide vector timestamps from updates.  Legal
  /// for the Figure 2 (barrier + PRAM) formulation because the program is
  /// PRAM-consistent (Corollary 2); rejected at runtime for Figure 3.
  bool omit_timestamps = false;

  /// Chaos testing (docs/FAULTS.md): optional seeded fault plan applied to
  /// the fabric, plus the reliability layer that rebuilds the paper's
  /// reliable-FIFO channel assumption underneath it.
  std::optional<net::FaultPlan> faults;
  bool reliable = false;
  /// Tuning for the reliability layer when `reliable` is set — most
  /// usefully the delayed-ack knobs (ack_every / ack_flush) bench_batching
  /// sweeps against the batching configuration.
  net::ReliabilityConfig reliability;

  /// Batched update propagation (Config::batching): coalesce and frame the
  /// per-write broadcasts.  Flush-on-sync keeps every variant correct.
  std::optional<dsm::BatchingConfig> batching;

  /// Directory-based partial replication (Config::directory; requires
  /// `batching`): updates multicast only to registered sharers, replicas
  /// demand-page in, cold replicas evict under the budget.  Converged
  /// results are bitwise-identical to full replication.
  std::optional<dsm::DirectoryConfig> directory;

  /// Observer hook, called with the constructed MixedSystem before any
  /// process thread starts — the soak harness uses it to attach a live
  /// ConsistencyMonitor (obs/monitor.h).  The system is destroyed before
  /// the solve call returns, so anything attached must outlive the call.
  std::function<void(dsm::MixedSystem&)> system_hook;

  /// When nonzero, run under a watchdog with this stall deadline: a wedged
  /// run terminates with SolverResult::stalled set instead of hanging.
  std::chrono::nanoseconds stall_timeout{0};

  /// Contention profiling (Config::profile): when set, the merged
  /// attribution lands in SolverResult::profile (the system is destroyed
  /// before the solve returns, so the report is captured for the caller).
  std::optional<obs::ProfilerOptions> profile;
};

struct SolverResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  bool converged = false;
  double elapsed_ms = 0.0;
  MetricsSnapshot metrics;
  /// Watchdog outcome (only when SolverOptions::stall_timeout is set).
  bool stalled = false;
  std::string stall_reason;
  /// Merged contention profile (only when SolverOptions::profile is set).
  obs::ProfileReport profile;
};

/// Figure 2: barriers + PRAM reads on mixed consistency.
SolverResult solve_barrier_pram(const LinearSystem& sys, const SolverOptions& opt);

/// Figure 3: coordinator handshaking + awaits + causal reads.
SolverResult solve_handshake_causal(const LinearSystem& sys, const SolverOptions& opt);

/// Figure 2's algorithm on the sequentially consistent baseline.
SolverResult solve_sc_baseline(const LinearSystem& sys, const SolverOptions& opt);

/// Membership script for solve_barrier_elastic.  Workers are named by
/// worker index w (process w+1); the coordinator (process 0) is always a
/// member and never departs.
struct ElasticSchedule {
  /// Workers in view 0.  Empty means every worker starts as a member.
  std::vector<std::size_t> initial_workers;
  /// worker -> last sweep it computes; it leaves gracefully right after.
  std::map<std::size_t, std::size_t> leave_after;
  /// worker -> sweep after which it crash-stops (goes silent mid-run).
  /// The coordinator does NOT consult this: it keeps planning the victim
  /// until the reliability layer's give-up verdict evicts it — the honest
  /// failure-detection path.  Requires SolverOptions::reliable.
  std::map<std::size_t, std::size_t> crash_after;
  /// Workers outside view 0 that join as soon as their thread starts.
  std::vector<std::size_t> joiners;
};

/// Elastic-membership variant of the Figure 2 barrier solver
/// (Config::elastic).  The coordinator publishes a per-sweep plan of
/// active workers (scripted membership ∩ live view); workers re-partition
/// rows each sweep from the plan; graceful leavers exit at sweep
/// boundaries; joiners align with the in-flight barrier structure via
/// Node::next_barrier_epoch and announce readiness before being planned.
/// A Jacobi sweep is partition-independent, so any crash-free schedule
/// converges bitwise-identically to the fixed-membership solver; runs with
/// crashes still converge (a victim's rows go stale only between its last
/// install and the eviction commit).
SolverResult solve_barrier_elastic(const LinearSystem& sys, const SolverOptions& opt,
                                   const ElasticSchedule& sched);

/// Section 7's closing observation: "equivalence to a sequentially
/// consistent computation may not always be necessary — some asynchronous
/// relaxation algorithms such as Gauss-Seidel iteration converge even with
/// PRAM."  Workers sweep their row blocks Gauss-Seidel style with *no*
/// synchronization, installing each component as soon as it is computed and
/// reading whatever PRAM values have arrived; the coordinator polls the
/// residual and raises `done`.  The result matches the reference solution
/// numerically (same fixed point) but not bitwise, and iteration counts are
/// schedule-dependent.
SolverResult solve_async_gauss_seidel(const LinearSystem& sys, const SolverOptions& opt);

/// Variant hooks used by tests: run Figure 2 with a chosen read label
/// (running it with causal reads is legal and equally correct, just
/// stronger than necessary) and optionally capture the trace.
struct SolverRun {
  SolverResult result;
  history::History history{0};
};
SolverRun solve_barrier_traced(const LinearSystem& sys, const SolverOptions& opt,
                               ReadMode mode);
SolverRun solve_handshake_traced(const LinearSystem& sys, const SolverOptions& opt);

}  // namespace mc::apps
