// Dense linear-algebra helpers for the Section 5 applications: diagonally
// dominant system generation, the sequential Jacobi reference solver, and
// residual checks.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace mc::apps {

/// A dense linear system A x = b with strictly diagonally dominant A (the
/// classic sufficient condition for Jacobi convergence).
struct LinearSystem {
  std::size_t n = 0;
  std::vector<double> a;  // row-major n*n
  std::vector<double> b;

  [[nodiscard]] double at(std::size_t i, std::size_t j) const { return a[i * n + j]; }

  /// Random strictly diagonally dominant system.
  static LinearSystem random(std::size_t n, std::uint64_t seed);
};

/// One Jacobi sweep in the paper's update form:
///   temp[i] = x[i] + (b[i] - sum_j A[i][j] x[j]) / A[i][i]
/// for rows [row_begin, row_end).  Reading x through `read_x` lets the DSM
/// variants plug in PRAM/causal/SC reads while keeping the arithmetic (and
/// hence bitwise results) identical to the sequential reference.
template <typename ReadX>
void jacobi_rows(const LinearSystem& sys, std::size_t row_begin, std::size_t row_end,
                 ReadX&& read_x, std::vector<double>& temp) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < sys.n; ++j) sum += sys.at(i, j) * read_x(j);
    temp[i] = read_x(i) + (sys.b[i] - sum) / sys.at(i, i);
  }
}

/// Infinity-norm residual ||A x - b||.
double residual_inf(const LinearSystem& sys, const std::vector<double>& x);

struct JacobiReference {
  std::vector<double> x;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Sequential Jacobi iteration to tolerance `tol` (residual infinity norm).
JacobiReference jacobi_reference(const LinearSystem& sys, double tol,
                                 std::size_t max_iters);

/// Max |u_i - v_i|.
double max_abs_diff(const std::vector<double>& u, const std::vector<double>& v);

}  // namespace mc::apps
