// Live time-series telemetry: periodic MetricsSnapshot diffing into
// timestamped delta records, retained in a bounded ring and streamed as
// JSONL (docs/METRICS.md "Time series").
//
// A MetricsSnapshot is a flat key -> uint64 map mixing two kinds of values:
// monotone counters (net.messages, checker.ops, histogram .count/.sum keys)
// and levels (checker.live_nodes, monitor.queued, histogram quantiles).
// The sampler splits each sample accordingly: counters are reported as
// deltas over the interval (with derived per-second rates in the JSONL),
// gauges as their current value.  That makes a long soak readable — a flat
// `checker.live_nodes` gauge under growing `checker.ops` deltas is the
// bounded-memory story in one plot.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/stats.h"

namespace mc::obs {

/// True for keys that report a current level rather than a monotone count:
/// histogram summary keys (.mean/.p50/.p90/.p99/.max), resident-state sizes
/// (checker.live_nodes, monitor.queued), rolling verdicts, and liveness
/// probes (watchdog.*, net.peer_unreachable).
[[nodiscard]] bool timeseries_is_gauge(std::string_view key);

/// One sampling interval: counter deltas plus gauge levels at time `t_ms`.
struct TimeSeriesRecord {
  std::uint64_t t_ms = 0;   ///< sample time, ms since the sampler's epoch
  std::uint64_t dt_ms = 0;  ///< interval the counter deltas cover
  std::map<std::string, std::uint64_t> counters;  ///< deltas over [t-dt, t]
  std::map<std::string, std::uint64_t> gauges;    ///< levels at t

  /// The record as one compact JSONL line (type "sample", no trailing
  /// newline).  Counter rates (events/s) are derived when dt_ms > 0.
  [[nodiscard]] std::string to_jsonl() const;
};

/// Bounded ring of TimeSeriesRecords built by diffing successive snapshots.
/// Thread-safe; writers (sample) and readers (records/to_jsonl) may race.
class TimeSeries {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit TimeSeries(std::size_t capacity = kDefaultCapacity);

  /// Diff `snap` against the previous sample and append the record; the
  /// first call establishes the baseline (dt_ms = t_ms).  When the ring is
  /// full the oldest record is dropped (counted, never silently).
  TimeSeriesRecord sample(const MetricsSnapshot& snap, std::uint64_t t_ms);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Retained records, oldest first.
  [[nodiscard]] std::vector<TimeSeriesRecord> records() const;

  /// Retained records as newline-terminated JSONL sample lines.
  [[nodiscard]] std::string to_jsonl() const;

 private:
  const std::size_t capacity_;

  mutable std::mutex mu_;
  std::deque<TimeSeriesRecord> ring_;
  std::uint64_t dropped_ = 0;
  MetricsSnapshot prev_;
  std::uint64_t prev_t_ms_ = 0;
  bool have_prev_ = false;
};

/// Background sampler: polls a snapshot source every `period` into a
/// TimeSeries.  stop() (and the destructor) takes one final sample so short
/// runs always produce at least one record.
class MetricsSampler {
 public:
  MetricsSampler(std::function<MetricsSnapshot()> source,
                 std::chrono::milliseconds period = std::chrono::milliseconds(250),
                 std::size_t capacity = TimeSeries::kDefaultCapacity);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Take a final sample and join the polling thread.  Idempotent.
  void stop();

  [[nodiscard]] const TimeSeries& series() const { return series_; }

 private:
  void loop();

  const std::function<MetricsSnapshot()> source_;
  const std::chrono::milliseconds period_;
  TimeSeries series_;
  Stopwatch clock_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace mc::obs
