#include "obs/monitor.h"

#include <algorithm>

#include "common/check.h"

namespace mc::obs {

ConsistencyMonitor::ConsistencyMonitor(std::size_t num_procs,
                                       std::map<BarrierId, std::size_t> barrier_membership)
    : num_procs_(num_procs),
      membership_(std::move(barrier_membership)),
      checker_(num_procs),
      queues_(num_procs),
      fed_wseq_(num_procs, 0),
      bar_gate_(num_procs, kNoGate) {
  checker_.set_live_capture(true);
}

std::size_t ConsistencyMonitor::expected_members(std::uint64_t key) const {
  const auto bid = static_cast<BarrierId>(key >> 32);
  auto it = membership_.find(bid);
  return it == membership_.end() ? num_procs_ : it->second;
}

void ConsistencyMonitor::on_op(const history::Operation& op) {
  std::scoped_lock lk(mu_);
  if (finalized_ || op.proc >= num_procs_) {
    ++skipped_;
    return;
  }
  ++enqueued_;
  ++queued_;
  if (history::is_lock_op(op.kind)) {
    lock_pending_[op.lock].insert(op.lock_episode);
  }
  queues_[op.proc].push_back(op);
  pump();
}

bool ConsistencyMonitor::ready(const history::Operation& op, ProcId p) const {
  // Barrier-successor gate: nothing after a member until the instance's
  // expected membership has been fed.  Member counting deadlocks are
  // impossible because the gate counts *fed* members, and members are
  // themselves never gated by anything that waits on this process.
  if (bar_gate_[p] != kNoGate) {
    auto it = bar_fed_.find(bar_gate_[p]);
    // A missing entry means the instance completed and was retired after
    // every gated successor passed — nothing left to wait for.
    if (it != bar_fed_.end() && it->second.fed < expected_members(bar_gate_[p])) {
      return false;
    }
  }
  switch (op.kind) {
    case history::OpKind::kRead:
    case history::OpKind::kAwait:
      // The source write must be fed first; sources of other systems (the
      // initial value's kNoProc) pass through.
      return !op.write_id.valid() || op.write_id.proc >= num_procs_ ||
             fed_wseq_[op.write_id.proc] >= op.write_id.seq;
    case history::OpKind::kReadLock:
    case history::OpKind::kReadUnlock:
    case history::OpKind::kWriteLock:
    case history::OpKind::kWriteUnlock: {
      // Episode order: this operation goes only when no earlier episode of
      // the lock is still enqueued-unfed anywhere.
      auto it = lock_pending_.find(op.lock);
      MC_CHECK(it != lock_pending_.end() && !it->second.empty());
      return *it->second.begin() >= op.lock_episode;
    }
    default:
      return true;  // writes, deltas, barrier members
  }
}

void ConsistencyMonitor::feed_one(const history::Operation& op, ProcId p) {
  checker_.feed(op, next_ext_++);
  --queued_;
  // This op just passed p's barrier gate (ready() said so); the instance's
  // counter can be retired once every member's successor has passed.  The
  // gate itself clears even when the op is another barrier member — the new
  // instance's gate replaces it below.
  if (bar_gate_[p] != kNoGate) {
    auto it = bar_fed_.find(bar_gate_[p]);
    if (it != bar_fed_.end() &&
        ++it->second.passed >= expected_members(bar_gate_[p])) {
      bar_fed_.erase(it);
    }
    bar_gate_[p] = kNoGate;
  }
  switch (op.kind) {
    case history::OpKind::kWrite:
    case history::OpKind::kDelta:
      fed_wseq_[p] = std::max(fed_wseq_[p], op.write_id.seq);
      break;
    case history::OpKind::kReadLock:
    case history::OpKind::kReadUnlock:
    case history::OpKind::kWriteLock:
    case history::OpKind::kWriteUnlock: {
      auto& pending = lock_pending_.at(op.lock);
      pending.erase(pending.find(op.lock_episode));
      if (pending.empty()) lock_pending_.erase(op.lock);
      break;
    }
    case history::OpKind::kBarrier:
      ++bar_fed_[bar_key(op)].fed;
      bar_gate_[p] = bar_key(op);
      break;
    default:
      break;
  }
  if (checker_.prune_pending()) checker_.prune();
}

void ConsistencyMonitor::pump() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (ProcId p = 0; p < num_procs_; ++p) {
      while (!queues_[p].empty() && ready(queues_[p].front(), p)) {
        const history::Operation op = std::move(queues_[p].front());
        queues_[p].pop_front();
        feed_one(op, p);
        progress = true;
      }
    }
  }
}

ConsistencyMonitor::Status ConsistencyMonitor::status() const {
  std::scoped_lock lk(mu_);
  Status s;
  s.counts = checker_.live_counts();
  s.enqueued = enqueued_;
  s.queued = queued_;
  s.skipped = skipped_;
  s.structural_failed = checker_.failed();
  return s;
}

MetricsSnapshot ConsistencyMonitor::metrics() const {
  std::scoped_lock lk(mu_);
  MetricsSnapshot m = checker_.metrics();
  const auto counts = checker_.live_counts();
  m.values["monitor.enqueued"] = enqueued_;
  m.values["monitor.queued"] = queued_;
  m.values["monitor.skipped"] = skipped_;
  m.values["monitor.verdict.causal"] = counts.violations_causal == 0 ? 1 : 0;
  m.values["monitor.verdict.pram"] = counts.violations_pram == 0 ? 1 : 0;
  m.values["monitor.verdict.mixed"] = counts.violations_mixed == 0 ? 1 : 0;
  m.values["monitor.structural_ok"] = checker_.failed() ? 0 : 1;
  return m;
}

std::string ConsistencyMonitor::first_violation_dot() const {
  std::scoped_lock lk(mu_);
  return checker_.first_violation_dot();
}

history::GraphVerdict ConsistencyMonitor::finalize() {
  std::scoped_lock lk(mu_);
  MC_CHECK_MSG(!finalized_, "monitor finalized twice");
  finalized_ = true;
  pump();
  for (const auto& q : queues_) skipped_ += q.size();
  queued_ = 0;
  for (auto& q : queues_) q.clear();
  return checker_.finalize();
}

}  // namespace mc::obs
