#include "obs/monitor.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace mc::obs {

ConsistencyMonitor::ConsistencyMonitor(std::size_t num_procs,
                                       std::map<BarrierId, std::size_t> barrier_membership)
    : num_procs_(num_procs),
      membership_(std::move(barrier_membership)),
      checker_(num_procs),
      queues_(num_procs),
      fed_wseq_(num_procs, 0),
      bar_gate_(num_procs, kNoGate) {
  checker_.set_live_capture(true);
}

std::uint64_t ConsistencyMonitor::needed_mask(std::uint64_t key) const {
  // Alive members admitted at or before this instance (elastic runs only).
  const auto bid = static_cast<BarrierId>(key >> 32);
  const std::uint64_t epoch = key & 0xffffffffull;
  const auto mf = member_from_.find(bid);
  std::uint64_t mask = 0;
  for (ProcId p = 0; p < num_procs_ && p < 64; ++p) {
    if (((alive_mask_ >> p) & 1) == 0) continue;
    if (mf != member_from_.end()) {
      const auto jt = mf->second.find(p);
      if (jt != mf->second.end() && jt->second > epoch) continue;
    }
    mask |= std::uint64_t{1} << p;
  }
  return mask;
}

bool ConsistencyMonitor::gate_open(std::uint64_t key, const BarGate& g) const {
  const auto bid = static_cast<BarrierId>(key >> 32);
  auto it = membership_.find(bid);
  if (it != membership_.end()) return g.fed >= it->second;  // subset barrier
  if (!elastic_) return g.fed >= num_procs_;
  // Elastic full barrier: every alive member admitted at this instance must
  // have fed its own arrival.  A head count is not enough — a departed
  // member's early feed must not stand in for a live member still queued.
  // Feeds from since-departed members beyond the needed set are harmless:
  // their arrivals were counted by the release that let everyone through.
  return (needed_mask(key) & ~g.fed_mask) == 0;
}

bool ConsistencyMonitor::gate_done(std::uint64_t key, const BarGate& g) const {
  // Retire the instance once it released and every member that fed has had
  // its successor pass.  A member whose process emits nothing further (a
  // graceful leave right after the barrier) leaves the entry resident until
  // finalize — bounded by live barrier objects, not by run length.
  if (!gate_open(key, g)) return false;
  const auto bid = static_cast<BarrierId>(key >> 32);
  const bool full = membership_.find(bid) == membership_.end();
  const std::size_t feds =
      elastic_ && full ? static_cast<std::size_t>(std::popcount(g.fed_mask)) : (full ? num_procs_ : g.fed);
  return g.passed >= feds;
}

void ConsistencyMonitor::enable_elastic(std::uint64_t initial_alive) {
  std::scoped_lock lk(mu_);
  elastic_ = true;
  alive_mask_ = initial_alive;
}

void ConsistencyMonitor::on_view(std::uint64_t epoch, std::uint64_t alive_mask) {
  std::scoped_lock lk(mu_);
  if (!elastic_ || finalized_ || epoch <= view_epoch_) return;
  const std::uint64_t departed = alive_mask_ & ~alive_mask;
  view_epoch_ = epoch;
  alive_mask_ = alive_mask;
  // Evicted members stop owing freshness to later reads: the DSM's masked
  // floors waive the victim's possibly-lost write tail, and the checker
  // must waive it too or honest crash-loss reads as staleness.
  for (ProcId p = 0; p < num_procs_ && p < 64; ++p) {
    if ((departed >> p) & 1) checker_.on_proc_departed(p);
  }
  // Membership shrank: gates waiting on a now-dead member can open.
  pump();
}

void ConsistencyMonitor::on_barrier_member_from(BarrierId barrier, ProcId joiner,
                                                std::uint64_t from_epoch) {
  std::scoped_lock lk(mu_);
  if (!elastic_ || finalized_) return;
  member_from_[barrier][joiner] = from_epoch;
  pump();
}

void ConsistencyMonitor::on_op(const history::Operation& op) {
  std::scoped_lock lk(mu_);
  if (finalized_ || op.proc >= num_procs_) {
    ++skipped_;
    return;
  }
  ++enqueued_;
  ++queued_;
  if (history::is_lock_op(op.kind)) {
    lock_pending_[op.lock].insert(op.lock_episode);
  }
  queues_[op.proc].push_back(op);
  pump();
}

bool ConsistencyMonitor::ready(const history::Operation& op, ProcId p) const {
  // Barrier-successor gate: nothing after a member until the instance's
  // expected membership has been fed.  Member counting deadlocks are
  // impossible because the gate counts *fed* members, and members are
  // themselves never gated by anything that waits on this process.
  if (bar_gate_[p] != kNoGate) {
    auto it = bar_fed_.find(bar_gate_[p]);
    // A missing entry means the instance completed and was retired after
    // every gated successor passed — nothing left to wait for.
    if (it != bar_fed_.end() && !gate_open(bar_gate_[p], it->second)) {
      return false;
    }
  }
  switch (op.kind) {
    case history::OpKind::kRead:
    case history::OpKind::kAwait:
      // The source write must be fed first; sources of other systems (the
      // initial value's kNoProc) pass through.
      return !op.write_id.valid() || op.write_id.proc >= num_procs_ ||
             fed_wseq_[op.write_id.proc] >= op.write_id.seq;
    case history::OpKind::kReadLock:
    case history::OpKind::kReadUnlock:
    case history::OpKind::kWriteLock:
    case history::OpKind::kWriteUnlock: {
      // Episode order: this operation goes only when no earlier episode of
      // the lock is still enqueued-unfed anywhere.
      auto it = lock_pending_.find(op.lock);
      MC_CHECK(it != lock_pending_.end() && !it->second.empty());
      return *it->second.begin() >= op.lock_episode;
    }
    default:
      return true;  // writes, deltas, barrier members
  }
}

void ConsistencyMonitor::feed_one(const history::Operation& op, ProcId p) {
  checker_.feed(op, next_ext_++);
  --queued_;
  // This op just passed p's barrier gate (ready() said so); the instance's
  // counter can be retired once every member's successor has passed.  The
  // gate itself clears even when the op is another barrier member — the new
  // instance's gate replaces it below.
  if (bar_gate_[p] != kNoGate) {
    auto it = bar_fed_.find(bar_gate_[p]);
    if (it != bar_fed_.end()) {
      ++it->second.passed;
      if (gate_done(bar_gate_[p], it->second)) bar_fed_.erase(it);
    }
    bar_gate_[p] = kNoGate;
  }
  switch (op.kind) {
    case history::OpKind::kWrite:
    case history::OpKind::kDelta:
      fed_wseq_[p] = std::max(fed_wseq_[p], op.write_id.seq);
      break;
    case history::OpKind::kReadLock:
    case history::OpKind::kReadUnlock:
    case history::OpKind::kWriteLock:
    case history::OpKind::kWriteUnlock: {
      auto& pending = lock_pending_.at(op.lock);
      pending.erase(pending.find(op.lock_episode));
      if (pending.empty()) lock_pending_.erase(op.lock);
      break;
    }
    case history::OpKind::kBarrier: {
      BarGate& g = bar_fed_[bar_key(op)];
      ++g.fed;
      if (p < 64) g.fed_mask |= std::uint64_t{1} << p;
      bar_gate_[p] = bar_key(op);
      break;
    }
    default:
      break;
  }
  if (checker_.prune_pending()) checker_.prune();
}

void ConsistencyMonitor::pump() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (ProcId p = 0; p < num_procs_; ++p) {
      while (!queues_[p].empty() && ready(queues_[p].front(), p)) {
        const history::Operation op = std::move(queues_[p].front());
        queues_[p].pop_front();
        feed_one(op, p);
        progress = true;
      }
    }
  }
}

ConsistencyMonitor::Status ConsistencyMonitor::status() const {
  std::scoped_lock lk(mu_);
  Status s;
  s.counts = checker_.live_counts();
  s.enqueued = enqueued_;
  s.queued = queued_;
  s.skipped = skipped_;
  s.structural_failed = checker_.failed();
  return s;
}

MetricsSnapshot ConsistencyMonitor::metrics() const {
  std::scoped_lock lk(mu_);
  MetricsSnapshot m = checker_.metrics();
  const auto counts = checker_.live_counts();
  m.values["monitor.enqueued"] = enqueued_;
  m.values["monitor.queued"] = queued_;
  m.values["monitor.skipped"] = skipped_;
  m.values["monitor.verdict.causal"] = counts.violations_causal == 0 ? 1 : 0;
  m.values["monitor.verdict.pram"] = counts.violations_pram == 0 ? 1 : 0;
  m.values["monitor.verdict.mixed"] = counts.violations_mixed == 0 ? 1 : 0;
  m.values["monitor.structural_ok"] = checker_.failed() ? 0 : 1;
  return m;
}

std::string ConsistencyMonitor::first_violation_dot() const {
  std::scoped_lock lk(mu_);
  return checker_.first_violation_dot();
}

history::GraphVerdict ConsistencyMonitor::finalize() {
  std::scoped_lock lk(mu_);
  MC_CHECK_MSG(!finalized_, "monitor finalized twice");
  finalized_ = true;
  pump();
  for (const auto& q : queues_) skipped_ += q.size();
  queued_ = 0;
  for (auto& q : queues_) q.clear();
  return checker_.finalize();
}

}  // namespace mc::obs
