// Minimal JSON support for the observability layer: a stream writer with
// deterministic output (callers control key order; std::map-driven emitters
// are sorted and therefore stable) and a small recursive-descent parser used
// by tests and tools to validate emitted documents.
//
// No external dependencies — this is the serialization substrate for
// RunReport (docs/METRICS.md) and the Chrome-trace dump, both of which must
// be consumable by standard tooling (jq, chrome://tracing, CI scripts).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mc::obs {

/// Escape `s` for embedding inside a JSON string literal (quotes not
/// included).  Control characters become \uXXXX; UTF-8 passes through.
[[nodiscard]] std::string json_escape(std::string_view s);

/// An append-only JSON document builder.  Structural errors (value without
/// a key inside an object, unbalanced end_*) are programming errors and
/// assert.  `indent > 0` pretty-prints; 0 emits compact JSON.
class JsonWriter {
 public:
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit the key of the next object member.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& null();

  /// The finished document.  All containers must be closed.
  [[nodiscard]] const std::string& str() const;

 private:
  void before_value();
  void newline_indent();

  std::string out_;
  int indent_;
  // One frame per open container: true while it has no members yet.
  std::vector<bool> first_in_;
  bool pending_key_ = false;
};

/// Parsed JSON value.  Object member order is preserved as written.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  /// Set (with is_uint) when the number token is a non-negative integer
  /// that fits in 64 bits — lets tests compare counters exactly.
  std::uint64_t uint_value = 0;
  bool is_uint = false;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> members;   // kObject
  std::vector<JsonValue> elements;                          // kArray

  /// Strict parse of a complete document; nullopt on any syntax error or
  /// trailing garbage.
  [[nodiscard]] static std::optional<JsonValue> parse(std::string_view text);

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

}  // namespace mc::obs
