#include "obs/timeseries.h"

#include <utility>

#include "obs/json.h"

namespace mc::obs {

bool timeseries_is_gauge(std::string_view key) {
  static constexpr std::string_view kSuffixes[] = {".mean", ".p50", ".p90",
                                                   ".p99", ".max"};
  for (std::string_view s : kSuffixes) {
    if (key.ends_with(s)) return true;
  }
  static constexpr std::string_view kLevels[] = {
      "checker.live_nodes",   "monitor.queued",
      "monitor.verdict.causal", "monitor.verdict.pram",
      "monitor.verdict.mixed",  "monitor.structural_ok",
      "net.peer_unreachable",   "watchdog.blocked_waits",
      "watchdog.fired",
      // Profiler sketch occupancy is a level of the live tables, not an
      // event counter (the overflow tallies, by contrast, are counters).
      "profile.vars.tracked", "profile.locks.tracked",
      "profile.barriers.tracked",
  };
  for (std::string_view k : kLevels) {
    if (key == k) return true;
  }
  return false;
}

std::string TimeSeriesRecord::to_jsonl() const {
  JsonWriter w(0);
  w.begin_object();
  w.key("type").value("sample");
  w.key("t_ms").value(t_ms);
  w.key("dt_ms").value(dt_ms);
  w.key("counters").begin_object();
  for (const auto& [k, v] : counters) w.key(k).value(v);
  w.end_object();
  if (dt_ms > 0) {
    w.key("rates").begin_object();
    for (const auto& [k, v] : counters) {
      w.key(k).value(static_cast<double>(v) * 1000.0 / static_cast<double>(dt_ms));
    }
    w.end_object();
  }
  w.key("gauges").begin_object();
  for (const auto& [k, v] : gauges) w.key(k).value(v);
  w.end_object();
  w.end_object();
  return w.str();
}

TimeSeries::TimeSeries(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

TimeSeriesRecord TimeSeries::sample(const MetricsSnapshot& snap, std::uint64_t t_ms) {
  std::scoped_lock lk(mu_);
  TimeSeriesRecord rec;
  rec.t_ms = t_ms;
  rec.dt_ms = have_prev_ ? (t_ms >= prev_t_ms_ ? t_ms - prev_t_ms_ : 0) : t_ms;
  for (const auto& [k, v] : snap.values) {
    if (timeseries_is_gauge(k)) {
      rec.gauges[k] = v;
    } else {
      const std::uint64_t base = have_prev_ ? prev_.get(k) : 0;
      // Clamp like MetricsSnapshot::since: a reset counter reads as quiet,
      // not as a huge negative delta wrapped around.
      rec.counters[k] = v >= base ? v - base : 0;
    }
  }
  prev_ = snap;
  prev_t_ms_ = t_ms;
  have_prev_ = true;
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(rec);
  return rec;
}

std::size_t TimeSeries::size() const {
  std::scoped_lock lk(mu_);
  return ring_.size();
}

std::uint64_t TimeSeries::dropped() const {
  std::scoped_lock lk(mu_);
  return dropped_;
}

std::vector<TimeSeriesRecord> TimeSeries::records() const {
  std::scoped_lock lk(mu_);
  return {ring_.begin(), ring_.end()};
}

std::string TimeSeries::to_jsonl() const {
  std::string out;
  for (const auto& rec : records()) {
    out += rec.to_jsonl();
    out += '\n';
  }
  return out;
}

MetricsSampler::MetricsSampler(std::function<MetricsSnapshot()> source,
                               std::chrono::milliseconds period,
                               std::size_t capacity)
    : source_(std::move(source)),
      period_(period.count() > 0 ? period : std::chrono::milliseconds(1)),
      series_(capacity) {
  thread_ = std::thread([this] { loop(); });
}

MetricsSampler::~MetricsSampler() { stop(); }

void MetricsSampler::stop() {
  {
    std::scoped_lock lk(mu_);
    if (stopped_) return;
    stop_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final sample so even a sub-period run yields a record, and so the last
  // partial interval is not lost.
  series_.sample(source_(), static_cast<std::uint64_t>(clock_.elapsed_ms()));
}

void MetricsSampler::loop() {
  std::unique_lock lk(mu_);
  while (!stop_) {
    if (cv_.wait_for(lk, period_, [this] { return stop_; })) break;
    lk.unlock();
    series_.sample(source_(), static_cast<std::uint64_t>(clock_.elapsed_ms()));
    lk.lock();
  }
}

}  // namespace mc::obs
