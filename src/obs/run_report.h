// RunReport: the machine-readable result document every bench harness can
// emit next to its human-readable table (the `--json <path>` flag).
//
// The layout is versioned (kSchemaVersion, bumped on any incompatible
// change) and fully documented in docs/METRICS.md.  Key order is stable:
// fixed fields first, then std::map-sorted dictionaries — so reports diff
// cleanly across runs and the perf trajectory (BENCH_*.json) can be tracked
// in version control.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "obs/profiler.h"

namespace mc::obs {

struct RunReport {
  /// Bumped whenever the document layout changes incompatibly.
  /// v2: rows gained an optional "critical_path" section (docs/METRICS.md).
  /// v3: rows gained an optional "profile" section (contention profiler,
  ///     docs/PROFILING.md) and diagnostics gained the "hot" culprit list.
  static constexpr int kSchemaVersion = 3;

  /// Harness name, e.g. "bench_sync"; names the BENCH_<name>.json artifact.
  std::string bench;

  /// Run-level configuration (latency model, build flavor, ...).
  std::map<std::string, std::string> config;

  /// Watchdog dump for a case that stalled (docs/METRICS.md).  Serialized
  /// under the row's "diagnostics" key only when `fired` is set, so healthy
  /// runs keep their layout unchanged.
  struct Diagnostics {
    bool fired = false;
    std::string reason;
    std::vector<std::string> stalled_waits;
    std::vector<std::string> deadlock_cycle;
    std::vector<std::string> locks;
    std::vector<std::string> barriers;
    std::vector<std::uint64_t> in_flight;
    std::vector<std::string> unreachable;
    /// Hottest contended lock / hottest variable from the live contention
    /// profile (only when Config::profile was set), so a stall report
    /// names a culprit instead of just a wait set.
    std::vector<std::string> hot;
  };

  /// Critical-path decomposition of the case's trace window
  /// (src/obs/critical_path.h).  Serialized under the row's
  /// "critical_path" key only when `present` is set — rows from untraced
  /// runs keep their layout unchanged.
  struct CriticalPathSection {
    bool present = false;
    double total_ms = 0.0;  ///< weight of the longest causal path
    /// Per-category share of total_ms, keyed by the analyzer's category
    /// names (compute, lock_wait, barrier_wait, await_spin, read_block,
    /// net_transit, retransmit, deliver).  Zero categories are omitted.
    std::map<std::string, double> category_ms;
    std::uint64_t dag_nodes = 0;
    std::uint64_t path_nodes = 0;
  };

  /// One row per experiment case.
  struct Row {
    std::string name;
    /// Case parameters (process count, problem size, policy, ...).
    std::map<std::string, std::string> params;
    /// End-to-end wall time of the case.
    double wall_ms = 0.0;
    /// Optional sub-phase wall times (milliseconds).
    std::map<std::string, double> phase_ms;
    /// Optional derived scalar statistics (e.g. ns_per_op).
    std::map<std::string, double> stats;
    /// Protocol-cost counters and histogram summaries (docs/METRICS.md).
    MetricsSnapshot metrics;
    /// Present only for rows measured under `--trace`.
    CriticalPathSection critical_path;
    /// Contention-profiler attribution (src/obs/profiler.h).  Serialized
    /// under the row's "profile" key only when `profile_present` is set —
    /// rows from unprofiled runs keep their layout unchanged.
    bool profile_present = false;
    ProfileReport profile;
    /// Present (fired == true) only when the case's watchdog fired.
    Diagnostics diagnostics;
  };
  std::vector<Row> rows;

  /// Append an empty row and return it for filling.
  Row& add_row(std::string name);

  /// The full document as pretty-printed JSON.
  [[nodiscard]] std::string to_json() const;

  /// Write to_json() to `path`; false (with errno intact) on I/O failure.
  bool write_file(const std::string& path) const;
};

}  // namespace mc::obs
