#include "obs/profiler.h"

#include <algorithm>
#include <sstream>

namespace mc::obs {

namespace {

inline std::uint64_t max64(std::uint64_t a, std::uint64_t b) { return a > b ? a : b; }

/// Fixed-point "x.y×" for advisor text without locale-dependent printf.
std::string times(double ratio) {
  const auto tenths = static_cast<std::uint64_t>(ratio * 10.0 + 0.5);
  std::ostringstream os;
  os << tenths / 10 << '.' << tenths % 10 << "x";
  return os.str();
}

}  // namespace

void VarProfile::merge(const VarProfile& o) {
  reads += o.reads;
  writes += o.writes;
  fetches += o.fetches;
  fill_records += o.fill_records;
  evictions += o.evictions;
  update_bytes += o.update_bytes;
  sharer_adds += o.sharer_adds;
  sharer_dels += o.sharer_dels;
}

void LockProfile::merge(const LockProfile& o) {
  acquires += o.acquires;
  contended += o.contended;
  handoffs += o.handoffs;
  acquire_ns_sum += o.acquire_ns_sum;
  acquire_ns_max = max64(acquire_ns_max, o.acquire_ns_max);
  holds += o.holds;
  hold_ns_sum += o.hold_ns_sum;
  hold_ns_max = max64(hold_ns_max, o.hold_ns_max);
  max_queue = max64(max_queue, o.max_queue);
}

void BarrierProfile::merge(const BarrierProfile& o) {
  instances += o.instances;
  arrivals += o.arrivals;
  skew_ns_sum += o.skew_ns_sum;
  skew_ns_max = max64(skew_ns_max, o.skew_ns_max);
}

void ProfileReport::merge(const ProfileReport& o) {
  vars.merge(o.vars);
  locks.merge(o.locks);
  barriers.merge(o.barriers);
}

namespace {

template <typename T, typename Cost>
std::vector<std::pair<std::uint64_t, T>> ranked(const std::map<std::uint64_t, T>& m,
                                                std::size_t k, Cost cost) {
  std::vector<std::pair<std::uint64_t, T>> rows(m.begin(), m.end());
  // Stable sort over the id-ordered map input = id-ascending tie-break.
  std::stable_sort(rows.begin(), rows.end(), [&](const auto& a, const auto& b) {
    return cost(a.second) > cost(b.second);
  });
  if (rows.size() > k) rows.resize(k);
  return rows;
}

}  // namespace

std::vector<std::pair<std::uint64_t, VarProfile>> ProfileReport::top_vars(
    std::size_t k) const {
  return ranked(vars.entries, k, [](const VarProfile& v) { return v.total_ops(); });
}

std::vector<std::pair<std::uint64_t, LockProfile>> ProfileReport::top_locks(
    std::size_t k) const {
  return ranked(locks.entries, k,
                [](const LockProfile& l) { return l.acquire_ns_sum; });
}

std::vector<std::pair<std::uint64_t, BarrierProfile>> ProfileReport::top_barriers(
    std::size_t k) const {
  return ranked(barriers.entries, k,
                [](const BarrierProfile& b) { return b.skew_ns_sum; });
}

std::vector<std::string> ProfileReport::advise() const {
  // Rules documented in docs/PROFILING.md §Advisor; thresholds are
  // deliberately conservative so a hint always marks a real pathology.
  std::vector<std::string> out;
  std::uint64_t total_update_bytes = vars.overflow.update_bytes;
  for (const auto& [id, v] : vars.entries) total_update_bytes += v.update_bytes;

  for (const auto& [id, v] : vars.entries) {
    if (v.evictions >= 4 && v.fetches >= v.evictions) {
      std::ostringstream os;
      os << "var " << id << ": " << v.evictions << " evict/re-fetch cycles ("
         << v.fetches << " fetches) - raise DirectoryConfig::replica_budget "
         << "or shrink the working set";
      out.push_back(os.str());
    }
    if (v.sharer_adds + v.sharer_dels >= 16 && v.sharer_dels >= v.sharer_adds / 2) {
      std::ostringstream os;
      os << "var " << id << ": sharer set churns (" << v.sharer_adds << " adds / "
         << v.sharer_dels << " drops) - readers cycle in and out; a larger "
         << "replica_budget would pin them";
      out.push_back(os.str());
    }
    if (total_update_bytes > 0 && v.update_bytes * 2 > total_update_bytes &&
        v.writes >= 8) {
      std::ostringstream os;
      os << "var " << id << ": carries " << (v.update_bytes * 100 / total_update_bytes)
         << "% of update bytes - consider splitting it or batching its writers";
      out.push_back(os.str());
    }
  }
  for (const auto& [id, l] : locks.entries) {
    if (l.acquires >= 8 && l.contended * 2 >= l.acquires) {
      std::ostringstream os;
      os << "lock " << id << ": " << l.contended << " of " << l.acquires
         << " acquires contended (max queue " << l.max_queue
         << ") - split the lock or switch the data to counter objects";
      out.push_back(os.str());
    }
    if (l.holds >= 8 && l.hold_ns_sum > 0) {
      const double mean = static_cast<double>(l.hold_ns_sum) / static_cast<double>(l.holds);
      if (mean > 0 && static_cast<double>(l.hold_ns_max) >= 10.0 * mean) {
        std::ostringstream os;
        os << "lock " << id << ": max hold " << times(static_cast<double>(l.hold_ns_max) / mean)
           << " mean hold - one outlier critical section serializes the rest";
        out.push_back(os.str());
      }
    }
    if (l.acquires >= 8 && l.handoffs * 2 >= l.acquires) {
      std::ostringstream os;
      os << "lock " << id << ": " << l.handoffs << " of " << l.acquires
         << " grants hand off between processes - partition the protected "
         << "data by owner to keep episodes local";
      out.push_back(os.str());
    }
  }
  for (const auto& [id, b] : barriers.entries) {
    if (b.instances >= 4 && b.skew_ns_sum > 0) {
      const double mean =
          static_cast<double>(b.skew_ns_sum) / static_cast<double>(b.instances);
      if (mean > 0 && static_cast<double>(b.skew_ns_max) >= 4.0 * mean) {
        std::ostringstream os;
        os << "barrier " << id << ": worst arrival skew "
           << times(static_cast<double>(b.skew_ns_max) / mean)
           << " mean - rebalance work across participants";
        out.push_back(os.str());
      }
    }
  }
  const std::uint64_t overflow =
      vars.overflow_events + locks.overflow_events + barriers.overflow_events;
  if (overflow > 0) {
    std::ostringstream os;
    os << "profiler overflow: " << overflow << " events attributed to the "
       << "aggregate bucket - raise ProfilerOptions::max_vars/max_locks/"
       << "max_barriers for exact attribution";
    out.push_back(os.str());
  }
  return out;
}

std::vector<std::string> ProfileReport::hot_summary() const {
  std::vector<std::string> out;
  const LockProfile* hot_lock = nullptr;
  std::uint64_t hot_lock_id = 0;
  for (const auto& [id, l] : locks.entries) {
    if (l.contended == 0 && l.acquire_ns_sum == 0) continue;
    if (hot_lock == nullptr || l.acquire_ns_sum > hot_lock->acquire_ns_sum) {
      hot_lock = &l;
      hot_lock_id = id;
    }
  }
  if (hot_lock != nullptr) {
    std::ostringstream os;
    os << "hottest lock " << hot_lock_id << ": " << hot_lock->acquires
       << " acquires, " << hot_lock->contended << " contended, total wait "
       << hot_lock->acquire_ns_sum / 1000000 << " ms, max queue "
       << hot_lock->max_queue;
    out.push_back(os.str());
  }
  const VarProfile* hot_var = nullptr;
  std::uint64_t hot_var_id = 0;
  for (const auto& [id, v] : vars.entries) {
    if (v.total_ops() == 0) continue;
    if (hot_var == nullptr || v.total_ops() > hot_var->total_ops()) {
      hot_var = &v;
      hot_var_id = id;
    }
  }
  if (hot_var != nullptr) {
    std::ostringstream os;
    os << "hottest var " << hot_var_id << ": " << hot_var->total_ops() << " ops ("
       << hot_var->reads << " reads / " << hot_var->writes << " writes / "
       << hot_var->fetches << " fetches / " << hot_var->evictions << " evictions)";
    out.push_back(os.str());
  }
  return out;
}

// ---------------------------------------------------------------------------
// ContentionProfiler
// ---------------------------------------------------------------------------

void ContentionProfiler::record_read(std::uint64_t var) {
  std::scoped_lock lk(mu_);
  ++report_.vars.slot(var).reads;
}

void ContentionProfiler::record_write(std::uint64_t var) {
  std::scoped_lock lk(mu_);
  ++report_.vars.slot(var).writes;
}

void ContentionProfiler::record_fetch(std::uint64_t var) {
  std::scoped_lock lk(mu_);
  ++report_.vars.slot(var).fetches;
}

void ContentionProfiler::record_fill_record(std::uint64_t var) {
  std::scoped_lock lk(mu_);
  ++report_.vars.slot(var).fill_records;
}

void ContentionProfiler::record_eviction(std::uint64_t var) {
  std::scoped_lock lk(mu_);
  ++report_.vars.slot(var).evictions;
}

void ContentionProfiler::record_update_bytes(std::uint64_t var, std::uint64_t bytes) {
  std::scoped_lock lk(mu_);
  report_.vars.slot(var).update_bytes += bytes;
}

void ContentionProfiler::record_sharer_add(std::uint64_t var) {
  std::scoped_lock lk(mu_);
  ++report_.vars.slot(var).sharer_adds;
}

void ContentionProfiler::record_sharer_del(std::uint64_t var) {
  std::scoped_lock lk(mu_);
  ++report_.vars.slot(var).sharer_dels;
}

void ContentionProfiler::record_lock_acquire(std::uint64_t lock, std::uint64_t wait_ns) {
  std::scoped_lock lk(mu_);
  LockProfile& l = report_.locks.slot(lock);
  ++l.acquires;
  l.acquire_ns_sum += wait_ns;
  l.acquire_ns_max = std::max(l.acquire_ns_max, wait_ns);
}

void ContentionProfiler::record_lock_hold(std::uint64_t lock, std::uint64_t hold_ns) {
  std::scoped_lock lk(mu_);
  LockProfile& l = report_.locks.slot(lock);
  ++l.holds;
  l.hold_ns_sum += hold_ns;
  l.hold_ns_max = std::max(l.hold_ns_max, hold_ns);
}

void ContentionProfiler::record_lock_queue(std::uint64_t lock, std::uint64_t depth,
                                           bool contended) {
  std::scoped_lock lk(mu_);
  LockProfile& l = report_.locks.slot(lock);
  l.max_queue = std::max(l.max_queue, depth);
  if (contended) ++l.contended;
}

void ContentionProfiler::record_lock_handoff(std::uint64_t lock) {
  std::scoped_lock lk(mu_);
  ++report_.locks.slot(lock).handoffs;
}

void ContentionProfiler::record_barrier_instance(std::uint64_t barrier,
                                                 std::uint64_t skew_ns,
                                                 std::uint64_t arrivals) {
  std::scoped_lock lk(mu_);
  BarrierProfile& b = report_.barriers.slot(barrier);
  ++b.instances;
  b.arrivals += arrivals;
  b.skew_ns_sum += skew_ns;
  b.skew_ns_max = std::max(b.skew_ns_max, skew_ns);
}

ProfileReport ContentionProfiler::snapshot() const {
  std::scoped_lock lk(mu_);
  return report_;
}

}  // namespace mc::obs
