#include "obs/run_report.h"

#include <cstdio>

#include "obs/json.h"

namespace mc::obs {

RunReport::Row& RunReport::add_row(std::string name) {
  rows.emplace_back();
  rows.back().name = std::move(name);
  return rows.back();
}

std::string RunReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(static_cast<std::int64_t>(kSchemaVersion));
  w.key("bench").value(bench);
  w.key("config").begin_object();
  for (const auto& [k, v] : config) w.key(k).value(v);
  w.end_object();
  w.key("rows").begin_array();
  for (const Row& row : rows) {
    w.begin_object();
    w.key("name").value(row.name);
    w.key("params").begin_object();
    for (const auto& [k, v] : row.params) w.key(k).value(v);
    w.end_object();
    w.key("wall_ms").value(row.wall_ms);
    if (!row.phase_ms.empty()) {
      w.key("phases").begin_object();
      for (const auto& [k, v] : row.phase_ms) w.key(k).value(v);
      w.end_object();
    }
    if (!row.stats.empty()) {
      w.key("stats").begin_object();
      for (const auto& [k, v] : row.stats) w.key(k).value(v);
      w.end_object();
    }
    w.key("metrics").begin_object();
    for (const auto& [k, v] : row.metrics.values) w.key(k).value(v);
    w.end_object();
    if (row.critical_path.present) {
      const CriticalPathSection& cp = row.critical_path;
      w.key("critical_path").begin_object();
      w.key("total_ms").value(cp.total_ms);
      w.key("categories").begin_object();
      for (const auto& [k, v] : cp.category_ms) w.key(k).value(v);
      w.end_object();
      w.key("dag_nodes").value(static_cast<std::int64_t>(cp.dag_nodes));
      w.key("path_nodes").value(static_cast<std::int64_t>(cp.path_nodes));
      w.end_object();
    }
    if (row.diagnostics.fired) {
      const Diagnostics& d = row.diagnostics;
      const auto string_list = [&w](const char* key,
                                    const std::vector<std::string>& items) {
        w.key(key).begin_array();
        for (const std::string& s : items) w.value(s);
        w.end_array();
      };
      w.key("diagnostics").begin_object();
      w.key("reason").value(d.reason);
      string_list("stalled_waits", d.stalled_waits);
      string_list("deadlock_cycle", d.deadlock_cycle);
      string_list("locks", d.locks);
      string_list("barriers", d.barriers);
      w.key("in_flight").begin_array();
      for (const std::uint64_t n : d.in_flight) w.value(n);
      w.end_array();
      string_list("unreachable", d.unreachable);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool RunReport::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = to_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace mc::obs
