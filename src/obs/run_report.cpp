#include "obs/run_report.h"

#include <cstdio>

#include "obs/json.h"

namespace mc::obs {

RunReport::Row& RunReport::add_row(std::string name) {
  rows.emplace_back();
  rows.back().name = std::move(name);
  return rows.back();
}

std::string RunReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(static_cast<std::int64_t>(kSchemaVersion));
  w.key("bench").value(bench);
  w.key("config").begin_object();
  for (const auto& [k, v] : config) w.key(k).value(v);
  w.end_object();
  w.key("rows").begin_array();
  for (const Row& row : rows) {
    w.begin_object();
    w.key("name").value(row.name);
    w.key("params").begin_object();
    for (const auto& [k, v] : row.params) w.key(k).value(v);
    w.end_object();
    w.key("wall_ms").value(row.wall_ms);
    if (!row.phase_ms.empty()) {
      w.key("phases").begin_object();
      for (const auto& [k, v] : row.phase_ms) w.key(k).value(v);
      w.end_object();
    }
    if (!row.stats.empty()) {
      w.key("stats").begin_object();
      for (const auto& [k, v] : row.stats) w.key(k).value(v);
      w.end_object();
    }
    w.key("metrics").begin_object();
    for (const auto& [k, v] : row.metrics.values) w.key(k).value(v);
    w.end_object();
    if (row.critical_path.present) {
      const CriticalPathSection& cp = row.critical_path;
      w.key("critical_path").begin_object();
      w.key("total_ms").value(cp.total_ms);
      w.key("categories").begin_object();
      for (const auto& [k, v] : cp.category_ms) w.key(k).value(v);
      w.end_object();
      w.key("dag_nodes").value(static_cast<std::int64_t>(cp.dag_nodes));
      w.key("path_nodes").value(static_cast<std::int64_t>(cp.path_nodes));
      w.end_object();
    }
    if (row.profile_present) {
      const ProfileReport& pr = row.profile;
      const auto var_fields = [&w](const VarProfile& v) {
        w.key("reads").value(v.reads);
        w.key("writes").value(v.writes);
        w.key("fetches").value(v.fetches);
        w.key("fill_records").value(v.fill_records);
        w.key("evictions").value(v.evictions);
        w.key("update_bytes").value(v.update_bytes);
        w.key("sharer_adds").value(v.sharer_adds);
        w.key("sharer_dels").value(v.sharer_dels);
      };
      const auto lock_fields = [&w](const LockProfile& l) {
        w.key("acquires").value(l.acquires);
        w.key("contended").value(l.contended);
        w.key("handoffs").value(l.handoffs);
        w.key("acquire_ns_sum").value(l.acquire_ns_sum);
        w.key("acquire_ns_max").value(l.acquire_ns_max);
        w.key("holds").value(l.holds);
        w.key("hold_ns_sum").value(l.hold_ns_sum);
        w.key("hold_ns_max").value(l.hold_ns_max);
        w.key("max_queue").value(l.max_queue);
      };
      const auto barrier_fields = [&w](const BarrierProfile& b) {
        w.key("instances").value(b.instances);
        w.key("arrivals").value(b.arrivals);
        w.key("skew_ns_sum").value(b.skew_ns_sum);
        w.key("skew_ns_max").value(b.skew_ns_max);
      };
      w.key("profile").begin_object();
      w.key("caps").begin_object();
      w.key("max_vars").value(static_cast<std::uint64_t>(pr.options.max_vars));
      w.key("max_locks").value(static_cast<std::uint64_t>(pr.options.max_locks));
      w.key("max_barriers").value(static_cast<std::uint64_t>(pr.options.max_barriers));
      w.key("top_k").value(static_cast<std::uint64_t>(pr.options.top_k));
      w.end_object();

      w.key("vars").begin_object();
      w.key("tracked").value(static_cast<std::uint64_t>(pr.vars.entries.size()));
      w.key("overflow_events").value(pr.vars.overflow_events);
      {
        VarProfile tot = pr.vars.overflow;
        for (const auto& [id, v] : pr.vars.entries) tot.merge(v);
        w.key("totals").begin_object();
        var_fields(tot);
        w.end_object();
      }
      if (pr.vars.overflow_events > 0) {
        w.key("overflow").begin_object();
        var_fields(pr.vars.overflow);
        w.end_object();
      }
      w.key("top").begin_array();
      for (const auto& [id, v] : pr.top_vars(pr.options.top_k)) {
        w.begin_object();
        w.key("id").value(id);
        var_fields(v);
        w.key("total_ops").value(v.total_ops());
        w.end_object();
      }
      w.end_array();
      w.end_object();

      w.key("locks").begin_object();
      w.key("tracked").value(static_cast<std::uint64_t>(pr.locks.entries.size()));
      w.key("overflow_events").value(pr.locks.overflow_events);
      {
        LockProfile tot = pr.locks.overflow;
        for (const auto& [id, l] : pr.locks.entries) tot.merge(l);
        w.key("totals").begin_object();
        lock_fields(tot);
        w.end_object();
      }
      if (pr.locks.overflow_events > 0) {
        w.key("overflow").begin_object();
        lock_fields(pr.locks.overflow);
        w.end_object();
      }
      w.key("top").begin_array();
      for (const auto& [id, l] : pr.top_locks(pr.options.top_k)) {
        w.begin_object();
        w.key("id").value(id);
        lock_fields(l);
        w.end_object();
      }
      w.end_array();
      w.end_object();

      w.key("barriers").begin_object();
      w.key("tracked").value(static_cast<std::uint64_t>(pr.barriers.entries.size()));
      w.key("overflow_events").value(pr.barriers.overflow_events);
      {
        BarrierProfile tot = pr.barriers.overflow;
        for (const auto& [id, b] : pr.barriers.entries) tot.merge(b);
        w.key("totals").begin_object();
        barrier_fields(tot);
        w.end_object();
      }
      if (pr.barriers.overflow_events > 0) {
        w.key("overflow").begin_object();
        barrier_fields(pr.barriers.overflow);
        w.end_object();
      }
      w.key("top").begin_array();
      for (const auto& [id, b] : pr.top_barriers(pr.options.top_k)) {
        w.begin_object();
        w.key("id").value(id);
        barrier_fields(b);
        w.end_object();
      }
      w.end_array();
      w.end_object();

      w.key("advice").begin_array();
      for (const std::string& hint : pr.advise()) w.value(hint);
      w.end_array();
      w.end_object();
    }
    if (row.diagnostics.fired) {
      const Diagnostics& d = row.diagnostics;
      const auto string_list = [&w](const char* key,
                                    const std::vector<std::string>& items) {
        w.key(key).begin_array();
        for (const std::string& s : items) w.value(s);
        w.end_array();
      };
      w.key("diagnostics").begin_object();
      w.key("reason").value(d.reason);
      string_list("stalled_waits", d.stalled_waits);
      string_list("deadlock_cycle", d.deadlock_cycle);
      string_list("locks", d.locks);
      string_list("barriers", d.barriers);
      w.key("in_flight").begin_array();
      for (const std::uint64_t n : d.in_flight) w.value(n);
      w.end_array();
      string_list("unreachable", d.unreachable);
      if (!d.hot.empty()) string_list("hot", d.hot);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool RunReport::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = to_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace mc::obs
