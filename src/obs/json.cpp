#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "common/check.h"

namespace mc::obs {

// ----------------------------------------------------------------------
// Escaping and writing
// ----------------------------------------------------------------------

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(static_cast<std::size_t>(indent_) * first_in_.size(), ' ');
}

void JsonWriter::before_value() {
  if (first_in_.empty()) {
    MC_CHECK_MSG(out_.empty() || pending_key_, "one top-level JSON value only");
    return;
  }
  if (pending_key_) return;  // key() already positioned us
  if (!first_in_.back()) out_ += ',';
  first_in_.back() = false;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view k) {
  MC_CHECK_MSG(!first_in_.empty() && !pending_key_, "key() outside an object");
  if (!first_in_.back()) out_ += ',';
  first_in_.back() = false;
  newline_indent();
  out_ += '"';
  out_ += json_escape(k);
  out_ += indent_ > 0 ? "\": " : "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  pending_key_ = false;
  out_ += '{';
  first_in_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  MC_CHECK_MSG(!first_in_.empty() && !pending_key_, "unbalanced end_object");
  const bool empty = first_in_.back();
  first_in_.pop_back();
  if (!empty) newline_indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  pending_key_ = false;
  out_ += '[';
  first_in_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  MC_CHECK_MSG(!first_in_.empty() && !pending_key_, "unbalanced end_array");
  const bool empty = first_in_.back();
  first_in_.pop_back();
  if (!empty) newline_indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  pending_key_ = false;
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  pending_key_ = false;
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  pending_key_ = false;
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  pending_key_ = false;
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  pending_key_ = false;
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  pending_key_ = false;
  char buf[32];
  // Shortest round-trip representation; JSON has no inf/nan, clamp to null.
  if (v != v || v > 1.7976931348623157e308 || v < -1.7976931348623157e308) {
    out_ += "null";
    return *this;
  }
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out_.append(buf, res.ptr);
  return *this;
}

const std::string& JsonWriter::str() const {
  MC_CHECK_MSG(first_in_.empty() && !pending_key_, "unclosed JSON container");
  return out_;
}

// ----------------------------------------------------------------------
// Parsing
// ----------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  bool parse_document(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eat(',')) continue;
      return eat('}');
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.elements.push_back(std::move(v));
      skip_ws();
      if (eat(',')) continue;
      return eat(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the writer never emits them).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return false;
      }
    }
    return false;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = s_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") return false;
    out.kind = JsonValue::Kind::kNumber;
    const auto res =
        std::from_chars(tok.data(), tok.data() + tok.size(), out.number);
    if (res.ec != std::errc{} || res.ptr != tok.data() + tok.size()) return false;
    if (integral && tok[0] != '-') {
      std::uint64_t u = 0;
      const auto ures = std::from_chars(tok.data(), tok.data() + tok.size(), u);
      if (ures.ec == std::errc{} && ures.ptr == tok.data() + tok.size()) {
        out.uint_value = u;
        out.is_uint = true;
      }
    }
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  JsonValue v;
  if (!Parser(text).parse_document(v)) return std::nullopt;
  return v;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace mc::obs
