// Lightweight event tracer for the runtime: per-thread ring buffers of
// fixed-size events, dumped as Chrome-trace-format JSON (load the file at
// chrome://tracing or https://ui.perfetto.dev) so slow runs can be profiled
// visually — which update broadcast stalled which read, how long a lock
// grant sat in the manager queue, where barrier time went.
//
// Besides instants ('i') and complete spans ('X'), the tracer records flow
// events ('s' start / 'f' end, docs/TRACING.md): every wire message is
// stamped with a process-unique flow id at send time and the id is re-emitted
// where the message is consumed, so Perfetto draws an arrow from each send to
// its delivery (and from each lock/barrier grant to the operation it wakes).
// The same ids drive the offline critical-path analyzer
// (src/obs/critical_path.h).
//
// Cost model: when disabled (the default), every instrumentation site is a
// single relaxed atomic load and a predictable branch — no allocation, no
// clock read, no stores.  When enabled, recording is lock-free: each thread
// appends to its own ring (grown on demand up to the fixed capacity, oldest
// events overwritten past it), and names/categories are required to be
// string literals so nothing is copied.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mc::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
extern std::atomic<std::uint64_t> g_next_flow_id;
}  // namespace detail

/// The global on/off switch, checked at every instrumentation site.
[[nodiscard]] inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Flow ids with this bit set mark a reliability-layer retransmission; the
/// critical-path analyzer attributes their transit time to `retransmit`
/// instead of `net_transit`.  The allocator never sets it.
inline constexpr std::uint64_t kFlowRetransmitBit = 1ull << 63;

/// Allocate a process-unique, nonzero flow id (0 always means "untraced").
[[nodiscard]] inline std::uint64_t next_flow_id() {
  return detail::g_next_flow_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Optional small integer argument attached to an event; `name` must be a
/// string literal (or otherwise outlive the tracer).
struct TraceArg {
  const char* name = nullptr;
  std::uint64_t value = 0;
};

/// One recorded event.  `name` and `cat` must be string literals.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  char phase = 'i';          // 'X' complete, 'i' instant, 's'/'f' flow
  std::uint64_t ts_ns = 0;   // since process trace epoch
  std::uint64_t dur_ns = 0;  // 'X' only
  std::uint64_t flow_id = 0; // 's'/'f' only
  TraceArg arg0, arg1;
};

class Tracer {
 public:
  /// Events kept per thread; older events are overwritten.
  static constexpr std::size_t kRingCapacity = 1 << 16;

  static Tracer& instance();

  void enable() { detail::g_trace_enabled.store(true, std::memory_order_relaxed); }
  void disable() { detail::g_trace_enabled.store(false, std::memory_order_relaxed); }

  /// Nanoseconds since the process trace epoch (steady clock).
  [[nodiscard]] static std::uint64_t now_ns();

  /// Append one event to the calling thread's ring (no-op when disabled —
  /// but callers on hot paths should check trace_enabled() first and avoid
  /// building the event at all).
  void record(const TraceEvent& ev);

  /// Total events recorded so far (including overwritten ones).
  [[nodiscard]] std::uint64_t events_recorded() const;

  /// Events lost to ring overwrites, summed across threads.  Nonzero means
  /// the trace window is truncated: flow starts may be unmatched and the
  /// critical-path analyzer sees only the tail of the run.  Surfaced as
  /// `obs.trace.dropped` in MixedSystem::metrics() and as trace metadata.
  [[nodiscard]] std::uint64_t dropped_events() const;

  /// One surviving ring event plus the id of the thread that recorded it.
  struct Recorded {
    std::uint32_t tid = 0;
    TraceEvent ev;
  };

  /// Copy out every surviving event (oldest first within each thread) —
  /// the input of the critical-path analyzer.  Like the dump functions,
  /// call only after the traced workload has quiesced.
  [[nodiscard]] std::vector<Recorded> snapshot() const;

  /// Drop all recorded events (buffers stay allocated).
  void clear();

  /// Write everything recorded so far as Chrome trace JSON.  Call after the
  /// traced workload has quiesced (recording threads joined or idle);
  /// false on I/O failure.
  bool dump_chrome_trace(const std::string& path) const;

  /// The same document as a string (tests).
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Internal per-thread ring (public so the registry can own instances).
  struct ThreadBuffer;

 private:
  Tracer() = default;
  [[nodiscard]] ThreadBuffer& local_buffer();
};

/// Record an instant event ('i').
inline void trace_instant(const char* name, const char* cat, TraceArg a0 = {},
                          TraceArg a1 = {}) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.phase = 'i';
  ev.ts_ns = Tracer::now_ns();
  ev.arg0 = a0;
  ev.arg1 = a1;
  Tracer::instance().record(ev);
}

/// Record a complete event ('X') that just finished and lasted `dur_ns` —
/// for sites that already measured the duration with their own stopwatch.
inline void trace_complete_ns(const char* name, const char* cat, std::uint64_t dur_ns,
                              TraceArg a0 = {}, TraceArg a1 = {}) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.phase = 'X';
  const std::uint64_t now = Tracer::now_ns();
  ev.ts_ns = now >= dur_ns ? now - dur_ns : 0;
  ev.dur_ns = dur_ns;
  ev.arg0 = a0;
  ev.arg1 = a1;
  Tracer::instance().record(ev);
}

namespace detail {
inline void trace_flow(const char* name, const char* cat, char phase,
                       std::uint64_t flow_id, TraceArg a0, TraceArg a1) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.phase = phase;
  ev.ts_ns = Tracer::now_ns();
  ev.flow_id = flow_id;
  ev.arg0 = a0;
  ev.arg1 = a1;
  Tracer::instance().record(ev);
}
}  // namespace detail

/// Record a flow start ('s') — the producing side of a message arrow.
inline void trace_flow_start(const char* name, const char* cat, std::uint64_t flow_id,
                             TraceArg a0 = {}, TraceArg a1 = {}) {
  if (!trace_enabled() || flow_id == 0) return;
  detail::trace_flow(name, cat, 's', flow_id, a0, a1);
}

/// Record a flow end ('f', binding to the enclosing slice) — the consuming
/// side.  Emit it *inside* the span that consumes the message so the arrow
/// binds to that slice.
inline void trace_flow_end(const char* name, const char* cat, std::uint64_t flow_id,
                           TraceArg a0 = {}, TraceArg a1 = {}) {
  if (!trace_enabled() || flow_id == 0) return;
  detail::trace_flow(name, cat, 'f', flow_id, a0, a1);
}

/// RAII complete event spanning the enclosing scope.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat, TraceArg a0 = {}, TraceArg a1 = {}) {
    if (!trace_enabled()) return;
    name_ = name;
    cat_ = cat;
    a0_ = a0;
    a1_ = a1;
    start_ns_ = Tracer::now_ns();
  }
  ~TraceSpan() {
    if (name_ == nullptr || !trace_enabled()) return;
    TraceEvent ev;
    ev.name = name_;
    ev.cat = cat_;
    ev.phase = 'X';
    ev.ts_ns = start_ns_;
    ev.dur_ns = Tracer::now_ns() - start_ns_;
    ev.arg0 = a0_;
    ev.arg1 = a1_;
    Tracer::instance().record(ev);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  TraceArg a0_, a1_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace mc::obs
