// Live operation tap: a node (dsm/node.h) hands every completed memory /
// synchronization operation to an attached sink the moment it completes,
// before the update that carries it leaves for the fabric.  This is what
// lets an online monitor (obs/monitor.h) observe the execution *as it
// evolves* instead of post-mortem from merged traces.
//
// Ordering contract (what makes online checking sound):
//   - per process, operations arrive in program order;
//   - a write/delta is sunk before its update is broadcast, so no other
//     process can complete (and sink) a read of it first in real time;
//   - an unlock is sunk before the kUnlock message reaches the lock
//     manager, so the next episode's lock operations sink later.
//
// Implementations are called with the issuing node's mutex held — they must
// not call back into the node and should do bounded work.

#pragma once

#include <cstdint>

#include "history/operation.h"

namespace mc::obs {

class OpSink {
 public:
  virtual ~OpSink() = default;

  /// One completed operation of process `op.proc`.  Called under the
  /// issuing node's lock, possibly from many nodes concurrently.
  virtual void on_op(const history::Operation& op) = 0;

  /// Elastic membership events (Config::elastic; dsm/view.h), forwarded by
  /// MixedSystem from the manager threads.  A committed view change names
  /// the new epoch and alive mask; a committed join additionally names, per
  /// barrier object, the first instance the joiner participates in.  Both
  /// default to no-ops so fixed-membership sinks need not care.
  virtual void on_view(std::uint64_t epoch, std::uint64_t alive_mask) {
    (void)epoch;
    (void)alive_mask;
  }
  virtual void on_barrier_member_from(BarrierId barrier, ProcId joiner,
                                      std::uint64_t from_epoch) {
    (void)barrier;
    (void)joiner;
    (void)from_epoch;
  }
};

}  // namespace mc::obs
