// Live operation tap: a node (dsm/node.h) hands every completed memory /
// synchronization operation to an attached sink the moment it completes,
// before the update that carries it leaves for the fabric.  This is what
// lets an online monitor (obs/monitor.h) observe the execution *as it
// evolves* instead of post-mortem from merged traces.
//
// Ordering contract (what makes online checking sound):
//   - per process, operations arrive in program order;
//   - a write/delta is sunk before its update is broadcast, so no other
//     process can complete (and sink) a read of it first in real time;
//   - an unlock is sunk before the kUnlock message reaches the lock
//     manager, so the next episode's lock operations sink later.
//
// Implementations are called with the issuing node's mutex held — they must
// not call back into the node and should do bounded work.

#pragma once

#include "history/operation.h"

namespace mc::obs {

class OpSink {
 public:
  virtual ~OpSink() = default;

  /// One completed operation of process `op.proc`.  Called under the
  /// issuing node's lock, possibly from many nodes concurrently.
  virtual void on_op(const history::Operation& op) = 0;
};

}  // namespace mc::obs
