#include "obs/tracer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.h"

namespace mc::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
std::atomic<std::uint64_t> g_next_flow_id{0};
}  // namespace detail

struct Tracer::ThreadBuffer {
  explicit ThreadBuffer(std::uint32_t tid) : tid(tid) {}
  const std::uint32_t tid;
  // Grown on demand up to kRingCapacity (most threads record far fewer
  // events than the cap; preallocating the full ring per thread would cost
  // ~4.7 MB each across the many short-lived systems a bench run creates).
  std::vector<TraceEvent> events;
  // Total appended; the ring index is count % kRingCapacity.  Relaxed is
  // enough: dump_chrome_trace is documented to run only after recording
  // threads have quiesced.
  std::atomic<std::uint64_t> count{0};
};

namespace {

// Buffers live for the whole process (threads may outlive a dump and a
// dump may outlive its threads), so the registry owns them.
std::mutex g_registry_mu;
std::vector<std::unique_ptr<Tracer::ThreadBuffer>>& registry() {
  static auto* r = new std::vector<std::unique_ptr<Tracer::ThreadBuffer>>();
  return *r;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

std::uint64_t buffer_dropped(const Tracer::ThreadBuffer& buf) {
  const std::uint64_t n = buf.count.load(std::memory_order_relaxed);
  return n > Tracer::kRingCapacity ? n - Tracer::kRingCapacity : 0;
}

}  // namespace

Tracer& Tracer::instance() {
  static auto* t = new Tracer();
  (void)trace_epoch();  // pin the epoch no later than first use
  return *t;
}

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - trace_epoch())
                                        .count());
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local ThreadBuffer* buf = [] {
    std::scoped_lock lk(g_registry_mu);
    auto& reg = registry();
    reg.push_back(std::make_unique<ThreadBuffer>(static_cast<std::uint32_t>(reg.size())));
    return reg.back().get();
  }();
  return *buf;
}

void Tracer::record(const TraceEvent& ev) {
  if (!trace_enabled()) return;
  ThreadBuffer& buf = local_buffer();
  const std::uint64_t n = buf.count.load(std::memory_order_relaxed);
  if (buf.events.size() < kRingCapacity) {
    buf.events.push_back(ev);
  } else {
    buf.events[n % kRingCapacity] = ev;
  }
  buf.count.store(n + 1, std::memory_order_relaxed);
}

std::uint64_t Tracer::events_recorded() const {
  std::scoped_lock lk(g_registry_mu);
  std::uint64_t total = 0;
  for (const auto& buf : registry()) total += buf->count.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Tracer::dropped_events() const {
  std::scoped_lock lk(g_registry_mu);
  std::uint64_t dropped = 0;
  for (const auto& buf : registry()) dropped += buffer_dropped(*buf);
  return dropped;
}

std::vector<Tracer::Recorded> Tracer::snapshot() const {
  std::scoped_lock lk(g_registry_mu);
  std::vector<Recorded> out;
  for (const auto& buf : registry()) {
    const std::uint64_t n = buf->count.load(std::memory_order_relaxed);
    const std::uint64_t kept = n < kRingCapacity ? n : kRingCapacity;
    for (std::uint64_t i = n - kept; i < n; ++i) {
      out.push_back({buf->tid, buf->events[i % kRingCapacity]});
    }
  }
  return out;
}

void Tracer::clear() {
  std::scoped_lock lk(g_registry_mu);
  for (const auto& buf : registry()) {
    buf->count.store(0, std::memory_order_relaxed);
    buf->events.clear();
  }
}

namespace {

void emit_event(JsonWriter& w, const TraceEvent& ev, std::uint32_t tid) {
  w.begin_object();
  w.key("name").value(ev.name != nullptr ? ev.name : "?");
  w.key("cat").value(ev.cat != nullptr ? ev.cat : "mc");
  w.key("ph").value(std::string_view(&ev.phase, 1));
  // Chrome trace timestamps are microseconds; keep ns resolution as a
  // fraction.
  w.key("ts").value(static_cast<double>(ev.ts_ns) / 1e3);
  if (ev.phase == 'X') w.key("dur").value(static_cast<double>(ev.dur_ns) / 1e3);
  if (ev.phase == 'i') w.key("s").value("t");  // thread-scoped instant
  if (ev.phase == 's' || ev.phase == 'f') w.key("id").value(ev.flow_id);
  if (ev.phase == 'f') w.key("bp").value("e");  // bind to enclosing slice
  w.key("pid").value(std::uint64_t{1});
  w.key("tid").value(static_cast<std::uint64_t>(tid));
  if (ev.arg0.name != nullptr || ev.arg1.name != nullptr) {
    w.key("args").begin_object();
    if (ev.arg0.name != nullptr) w.key(ev.arg0.name).value(ev.arg0.value);
    if (ev.arg1.name != nullptr) w.key(ev.arg1.name).value(ev.arg1.value);
    w.end_object();
  }
  w.end_object();
}

}  // namespace

std::string Tracer::chrome_trace_json() const {
  JsonWriter w(0);  // compact: trace files get large
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  std::scoped_lock lk(g_registry_mu);
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  for (const auto& buf : registry()) {
    recorded += buf->count.load(std::memory_order_relaxed);
    dropped += buffer_dropped(*buf);
    const std::uint64_t n = buf->count.load(std::memory_order_relaxed);
    const std::uint64_t kept = n < kRingCapacity ? n : kRingCapacity;
    // Ring order is completion order (spans are recorded when they close),
    // so sort each thread's window by start time: viewers cope either way,
    // but a ts-sorted file is validatable (tools/validate_trace.py) and
    // diffs sanely.
    std::vector<const TraceEvent*> window;
    window.reserve(static_cast<std::size_t>(kept));
    for (std::uint64_t i = n - kept; i < n; ++i) {
      window.push_back(&buf->events[i % kRingCapacity]);
    }
    std::stable_sort(window.begin(), window.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       return a->ts_ns < b->ts_ns;
                     });
    for (const TraceEvent* ev : window) emit_event(w, *ev, buf->tid);
  }
  w.end_array();
  // Truncation metadata: droppedEvents > 0 means the rings wrapped and the
  // file holds only the most recent window per thread (docs/TRACING.md).
  w.key("otherData").begin_object();
  w.key("recordedEvents").value(recorded);
  w.key("droppedEvents").value(dropped);
  w.end_object();
  w.end_object();
  return w.str();
}

bool Tracer::dump_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = chrome_trace_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace mc::obs
