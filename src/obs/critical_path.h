// Offline critical-path analysis of a recorded trace (docs/TRACING.md).
//
// The tracer's flow events give every wire message a send point and one or
// more consumption points, and the runtime's spans mark where threads were
// blocked (lock.acquire, barrier.wait, fetch.wait, read.block, await) or
// busy on protocol work (deliver).  From those this module reconstructs the
// causal DAG of a run window:
//
//   - per-thread program order chains the events each thread recorded;
//     on application threads the gaps between spans are *compute* nodes,
//     on delivery/manager threads gaps are idle mailbox waits and carry no
//     weight;
//   - each flow end inside a span adds a *transit* node (send -> consume)
//     edged from the sender's enclosing node, so cross-thread causality is
//     explicit; retransmitted copies (obs::kFlowRetransmitBit) bill their
//     transit to `retransmit`;
//   - a wait span whose wake-up message is bound by a flow keeps only its
//     post-arrival sliver: the pre-arrival wait is *explained* by the path
//     through the sender, which is the whole point of the analysis.
//
// The longest weighted path through that DAG is the run's critical path;
// its per-category decomposition (compute, lock wait, barrier wait, ...)
// says what the end-to-end time was actually spent on, which no amount of
// per-primitive histogram aggregation can (histograms sum overlapping
// waits; the critical path does not).
//
// Bench harnesses run this per row when tracing is on and embed the result
// as the row's `critical_path` section (docs/METRICS.md, schema v2).

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "obs/tracer.h"

namespace mc::obs {

/// What a critical-path node's time was spent on.
enum class CpCategory : std::uint8_t {
  kCompute = 0,     ///< application-thread gap between instrumented events
  kLockWait,        ///< lock.acquire post-arrival sliver (or unbound wait)
  kBarrierWait,     ///< barrier.wait sliver
  kAwaitSpin,       ///< await predicate re-evaluation
  kReadBlock,       ///< read.block / fetch.wait: reads gated on missing data
  kNetTransit,      ///< message flight time, send to consumption
  kRetransmit,      ///< flight time of a reliability-layer retransmission
  kDeliver,         ///< delivery/manager thread processing a message
};
inline constexpr std::size_t kCpCategories = 8;

[[nodiscard]] const char* to_string(CpCategory c);

/// A causal DAG of weighted nodes.  Exposed (rather than kept internal to
/// the trace analyzer) so tests can exercise longest_path() on hand-built
/// graphs.
class CpDag {
 public:
  /// Returns the new node's index.
  std::size_t add_node(CpCategory cat, std::uint64_t weight_ns);
  void add_edge(std::size_t from, std::size_t to);

  [[nodiscard]] std::size_t size() const { return weights_.size(); }

 private:
  friend struct CriticalPath;
  std::vector<std::uint64_t> weights_;
  std::vector<CpCategory> cats_;
  std::vector<std::vector<std::uint32_t>> out_;
  std::vector<std::uint32_t> in_degree_;
};

/// The longest weighted path through a CpDag and its decomposition.
struct CriticalPath {
  std::uint64_t total_ns = 0;
  /// Per-category share of total_ns, indexed by CpCategory.
  std::array<std::uint64_t, kCpCategories> category_ns{};
  std::size_t dag_nodes = 0;   ///< nodes considered
  std::size_t path_nodes = 0;  ///< nodes on the winning path
  /// Nodes unreachable by the topological sweep (a cycle — possible only on
  /// a malformed or ring-truncated trace).  They are excluded, not fatal.
  std::size_t cyclic_nodes = 0;

  [[nodiscard]] std::uint64_t category(CpCategory c) const {
    return category_ns[static_cast<std::size_t>(c)];
  }

  /// Longest path via a topological sweep; cycle-tolerant (see above).
  static CriticalPath longest_path(const CpDag& dag);
};

/// Reconstruct the causal DAG of `events` restricted to the time window
/// [t0_ns, t1_ns) and return its critical path.  `events` is a
/// Tracer::snapshot(); spans straddling the window edges are clipped.
[[nodiscard]] CriticalPath analyze_trace(
    const std::vector<Tracer::Recorded>& events, std::uint64_t t0_ns,
    std::uint64_t t1_ns);

}  // namespace mc::obs
