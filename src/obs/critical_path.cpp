#include "obs/critical_path.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <string_view>

namespace mc::obs {

const char* to_string(CpCategory c) {
  switch (c) {
    case CpCategory::kCompute: return "compute";
    case CpCategory::kLockWait: return "lock_wait";
    case CpCategory::kBarrierWait: return "barrier_wait";
    case CpCategory::kAwaitSpin: return "await_spin";
    case CpCategory::kReadBlock: return "read_block";
    case CpCategory::kNetTransit: return "net_transit";
    case CpCategory::kRetransmit: return "retransmit";
    case CpCategory::kDeliver: return "deliver";
  }
  return "?";
}

std::size_t CpDag::add_node(CpCategory cat, std::uint64_t weight_ns) {
  weights_.push_back(weight_ns);
  cats_.push_back(cat);
  out_.emplace_back();
  in_degree_.push_back(0);
  return weights_.size() - 1;
}

void CpDag::add_edge(std::size_t from, std::size_t to) {
  out_[from].push_back(static_cast<std::uint32_t>(to));
  ++in_degree_[to];
}

CriticalPath CriticalPath::longest_path(const CpDag& dag) {
  CriticalPath cp;
  const std::size_t n = dag.weights_.size();
  cp.dag_nodes = n;
  if (n == 0) return cp;

  // Kahn sweep.  Nodes that never reach in-degree zero sit on a cycle
  // (malformed or ring-truncated trace); they are simply never relaxed.
  std::vector<std::uint32_t> indeg = dag.in_degree_;
  std::vector<std::uint64_t> dist(n, 0);
  constexpr std::uint32_t kNoPred = 0xffffffffu;
  std::vector<std::uint32_t> pred(n, kNoPred);
  std::vector<std::uint32_t> queue;
  queue.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) {
      queue.push_back(static_cast<std::uint32_t>(i));
      dist[i] = dag.weights_[i];
    }
  }
  std::size_t processed = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t u = queue[head];
    ++processed;
    for (const std::uint32_t v : dag.out_[u]) {
      if (dist[u] + dag.weights_[v] > dist[v]) {
        dist[v] = dist[u] + dag.weights_[v];
        pred[v] = u;
      }
      if (--indeg[v] == 0) queue.push_back(v);
    }
  }
  cp.cyclic_nodes = n - processed;

  std::uint32_t best = 0;
  bool found = false;
  for (const std::uint32_t u : queue) {
    if (!found || dist[u] > dist[best]) {
      best = u;
      found = true;
    }
  }
  if (!found) return cp;
  cp.total_ns = dist[best];
  for (std::uint32_t u = best; u != kNoPred; u = pred[u]) {
    cp.category_ns[static_cast<std::size_t>(dag.cats_[u])] += dag.weights_[u];
    ++cp.path_nodes;
  }
  return cp;
}

namespace {

/// Maps an instrumented span name to its time category.  Unknown spans are
/// treated as processing work on whatever thread recorded them.
CpCategory span_category(const char* name) {
  const std::string_view n = name == nullptr ? std::string_view{} : name;
  if (n == "lock.acquire") return CpCategory::kLockWait;
  if (n == "barrier.wait") return CpCategory::kBarrierWait;
  if (n == "await") return CpCategory::kAwaitSpin;
  if (n == "read.block" || n == "fetch.wait") return CpCategory::kReadBlock;
  return CpCategory::kDeliver;
}

/// A wait span's pre-arrival time is explained by the path through the
/// message that ended it, so a bound wait keeps only its post-arrival
/// sliver.  (Await spins re-poll rather than sleep on a message and keep
/// their full duration.)
bool reducible_wait(CpCategory c) {
  return c == CpCategory::kLockWait || c == CpCategory::kBarrierWait ||
         c == CpCategory::kReadBlock;
}

struct Span {
  std::uint64_t s = 0;
  std::uint64_t e = 0;
  CpCategory cat = CpCategory::kDeliver;
  /// Latest bound wake-up arrival inside the span (0: unbound).
  std::uint64_t arrival = 0;
};

struct FlowEnd {
  std::uint64_t ts = 0;
  std::uint64_t id = 0;
};

struct ThreadLane {
  std::vector<Span> spans;
  std::vector<FlowEnd> ends;
  /// Flow-start timestamps: chain cut points on application threads.
  std::vector<std::uint64_t> cuts;
  /// Timestamps of every non-span event, for app/infra classification.
  std::vector<std::uint64_t> loose_ts;
  bool has_marker = false;  ///< saw a proc.start / proc.end instant
  bool is_app = false;
  /// Marked lane lifetime: earliest proc.start and latest proc.end in the
  /// window (0: marker absent or clipped out).  Gap fill is clamped to this
  /// range so system construction / teardown around the measured run is not
  /// billed as compute.
  std::uint64_t marker_s = 0;
  std::uint64_t marker_e = 0;

  /// Chain segment [s, e) realized as DAG node `node`.
  struct Pos {
    std::uint64_t s, e;
    std::size_t node;
  };
  std::vector<Pos> chain;

  /// The chain node whose range holds `ts`, preferring the segment that
  /// *ends* at ts over the one that starts there (a cut at a flow start
  /// splits the chain exactly so the sender's history stops at the send).
  [[nodiscard]] const Pos* locate(std::uint64_t ts) const {
    auto it = std::upper_bound(chain.begin(), chain.end(), ts,
                               [](std::uint64_t t, const Pos& p) { return t < p.s; });
    if (it == chain.begin()) return nullptr;
    --it;
    if (it->s == ts && it != chain.begin()) --it;
    if (ts < it->s || ts > it->e) return nullptr;
    return &*it;
  }
};

}  // namespace

CriticalPath analyze_trace(const std::vector<Tracer::Recorded>& events,
                           std::uint64_t t0_ns, std::uint64_t t1_ns) {
  CpDag dag;
  if (t1_ns <= t0_ns) return CriticalPath::longest_path(dag);

  std::map<std::uint32_t, ThreadLane> lanes;
  // Flow id -> (thread, send ts).  Duplicated physical copies share an id;
  // the first recorded send wins, which is the original transmission.
  std::map<std::uint64_t, std::pair<std::uint32_t, std::uint64_t>> starts;
  bool any_marker = false;

  for (const Tracer::Recorded& r : events) {
    const TraceEvent& ev = r.ev;
    if (ev.phase == 'X') {
      std::uint64_t s = ev.ts_ns;
      std::uint64_t e = ev.ts_ns + ev.dur_ns;
      if (e <= t0_ns || s >= t1_ns) continue;
      s = std::max(s, t0_ns);
      e = std::min(e, t1_ns);
      lanes[r.tid].spans.push_back(Span{s, e, span_category(ev.name), 0});
      continue;
    }
    if (ev.ts_ns < t0_ns || ev.ts_ns >= t1_ns) continue;
    ThreadLane& lane = lanes[r.tid];
    if (ev.phase == 's') {
      starts.emplace(ev.flow_id, std::make_pair(r.tid, ev.ts_ns));
      lane.cuts.push_back(ev.ts_ns);
      lane.loose_ts.push_back(ev.ts_ns);
    } else if (ev.phase == 'f') {
      lane.ends.push_back(FlowEnd{ev.ts_ns, ev.flow_id});
      lane.loose_ts.push_back(ev.ts_ns);
    } else {
      const std::string_view name = ev.name == nullptr ? std::string_view{} : ev.name;
      if (name == "proc.start") {
        lane.has_marker = true;
        any_marker = true;
        if (lane.marker_s == 0 || ev.ts_ns < lane.marker_s) lane.marker_s = ev.ts_ns;
      } else if (name == "proc.end") {
        lane.has_marker = true;
        any_marker = true;
        lane.marker_e = std::max(lane.marker_e, ev.ts_ns);
      }
      lane.loose_ts.push_back(ev.ts_ns);
    }
  }

  for (auto& [tid, lane] : lanes) {
    (void)tid;
    // Keep the top-level spans only: program order is one chain per thread,
    // and nested spans (a blocked read inside an await) are already counted
    // by their enclosing span.
    std::sort(lane.spans.begin(), lane.spans.end(),
              [](const Span& a, const Span& b) { return a.s < b.s; });
    std::vector<Span> top;
    std::uint64_t cover = 0;
    for (const Span& sp : lane.spans) {
      if (!top.empty() && sp.s < cover) continue;
      top.push_back(sp);
      cover = sp.e;
    }
    lane.spans = std::move(top);

    // Application threads are the ones whose gaps are real work.  The
    // runtime marks them with a proc.start instant; for traces without
    // markers (unit tests, hand-rolled workloads) fall back to "has any
    // event outside its spans".
    if (any_marker) {
      lane.is_app = lane.has_marker;
    } else {
      lane.is_app = false;
      for (const std::uint64_t ts : lane.loose_ts) {
        const Span* enclosing = nullptr;
        for (const Span& sp : lane.spans) {
          if (ts >= sp.s && ts <= sp.e) {
            enclosing = &sp;
            break;
          }
        }
        if (enclosing == nullptr) {
          lane.is_app = true;
          break;
        }
      }
      if (lane.spans.empty() && lane.loose_ts.empty()) lane.is_app = false;
    }
  }

  // Bind wake-up arrivals to wait spans before materializing nodes so the
  // spans can be created with their reduced (post-arrival) weight.
  for (auto& [tid, lane] : lanes) {
    (void)tid;
    for (const FlowEnd& fe : lane.ends) {
      for (Span& sp : lane.spans) {
        if (fe.ts < sp.s || fe.ts > sp.e) continue;
        if (reducible_wait(sp.cat) && starts.count(fe.id) != 0) {
          sp.arrival = std::max(sp.arrival, fe.ts);
        }
        break;
      }
    }
  }

  // Materialize each thread's chain: span nodes, and on app threads the
  // compute gaps between them — split at flow starts so a sender's chain
  // weight stops at the send instead of running to the next span.
  for (auto& [tid, lane] : lanes) {
    (void)tid;
    std::sort(lane.cuts.begin(), lane.cuts.end());
    auto append = [&lane, &dag](std::uint64_t s, std::uint64_t e, CpCategory cat,
                                std::uint64_t weight) {
      const std::size_t node = dag.add_node(cat, weight);
      if (!lane.chain.empty()) dag.add_edge(lane.chain.back().node, node);
      lane.chain.push_back(ThreadLane::Pos{s, e, node});
    };
    auto fill_gap = [&lane, &append](std::uint64_t from, std::uint64_t to) {
      if (!lane.is_app || to <= from) return;
      std::uint64_t cursor = from;
      for (auto it = std::upper_bound(lane.cuts.begin(), lane.cuts.end(), from);
           it != lane.cuts.end() && *it < to; ++it) {
        if (*it == cursor) continue;
        append(cursor, *it, CpCategory::kCompute, *it - cursor);
        cursor = *it;
      }
      if (to > cursor) append(cursor, to, CpCategory::kCompute, to - cursor);
    };

    const std::uint64_t lane_t0 =
        lane.marker_s != 0 ? std::max(t0_ns, lane.marker_s) : t0_ns;
    const std::uint64_t lane_t1 =
        lane.marker_e != 0 ? std::min(t1_ns, lane.marker_e) : t1_ns;
    std::uint64_t cursor = lane_t0;
    for (const Span& sp : lane.spans) {
      fill_gap(cursor, std::min(sp.s, lane_t1));
      const std::uint64_t weight =
          sp.arrival != 0 ? sp.e - std::max(sp.arrival, sp.s) : sp.e - sp.s;
      append(sp.s, sp.e, sp.cat, weight);
      cursor = sp.e;
    }
    fill_gap(cursor, lane_t1);
  }

  // Transit nodes: one per bound flow end, edged sender-chain -> transit ->
  // consuming chain node.
  for (const auto& [tid, lane] : lanes) {
    (void)tid;
    for (const FlowEnd& fe : lane.ends) {
      const auto sit = starts.find(fe.id);
      if (sit == starts.end()) continue;  // start lost to ring overwrite
      const auto [sender_tid, ts_s] = sit->second;
      if (ts_s > fe.ts) continue;
      const ThreadLane::Pos* dst = lane.locate(fe.ts);
      if (dst == nullptr) continue;
      const CpCategory cat = (fe.id & kFlowRetransmitBit) != 0
                                 ? CpCategory::kRetransmit
                                 : CpCategory::kNetTransit;
      const std::size_t transit = dag.add_node(cat, fe.ts - ts_s);
      const auto lit = lanes.find(sender_tid);
      if (lit != lanes.end()) {
        const ThreadLane::Pos* src = lit->second.locate(ts_s);
        if (src != nullptr && src->node != dst->node) {
          dag.add_edge(src->node, transit);
        }
      }
      dag.add_edge(transit, dst->node);
    }
  }

  return CriticalPath::longest_path(dag);
}

}  // namespace mc::obs
