// Contention profiler (docs/PROFILING.md): opt-in per-object cost
// attribution for the DSM runtime.  Where metrics() answers "how much did
// this run cost in aggregate", the profiler answers "WHICH variable, lock,
// or barrier is costing me" — per-variable read/write/fetch/eviction
// counts, update bytes and sharer churn (directory mode); per-lock acquire
// latency, hold time, queue depth and cross-process handoffs; per-barrier
// arrival skew.
//
// Design constraints:
//
//   - Bounded memory.  Attribution tables are capped-cardinality sketches
//     (BoundedTable): the first `cap` distinct ids get exact per-id rows,
//     everything after lands in a single overflow aggregate with a counted
//     `overflow_events` tally.  Totals therefore always reconcile exactly
//     against the global metrics() aggregates — nothing is dropped, only
//     coarsened — and tools/validate_profile.py enforces the identity.
//
//   - Zero overhead when disabled.  The runtime holds a plain pointer that
//     is null when Config::profile is unset; every instrumentation site is
//     one branch.  When enabled, each record takes a short internal mutex
//     (the profiler is polled live by MetricsSampler and the watchdog
//     diagnostics path, so it must be internally synchronized).
//
//   - Deterministic output.  Tables are ordered maps; rankings sort by the
//     per-kind cost total with id-ascending tie-breaks, so two runs of a
//     deterministic program produce byte-identical profile sections.
//
// One ContentionProfiler instance exists per node plus one per manager
// (lock, barrier); MixedSystem::profile() merges them into a single
// ProfileReport.  The report serializes as the RunReport `profile` section
// (schema v3) and its advise() pass turns the numbers into concrete tuning
// hints.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mc::obs {

/// Sketch bounds and ranking depth.  Defaults hold every variable of the
/// committed benches exactly (bench_directory has 512 vars at 64 procs);
/// shrink them to exercise the overflow path.
struct ProfilerOptions {
  std::size_t max_vars = 1024;
  std::size_t max_locks = 256;
  std::size_t max_barriers = 64;
  /// Rows per ranked table in the serialized report.
  std::size_t top_k = 10;
};

/// Per-variable attribution row.  `update_bytes` is the approximate wire
/// cost of this variable's update propagation (header + payload estimate
/// per destination, the same heuristic as Node::approx_batch_bytes) — it
/// is documented as approximate and excluded from the strict reconciliation
/// identities.
struct VarProfile {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t fetches = 0;       // demand fetches + directory fills faulted
  std::uint64_t fill_records = 0;  // records paged in (incl. prefetch)
  std::uint64_t evictions = 0;
  std::uint64_t update_bytes = 0;
  std::uint64_t sharer_adds = 0;  // directory home: sharer-set churn
  std::uint64_t sharer_dels = 0;

  [[nodiscard]] std::uint64_t total_ops() const {
    return reads + writes + fetches + evictions;
  }
  [[nodiscard]] std::uint64_t event_count() const {
    return reads + writes + fetches + fill_records + evictions + sharer_adds +
           sharer_dels;
  }
  void merge(const VarProfile& o);
};

/// Per-lock attribution row.  Acquire latency and hold time are recorded
/// node-side (they span the request round trip and the critical section);
/// contention, queue depth and handoffs are recorded at the manager, which
/// is the only place that sees the queue.
struct LockProfile {
  std::uint64_t acquires = 0;
  std::uint64_t contended = 0;  // request could not be granted on arrival
  std::uint64_t handoffs = 0;   // granted to a non-member of the previous episode
  std::uint64_t acquire_ns_sum = 0;
  std::uint64_t acquire_ns_max = 0;
  std::uint64_t holds = 0;
  std::uint64_t hold_ns_sum = 0;
  std::uint64_t hold_ns_max = 0;
  std::uint64_t max_queue = 0;

  [[nodiscard]] std::uint64_t event_count() const {
    return acquires + contended + handoffs + holds;
  }
  void merge(const LockProfile& o);
};

/// Per-barrier attribution row.  Skew is the manager's assemble time for
/// one instance: first arrival to release, i.e. how long the fastest
/// arriver waited for the slowest.
struct BarrierProfile {
  std::uint64_t instances = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t skew_ns_sum = 0;
  std::uint64_t skew_ns_max = 0;

  [[nodiscard]] std::uint64_t event_count() const { return instances + arrivals; }
  void merge(const BarrierProfile& o);
};

/// Capped-cardinality attribution table: exact rows for the first `cap`
/// distinct ids, a single aggregate row for the rest.  `overflow_events`
/// counts every recorded event routed to the aggregate (monotone; soak
/// streams check this).
template <typename T>
struct BoundedTable {
  std::size_t cap = 0;
  std::map<std::uint64_t, T> entries;
  T overflow;
  std::uint64_t overflow_events = 0;

  /// The row for `id`, or the overflow aggregate when the table is full.
  /// Counts `events` (default one) against the overflow tally if routed.
  T& slot(std::uint64_t id, std::uint64_t events = 1) {
    auto it = entries.find(id);
    if (it != entries.end()) return it->second;
    if (entries.size() < cap) return entries[id];
    overflow_events += events;
    return overflow;
  }

  /// Merge another table into this one, respecting this table's cap: rows
  /// that no longer fit spill into the overflow aggregate with their event
  /// counts added to the tally.
  void merge(const BoundedTable& o) {
    overflow_events += o.overflow_events;
    overflow.merge(o.overflow);
    for (const auto& [id, row] : o.entries) {
      slot(id, row.event_count()).merge(row);
    }
  }
};

/// Mergeable, serializable snapshot of one or more profilers.  This is the
/// type stored on RunReport rows (the `profile` section, schema v3).
struct ProfileReport {
  ProfilerOptions options;
  BoundedTable<VarProfile> vars;
  BoundedTable<LockProfile> locks;
  BoundedTable<BarrierProfile> barriers;

  ProfileReport() : ProfileReport(ProfilerOptions{}) {}
  explicit ProfileReport(const ProfilerOptions& opt) : options(opt) {
    vars.cap = opt.max_vars;
    locks.cap = opt.max_locks;
    barriers.cap = opt.max_barriers;
  }

  [[nodiscard]] bool empty() const {
    return vars.entries.empty() && locks.entries.empty() &&
           barriers.entries.empty() && vars.overflow_events == 0 &&
           locks.overflow_events == 0 && barriers.overflow_events == 0;
  }

  void merge(const ProfileReport& o);

  /// Ranked views: vars by total_ops(), locks by acquire_ns_sum, barriers
  /// by skew_ns_sum; ties break id-ascending.  Deterministic.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, VarProfile>> top_vars(
      std::size_t k) const;
  [[nodiscard]] std::vector<std::pair<std::uint64_t, LockProfile>> top_locks(
      std::size_t k) const;
  [[nodiscard]] std::vector<std::pair<std::uint64_t, BarrierProfile>> top_barriers(
      std::size_t k) const;

  /// Advisor pass (docs/PROFILING.md lists the rules): concrete tuning
  /// hints derived from the attribution rows, deterministic order.
  [[nodiscard]] std::vector<std::string> advise() const;

  /// One-line culprit summaries for watchdog stall reports: the hottest
  /// contended lock and the hottest variable, when they exist.
  [[nodiscard]] std::vector<std::string> hot_summary() const;
};

/// The live recorder.  One per node / manager; every record method takes
/// the internal mutex (callers hold their own locks — keep the critical
/// sections disjoint by never calling out under mu_).
class ContentionProfiler {
 public:
  explicit ContentionProfiler(const ProfilerOptions& opt) : report_(opt) {}

  ContentionProfiler(const ContentionProfiler&) = delete;
  ContentionProfiler& operator=(const ContentionProfiler&) = delete;

  // -- variable events ---------------------------------------------------
  void record_read(std::uint64_t var);
  void record_write(std::uint64_t var);
  void record_fetch(std::uint64_t var);
  void record_fill_record(std::uint64_t var);
  void record_eviction(std::uint64_t var);
  void record_update_bytes(std::uint64_t var, std::uint64_t bytes);
  void record_sharer_add(std::uint64_t var);
  void record_sharer_del(std::uint64_t var);

  // -- lock events -------------------------------------------------------
  void record_lock_acquire(std::uint64_t lock, std::uint64_t wait_ns);
  void record_lock_hold(std::uint64_t lock, std::uint64_t hold_ns);
  void record_lock_queue(std::uint64_t lock, std::uint64_t depth, bool contended);
  void record_lock_handoff(std::uint64_t lock);

  // -- barrier events ----------------------------------------------------
  void record_barrier_instance(std::uint64_t barrier, std::uint64_t skew_ns,
                               std::uint64_t arrivals);

  /// Consistent copy of the accumulated report (safe to call while the
  /// system runs; MetricsSampler and the watchdog do).
  [[nodiscard]] ProfileReport snapshot() const;

 private:
  mutable std::mutex mu_;
  ProfileReport report_;
};

}  // namespace mc::obs
