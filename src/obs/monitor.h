// Online consistency monitor: a live IncrementalChecker fed from the nodes'
// operation sinks while the system runs (docs/CHECKING.md §10).
//
// Each node hands its completed operations over in program order
// (obs/op_sink.h), but the checker demands a *causal linear extension*
// across processes: a read may not be fed before the write it returns, a
// lock episode not before its predecessor episode released, a barrier
// successor not before every member arrived.  The monitor restores that
// order with per-process FIFO queues and readiness gates:
//
//   - read/await of write (p, s): gated until p's writes up to s are fed;
//   - lock operation of episode e: gated until e is the smallest episode
//     among enqueued-but-unfed operations of that lock (the sink ordering
//     contract guarantees the predecessor episode is already enqueued);
//   - the first operation after a barrier member: gated until the
//     instance's expected membership has been fed (members themselves are
//     never gated — they arrive before their own release by construction).
//
// The gates only ever wait for operations that are already enqueued or are
// enqueued by a process that is making progress, so the pump drains to a
// fixpoint on every delivery — no monitor thread needed.  After each barrier
// frontier the checker's epoch-windowed pruning retires the settled prefix,
// keeping resident state bounded over arbitrarily long runs.
//
// On the first violation the checker captures the counterexample cycle as a
// DOT document whose node labels carry trace correlation ids (trace=<id>)
// matching the `op` instants in the Chrome trace.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "history/incremental_checker.h"
#include "obs/op_sink.h"

namespace mc::obs {

class ConsistencyMonitor final : public OpSink {
 public:
  /// `barrier_membership` lists the expected member count per barrier
  /// object for subset barriers (Config::barrier_members); objects not
  /// listed are full barriers over all `num_procs` processes.
  explicit ConsistencyMonitor(std::size_t num_procs,
                              std::map<BarrierId, std::size_t> barrier_membership = {});

  void on_op(const history::Operation& op) override;

  /// Elastic membership (Config::elastic): gate barrier instances against
  /// the *live* membership instead of all num_procs processes.  Call before
  /// the run with view 0's alive mask; subsequent view changes arrive
  /// through the OpSink hooks below.  Subset barriers (explicit
  /// `barrier_membership` entries) keep their configured counts.
  void enable_elastic(std::uint64_t initial_alive);
  void on_view(std::uint64_t epoch, std::uint64_t alive_mask) override;
  void on_barrier_member_from(BarrierId barrier, ProcId joiner,
                              std::uint64_t from_epoch) override;

  /// Rolling picture for the time-series sampler.
  struct Status {
    history::IncrementalChecker::LiveCounts counts;
    std::uint64_t enqueued = 0;  ///< operations received from the sinks
    std::uint64_t queued = 0;    ///< received but still gated
    std::uint64_t skipped = 0;   ///< dropped unfed at finalize
    bool structural_failed = false;
  };
  [[nodiscard]] Status status() const;

  /// Checker counters plus `monitor.*` keys (docs/METRICS.md): the rolling
  /// per-model verdict gauges are 1 while no violation of that model has
  /// been recorded.
  [[nodiscard]] MetricsSnapshot metrics() const;

  /// DOT counterexample of the first recorded violation (empty while the
  /// run is clean).  Node labels carry `trace=<id>` correlation ids.
  [[nodiscard]] std::string first_violation_dot() const;

  /// Drain what is drainable, drop operations still gated (counted in
  /// Status::skipped — e.g. a read whose source write never surfaced
  /// because the run was cut short), and finalize the checker.  Call once,
  /// after the system has quiesced; on_op must not race with it.
  history::GraphVerdict finalize();

 private:
  [[nodiscard]] bool ready(const history::Operation& op, ProcId p) const;
  void feed_one(const history::Operation& op, ProcId p);
  void pump();

  static std::uint64_t bar_key(const history::Operation& op) {
    return (std::uint64_t{op.barrier} << 32) | op.barrier_epoch;
  }
  [[nodiscard]] std::uint64_t needed_mask(std::uint64_t key) const;

  const std::size_t num_procs_;
  const std::map<BarrierId, std::size_t> membership_;

  mutable std::mutex mu_;
  history::IncrementalChecker checker_;
  std::vector<std::deque<history::Operation>> queues_;
  std::vector<SeqNo> fed_wseq_;                       // per proc, highest fed write seq
  std::map<LockId, std::multiset<std::uint64_t>> lock_pending_;  // enqueued-unfed episodes
  /// Per barrier instance: members fed so far, and gated successors that
  /// have passed.  Erased once every member's successor passed, so the map
  /// stays bounded on long runs.
  struct BarGate {
    std::size_t fed = 0;
    std::size_t passed = 0;
    /// Which processes fed their member op (elastic runs): a view change
    /// must not let feeds from a since-departed member stand in for a
    /// still-alive member that has not surfaced its arrival yet.
    std::uint64_t fed_mask = 0;
  };
  [[nodiscard]] bool gate_open(std::uint64_t key, const BarGate& g) const;
  [[nodiscard]] bool gate_done(std::uint64_t key, const BarGate& g) const;
  std::map<std::uint64_t, BarGate> bar_fed_;
  std::vector<std::uint64_t> bar_gate_;               // per proc, pending instance or ~0
  static constexpr std::uint64_t kNoGate = ~std::uint64_t{0};

  // Elastic membership (enable_elastic; guarded by mu_).  A barrier
  // instance expects only configured members that are alive and were
  // admitted at or before its epoch — a dead member's arrival will never
  // be fed, and waiting for it would wedge every survivor's gate.
  bool elastic_ = false;
  std::uint64_t alive_mask_ = 0;
  std::uint64_t view_epoch_ = 0;
  std::map<BarrierId, std::map<ProcId, std::uint64_t>> member_from_;

  std::uint32_t next_ext_ = 0;
  std::uint64_t enqueued_ = 0;
  std::uint64_t queued_ = 0;
  std::uint64_t skipped_ = 0;
  bool finalized_ = false;
};

}  // namespace mc::obs
