// Framed wire batches: N coalesced memory updates in one kBatch Message
// (Config::batching; DESIGN.md §6.3).
//
// Payload layout, vector-clock mode (P = num_procs, P <= 64):
//
//   word 0 .. P-1        base clock: component-wise MINIMUM of the record
//                        clocks (coalescing can make record clocks
//                        non-monotone within a batch, so min — not the
//                        first record's clock — is the only safe base)
//   then per record:
//     w0                 var (bits 0..31) | flags (bits 32..39)
//                        | weight (bits 40..63)
//     w1                 value bits
//     w2                 writer sequence number (WriteId::seq)
//     optional words     writer (kFlagHasWriter), write epoch
//                        (kFlagHasEpoch), staleness baseline
//                        (kFlagHasBaseline) — in that order, each present
//                        only when its flag bit is set
//     w_m                clock-delta mask m: bit k set <=> vc[k] != base[k]
//     popcount(m) words  vc[k] - base[k], for each set bit k ascending
//
// Count-vector mode (Config::omit_timestamps): no base clock and no clock
// words; records are w0..w2 plus the optional words only.
//
// The flags byte packs the operation in its low bits (kFlagOpMask) and the
// record options above it; consumers must mask with kFlagOpMask before
// switching on the operation.  Directory fills (kFetchBulkResp) reuse this
// codec with the optional words carrying per-variable install metadata.
//
// The payload holds exactly the words a real wire format would ship, so
// Message::wire_bytes() (header + payload) charges the delta-encoded size —
// never the P full clocks an unbatched kUpdate stream would have carried.
//
// `weight` counts how many original updates were coalesced into the record
// (last-writer-wins writes, summed deltas).  Count-vector receivers advance
// their per-sender receive index by `weight`, keeping Section 6's count
// synchronization truthful even though the collapsed updates never travel.

#pragma once

#include <vector>

#include "common/types.h"
#include "common/vector_clock.h"
#include "net/message.h"

namespace mc::dsm {

/// One staged (possibly coalesced) update inside a batch.
struct BatchRecord {
  VarId var = 0;
  Value value = 0;
  std::uint64_t flags = 0;
  SeqNo seq = 0;
  std::uint64_t weight = 1;
  VectorClock vc;  // empty in count-vector mode
  /// View epoch of the write; travels on the wire only when kFlagHasEpoch
  /// is set (elastic runs), else decoded records stay at 0.
  std::uint64_t epoch = 0;
  /// Explicit writer (kFlagHasWriter); kNoProc means "the frame sender".
  ProcId writer = kNoProc;
  /// Staleness baseline shipped with directory fills (kFlagHasBaseline):
  /// the home's applied-write count for the variable.
  std::uint64_t baseline = 0;

  friend bool operator==(const BatchRecord&, const BatchRecord&) = default;
};

/// Encode records into a kBatch message.  src/dst are left for the caller.
[[nodiscard]] net::Message encode_batch(const std::vector<BatchRecord>& recs,
                                        std::size_t num_procs, bool omit_timestamps);

/// Decode a kBatch payload produced by encode_batch.
[[nodiscard]] std::vector<BatchRecord> decode_batch(const net::Message& m,
                                                    std::size_t num_procs,
                                                    bool omit_timestamps);

}  // namespace mc::dsm
