// Read-staleness monitor (docs/TRACING.md): a registry, shared by every
// process of one MixedSystem, of the latest write anywhere per variable.
// Writers register each update at issue time; readers compare what they
// actually returned against it, yielding the first direct, quantitative
// picture of what each consistency mode trades away:
//
//   read.staleness_versions — how many globally issued writes to the
//       variable the returned value had not yet absorbed (version lag);
//   read.staleness_vc — the vector-clock distance (sum of component
//       shortfalls) between the returned entry's timestamp and the freshest
//       write timestamp known anywhere.
//
// Both are recorded per read, split by PRAM vs causal mode, and surfaced as
// `read.staleness_versions.{pram,causal}` / `read.staleness_vc.{pram,causal}`
// histogram summaries in MixedSystem::metrics().  This is measurement
// machinery, not protocol state: it lives outside the simulated fabric (a
// real deployment would sample it from a side channel) and is only
// maintained when Config::track_staleness is set.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "common/vector_clock.h"

namespace mc::dsm {

class StalenessTable {
 public:
  StalenessTable(std::size_t num_vars, std::size_t num_procs)
      : issued_(num_vars), latest_(num_vars, VectorClock(num_procs)) {}

  StalenessTable(const StalenessTable&) = delete;
  StalenessTable& operator=(const StalenessTable&) = delete;

  /// Register one issued write (or delta) to x.  `vc` is the writer's stamp;
  /// empty in count-vector mode (Config::omit_timestamps), which tracks
  /// version lag only.
  void on_write(VarId x, const VectorClock& vc) {
    if (x >= issued_.size()) return;
    issued_[x].v.fetch_add(1, std::memory_order_relaxed);
    if (!vc.empty()) {
      std::scoped_lock lk(mu_);
      latest_[x].merge(vc);
    }
  }

  /// Writes issued to x anywhere so far.
  [[nodiscard]] std::uint64_t issued(VarId x) const {
    return x < issued_.size() ? issued_[x].v.load(std::memory_order_relaxed) : 0;
  }

  /// Sum over processes of how far `seen` (the returned entry's timestamp;
  /// empty means "never absorbed a stamped write") trails the freshest
  /// stamp known for x.
  [[nodiscard]] std::uint64_t vc_distance(VarId x, const VectorClock& seen) const {
    if (x >= latest_.size()) return 0;
    std::scoped_lock lk(mu_);
    const VectorClock& latest = latest_[x];
    std::uint64_t d = 0;
    for (ProcId p = 0; p < latest.size(); ++p) {
      const std::uint64_t have = seen.empty() ? 0 : seen[p];
      if (latest[p] > have) d += latest[p] - have;
    }
    return d;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::vector<Slot> issued_;
  mutable std::mutex mu_;
  std::vector<VectorClock> latest_;
};

}  // namespace mc::dsm
