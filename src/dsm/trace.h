// Execution trace recording: every completed memory/synchronization
// operation of a node is appended to a per-process trace, and the traces of
// a system merge into a formal History (history/history.h) that the
// Section 3/4 checkers can validate.
//
// This closes the loop between the runtime and the model: integration tests
// run real programs on the DSM and then assert check_mixed_consistency on
// the recorded history.

#pragma once

#include <mutex>
#include <vector>

#include "history/history.h"

namespace mc::dsm {

class TraceRecorder {
 public:
  explicit TraceRecorder(bool enabled) : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Append one completed operation (called by the issuing node under its
  /// own lock; recorder adds no synchronization of its own).
  void record(const history::Operation& op) {
    if (enabled_) ops_.push_back(op);
  }

  [[nodiscard]] const std::vector<history::Operation>& ops() const { return ops_; }

  void clear() { ops_.clear(); }

 private:
  bool enabled_;
  std::vector<history::Operation> ops_;
};

/// Merge per-process traces into a sequential-process History.
history::History merge_traces(std::size_t num_procs,
                              const std::vector<const TraceRecorder*>& traces);

}  // namespace mc::dsm
