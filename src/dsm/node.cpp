#include "dsm/node.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "dsm/staleness.h"
#include "obs/op_sink.h"
#include "obs/tracer.h"

namespace mc::dsm {

using namespace std::chrono_literals;

namespace {
constexpr auto kLivenessDeadline = 30s;
}  // namespace

Node::Node(const Config& cfg, ProcId self, net::Fabric& fabric, net::Endpoint lock_mgr,
           net::Endpoint barrier_mgr, StalenessTable* staleness)
    : cfg_(cfg),
      self_(self),
      fabric_(fabric),
      lock_mgr_(lock_mgr),
      barrier_mgr_(barrier_mgr),
      staleness_(staleness),
      mem_(cfg.num_vars, cfg.num_procs),
      dep_vc_(cfg.num_procs),
      applied_(cfg.num_procs),
      update_arrived_(cfg.num_procs),
      pram_floor_(cfg.num_procs),
      causal_floor_(cfg.num_procs),
      causal_buffer_(cfg.num_procs),
      sent_to_(cfg.num_procs),
      received_from_(cfg.num_procs),
      count_floor_(cfg.num_procs),
      dir_mode_(cfg.directory.has_value()),
      elastic_(cfg.elastic),
      trace_(cfg.record_trace) {
  if (elastic_) {
    view_.alive_mask = cfg_.initial_members.has_value()
                           ? mask_of(*cfg_.initial_members)
                           : full_mask(cfg_.num_procs);
  }
  if (dir_mode_) {
    sharer_mask_.assign(cfg_.num_vars, 0);
    cached_.assign(cfg_.num_vars, false);
    last_use_.assign(cfg_.num_vars, 0);
    fill_inflight_.assign(cfg_.num_vars, false);
    resolved_ = VectorClock(cfg_.num_procs);
    // Owner pin: the home's copy of each of its variables is always
    // resident, so eviction elsewhere can never drop the last replica.
    // Demand-association variables keep full replication.
    for (VarId x = 0; x < cfg_.num_vars; ++x) {
      if (!dir_managed(x) || effective_home(x) == self_) cached_[x] = true;
    }
  }
  if (cfg_.batching.has_value()) {
    staged_.resize(cfg_.num_procs);
    flusher_ = std::thread([this] { run_flusher(); });
  }
  delivery_ = std::thread([this] { run_delivery(); });
}

Node::~Node() { stop(); }

void Node::stop() {
  {
    std::scoped_lock lk(mu_);
    flusher_stop_ = true;
  }
  flush_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  if (delivery_.joinable()) delivery_.join();
}

template <typename Pred>
void Node::wait_or_die(std::unique_lock<std::mutex>& lk, const char* what, Pred pred) {
  // Elastic: an evicted process has no further obligations anyone will
  // meet — unwind it instead of letting it stall (system.cpp treats
  // EvictedError as a clean per-process exit).
  if (evicted_) throw EvictedError(what);
  auto stop = [&] { return evicted_ || pred(); };
  Watchdog* wd = watchdog_.load(std::memory_order_acquire);
  if (wd == nullptr) {
    if (!cv_.wait_for(lk, kLivenessDeadline, stop)) {
      MC_CHECK_MSG(false, what);
    }
    if (evicted_) throw EvictedError(what);
    return;
  }
  // Watchdog-supervised wait: register while blocked, poll fired() so a
  // stall anywhere in the system unwinds this thread with StallError
  // instead of wedging it until its own deadline.
  if (wd->fired()) throw StallError(what);
  Watchdog::WaitScope scope(*wd, self_, what);
  const auto deadline = std::chrono::steady_clock::now() + kLivenessDeadline;
  for (;;) {
    if (cv_.wait_for(lk, wd->poll_interval(), stop)) {
      if (evicted_) throw EvictedError(what);
      return;
    }
    if (wd->fired()) throw StallError(what);
    MC_CHECK_MSG(std::chrono::steady_clock::now() < deadline, what);
  }
}

// ----------------------------------------------------------------------
// Delivery thread
// ----------------------------------------------------------------------

void Node::run_delivery() {
  while (auto m = fabric_.recv(self_)) {
    obs::TraceSpan span("deliver", "net", {"kind", m->kind}, {"src", m->src});
    // Close the message's flow inside the deliver span so the Perfetto
    // arrow from its send binds to this slice.
    obs::trace_flow_end("msg", "net", m->trace_id);
    switch (m->kind) {
      case kUpdate:
        on_update(*m);
        break;
      case kBatch:
        on_batch(*m);
        break;
      case kLockGrant: {
        GrantInfo info;
        info.episode = m->b;
        info.prev_holders_mask = m->c;
        info.release_vc = VectorClock(cfg_.num_procs);
        // Directory mode ships BOTH payload forms: per-sender unlock counts
        // first, then the merged release clock (see LockManager::send_grant).
        const std::size_t vc_at = dir_mode_ ? cfg_.num_procs : 0;
        MC_CHECK(m->payload.size() >= vc_at + cfg_.num_procs + 2 * m->d);
        if (dir_mode_) {
          info.counts = VectorClock(cfg_.num_procs);
          for (ProcId p = 0; p < cfg_.num_procs; ++p) info.counts.set(p, m->payload[p]);
        }
        for (ProcId p = 0; p < cfg_.num_procs; ++p) {
          info.release_vc.set(p, m->payload[vc_at + p]);
        }
        for (std::uint64_t k = 0; k < m->d; ++k) {
          info.invalid.emplace_back(
              static_cast<VarId>(m->payload[vc_at + cfg_.num_procs + 2 * k]),
              static_cast<net::Endpoint>(m->payload[vc_at + cfg_.num_procs + 2 * k + 1]));
        }
        info.trace_id = m->trace_id;
        {
          std::scoped_lock lk(mu_);
          pending_grants_[static_cast<LockId>(m->a)] = std::move(info);
        }
        cv_.notify_all();
        break;
      }
      case kBarrierRelease: {
        // Directory mode: transposed sent-counts first, merged clock second
        // (see BarrierManager::maybe_release).
        const std::size_t vc_at = dir_mode_ ? cfg_.num_procs : 0;
        MC_CHECK(m->payload.size() == vc_at + cfg_.num_procs);
        BarrierRelease rel;
        rel.vc = VectorClock(cfg_.num_procs);
        for (ProcId p = 0; p < cfg_.num_procs; ++p) rel.vc.set(p, m->payload[vc_at + p]);
        if (dir_mode_) {
          rel.counts = VectorClock(cfg_.num_procs);
          for (ProcId p = 0; p < cfg_.num_procs; ++p) rel.counts.set(p, m->payload[p]);
        }
        rel.trace_id = m->trace_id;
        {
          std::scoped_lock lk(mu_);
          barrier_release_[{static_cast<BarrierId>(m->a), m->b}] = std::move(rel);
        }
        cv_.notify_all();
        break;
      }
      case kSyncReq: {
        // FIFO channels guarantee the prober's earlier updates are already
        // applied to our PRAM view; acknowledge immediately.
        net::Message ack;
        ack.src = self_;
        ack.dst = m->src;
        ack.kind = kSyncAck;
        ack.a = m->a;
        fabric_.send(std::move(ack));
        break;
      }
      case kSyncAck: {
        {
          std::scoped_lock lk(mu_);
          ++sync_acks_[m->a];
        }
        cv_.notify_all();
        break;
      }
      case kFetchReq:
        on_fetch_request(*m);
        break;
      case kViewPropose:
        if (elastic_) on_view_propose(*m);
        break;
      case kViewCommit:
        if (elastic_) on_view_commit(*m);
        break;
      case kViewState:
        if (elastic_) on_view_state(*m);
        break;
      case kViewBarrierSync:
        if (elastic_) on_view_barrier_sync(*m);
        break;
      case kViewHello:
        if (elastic_) on_view_hello(*m);
        break;
      case kFetchBulkReq:
        on_fetch_bulk_req(*m);
        break;
      case kFetchBulkResp:
        on_fetch_bulk_resp(*m);
        break;
      case kDirSharerAdd:
        on_dir_sharer_add(*m);
        break;
      case kDirAck:
        on_dir_ack(*m);
        break;
      case kDirUnregister:
        on_dir_unregister(*m);
        break;
      case kDirSharerDel:
        on_dir_sharer_del(*m);
        break;
      case kFrontierReq: {
        // Flush first, reply second, same channel: FIFO puts every staged
        // write ahead of the frontier stamp, so the stamp's promise ("all
        // my writes up to this counter are on the wire to you") holds.
        net::Message resp;
        resp.dst = m->src;
        {
          std::scoped_lock lk(mu_);
          if (cfg_.batching.has_value()) flush_staged_locked();
          resp.src = self_;
          resp.kind = kFrontierResp;
          resp.a = write_counter_;
        }
        fabric_.send(std::move(resp));
        break;
      }
      case kFrontierResp: {
        {
          std::scoped_lock lk(mu_);
          resolved_.set(static_cast<ProcId>(m->src),
                        std::max(resolved_[static_cast<ProcId>(m->src)], m->a));
        }
        cv_.notify_all();
        break;
      }
      case kDirSharerSync:
        on_dir_sharer_sync(*m);
        break;
      case kFetchResp: {
        FetchResult res;
        res.value = m->c;
        res.id = WriteId{static_cast<ProcId>(m->d), m->payload.empty() ? 0 : m->payload[0]};
        res.vc = VectorClock(cfg_.num_procs);
        MC_CHECK(m->payload.size() == 1 + cfg_.num_procs);
        for (ProcId p = 0; p < cfg_.num_procs; ++p) res.vc.set(p, m->payload[1 + p]);
        res.trace_id = m->trace_id;
        {
          std::scoped_lock lk(mu_);
          fetch_results_[m->b] = std::move(res);
        }
        cv_.notify_all();
        break;
      }
      default:
        break;
    }
  }
}

void Node::on_update(const net::Message& m) {
  BatchRecord r;
  r.var = static_cast<VarId>(m.a);
  r.value = m.b;
  r.seq = m.c;
  r.flags = m.d;
  const auto sender = static_cast<ProcId>(m.src);

  if (cfg_.omit_timestamps) {
    // Count-vector fast path (Section 6): apply in per-sender FIFO arrival
    // order and feed the receive index to the count floors.  With
    // selective multicast the writer sequence may skip values for this
    // receiver; it must still be monotone per channel.
    MC_CHECK(m.payload.empty());
    std::scoped_lock lk(mu_);
    if (cfg_.update_subscribers.empty()) {
      MC_CHECK_MSG(r.seq == applied_[sender] + 1,
                   "per-sender FIFO violated on the update channel");
    } else {
      MC_CHECK_MSG(r.seq > applied_[sender],
                   "per-sender FIFO violated on the update channel");
    }
    received_from_.set(sender, received_from_[sender] + 1);
    mem_.apply(r.var, r.value, r.flags, WriteId{sender, r.seq}, r.vc,
               received_from_[sender]);
    applied_.set(sender, r.seq);
    cv_.notify_all();
    return;
  }

  PendingUpdate u;
  u.vc = VectorClock(cfg_.num_procs);
  // Elastic updates carry one extra word: the writer's view epoch (wire.h).
  MC_CHECK(m.payload.size() == cfg_.num_procs + (elastic_ ? 1 : 0));
  for (ProcId p = 0; p < cfg_.num_procs; ++p) u.vc.set(p, m.payload[p]);
  if (elastic_) r.epoch = m.payload[cfg_.num_procs];
  r.vc = u.vc;
  u.recs.push_back(std::move(r));

  {
    std::scoped_lock lk(mu_);
    // Arrival must stay FIFO per sender; application to the local copy
    // happens in causally-ready order (drain_causal_buffers) for both
    // read modes.
    MC_CHECK_MSG(u.vc[sender] == update_arrived_[sender] + 1,
                 "per-sender FIFO violated on the update channel");
    update_arrived_.set(sender, u.vc[sender]);
    causal_buffer_[sender].push_back(std::move(u));
    drain_causal_buffers();
  }
  cv_.notify_all();
}

void Node::on_batch(const net::Message& m) {
  const auto sender = static_cast<ProcId>(m.src);
  std::vector<BatchRecord> recs = decode_batch(m, cfg_.num_procs, cfg_.omit_timestamps);

  if (cfg_.omit_timestamps) {
    // Coalescing keeps a merged record at its original staging position
    // with its *latest* sequence number, so sequence numbers inside a
    // batch are neither dense nor monotone — but the batch as a whole must
    // still move the per-sender channel strictly forward.
    std::scoped_lock lk(mu_);
    SeqNo max_seq = 0;
    for (const BatchRecord& r : recs) max_seq = std::max(max_seq, r.seq);
    MC_CHECK_MSG(max_seq > applied_[sender],
                 "per-sender FIFO violated on the batch channel");
    for (const BatchRecord& r : recs) {
      // Advance the receive index by the record's weight: the collapsed
      // originals never travel, but the sender counted them in sent_to_,
      // and Section 6's count synchronization compares the two.
      received_from_.set(sender, received_from_[sender] + r.weight);
      mem_.apply(r.var, r.value, r.flags, WriteId{sender, r.seq}, r.vc,
                 received_from_[sender], /*force=*/false, r.weight);
    }
    applied_.set(sender, std::max(applied_[sender], max_seq));
    cv_.notify_all();
    return;
  }

  if (dir_mode_) {
    // Directory mode applies at arrival with no causal buffering: each
    // variable is an apply-order-independent LWW register (store.cpp), and
    // the read gate blocks on the resolved frontier instead of waiting for
    // causally-ready application.  Records for variables this node does not
    // cache are counted (the sender counted them in sent_to_, and Section
    // 6's count synchronization compares the two) but not applied.
    std::scoped_lock lk(mu_);
    for (const BatchRecord& r : recs) {
      received_from_.set(sender, received_from_[sender] + r.weight);
      // Re-homing offers carry the original writer's id (kFlagHasWriter).
      const ProcId writer = r.writer == kNoProc ? sender : r.writer;
      if (cached_[r.var]) {
        mem_.apply(r.var, r.value, r.flags, WriteId{writer, r.seq}, r.vc,
                   received_from_[sender], /*force=*/false, r.weight, r.epoch);
      } else if (fill_inflight_[r.var]) {
        // The fill's ack fence already registered us, so writers multicast
        // here before our snapshot arrives.  The home's snapshot is fixed
        // when its last fence ack lands — it may or may not cover this
        // write — so hold the record and let the install replay it against
        // the snapshot clock (on_fetch_bulk_resp).
        BatchRecord held = r;
        held.writer = writer;
        fill_backlog_[r.var].push_back(std::move(held));
      } else if (r.writer != kNoProc) {
        // A re-homing offer or leave handoff addressed to this node as an
        // incoming home: the offer and the view commit that pins cached_
        // race on independent channels, so apply it to the store either
        // way — the entry only becomes readable once the pin (or a fill)
        // marks the variable cached.
        mem_.apply(r.var, r.value, r.flags, WriteId{writer, r.seq}, r.vc,
                   received_from_[sender], /*force=*/false, r.weight, r.epoch);
      }
      applied_.set(sender, std::max(applied_[sender], r.vc[sender]));
      update_arrived_.set(sender, std::max(update_arrived_[sender], r.vc[sender]));
    }
    // The flush stamp: everything this sender addressed to us up to its
    // m.b-th write has now arrived (per-channel FIFO).
    resolved_.set(sender, std::max(resolved_[sender], m.b));
    cv_.notify_all();
    return;
  }

  PendingUpdate u;
  u.gap_ok = true;
  u.vc = VectorClock(cfg_.num_procs);
  for (const BatchRecord& r : recs) u.vc.merge(r.vc);
  u.recs = std::move(recs);
  {
    std::scoped_lock lk(mu_);
    MC_CHECK_MSG(u.vc[sender] > update_arrived_[sender],
                 "per-sender FIFO violated on the batch channel");
    update_arrived_.set(sender, u.vc[sender]);
    causal_buffer_[sender].push_back(std::move(u));
    drain_causal_buffers();
  }
  cv_.notify_all();
}

void Node::drain_causal_buffers() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (ProcId s = 0; s < cfg_.num_procs; ++s) {
      auto& q = causal_buffer_[s];
      auto ready = [&](const PendingUpdate& u) {
        return elastic_
                   ? u.vc.ready_after_masked(applied_, s, u.gap_ok, view_.alive_mask)
                   : u.vc.ready_after(applied_, s, u.gap_ok);
      };
      while (!q.empty() && ready(q.front())) {
        const PendingUpdate& u = q.front();
        // A batch applies atomically: every record lands under this one
        // mutex hold, so no reader observes a mid-batch state (which the
        // coalesced per-write history could not serialize).
        for (const BatchRecord& r : u.recs) {
          mem_.apply(r.var, r.value, r.flags, WriteId{s, r.seq},
                     r.vc.empty() ? u.vc : r.vc, 0, /*force=*/false, r.weight,
                     r.epoch);
        }
        applied_.set(s, u.vc[s]);
        q.pop_front();
        progress = true;
      }
    }
  }
}

void Node::on_fetch_request(const net::Message& m) {
  net::Message resp;
  resp.src = self_;
  resp.dst = m.src;
  resp.kind = kFetchResp;
  resp.a = m.a;
  resp.b = m.b;
  {
    std::scoped_lock lk(mu_);
    // Mandatory flush (batching): serving a demand fetch is update
    // propagation — the response's clock may cover staged writes, which
    // must already be travelling when the requester blocks on them.
    if (cfg_.batching.has_value()) flush_staged_locked();
    const VarEntry& e = mem_.entry(static_cast<VarId>(m.a));
    resp.c = e.value;
    resp.d = e.last.proc;
    resp.payload.push_back(e.last.seq);
    const VectorClock vc = e.vc.empty() ? VectorClock(cfg_.num_procs) : e.vc;
    resp.payload.insert(resp.payload.end(), vc.components().begin(), vc.components().end());
  }
  fabric_.send(std::move(resp));
}

// ----------------------------------------------------------------------
// Elastic membership (Config::elastic; dsm/view.h, docs/FAULTS.md)
// ----------------------------------------------------------------------

void Node::on_view_propose(const net::Message& m) {
  // Ack = "my staging buffers are flushed and this applied clock is
  // truthful" — the manager picks re-seed donors from these snapshots.
  net::Message ack;
  ack.src = self_;
  ack.dst = m.src;
  ack.kind = kViewAck;
  ack.a = m.a;
  std::scoped_lock lk(mu_);
  if (cfg_.batching.has_value()) flush_staged_locked();
  ack.payload.assign(applied_.components().begin(), applied_.components().end());
  fabric_.send(std::move(ack));
}

void Node::on_view_commit(const net::Message& m) {
  std::vector<net::Message> replay;
  std::unique_lock lk(mu_);
  if (m.a <= view_.epoch) return;  // stale — epochs are monotone
  const std::uint64_t prev_mask = view_.alive_mask;
  view_.epoch = m.a;
  view_.alive_mask = m.b;
  const std::uint64_t departed = prev_mask & ~m.b;
  const ProcId joiner =
      m.c == ~std::uint64_t{0} ? kNoProc : static_cast<ProcId>(m.c);

  if (self_ < 64 && ((prev_mask >> self_) & 1) != 0 && !view_.is_alive(self_)) {
    if (leaving_) left_ = true;
    else evicted_ = true;
  }

  // Staged updates to the departed will never be acknowledged; drop them.
  // Their sent_to_ counts stand — nobody synchronizes on a dead sender's
  // counts again.
  if (cfg_.batching.has_value()) {
    for (ProcId p = 0; p < cfg_.num_procs; ++p) {
      if (p < 64 && ((departed >> p) & 1) != 0 && !staged_[p].empty()) {
        staged_total_ -= staged_[p].size();
        staged_[p].clear();
      }
    }
  }
  // Demand-driven invalidations pointing at a dead owner: fall back to the
  // local copy (the re-mastering pass re-seeds it if the owner's write was
  // the global winner).
  for (auto it = invalid_.begin(); it != invalid_.end();) {
    const auto owner = it->second;
    if (owner < 64 && ((departed >> owner) & 1) != 0) it = invalid_.erase(it);
    else ++it;
  }
  // Buffered updates gated on a dead component may be ready under the mask.
  drain_causal_buffers();

  // Directory reconfiguration (docs/DIRECTORY.md): purge dead sharers,
  // re-home, and unwind fills that straddle the view change.
  if (dir_mode_) {
    // A departed process can never receive another update; clear its bits
    // from every mirror row so multicasts stop addressing it.
    if (departed != 0) {
      for (VarId x = 0; x < cfg_.num_vars; ++x) {
        const std::uint64_t purged = sharer_mask_[x] & departed;
        if (purged == 0) continue;
        sharer_mask_[x] &= ~departed;
        stats_.dir_sharers_purged.add(popcount64(purged));
      }
    }
    if (view_.is_alive(self_)) {
      // Re-home: a variable whose effective home moved to this node is
      // pinned here from now on; when it moved *away*, offer our copy to
      // the new home — which may never have been a sharer.  LWW
      // arbitration dedupes offers from multiple holders.  Counters are
      // skipped: a delta-merged value is a sum of per-replica
      // applications, not a transplantable winner (docs/FAULTS.md — same
      // class as re-seeding).
      for (VarId x = 0; x < cfg_.num_vars; ++x) {
        if (!dir_managed(x)) continue;
        const ProcId old_home = home_under(prev_mask, x);
        const ProcId new_home = home_under(view_.alive_mask, x);
        if (old_home == new_home) continue;
        if (new_home == self_) {
          cached_[x] = true;  // owner pin: the home always holds a copy
        } else if (cached_[x]) {
          const VarEntry& e = mem_.entry(x);
          if (e.last.valid() && !e.delta_touched && cfg_.batching.has_value()) {
            stage_update(new_home, x, e.value, kFlagWrite, e.last.seq, e.vc,
                         e.epoch, e.last.proc);
          }
          // The owner pin lapses with the homing: a pin-only copy has no
          // row bit, so the new home's multicasts would never refresh it —
          // drop it rather than serve stale reads.  Demand-registered
          // copies (own row bit set) stay live, and counter copies stay
          // because a delta sum is not transplantable.
          if (old_home == self_ && !e.delta_touched &&
              ((sharer_mask_[x] >> self_) & 1) == 0) {
            cached_[x] = false;
          }
        }
      }
    }
    // Home-side fills: a dead requester's fill is abandoned, dead ackers
    // leave the fence, and a variable re-homed away is the new home's
    // problem (its requester re-faults below).
    for (auto it = fills_serving_.begin(); it != fills_serving_.end();) {
      ServingFill& f = it->second;
      if (!view_.is_alive(f.requester) ||
          effective_home(f.vars.front()) != self_) {
        it = fills_serving_.erase(it);
        continue;
      }
      f.need_acks &= view_.alive_mask;
      if (f.need_acks == 0) {
        send_fill_response_locked(it->first.second, f);
        it = fills_serving_.erase(it);
      } else {
        ++it;
      }
    }
    // Requester-side fills: abort rather than re-aim — re-homing can even
    // split a prefetch frame across new homes.  The blocked reader wakes,
    // re-checks its miss, and re-faults under the new view.
    for (auto& [token, pf] : fills_) {
      if (pf.done) continue;
      for (const VarId x : pf.vars) {
        fill_inflight_[x] = false;
        // Held raced-the-fill records die with the fill: the re-issued
        // fill's fence re-covers anything a surviving writer sent.
        fill_backlog_.erase(x);
      }
      pf.done = true;
    }
    // Handlers deferred to this epoch re-run once mu_ drops at the end of
    // this function (they take the lock themselves, and may re-defer).
    replay.swap(dir_deferred_);
  }

  // Donor duties: re-seed each departed process's surviving latest writes,
  // or ship the joiner a full snapshot.
  MC_CHECK(m.payload.size() >= 2 * m.d);
  for (std::uint64_t k = 0; k < m.d; ++k) {
    const auto target = static_cast<ProcId>(m.payload[2 * k]);
    const auto donor = static_cast<ProcId>(m.payload[2 * k + 1]);
    if (donor != self_) continue;
    const bool to_joiner = target == joiner && joiner != kNoProc;
    net::Message st;
    st.src = self_;
    st.kind = kViewState;
    st.b = view_.epoch;
    st.c = to_joiner ? 1 : 0;
    std::uint64_t count = 0;
    for (VarId x = 0; x < mem_.size(); ++x) {
      // Directory mode: only ship variables this node actually caches — an
      // evicted replica's stale entry is not a donatable copy.
      if (dir_mode_ && dir_managed(x) && !cached_[x]) continue;
      const VarEntry& e = mem_.entry(x);
      if (to_joiner) {
        // Full snapshot: every entry ever touched, counters included (the
        // joiner has no local applications to double-count against).
        if (!e.last.valid() && e.vc.empty()) continue;
      } else {
        // Re-seed: only entries whose latest write is the departed
        // process's, and never counters (a delta-merged value is a sum of
        // per-replica applications, not a replicable LWW winner).
        if (e.last.proc != target || e.delta_touched) continue;
      }
      st.payload.push_back(x);
      st.payload.push_back(e.value);
      st.payload.push_back(e.last.proc);
      st.payload.push_back(e.last.seq);
      st.payload.push_back(e.delta_touched ? 1 : 0);
      st.payload.push_back(e.epoch);
      const VectorClock vc = e.vc.empty() ? VectorClock(cfg_.num_procs) : e.vc;
      st.payload.insert(st.payload.end(), vc.components().begin(),
                        vc.components().end());
      ++count;
    }
    st.a = count;
    stats_.reseeds_out.add(count);
    if (to_joiner) {
      st.dst = joiner;
      fabric_.send(std::move(st));
    } else {
      // Every survivor might be missing some of the departed's writes.
      for (const ProcId p : view_.members()) {
        if (p == self_ || p >= cfg_.num_procs) continue;
        net::Message copy = st;
        copy.dst = p;
        fabric_.send(std::move(copy));
      }
    }
  }

  // FIFO baseline for the admitted joiner, sent under mu_ so any update we
  // broadcast afterwards is sequenced behind it on the same channel.
  if (joiner != kNoProc && joiner != self_ && view_.is_alive(self_)) {
    // Self backfill first: the designated donor's snapshot races with
    // updates third parties broadcast to the OLD membership only — such a
    // write can reach the donor after it snapshots and is then never sent
    // to the joiner.  Each survivor therefore re-offers its own latest
    // writes; LWW arbitration at the joiner picks the same winner the
    // survivors converged on, in either arrival order.  Counters stay
    // snapshot-only (a delta-merged value is not a replicable LWW winner).
    net::Message bf;
    bf.src = self_;
    bf.dst = joiner;
    bf.kind = kViewState;
    bf.b = view_.epoch;
    bf.c = 2;
    std::uint64_t count = 0;
    for (VarId x = 0; x < mem_.size(); ++x) {
      if (dir_mode_ && dir_managed(x) && !cached_[x]) continue;
      const VarEntry& e = mem_.entry(x);
      if (e.last.proc != self_ || e.delta_touched) continue;
      bf.payload.push_back(x);
      bf.payload.push_back(e.value);
      bf.payload.push_back(e.last.proc);
      bf.payload.push_back(e.last.seq);
      bf.payload.push_back(0);
      bf.payload.push_back(e.epoch);
      const VectorClock vc = e.vc.empty() ? VectorClock(cfg_.num_procs) : e.vc;
      bf.payload.insert(bf.payload.end(), vc.components().begin(),
                        vc.components().end());
      ++count;
    }
    bf.a = count;
    stats_.reseeds_out.add(count);
    fabric_.send(std::move(bf));

    net::Message hello;
    hello.src = self_;
    hello.dst = joiner;
    hello.kind = kViewHello;
    hello.a = write_counter_;
    hello.b = view_.epoch;
    hello.payload.assign(dep_vc_.components().begin(), dep_vc_.components().end());
    fabric_.send(std::move(hello));

    if (dir_mode_) {
      // Authoritative directory rows for the joiner's mirror: this node's
      // homed variables.  Sent even when empty — the joiner counts sync
      // senders before finishing join(), and FIFO sequencing puts the sync
      // ahead of any later kDirSharerAdd we multicast.
      net::Message sync;
      sync.src = self_;
      sync.dst = joiner;
      sync.kind = kDirSharerSync;
      sync.b = view_.epoch;
      std::uint64_t pairs = 0;
      for (VarId x = 0; x < cfg_.num_vars; ++x) {
        if (!dir_managed(x)) continue;
        // Own homed rows, plus rows this node just handed to the joiner by
        // re-homing — the joiner serializes those from now on and must
        // know their registered sharers (every survivor mirrors the row,
        // so duplicate shipments OR-merge to the same value).
        const bool mine = effective_home(x) == self_;
        const bool handed_off =
            home_under(prev_mask, x) == self_ && effective_home(x) == joiner;
        if (!mine && !handed_off) continue;
        if (sharer_mask_[x] == 0) continue;
        sync.payload.push_back(x);
        sync.payload.push_back(sharer_mask_[x]);
        ++pairs;
      }
      sync.a = pairs;
      fabric_.send(std::move(sync));
    }
  }
  cv_.notify_all();
  lk.unlock();
  for (net::Message& dm : replay) {
    if (dm.kind == kFetchBulkReq) on_fetch_bulk_req(dm);
    else if (dm.kind == kDirSharerAdd) on_dir_sharer_add(dm);
  }
}

void Node::on_view_state(const net::Message& m) {
  // c distinguishes the shipment flavours: 1 = the donor's full snapshot
  // to the joiner, 2 = a survivor's self-backfill to the joiner (see
  // on_view_commit; re-seeding to survivors travels as flagged kUpdate
  // writes instead).
  const bool full_snapshot = m.c == 1;
  const std::size_t stride = 6 + cfg_.num_procs;
  std::scoped_lock lk(mu_);
  MC_CHECK(m.payload.size() >= m.a * stride);
  for (std::uint64_t k = 0; k < m.a; ++k) {
    const std::uint64_t* rec = m.payload.data() + k * stride;
    const auto x = static_cast<VarId>(rec[0]);
    // Directory mode: a snapshot record for a variable this node does not
    // cache must not materialize a replica outside the directory's
    // knowledge — skip it; a later read demand-pages a fresh copy.
    if (dir_mode_ && dir_managed(x) && !cached_[x]) continue;
    const Value value = rec[1];
    const WriteId id{static_cast<ProcId>(rec[2]), rec[3]};
    const bool delta_touched = rec[4] != 0;
    const std::uint64_t wepoch = rec[5];
    VectorClock vc(cfg_.num_procs);
    for (ProcId p = 0; p < cfg_.num_procs; ++p) vc.set(p, rec[6 + p]);
    if (full_snapshot && delta_touched) {
      // Counter baseline: an absolute value the joiner has no local
      // applications to double-count against — install verbatim.
      mem_.install(x, value, id, vc, delta_touched, wepoch);
    } else if (!mem_.entry(x).delta_touched) {
      // LWW arbitration (store.cpp) picks the winner between the shipped
      // copy and whatever this replica already holds — snapshots,
      // backfills, and direct updates commute to the same result, and the
      // record's original write epoch keeps a dead process's
      // partially-delivered last write from beating a new-view overwrite.
      mem_.apply(x, value, kFlagWrite, id, vc, 0, /*force=*/false, 1, wepoch);
    }
    stats_.reseeds_in.add();
  }
  if (full_snapshot) snapshot_done_ = true;
  cv_.notify_all();
}

void Node::on_view_barrier_sync(const net::Message& m) {
  std::scoped_lock lk(mu_);
  MC_CHECK(m.payload.size() >= 2 * m.a);
  for (std::uint64_t k = 0; k < m.a; ++k) {
    const auto b = static_cast<BarrierId>(m.payload[2 * k]);
    auto& e = barrier_epoch_[b];
    e = std::max(e, m.payload[2 * k + 1]);
  }
  barrier_synced_ = true;
  cv_.notify_all();
}

void Node::on_view_hello(const net::Message& m) {
  const auto sender = static_cast<ProcId>(m.src);
  std::scoped_lock lk(mu_);
  // The sender's pre-admission updates were broadcast to the old
  // membership only; waive them.  FIFO sequencing (the hello travels the
  // same channel as the sender's later updates) makes the baseline exact.
  update_arrived_.set(sender, std::max(update_arrived_[sender], m.a));
  applied_.set(sender, std::max(applied_[sender], m.a));
  // Directory mode: the hello's write counter is also the sender's
  // resolved frontier — everything before it was broadcast to the old
  // membership only and is waived for this node.
  if (dir_mode_) resolved_.set(sender, std::max(resolved_[sender], m.a));
  cv_.notify_all();
}

View Node::view() const {
  std::scoped_lock lk(mu_);
  return view_;
}

std::uint64_t Node::next_barrier_epoch(BarrierId b) const {
  std::scoped_lock lk(mu_);
  const auto it = barrier_epoch_.find(b);
  return it == barrier_epoch_.end() ? 0 : it->second;
}

void Node::join() {
  MC_CHECK_MSG(elastic_, "join requires Config::elastic");
  {
    std::scoped_lock lk(mu_);
    MC_CHECK_MSG(!view_.is_alive(self_), "join by a process already in the view");
  }
  net::Message req;
  req.src = self_;
  req.dst = lock_mgr_;
  req.kind = kViewJoin;
  req.a = self_;
  fabric_.send(std::move(req));
  std::unique_lock lk(mu_);
  wait_or_die(lk, "join blocked past the liveness deadline", [&] {
    // Admitted, barrier counters aligned, the donor snapshot landed
    // (vacuous when this process is the view's only member), and — in
    // directory mode — every other live node's authoritative sharer rows
    // arrived (kDirSharerSync, sent even when empty).
    return view_.is_alive(self_) && barrier_synced_ &&
           (snapshot_done_ || view_.live_count() == 1) &&
           (!dir_mode_ ||
            (view_.alive_mask & ~(std::uint64_t{1} << self_) & ~dir_sync_from_) == 0);
  });
}

void Node::leave() {
  MC_CHECK_MSG(elastic_, "leave requires Config::elastic");
  std::uint64_t handoff = 0;
  {
    std::scoped_lock lk(mu_);
    MC_CHECK_MSG(held_.empty(), "leave while holding a lock");
    MC_CHECK_MSG(view_.is_alive(self_), "leave by a process outside the view");
    leaving_ = true;
    if (dir_mode_) {
      // Sole-copy handoff: a variable homed here may have no other sharer,
      // so its state would leave with us.  Offer each cached LWW entry to
      // its next home (ring successor under the shrunken mask) and fence
      // the transfer below, BEFORE asking the manager for the view change:
      // by commit time the new home must already hold the copy, or its
      // owner pin would expose an empty entry to fresh reads.
      const std::uint64_t next =
          view_.alive_mask & ~(std::uint64_t{1} << self_);
      for (VarId x = 0; next != 0 && x < cfg_.num_vars; ++x) {
        if (!dir_managed(x) || !cached_[x]) continue;
        if (home_under(view_.alive_mask, x) != self_) continue;
        const VarEntry& e = mem_.entry(x);
        if (!e.last.valid() || e.delta_touched) continue;
        stage_update(home_under(next, x), x, e.value, kFlagWrite, e.last.seq,
                     e.vc, e.epoch, e.last.proc);
        handoff |= std::uint64_t{1} << home_under(next, x);
      }
    }
    if (cfg_.batching.has_value()) flush_staged_locked();
    dir_handoff_wait_ = handoff;
    for (ProcId p = 0; handoff != 0 && p < cfg_.num_procs; ++p) {
      if ((handoff >> p & 1) == 0) continue;
      // Flush-and-ack probe (a kDirSharerAdd carrying no variables): FIFO
      // sequences the ack behind the offers just flushed on this channel,
      // so a cleared wait bit means the new home has applied them.
      net::Message probe;
      probe.src = self_;
      probe.dst = p;
      probe.kind = kDirSharerAdd;
      probe.a = 0;
      probe.b = kDirHandoffToken;
      probe.c = self_;
      probe.d = view_.epoch;
      fabric_.send(std::move(probe));
    }
  }
  if (handoff != 0) {
    std::unique_lock lk(mu_);
    wait_or_die(lk, "leave handoff blocked past the liveness deadline",
                [&] { return dir_handoff_wait_ == 0; });
  }
  net::Message req;
  req.src = self_;
  req.dst = lock_mgr_;
  req.kind = kViewLeave;
  req.a = self_;
  fabric_.send(std::move(req));
  std::unique_lock lk(mu_);
  wait_or_die(lk, "leave blocked past the liveness deadline", [&] { return left_; });
}

// ----------------------------------------------------------------------
// Directory-based partial replication (Config::directory; docs/DIRECTORY.md)
// ----------------------------------------------------------------------

bool Node::dir_managed(VarId x) const {
  return dir_mode_ &&
         cfg_.demand_association.find(x) == cfg_.demand_association.end();
}

ProcId Node::static_home(VarId x) const {
  const std::size_t stride = (cfg_.num_vars + cfg_.num_procs - 1) / cfg_.num_procs;
  return static_cast<ProcId>(std::min<std::size_t>(x / stride, cfg_.num_procs - 1));
}

ProcId Node::home_under(std::uint64_t mask, VarId x) const {
  const ProcId h = static_home(x);
  for (std::size_t i = 0; i < cfg_.num_procs; ++i) {
    const auto p = static_cast<ProcId>((h + i) % cfg_.num_procs);
    if ((mask >> p & 1) != 0) return p;
  }
  return h;  // empty mask: unreachable while this node itself is alive
}

ProcId Node::effective_home(VarId x) const {
  return elastic_ ? home_under(view_.alive_mask, x) : static_home(x);
}

bool Node::replica_pinned(VarId x) const {
  return effective_home(x) == self_ || mem_.entry(x).delta_touched ||
         fill_inflight_[x];
}

void Node::request_fill(std::unique_lock<std::mutex>& lk, VarId x) {
  MC_CHECK(dir_managed(x));
  // Another thread's fill for x is already in flight: piggyback on it.
  if (fill_inflight_[x]) {
    wait_or_die(lk, "directory fill blocked past the liveness deadline",
                [&] { return cached_[x]; });
    return;
  }
  const ProcId h = effective_home(x);
  if (h == self_) {
    // Just re-homed to us (the commit's pin races the faulting thread).
    cached_[x] = true;
    return;
  }
  Stopwatch sw;
  stats_.dir_fills.add();
  if (profiler_ != nullptr) profiler_->record_fetch(x);
  const std::uint64_t token = ++fill_token_counter_;
  PendingFill& pf = fills_[token];
  pf.vars.push_back(x);
  fill_inflight_[x] = true;
  // Same-home prefetch: pull a working-set frame in one bulk reply.  Capped
  // by the budget so the sweep after install cannot evict the frame itself.
  std::size_t frame = cfg_.directory->fetch_frame;
  if (cfg_.directory->replica_budget > 0) {
    frame = std::min(frame, cfg_.directory->replica_budget);
  }
  for (VarId y = 0; y < cfg_.num_vars && pf.vars.size() < frame; ++y) {
    if (y == x || cached_[y] || fill_inflight_[y] || !dir_managed(y)) continue;
    if (effective_home(y) != h) continue;
    pf.vars.push_back(y);
    fill_inflight_[y] = true;
  }
  // Flush first, request second: our own staged writes travel ahead of the
  // request on our channel to the home, so the fill reflects them
  // (read-your-writes across a miss).
  if (cfg_.batching.has_value()) flush_staged_locked();
  net::Message req;
  req.src = self_;
  req.dst = h;
  req.kind = kFetchBulkReq;
  req.a = pf.vars.size();
  req.b = token;
  req.c = elastic_ ? view_.epoch : 0;
  req.payload.assign(pf.vars.begin(), pf.vars.end());
  fabric_.send(std::move(req));
  wait_or_die(lk, "directory fill blocked past the liveness deadline", [&] {
    const auto it = fills_.find(token);
    return it == fills_.end() || it->second.done;
  });
  fills_.erase(token);
  stats_.dir_fill_wait_ns.record(sw.elapsed());
}

void Node::on_fetch_bulk_req(const net::Message& m) {
  const auto requester = static_cast<ProcId>(m.src);
  std::scoped_lock lk(mu_);
  if (elastic_ && m.c > view_.epoch) {
    // Sent under a view we have not committed yet: our home assignment and
    // the re-homing offers other holders stage at that commit are not in
    // place.  Replay once the commit lands.
    dir_deferred_.push_back(m);
    return;
  }
  MC_CHECK(m.payload.size() >= m.a && m.a >= 1);
  std::vector<VarId> vars(m.payload.begin(), m.payload.begin() + m.a);
  // No longer this variable's home (same-epoch assignment is deterministic,
  // so the requester was behind): it re-issues at its own commit.
  if (effective_home(vars[0]) != self_) return;
  ServingFill f;
  f.requester = requester;
  f.vars = std::move(vars);
  for (const VarId x : f.vars) {
    if ((sharer_mask_[x] >> requester & 1) == 0) {
      sharer_mask_[x] |= std::uint64_t{1} << requester;
      stats_.dir_sharer_adds.add();
      if (profiler_ != nullptr) profiler_->record_sharer_add(x);
    }
  }
  // Ack fence: every third party flushes its staging buffers before the
  // snapshot ships.  A write causally preceding the requester's floor was
  // issued before this fill was requested, so at its writer it is either
  // already sent (FIFO ahead of the ack on the writer->home channel) or
  // still staged (the flush ships it ahead of the ack) — either way the
  // snapshot covers it.
  std::uint64_t fence = elastic_ ? view_.alive_mask : full_mask(cfg_.num_procs);
  fence &= ~(std::uint64_t{1} << requester);
  fence &= ~(std::uint64_t{1} << self_);
  if (fence == 0) {
    send_fill_response_locked(m.b, f);
    return;
  }
  f.need_acks = fence;
  net::Message add;
  add.src = self_;
  add.kind = kDirSharerAdd;
  add.a = f.vars.size();
  add.b = m.b;
  add.c = requester;
  add.d = elastic_ ? view_.epoch : 0;
  add.payload.assign(f.vars.begin(), f.vars.end());
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    if ((fence >> p & 1) == 0) continue;
    net::Message copy = add;
    copy.dst = p;
    fabric_.send(std::move(copy));
  }
  fills_serving_[{requester, m.b}] = std::move(f);
}

void Node::on_dir_sharer_add(const net::Message& m) {
  std::scoped_lock lk(mu_);
  if (elastic_ && m.d > view_.epoch) {
    // Epoch agreement: ack only once our commit for the home's epoch has
    // run, so re-homing offers staged at that commit flush under the fence
    // and the ack travels behind them (FIFO).
    dir_deferred_.push_back(m);
    return;
  }
  MC_CHECK(m.payload.size() >= m.a);
  for (std::uint64_t k = 0; k < m.a; ++k) {
    sharer_mask_[static_cast<VarId>(m.payload[k])] |= std::uint64_t{1} << m.c;
  }
  if (cfg_.batching.has_value()) flush_staged_locked();
  net::Message ack;
  ack.src = self_;
  ack.dst = m.src;
  ack.kind = kDirAck;
  ack.a = m.b;
  ack.b = m.c;
  fabric_.send(std::move(ack));
}

void Node::on_dir_ack(const net::Message& m) {
  std::scoped_lock lk(mu_);
  if (m.a == kDirHandoffToken) {
    // Ack for a pre-leave handoff probe (leave()): the target has applied
    // our re-homing offers.
    dir_handoff_wait_ &= ~(std::uint64_t{1} << static_cast<ProcId>(m.src));
    cv_.notify_all();
    return;
  }
  const auto key = std::make_pair(static_cast<ProcId>(m.b), m.a);
  const auto it = fills_serving_.find(key);
  if (it == fills_serving_.end()) return;  // answered at a view commit re-mask
  it->second.need_acks &= ~(std::uint64_t{1} << static_cast<ProcId>(m.src));
  if (it->second.need_acks == 0) {
    send_fill_response_locked(m.a, it->second);
    fills_serving_.erase(it);
  }
}

void Node::send_fill_response_locked(std::uint64_t token, const ServingFill& f) {
  // Our own staged writes are not fenced by the acks; flush them into the
  // snapshot too.
  if (cfg_.batching.has_value()) flush_staged_locked();
  std::vector<BatchRecord> recs;
  recs.reserve(f.vars.size());
  for (const VarId x : f.vars) {
    const VarEntry& e = mem_.entry(x);
    BatchRecord r;
    r.var = x;
    r.value = e.value;
    r.seq = e.last.seq;
    r.writer = e.last.proc;
    r.flags = kFlagWrite | kFlagHasWriter | kFlagHasBaseline;
    if (e.delta_touched) r.flags |= kFlagCounterBase;
    if (elastic_) {
      r.flags |= kFlagHasEpoch;
      r.epoch = e.epoch;
    }
    r.baseline = e.applied_writes;
    r.vc = e.vc.empty() ? VectorClock(cfg_.num_procs) : e.vc;
    recs.push_back(std::move(r));
  }
  net::Message resp = encode_batch(recs, cfg_.num_procs, /*omit_timestamps=*/false);
  resp.kind = kFetchBulkResp;
  resp.src = self_;
  resp.dst = f.requester;
  resp.b = token;
  fabric_.send(std::move(resp));
}

void Node::on_fetch_bulk_resp(const net::Message& m) {
  std::vector<BatchRecord> recs =
      decode_batch(m, cfg_.num_procs, /*omit_timestamps=*/false);
  {
    std::scoped_lock lk(mu_);
    const auto it = fills_.find(m.b);
    if (it == fills_.end() || it->second.done) return;  // duplicate after a re-issue
    for (const BatchRecord& r : recs) {
      const VarId x = r.var;
      if (r.writer != kNoProc) {
        if (r.flags & kFlagCounterBase) {
          // Counter baseline: an absolute value with no local applications
          // to double-count against — install verbatim.  delta_touched pins
          // the replica, so it is never evicted and refetched (a refetch
          // would double-count the deltas applied since).
          mem_.install(x, r.value, WriteId{r.writer, r.seq}, r.vc,
                       /*delta_touched=*/true, r.epoch);
          mem_.set_applied_writes(x, r.baseline);
        } else {
          // LWW arbitration against whatever this replica already holds (a
          // local write can race the fill): either apply order converges on
          // the same winner (store.cpp).
          mem_.apply(x, r.value, kFlagWrite, WriteId{r.writer, r.seq}, r.vc, 0,
                     /*force=*/false, /*weight=*/0, r.epoch);
          mem_.set_applied_writes(
              x, std::max(mem_.entry(x).applied_writes, r.baseline));
        }
      }
      // Replay updates that raced the fill (on_batch held them): the
      // snapshot clock decides, per writer, which of them the home had
      // already folded into the snapshot and which are genuinely newer.
      if (const auto held = fill_backlog_.find(x); held != fill_backlog_.end()) {
        for (const BatchRecord& q : held->second) {
          if (q.vc[q.writer] <= r.vc[q.writer]) continue;  // in the snapshot
          mem_.apply(x, q.value, q.flags, WriteId{q.writer, q.seq}, q.vc, 0,
                     /*force=*/false, q.weight, q.epoch);
        }
        fill_backlog_.erase(held);
      }
      cached_[x] = true;
      fill_inflight_[x] = false;
      sharer_mask_[x] |= std::uint64_t{1} << self_;
      last_use_[x] = ++use_tick_;
      stats_.dir_fill_records.add();
      if (profiler_ != nullptr) profiler_->record_fill_record(x);
    }
    // The faulting variable (first in the frame) must survive the budget
    // sweep below: give it the freshest tick.
    last_use_[it->second.vars.front()] = ++use_tick_;
    it->second.done = true;
    enforce_budget_locked();
  }
  cv_.notify_all();
}

void Node::enforce_budget_locked() {
  if (!dir_mode_ || cfg_.directory->replica_budget == 0) return;
  const std::size_t budget = cfg_.directory->replica_budget;
  std::vector<std::vector<VarId>> dropped(cfg_.num_procs);
  bool any = false;
  for (;;) {
    std::size_t unpinned = 0;
    bool found = false;
    VarId victim = 0;
    for (VarId x = 0; x < cfg_.num_vars; ++x) {
      if (!dir_managed(x) || !cached_[x] || replica_pinned(x)) continue;
      ++unpinned;
      if (!found || last_use_[x] < last_use_[victim]) {
        victim = x;
        found = true;
      }
    }
    // Best effort: pinned replicas (homed variables, counters, in-flight
    // fills) stay resident even over budget.
    if (unpinned <= budget || !found) break;
    mem_.evict(victim);
    cached_[victim] = false;
    sharer_mask_[victim] &= ~(std::uint64_t{1} << self_);
    stats_.dir_evictions.add();
    if (profiler_ != nullptr) profiler_->record_eviction(victim);
    dropped[effective_home(victim)].push_back(victim);
    any = true;
  }
  if (!any) return;
  // Deregister with each home.  No drain fence is needed: a write already
  // in flight to us lands counted-but-unapplied (the replica is gone), and
  // a later refill's ack fence folds it into the snapshot baseline.
  for (ProcId h = 0; h < cfg_.num_procs; ++h) {
    if (dropped[h].empty()) continue;
    net::Message unreg;
    unreg.src = self_;
    unreg.dst = h;
    unreg.kind = kDirUnregister;
    unreg.a = dropped[h].size();
    unreg.payload.assign(dropped[h].begin(), dropped[h].end());
    fabric_.send(std::move(unreg));
  }
}

void Node::on_dir_unregister(const net::Message& m) {
  const auto evictor = static_cast<ProcId>(m.src);
  std::scoped_lock lk(mu_);
  MC_CHECK(m.payload.size() >= m.a);
  std::vector<VarId> vars;
  for (std::uint64_t k = 0; k < m.a; ++k) {
    const auto x = static_cast<VarId>(m.payload[k]);
    // Re-homed since the evictor sent this: the stale bit errs in the
    // harmless direction (extra update traffic, never a missed update).
    if (effective_home(x) != self_) continue;
    if ((sharer_mask_[x] >> evictor & 1) != 0) {
      sharer_mask_[x] &= ~(std::uint64_t{1} << evictor);
      stats_.dir_sharer_dels.add();
      if (profiler_ != nullptr) profiler_->record_sharer_del(x);
      vars.push_back(x);
    }
  }
  if (vars.empty()) return;
  net::Message del;
  del.src = self_;
  del.kind = kDirSharerDel;
  del.a = vars.size();
  del.c = evictor;
  del.payload.assign(vars.begin(), vars.end());
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    if (p == self_ || p == evictor) continue;
    if (elastic_ && !view_.is_alive(p)) continue;
    net::Message copy = del;
    copy.dst = p;
    fabric_.send(std::move(copy));
  }
}

void Node::on_dir_sharer_del(const net::Message& m) {
  std::scoped_lock lk(mu_);
  MC_CHECK(m.payload.size() >= m.a);
  for (std::uint64_t k = 0; k < m.a; ++k) {
    sharer_mask_[static_cast<VarId>(m.payload[k])] &=
        ~(std::uint64_t{1} << m.c);
  }
}

void Node::on_dir_sharer_sync(const net::Message& m) {
  std::scoped_lock lk(mu_);
  MC_CHECK(m.payload.size() >= 2 * m.a);
  // Authoritative rows for the sender's homed variables.  Row changes flow
  // only from a variable's home, on the same FIFO channel as this sync, so
  // later kDirSharerAdd/Del multicasts cannot be clobbered by it.
  for (std::uint64_t k = 0; k < m.a; ++k) {
    sharer_mask_[static_cast<VarId>(m.payload[2 * k])] = m.payload[2 * k + 1];
  }
  dir_sync_from_ |= std::uint64_t{1} << static_cast<ProcId>(m.src);
  cv_.notify_all();
}

void Node::ping_lagging_locked(const VectorClock& floor, VectorClock& pinged) {
  for (ProcId s = 0; s < cfg_.num_procs; ++s) {
    if (s == self_ || (elastic_ && !view_.is_alive(s))) continue;
    if (resolved_[s] >= floor[s] || pinged[s] >= floor[s]) continue;
    pinged.set(s, floor[s]);
    stats_.dir_frontier_pings.add();
    net::Message probe;
    probe.src = self_;
    probe.dst = s;
    probe.kind = kFrontierReq;
    fabric_.send(std::move(probe));
  }
}

// ----------------------------------------------------------------------
// Consistency bookkeeping
// ----------------------------------------------------------------------

void Node::absorb_entry(const VarEntry& e) {
  if (!e.vc.empty()) {
    dep_vc_.merge(e.vc);
    causal_floor_.merge(e.vc);
    if (e.last.proc != kNoProc && e.last.proc < cfg_.num_procs) {
      pram_floor_.raise(e.last.proc, e.vc[e.last.proc]);
    }
    return;
  }
  if (e.last.valid() && e.last.proc < cfg_.num_procs && e.last.proc != self_) {
    // Count-vector mode: future reads must keep seeing this sender's
    // prefix up to the observed receive index.
    count_floor_.raise(e.last.proc, e.arrival);
  }
  // Otherwise: location never written (or written locally); nothing to do.
}

void Node::absorb_all(const VectorClock& vc) {
  dep_vc_.merge(vc);
  causal_floor_.merge(vc);
  pram_floor_.merge(vc);
}

VectorClock Node::snapshot_dep_vc() {
  std::scoped_lock lk(mu_);
  return dep_vc_;
}

void Node::broadcast_update(VarId x, Value value, std::uint64_t flags, SeqNo seq,
                            const VectorClock& stamp, std::uint64_t epoch) {
  if (cfg_.batching.has_value()) {
    // Batched propagation: stage per destination; thresholds or the
    // flusher (or the next synchronization action) ship the batches.
    const auto subs = cfg_.update_subscribers.find(x);
    if (dir_managed(x)) {
      // Directory multicast: registered sharers plus the home, nobody else.
      std::uint64_t dests =
          sharer_mask_[x] | (std::uint64_t{1} << effective_home(x));
      dests &= ~(std::uint64_t{1} << self_);
      if (elastic_) dests &= view_.alive_mask;
      for (ProcId p = 0; p < cfg_.num_procs; ++p) {
        if ((dests >> p & 1) != 0) stage_update(p, x, value, flags, seq, stamp, epoch);
      }
    } else if (subs != cfg_.update_subscribers.end()) {
      for (const ProcId p : subs->second) {
        if (p != self_) stage_update(p, x, value, flags, seq, stamp, epoch);
      }
    } else {
      for (ProcId p = 0; p < cfg_.num_procs; ++p) {
        if (p == self_ || (elastic_ && !view_.is_alive(p))) continue;
        stage_update(p, x, value, flags, seq, stamp, epoch);
      }
    }
    for (ProcId p = 0; p < cfg_.num_procs; ++p) {
      if (staged_[p].size() >= cfg_.batching->max_updates ||
          approx_batch_bytes(staged_[p].size()) >= cfg_.batching->max_bytes) {
        flush_staged_locked();
        break;
      }
    }
    return;
  }
  net::Message m;
  m.src = self_;
  m.kind = kUpdate;
  m.a = x;
  m.b = value;
  m.c = seq;
  m.d = flags;
  if (!cfg_.omit_timestamps) {
    m.payload.assign(stamp.components().begin(), stamp.components().end());
    // Elastic updates append the writer's view epoch (wire.h) so the
    // receiver's LWW arbitration can prefer new-view writes (store.cpp).
    if (elastic_) m.payload.push_back(epoch);
  }
  const auto subs = cfg_.update_subscribers.find(x);
  if (subs != cfg_.update_subscribers.end()) {
    for (const ProcId p : subs->second) {
      if (p == self_) continue;
      net::Message copy = m;
      copy.dst = p;
      fabric_.send(std::move(copy));
      sent_to_.set(p, sent_to_[p] + 1);
      if (profiler_ != nullptr) {
        profiler_->record_update_bytes(
            x, net::Message::kHeaderBytes + m.payload.size() * sizeof(std::uint64_t));
      }
    }
    return;
  }
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    // Elastic: non-members get nothing — the departed are gone, and a
    // not-yet-admitted joiner gets its baseline via kViewHello instead.
    if (p == self_ || (elastic_ && !view_.is_alive(p))) continue;
    net::Message copy = m;
    copy.dst = p;
    fabric_.send(std::move(copy));
    sent_to_.set(p, sent_to_[p] + 1);
    if (profiler_ != nullptr) {
      profiler_->record_update_bytes(
          x, net::Message::kHeaderBytes + m.payload.size() * sizeof(std::uint64_t));
    }
  }
}

// ----------------------------------------------------------------------
// Batched propagation (Config::batching; DESIGN.md §6.3)
// ----------------------------------------------------------------------

std::size_t Node::approx_batch_bytes(std::size_t records) const {
  // Estimate of encode_batch's output: header + base clock + ~5 words per
  // record in VC mode (var/flags/weight, value, seq, delta mask, ~1 clock
  // delta), 3 words in count mode.  The max_bytes threshold is a staging
  // heuristic, not an exact wire budget.
  const std::size_t per_record = cfg_.omit_timestamps ? 3 : 5;
  const std::size_t base = cfg_.omit_timestamps ? 0 : cfg_.num_procs;
  return net::Message::kHeaderBytes + (base + per_record * records) * sizeof(std::uint64_t);
}

void Node::stage_update(ProcId dest, VarId x, Value value, std::uint64_t flags, SeqNo seq,
                        const VectorClock& stamp, std::uint64_t epoch, ProcId writer) {
  // Count the staged original immediately: the record WILL travel (every
  // synchronization action flushes first), and Section 6's count
  // synchronization compares this against the receiver's weighted index.
  sent_to_.set(dest, sent_to_[dest] + 1);
  if (profiler_ != nullptr) {
    // Approximate per-destination wire cost of this record, the same
    // heuristic as approx_batch_bytes (coalescing may shrink it later).
    profiler_->record_update_bytes(
        x, (cfg_.omit_timestamps ? 3 : 5) * sizeof(std::uint64_t));
  }
  // Elastic batches carry the write's view epoch on the wire (the LWW
  // tiebreak in store.cpp is epoch-first); re-homing offers additionally
  // carry the original writer's id.
  if (elastic_ && epoch != 0 && !cfg_.omit_timestamps) flags |= kFlagHasEpoch;
  if (writer != kNoProc) flags |= kFlagHasWriter;
  auto& buf = staged_[dest];
  if (cfg_.batching->coalesce) {
    // Coalesce with the *latest* staged record for this variable only —
    // merging past an intervening record of the other kind would reorder
    // this process's per-variable update sequence.  Option bits must match
    // too: records differing in epoch or writer never merge.
    for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
      if (it->var != x) continue;
      if (it->flags != flags || it->epoch != epoch || it->writer != writer) break;
      switch (flags & kFlagOpMask) {
        case kFlagWrite:
          it->value = value;  // last writer wins
          break;
        case kFlagIntDelta:
          it->value = value_of(int_of(it->value) + int_of(value));
          break;
        case kFlagDoubleDelta:
          it->value = value_of(double_of(it->value) + double_of(value));
          break;
        default:
          MC_CHECK_MSG(false, "unknown update flags");
      }
      it->seq = seq;
      if (!cfg_.omit_timestamps) it->vc = stamp;
      ++it->weight;
      stats_.batch_coalesced.add();
      return;
    }
  }
  BatchRecord r;
  r.var = x;
  r.value = value;
  r.flags = flags;
  r.seq = seq;
  r.epoch = epoch;
  r.writer = writer;
  if (!cfg_.omit_timestamps) r.vc = stamp;
  buf.push_back(std::move(r));
  if (staged_total_++ == 0) {
    oldest_staged_ = std::chrono::steady_clock::now();
    flush_cv_.notify_one();
  }
}

void Node::flush_staged_locked() {
  if (staged_total_ == 0) return;
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    auto& buf = staged_[p];
    if (buf.empty()) continue;
    net::Message m = encode_batch(buf, cfg_.num_procs, cfg_.omit_timestamps);
    m.src = self_;
    m.dst = p;
    // Directory mode: stamp the resolved frontier (wire.h kBatch).
    if (dir_mode_) m.b = write_counter_;
    stats_.batch_msgs.add();
    stats_.batch_updates.add(buf.size());
    stats_.batch_updates_per_msg.record_ns(buf.size());
    fabric_.send(std::move(m));
    buf.clear();
  }
  staged_total_ = 0;
}

void Node::run_flusher() {
  std::unique_lock lk(mu_);
  for (;;) {
    flush_cv_.wait(lk, [&] { return flusher_stop_ || staged_total_ > 0; });
    if (flusher_stop_) return;
    const auto deadline = oldest_staged_ + cfg_.batching->max_delay;
    if (flush_cv_.wait_until(lk, deadline, [&] { return flusher_stop_; })) return;
    // A mandatory flush may have raced us and new records may have been
    // staged since; only ship once something has genuinely aged out.
    if (staged_total_ > 0 &&
        std::chrono::steady_clock::now() >= oldest_staged_ + cfg_.batching->max_delay) {
      flush_staged_locked();
    }
  }
}

// ----------------------------------------------------------------------
// Memory operations
// ----------------------------------------------------------------------

void Node::emit_op(history::Operation& op) {
  if (elastic_) op.view_epoch = view_.epoch;
  if (obs::trace_enabled()) {
    // Correlation id: the same value appears on this trace instant and on
    // the operation handed to the monitor, so a live counterexample (DOT)
    // can name the exact trace events on the cycle (docs/TRACING.md).
    op.trace_id = obs::next_flow_id();
    obs::trace_instant("op", "monitor", {"id", op.trace_id}, {"proc", self_});
  }
  trace_.record(op);
  if (auto* sink = op_sink_.load(std::memory_order_acquire)) sink->on_op(op);
}

Value Node::read(VarId x, ReadMode mode) {
  MC_CHECK_MSG(!(cfg_.omit_timestamps && mode == ReadMode::kCausal),
               "causal reads require vector timestamps (Config::omit_timestamps)");
  Stopwatch blocked;
  std::unique_lock lk(mu_);
  (mode == ReadMode::kPram ? stats_.reads_pram : stats_.reads_causal).add();
  if (profiler_ != nullptr) profiler_->record_read(x);

  const bool count_mode = cfg_.omit_timestamps;
  const VectorClock& applied = count_mode ? received_from_ : applied_;
  const VectorClock& floor = count_mode ? count_floor_
                             : mode == ReadMode::kPram ? pram_floor_ : causal_floor_;
  // Directory mode blocks on two gates: the count floor against the
  // weighted receive index (everything peers addressed to us has landed)
  // and the read-label floor against the resolved frontier — applied_ alone
  // cannot witness writes that travel to other sharers only; the fill ack
  // fence covers those once resolved_ catches up (see node.h).
  VectorClock pinged;
  if (dir_mode_) pinged = VectorClock(cfg_.num_procs);
  auto gate = [&] {
    if (!dir_mode_) return floors_met(applied, floor);
    if (!floors_met(received_from_, count_floor_)) return false;
    if (floors_met(resolved_, floor)) return true;
    // A lagging component may never send to us again; probe it (once per
    // floor level) so its flushed frontier unblocks the wait.
    ping_lagging_locked(floor, pinged);
    return false;
  };
  const bool was_ready = gate();
  if (!was_ready) {
    wait_or_die(lk, "read blocked past the liveness deadline", gate);
    const auto waited = blocked.elapsed();
    stats_.read_blocked.record(waited);
    obs::trace_complete_ns("read.block", "dsm",
                           static_cast<std::uint64_t>(waited.count()), {"var", x},
                           {"proc", self_});
  }

  // Demand-driven miss: the lock grant invalidated this variable.
  if (auto it = invalid_.find(x); it != invalid_.end()) {
    const net::Endpoint owner = it->second;
    invalid_.erase(it);
    fetch_var(lk, x, owner);
  }

  // Directory miss: demand-page the replica in (loop: a concurrent fill's
  // budget sweep can evict it again before this thread wakes).
  if (dir_managed(x)) {
    while (!cached_[x]) request_fill(lk, x);
    last_use_[x] = ++use_tick_;
  }

  const VarEntry& e = mem_.entry(x);
  const Value out = e.value;
  absorb_entry(e);
  (mode == ReadMode::kPram ? stats_.read_pram_ns : stats_.read_causal_ns)
      .record(blocked.elapsed());

  if (staleness_ != nullptr) {
    // How far the returned value trails the freshest write known anywhere:
    // issued-write count minus the writes this entry has absorbed, and the
    // vector-clock shortfall against the freshest stamp (dsm/staleness.h).
    const std::uint64_t issued = staleness_->issued(x);
    const std::uint64_t lag =
        issued > e.applied_writes ? issued - e.applied_writes : 0;
    (mode == ReadMode::kPram ? stats_.staleness_versions_pram
                             : stats_.staleness_versions_causal)
        .record_ns(lag);
    if (!cfg_.omit_timestamps) {
      (mode == ReadMode::kPram ? stats_.staleness_vc_pram : stats_.staleness_vc_causal)
          .record_ns(staleness_->vc_distance(x, e.vc));
    }
  }

  if (observing_ops()) {
    history::Operation op;
    op.kind = history::OpKind::kRead;
    op.proc = self_;
    op.var = x;
    op.value = out;
    op.mode = mode;
    op.write_id = e.last;
    emit_op(op);
  }
  return out;
}

void Node::write(VarId x, Value v) {
  stats_.writes.add();
  if (profiler_ != nullptr) profiler_->record_write(x);
  {
    std::scoped_lock lk(mu_);
    const SeqNo seq = ++write_counter_;
    const WriteId id{self_, seq};

    history::Operation op;
    op.kind = history::OpKind::kWrite;
    op.proc = self_;
    op.var = x;
    op.value = v;
    op.write_id = id;

    const std::uint64_t ep = elastic_ ? view_.epoch : 0;
    HeldLock* held = nullptr;
    if (demand_local_write(x, &held)) {
      held->cs_writes.push_back(x);
      // Local migratory write: no broadcast, no clock tick (remote causal
      // delivery must not wait for an update that will never arrive).
      // `force` because the untick'd clock can tie the installed entry's —
      // the write lock orders these writes, so forcing is safe.
      mem_.apply(x, v, kFlagWrite, id, dep_vc_, 0, /*force=*/true, 1, ep);
      if (staleness_ != nullptr) staleness_->on_write(x, dep_vc_);
      if (observing_ops()) emit_op(op);
    } else {
      dep_vc_.tick(self_);
      applied_.set(self_, dep_vc_[self_]);
      if (dir_mode_) {
        // Own writes are self-resolved by definition.  No write-allocate:
        // writing an uncached variable applies locally and ships to the
        // sharers and home; a later fill LWW-arbitrates against our copy.
        resolved_.set(self_, dep_vc_[self_]);
        if (cached_[x] && dir_managed(x)) last_use_[x] = ++use_tick_;
      }
      mem_.apply(x, v, kFlagWrite, id, dep_vc_, 0, /*force=*/false, 1, ep);
      if (staleness_ != nullptr) {
        staleness_->on_write(x, cfg_.omit_timestamps ? VectorClock{} : dep_vc_);
      }
      // Sink before broadcast (obs/op_sink.h): no peer can observe this
      // write before the live monitor has it.
      if (observing_ops()) emit_op(op);
      // Broadcast while holding the node lock: the model permits
      // multi-threaded user processes, and per-sender FIFO requires this
      // process's updates to enter the fabric in sequence order.
      broadcast_update(x, v, kFlagWrite, seq, dep_vc_, ep);
    }
  }
  cv_.notify_all();
}

void Node::do_delta(VarId x, Value amount, std::uint64_t flags) {
  stats_.deltas.add();
  if (profiler_ != nullptr) profiler_->record_write(x);
  {
    std::unique_lock lk(mu_);
    // Directory mode write-allocates DELTAS (unlike plain writes): a delta
    // applied to an uncached entry would be lost when a later fill installs
    // the home's absolute value over it.  Fill first; the installed entry
    // is delta_touched afterwards (counter pin), so it is never evicted and
    // the race cannot recur.
    if (dir_managed(x)) {
      while (!cached_[x]) request_fill(lk, x);
      last_use_[x] = ++use_tick_;
    }
    const SeqNo seq = ++write_counter_;
    const WriteId id{self_, seq};
    dep_vc_.tick(self_);
    applied_.set(self_, dep_vc_[self_]);
    if (dir_mode_) resolved_.set(self_, dep_vc_[self_]);
    mem_.apply(x, amount, flags, id, dep_vc_);
    if (staleness_ != nullptr) {
      staleness_->on_write(x, cfg_.omit_timestamps ? VectorClock{} : dep_vc_);
    }
    // Sink before broadcast (obs/op_sink.h), as in write().
    if (observing_ops()) {
      history::Operation op;
      op.kind = history::OpKind::kDelta;
      op.proc = self_;
      op.var = x;
      op.value = amount;
      op.fp = flags == kFlagDoubleDelta;
      op.write_id = id;
      emit_op(op);
    }
    broadcast_update(x, amount, flags, seq, dep_vc_);
  }
  cv_.notify_all();
}

void Node::dec_int(VarId x, std::int64_t amount) { do_delta(x, value_of(amount), kFlagIntDelta); }

void Node::dec_double(VarId x, double amount) { do_delta(x, value_of(amount), kFlagDoubleDelta); }

bool Node::demand_local_write(VarId x, HeldLock** held_out) {
  auto assoc = cfg_.demand_association.find(x);
  if (assoc == cfg_.demand_association.end()) return false;
  if (cfg_.policy_of(assoc->second) != LockPolicy::kDemand) return false;
  auto held = held_.find(assoc->second);
  if (held == held_.end() || held->second.kind != LockRequestKind::kWrite) return false;
  *held_out = &held->second;
  return true;
}

// ----------------------------------------------------------------------
// Synchronization operations
// ----------------------------------------------------------------------

void Node::await(VarId x, Value v, ReadMode mode) {
  MC_CHECK_MSG(!(cfg_.omit_timestamps && mode == ReadMode::kCausal),
               "causal awaits require vector timestamps (Config::omit_timestamps)");
  stats_.awaits.add();
  Stopwatch blocked;
  std::unique_lock lk(mu_);
  // Mandatory flush (batching): our own staged writes must be on the wire
  // before we block — the peer whose write resolves this await may itself
  // be awaiting one of our staged values (liveness), and the |-> await
  // edge's visibility obligations assume our prior writes travel first.
  if (cfg_.batching.has_value()) flush_staged_locked();
  // Directory miss: register as a sharer first, so the write that resolves
  // this await is multicast to us at all.
  if (dir_managed(x)) {
    while (!cached_[x]) request_fill(lk, x);
    last_use_[x] = ++use_tick_;
  }
  // Busy-wait loop of reads in the selected view (Section 6), realized as a
  // condition wait re-evaluated on every applied update.
  const bool count_mode = cfg_.omit_timestamps;
  const VectorClock& applied = count_mode ? received_from_ : applied_;
  const VectorClock& floor = count_mode ? count_floor_
                             : mode == ReadMode::kPram ? pram_floor_ : causal_floor_;
  VectorClock pinged;
  if (dir_mode_) pinged = VectorClock(cfg_.num_procs);
  auto gate = [&] {
    if (!dir_mode_) return floors_met(applied, floor);
    if (!floors_met(received_from_, count_floor_)) return false;
    if (floors_met(resolved_, floor)) return true;
    ping_lagging_locked(floor, pinged);  // see read()
    return false;
  };
  wait_or_die(lk, "await blocked past the liveness deadline",
              [&] { return gate() && mem_.entry(x).value == v; });
  const auto waited = blocked.elapsed();
  stats_.await_blocked.record(waited);
  stats_.await_spin_ns.record(waited);
  obs::trace_complete_ns("await", "dsm", static_cast<std::uint64_t>(waited.count()),
                         {"var", x}, {"proc", self_});

  const VarEntry& e = mem_.entry(x);
  absorb_entry(e);

  if (observing_ops()) {
    history::Operation op;
    op.kind = history::OpKind::kAwait;
    op.proc = self_;
    op.var = x;
    op.value = v;
    op.write_id = e.last;
    emit_op(op);
  }
}

void Node::barrier(BarrierId b) {
  stats_.barriers.add();
  Stopwatch blocked;
  std::uint64_t epoch = 0;
  {
    std::scoped_lock lk(mu_);
    epoch = barrier_epoch_[b]++;
  }
  net::Message arrive;
  arrive.src = self_;
  arrive.dst = barrier_mgr_;
  arrive.kind = kBarrierArrive;
  arrive.a = b;
  arrive.b = epoch;
  {
    std::scoped_lock lk(mu_);
    // Mandatory flush (batching): the snapshot below promises peers that
    // every update it counts is on the wire; staged records would make the
    // promise a lie and Theorem 1's barrier condition unsound.
    if (cfg_.batching.has_value()) flush_staged_locked();
    // Count mode ships the paper's per-receiver sent-update counts; the
    // manager transposes them.  VC mode ships the dependency clock.
    // Directory mode ships both: counts gate reception, the merged clock
    // keeps later-phase writes dominant in the LWW order (see barrier
    // resume below).
    if (dir_mode_) {
      arrive.payload.assign(sent_to_.components().begin(), sent_to_.components().end());
      arrive.payload.insert(arrive.payload.end(), dep_vc_.components().begin(),
                            dep_vc_.components().end());
    } else {
      const VectorClock& snapshot = cfg_.omit_timestamps ? sent_to_ : dep_vc_;
      arrive.payload.assign(snapshot.components().begin(), snapshot.components().end());
    }
  }
  fabric_.send(std::move(arrive));
  // The traced span covers only the post-arrival wait: the arrival send must
  // precede it so its flow leaves the span (keeps the critical-path DAG
  // acyclic, src/obs/critical_path.cpp).
  const std::uint64_t trace_t0 = obs::trace_enabled() ? obs::Tracer::now_ns() : 0;

  std::unique_lock lk(mu_);
  const auto key = std::make_pair(b, epoch);
  wait_or_die(lk, "barrier blocked past the liveness deadline",
              [&] { return barrier_release_.count(key) > 0; });
  const auto waited = blocked.elapsed();
  stats_.barrier_blocked.record(waited);
  stats_.barrier_wait_ns.record(waited);
  if (trace_t0 != 0 && obs::trace_enabled()) {
    // Bind the release message's arrow to this wait, then close the span.
    obs::trace_flow_end("msg", "net", barrier_release_.at(key).trace_id);
    obs::trace_complete_ns("barrier.wait", "dsm", obs::Tracer::now_ns() - trace_t0,
                           {"barrier", b}, {"proc", self_});
  }

  if (dir_mode_) {
    // Directory mode: raise the count floor (all pre-barrier updates
    // addressed to us must land) and merge the clock into the dependency
    // clock ONLY — not the read floors.  Raising pram/causal floors here
    // would demand the resolved frontier of every peer on every
    // post-barrier read (a ping storm); reception counts plus the fill ack
    // fence already give barrier-ordered visibility, and the dep_vc merge
    // keeps later-phase writes dominant in the LWW order (bitwise identity
    // with full replication for race-free phased programs).
    count_floor_.merge(barrier_release_.at(key).counts);
    dep_vc_.merge(barrier_release_.at(key).vc);
  } else if (cfg_.omit_timestamps) {
    count_floor_.merge(barrier_release_.at(key).vc);
  } else {
    absorb_all(barrier_release_.at(key).vc);
  }
  barrier_release_.erase(key);

  if (observing_ops()) {
    history::Operation op;
    op.kind = history::OpKind::kBarrier;
    op.proc = self_;
    op.barrier = b;
    op.barrier_epoch = static_cast<std::uint32_t>(epoch);
    emit_op(op);
  }
}

void Node::do_lock(LockId l, LockRequestKind kind) {
  stats_.locks.add();
  Stopwatch blocked;
  {
    std::scoped_lock lk(mu_);
    MC_CHECK_MSG(held_.find(l) == held_.end(), "locks are not re-entrant");
  }
  net::Message req;
  req.src = self_;
  req.dst = lock_mgr_;
  req.kind = kLockReq;
  req.a = l;
  req.b = static_cast<std::uint64_t>(kind);
  fabric_.send(std::move(req));
  // Traced span covers only the post-request wait (see barrier()).
  const std::uint64_t trace_t0 = obs::trace_enabled() ? obs::Tracer::now_ns() : 0;

  std::unique_lock lk(mu_);
  wait_or_die(lk, "lock acquisition blocked past the liveness deadline",
              [&] { return pending_grants_.count(l) > 0; });
  const auto waited = blocked.elapsed();
  stats_.lock_blocked.record(waited);
  stats_.lock_acquire_ns.record(waited);
  if (profiler_ != nullptr) {
    profiler_->record_lock_acquire(l, static_cast<std::uint64_t>(waited.count()));
  }

  GrantInfo info = std::move(pending_grants_.at(l));
  pending_grants_.erase(l);
  if (trace_t0 != 0 && obs::trace_enabled()) {
    // Bind the grant message's arrow to this wait, then close the span.
    obs::trace_flow_end("msg", "net", info.trace_id);
    obs::trace_complete_ns("lock.acquire", "dsm", obs::Tracer::now_ns() - trace_t0,
                           {"lock", l}, {"proc", self_});
  }

  // |-> lock obligations: the previous episode's context becomes visible.
  if (dir_mode_) {
    // Directory mode: counts gate reception, the release clock merges into
    // the dependency clock only — same reasoning as the barrier resume.
    count_floor_.merge(info.counts);
    dep_vc_.merge(info.release_vc);
  } else if (cfg_.omit_timestamps) {
    // Count mode: the grant carries, per sender, how many updates that
    // sender had shipped to *us* when it last unlocked (Section 6's lazy
    // implementation: "waits for the required number of messages").
    count_floor_.merge(info.release_vc);
  } else {
    dep_vc_.merge(info.release_vc);
    causal_floor_.merge(info.release_vc);
    for (ProcId p = 0; p < cfg_.num_procs; ++p) {
      if (info.prev_holders_mask & (std::uint64_t{1} << p)) {
        pram_floor_.raise(p, info.release_vc[p]);
      }
    }
  }
  for (const auto& [var, owner] : info.invalid) {
    if (owner != self_) invalid_[var] = owner;
  }

  HeldLock held{kind, info.episode, {}};
  if (profiler_ != nullptr) held.acquired = std::chrono::steady_clock::now();
  held_[l] = std::move(held);

  if (observing_ops()) {
    history::Operation op;
    op.kind = kind == LockRequestKind::kWrite ? history::OpKind::kWriteLock
                                              : history::OpKind::kReadLock;
    op.proc = self_;
    op.lock = l;
    op.lock_episode = info.episode;
    emit_op(op);
  }
}

void Node::do_unlock(LockId l, LockRequestKind kind) {
  Stopwatch blocked;
  const LockPolicy policy = cfg_.policy_of(l);

  std::uint64_t episode = 0;
  std::vector<VarId> digest;
  {
    std::scoped_lock lk(mu_);
    // Mandatory flush (batching): critical-section updates must precede the
    // eager flush probes (FIFO makes the probe's ack meaningful) and the
    // unlock's clock/count snapshot, for every propagation policy.
    if (cfg_.batching.has_value()) flush_staged_locked();
    auto it = held_.find(l);
    MC_CHECK_MSG(it != held_.end(), "unlock of a lock that is not held");
    MC_CHECK_MSG(it->second.kind == kind, "unlock kind does not match the held lock");
    episode = it->second.episode;
    if (policy == LockPolicy::kDemand) digest = it->second.cs_writes;
    if (profiler_ != nullptr &&
        it->second.acquired != std::chrono::steady_clock::time_point{}) {
      const auto held_for = std::chrono::steady_clock::now() - it->second.acquired;
      profiler_->record_lock_hold(l, static_cast<std::uint64_t>(held_for.count()));
    }
    held_.erase(it);
  }

  if (policy == LockPolicy::kEager && kind == LockRequestKind::kWrite &&
      cfg_.num_procs > 1) {
    // Flush probe: every peer acknowledges once our prior updates have been
    // applied; only then does the unlock reach the manager (Section 6's
    // eager implementation).
    std::uint64_t token = 0;
    std::uint64_t probed = 0;
    {
      std::scoped_lock lk(mu_);
      token = ++sync_token_counter_;
      for (ProcId p = 0; p < cfg_.num_procs; ++p) {
        if (p == self_ || (elastic_ && !view_.is_alive(p))) continue;
        probed |= std::uint64_t{1} << p;
      }
    }
    for (ProcId p = 0; p < cfg_.num_procs; ++p) {
      if ((probed & (std::uint64_t{1} << p)) == 0) continue;
      net::Message probe;
      probe.src = self_;
      probe.dst = p;
      probe.kind = kSyncReq;
      probe.a = token;
      fabric_.send(std::move(probe));
    }
    std::unique_lock lk(mu_);
    wait_or_die(lk, "eager unlock blocked past the liveness deadline", [&] {
      // Elastic: a probed peer evicted mid-wait will never ack; its
      // visibility obligation dies with it.
      if (!elastic_) return sync_acks_[token] == cfg_.num_procs - 1;
      return sync_acks_[token] + popcount64(probed & ~view_.alive_mask) >=
             popcount64(probed);
    });
    sync_acks_.erase(token);
    stats_.unlock_blocked.record(blocked.elapsed());
  }

  net::Message unlock;
  unlock.src = self_;
  unlock.dst = lock_mgr_;
  unlock.kind = kUnlock;
  unlock.a = l;
  unlock.b = static_cast<std::uint64_t>(kind);
  {
    std::scoped_lock lk(mu_);
    if (dir_mode_) {
      // Counts first, clock second (see kUnlock in wire.h).
      unlock.payload.assign(sent_to_.components().begin(), sent_to_.components().end());
      unlock.payload.insert(unlock.payload.end(), dep_vc_.components().begin(),
                            dep_vc_.components().end());
    } else {
      const VectorClock& snapshot = cfg_.omit_timestamps ? sent_to_ : dep_vc_;
      unlock.payload.assign(snapshot.components().begin(), snapshot.components().end());
    }
  }
  unlock.d = digest.size();
  for (const VarId x : digest) unlock.payload.push_back(x);

  // Sink before the kUnlock message leaves (obs/op_sink.h): the manager may
  // grant the next episode the instant it arrives, and that episode's lock
  // operations must reach the live monitor after this one.
  if (observing_ops()) {
    std::scoped_lock lk(mu_);
    history::Operation op;
    op.kind = kind == LockRequestKind::kWrite ? history::OpKind::kWriteUnlock
                                              : history::OpKind::kReadUnlock;
    op.proc = self_;
    op.lock = l;
    op.lock_episode = episode;
    emit_op(op);
  }
  fabric_.send(std::move(unlock));
}

void Node::rlock(LockId l) { do_lock(l, LockRequestKind::kRead); }
void Node::runlock(LockId l) { do_unlock(l, LockRequestKind::kRead); }
void Node::wlock(LockId l) { do_lock(l, LockRequestKind::kWrite); }
void Node::wunlock(LockId l) { do_unlock(l, LockRequestKind::kWrite); }

void Node::fetch_var(std::unique_lock<std::mutex>& lk, VarId x, net::Endpoint owner) {
  stats_.fetches.add();
  if (profiler_ != nullptr) profiler_->record_fetch(x);
  const std::uint64_t token = ++fetch_token_counter_;
  lk.unlock();
  net::Message req;
  req.src = self_;
  req.dst = owner;
  req.kind = kFetchReq;
  req.a = x;
  req.b = token;
  fabric_.send(std::move(req));
  lk.lock();
  // Traced span covers only the post-request wait (see barrier()).
  const std::uint64_t trace_t0 = obs::trace_enabled() ? obs::Tracer::now_ns() : 0;

  wait_or_die(lk, "demand fetch blocked past the liveness deadline",
              [&] { return fetch_results_.count(token) > 0; });
  FetchResult res = std::move(fetch_results_.at(token));
  fetch_results_.erase(token);
  if (trace_t0 != 0 && obs::trace_enabled()) {
    obs::trace_flow_end("msg", "net", res.trace_id);
    obs::trace_complete_ns("fetch.wait", "dsm", obs::Tracer::now_ns() - trace_t0,
                           {"var", x}, {"proc", self_});
  }

  mem_.install(x, res.value, res.id, res.vc);
  if (staleness_ != nullptr) {
    // The fetched copy is the owner's current entry: it has absorbed every
    // write issued so far (demand vars are write-lock serialized), so reset
    // the local version-lag baseline to the issue counter.
    mem_.set_applied_writes(x, staleness_->issued(x));
  }
}

// Explicit instantiation not needed: wait_or_die is only used in this TU.

}  // namespace mc::dsm
