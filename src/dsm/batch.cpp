#include "dsm/batch.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/check.h"
#include "dsm/wire.h"

namespace mc::dsm {

namespace {
constexpr std::uint64_t kVarBits = 32;
constexpr std::uint64_t kFlagBits = 8;
constexpr std::uint64_t kWeightBits = 64 - kVarBits - kFlagBits;
}  // namespace

net::Message encode_batch(const std::vector<BatchRecord>& recs, std::size_t num_procs,
                          bool omit_timestamps) {
  MC_CHECK(!recs.empty());
  net::Message m;
  m.kind = kBatch;
  m.a = recs.size();

  std::vector<std::uint64_t> base;
  if (!omit_timestamps) {
    MC_CHECK_MSG(num_procs <= 64, "batch clock-delta masks assume <= 64 processes");
    base.assign(num_procs, std::numeric_limits<std::uint64_t>::max());
    for (const BatchRecord& r : recs) {
      MC_CHECK(r.vc.size() == num_procs);
      for (ProcId p = 0; p < num_procs; ++p) base[p] = std::min(base[p], r.vc[p]);
    }
    m.payload.insert(m.payload.end(), base.begin(), base.end());
  }

  for (const BatchRecord& r : recs) {
    MC_CHECK(r.var < (std::uint64_t{1} << kVarBits));
    MC_CHECK(r.flags < (std::uint64_t{1} << kFlagBits));
    MC_CHECK(r.weight < (std::uint64_t{1} << kWeightBits));
    m.payload.push_back(r.var | (r.flags << kVarBits) |
                        (r.weight << (kVarBits + kFlagBits)));
    m.payload.push_back(r.value);
    m.payload.push_back(r.seq);
    if (r.flags & kFlagHasWriter) m.payload.push_back(r.writer);
    if (r.flags & kFlagHasEpoch) m.payload.push_back(r.epoch);
    if (r.flags & kFlagHasBaseline) m.payload.push_back(r.baseline);
    if (omit_timestamps) continue;
    std::uint64_t mask = 0;
    for (ProcId p = 0; p < num_procs; ++p) {
      if (r.vc[p] != base[p]) mask |= std::uint64_t{1} << p;
    }
    m.payload.push_back(mask);
    for (ProcId p = 0; p < num_procs; ++p) {
      if (mask & (std::uint64_t{1} << p)) m.payload.push_back(r.vc[p] - base[p]);
    }
  }
  return m;
}

std::vector<BatchRecord> decode_batch(const net::Message& m, std::size_t num_procs,
                                      bool omit_timestamps) {
  MC_CHECK(m.kind == kBatch || m.kind == kFetchBulkResp);
  const std::size_t n = m.a;
  MC_CHECK(n >= 1);
  std::vector<BatchRecord> recs;
  recs.reserve(n);
  std::size_t i = 0;
  VectorClock base;
  if (!omit_timestamps) {
    MC_CHECK(m.payload.size() >= num_procs);
    base = VectorClock(num_procs);
    for (ProcId p = 0; p < num_procs; ++p) base.set(p, m.payload[p]);
    i = num_procs;
  }
  for (std::size_t k = 0; k < n; ++k) {
    MC_CHECK(i + 3 <= m.payload.size());
    BatchRecord r;
    const std::uint64_t w0 = m.payload[i++];
    r.var = static_cast<VarId>(w0 & ((std::uint64_t{1} << kVarBits) - 1));
    r.flags = (w0 >> kVarBits) & ((std::uint64_t{1} << kFlagBits) - 1);
    r.weight = w0 >> (kVarBits + kFlagBits);
    r.value = m.payload[i++];
    r.seq = m.payload[i++];
    if (r.flags & kFlagHasWriter) {
      MC_CHECK(i < m.payload.size());
      r.writer = static_cast<ProcId>(m.payload[i++]);
    }
    if (r.flags & kFlagHasEpoch) {
      MC_CHECK(i < m.payload.size());
      r.epoch = m.payload[i++];
    }
    if (r.flags & kFlagHasBaseline) {
      MC_CHECK(i < m.payload.size());
      r.baseline = m.payload[i++];
    }
    if (!omit_timestamps) {
      MC_CHECK(i < m.payload.size());
      const std::uint64_t mask = m.payload[i++];
      MC_CHECK(i + static_cast<std::size_t>(std::popcount(mask)) <= m.payload.size());
      r.vc = base;
      for (ProcId p = 0; p < num_procs; ++p) {
        if (mask & (std::uint64_t{1} << p)) r.vc.set(p, base[p] + m.payload[i++]);
      }
    }
    recs.push_back(std::move(r));
  }
  MC_CHECK(i == m.payload.size());
  return recs;
}

}  // namespace mc::dsm
