// A mixed-consistency DSM process (the paper's p_i): the public memory and
// synchronization API of the model, backed by the Section 6 implementation.
//
// Architecture (see DESIGN.md):
//   - every write/delta is stamped with the process's vector clock and
//     broadcast over FIFO channels;
//   - two store views absorb the same update stream: the PRAM view applies
//     in per-sender FIFO arrival order, the causal view buffers until
//     causally ready;
//   - reads block on per-view *floors*: vector clocks raised by the
//     synchronization machinery (lock grants, barrier releases, await
//     resolutions) and by previously observed values, implementing the
//     |-> lock, |-> bar, |-> await orders and the reads-from obligations of
//     Definitions 2 and 3;
//   - the causal floor absorbs full vector clocks (transitive visibility);
//     the PRAM floor is raised only on the components of *direct*
//     predecessor processes, matching the transitive reduction in
//     Definition 3.
//
// One application thread drives the public API; one internal delivery
// thread applies incoming fabric traffic.  All shared node state is guarded
// by a single mutex (CP.20-style scoped locking throughout).

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "common/vector_clock.h"
#include "dsm/batch.h"
#include "dsm/config.h"
#include "dsm/store.h"
#include "dsm/trace.h"
#include "dsm/view.h"
#include "dsm/watchdog.h"
#include "dsm/wire.h"
#include "net/fabric.h"

namespace mc::obs {
class OpSink;
}

namespace mc::dsm {

/// Per-node instrumentation: operation counts and time spent blocked
/// waiting for consistency obligations (the machine-independent "latency"
/// the paper's Section 6 reasons about).
struct NodeStats {
  Counter reads_pram, reads_causal, writes, deltas, awaits, locks, barriers;
  Counter fetches;
  LatencyHistogram read_blocked, await_blocked, lock_blocked, barrier_blocked,
      unlock_blocked;
  /// Full end-to-end latency of each primitive (recorded on every call,
  /// blocked or not) — surfaced through MixedSystem::metrics() as the
  /// `read.pram_ns` / `read.causal_ns` / `await.spin_ns` / `lock.acquire_ns`
  /// / `barrier.wait_ns` summaries of docs/METRICS.md.
  LatencyHistogram read_pram_ns, read_causal_ns, await_spin_ns, lock_acquire_ns,
      barrier_wait_ns;
  /// Batched propagation (Config::batching; docs/METRICS.md `net.batch.*`):
  /// kBatch messages sent, update records they carried, and original
  /// updates absorbed into an already-staged record (LWW writes / summed
  /// deltas) instead of becoming records of their own.
  Counter batch_msgs, batch_updates, batch_coalesced;
  /// Records per flushed kBatch message — samples are counts, not
  /// nanoseconds (surfaced as the `net.batch.updates_per_msg` summary).
  LatencyHistogram batch_updates_per_msg;
  /// Read-staleness monitor (Config::track_staleness; dsm/staleness.h):
  /// per-read version lag and vector-clock distance behind the freshest
  /// write known anywhere, split by read mode — samples are counts/
  /// distances, not nanoseconds.
  LatencyHistogram staleness_versions_pram, staleness_versions_causal,
      staleness_vc_pram, staleness_vc_causal;
  /// Elastic membership (Config::elastic; docs/METRICS.md `view.*`):
  /// re-seed / snapshot records this node sent as a donor and applied as a
  /// receiver during view changes.
  Counter reseeds_out, reseeds_in;
  /// Directory-based partial replication (Config::directory;
  /// docs/METRICS.md `directory.*`): bulk fills requested, records they
  /// installed, replicas evicted under the budget, frontier probes sent
  /// from blocked reads, sharer registrations/deregistrations seen at this
  /// node's home role, and departed-sharer bits purged at view commits.
  Counter dir_fills, dir_fill_records, dir_evictions, dir_frontier_pings,
      dir_sharer_adds, dir_sharer_dels, dir_sharers_purged;
  /// Time a read/delta spent blocked on a demand-page fill.
  LatencyHistogram dir_fill_wait_ns;

  [[nodiscard]] std::uint64_t total_blocked_ns() const {
    return read_blocked.sum_ns() + await_blocked.sum_ns() + lock_blocked.sum_ns() +
           barrier_blocked.sum_ns() + unlock_blocked.sum_ns();
  }
};

class StalenessTable;

class Node {
 public:
  Node(const Config& cfg, ProcId self, net::Fabric& fabric, net::Endpoint lock_mgr,
       net::Endpoint barrier_mgr, StalenessTable* staleness = nullptr);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] ProcId id() const { return self_; }

  // ----- memory operations -----

  /// Read location x under the given label (Definition 4).
  Value read(VarId x, ReadMode mode);

  /// Write value v to location x.
  void write(VarId x, Value v);

  /// Commutative decrement of a counter object (Section 5.3).
  void dec_int(VarId x, std::int64_t amount);
  /// Commutative decrement of a floating-point accumulator (Section 5.3's
  /// counter-object Cholesky subtracts L_ij * L_kj from matrix entries).
  void dec_double(VarId x, double amount);

  // ----- synchronization operations -----

  /// Block until location x holds value v, establishing the |-> await edge
  /// from the resolving write.  Section 6 implements await as a busy-wait
  /// loop of PRAM reads (the default); passing ReadMode::kCausal busy-waits
  /// on the causal view instead — the natural strengthening the Section 5.3
  /// counter-object algorithm needs before causally reading accumulators
  /// whose concurrent deltas the single |-> await edge does not cover.
  void await(VarId x, Value v, ReadMode mode = ReadMode::kPram);

  /// Arrive at barrier object b and block until every process has arrived.
  void barrier(BarrierId b = 0);

  void rlock(LockId l);
  void runlock(LockId l);
  void wlock(LockId l);
  void wunlock(LockId l);

  // ----- elastic membership (Config::elastic; dsm/view.h) -----

  /// Enter the system live: request admission from the view manager and
  /// block until the admitting view has committed, the barrier-epoch sync
  /// has arrived, and the snapshot donor's state transfer has landed.  Must
  /// be called before any other operation by a process left out of
  /// Config::initial_members.
  void join();

  /// Leave gracefully: request exclusion and block until a view without
  /// this process commits.  No lock may be held; no operation may follow.
  void leave();

  /// The membership view this node has fenced to (elastic only).
  [[nodiscard]] View view() const;

  /// The instance of barrier `b` this process will arrive at next.  A
  /// joiner starts at the instance the view manager synced it to, not 0 —
  /// phased programs use this to align a joiner with the barrier structure
  /// already in flight (e.g. which half of a two-barrier sweep comes next).
  [[nodiscard]] std::uint64_t next_barrier_epoch(BarrierId b = 0) const;

  // ----- typed conveniences for the numeric applications -----

  [[nodiscard]] double read_double(VarId x, ReadMode mode) { return double_of(read(x, mode)); }
  void write_double(VarId x, double d) { write(x, value_of(d)); }
  [[nodiscard]] std::int64_t read_int(VarId x, ReadMode mode) { return int_of(read(x, mode)); }
  void write_int(VarId x, std::int64_t i) { write(x, value_of(i)); }
  void await_int(VarId x, std::int64_t i, ReadMode mode = ReadMode::kPram) {
    await(x, value_of(i), mode);
  }

  // ----- introspection -----

  [[nodiscard]] const NodeStats& stats() const { return stats_; }
  [[nodiscard]] const TraceRecorder& trace() const { return trace_; }

  /// Attach (or detach, with nullptr) a watchdog: blocked operations
  /// register themselves and unwind with StallError once it fires.  Set
  /// while no application thread is inside a node operation.
  void set_watchdog(Watchdog* wd) {
    watchdog_.store(wd, std::memory_order_release);
  }

  /// Attach (or detach, with nullptr) a live operation sink (obs/op_sink.h):
  /// every completed operation is handed over as it happens, independently
  /// of Config::record_trace.  Set while no application thread is inside a
  /// node operation.
  void set_op_sink(obs::OpSink* sink) {
    op_sink_.store(sink, std::memory_order_release);
  }

  /// Attach this node's contention profiler (owned by MixedSystem; nullptr
  /// unless Config::profile).  Set before any application thread starts —
  /// when null, every instrumentation site is a single branch.
  void set_profiler(obs::ContentionProfiler* p) { profiler_ = p; }

  /// Join the delivery thread; the fabric must have been shut down first.
  void stop();

 private:
  /// A unit of causal-buffer admission: one kUpdate (single record) or one
  /// kBatch (all of its records, applied atomically — partially applying a
  /// coalesced batch could expose a mid-batch state no per-write history
  /// serializes).  `vc` is the component-wise max of the record clocks and
  /// is what readiness and `applied_` advance on.
  struct PendingUpdate {
    std::vector<BatchRecord> recs;
    VectorClock vc;
    /// kBatch: coalescing legitimately skips sender sequence numbers.
    bool gap_ok = false;
  };

  struct HeldLock {
    LockRequestKind kind;
    std::uint64_t episode;
    std::vector<VarId> cs_writes;  // demand policy: write-set digest
    /// Grant time, recorded only when profiling (hold-time attribution).
    std::chrono::steady_clock::time_point acquired{};
  };

  struct GrantInfo {
    std::uint64_t episode;
    std::uint64_t prev_holders_mask;
    VectorClock release_vc;
    /// Directory mode: per-sender unlock sent-counts (the count-mode grant
    /// payload), shipped alongside the release clock.
    VectorClock counts;
    std::vector<std::pair<VarId, net::Endpoint>> invalid;
    /// Flow id of the kLockGrant message; the blocked application thread
    /// re-emits it so the grant arrow binds to the acquisition span.
    std::uint64_t trace_id = 0;
  };

  struct FetchResult {
    Value value;
    WriteId id;
    VectorClock vc;
    std::uint64_t trace_id = 0;  // kFetchResp flow id (see GrantInfo)
  };

  struct BarrierRelease {
    VectorClock vc;
    /// Directory mode: transposed per-sender sent-counts (see GrantInfo).
    VectorClock counts;
    std::uint64_t trace_id = 0;  // kBarrierRelease flow id (see GrantInfo)
  };

  /// Requester side of a directory fill (docs/DIRECTORY.md): the variables
  /// requested and whether the bulk frame has installed.  Kept until the
  /// blocked thread wakes so a view commit can re-issue the request to a
  /// re-homed variable's new home.
  struct PendingFill {
    std::vector<VarId> vars;
    bool done = false;
  };

  /// Home side of a directory fill: the snapshot is deferred until every
  /// third party has flushed its staging buffers and acknowledged the
  /// sharer registration (the ack fence that makes a freshly paged-in
  /// replica satisfy the requester's causal floor).
  struct ServingFill {
    ProcId requester = kNoProc;
    std::vector<VarId> vars;
    std::uint64_t need_acks = 0;  // procs whose kDirAck is still pending
  };

  // Delivery-thread handlers.
  void run_delivery();
  void on_update(const net::Message& m);
  void on_batch(const net::Message& m);
  void drain_causal_buffers();
  void on_fetch_request(const net::Message& m);

  // Elastic view handlers (delivery thread).
  void on_view_propose(const net::Message& m);
  void on_view_commit(const net::Message& m);
  void on_view_state(const net::Message& m);
  void on_view_barrier_sync(const net::Message& m);
  void on_view_hello(const net::Message& m);

  // ----- directory-based partial replication (Config::directory) -----

  /// Variable participates in directory management (demand-association
  /// variables keep their migratory protocol and full-broadcast updates).
  [[nodiscard]] bool dir_managed(VarId x) const;
  /// Static home: modular striping of the variable space over processes.
  [[nodiscard]] ProcId static_home(VarId x) const;
  /// First process in ring order from the static home that is present in
  /// `mask` (elastic re-homing rule, evaluated under an arbitrary view).
  [[nodiscard]] ProcId home_under(std::uint64_t mask, VarId x) const;
  /// home_under the current view's alive mask (the static home outside
  /// elastic mode).  Expects mu_.
  [[nodiscard]] ProcId effective_home(VarId x) const;
  /// Pinned replicas are never evicted: the home's own copy (the last-copy
  /// guarantee), counters (a delta-merged value is a sum of local
  /// applications, not refetchable), and fills still in flight.  Expects mu_.
  [[nodiscard]] bool replica_pinned(VarId x) const;
  /// Demand-page x (plus a same-home prefetch frame) from its home and
  /// block until the bulk fill installs.  Expects lk held; releases it
  /// while blocked.
  void request_fill(std::unique_lock<std::mutex>& lk, VarId x);
  /// Home side: snapshot the fill's variables into one kFetchBulkResp.
  /// Expects mu_.
  void send_fill_response_locked(std::uint64_t token, const ServingFill& f);
  /// Evict least-recently-used unpinned replicas until the budget holds,
  /// deregistering each from its home.  Expects mu_.
  void enforce_budget_locked();
  /// Send one kFrontierReq to every alive component whose resolved frontier
  /// lags `floor` and has not been probed at this floor yet (`pinged`
  /// remembers probed levels across predicate re-evaluations).  Expects mu_.
  void ping_lagging_locked(const VectorClock& floor, VectorClock& pinged);

  // Directory handlers (delivery thread; replayed from on_view_commit for
  // messages deferred until this node's view epoch caught up).
  void on_fetch_bulk_req(const net::Message& m);
  void on_fetch_bulk_resp(const net::Message& m);
  void on_dir_sharer_add(const net::Message& m);
  void on_dir_ack(const net::Message& m);
  void on_dir_unregister(const net::Message& m);
  void on_dir_sharer_del(const net::Message& m);
  void on_dir_sharer_sync(const net::Message& m);

  /// Elastic fence: floor dominance with the dead components waived — a
  /// departed process's updates past our applied frontier will never
  /// arrive, and the view commit's re-mastering covers their effects.
  /// Expects mu_.
  [[nodiscard]] bool floors_met(const VectorClock& applied,
                                const VectorClock& floor) const {
    return elastic_ ? applied.dominates_masked(floor, view_.alive_mask)
                    : applied.dominates(floor);
  }

  // Absorb an observed value/synchronization context: merge into the
  // dependency clock and the causal floor; raise the PRAM floor on the
  // direct predecessor's component only.  In count-vector mode
  // (Config::omit_timestamps) the entry's per-receiver arrival index raises
  // the count floor instead.
  void absorb_entry(const VarEntry& e);
  // Barriers make every process a direct predecessor.
  void absorb_all(const VectorClock& vc);

  void do_lock(LockId l, LockRequestKind kind);
  void do_unlock(LockId l, LockRequestKind kind);
  void do_delta(VarId x, Value amount, std::uint64_t flags);

  /// Demand-driven miss handling: fetch x from `owner` and install it in
  /// the local copy.  Expects `lk` held; may release and reacquire it.
  void fetch_var(std::unique_lock<std::mutex>& lk, VarId x, net::Endpoint owner);

  /// Wait with a liveness deadline: a consistency protocol that blocks for
  /// this long is wedged, and tests want a crisp failure.
  template <typename Pred>
  void wait_or_die(std::unique_lock<std::mutex>& lk, const char* what, Pred pred);

  /// True when some consumer (trace recorder or live sink) wants completed
  /// operations materialized.
  [[nodiscard]] bool observing_ops() const {
    return trace_.enabled() || op_sink_.load(std::memory_order_acquire) != nullptr;
  }
  /// Stamp a trace correlation id (when tracing), emit the matching trace
  /// instant, record into the trace, and hand the op to the live sink.
  /// Call with mu_ held, at the op's completion point (see obs/op_sink.h
  /// for the ordering contract).
  void emit_op(history::Operation& op);

  [[nodiscard]] VectorClock snapshot_dep_vc();
  void broadcast_update(VarId x, Value value, std::uint64_t flags, SeqNo seq,
                        const VectorClock& stamp, std::uint64_t epoch = 0);
  [[nodiscard]] bool demand_local_write(VarId x, HeldLock** held_out);

  // ----- batched propagation (Config::batching; DESIGN.md §6.3) -----

  /// Stage one update for `dest`, coalescing into an already-staged record
  /// when permitted.  Bumps sent_to_ immediately (the staged record WILL
  /// travel — flush-before-sync makes the count truthful before anyone
  /// synchronizes on it).  `epoch` is the writer's view epoch (travels with
  /// the record when nonzero); `writer` overrides the record's write id
  /// owner for directory re-homing offers, where the new home must apply
  /// the original writer's id, not the carrier's.  Requires mu_.
  void stage_update(ProcId dest, VarId x, Value value, std::uint64_t flags, SeqNo seq,
                    const VectorClock& stamp, std::uint64_t epoch = 0,
                    ProcId writer = kNoProc);
  /// Ship every non-empty staging buffer as one kBatch per destination.
  /// All destinations flush together: uniform flush boundaries keep batch
  /// dependency edges pointing at earlier-flushed batches only, which is
  /// the acyclicity argument for deadlock-freedom (DESIGN.md §6.3).
  /// Requires mu_.
  void flush_staged_locked();
  /// Background flusher honoring BatchingConfig::max_delay.
  void run_flusher();
  [[nodiscard]] std::size_t approx_batch_bytes(std::size_t records) const;

  const Config& cfg_;
  const ProcId self_;
  net::Fabric& fabric_;
  const net::Endpoint lock_mgr_;
  const net::Endpoint barrier_mgr_;
  /// Shared read-staleness registry (owned by MixedSystem); nullptr unless
  /// Config::track_staleness.
  StalenessTable* const staleness_;
  std::atomic<Watchdog*> watchdog_{nullptr};
  std::atomic<obs::OpSink*> op_sink_{nullptr};
  /// Contention profiler (owned by MixedSystem); nullptr unless profiling.
  obs::ContentionProfiler* profiler_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;

  // The single local copy of shared memory (the paper's "performed
  // locally").  Updates are applied in causally-ready order for *both*
  // read modes; PRAM and causal reads differ only in which floor they
  // block on, not in the state they see.  Two stores applied in different
  // orders (PRAM at arrival, causal at readiness) look identical on the
  // ideal fabric, whose min-heap mailbox delivers in global deliver_at
  // order, but diverge on the winner of concurrent writes once re-stamped
  // retransmissions (docs/FAULTS.md) scramble cross-sender arrival order —
  // and then one process's trace has no single serialization.
  Store mem_;
  VectorClock dep_vc_;
  /// Per-sender clock component of the last update *applied* to mem_.
  VectorClock applied_;
  /// Per-sender clock component of the last update *received* (applied or
  /// still buffered) — guards the per-channel FIFO invariant.
  VectorClock update_arrived_;
  VectorClock pram_floor_;
  VectorClock causal_floor_;
  SeqNo write_counter_ = 0;
  std::vector<std::deque<PendingUpdate>> causal_buffer_;

  // Count-vector protocol state (Section 6's scheme, omit_timestamps mode):
  // cumulative update counts per (this sender -> peer) and per
  // (sender -> this receiver), plus the per-sender expected-count floor
  // raised by barriers, lock grants, and observed values.
  VectorClock sent_to_;
  VectorClock received_from_;
  VectorClock count_floor_;

  std::map<LockId, HeldLock> held_;
  std::map<LockId, GrantInfo> pending_grants_;

  std::map<BarrierId, std::uint64_t> barrier_epoch_;
  std::map<std::pair<BarrierId, std::uint64_t>, BarrierRelease> barrier_release_;

  std::uint64_t sync_token_counter_ = 0;
  std::map<std::uint64_t, std::size_t> sync_acks_;

  std::uint64_t fetch_token_counter_ = 0;
  std::map<std::uint64_t, FetchResult> fetch_results_;
  std::map<VarId, net::Endpoint> invalid_;

  // Directory state (Config::directory; guarded by mu_).
  const bool dir_mode_;
  /// Full directory mirror: bit p of sharer_mask_[x] set means process p
  /// holds a demand-paged replica of x.  Every change to x's row flows
  /// through x's home (kDirSharerAdd / kDirSharerDel multicasts on the
  /// home's FIFO channels), so all mirrors see one order; the home's own
  /// rows for its homed variables are the authority.
  std::vector<std::uint64_t> sharer_mask_;
  /// Replica presence: homed variables are pinned from the start, others
  /// demand-page in via request_fill and may be evicted back out.
  std::vector<bool> cached_;
  std::vector<std::uint64_t> last_use_;  // LRU ticks ordering eviction
  std::uint64_t use_tick_ = 0;
  /// Resolved frontier: resolved_[s] >= k promises that every one of s's
  /// first k writes has either been applied here or was never addressed to
  /// a variable this node caches (in which case the fill ack fence covers
  /// it).  Advanced by kBatch flush stamps, kFrontierResp, and kViewHello —
  /// never by fill installs, whose sender's direct channel may still carry
  /// in-flight writes.  Directory-mode reads gate their vector-clock floors
  /// on this instead of applied_.
  VectorClock resolved_;
  std::uint64_t fill_token_counter_ = 0;
  std::map<std::uint64_t, PendingFill> fills_;  // requester side, by token
  std::vector<bool> fill_inflight_;             // per variable
  /// Updates that arrived for a variable whose fill is still in flight:
  /// the ack fence registered us before the snapshot shipped, so writers
  /// already multicast to us, but the snapshot may or may not cover each
  /// such write.  They are replayed after the install, deduplicated by the
  /// snapshot clock (on_fetch_bulk_resp).
  std::map<VarId, std::vector<BatchRecord>> fill_backlog_;
  /// Home side, keyed by (requester, requester-local token).
  std::map<std::pair<ProcId, std::uint64_t>, ServingFill> fills_serving_;
  /// Reserved token for the pre-leave handoff probe (fill tokens count up
  /// from 1, so the sentinel can never collide).
  static constexpr std::uint64_t kDirHandoffToken = ~std::uint64_t{0};
  /// New homes whose flush-and-ack probe is still outstanding during a
  /// graceful leave's sole-copy handoff (leave() / on_dir_ack).
  std::uint64_t dir_handoff_wait_ = 0;
  /// Joiner handshake: alive peers whose kDirSharerSync rows have landed.
  std::uint64_t dir_sync_from_ = 0;
  /// Directory messages stamped with a view epoch ahead of ours; replayed
  /// after each commit (epoch agreement makes the ack fence sound across
  /// reconfigurations — see on_dir_sharer_add).
  std::vector<net::Message> dir_deferred_;

  // Elastic membership state (Config::elastic; guarded by mu_).
  const bool elastic_;
  View view_;
  /// Removed from the view without asking: every subsequent blocking
  /// operation unwinds with EvictedError (MixedSystem::run treats it as a
  /// clean per-process exit).
  bool evicted_ = false;
  /// This process requested its own exclusion (leave()); suppresses the
  /// eviction error when the commit lands.
  bool leaving_ = false;
  bool left_ = false;
  /// Joiner handshake progress: barrier-epoch sync and snapshot received.
  bool barrier_synced_ = false;
  bool snapshot_done_ = false;

  TraceRecorder trace_;
  NodeStats stats_;

  // Batched propagation state (guarded by mu_; empty unless Config::batching).
  std::vector<std::vector<BatchRecord>> staged_;  // per destination endpoint
  std::size_t staged_total_ = 0;
  std::chrono::steady_clock::time_point oldest_staged_{};
  bool flusher_stop_ = false;
  std::condition_variable flush_cv_;

  std::thread delivery_;
  std::thread flusher_;
};

}  // namespace mc::dsm
