// Configuration of a mixed-consistency DSM instance.

#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/types.h"
#include "net/fault.h"
#include "net/latency.h"
#include "net/reliable.h"
#include "obs/profiler.h"

namespace mc::dsm {

/// Update-propagation policy for a lock's critical sections (Section 6).
enum class LockPolicy : std::uint8_t {
  /// The releaser makes all of its critical-section updates globally
  /// visible (flush probe + acknowledgements) before the unlock completes.
  kEager,
  /// The unlock carries the releaser's vector clock; the next holder blocks
  /// reads until the required updates have arrived.
  kLazy,
  /// Critical-section writes are not broadcast at all; the unlock ships a
  /// write-set digest and the next holder fetches values on first access.
  /// Sound only for entry-consistent programs (Corollary 1) whose protected
  /// variables are declared in `demand_association`.
  kDemand,
};

[[nodiscard]] inline const char* to_string(LockPolicy p) {
  switch (p) {
    case LockPolicy::kEager: return "eager";
    case LockPolicy::kLazy: return "lazy";
    case LockPolicy::kDemand: return "demand";
  }
  return "?";
}

/// Batched update propagation (Section 6: "the access pattern of the
/// application can be used to reduce the communication cost"; Munin-style
/// write coalescing, see DESIGN.md §6.3).  Updates destined for the same
/// endpoint accumulate in a per-channel staging buffer and ship as one
/// framed kBatch message.  Staged plain writes to the same variable
/// collapse last-writer-wins and staged deltas merge by summation, so a
/// flush can carry far fewer records than the writes it covers.  The node
/// flushes unconditionally before every synchronization action (lock
/// release, barrier arrival, await, demand-fetch service), which is what
/// keeps Theorem 1's sufficient conditions intact — see DESIGN.md.
struct BatchingConfig {
  /// Flush once any destination's staging buffer holds this many records.
  std::size_t max_updates = 16;
  /// ... or once its encoded wire size would exceed roughly this many bytes.
  std::size_t max_bytes = 4096;
  /// Upper bound on how long a staged update may sit before the background
  /// flusher ships it anyway — bounds staleness for asynchronous readers
  /// (e.g. the Section 5.1 asynchronous solver, which never synchronizes).
  /// Mandatory flush-on-sync does not wait for this.
  std::chrono::nanoseconds max_delay{std::chrono::microseconds(200)};
  /// Collapse same-variable same-kind staged records (writes last-writer-
  /// wins, deltas by summation).  Off: batching only frames, never merges.
  bool coalesce = true;
};

/// Directory-based partial replication (docs/DIRECTORY.md).  Every variable
/// has a *home* node (static modular striping over live processes); writes
/// multicast only to the variable's registered sharers plus its home, and a
/// replica demand-pages in on first read through a bulk fill frame
/// (kFetchBulkResp) served by the home.  Cold replicas are evicted under
/// `replica_budget` with directory deregistration; the home's own copy is
/// pinned, so eviction never drops the last replica.
struct DirectoryConfig {
  /// Maximum demand-paged (non-homed, non-pinned) replicas a node keeps
  /// cached; 0 means unlimited.  Exceeding the budget evicts the least
  /// recently used unpinned replica.
  std::size_t replica_budget = 0;
  /// Upper bound on variables per fill frame: a read miss requests the
  /// missing variable plus up to this many same-home neighbours (working-
  /// set prefetch into one kFetchBulkResp).
  std::size_t fetch_frame = 16;
};

struct Config {
  std::size_t num_procs = 2;
  std::size_t num_vars = 64;

  net::LatencyModel latency = net::LatencyModel::zero();
  std::uint64_t seed = 1;

  /// Seeded fault plan installed on the fabric before any protocol traffic
  /// (docs/FAULTS.md).  Absent by default: the fabric stays ideal and the
  /// hot path pays a single null-pointer branch.
  std::optional<net::FaultPlan> faults;

  /// Layer the ack/retransmit reliability protocol (net/reliable.h) under
  /// the DSM.  Required for fault plans that drop or duplicate protocol
  /// traffic — the Section 6 protocols assume reliable FIFO channels.
  bool reliable = false;
  net::ReliabilityConfig reliability;

  /// Coalesce and frame update broadcasts into kBatch messages (see
  /// BatchingConfig above).  Absent by default: every write is its own
  /// kUpdate fan-out, matching the paper's naive Section 6 sketch.
  std::optional<BatchingConfig> batching;

  LockPolicy default_lock_policy = LockPolicy::kLazy;
  std::map<LockId, LockPolicy> lock_policy_override;

  /// Variables managed by demand-driven locks: writes while holding the
  /// associated write lock stay local and migrate with the lock.
  std::map<VarId, LockId> demand_association;

  /// Subset barriers (Section 3.1.2: "a barrier can also be defined for a
  /// subset of processes").  A barrier object listed here only rendezvouses
  /// its members; unlisted barrier objects involve every process.  Only
  /// members may arrive at a subset barrier.
  std::map<BarrierId, std::vector<ProcId>> barrier_members;

  /// Elastic membership (dsm/view.h, docs/FAULTS.md "Membership and
  /// views").  The lock manager doubles as a view manager distributing
  /// epoch-stamped membership views: a PeerUnreachable verdict from the
  /// reliability layer (or an explicit MixedSystem::join / Node::leave)
  /// triggers a propose/ack/commit reconfiguration that revokes the
  /// departed process's locks, recomputes barrier membership, and re-seeds
  /// variables whose latest write lived only on the departed node from the
  /// causally-latest surviving replica.  Requires vector-clock mode
  /// (incompatible with omit_timestamps: count vectors have no per-writer
  /// causality to fence).
  bool elastic = false;

  /// Initial view-0 membership (elastic only).  Absent: every process is a
  /// member from the start.  A configured process left out here starts
  /// outside the view and must MixedSystem::join before running app code.
  std::optional<std::vector<ProcId>> initial_members;

  /// Record every operation into a per-process trace (history checking).
  bool record_trace = false;

  /// Track per-read staleness (docs/METRICS.md `read.staleness_versions.*`
  /// and `read.staleness_vc.*`): how many issued writes to the variable the
  /// reading replica had not yet absorbed, split by PRAM vs causal read
  /// mode.  Off by default — adds one atomic increment per write and a
  /// short mutexed clock merge per timestamped write.
  bool track_staleness = false;

  /// Section 6's optimization for PRAM-consistent programs (Corollary 2):
  /// "the extra overhead of sending a timestamp in each message and
  /// performing the updates in the timestamp order can be avoided if all
  /// read operations following a write are PRAM operations."  When set,
  /// updates carry no vector clock (num_procs fewer words per message),
  /// both views apply in arrival order, and the synchronization protocol
  /// switches to the paper's *count vectors*: barrier arrivals carry
  /// per-receiver sent-update counts which the manager transposes, and lazy
  /// unlocks carry them for the next holder — Section 6's scheme verbatim.
  /// Causal reads and awaits are rejected at runtime, and demand-driven
  /// locks are unavailable.
  bool omit_timestamps = false;

  /// Access-pattern optimization (Section 6: "the overhead of broadcasting
  /// messages for each update ... may be avoided by making optimizations
  /// based on the patterns of accesses to shared variables").  A variable
  /// listed here is multicast only to its subscribers; everyone else keeps
  /// a stale replica, so only subscribers may read it.  Requires
  /// omit_timestamps (count-vector synchronization tolerates per-receiver
  /// gaps; vector-clock causal delivery does not).
  std::map<VarId, std::vector<ProcId>> update_subscribers;

  /// Directory-based partial replication (see DirectoryConfig above).
  /// Requires batching (fills reuse the batch codec and the staging
  /// buffers carry the sharer-only multicast) and vector-clock mode;
  /// incompatible with update_subscribers (the directory subsumes static
  /// subscription).  Elastic membership is supported: view commits purge
  /// departed sharers and re-home their variables.
  std::optional<DirectoryConfig> directory;

  /// Contention profiler (src/obs/profiler.h, docs/PROFILING.md): per-
  /// variable / per-lock / per-barrier cost attribution in capped-
  /// cardinality sketches, surfaced via MixedSystem::profile() and the
  /// RunReport `profile` section.  Off by default — when unset, every
  /// instrumentation site is a single null-pointer branch and metrics()
  /// carries no `profile.*` keys.
  std::optional<obs::ProfilerOptions> profile;

  [[nodiscard]] LockPolicy policy_of(LockId l) const {
    auto it = lock_policy_override.find(l);
    return it == lock_policy_override.end() ? default_lock_policy : it->second;
  }
};

}  // namespace mc::dsm
