#include "dsm/watchdog.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "obs/tracer.h"

namespace mc::dsm {

namespace {

std::string format_ms(std::chrono::nanoseconds d) {
  return std::to_string(
             std::chrono::duration_cast<std::chrono::milliseconds>(d).count()) +
         " ms";
}

}  // namespace

Watchdog::Watchdog(Options opts) : opts_(opts) {
  MC_CHECK(opts_.stall_timeout.count() > 0);
  MC_CHECK(opts_.poll.count() > 0);
  monitor_ = std::thread([this] { monitor_loop(); });
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::stop() {
  {
    std::scoped_lock lk(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
}

std::uint64_t Watchdog::wait_begin(ProcId proc, const char* what) {
  std::scoped_lock lk(mu_);
  const std::uint64_t token = next_token_++;
  waits_.emplace(token, Wait{proc, what, std::chrono::steady_clock::now()});
  return token;
}

void Watchdog::wait_end(std::uint64_t token) {
  std::scoped_lock lk(mu_);
  waits_.erase(token);
}

void Watchdog::set_wait_graph_source(
    std::function<std::vector<WaitEdge>()> source) {
  std::scoped_lock lk(mu_);
  wait_graph_ = std::move(source);
}

void Watchdog::set_diagnostics_source(
    std::function<void(Diagnostics&)> source) {
  std::scoped_lock lk(mu_);
  diag_source_ = std::move(source);
}

void Watchdog::set_manager_probe(
    std::function<std::vector<ManagerHealth>()> probe) {
  std::scoped_lock lk(mu_);
  manager_probe_ = std::move(probe);
}

std::vector<std::string> Watchdog::describe_waits(
    std::chrono::steady_clock::time_point now) const {
  std::vector<std::string> out;
  out.reserve(waits_.size());
  for (const auto& [token, w] : waits_) {
    out.push_back("p" + std::to_string(w.proc) + ": " + w.what + " (" +
                  format_ms(now - w.since) + ")");
  }
  return out;
}

std::vector<std::string> Watchdog::find_cycle(
    const std::vector<WaitEdge>& edges) {
  // The graph is tiny (bounded by the process count), so a simple DFS with
  // an explicit path suffices.
  std::map<ProcId, std::vector<WaitEdge>> adj;
  for (const WaitEdge& e : edges) adj[e.waiter].push_back(e);

  std::set<ProcId> done;
  for (const auto& [start, unused] : adj) {
    (void)unused;
    if (done.count(start) != 0) continue;
    std::vector<WaitEdge> path;
    std::set<ProcId> on_path;
    ProcId cur = start;
    while (true) {
      if (on_path.count(cur) != 0) {
        // Trim the tail leading into the cycle, then format it.
        std::size_t first = 0;
        while (path[first].waiter != cur) ++first;
        std::vector<std::string> cycle;
        for (std::size_t i = first; i < path.size(); ++i) {
          cycle.push_back("p" + std::to_string(path[i].waiter) + " -(lock " +
                          std::to_string(path[i].lock) + ")-> p" +
                          std::to_string(path[i].holder));
        }
        return cycle;
      }
      auto it = adj.find(cur);
      if (it == adj.end() || it->second.empty()) break;
      on_path.insert(cur);
      // Following the first outgoing edge finds any cycle reachable from
      // `start` along that choice; a real all-holders deadlock shows up on
      // some start vertex because every participant is itself a waiter.
      path.push_back(it->second.front());
      cur = path.back().holder;
    }
    for (const ProcId p : on_path) done.insert(p);
    done.insert(start);
  }
  return {};
}

void Watchdog::fire(const std::string& reason, std::vector<std::string> cycle) {
  if (fired_.load(std::memory_order_relaxed)) return;

  Diagnostics d;
  d.fired = true;
  d.reason = reason;
  d.deadlock_cycle = std::move(cycle);
  std::function<void(Diagnostics&)> source;
  {
    std::scoped_lock lk(mu_);
    d.stalled_waits = describe_waits(std::chrono::steady_clock::now());
    source = diag_source_;
  }
  // Collectors take their own leaf locks (lock table, mailboxes); never
  // call them while holding the watchdog mutex.
  if (source) source(d);
  // Crash context belongs in the one-line verdict, not just the dump: a
  // stall caused by a dead peer should say so (docs/FAULTS.md).
  if (!d.unreachable.empty()) {
    d.reason += "; unreachable: " + d.unreachable.front();
    if (d.unreachable.size() > 1) {
      d.reason += " (+" + std::to_string(d.unreachable.size() - 1) + " more)";
    }
  }
  if (!d.view.empty()) d.reason += "; view: " + d.view;
  // Live-profile culprits (Config::profile): the verdict line points at the
  // hottest contended object, not just the wait set.
  for (const std::string& h : d.hot) d.reason += "; " + h;

  {
    std::scoped_lock lk(mu_);
    if (fired_.load(std::memory_order_relaxed)) return;  // lost the race
    diag_ = std::move(d);
    fired_.store(true, std::memory_order_release);
  }
  if (obs::trace_enabled()) {
    obs::trace_instant("watchdog.fired", "dsm", {"waits", diag_.stalled_waits.size()},
                       {"deadlock", std::uint64_t{diag_.deadlock_cycle.empty() ? 0u : 1u}});
  }
}

Watchdog::Diagnostics Watchdog::diagnostics() const {
  std::scoped_lock lk(mu_);
  return diag_;
}

void Watchdog::monitor_loop() {
  std::unique_lock lk(mu_);
  while (!stop_) {
    cv_.wait_for(lk, opts_.poll);
    if (stop_ || fired_.load(std::memory_order_relaxed)) continue;

    // 1. Deadlock probe: a wait-for cycle seen on two consecutive polls is
    //    reported as a deadlock (one sighting can be a transient snapshot
    //    of a healthy handoff).
    std::function<std::vector<WaitEdge>()> graph = wait_graph_;
    if (graph) {
      lk.unlock();
      std::vector<std::string> cycle = find_cycle(graph());
      lk.lock();
      if (stop_) break;
      if (!cycle.empty() && cycle == prev_cycle_) {
        // Build the reason before passing `cycle` by value: argument
        // evaluation order is unspecified, and the parameter's move
        // construction must not race the front()/size() reads.
        const std::string reason =
            "lock-order deadlock: " + cycle.front() +
            (cycle.size() > 1
                 ? " ... (" + std::to_string(cycle.size()) + " edges)"
                 : "");
        lk.unlock();
        fire(reason, std::move(cycle));
        lk.lock();
        continue;
      }
      prev_cycle_ = std::move(cycle);
    }

    // 2. Manager probe: a manager whose heartbeat stays frozen across the
    //    stall deadline while its mailbox holds traffic is wedged — it will
    //    never grant or release anything, so don't wait for an application
    //    thread's own deadline to name the real culprit.
    std::function<std::vector<ManagerHealth>()> probe = manager_probe_;
    if (probe) {
      lk.unlock();
      std::vector<ManagerHealth> health = probe();
      lk.lock();
      if (stop_) break;
      const auto probe_now = std::chrono::steady_clock::now();
      for (const ManagerHealth& h : health) {
        if (h.pending == 0) {
          manager_track_.erase(h.name);  // idle, not wedged
          continue;
        }
        auto [it, fresh] = manager_track_.try_emplace(
            h.name, ManagerTrack{h.heartbeat, probe_now});
        if (!fresh && it->second.heartbeat != h.heartbeat) {
          it->second = ManagerTrack{h.heartbeat, probe_now};  // made progress
        } else if (!fresh &&
                   probe_now - it->second.since >= opts_.stall_timeout) {
          const std::string reason =
              "manager thread stalled: " + h.name + " (heartbeat frozen at " +
              std::to_string(h.heartbeat) + " with " +
              std::to_string(h.pending) + " pending message" +
              (h.pending == 1 ? "" : "s") + " for " +
              format_ms(probe_now - it->second.since) + ")";
          lk.unlock();
          fire(reason);
          lk.lock();
          break;
        }
      }
      if (stop_ || fired_.load(std::memory_order_relaxed)) continue;
    }

    // 3. Stall probe: any registered wait older than the deadline.
    const auto now = std::chrono::steady_clock::now();
    const Wait* oldest = nullptr;
    for (const auto& [token, w] : waits_) {
      if (oldest == nullptr || w.since < oldest->since) oldest = &w;
    }
    if (oldest != nullptr && now - oldest->since >= opts_.stall_timeout) {
      const std::string reason = "stall: p" + std::to_string(oldest->proc) +
                                 " " + oldest->what + " for " +
                                 format_ms(now - oldest->since);
      lk.unlock();
      fire(reason);
      lk.lock();
    }
  }
}

}  // namespace mc::dsm
