// Epoch-stamped membership views (elastic membership, docs/FAULTS.md
// "Membership and views").
//
// A view is the pair (epoch, alive mask): which processes are members of
// the system right now, and a monotone counter stamping the configuration.
// The lock manager doubles as the *view manager*: it proposes view v+1 on
// a fault report / join / leave, collects acks from the surviving members
// (each ack carries the acker's applied clock, taken after flushing its
// staging buffers), and commits — revoking the departed process's locks,
// recomputing barrier membership, and assigning re-seed donors.  Nodes
// fence to a committed view: reads, awaits, and causal delivery mask out
// the dead components (common/vector_clock.h `*_masked`).
//
// Membership is encoded as a 64-bit mask, matching the lock manager's
// prev_holders_mask encoding (num_procs <= 64 is enforced at system
// construction).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace mc::dsm {

struct View {
  std::uint64_t epoch = 0;
  std::uint64_t alive_mask = 0;

  [[nodiscard]] bool is_alive(ProcId p) const {
    MC_CHECK(p < 64);
    return ((alive_mask >> p) & 1) != 0;
  }

  [[nodiscard]] std::size_t live_count() const {
    std::size_t n = 0;
    for (std::uint64_t m = alive_mask; m != 0; m &= m - 1) ++n;
    return n;
  }

  [[nodiscard]] std::vector<ProcId> members() const {
    std::vector<ProcId> out;
    for (ProcId p = 0; p < 64; ++p) {
      if (is_alive(p)) out.push_back(p);
    }
    return out;
  }

  [[nodiscard]] std::string to_string() const {
    std::string s = "epoch " + std::to_string(epoch) + " {";
    bool first = true;
    for (ProcId p = 0; p < 64; ++p) {
      if (!is_alive(p)) continue;
      if (!first) s += ",";
      s += std::to_string(p);
      first = false;
    }
    s += "}";
    return s;
  }

  friend bool operator==(const View&, const View&) = default;
};

/// Mask with the low `num_procs` bits set — the "everyone" view.
[[nodiscard]] inline std::uint64_t full_mask(std::size_t num_procs) {
  MC_CHECK(num_procs <= 64);
  return num_procs == 64 ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << num_procs) - 1;
}

[[nodiscard]] inline std::uint64_t mask_of(const std::vector<ProcId>& procs) {
  std::uint64_t m = 0;
  for (ProcId p : procs) {
    MC_CHECK(p < 64);
    m |= std::uint64_t{1} << p;
  }
  return m;
}

[[nodiscard]] inline std::size_t popcount64(std::uint64_t m) {
  std::size_t n = 0;
  for (; m != 0; m &= m - 1) ++n;
  return n;
}

}  // namespace mc::dsm
