#include "dsm/barrier_manager.h"

#include <algorithm>

#include "common/check.h"
#include "obs/tracer.h"

namespace mc::dsm {

BarrierManager::BarrierManager(net::Fabric& fabric, net::Endpoint self,
                               std::size_t num_procs,
                               std::map<BarrierId, std::vector<ProcId>> members,
                               bool count_mode)
    : fabric_(fabric), self_(self), num_procs_(num_procs), count_mode_(count_mode),
      members_(std::move(members)) {
  for (const auto& [b, procs] : members_) {
    (void)b;
    MC_CHECK_MSG(!procs.empty(), "a subset barrier needs at least one member");
    for (const ProcId p : procs) MC_CHECK(p < num_procs_);
  }
  thread_ = std::thread([this] { run(); });
}

BarrierManager::~BarrierManager() { join(); }

void BarrierManager::join() {
  if (thread_.joinable()) thread_.join();
}

std::vector<ProcId> BarrierManager::members_of(BarrierId b) const {
  auto it = members_.find(b);
  if (it != members_.end()) return it->second;
  std::vector<ProcId> everyone(num_procs_);
  for (ProcId p = 0; p < num_procs_; ++p) everyone[p] = p;
  return everyone;
}

void BarrierManager::run() {
  while (auto m = fabric_.recv(self_)) {
    heartbeats_.add();
    obs::TraceSpan span("deliver", "net", {"kind", m->kind}, {"src", m->src});
    obs::trace_flow_end("msg", "net", m->trace_id);
    if (m->kind == kBarrierArrive) handle_arrive(*m);
  }
}

std::vector<std::string> BarrierManager::dump() const {
  std::vector<std::string> out;
  std::scoped_lock lk(state_mu_);
  for (const auto& [key, inst] : instances_) {
    const std::vector<ProcId> participants = members_of(key.first);
    std::string line = "barrier " + std::to_string(key.first) + " epoch " +
                       std::to_string(key.second) + ": " +
                       std::to_string(inst.count) + "/" +
                       std::to_string(participants.size()) +
                       " arrived, missing=[";
    bool first = true;
    for (const ProcId p : participants) {
      if (inst.arrived[p]) continue;
      line += (first ? "p" : " p") + std::to_string(p);
      first = false;
    }
    line += "]";
    out.push_back(std::move(line));
  }
  return out;
}

void BarrierManager::handle_arrive(const net::Message& m) {
  const auto barrier = static_cast<BarrierId>(m.a);
  const std::vector<ProcId> participants = members_of(barrier);
  MC_CHECK_MSG(std::find(participants.begin(), participants.end(),
                         static_cast<ProcId>(m.src)) != participants.end(),
               "barrier arrival from a non-member process");

  const auto key = std::make_pair(barrier, m.b);
  std::scoped_lock state_lk(state_mu_);
  Instance& inst = instances_[key];
  if (inst.arrived.empty()) {
    inst.arrived.assign(num_procs_, false);
    inst.merged = VectorClock(num_procs_);
    inst.first_arrival = std::chrono::steady_clock::now();
  }
  MC_CHECK_MSG(!inst.arrived[m.src], "double arrival at one barrier instance");
  inst.arrived[m.src] = true;
  ++inst.count;

  MC_CHECK(m.payload.size() == num_procs_);
  if (count_mode_) {
    inst.payloads[static_cast<ProcId>(m.src)] = m.payload;
  } else {
    VectorClock vc(num_procs_);
    for (ProcId p = 0; p < num_procs_; ++p) vc.set(p, m.payload[p]);
    inst.merged.merge(vc);
  }

  if (inst.count == participants.size()) {
    assemble_ns_.record(std::chrono::steady_clock::now() - inst.first_arrival);
    releases_.add(participants.size());
    if (count_mode_) {
      // Transpose: receiver i must wait, per sender j, for the number of
      // updates j reported having sent to i before arriving (Section 6).
      for (const ProcId i : participants) {
        net::Message release;
        release.src = self_;
        release.dst = i;
        release.kind = kBarrierRelease;
        release.a = m.a;
        release.b = m.b;
        release.payload.assign(num_procs_, 0);
        for (const auto& [j, sent] : inst.payloads) release.payload[j] = sent[i];
        fabric_.send(std::move(release));
      }
    } else {
      net::Message release;
      release.src = self_;
      release.kind = kBarrierRelease;
      release.a = m.a;
      release.b = m.b;
      release.payload.assign(inst.merged.components().begin(),
                             inst.merged.components().end());
      std::vector<net::Endpoint> dsts;
      dsts.reserve(participants.size());
      for (const ProcId p : participants) dsts.push_back(p);
      fabric_.multicast(release, dsts);
    }
    instances_.erase(key);
  }
}

}  // namespace mc::dsm
