#include "dsm/barrier_manager.h"

#include <algorithm>

#include "common/check.h"
#include "obs/tracer.h"

namespace mc::dsm {

BarrierManager::BarrierManager(net::Fabric& fabric, net::Endpoint self,
                               std::size_t num_procs,
                               std::map<BarrierId, std::vector<ProcId>> members,
                               bool count_mode,
                               std::optional<std::uint64_t> initial_alive,
                               bool dir_mode)
    : fabric_(fabric), self_(self), num_procs_(num_procs), count_mode_(count_mode),
      dir_mode_(dir_mode), elastic_(initial_alive.has_value()),
      members_(std::move(members)) {
  MC_CHECK_MSG(!(count_mode && dir_mode), "directory mode requires vector clocks");
  for (const auto& [b, procs] : members_) {
    (void)b;
    MC_CHECK_MSG(!procs.empty(), "a subset barrier needs at least one member");
    for (const ProcId p : procs) MC_CHECK(p < num_procs_);
  }
  if (elastic_) {
    MC_CHECK_MSG(!count_mode_, "elastic membership requires vector-clock mode");
    alive_mask_ = *initial_alive & full_mask(num_procs_);
  }
  thread_ = std::thread([this] { run(); });
}

void BarrierManager::set_join_listener(JoinListener listener) {
  std::scoped_lock lk(state_mu_);
  join_listener_ = std::move(listener);
}

BarrierManager::~BarrierManager() { join(); }

void BarrierManager::join() {
  if (thread_.joinable()) thread_.join();
}

std::vector<ProcId> BarrierManager::members_of(BarrierId b) const {
  auto it = members_.find(b);
  if (it != members_.end()) return it->second;
  std::vector<ProcId> everyone(num_procs_);
  for (ProcId p = 0; p < num_procs_; ++p) everyone[p] = p;
  return everyone;
}

void BarrierManager::run() {
  while (auto m = fabric_.recv(self_)) {
    heartbeats_.add();
    obs::TraceSpan span("deliver", "net", {"kind", m->kind}, {"src", m->src});
    obs::trace_flow_end("msg", "net", m->trace_id);
    if (m->kind == kBarrierArrive) handle_arrive(*m);
    else if (m->kind == kViewCommit) handle_view_commit(*m);
  }
}

std::vector<ProcId> BarrierManager::participants_at(BarrierId b,
                                                    std::uint64_t epoch) const {
  std::vector<ProcId> out;
  const auto mf = member_from_.find(b);
  for (const ProcId p : members_of(b)) {
    if (p >= 64 || ((alive_mask_ >> p) & 1) == 0) continue;
    if (mf != member_from_.end()) {
      const auto it = mf->second.find(p);
      if (it != mf->second.end() && it->second > epoch) continue;
    }
    out.push_back(p);
  }
  return out;
}

std::vector<std::string> BarrierManager::dump() const {
  std::vector<std::string> out;
  std::scoped_lock lk(state_mu_);
  for (const auto& [key, inst] : instances_) {
    const std::vector<ProcId> participants = members_of(key.first);
    std::string line = "barrier " + std::to_string(key.first) + " epoch " +
                       std::to_string(key.second) + ": " +
                       std::to_string(inst.count) + "/" +
                       std::to_string(participants.size()) +
                       " arrived, missing=[";
    bool first = true;
    for (const ProcId p : participants) {
      if (inst.arrived[p]) continue;
      line += (first ? "p" : " p") + std::to_string(p);
      first = false;
    }
    line += "]";
    out.push_back(std::move(line));
  }
  return out;
}

void BarrierManager::handle_arrive(const net::Message& m) {
  const auto barrier = static_cast<BarrierId>(m.a);
  const auto src = static_cast<ProcId>(m.src);
  const std::vector<ProcId> configured = members_of(barrier);

  const auto key = std::make_pair(barrier, m.b);
  std::scoped_lock state_lk(state_mu_);
  // Elastic: an arrival racing the sender's eviction lands after the
  // commit already waived it — drop it (its clock contribution is covered
  // by the re-mastering path, not the release).
  if (elastic_ && (src >= 64 || ((alive_mask_ >> src) & 1) == 0)) return;
  MC_CHECK_MSG(std::find(configured.begin(), configured.end(), src) !=
                   configured.end(),
               "barrier arrival from a non-member process");
  Instance& inst = instances_[key];
  if (inst.arrived.empty()) {
    inst.arrived.assign(num_procs_, false);
    inst.merged = VectorClock(num_procs_);
    inst.first_arrival = std::chrono::steady_clock::now();
  }
  MC_CHECK_MSG(!inst.arrived[m.src], "double arrival at one barrier instance");
  inst.arrived[m.src] = true;
  ++inst.count;

  // Directory mode stacks both synchronization currencies: the arriver's
  // per-receiver sent-counts first, then its dependency clock.
  const std::size_t vc_at = dir_mode_ ? num_procs_ : 0;
  MC_CHECK(m.payload.size() == vc_at + num_procs_);
  if (count_mode_ || dir_mode_) {
    inst.payloads[src] = std::vector<std::uint64_t>(
        m.payload.begin(), m.payload.begin() + num_procs_);
  }
  if (!count_mode_) {
    VectorClock vc(num_procs_);
    for (ProcId p = 0; p < num_procs_; ++p) vc.set(p, m.payload[vc_at + p]);
    inst.merged.merge(vc);
  }

  maybe_release(key);
}

bool BarrierManager::maybe_release(
    const std::pair<BarrierId, std::uint64_t>& key) {
  const auto it = instances_.find(key);
  if (it == instances_.end()) return false;
  Instance& inst = it->second;
  const std::vector<ProcId> participants =
      elastic_ ? participants_at(key.first, key.second) : members_of(key.first);
  for (const ProcId p : participants) {
    if (!inst.arrived[p]) return false;
  }

  const auto skew = std::chrono::steady_clock::now() - inst.first_arrival;
  assemble_ns_.record(skew);
  releases_.add(participants.size());
  if (profiler_ != nullptr) {
    // Arrival skew for this instance: how long the earliest arriver waited
    // for the slowest participant.
    profiler_->record_barrier_instance(
        key.first,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(skew).count()),
        participants.size());
  }
  if (count_mode_ || dir_mode_) {
    // Transpose: receiver i must wait, per sender j, for the number of
    // updates j reported having sent to i before arriving (Section 6).
    // Directory mode appends the merged clock after the counts.
    for (const ProcId i : participants) {
      net::Message release;
      release.src = self_;
      release.dst = i;
      release.kind = kBarrierRelease;
      release.a = key.first;
      release.b = key.second;
      release.payload.assign(num_procs_, 0);
      for (const auto& [j, sent] : inst.payloads) release.payload[j] = sent[i];
      if (dir_mode_) {
        release.payload.insert(release.payload.end(),
                               inst.merged.components().begin(),
                               inst.merged.components().end());
      }
      fabric_.send(std::move(release));
    }
  } else {
    // The merged clock keeps every recorded arrival, including a member
    // that died after arriving: its pre-barrier writes are still ordered
    // before the release.
    net::Message release;
    release.src = self_;
    release.kind = kBarrierRelease;
    release.a = key.first;
    release.b = key.second;
    release.payload.assign(inst.merged.components().begin(),
                           inst.merged.components().end());
    std::vector<net::Endpoint> dsts;
    dsts.reserve(participants.size());
    for (const ProcId p : participants) dsts.push_back(p);
    fabric_.multicast(release, dsts);
  }
  if (elastic_) {
    auto& next = next_epoch_[key.first];
    next = std::max(next, key.second + 1);
  }
  instances_.erase(it);
  return true;
}

void BarrierManager::handle_view_commit(const net::Message& m) {
  if (!elastic_) return;
  std::vector<std::pair<BarrierId, std::uint64_t>> joined;
  ProcId joiner = kNoProc;
  JoinListener listener;
  {
    std::scoped_lock state_lk(state_mu_);
    if (m.a < view_epoch_) return;  // stale — epochs are monotone
    view_epoch_ = m.a;
    alive_mask_ = m.b;
    listener = join_listener_;
    if (m.c != ~std::uint64_t{0}) {
      joiner = static_cast<ProcId>(m.c);
      // The joiner participates from the next unseen instance of every
      // barrier object — open instances belong to phases whose work was
      // partitioned before it existed.
      std::map<BarrierId, std::uint64_t> start = next_epoch_;
      for (const auto& [key, inst] : instances_) {
        (void)inst;
        auto& s = start[key.first];
        s = std::max(s, key.second + 1);
      }
      net::Message sync;
      sync.src = self_;
      sync.dst = joiner;
      sync.kind = kViewBarrierSync;
      sync.a = start.size();
      sync.b = view_epoch_;
      for (const auto& [b, e] : start) {
        member_from_[b][joiner] = e;
        joined.emplace_back(b, e);
        sync.payload.push_back(b);
        sync.payload.push_back(e);
      }
      fabric_.send(std::move(sync));
    }
    // Survivors stranded mid-phase: a departed member's missing arrival is
    // waived, so re-check every open instance under the new membership.
    std::vector<std::pair<BarrierId, std::uint64_t>> keys;
    keys.reserve(instances_.size());
    for (const auto& [key, inst] : instances_) {
      (void)inst;
      keys.push_back(key);
    }
    for (const auto& key : keys) maybe_release(key);
  }
  if (listener) {
    for (const auto& [b, e] : joined) listener(b, joiner, e);
  }
}

}  // namespace mc::dsm
