// Barrier manager process (Section 6): every barrier object is mapped to a
// manager; each process sends an arrival message when it reaches the
// barrier and the manager signals every process to go ahead once all have
// arrived.
//
// Instead of the paper's per-phase message-count vectors we aggregate the
// arrivals' vector clocks: the component-wise maximum M satisfies
// M[j] = (number of updates process j broadcast before arriving), which is
// exactly the count vector the paper's scheme reconstructs — and it doubles
// as the causal floor for causal reads after the barrier (DESIGN.md §6).

#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/vector_clock.h"
#include "dsm/view.h"
#include "dsm/wire.h"
#include "net/fabric.h"
#include "obs/profiler.h"

namespace mc::dsm {

class BarrierManager {
 public:
  /// `members` lists the participants of subset barriers (Section 3.1.2);
  /// barrier objects absent from it involve every process.  In count mode
  /// (Section 6's scheme, timestamp-elided systems) arrivals carry
  /// per-receiver sent-update counts which the release transposes; in the
  /// default mode arrivals carry vector clocks which the release merges.
  ///
  /// With `initial_alive` the manager participates in elastic membership
  /// (dsm/view.h): kViewCommit messages from the view manager update the
  /// live mask, stranded instances are re-checked under the shrunk
  /// membership (a dead process's pending arrival is waived; its recorded
  /// arrival clock stands), and a committed joiner is assigned a starting
  /// epoch per barrier object (kViewBarrierSync) so its local counters
  /// line up with the instances already in flight.
  /// In directory mode (partial replication, docs/DIRECTORY.md) arrivals
  /// carry BOTH per-receiver sent-counts and the arriver's dependency
  /// clock; each release ships the transposed counts plus the merged
  /// clock — arrivers synchronize on counts and merge the clock into
  /// their dependency clock only.
  BarrierManager(net::Fabric& fabric, net::Endpoint self, std::size_t num_procs,
                 std::map<BarrierId, std::vector<ProcId>> members = {},
                 bool count_mode = false,
                 std::optional<std::uint64_t> initial_alive = std::nullopt,
                 bool dir_mode = false);
  ~BarrierManager();

  BarrierManager(const BarrierManager&) = delete;
  BarrierManager& operator=(const BarrierManager&) = delete;

  /// Join the manager thread (mailbox must have been closed).
  void join();

  /// Time from a barrier instance's first arrival to its release
  /// (`barriermgr.assemble_ns` in docs/METRICS.md).
  [[nodiscard]] const LatencyHistogram& assemble_time() const { return assemble_ns_; }
  [[nodiscard]] std::uint64_t releases_sent() const { return releases_.get(); }

  /// Messages the manager thread has dequeued (`barriermgr.heartbeats`) —
  /// see LockManager::heartbeats().
  [[nodiscard]] std::uint64_t heartbeats() const { return heartbeats_.get(); }

  /// Open (unreleased) barrier instances with their occupancy, for the
  /// watchdog's diagnostics ("barrier 0 epoch 2: 3/4 arrived, missing=[p1]").
  [[nodiscard]] std::vector<std::string> dump() const;

  /// Invoked (elastic) once per barrier object when a commit admits a
  /// joiner: (barrier, joiner, first participating epoch).  The op sink
  /// needs it to gate cross-view barrier instances correctly.  Called from
  /// the manager thread without state_mu_ held.
  using JoinListener = std::function<void(BarrierId, ProcId, std::uint64_t)>;
  void set_join_listener(JoinListener listener);

  /// Attach the manager's contention profiler (owned by MixedSystem;
  /// nullptr unless Config::profile).  Records per-barrier-instance
  /// arrival skew.  Set before the fabric starts delivering.
  void set_profiler(obs::ContentionProfiler* p) { profiler_ = p; }

 private:
  void run();
  void handle_arrive(const net::Message& m);
  void handle_view_commit(const net::Message& m);

  struct Instance {
    std::vector<bool> arrived;
    std::size_t count = 0;
    VectorClock merged;
    /// Count mode: each arriver's sent-count vector, kept for transposition.
    std::map<ProcId, std::vector<std::uint64_t>> payloads;
    std::chrono::steady_clock::time_point first_arrival;
  };

  /// The processes participating in barrier object `b`.
  [[nodiscard]] std::vector<ProcId> members_of(BarrierId b) const;
  /// Elastic: the members of instance (b, epoch) under the current view —
  /// configured members, alive, and admitted at or before `epoch`.
  [[nodiscard]] std::vector<ProcId> participants_at(BarrierId b,
                                                    std::uint64_t epoch) const;
  /// Release instance `key` if every current participant has arrived
  /// (vacuously, if membership shrank to none).  Expects state_mu_ held;
  /// erases the instance on release.  Returns true when released.
  bool maybe_release(const std::pair<BarrierId, std::uint64_t>& key);

  net::Fabric& fabric_;
  net::Endpoint self_;
  std::size_t num_procs_;
  bool count_mode_;
  bool dir_mode_;
  bool elastic_ = false;
  std::map<BarrierId, std::vector<ProcId>> members_;
  /// Guards instances_: the manager thread mutates it, the watchdog reads it.
  mutable std::mutex state_mu_;
  std::map<std::pair<BarrierId, std::uint64_t>, Instance> instances_;

  // Elastic membership state (guarded by state_mu_).
  std::uint64_t alive_mask_ = 0;
  std::uint64_t view_epoch_ = 0;
  /// Barrier-local epoch each late joiner participates from; processes
  /// absent here are members since epoch 0.
  std::map<BarrierId, std::map<ProcId, std::uint64_t>> member_from_;
  /// Next unreleased barrier-local epoch per object (maintained on release).
  std::map<BarrierId, std::uint64_t> next_epoch_;
  JoinListener join_listener_;

  LatencyHistogram assemble_ns_;
  Counter releases_;
  obs::ContentionProfiler* profiler_ = nullptr;
  Counter heartbeats_;
  std::thread thread_;
};

}  // namespace mc::dsm
