// Wire protocol of the mixed-consistency DSM (Section 6 of the paper).
//
// Processes broadcast vector-timestamped updates; a lock manager and a
// barrier manager run as ordinary endpoints above the process endpoints.
// Payload layouts are documented per kind; scalar fields a..d are assigned
// per kind below.

#pragma once

#include <cstdint>

#include "common/types.h"
#include "net/fabric.h"

namespace mc::dsm {

enum MsgKind : std::uint16_t {
  /// Memory update broadcast.  a=var, b=value bits, c=write seq (WriteId),
  /// d=flags (kFlagWrite / kFlagIntDelta / kFlagDoubleDelta).
  /// payload = writer's vector clock (num_procs words).
  kUpdate = 1,

  /// Eager-release flush probe.  a=token.  Receiver replies kSyncAck after
  /// the probe is processed (FIFO channels imply all of the sender's prior
  /// updates have been applied to the PRAM view by then).
  kSyncReq = 2,
  /// a=token.
  kSyncAck = 3,

  /// Demand-driven fetch of a lock-protected variable.  a=var, b=token.
  kFetchReq = 4,
  /// a=var, b=token, c=value bits, d=(writer<<32)|unused; payload =
  /// [write seq, variable's vector clock...].
  kFetchResp = 5,

  /// a=lock, b=request kind (0=read, 1=write).
  kLockReq = 6,
  /// a=lock, b=episode, c=releasing endpoint (kNoEndpoint if none yet),
  /// d=digest length k; payload = [release vector clock (num_procs words),
  /// k invalid-variable descriptors (var, owner) pairs].
  kLockGrant = 7,
  /// a=lock, b=request kind, d=digest length k; payload = [holder's vector
  /// clock, k written-variable ids].
  kUnlock = 8,

  /// a=barrier object, b=epoch; payload = arriving process's vector clock.
  kBarrierArrive = 9,
  /// a=barrier object, b=epoch; payload = merged vector clock of all
  /// arrivals.
  kBarrierRelease = 10,

  /// Framed batch of coalesced memory updates (Config::batching).
  /// a = record count N; payload = shared base clock + N (var, value,
  /// flags, seq, weight, vc-delta) records with vector clocks delta-encoded
  /// against the base clock — exact layout in dsm/batch.h.  A receiver
  /// applies the whole batch atomically and tolerates per-sender sequence
  /// gaps (coalescing collapses superseded writes), unlike kUpdate's
  /// strict +1 FIFO check.
  kBatch = 11,
};

/// Lock request kinds carried in kLockReq/kUnlock (field b).
enum class LockRequestKind : std::uint64_t { kRead = 0, kWrite = 1 };

enum UpdateFlags : std::uint64_t {
  kFlagWrite = 0,
  kFlagIntDelta = 1,
  kFlagDoubleDelta = 2,
};

/// Register human-readable kind names on a fabric (metrics keys).
inline void register_kind_names(net::Fabric& fabric) {
  fabric.name_kind(kUpdate, "update");
  fabric.name_kind(kSyncReq, "sync_req");
  fabric.name_kind(kSyncAck, "sync_ack");
  fabric.name_kind(kFetchReq, "fetch_req");
  fabric.name_kind(kFetchResp, "fetch_resp");
  fabric.name_kind(kLockReq, "lock_req");
  fabric.name_kind(kLockGrant, "lock_grant");
  fabric.name_kind(kUnlock, "unlock");
  fabric.name_kind(kBarrierArrive, "barrier_arrive");
  fabric.name_kind(kBarrierRelease, "barrier_release");
  fabric.name_kind(kBatch, "batch");
}

}  // namespace mc::dsm
