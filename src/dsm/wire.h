// Wire protocol of the mixed-consistency DSM (Section 6 of the paper).
//
// Processes broadcast vector-timestamped updates; a lock manager and a
// barrier manager run as ordinary endpoints above the process endpoints.
// Payload layouts are documented per kind; scalar fields a..d are assigned
// per kind below.

#pragma once

#include <cstdint>

#include "common/types.h"
#include "net/fabric.h"

namespace mc::dsm {

enum MsgKind : std::uint16_t {
  /// Memory update broadcast.  a=var, b=value bits, c=write seq (WriteId),
  /// d=flags (kFlagWrite / kFlagIntDelta / kFlagDoubleDelta).
  /// payload = writer's vector clock (num_procs words); elastic runs
  /// append one more word, the writer's view epoch, which joins the
  /// concurrent-write LWW tiebreak (store.cpp).
  kUpdate = 1,

  /// Eager-release flush probe.  a=token.  Receiver replies kSyncAck after
  /// the probe is processed (FIFO channels imply all of the sender's prior
  /// updates have been applied to the PRAM view by then).
  kSyncReq = 2,
  /// a=token.
  kSyncAck = 3,

  /// Demand-driven fetch of a lock-protected variable.  a=var, b=token.
  kFetchReq = 4,
  /// a=var, b=token, c=value bits, d=(writer<<32)|unused; payload =
  /// [write seq, variable's vector clock...].
  kFetchResp = 5,

  /// a=lock, b=request kind (0=read, 1=write).
  kLockReq = 6,
  /// a=lock, b=episode, c=releasing endpoint (kNoEndpoint if none yet),
  /// d=digest length k; payload = [release vector clock (num_procs words),
  /// k invalid-variable descriptors (var, owner) pairs].
  kLockGrant = 7,
  /// a=lock, b=request kind, d=digest length k; payload = [holder's vector
  /// clock, k written-variable ids].
  kUnlock = 8,

  /// a=barrier object, b=epoch; payload = arriving process's vector clock.
  kBarrierArrive = 9,
  /// a=barrier object, b=epoch; payload = merged vector clock of all
  /// arrivals.
  kBarrierRelease = 10,

  /// Framed batch of coalesced memory updates (Config::batching).
  /// a = record count N; payload = shared base clock + N (var, value,
  /// flags, seq, weight, vc-delta) records with vector clocks delta-encoded
  /// against the base clock — exact layout in dsm/batch.h.  A receiver
  /// applies the whole batch atomically and tolerates per-sender sequence
  /// gaps (coalescing collapses superseded writes), unlike kUpdate's
  /// strict +1 FIFO check.
  kBatch = 11,

  // --- elastic membership (dsm/view.h, docs/FAULTS.md) -------------------
  // The view manager is colocated with the lock manager endpoint; all view
  // traffic flows through it.

  /// Fault report: the reliability layer gave up on a peer.  a=suspect
  /// process.  Sent node -> view manager.
  kViewFault = 12,
  /// Join request.  a=joining process.  Sent joiner -> view manager.
  kViewJoin = 13,
  /// Graceful-leave request.  a=leaving process.  Sent leaver -> manager.
  kViewLeave = 14,
  /// View proposal.  a=proposed epoch, b=proposed alive mask, c=previous
  /// alive mask.  Multicast manager -> members of the proposed view.
  kViewPropose = 15,
  /// View acknowledgement.  a=acked epoch; payload = the acker's applied
  /// vector clock snapshot (num_procs words), taken after flushing its
  /// staging buffers — the manager uses it to pick re-seed donors.
  kViewAck = 16,
  /// View commit.  a=epoch, b=alive mask, c=joiner (~0 if none),
  /// d=re-seed assignment count k; payload = k (departed proc, donor proc)
  /// pairs.  Multicast manager -> view members and the barrier manager.
  kViewCommit = 17,
  /// Re-seed / join snapshot transfer.  a=record count N, b=epoch,
  /// c=flavour (0=re-seed to survivors, 1=donor full snapshot to the
  /// joiner, 2=survivor self-backfill to the joiner); payload = N (var,
  /// value bits, writer, seq, delta-touched flag, write epoch,
  /// vc[num_procs]) records.  Counter baselines install verbatim;
  /// everything else LWW-applies (and the write epoch joins the
  /// concurrent-write tiebreak — see store.cpp).
  kViewState = 18,
  /// Barrier-epoch sync for a joiner.  a=pair count N, b=epoch; payload =
  /// N (barrier, next local epoch) pairs so the joiner's local barrier
  /// counters line up with the instances already in flight.
  kViewBarrierSync = 19,
  /// Survivor -> joiner FIFO baseline.  a=sender's write counter, b=epoch;
  /// payload = sender's dependency clock.  Sent atomically with adding the
  /// joiner to the sender's broadcast set, so the joiner can initialise its
  /// per-sender FIFO expectation and applied floor for that component.
  kViewHello = 20,
};

/// Lock request kinds carried in kLockReq/kUnlock (field b).
enum class LockRequestKind : std::uint64_t { kRead = 0, kWrite = 1 };

enum UpdateFlags : std::uint64_t {
  kFlagWrite = 0,
  kFlagIntDelta = 1,
  kFlagDoubleDelta = 2,
};

/// Register human-readable kind names on a fabric (metrics keys).
inline void register_kind_names(net::Fabric& fabric) {
  fabric.name_kind(kUpdate, "update");
  fabric.name_kind(kSyncReq, "sync_req");
  fabric.name_kind(kSyncAck, "sync_ack");
  fabric.name_kind(kFetchReq, "fetch_req");
  fabric.name_kind(kFetchResp, "fetch_resp");
  fabric.name_kind(kLockReq, "lock_req");
  fabric.name_kind(kLockGrant, "lock_grant");
  fabric.name_kind(kUnlock, "unlock");
  fabric.name_kind(kBarrierArrive, "barrier_arrive");
  fabric.name_kind(kBarrierRelease, "barrier_release");
  fabric.name_kind(kBatch, "batch");
  fabric.name_kind(kViewFault, "view_fault");
  fabric.name_kind(kViewJoin, "view_join");
  fabric.name_kind(kViewLeave, "view_leave");
  fabric.name_kind(kViewPropose, "view_propose");
  fabric.name_kind(kViewAck, "view_ack");
  fabric.name_kind(kViewCommit, "view_commit");
  fabric.name_kind(kViewState, "view_state");
  fabric.name_kind(kViewBarrierSync, "view_barrier_sync");
  fabric.name_kind(kViewHello, "view_hello");
}

}  // namespace mc::dsm
