// Wire protocol of the mixed-consistency DSM (Section 6 of the paper).
//
// Processes broadcast vector-timestamped updates; a lock manager and a
// barrier manager run as ordinary endpoints above the process endpoints.
// Payload layouts are documented per kind; scalar fields a..d are assigned
// per kind below.

#pragma once

#include <cstdint>

#include "common/types.h"
#include "net/fabric.h"

namespace mc::dsm {

enum MsgKind : std::uint16_t {
  /// Memory update broadcast.  a=var, b=value bits, c=write seq (WriteId),
  /// d=flags (kFlagWrite / kFlagIntDelta / kFlagDoubleDelta).
  /// payload = writer's vector clock (num_procs words); elastic runs
  /// append one more word, the writer's view epoch, which joins the
  /// concurrent-write LWW tiebreak (store.cpp).
  kUpdate = 1,

  /// Eager-release flush probe.  a=token.  Receiver replies kSyncAck after
  /// the probe is processed (FIFO channels imply all of the sender's prior
  /// updates have been applied to the PRAM view by then).
  kSyncReq = 2,
  /// a=token.
  kSyncAck = 3,

  /// Demand-driven fetch of a lock-protected variable.  a=var, b=token.
  kFetchReq = 4,
  /// a=var, b=token, c=value bits, d=(writer<<32)|unused; payload =
  /// [write seq, variable's vector clock...].
  kFetchResp = 5,

  /// a=lock, b=request kind (0=read, 1=write).
  kLockReq = 6,
  /// a=lock, b=episode, c=releasing endpoint (kNoEndpoint if none yet),
  /// d=digest length k; payload = [release vector clock (num_procs words),
  /// k invalid-variable descriptors (var, owner) pairs].  Directory mode
  /// prepends num_procs per-sender unlock sent-counts before the clock.
  kLockGrant = 7,
  /// a=lock, b=request kind, d=digest length k; payload = [holder's vector
  /// clock, k written-variable ids].  Directory mode prepends the holder's
  /// num_procs sent-to counts before the clock.
  kUnlock = 8,

  /// a=barrier object, b=epoch; payload = arriving process's vector clock
  /// (directory mode: sent-to counts first, then the dependency clock).
  kBarrierArrive = 9,
  /// a=barrier object, b=epoch; payload = merged vector clock of all
  /// arrivals (directory mode: transposed per-sender counts first, then
  /// the merged clock).
  kBarrierRelease = 10,

  /// Framed batch of coalesced memory updates (Config::batching).
  /// a = record count N; payload = shared base clock + N (var, value,
  /// flags, seq, weight, vc-delta) records with vector clocks delta-encoded
  /// against the base clock — exact layout in dsm/batch.h.  A receiver
  /// applies the whole batch atomically and tolerates per-sender sequence
  /// gaps (coalescing collapses superseded writes), unlike kUpdate's
  /// strict +1 FIFO check.  Directory mode stamps b = the sender's write
  /// counter at flush time — the receiver's resolved frontier (node.h).
  kBatch = 11,

  // --- elastic membership (dsm/view.h, docs/FAULTS.md) -------------------
  // The view manager is colocated with the lock manager endpoint; all view
  // traffic flows through it.

  /// Fault report: the reliability layer gave up on a peer.  a=suspect
  /// process.  Sent node -> view manager.
  kViewFault = 12,
  /// Join request.  a=joining process.  Sent joiner -> view manager.
  kViewJoin = 13,
  /// Graceful-leave request.  a=leaving process.  Sent leaver -> manager.
  kViewLeave = 14,
  /// View proposal.  a=proposed epoch, b=proposed alive mask, c=previous
  /// alive mask.  Multicast manager -> members of the proposed view.
  kViewPropose = 15,
  /// View acknowledgement.  a=acked epoch; payload = the acker's applied
  /// vector clock snapshot (num_procs words), taken after flushing its
  /// staging buffers — the manager uses it to pick re-seed donors.
  kViewAck = 16,
  /// View commit.  a=epoch, b=alive mask, c=joiner (~0 if none),
  /// d=re-seed assignment count k; payload = k (departed proc, donor proc)
  /// pairs.  Multicast manager -> view members and the barrier manager.
  kViewCommit = 17,
  /// Re-seed / join snapshot transfer.  a=record count N, b=epoch,
  /// c=flavour (0=re-seed to survivors, 1=donor full snapshot to the
  /// joiner, 2=survivor self-backfill to the joiner); payload = N (var,
  /// value bits, writer, seq, delta-touched flag, write epoch,
  /// vc[num_procs]) records.  Counter baselines install verbatim;
  /// everything else LWW-applies (and the write epoch joins the
  /// concurrent-write tiebreak — see store.cpp).
  kViewState = 18,
  /// Barrier-epoch sync for a joiner.  a=pair count N, b=epoch; payload =
  /// N (barrier, next local epoch) pairs so the joiner's local barrier
  /// counters line up with the instances already in flight.
  kViewBarrierSync = 19,
  /// Survivor -> joiner FIFO baseline.  a=sender's write counter, b=epoch;
  /// payload = sender's dependency clock.  Sent atomically with adding the
  /// joiner to the sender's broadcast set, so the joiner can initialise its
  /// per-sender FIFO expectation and applied floor for that component.
  kViewHello = 20,

  // --- directory-based partial replication (docs/DIRECTORY.md) -----------
  // Every variable has a *home* node; updates multicast only to registered
  // sharers plus the home, and replicas demand-page in on first read.

  /// Bulk fill request: requester -> home.  a=var count N, b=fill token
  /// (requester-local), c=requester's view epoch (0 outside elastic mode);
  /// payload = N variable ids (the missing variable plus same-home
  /// prefetch candidates).  A home behind the stamped epoch defers the
  /// request until its own commit catches up.
  kFetchBulkReq = 21,
  /// Bulk fill reply: home -> requester.  a=record count N, b=fill token;
  /// payload = batch-codec frame (dsm/batch.h) of N records carrying
  /// value, writer, seq, delta-encoded vector clock, write epoch, counter
  /// baseline flag, and staleness baseline per variable.
  kFetchBulkResp = 22,
  /// Sharer registration, home-serialized.  a=var count N, b=fill token,
  /// c=requesting process, d=home's view epoch; payload = N variable ids.
  /// Multicast home -> every other live node; each receiver updates its
  /// directory mirror, flushes staged updates, and acks (deferring until
  /// its own view epoch catches up to d, so re-homing offers staged at
  /// that commit flush under the fence).
  kDirSharerAdd = 23,
  /// Registration ack: node -> home.  a=fill token, b=requesting process
  /// (tokens are requester-local).  FIFO-ordered behind the acker's
  /// flushed updates, so the home's fill snapshot includes every write
  /// that causally precedes the requester's read floor.
  kDirAck = 24,
  /// Eviction deregistration: evictor -> home.  a=var count N; payload =
  /// N variable ids.
  kDirUnregister = 25,
  /// Sharer removal fan-out: home -> other live nodes.  a=var count N,
  /// c=evicting process; payload = N variable ids.
  kDirSharerDel = 26,
  /// Write-frontier probe for a blocked read.  No fields: the receiver
  /// flushes its staged updates and replies with its write counter.
  kFrontierReq = 27,
  /// a=responder's write counter, FIFO-ordered behind its flushed updates.
  kFrontierResp = 28,
  /// Joiner directory sync: each home -> joiner at view commit.  a=pair
  /// count N, b=view epoch; payload = N (var, sharer mask) pairs for the
  /// sender's own homed variables (authoritative).
  kDirSharerSync = 29,
};

/// Lock request kinds carried in kLockReq/kUnlock (field b).
enum class LockRequestKind : std::uint64_t { kRead = 0, kWrite = 1 };

enum UpdateFlags : std::uint64_t {
  kFlagWrite = 0,
  kFlagIntDelta = 1,
  kFlagDoubleDelta = 2,

  /// Mask selecting the operation out of a flags word; the bits above it
  /// are batch-codec record options (dsm/batch.h) that travel with fill
  /// frames and elastic batches.
  kFlagOpMask = 0x7,
  /// Install the record verbatim as a counter baseline (delta-touched
  /// entry shipped whole), bypassing the LWW guard.
  kFlagCounterBase = 0x08,
  /// Record carries an explicit writer word (defaults to the frame sender).
  kFlagHasWriter = 0x10,
  /// Record carries the write's view epoch (elastic LWW tiebreak).
  kFlagHasEpoch = 0x20,
  /// Record carries a staleness baseline (issued-write count at the home).
  kFlagHasBaseline = 0x40,
};

/// Register human-readable kind names on a fabric (metrics keys).
inline void register_kind_names(net::Fabric& fabric) {
  fabric.name_kind(kUpdate, "update");
  fabric.name_kind(kSyncReq, "sync_req");
  fabric.name_kind(kSyncAck, "sync_ack");
  fabric.name_kind(kFetchReq, "fetch_req");
  fabric.name_kind(kFetchResp, "fetch_resp");
  fabric.name_kind(kLockReq, "lock_req");
  fabric.name_kind(kLockGrant, "lock_grant");
  fabric.name_kind(kUnlock, "unlock");
  fabric.name_kind(kBarrierArrive, "barrier_arrive");
  fabric.name_kind(kBarrierRelease, "barrier_release");
  fabric.name_kind(kBatch, "batch");
  fabric.name_kind(kViewFault, "view_fault");
  fabric.name_kind(kViewJoin, "view_join");
  fabric.name_kind(kViewLeave, "view_leave");
  fabric.name_kind(kViewPropose, "view_propose");
  fabric.name_kind(kViewAck, "view_ack");
  fabric.name_kind(kViewCommit, "view_commit");
  fabric.name_kind(kViewState, "view_state");
  fabric.name_kind(kViewBarrierSync, "view_barrier_sync");
  fabric.name_kind(kViewHello, "view_hello");
  fabric.name_kind(kFetchBulkReq, "fetch_bulk_req");
  fabric.name_kind(kFetchBulkResp, "fetch_bulk_resp");
  fabric.name_kind(kDirSharerAdd, "dir_sharer_add");
  fabric.name_kind(kDirAck, "dir_ack");
  fabric.name_kind(kDirUnregister, "dir_unregister");
  fabric.name_kind(kDirSharerDel, "dir_sharer_del");
  fabric.name_kind(kFrontierReq, "frontier_req");
  fabric.name_kind(kFrontierResp, "frontier_resp");
  fabric.name_kind(kDirSharerSync, "dir_sharer_sync");
}

}  // namespace mc::dsm
