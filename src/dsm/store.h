// A replicated-memory view: the per-process copy of every shared location
// together with the metadata the consistency machinery needs.
//
// Each node keeps *two* Store views fed by the same update stream (see
// DESIGN.md §6.1): the PRAM view applies updates in per-sender FIFO arrival
// order, the causal view applies them in vector-timestamp order.  A read's
// label selects the view, implementing Section 6's "a causal read can
// return a value only if all preceding operations have been performed
// locally; a PRAM read returns the most recent value".

#pragma once

#include <vector>

#include "common/types.h"
#include "common/vector_clock.h"
#include "dsm/wire.h"

namespace mc::dsm {

struct VarEntry {
  Value value = 0;
  WriteId last = kInitialWrite;
  /// Vector clock of the update that produced this value (for deltas, the
  /// merge of all applied updates).  Empty until first touched, and unused
  /// in timestamp-elided (count-vector) mode.
  VectorClock vc;
  /// Count-vector mode: how many updates from the writing sender this
  /// replica had applied when this value landed — the per-receiver count
  /// the Section 6 protocol synchronizes on.
  std::uint64_t arrival = 0;
};

class Store {
 public:
  Store(std::size_t num_vars, std::size_t num_procs)
      : num_procs_(num_procs), entries_(num_vars) {}

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] const VarEntry& entry(VarId x) const {
    MC_CHECK(x < entries_.size());
    return entries_[x];
  }

  /// Apply an update (write or delta) with the given flags.  Writes
  /// overwrite; deltas subtract and merge metadata.  `arrival` is the
  /// count-vector-mode receive index (0 for local writes and VC mode).
  void apply(VarId x, Value value, std::uint64_t flags, WriteId id, const VectorClock& vc,
             std::uint64_t arrival = 0);

  /// Install an out-of-band value (demand-driven fetch response).
  void install(VarId x, Value value, WriteId id, const VectorClock& vc);

 private:
  std::size_t num_procs_;
  std::vector<VarEntry> entries_;
};

}  // namespace mc::dsm
