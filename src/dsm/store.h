// A replicated-memory view: the per-process copy of every shared location
// together with the metadata the consistency machinery needs.
//
// Each node keeps ONE Store (see DESIGN.md §6.1): updates apply in
// vector-timestamp (causally-ready) order, and each variable behaves as a
// last-writer-wins register under a total order extending causality (see
// apply() in store.cpp).  A read's label selects which *floor* it blocks
// on before returning the copy's value, implementing Section 6's "a causal
// read can return a value only if all preceding operations have been
// performed locally; a PRAM read returns the most recent value".

#pragma once

#include <vector>

#include "common/types.h"
#include "common/vector_clock.h"
#include "dsm/wire.h"

namespace mc::dsm {

struct VarEntry {
  Value value = 0;
  WriteId last = kInitialWrite;
  /// Vector clock of the update that produced this value (for deltas, the
  /// merge of all applied updates).  Empty until first touched, and unused
  /// in timestamp-elided (count-vector) mode.
  VectorClock vc;
  /// Count-vector mode: how many updates from the writing sender this
  /// replica had applied when this value landed — the per-receiver count
  /// the Section 6 protocol synchronizes on.
  std::uint64_t arrival = 0;
  /// Writes/deltas to this location this replica has *received* (counting
  /// coalesced batch records by weight, and writes a newer value superseded
  /// — reception accounting, not value accounting).  The read-staleness
  /// monitor (dsm/staleness.h) subtracts this from the global issue counter
  /// to get the version lag of a returned value.
  std::uint64_t applied_writes = 0;
  /// Ever updated by a commutative delta.  Elastic re-mastering skips such
  /// entries: a counter's value is a *sum* of per-replica applications, so
  /// no single replica's copy is a re-seedable LWW winner (docs/FAULTS.md).
  bool delta_touched = false;
  /// View epoch the winning write was issued under (0 outside elastic
  /// mode).  Concurrent writes from different epochs are arbitrated
  /// epoch-first (see apply() in store.cpp): a crash-stopped process's
  /// partially-delivered last write is concurrent with a new-view
  /// overwrite of the same variable, and the re-seed must not resurrect
  /// it over the overwrite at replicas that already applied the newer one.
  std::uint64_t epoch = 0;
};

class Store {
 public:
  Store(std::size_t num_vars, std::size_t num_procs)
      : num_procs_(num_procs), entries_(num_vars) {}

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] const VarEntry& entry(VarId x) const {
    MC_CHECK(x < entries_.size());
    return entries_[x];
  }

  /// Apply an update (write or delta) with the given flags.  Writes make
  /// the entry a last-writer-wins register under a total order extending
  /// causality (see store.cpp), so the PRAM and causal views converge on
  /// the same winner regardless of apply order; deltas subtract and merge
  /// metadata.  `arrival` is the count-vector-mode receive index (0 for
  /// local writes and VC mode).  `force` bypasses the write ordering —
  /// only for demand-policy migratory writes, whose clocks are not ticked.
  /// `weight` is how many original updates this record stands for (> 1 for
  /// coalesced batch records) — it advances the entry's applied_writes.
  /// `epoch` is the view epoch the write was issued under (0 outside
  /// elastic mode); concurrent writes are arbitrated epoch-first.
  void apply(VarId x, Value value, std::uint64_t flags, WriteId id, const VectorClock& vc,
             std::uint64_t arrival = 0, bool force = false, std::uint64_t weight = 1,
             std::uint64_t epoch = 0);

  /// Install an out-of-band value (demand-driven fetch response, or a
  /// joiner's elastic state-transfer snapshot — the latter propagates the
  /// donor's delta_touched flag so later re-seeds keep skipping counters).
  void install(VarId x, Value value, WriteId id, const VectorClock& vc,
               bool delta_touched = false, std::uint64_t epoch = 0);

  /// Reset the staleness baseline after a fetch installed the owner's
  /// up-to-date copy (see VarEntry::applied_writes).
  void set_applied_writes(VarId x, std::uint64_t n) {
    MC_CHECK(x < entries_.size());
    entries_[x].applied_writes = n;
  }

  /// Drop the replica (directory-mode eviction): the entry resets to its
  /// initial state and a later read must demand-page a fresh copy in.
  void evict(VarId x) {
    MC_CHECK(x < entries_.size());
    entries_[x] = VarEntry{};
  }

 private:
  std::size_t num_procs_;
  std::vector<VarEntry> entries_;
};

}  // namespace mc::dsm
