// MixedSystem: one mixed-consistency DSM instance — the processes, the
// simulated fabric connecting them, and the lock/barrier manager processes
// of Section 6 — with lifecycle management, metrics aggregation, and trace
// collection.

#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "dsm/barrier_manager.h"
#include "dsm/config.h"
#include "dsm/lock_manager.h"
#include "dsm/node.h"
#include "dsm/staleness.h"
#include "dsm/watchdog.h"
#include "history/history.h"

namespace mc::dsm {

class MixedSystem {
 public:
  explicit MixedSystem(Config cfg);
  ~MixedSystem();

  MixedSystem(const MixedSystem&) = delete;
  MixedSystem& operator=(const MixedSystem&) = delete;

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] std::size_t num_procs() const { return cfg_.num_procs; }

  [[nodiscard]] Node& node(ProcId p);

  /// Run `body(node, p)` on one thread per process and join them all.
  /// May be called repeatedly (phased programs).
  void run(const std::function<void(Node&, ProcId)>& body);

  /// Outcome of a watchdog-supervised run: whether it stalled, and the
  /// watchdog's dump if it did (embedded in RunReport "diagnostics").
  struct RunOutcome {
    bool stalled = false;
    Watchdog::Diagnostics diagnostics;
  };

  /// Like run(), but supervised by a watchdog with the given stall
  /// deadline: a wedged program (lost messages, partitioned manager, lock
  /// deadlock) terminates with diagnostics instead of hanging the caller.
  /// Application threads unwind via StallError on the watchdog firing.
  RunOutcome run(const std::function<void(Node&, ProcId)>& body,
                 std::chrono::nanoseconds timeout);

  // ----- elastic membership (Config::elastic; dsm/view.h) -----

  /// Admit process p into the current view (blocks until the join
  /// handshake completes — see Node::join).  p must have been left out of
  /// Config::initial_members.
  void join(ProcId p) { node(p).join(); }

  /// Remove process p gracefully (blocks until a view without it commits).
  void leave(ProcId p) { node(p).leave(); }

  /// The view manager's current committed view.
  [[nodiscard]] View view() const;

  /// Merge the per-process traces recorded so far into a formal history
  /// (requires Config::record_trace).
  [[nodiscard]] history::History collect_history() const;

  /// Fabric- and node-level metrics (messages, bytes, blocked time).
  [[nodiscard]] MetricsSnapshot metrics() const;

  /// Merged contention profile across every node and both managers
  /// (Config::profile; src/obs/profiler.h).  Safe to call while the
  /// system runs — each per-component profiler is snapshotted under its
  /// own mutex.  Returns an empty report when profiling is off.
  [[nodiscard]] obs::ProfileReport profile() const;

  /// Attach a live operation sink to every node (nullptr detaches).  The
  /// sink sees each operation as it completes (obs/op_sink.h) — this is how
  /// an online ConsistencyMonitor observes the run.  Attach before run();
  /// the sink must outlive the system or be detached first.
  void attach_op_sink(obs::OpSink* sink);

  /// Expected member count per subset barrier (Config::barrier_members),
  /// in the shape ConsistencyMonitor wants.
  [[nodiscard]] std::map<BarrierId, std::size_t> barrier_membership() const;

  [[nodiscard]] net::Fabric& fabric() { return fabric_; }

  /// Stop managers and delivery threads.  Called by the destructor;
  /// idempotent.  No public API may be used afterwards.
  void shutdown();

 private:
  Config cfg_;
  net::Fabric fabric_;
  std::unique_ptr<LockManager> lock_manager_;
  std::unique_ptr<BarrierManager> barrier_manager_;
  /// Issued-write counters shared by every node (Config::track_staleness).
  std::unique_ptr<StalenessTable> staleness_;
  /// Contention profilers (Config::profile): one per node, then one per
  /// manager (lock, barrier) — merged by profile().  Empty when off.
  std::vector<std::unique_ptr<obs::ContentionProfiler>> profilers_;
  std::vector<std::unique_ptr<Node>> nodes_;
  /// The attached live sink (attach_op_sink); the elastic view listeners
  /// forward membership events to it from manager threads.
  std::atomic<obs::OpSink*> op_sink_{nullptr};
  bool down_ = false;
};

}  // namespace mc::dsm
