// Lock manager process (Section 6): every lock object is mapped to a
// manager that accepts lock/unlock requests and serializes ownership into
// *episodes* — each write tenure is one episode, each maximal group of
// concurrently admitted readers shares one.  Episode numbers define the
// |-> lock synchronization order recorded in traces.
//
// Consistency metadata travels with the protocol (lazy/demand policies):
// an unlock carries the releaser's vector clock (and, for demand-driven
// locks, the set of variables written in the critical section); the next
// grant forwards the accumulated release clock, the previous episode's
// holder set, and the invalid-variable digest.

#pragma once

#include <chrono>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/vector_clock.h"
#include "dsm/watchdog.h"
#include "dsm/wire.h"
#include "net/fabric.h"

namespace mc::dsm {

class LockManager {
 public:
  /// In count mode (timestamp-elided systems) unlocks carry per-receiver
  /// sent-update counts and each grant ships, per sender, the count the
  /// acquirer must have received — Section 6's lazy implementation.
  LockManager(net::Fabric& fabric, net::Endpoint self, std::size_t num_procs,
              bool count_mode = false);
  ~LockManager();

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  void join();

  /// Time a request spent queued at the manager before its grant was sent
  /// (`lockmgr.grant_wait_ns` in docs/METRICS.md).
  [[nodiscard]] const LatencyHistogram& grant_wait() const { return grant_wait_ns_; }
  [[nodiscard]] std::uint64_t grants_sent() const { return grants_.get(); }

  /// Messages the manager thread has dequeued (`lockmgr.heartbeats`).  A
  /// heartbeat that freezes while the manager's mailbox has pending traffic
  /// is a wedged manager thread — the watchdog's manager probe
  /// (Watchdog::set_manager_probe) flags it directly.
  [[nodiscard]] std::uint64_t heartbeats() const { return heartbeats_.get(); }

  /// Wait-for edges of the current lock table (each queued requester waits
  /// for every current holder) — the watchdog's deadlock probe.
  [[nodiscard]] std::vector<Watchdog::WaitEdge> wait_edges() const;

  /// Human-readable dump of every lock with holders or waiters, for the
  /// watchdog's diagnostics ("lock 3: mode=write episode=5 holders=[p1]
  /// queue=[p0(w) p2(r)]").
  [[nodiscard]] std::vector<std::string> dump() const;

 private:
  struct Request {
    net::Endpoint who;
    LockRequestKind kind;
    std::chrono::steady_clock::time_point enqueued;
  };

  enum class Mode { kFree, kRead, kWrite };

  struct LockState {
    Mode mode = Mode::kFree;
    std::set<net::Endpoint> holders;
    std::deque<Request> queue;
    std::uint64_t episode = 0;
    VectorClock release_vc;  // cumulative merge of unlock clocks
    /// Count mode: each endpoint's latest unlock sent-count vector.
    std::map<net::Endpoint, std::vector<std::uint64_t>> unlock_counts;
    std::uint64_t prev_holders_mask = 0;  // endpoints of the finished episode
    std::uint64_t current_unlockers_mask = 0;
    std::map<VarId, net::Endpoint> ownership;  // demand-driven: var -> owner
  };

  void run();
  void handle_request(const net::Message& m);
  void handle_unlock(const net::Message& m);
  void try_grant(LockId id, LockState& lock);
  void send_grant(LockId id, LockState& lock, const Request& req);

  net::Fabric& fabric_;
  net::Endpoint self_;
  std::size_t num_procs_;
  bool count_mode_;
  /// Guards locks_: the manager thread mutates it, the watchdog reads it.
  mutable std::mutex state_mu_;
  std::map<LockId, LockState> locks_;
  LatencyHistogram grant_wait_ns_;
  Counter grants_;
  Counter heartbeats_;
  std::thread thread_;
};

}  // namespace mc::dsm
