// Lock manager process (Section 6): every lock object is mapped to a
// manager that accepts lock/unlock requests and serializes ownership into
// *episodes* — each write tenure is one episode, each maximal group of
// concurrently admitted readers shares one.  Episode numbers define the
// |-> lock synchronization order recorded in traces.
//
// Consistency metadata travels with the protocol (lazy/demand policies):
// an unlock carries the releaser's vector clock (and, for demand-driven
// locks, the set of variables written in the critical section); the next
// grant forwards the accumulated release clock, the previous episode's
// holder set, and the invalid-variable digest.

#pragma once

#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/vector_clock.h"
#include "dsm/view.h"
#include "dsm/watchdog.h"
#include "dsm/wire.h"
#include "net/fabric.h"
#include "obs/profiler.h"

namespace mc::dsm {

class LockManager {
 public:
  /// In count mode (timestamp-elided systems) unlocks carry per-receiver
  /// sent-update counts and each grant ships, per sender, the count the
  /// acquirer must have received — Section 6's lazy implementation.
  ///
  /// With `initial_alive` the manager doubles as the *view manager*
  /// (dsm/view.h): it distributes epoch-stamped membership views in a
  /// propose/ack/commit exchange on fault reports, joins, and leaves, and
  /// re-masters lock state at each commit (dead holders revoked to their
  /// episode boundary, dead requests purged, dead demand-ownership
  /// dropped).  The mask names view 0's members; the barrier manager is
  /// assumed at endpoint self+1 (MixedSystem's layout).
  ///
  /// In directory mode (partial replication, docs/DIRECTORY.md) unlocks
  /// carry BOTH per-receiver sent-counts and the releaser's dependency
  /// clock, and each grant ships counts plus the merged release clock —
  /// the acquirer synchronizes on counts and merges the clock into its
  /// dependency clock only (no read-floor raise).
  LockManager(net::Fabric& fabric, net::Endpoint self, std::size_t num_procs,
              bool count_mode = false,
              std::optional<std::uint64_t> initial_alive = std::nullopt,
              bool dir_mode = false);
  ~LockManager();

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  void join();

  /// Time a request spent queued at the manager before its grant was sent
  /// (`lockmgr.grant_wait_ns` in docs/METRICS.md).
  [[nodiscard]] const LatencyHistogram& grant_wait() const { return grant_wait_ns_; }
  [[nodiscard]] std::uint64_t grants_sent() const { return grants_.get(); }

  /// Messages the manager thread has dequeued (`lockmgr.heartbeats`).  A
  /// heartbeat that freezes while the manager's mailbox has pending traffic
  /// is a wedged manager thread — the watchdog's manager probe
  /// (Watchdog::set_manager_probe) flags it directly.
  [[nodiscard]] std::uint64_t heartbeats() const { return heartbeats_.get(); }

  /// Wait-for edges of the current lock table (each queued requester waits
  /// for every current holder) — the watchdog's deadlock probe.
  [[nodiscard]] std::vector<Watchdog::WaitEdge> wait_edges() const;

  /// Human-readable dump of every lock with holders or waiters, for the
  /// watchdog's diagnostics ("lock 3: mode=write episode=5 holders=[p1]
  /// queue=[p0(w) p2(r)]").
  [[nodiscard]] std::vector<std::string> dump() const;

  // --- view manager (elastic membership, dsm/view.h) ---

  [[nodiscard]] bool elastic() const { return elastic_; }
  /// Current committed view.
  [[nodiscard]] View view() const;
  [[nodiscard]] std::string view_string() const { return view().to_string(); }

  /// Invoked — from the manager thread, without state_mu_ held — right
  /// after each view commit has been multicast.  `departed_mask` names the
  /// processes removed by this commit; `joiner` is kNoProc unless this
  /// commit admits one.  MixedSystem uses it to silence dead reliable
  /// channels and to inform the op sink.
  using ViewListener =
      std::function<void(const View&, std::uint64_t departed_mask, ProcId joiner)>;
  void set_view_listener(ViewListener listener);

  // view.* accounting (docs/METRICS.md)
  [[nodiscard]] std::uint64_t view_changes() const { return view_changes_.get(); }
  [[nodiscard]] std::uint64_t view_joins() const { return view_joins_.get(); }
  [[nodiscard]] std::uint64_t view_leaves() const { return view_leaves_.get(); }
  [[nodiscard]] std::uint64_t view_faults() const { return view_faults_.get(); }
  [[nodiscard]] std::uint64_t locks_revoked() const { return locks_revoked_.get(); }
  [[nodiscard]] std::uint64_t reseed_assignments() const { return reseed_assignments_.get(); }

  /// Attach the manager's contention profiler (owned by MixedSystem;
  /// nullptr unless Config::profile).  The manager records queue depth,
  /// contention (a request that could not be granted on arrival) and
  /// cross-process handoffs.  Set before the fabric starts delivering.
  void set_profiler(obs::ContentionProfiler* p) { profiler_ = p; }

 private:
  struct Request {
    net::Endpoint who;
    LockRequestKind kind;
    std::chrono::steady_clock::time_point enqueued;
  };

  enum class Mode { kFree, kRead, kWrite };

  struct LockState {
    Mode mode = Mode::kFree;
    std::set<net::Endpoint> holders;
    std::deque<Request> queue;
    std::uint64_t episode = 0;
    VectorClock release_vc;  // cumulative merge of unlock clocks
    /// Count mode: each endpoint's latest unlock sent-count vector.
    std::map<net::Endpoint, std::vector<std::uint64_t>> unlock_counts;
    std::uint64_t prev_holders_mask = 0;  // endpoints of the finished episode
    std::uint64_t current_unlockers_mask = 0;
    std::map<VarId, net::Endpoint> ownership;  // demand-driven: var -> owner
  };

  /// An in-flight view proposal awaiting acks from every proposed member.
  struct PendingView {
    std::uint64_t epoch = 0;
    std::uint64_t mask = 0;
    std::uint64_t acked_mask = 0;
    ProcId joiner = kNoProc;
    /// Each acker's applied clock (snapshotted after flushing its staging
    /// buffers) — the donor-selection input for re-mastering.
    std::map<ProcId, VectorClock> acked_vc;
  };

  void run();
  void handle_request(const net::Message& m);
  void handle_unlock(const net::Message& m);
  void try_grant(LockId id, LockState& lock);
  void send_grant(LockId id, LockState& lock, const Request& req);

  // View protocol (all expect state_mu_ held; sends happen under it, the
  // manager's existing idiom).  `maybe_propose` starts a proposal whenever
  // deferred membership changes exist and none is pending.
  void handle_view_trigger(const net::Message& m);
  void handle_view_ack(const net::Message& m);
  void maybe_propose();
  /// Commit the pending view.  Returns the listener invocation to run
  /// after state_mu_ is released.
  [[nodiscard]] std::function<void()> commit_pending();

  net::Fabric& fabric_;
  net::Endpoint self_;
  std::size_t num_procs_;
  bool count_mode_;
  bool dir_mode_;
  bool elastic_ = false;
  /// Guards locks_: the manager thread mutates it, the watchdog reads it.
  mutable std::mutex state_mu_;
  std::map<LockId, LockState> locks_;

  // View-manager state (guarded by state_mu_).
  View view_;
  std::optional<PendingView> pending_;
  std::uint64_t deferred_remove_mask_ = 0;
  std::uint64_t deferred_join_mask_ = 0;
  ViewListener view_listener_;

  LatencyHistogram grant_wait_ns_;
  Counter grants_;
  Counter heartbeats_;
  obs::ContentionProfiler* profiler_ = nullptr;
  Counter view_changes_, view_joins_, view_leaves_, view_faults_;
  Counter locks_revoked_, reseed_assignments_;
  std::thread thread_;
};

}  // namespace mc::dsm
