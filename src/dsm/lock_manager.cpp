#include "dsm/lock_manager.h"

#include "common/check.h"
#include "obs/tracer.h"

namespace mc::dsm {

LockManager::LockManager(net::Fabric& fabric, net::Endpoint self, std::size_t num_procs,
                         bool count_mode, std::optional<std::uint64_t> initial_alive,
                         bool dir_mode)
    : fabric_(fabric), self_(self), num_procs_(num_procs), count_mode_(count_mode),
      dir_mode_(dir_mode), elastic_(initial_alive.has_value()) {
  MC_CHECK_MSG(!(count_mode && dir_mode), "directory mode requires vector clocks");
  MC_CHECK_MSG(num_procs <= 64, "episode holder sets are encoded as 64-bit masks");
  if (elastic_) {
    MC_CHECK_MSG(!count_mode_, "elastic membership requires vector-clock mode");
    view_.alive_mask = *initial_alive & full_mask(num_procs);
  }
  thread_ = std::thread([this] { run(); });
}

LockManager::~LockManager() { join(); }

void LockManager::join() {
  if (thread_.joinable()) thread_.join();
}

void LockManager::run() {
  while (auto m = fabric_.recv(self_)) {
    heartbeats_.add();
    obs::TraceSpan span("deliver", "net", {"kind", m->kind}, {"src", m->src});
    obs::trace_flow_end("msg", "net", m->trace_id);
    switch (m->kind) {
      case kLockReq: handle_request(*m); break;
      case kUnlock: handle_unlock(*m); break;
      case kViewFault:
      case kViewJoin:
      case kViewLeave: handle_view_trigger(*m); break;
      case kViewAck: handle_view_ack(*m); break;
      default: break;
    }
  }
}

void LockManager::handle_request(const net::Message& m) {
  const auto id = static_cast<LockId>(m.a);
  std::scoped_lock state_lk(state_mu_);
  // Elastic: requests from processes outside the current view are stale
  // traffic from before their eviction — granting would wedge the lock.
  if (elastic_ && (m.src >= num_procs_ || !view_.is_alive(m.src))) return;
  LockState& lock = locks_[id];
  if (lock.release_vc.empty()) lock.release_vc = VectorClock(num_procs_);
  lock.queue.push_back(Request{m.src, static_cast<LockRequestKind>(m.b),
                               std::chrono::steady_clock::now()});
  const std::size_t depth = lock.queue.size();
  try_grant(id, lock);
  if (profiler_ != nullptr) {
    // Contended = the request could not be granted on arrival (it is still
    // queued behind an incompatible holder or an earlier writer).
    bool still_queued = false;
    for (const Request& r : lock.queue) {
      if (r.who == m.src) {
        still_queued = true;
        break;
      }
    }
    profiler_->record_lock_queue(id, depth, still_queued);
  }
}

void LockManager::handle_unlock(const net::Message& m) {
  const auto id = static_cast<LockId>(m.a);
  std::scoped_lock state_lk(state_mu_);
  // Elastic: an unlock racing the sender's eviction arrives after the
  // commit already revoked its tenure — drop it instead of asserting.
  if (elastic_ && (m.src >= num_procs_ || !view_.is_alive(m.src))) return;
  LockState& lock = locks_[id];
  MC_CHECK_MSG(lock.holders.erase(m.src) == 1, "unlock from a non-holder");

  // Directory mode stacks both synchronization currencies: the releaser's
  // per-receiver sent-counts first, then its dependency clock.
  const std::size_t vc_at = dir_mode_ ? num_procs_ : 0;
  MC_CHECK(m.payload.size() >= vc_at + num_procs_ + m.d);
  if (count_mode_ || dir_mode_) {
    lock.unlock_counts[m.src] =
        std::vector<std::uint64_t>(m.payload.begin(), m.payload.begin() + num_procs_);
  }
  if (!count_mode_) {
    VectorClock vc(num_procs_);
    for (ProcId p = 0; p < num_procs_; ++p) vc.set(p, m.payload[vc_at + p]);
    lock.release_vc.merge(vc);
  }
  lock.current_unlockers_mask |= std::uint64_t{1} << m.src;

  // Demand-driven digest: variables written in the critical section now
  // have the releaser as their authoritative owner.
  for (std::uint64_t k = 0; k < m.d; ++k) {
    lock.ownership[static_cast<VarId>(m.payload[vc_at + num_procs_ + k])] = m.src;
  }

  if (lock.holders.empty()) {
    lock.mode = Mode::kFree;
    lock.prev_holders_mask = lock.current_unlockers_mask;
    lock.current_unlockers_mask = 0;
  }
  try_grant(id, lock);
}

void LockManager::try_grant(LockId id, LockState& lock) {
  while (!lock.queue.empty()) {
    const Request head = lock.queue.front();
    if (head.kind == LockRequestKind::kWrite) {
      if (lock.mode != Mode::kFree) return;
      lock.queue.pop_front();
      lock.mode = Mode::kWrite;
      lock.holders.insert(head.who);
      ++lock.episode;
      send_grant(id, lock, head);
      return;
    }
    // Reader at the head: admit into a fresh episode when the lock is free,
    // or join the running read episode.  FIFO order prevents writer
    // starvation (a queued writer blocks later readers behind it).
    if (lock.mode == Mode::kWrite) return;
    lock.queue.pop_front();
    if (lock.mode == Mode::kFree) {
      lock.mode = Mode::kRead;
      ++lock.episode;
    }
    lock.holders.insert(head.who);
    send_grant(id, lock, head);
  }
}

std::vector<Watchdog::WaitEdge> LockManager::wait_edges() const {
  std::vector<Watchdog::WaitEdge> edges;
  std::scoped_lock lk(state_mu_);
  for (const auto& [id, lock] : locks_) {
    if (lock.holders.empty()) continue;
    for (const Request& req : lock.queue) {
      for (const net::Endpoint holder : lock.holders) {
        edges.push_back(Watchdog::WaitEdge{static_cast<ProcId>(req.who),
                                           static_cast<ProcId>(holder), id});
      }
    }
  }
  return edges;
}

std::vector<std::string> LockManager::dump() const {
  std::vector<std::string> out;
  std::scoped_lock lk(state_mu_);
  for (const auto& [id, lock] : locks_) {
    if (lock.holders.empty() && lock.queue.empty()) continue;
    std::string line = "lock " + std::to_string(id) + ": mode=";
    line += lock.mode == Mode::kFree ? "free"
            : lock.mode == Mode::kRead ? "read"
                                       : "write";
    line += " episode=" + std::to_string(lock.episode) + " holders=[";
    bool first = true;
    for (const net::Endpoint h : lock.holders) {
      line += (first ? "p" : " p") + std::to_string(h);
      first = false;
    }
    line += "] queue=[";
    first = true;
    for (const Request& r : lock.queue) {
      line += (first ? "p" : " p") + std::to_string(r.who) +
              (r.kind == LockRequestKind::kWrite ? "(w)" : "(r)");
      first = false;
    }
    line += "]";
    out.push_back(std::move(line));
  }
  return out;
}

View LockManager::view() const {
  std::scoped_lock lk(state_mu_);
  return view_;
}

void LockManager::set_view_listener(ViewListener listener) {
  std::scoped_lock lk(state_mu_);
  view_listener_ = std::move(listener);
}

void LockManager::handle_view_trigger(const net::Message& m) {
  std::function<void()> post;
  {
    std::scoped_lock state_lk(state_mu_);
    if (!elastic_) return;
    const auto p = static_cast<ProcId>(m.a);
    if (p >= num_procs_) return;
    const std::uint64_t bit = std::uint64_t{1} << p;
    if (m.kind == kViewJoin) {
      const bool member_soon = (pending_ && (pending_->mask & bit) != 0) ||
                               (deferred_join_mask_ & bit) != 0;
      if ((view_.alive_mask & bit) != 0 || member_soon) return;  // duplicate
      view_joins_.add();
      deferred_join_mask_ |= bit;
      deferred_remove_mask_ &= ~bit;
    } else {
      const bool in_view = (view_.alive_mask & bit) != 0;
      const bool in_pending = pending_ && (pending_->mask & bit) != 0;
      if (!in_view && !in_pending && (deferred_join_mask_ & bit) == 0) {
        return;  // already out — duplicate fault verdicts are routine
      }
      if (m.kind == kViewFault) view_faults_.add(); else view_leaves_.add();
      deferred_join_mask_ &= ~bit;
      if (in_pending && m.kind == kViewFault) {
        // A dead proposed member will never ack: drop it from the pending
        // proposal in place (same epoch; acks already collected stay
        // valid) so the commit isn't wedged on a dead acker.
        pending_->mask &= ~bit;
        pending_->acked_mask &= ~bit;
        pending_->acked_vc.erase(p);
        if (pending_->joiner == p) pending_->joiner = kNoProc;
      } else {
        // A live leaver keeps acking; removal waits for the next proposal.
        deferred_remove_mask_ |= bit;
      }
    }
    maybe_propose();
    if (pending_ && (pending_->acked_mask & pending_->mask) == pending_->mask) {
      post = commit_pending();
    }
  }
  if (post) post();
}

void LockManager::handle_view_ack(const net::Message& m) {
  std::function<void()> post;
  {
    std::scoped_lock state_lk(state_mu_);
    if (!elastic_ || !pending_ || m.a != pending_->epoch) return;  // stale
    const auto p = static_cast<ProcId>(m.src);
    if (p >= num_procs_ || ((pending_->mask >> p) & 1) == 0) return;
    pending_->acked_mask |= std::uint64_t{1} << p;
    VectorClock vc(num_procs_);
    if (m.payload.size() >= num_procs_) {
      for (ProcId k = 0; k < num_procs_; ++k) vc.set(k, m.payload[k]);
    }
    pending_->acked_vc[p] = std::move(vc);
    if ((pending_->acked_mask & pending_->mask) == pending_->mask) {
      post = commit_pending();
    }
  }
  if (post) post();
}

void LockManager::maybe_propose() {
  if (pending_) return;
  deferred_join_mask_ &= ~view_.alive_mask;  // raced a commit that admitted
  const std::uint64_t removes = deferred_remove_mask_ & view_.alive_mask;
  deferred_remove_mask_ = 0;
  ProcId joiner = kNoProc;
  std::uint64_t join_bit = 0;
  for (ProcId p = 0; p < static_cast<ProcId>(num_procs_); ++p) {
    const std::uint64_t bit = std::uint64_t{1} << p;
    if ((deferred_join_mask_ & bit) != 0) {
      joiner = p;
      join_bit = bit;
      break;  // one joiner per view change; the rest wait their turn
    }
  }
  deferred_join_mask_ &= ~join_bit;
  const std::uint64_t new_mask = (view_.alive_mask & ~removes) | join_bit;
  if (new_mask == view_.alive_mask) return;
  PendingView pv;
  pv.epoch = view_.epoch + 1;
  pv.mask = new_mask;
  pv.joiner = joiner;
  pending_ = std::move(pv);
  for (ProcId p = 0; p < static_cast<ProcId>(num_procs_); ++p) {
    if (((new_mask >> p) & 1) == 0) continue;
    net::Message msg;
    msg.src = self_;
    msg.dst = p;
    msg.kind = kViewPropose;
    msg.a = pending_->epoch;
    msg.b = new_mask;
    msg.c = view_.alive_mask;
    fabric_.send(std::move(msg));
  }
}

std::function<void()> LockManager::commit_pending() {
  MC_CHECK(pending_.has_value());
  const PendingView pv = *pending_;
  pending_.reset();
  const std::uint64_t old_mask = view_.alive_mask;
  const std::uint64_t departed = old_mask & ~pv.mask;
  view_.epoch = pv.epoch;
  view_.alive_mask = pv.mask;
  view_changes_.add();

  // Re-master lock state: purge dead requesters, revoke dead holders to
  // their episode boundary, drop dead demand-ownership (those migratory
  // writes lived only on the departed node — a documented loss, see
  // docs/FAULTS.md "Membership and views").
  for (auto& [id, lock] : locks_) {
    for (auto it = lock.queue.begin(); it != lock.queue.end();) {
      if (it->who < num_procs_ && ((departed >> it->who) & 1) != 0) {
        it = lock.queue.erase(it);
      } else {
        ++it;
      }
    }
    bool revoked = false;
    for (auto it = lock.holders.begin(); it != lock.holders.end();) {
      if (*it < num_procs_ && ((departed >> *it) & 1) != 0) {
        locks_revoked_.add();
        revoked = true;
        it = lock.holders.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = lock.ownership.begin(); it != lock.ownership.end();) {
      if (it->second < num_procs_ && ((departed >> it->second) & 1) != 0) {
        it = lock.ownership.erase(it);
      } else {
        ++it;
      }
    }
    if (revoked && lock.holders.empty()) {
      lock.mode = Mode::kFree;
      // The revoked episode ends at its boundary: survivors' unlock clocks
      // stand; the dead holder's unflushed tail is simply not part of the
      // release set the next grant forwards.
      lock.prev_holders_mask = lock.current_unlockers_mask;
      lock.current_unlockers_mask = 0;
    }
    try_grant(id, lock);
  }

  // Re-mastering assignments: for each departed d, the survivor whose
  // acked applied clock absorbed the most of d's writes re-broadcasts the
  // d-authored state it holds (LWW makes redundant copies harmless); a
  // joiner snapshot-fetches from the most caught-up member.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> assignments;
  for (ProcId d = 0; d < static_cast<ProcId>(num_procs_); ++d) {
    if (((departed >> d) & 1) == 0) continue;
    ProcId donor = kNoProc;
    std::uint64_t best = 0;
    for (const auto& [p, vc] : pv.acked_vc) {
      if (((pv.mask >> p) & 1) == 0) continue;
      if (donor == kNoProc || vc[d] > best) {
        donor = p;
        best = vc[d];
      }
    }
    if (donor != kNoProc) {
      assignments.emplace_back(d, donor);
      reseed_assignments_.add();
    }
  }
  if (pv.joiner != kNoProc) {
    ProcId donor = kNoProc;
    std::uint64_t best = 0;
    for (const auto& [p, vc] : pv.acked_vc) {
      if (p == pv.joiner || ((pv.mask >> p) & 1) == 0) continue;
      if (donor == kNoProc || vc.total() > best) {
        donor = p;
        best = vc.total();
      }
    }
    if (donor != kNoProc) assignments.emplace_back(pv.joiner, donor);
  }

  // Commit goes to every node of the old and new views (a graceful leaver
  // is waiting for it) plus the barrier manager at self+1 (MixedSystem's
  // endpoint layout), so stranded barrier instances re-complete.
  const std::uint64_t notify = old_mask | pv.mask;
  auto make_commit = [&](net::Endpoint dst) {
    net::Message msg;
    msg.src = self_;
    msg.dst = dst;
    msg.kind = kViewCommit;
    msg.a = view_.epoch;
    msg.b = view_.alive_mask;
    msg.c = pv.joiner == kNoProc ? ~std::uint64_t{0} : pv.joiner;
    msg.d = assignments.size();
    for (const auto& [target, donor] : assignments) {
      msg.payload.push_back(target);
      msg.payload.push_back(donor);
    }
    return msg;
  };
  for (ProcId p = 0; p < static_cast<ProcId>(num_procs_); ++p) {
    if (((notify >> p) & 1) == 0) continue;
    fabric_.send(make_commit(p));
  }
  fabric_.send(make_commit(static_cast<net::Endpoint>(self_ + 1)));
  if (obs::trace_enabled()) {
    obs::trace_instant("view.commit", "dsm", {"epoch", view_.epoch},
                       {"mask", view_.alive_mask});
  }

  // Accumulated churn that arrived while this change was in flight.
  maybe_propose();

  const View committed = view_;
  const ProcId joiner = pv.joiner;
  auto listener = view_listener_;
  return [listener = std::move(listener), committed, departed, joiner] {
    if (listener) listener(committed, departed, joiner);
  };
}

void LockManager::send_grant(LockId id, LockState& lock, const Request& req) {
  const net::Endpoint who = req.who;
  grant_wait_ns_.record(std::chrono::steady_clock::now() - req.enqueued);
  grants_.add();
  if (profiler_ != nullptr && lock.prev_holders_mask != 0 &&
      (lock.prev_holders_mask & (std::uint64_t{1} << who)) == 0) {
    // The grantee was not part of the previous episode: the protected data
    // migrates to another process (handoff).
    profiler_->record_lock_handoff(id);
  }
  net::Message grant;
  grant.src = self_;
  grant.dst = who;
  grant.kind = kLockGrant;
  grant.a = id;
  grant.b = lock.episode;
  grant.c = lock.prev_holders_mask;
  if (count_mode_ || dir_mode_) {
    // Per sender j: how many updates j had shipped to `who` when it last
    // unlocked.  The acquirer waits for that many before reading.
    grant.payload.assign(num_procs_, 0);
    for (const auto& [j, sent] : lock.unlock_counts) {
      if (j < num_procs_ && who < sent.size()) grant.payload[j] = sent[who];
    }
  }
  if (!count_mode_) {
    // Directory mode appends the merged release clock after the counts.
    grant.payload.insert(grant.payload.end(),
                         lock.release_vc.components().begin(),
                         lock.release_vc.components().end());
  }
  std::uint64_t digest = 0;
  for (const auto& [var, owner] : lock.ownership) {
    if (owner == who) continue;  // acquirer already has the latest copy
    grant.payload.push_back(var);
    grant.payload.push_back(owner);
    ++digest;
  }
  grant.d = digest;
  fabric_.send(std::move(grant));
}

}  // namespace mc::dsm
