#include "dsm/lock_manager.h"

#include "common/check.h"
#include "obs/tracer.h"

namespace mc::dsm {

LockManager::LockManager(net::Fabric& fabric, net::Endpoint self, std::size_t num_procs,
                         bool count_mode)
    : fabric_(fabric), self_(self), num_procs_(num_procs), count_mode_(count_mode) {
  MC_CHECK_MSG(num_procs <= 64, "episode holder sets are encoded as 64-bit masks");
  thread_ = std::thread([this] { run(); });
}

LockManager::~LockManager() { join(); }

void LockManager::join() {
  if (thread_.joinable()) thread_.join();
}

void LockManager::run() {
  while (auto m = fabric_.recv(self_)) {
    heartbeats_.add();
    obs::TraceSpan span("deliver", "net", {"kind", m->kind}, {"src", m->src});
    obs::trace_flow_end("msg", "net", m->trace_id);
    switch (m->kind) {
      case kLockReq: handle_request(*m); break;
      case kUnlock: handle_unlock(*m); break;
      default: break;
    }
  }
}

void LockManager::handle_request(const net::Message& m) {
  const auto id = static_cast<LockId>(m.a);
  std::scoped_lock state_lk(state_mu_);
  LockState& lock = locks_[id];
  if (lock.release_vc.empty()) lock.release_vc = VectorClock(num_procs_);
  lock.queue.push_back(Request{m.src, static_cast<LockRequestKind>(m.b),
                               std::chrono::steady_clock::now()});
  try_grant(id, lock);
}

void LockManager::handle_unlock(const net::Message& m) {
  const auto id = static_cast<LockId>(m.a);
  std::scoped_lock state_lk(state_mu_);
  LockState& lock = locks_[id];
  MC_CHECK_MSG(lock.holders.erase(m.src) == 1, "unlock from a non-holder");

  MC_CHECK(m.payload.size() >= num_procs_ + m.d);
  if (count_mode_) {
    lock.unlock_counts[m.src] =
        std::vector<std::uint64_t>(m.payload.begin(), m.payload.begin() + num_procs_);
  } else {
    VectorClock vc(num_procs_);
    for (ProcId p = 0; p < num_procs_; ++p) vc.set(p, m.payload[p]);
    lock.release_vc.merge(vc);
  }
  lock.current_unlockers_mask |= std::uint64_t{1} << m.src;

  // Demand-driven digest: variables written in the critical section now
  // have the releaser as their authoritative owner.
  for (std::uint64_t k = 0; k < m.d; ++k) {
    lock.ownership[static_cast<VarId>(m.payload[num_procs_ + k])] = m.src;
  }

  if (lock.holders.empty()) {
    lock.mode = Mode::kFree;
    lock.prev_holders_mask = lock.current_unlockers_mask;
    lock.current_unlockers_mask = 0;
  }
  try_grant(id, lock);
}

void LockManager::try_grant(LockId id, LockState& lock) {
  while (!lock.queue.empty()) {
    const Request head = lock.queue.front();
    if (head.kind == LockRequestKind::kWrite) {
      if (lock.mode != Mode::kFree) return;
      lock.queue.pop_front();
      lock.mode = Mode::kWrite;
      lock.holders.insert(head.who);
      ++lock.episode;
      send_grant(id, lock, head);
      return;
    }
    // Reader at the head: admit into a fresh episode when the lock is free,
    // or join the running read episode.  FIFO order prevents writer
    // starvation (a queued writer blocks later readers behind it).
    if (lock.mode == Mode::kWrite) return;
    lock.queue.pop_front();
    if (lock.mode == Mode::kFree) {
      lock.mode = Mode::kRead;
      ++lock.episode;
    }
    lock.holders.insert(head.who);
    send_grant(id, lock, head);
  }
}

std::vector<Watchdog::WaitEdge> LockManager::wait_edges() const {
  std::vector<Watchdog::WaitEdge> edges;
  std::scoped_lock lk(state_mu_);
  for (const auto& [id, lock] : locks_) {
    if (lock.holders.empty()) continue;
    for (const Request& req : lock.queue) {
      for (const net::Endpoint holder : lock.holders) {
        edges.push_back(Watchdog::WaitEdge{static_cast<ProcId>(req.who),
                                           static_cast<ProcId>(holder), id});
      }
    }
  }
  return edges;
}

std::vector<std::string> LockManager::dump() const {
  std::vector<std::string> out;
  std::scoped_lock lk(state_mu_);
  for (const auto& [id, lock] : locks_) {
    if (lock.holders.empty() && lock.queue.empty()) continue;
    std::string line = "lock " + std::to_string(id) + ": mode=";
    line += lock.mode == Mode::kFree ? "free"
            : lock.mode == Mode::kRead ? "read"
                                       : "write";
    line += " episode=" + std::to_string(lock.episode) + " holders=[";
    bool first = true;
    for (const net::Endpoint h : lock.holders) {
      line += (first ? "p" : " p") + std::to_string(h);
      first = false;
    }
    line += "] queue=[";
    first = true;
    for (const Request& r : lock.queue) {
      line += (first ? "p" : " p") + std::to_string(r.who) +
              (r.kind == LockRequestKind::kWrite ? "(w)" : "(r)");
      first = false;
    }
    line += "]";
    out.push_back(std::move(line));
  }
  return out;
}

void LockManager::send_grant(LockId id, LockState& lock, const Request& req) {
  const net::Endpoint who = req.who;
  grant_wait_ns_.record(std::chrono::steady_clock::now() - req.enqueued);
  grants_.add();
  net::Message grant;
  grant.src = self_;
  grant.dst = who;
  grant.kind = kLockGrant;
  grant.a = id;
  grant.b = lock.episode;
  grant.c = lock.prev_holders_mask;
  if (count_mode_) {
    // Per sender j: how many updates j had shipped to `who` when it last
    // unlocked.  The acquirer waits for that many before reading.
    grant.payload.assign(num_procs_, 0);
    for (const auto& [j, sent] : lock.unlock_counts) {
      if (j < num_procs_ && who < sent.size()) grant.payload[j] = sent[who];
    }
  } else {
    grant.payload.assign(lock.release_vc.components().begin(),
                         lock.release_vc.components().end());
  }
  std::uint64_t digest = 0;
  for (const auto& [var, owner] : lock.ownership) {
    if (owner == who) continue;  // acquirer already has the latest copy
    grant.payload.push_back(var);
    grant.payload.push_back(owner);
    ++digest;
  }
  grant.d = digest;
  fabric_.send(std::move(grant));
}

}  // namespace mc::dsm
