#include "dsm/store.h"

#include <tuple>

namespace mc::dsm {

void Store::apply(VarId x, Value value, std::uint64_t flags, WriteId id,
                  const VectorClock& vc, std::uint64_t arrival, bool force,
                  std::uint64_t weight) {
  MC_CHECK(x < entries_.size());
  VarEntry& e = entries_[x];
  // Reception accounting for the staleness monitor: count every update that
  // reached this replica, including ones the LWW order rejects below — a
  // superseded write is not *missing*, it is absorbed.
  e.applied_writes += weight;
  // Each variable is a last-writer-wins register under a total order that
  // extends causality: a causally newer write always replaces the entry,
  // a causally older (or duplicate) one never does, and *concurrent*
  // writes are arbitrated by the deterministic key
  // (vc.total(), proc, seq) — strict dominance implies a strictly larger
  // component sum, so the key order is a genuine extension.  Because the
  // winner depends only on the *set* of writes applied, not their arrival
  // order, the PRAM view (applies at arrival) and the causal view
  // (applies at causal readiness) converge on the same value even when
  // re-stamped retransmissions (docs/FAULTS.md) scramble cross-sender
  // order; otherwise one process's two views could disagree on the winner
  // and its trace would have no single serialization.  On the ideal
  // fabric the mailbox's global deliver_at order makes this a no-op.
  // Deltas are exempt (they commute and every copy must be counted), and
  // `force` exempts demand-policy migratory writes, whose clocks are
  // deliberately not ticked — those are write-lock-ordered, so no
  // concurrent write to the variable can exist.
  if (!force && flags == kFlagWrite && !vc.empty() && !e.vc.empty()) {
    switch (vc.compare(e.vc)) {
      case ClockOrder::kBefore:
      case ClockOrder::kEqual:
        return;
      case ClockOrder::kAfter:
        break;
      case ClockOrder::kConcurrent: {
        const auto key = [](const VectorClock& c, WriteId w) {
          return std::tuple(c.total(), w.proc, w.seq);
        };
        if (key(vc, id) < key(e.vc, e.last)) return;
        break;
      }
    }
  }
  // Each applied update records its own receive index, paired with
  // e.last's sender (the floor machinery raises per-sender counts).
  e.arrival = arrival;
  switch (flags) {
    case kFlagWrite:
      e.value = value;
      e.vc = vc;
      break;
    case kFlagIntDelta:
      e.value = value_of(int_of(e.value) - int_of(value));
      if (!vc.empty()) {
        if (e.vc.empty()) e.vc = VectorClock(num_procs_);
        e.vc.merge(vc);
      }
      break;
    case kFlagDoubleDelta:
      e.value = value_of(double_of(e.value) - double_of(value));
      if (!vc.empty()) {
        if (e.vc.empty()) e.vc = VectorClock(num_procs_);
        e.vc.merge(vc);
      }
      break;
    default:
      MC_CHECK_MSG(false, "unknown update flags");
  }
  e.last = id;
}

void Store::install(VarId x, Value value, WriteId id, const VectorClock& vc) {
  MC_CHECK(x < entries_.size());
  VarEntry& e = entries_[x];
  e.value = value;
  e.last = id;
  e.vc = vc;
}

}  // namespace mc::dsm
