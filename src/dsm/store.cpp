#include "dsm/store.h"

#include <tuple>

namespace mc::dsm {

void Store::apply(VarId x, Value value, std::uint64_t flags, WriteId id,
                  const VectorClock& vc, std::uint64_t arrival, bool force,
                  std::uint64_t weight, std::uint64_t epoch) {
  MC_CHECK(x < entries_.size());
  VarEntry& e = entries_[x];
  // Reception accounting for the staleness monitor: count every update that
  // reached this replica, including ones the LWW order rejects below — a
  // superseded write is not *missing*, it is absorbed.
  e.applied_writes += weight;
  // Each variable is a last-writer-wins register under a total order that
  // extends causality: a causally newer write always replaces the entry,
  // a causally older (or duplicate) one never does, and *concurrent*
  // writes are arbitrated by the deterministic key
  // (vc.total(), proc, seq) — strict dominance implies a strictly larger
  // component sum, so the key order is a genuine extension.  Because the
  // winner depends only on the *set* of writes applied, not their arrival
  // order, the PRAM view (applies at arrival) and the causal view
  // (applies at causal readiness) converge on the same value even when
  // re-stamped retransmissions (docs/FAULTS.md) scramble cross-sender
  // order; otherwise one process's two views could disagree on the winner
  // and its trace would have no single serialization.  On the ideal
  // fabric the mailbox's global deliver_at order makes this a no-op.
  // Deltas are exempt (they commute and every copy must be counted), and
  // `force` exempts demand-policy migratory writes, whose clocks are
  // deliberately not ticked — those are write-lock-ordered, so no
  // concurrent write to the variable can exist.
  const std::uint64_t op = flags & kFlagOpMask;
  if (!force && op == kFlagWrite && !vc.empty() && !e.vc.empty()) {
    switch (vc.compare(e.vc)) {
      case ClockOrder::kBefore:
      case ClockOrder::kEqual:
        return;
      case ClockOrder::kAfter:
        break;
      case ClockOrder::kConcurrent: {
        // Epoch-first: a crash-stopped process's last write can be
        // concurrent with a new-view overwrite of the same variable (the
        // overwriter's PRAM reads never raised its dependency clock), and
        // the re-seed that carries the dead write must lose to the
        // overwrite at every replica regardless of arrival order —
        // otherwise a replica that already applied the newer write would
        // regress when the transfer record lands (a PRAM staleness
        // violation).  Within one epoch the deterministic key is as
        // before.
        const auto key = [](std::uint64_t ep, const VectorClock& c, WriteId w) {
          return std::tuple(ep, c.total(), w.proc, w.seq);
        };
        if (key(epoch, vc, id) < key(e.epoch, e.vc, e.last)) return;
        break;
      }
    }
  }
  // Each applied update records its own receive index, paired with
  // e.last's sender (the floor machinery raises per-sender counts).
  e.arrival = arrival;
  switch (op) {
    case kFlagWrite:
      e.value = value;
      e.vc = vc;
      e.epoch = epoch;
      break;
    case kFlagIntDelta:
      e.value = value_of(int_of(e.value) - int_of(value));
      e.delta_touched = true;
      if (!vc.empty()) {
        if (e.vc.empty()) e.vc = VectorClock(num_procs_);
        e.vc.merge(vc);
      }
      break;
    case kFlagDoubleDelta:
      e.value = value_of(double_of(e.value) - double_of(value));
      e.delta_touched = true;
      if (!vc.empty()) {
        if (e.vc.empty()) e.vc = VectorClock(num_procs_);
        e.vc.merge(vc);
      }
      break;
    default:
      MC_CHECK_MSG(false, "unknown update flags");
  }
  e.last = id;
}

void Store::install(VarId x, Value value, WriteId id, const VectorClock& vc,
                    bool delta_touched, std::uint64_t epoch) {
  MC_CHECK(x < entries_.size());
  VarEntry& e = entries_[x];
  e.value = value;
  e.last = id;
  e.vc = vc;
  e.delta_touched = e.delta_touched || delta_touched;
  e.epoch = epoch;
}

}  // namespace mc::dsm
