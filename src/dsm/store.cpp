#include "dsm/store.h"

namespace mc::dsm {

void Store::apply(VarId x, Value value, std::uint64_t flags, WriteId id,
                  const VectorClock& vc, std::uint64_t arrival) {
  MC_CHECK(x < entries_.size());
  VarEntry& e = entries_[x];
  // Each applied update records its own receive index, paired with
  // e.last's sender (the floor machinery raises per-sender counts).
  e.arrival = arrival;
  switch (flags) {
    case kFlagWrite:
      e.value = value;
      e.vc = vc;
      break;
    case kFlagIntDelta:
      e.value = value_of(int_of(e.value) - int_of(value));
      if (!vc.empty()) {
        if (e.vc.empty()) e.vc = VectorClock(num_procs_);
        e.vc.merge(vc);
      }
      break;
    case kFlagDoubleDelta:
      e.value = value_of(double_of(e.value) - double_of(value));
      if (!vc.empty()) {
        if (e.vc.empty()) e.vc = VectorClock(num_procs_);
        e.vc.merge(vc);
      }
      break;
    default:
      MC_CHECK_MSG(false, "unknown update flags");
  }
  e.last = id;
}

void Store::install(VarId x, Value value, WriteId id, const VectorClock& vc) {
  MC_CHECK(x < entries_.size());
  VarEntry& e = entries_[x];
  e.value = value;
  e.last = id;
  e.vc = vc;
}

}  // namespace mc::dsm
