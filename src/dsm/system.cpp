#include "dsm/system.h"

#include <thread>

#include "common/check.h"
#include "obs/op_sink.h"
#include "obs/tracer.h"

namespace mc::dsm {

MixedSystem::MixedSystem(Config cfg)
    : cfg_(std::move(cfg)),
      fabric_(cfg_.num_procs + 2, cfg_.latency, cfg_.seed) {
  MC_CHECK(cfg_.num_procs >= 1);
  if (cfg_.directory.has_value()) {
    MC_CHECK_MSG(cfg_.batching.has_value(),
                 "the directory protocol rides the batch codec "
                 "(staging buffers, fill frames): Config::batching required");
    MC_CHECK_MSG(!cfg_.omit_timestamps,
                 "directory mode needs vector timestamps: fills install "
                 "LWW winners and deltas merge clocks");
    MC_CHECK_MSG(cfg_.update_subscribers.empty(),
                 "directory mode derives each update's destination set from "
                 "the sharer directory; static subscriber lists conflict");
    MC_CHECK_MSG(cfg_.num_procs <= 64,
                 "directory sharer sets are encoded as 64-bit masks");
  }
  MC_CHECK_MSG(!(cfg_.omit_timestamps && !cfg_.demand_association.empty()),
               "timestamp elision assumes all writes are broadcast; "
               "demand-driven locks are incompatible");
  MC_CHECK_MSG(cfg_.update_subscribers.empty() || cfg_.omit_timestamps,
               "selective multicast requires count-vector mode "
               "(Config::omit_timestamps): vector-clock causal delivery "
               "cannot tolerate per-receiver gaps");
  for (const auto& [var, subs] : cfg_.update_subscribers) {
    MC_CHECK_MSG(var < cfg_.num_vars, "subscriber list for an out-of-range variable");
    for (const ProcId p : subs) MC_CHECK(p < cfg_.num_procs);
  }
  MC_CHECK_MSG(!(cfg_.elastic && cfg_.omit_timestamps),
               "elastic membership requires vector-clock mode: count vectors "
               "carry no per-writer causality to fence at a view change");
  MC_CHECK_MSG(!cfg_.elastic || cfg_.num_procs <= 64,
               "elastic membership encodes views as 64-bit masks");
  MC_CHECK_MSG(!cfg_.initial_members.has_value() || cfg_.elastic,
               "initial_members only means something with Config::elastic");
  if (cfg_.initial_members.has_value()) {
    MC_CHECK_MSG(!cfg_.initial_members->empty(), "view 0 needs at least one member");
    for (const ProcId p : *cfg_.initial_members) MC_CHECK(p < cfg_.num_procs);
  }
  register_kind_names(fabric_);
  // Robustness layers, both strictly opt-in (docs/FAULTS.md).  Reliability
  // goes in first so every protocol message is sequenced from the start;
  // the fault plan only then makes the channel lossy.
  if (cfg_.elastic && cfg_.reliable && cfg_.reliability.keepalive.count() == 0) {
    // Elastic needs a failure detector that works while every survivor is
    // blocked in synchronization (no app traffic probes the dead peer):
    // keepalive pings on idle channels, paced by the backoff ceiling.
    cfg_.reliability.keepalive = cfg_.reliability.max_rto;
  }
  if (cfg_.reliable) fabric_.enable_reliability(cfg_.reliability);
  if (cfg_.faults.has_value()) fabric_.inject_faults(*cfg_.faults);
  const auto lock_ep = static_cast<net::Endpoint>(cfg_.num_procs);
  const auto barrier_ep = static_cast<net::Endpoint>(cfg_.num_procs + 1);
  const std::optional<std::uint64_t> initial_alive =
      cfg_.elastic ? std::optional<std::uint64_t>(
                         cfg_.initial_members.has_value()
                             ? mask_of(*cfg_.initial_members)
                             : full_mask(cfg_.num_procs))
                   : std::nullopt;
  lock_manager_ = std::make_unique<LockManager>(fabric_, lock_ep, cfg_.num_procs,
                                                cfg_.omit_timestamps, initial_alive,
                                                cfg_.directory.has_value());
  barrier_manager_ =
      std::make_unique<BarrierManager>(fabric_, barrier_ep, cfg_.num_procs,
                                       cfg_.barrier_members, cfg_.omit_timestamps,
                                       initial_alive, cfg_.directory.has_value());
  if (cfg_.elastic) {
    // Crash detection: the reliability layer's give-up verdict becomes a
    // fault report to the view manager (a suspect manager endpoint is not
    // reconfigurable — that failure stays a watchdog matter).
    if (net::ReliableChannel* rel = fabric_.reliable_channel()) {
      rel->set_unreachable_callback(
          [this, lock_ep](const net::ReliableChannel::PeerUnreachable& err) {
            if (err.dst >= cfg_.num_procs || err.src == err.dst) return;
            net::Message fault;
            fault.src = err.src;
            fault.dst = lock_ep;
            fault.kind = kViewFault;
            fault.a = err.dst;
            fabric_.send(std::move(fault));
          });
    }
    lock_manager_->set_view_listener(
        [this](const View& v, std::uint64_t departed_mask, ProcId joiner) {
          (void)joiner;
          // Silence retransmissions to the removed: their channels would
          // otherwise keep reporting the same corpse.
          if (net::ReliableChannel* rel = fabric_.reliable_channel()) {
            for (ProcId p = 0; p < cfg_.num_procs && p < 64; ++p) {
              if ((departed_mask >> p) & 1) rel->mark_dead(p);
            }
          }
          if (obs::OpSink* sink = op_sink_.load(std::memory_order_acquire)) {
            sink->on_view(v.epoch, v.alive_mask);
          }
        });
    barrier_manager_->set_join_listener(
        [this](BarrierId b, ProcId p, std::uint64_t from_epoch) {
          if (obs::OpSink* sink = op_sink_.load(std::memory_order_acquire)) {
            sink->on_barrier_member_from(b, p, from_epoch);
          }
        });
  }
  if (cfg_.track_staleness) {
    staleness_ = std::make_unique<StalenessTable>(cfg_.num_vars, cfg_.num_procs);
  }
  nodes_.reserve(cfg_.num_procs);
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    nodes_.push_back(std::make_unique<Node>(cfg_, p, fabric_, lock_ep, barrier_ep,
                                            staleness_.get()));
  }
  if (cfg_.profile.has_value()) {
    // One profiler per component keeps hot-path recording uncontended
    // across processes; profile() merges them.  Attached before run(), so
    // every record site sees the pointer through the thread-start /
    // mailbox synchronization that also orders the first message.
    profilers_.reserve(cfg_.num_procs + 2);
    for (ProcId p = 0; p < cfg_.num_procs; ++p) {
      profilers_.push_back(std::make_unique<obs::ContentionProfiler>(*cfg_.profile));
      nodes_[p]->set_profiler(profilers_.back().get());
    }
    profilers_.push_back(std::make_unique<obs::ContentionProfiler>(*cfg_.profile));
    lock_manager_->set_profiler(profilers_.back().get());
    profilers_.push_back(std::make_unique<obs::ContentionProfiler>(*cfg_.profile));
    barrier_manager_->set_profiler(profilers_.back().get());
  }
}

MixedSystem::~MixedSystem() { shutdown(); }

Node& MixedSystem::node(ProcId p) {
  MC_CHECK(p < nodes_.size());
  return *nodes_[p];
}

void MixedSystem::run(const std::function<void(Node&, ProcId)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(cfg_.num_procs);
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    threads.emplace_back([this, &body, p] {
      // Marks this thread as an application lane for the critical-path
      // analyzer (gaps between its events are compute, not idle).
      obs::trace_instant("proc.start", "dsm", {"proc", p});
      try {
        body(*nodes_[p], p);
      } catch (const EvictedError&) {
        // Elastic: this process was removed from the view mid-body; the
        // survivors carry on and its exit is clean, not a stall.
      }
      obs::trace_instant("proc.end", "dsm", {"proc", p});
    });
  }
  for (auto& t : threads) t.join();
}

MixedSystem::RunOutcome MixedSystem::run(
    const std::function<void(Node&, ProcId)>& body,
    std::chrono::nanoseconds timeout) {
  Watchdog::Options opts;
  opts.stall_timeout = timeout;
  Watchdog wd(opts);
  wd.set_wait_graph_source([this] { return lock_manager_->wait_edges(); });
  wd.set_diagnostics_source([this](Watchdog::Diagnostics& d) {
    d.locks = lock_manager_->dump();
    d.barriers = barrier_manager_->dump();
    d.in_flight = fabric_.in_flight();
    if (cfg_.elastic) d.view = lock_manager_->view_string();
    // Name the culprits: a stall report that says WHICH lock and variable
    // are hottest beats a bare wait set (requires Config::profile).
    if (cfg_.profile.has_value()) d.hot = profile().hot_summary();
    if (net::ReliableChannel* rel = fabric_.reliable_channel()) {
      for (const auto& err : rel->errors()) {
        d.unreachable.push_back("channel p" + std::to_string(err.src) + " -> p" +
                                std::to_string(err.dst) + ": seq " +
                                std::to_string(err.first_unacked) +
                                " unacked after " + std::to_string(err.retries) +
                                " retries");
      }
    }
  });
  wd.set_manager_probe([this] {
    const std::vector<std::size_t> depth = fabric_.in_flight();
    const auto lock_ep = static_cast<std::size_t>(cfg_.num_procs);
    const auto barrier_ep = lock_ep + 1;
    return std::vector<Watchdog::ManagerHealth>{
        {"lock manager", lock_manager_->heartbeats(),
         lock_ep < depth.size() ? depth[lock_ep] : 0},
        {"barrier manager", barrier_manager_->heartbeats(),
         barrier_ep < depth.size() ? depth[barrier_ep] : 0},
    };
  });
  for (auto& n : nodes_) n->set_watchdog(&wd);

  std::vector<std::thread> threads;
  threads.reserve(cfg_.num_procs);
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    threads.emplace_back([this, &body, p] {
      obs::trace_instant("proc.start", "dsm", {"proc", p});
      try {
        body(*nodes_[p], p);
      } catch (const EvictedError&) {
        // Elastic: removed from the view mid-body — a clean per-process
        // exit (the watchdog never fired), not a stall.
      } catch (const StallError&) {
        // The watchdog fired while this thread was blocked; its dump is the
        // run's result.  Unwinding here keeps the join below prompt.
      }
      obs::trace_instant("proc.end", "dsm", {"proc", p});
    });
  }
  for (auto& t : threads) t.join();
  for (auto& n : nodes_) n->set_watchdog(nullptr);
  wd.stop();

  RunOutcome out;
  out.stalled = wd.fired();
  out.diagnostics = wd.diagnostics();
  return out;
}

void MixedSystem::attach_op_sink(obs::OpSink* sink) {
  op_sink_.store(sink, std::memory_order_release);
  for (auto& n : nodes_) n->set_op_sink(sink);
}

View MixedSystem::view() const {
  MC_CHECK_MSG(cfg_.elastic, "view() requires Config::elastic");
  return lock_manager_->view();
}

std::map<BarrierId, std::size_t> MixedSystem::barrier_membership() const {
  std::map<BarrierId, std::size_t> m;
  for (const auto& [bar, members] : cfg_.barrier_members) m[bar] = members.size();
  return m;
}

history::History MixedSystem::collect_history() const {
  std::vector<const TraceRecorder*> traces;
  traces.reserve(nodes_.size());
  for (const auto& n : nodes_) traces.push_back(&n->trace());
  return merge_traces(cfg_.num_procs, traces);
}

MetricsSnapshot MixedSystem::metrics() const {
  MetricsSnapshot snap = fabric_.metrics();
  std::uint64_t blocked = 0;
  std::uint64_t reads_pram = 0;
  std::uint64_t reads_causal = 0;
  std::uint64_t writes = 0;
  std::uint64_t deltas = 0;
  std::uint64_t fetches = 0;
  std::uint64_t batch_msgs = 0;
  std::uint64_t batch_updates = 0;
  std::uint64_t batch_coalesced = 0;
  // Per-primitive latency, merged across all processes (docs/METRICS.md).
  LatencyHistogram read_pram_ns, read_causal_ns, await_spin_ns, lock_acquire_ns,
      barrier_wait_ns, batch_updates_per_msg;
  LatencyHistogram staleness_versions_pram, staleness_versions_causal,
      staleness_vc_pram, staleness_vc_causal;
  for (const auto& n : nodes_) {
    const NodeStats& s = n->stats();
    blocked += s.total_blocked_ns();
    reads_pram += s.reads_pram.get();
    reads_causal += s.reads_causal.get();
    writes += s.writes.get();
    deltas += s.deltas.get();
    fetches += s.fetches.get();
    batch_msgs += s.batch_msgs.get();
    batch_updates += s.batch_updates.get();
    batch_coalesced += s.batch_coalesced.get();
    read_pram_ns.merge(s.read_pram_ns);
    read_causal_ns.merge(s.read_causal_ns);
    await_spin_ns.merge(s.await_spin_ns);
    lock_acquire_ns.merge(s.lock_acquire_ns);
    barrier_wait_ns.merge(s.barrier_wait_ns);
    batch_updates_per_msg.merge(s.batch_updates_per_msg);
    staleness_versions_pram.merge(s.staleness_versions_pram);
    staleness_versions_causal.merge(s.staleness_versions_causal);
    staleness_vc_pram.merge(s.staleness_vc_pram);
    staleness_vc_causal.merge(s.staleness_vc_causal);
  }
  snap.values["dsm.blocked_ns"] = blocked;
  snap.values["dsm.reads_pram"] = reads_pram;
  snap.values["dsm.reads_causal"] = reads_causal;
  snap.values["dsm.writes"] = writes;
  snap.values["dsm.deltas"] = deltas;
  snap.values["dsm.fetches"] = fetches;
  if (cfg_.batching.has_value()) {
    snap.values["net.batch.msgs"] = batch_msgs;
    snap.values["net.batch.updates"] = batch_updates;
    snap.values["net.batch.coalesced"] = batch_coalesced;
    // Samples are record counts, not nanoseconds (docs/METRICS.md).
    snap.add_histogram("net.batch.updates_per_msg", batch_updates_per_msg);
  }
  snap.add_histogram("read.pram_ns", read_pram_ns);
  snap.add_histogram("read.causal_ns", read_causal_ns);
  snap.add_histogram("await.spin_ns", await_spin_ns);
  snap.add_histogram("lock.acquire_ns", lock_acquire_ns);
  snap.add_histogram("barrier.wait_ns", barrier_wait_ns);
  if (cfg_.track_staleness) {
    // Samples are version / vector-clock distances, not nanoseconds
    // (docs/METRICS.md "Read staleness").
    snap.add_histogram("read.staleness_versions.pram", staleness_versions_pram);
    snap.add_histogram("read.staleness_versions.causal", staleness_versions_causal);
    if (!cfg_.omit_timestamps) {
      snap.add_histogram("read.staleness_vc.pram", staleness_vc_pram);
      snap.add_histogram("read.staleness_vc.causal", staleness_vc_causal);
    }
  }
  if (cfg_.directory.has_value()) {
    std::uint64_t fills = 0, fill_records = 0, evictions = 0, pings = 0;
    std::uint64_t adds = 0, dels = 0, purged = 0;
    LatencyHistogram fill_wait_ns;
    for (const auto& n : nodes_) {
      const NodeStats& s = n->stats();
      fills += s.dir_fills.get();
      fill_records += s.dir_fill_records.get();
      evictions += s.dir_evictions.get();
      pings += s.dir_frontier_pings.get();
      adds += s.dir_sharer_adds.get();
      dels += s.dir_sharer_dels.get();
      purged += s.dir_sharers_purged.get();
      fill_wait_ns.merge(s.dir_fill_wait_ns);
    }
    snap.values["directory.fills"] = fills;
    snap.values["directory.fill_records"] = fill_records;
    snap.values["directory.evictions"] = evictions;
    snap.values["directory.frontier_pings"] = pings;
    snap.values["directory.sharer_adds"] = adds;
    snap.values["directory.sharer_dels"] = dels;
    snap.values["directory.sharers_purged"] = purged;
    snap.add_histogram("directory.fill_wait_ns", fill_wait_ns);
  }
  if (cfg_.elastic) {
    std::uint64_t reseeds_out = 0;
    std::uint64_t reseeds_in = 0;
    for (const auto& n : nodes_) {
      reseeds_out += n->stats().reseeds_out.get();
      reseeds_in += n->stats().reseeds_in.get();
    }
    snap.values["view.epoch"] = lock_manager_->view().epoch;
    snap.values["view.changes"] = lock_manager_->view_changes();
    snap.values["view.joins"] = lock_manager_->view_joins();
    snap.values["view.leaves"] = lock_manager_->view_leaves();
    snap.values["view.faults"] = lock_manager_->view_faults();
    snap.values["view.locks_revoked"] = lock_manager_->locks_revoked();
    snap.values["view.reseed_assignments"] = lock_manager_->reseed_assignments();
    snap.values["view.reseed_records_out"] = reseeds_out;
    snap.values["view.reseed_records_in"] = reseeds_in;
  }
  snap.values["lockmgr.grants"] = lock_manager_->grants_sent();
  snap.add_histogram("lockmgr.grant_wait_ns", lock_manager_->grant_wait());
  snap.values["lockmgr.heartbeats"] = lock_manager_->heartbeats();
  snap.values["barriermgr.releases"] = barrier_manager_->releases_sent();
  snap.add_histogram("barriermgr.assemble_ns", barrier_manager_->assemble_time());
  snap.values["barriermgr.heartbeats"] = barrier_manager_->heartbeats();
  if (cfg_.profile.has_value()) {
    // Sketch occupancy only — the full attribution lives in profile().
    // Guarded so an unprofiled run has ZERO profile.* keys.
    const obs::ProfileReport pr = profile();
    snap.values["profile.vars.tracked"] = pr.vars.entries.size();
    snap.values["profile.vars.overflow"] = pr.vars.overflow_events;
    snap.values["profile.locks.tracked"] = pr.locks.entries.size();
    snap.values["profile.locks.overflow"] = pr.locks.overflow_events;
    snap.values["profile.barriers.tracked"] = pr.barriers.entries.size();
    snap.values["profile.barriers.overflow"] = pr.barriers.overflow_events;
  }
  if (obs::trace_enabled()) {
    snap.values["obs.trace.dropped"] = obs::Tracer::instance().dropped_events();
  }
  return snap;
}

obs::ProfileReport MixedSystem::profile() const {
  obs::ProfileReport out(cfg_.profile.value_or(obs::ProfilerOptions{}));
  for (const auto& p : profilers_) out.merge(p->snapshot());
  return out;
}

void MixedSystem::shutdown() {
  if (down_) return;
  down_ = true;
  fabric_.shutdown();
  lock_manager_->join();
  barrier_manager_->join();
  for (auto& n : nodes_) n->stop();
}

}  // namespace mc::dsm
