#include "dsm/system.h"

#include <thread>

#include "common/check.h"
#include "obs/tracer.h"

namespace mc::dsm {

MixedSystem::MixedSystem(Config cfg)
    : cfg_(std::move(cfg)),
      fabric_(cfg_.num_procs + 2, cfg_.latency, cfg_.seed) {
  MC_CHECK(cfg_.num_procs >= 1);
  MC_CHECK_MSG(!(cfg_.omit_timestamps && !cfg_.demand_association.empty()),
               "timestamp elision assumes all writes are broadcast; "
               "demand-driven locks are incompatible");
  MC_CHECK_MSG(cfg_.update_subscribers.empty() || cfg_.omit_timestamps,
               "selective multicast requires count-vector mode "
               "(Config::omit_timestamps): vector-clock causal delivery "
               "cannot tolerate per-receiver gaps");
  for (const auto& [var, subs] : cfg_.update_subscribers) {
    MC_CHECK_MSG(var < cfg_.num_vars, "subscriber list for an out-of-range variable");
    for (const ProcId p : subs) MC_CHECK(p < cfg_.num_procs);
  }
  register_kind_names(fabric_);
  // Robustness layers, both strictly opt-in (docs/FAULTS.md).  Reliability
  // goes in first so every protocol message is sequenced from the start;
  // the fault plan only then makes the channel lossy.
  if (cfg_.reliable) fabric_.enable_reliability(cfg_.reliability);
  if (cfg_.faults.has_value()) fabric_.inject_faults(*cfg_.faults);
  const auto lock_ep = static_cast<net::Endpoint>(cfg_.num_procs);
  const auto barrier_ep = static_cast<net::Endpoint>(cfg_.num_procs + 1);
  lock_manager_ = std::make_unique<LockManager>(fabric_, lock_ep, cfg_.num_procs,
                                                cfg_.omit_timestamps);
  barrier_manager_ =
      std::make_unique<BarrierManager>(fabric_, barrier_ep, cfg_.num_procs,
                                       cfg_.barrier_members, cfg_.omit_timestamps);
  if (cfg_.track_staleness) {
    staleness_ = std::make_unique<StalenessTable>(cfg_.num_vars, cfg_.num_procs);
  }
  nodes_.reserve(cfg_.num_procs);
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    nodes_.push_back(std::make_unique<Node>(cfg_, p, fabric_, lock_ep, barrier_ep,
                                            staleness_.get()));
  }
}

MixedSystem::~MixedSystem() { shutdown(); }

Node& MixedSystem::node(ProcId p) {
  MC_CHECK(p < nodes_.size());
  return *nodes_[p];
}

void MixedSystem::run(const std::function<void(Node&, ProcId)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(cfg_.num_procs);
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    threads.emplace_back([this, &body, p] {
      // Marks this thread as an application lane for the critical-path
      // analyzer (gaps between its events are compute, not idle).
      obs::trace_instant("proc.start", "dsm", {"proc", p});
      body(*nodes_[p], p);
      obs::trace_instant("proc.end", "dsm", {"proc", p});
    });
  }
  for (auto& t : threads) t.join();
}

MixedSystem::RunOutcome MixedSystem::run(
    const std::function<void(Node&, ProcId)>& body,
    std::chrono::nanoseconds timeout) {
  Watchdog::Options opts;
  opts.stall_timeout = timeout;
  Watchdog wd(opts);
  wd.set_wait_graph_source([this] { return lock_manager_->wait_edges(); });
  wd.set_diagnostics_source([this](Watchdog::Diagnostics& d) {
    d.locks = lock_manager_->dump();
    d.barriers = barrier_manager_->dump();
    d.in_flight = fabric_.in_flight();
    if (net::ReliableChannel* rel = fabric_.reliable_channel()) {
      for (const auto& err : rel->errors()) {
        d.unreachable.push_back("channel p" + std::to_string(err.src) + " -> p" +
                                std::to_string(err.dst) + ": seq " +
                                std::to_string(err.first_unacked) +
                                " unacked after " + std::to_string(err.retries) +
                                " retries");
      }
    }
  });
  wd.set_manager_probe([this] {
    const std::vector<std::size_t> depth = fabric_.in_flight();
    const auto lock_ep = static_cast<std::size_t>(cfg_.num_procs);
    const auto barrier_ep = lock_ep + 1;
    return std::vector<Watchdog::ManagerHealth>{
        {"lock manager", lock_manager_->heartbeats(),
         lock_ep < depth.size() ? depth[lock_ep] : 0},
        {"barrier manager", barrier_manager_->heartbeats(),
         barrier_ep < depth.size() ? depth[barrier_ep] : 0},
    };
  });
  for (auto& n : nodes_) n->set_watchdog(&wd);

  std::vector<std::thread> threads;
  threads.reserve(cfg_.num_procs);
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    threads.emplace_back([this, &body, p] {
      obs::trace_instant("proc.start", "dsm", {"proc", p});
      try {
        body(*nodes_[p], p);
      } catch (const StallError&) {
        // The watchdog fired while this thread was blocked; its dump is the
        // run's result.  Unwinding here keeps the join below prompt.
      }
      obs::trace_instant("proc.end", "dsm", {"proc", p});
    });
  }
  for (auto& t : threads) t.join();
  for (auto& n : nodes_) n->set_watchdog(nullptr);
  wd.stop();

  RunOutcome out;
  out.stalled = wd.fired();
  out.diagnostics = wd.diagnostics();
  return out;
}

void MixedSystem::attach_op_sink(obs::OpSink* sink) {
  for (auto& n : nodes_) n->set_op_sink(sink);
}

std::map<BarrierId, std::size_t> MixedSystem::barrier_membership() const {
  std::map<BarrierId, std::size_t> m;
  for (const auto& [bar, members] : cfg_.barrier_members) m[bar] = members.size();
  return m;
}

history::History MixedSystem::collect_history() const {
  std::vector<const TraceRecorder*> traces;
  traces.reserve(nodes_.size());
  for (const auto& n : nodes_) traces.push_back(&n->trace());
  return merge_traces(cfg_.num_procs, traces);
}

MetricsSnapshot MixedSystem::metrics() const {
  MetricsSnapshot snap = fabric_.metrics();
  std::uint64_t blocked = 0;
  std::uint64_t reads_pram = 0;
  std::uint64_t reads_causal = 0;
  std::uint64_t writes = 0;
  std::uint64_t deltas = 0;
  std::uint64_t fetches = 0;
  std::uint64_t batch_msgs = 0;
  std::uint64_t batch_updates = 0;
  std::uint64_t batch_coalesced = 0;
  // Per-primitive latency, merged across all processes (docs/METRICS.md).
  LatencyHistogram read_pram_ns, read_causal_ns, await_spin_ns, lock_acquire_ns,
      barrier_wait_ns, batch_updates_per_msg;
  LatencyHistogram staleness_versions_pram, staleness_versions_causal,
      staleness_vc_pram, staleness_vc_causal;
  for (const auto& n : nodes_) {
    const NodeStats& s = n->stats();
    blocked += s.total_blocked_ns();
    reads_pram += s.reads_pram.get();
    reads_causal += s.reads_causal.get();
    writes += s.writes.get();
    deltas += s.deltas.get();
    fetches += s.fetches.get();
    batch_msgs += s.batch_msgs.get();
    batch_updates += s.batch_updates.get();
    batch_coalesced += s.batch_coalesced.get();
    read_pram_ns.merge(s.read_pram_ns);
    read_causal_ns.merge(s.read_causal_ns);
    await_spin_ns.merge(s.await_spin_ns);
    lock_acquire_ns.merge(s.lock_acquire_ns);
    barrier_wait_ns.merge(s.barrier_wait_ns);
    batch_updates_per_msg.merge(s.batch_updates_per_msg);
    staleness_versions_pram.merge(s.staleness_versions_pram);
    staleness_versions_causal.merge(s.staleness_versions_causal);
    staleness_vc_pram.merge(s.staleness_vc_pram);
    staleness_vc_causal.merge(s.staleness_vc_causal);
  }
  snap.values["dsm.blocked_ns"] = blocked;
  snap.values["dsm.reads_pram"] = reads_pram;
  snap.values["dsm.reads_causal"] = reads_causal;
  snap.values["dsm.writes"] = writes;
  snap.values["dsm.deltas"] = deltas;
  snap.values["dsm.fetches"] = fetches;
  if (cfg_.batching.has_value()) {
    snap.values["net.batch.msgs"] = batch_msgs;
    snap.values["net.batch.updates"] = batch_updates;
    snap.values["net.batch.coalesced"] = batch_coalesced;
    // Samples are record counts, not nanoseconds (docs/METRICS.md).
    snap.add_histogram("net.batch.updates_per_msg", batch_updates_per_msg);
  }
  snap.add_histogram("read.pram_ns", read_pram_ns);
  snap.add_histogram("read.causal_ns", read_causal_ns);
  snap.add_histogram("await.spin_ns", await_spin_ns);
  snap.add_histogram("lock.acquire_ns", lock_acquire_ns);
  snap.add_histogram("barrier.wait_ns", barrier_wait_ns);
  if (cfg_.track_staleness) {
    // Samples are version / vector-clock distances, not nanoseconds
    // (docs/METRICS.md "Read staleness").
    snap.add_histogram("read.staleness_versions.pram", staleness_versions_pram);
    snap.add_histogram("read.staleness_versions.causal", staleness_versions_causal);
    if (!cfg_.omit_timestamps) {
      snap.add_histogram("read.staleness_vc.pram", staleness_vc_pram);
      snap.add_histogram("read.staleness_vc.causal", staleness_vc_causal);
    }
  }
  snap.values["lockmgr.grants"] = lock_manager_->grants_sent();
  snap.add_histogram("lockmgr.grant_wait_ns", lock_manager_->grant_wait());
  snap.values["lockmgr.heartbeats"] = lock_manager_->heartbeats();
  snap.values["barriermgr.releases"] = barrier_manager_->releases_sent();
  snap.add_histogram("barriermgr.assemble_ns", barrier_manager_->assemble_time());
  snap.values["barriermgr.heartbeats"] = barrier_manager_->heartbeats();
  if (obs::trace_enabled()) {
    snap.values["obs.trace.dropped"] = obs::Tracer::instance().dropped_events();
  }
  return snap;
}

void MixedSystem::shutdown() {
  if (down_) return;
  down_ = true;
  fabric_.shutdown();
  lock_manager_->join();
  barrier_manager_->join();
  for (auto& n : nodes_) n->stop();
}

}  // namespace mc::dsm
