#include "dsm/trace.h"

#include "common/check.h"

namespace mc::dsm {

history::History merge_traces(std::size_t num_procs,
                              const std::vector<const TraceRecorder*>& traces) {
  MC_CHECK(traces.size() == num_procs);
  history::History h(num_procs);
  for (ProcId p = 0; p < num_procs; ++p) {
    for (const history::Operation& op : traces[p]->ops()) {
      MC_CHECK(op.proc == p);
      h.add(op);
    }
  }
  return h;
}

}  // namespace mc::dsm
