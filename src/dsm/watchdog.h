// Stall and deadlock watchdog for a mixed-consistency DSM instance.
//
// The Section 6 protocols are designed for reliable FIFO channels; under an
// adversarial fault plan (net/fault.h) a lost grant or a partitioned
// manager turns a correct program into a silent hang.  The watchdog makes
// that hang a crisp, diagnosable failure instead:
//
//   - every blocking DSM operation registers itself while blocked; a
//     monitor thread fires once any wait exceeds the stall deadline;
//   - the lock manager exposes its wait-for graph; a cycle that persists
//     across two consecutive polls is reported as a true lock-order
//     deadlock (with the cycle spelled out) rather than a generic stall;
//   - on firing, the watchdog assembles a Diagnostics dump — blocked
//     operations, lock table, barrier occupancy, per-endpoint in-flight
//     messages, dead reliable channels — which MixedSystem::run(body,
//     timeout) returns and bench harnesses embed in the RunReport's
//     "diagnostics" section (docs/METRICS.md).
//
// Blocked threads poll Watchdog::fired() on their condition-variable waits
// and unwind with StallError; the watchdog never unblocks anything itself
// and never calls back into DSM code while holding its own mutex.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"

namespace mc::dsm {

/// Thrown out of a blocked memory or synchronization operation once the
/// watchdog has fired, so every application thread of a wedged run unwinds
/// promptly instead of waiting out its own deadline.
class StallError : public std::runtime_error {
 public:
  explicit StallError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown out of a blocked operation on a process that a committed view
/// change removed from the membership (crash-stop simulation or eviction
/// by fault verdict).  A StallError subtype so existing unwind paths catch
/// it, but MixedSystem::run treats it as a clean per-process exit — the
/// surviving processes keep running and the run does not count as stalled.
class EvictedError : public StallError {
 public:
  explicit EvictedError(const std::string& what) : StallError(what) {}
};

class Watchdog {
 public:
  struct Options {
    /// A single blocked operation older than this fires the watchdog.
    std::chrono::nanoseconds stall_timeout{std::chrono::seconds(5)};
    /// Monitor poll period; also the granularity at which blocked threads
    /// re-check fired().
    std::chrono::nanoseconds poll{std::chrono::milliseconds(25)};
  };

  /// Everything the watchdog saw when it fired.
  struct Diagnostics {
    bool fired = false;
    std::string reason;
    std::vector<std::string> stalled_waits;   ///< "p1: barrier ... (5023 ms)"
    std::vector<std::string> deadlock_cycle;  ///< "p0 -(lock 1)-> p1"
    std::vector<std::string> locks;           ///< lock-manager table dump
    std::vector<std::string> barriers;        ///< open barrier instances
    std::vector<std::size_t> in_flight;       ///< per-endpoint mailbox depth
    std::vector<std::string> unreachable;     ///< dead reliable channels
    std::string view;                         ///< membership view (elastic)
    std::vector<std::string> hot;             ///< profiler culprits (Config::profile)
  };

  /// Edge of the lock wait-for graph: `waiter` is queued on `lock`, which
  /// `holder` currently holds.
  struct WaitEdge {
    ProcId waiter = kNoProc;
    ProcId holder = kNoProc;
    LockId lock = 0;
  };

  /// One manager thread's liveness sample: its message-dequeue counter and
  /// its mailbox depth.  A heartbeat frozen across the stall deadline while
  /// `pending > 0` means the thread is wedged (not merely idle) — traffic is
  /// waiting that it never dequeues.
  struct ManagerHealth {
    std::string name;            ///< e.g. "lock manager"
    std::uint64_t heartbeat = 0; ///< messages dequeued so far
    std::size_t pending = 0;     ///< messages sitting in its mailbox
  };

  explicit Watchdog(Options opts);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Register a blocked operation (cold path — only reached once an
  /// operation actually blocks).  The token ends the wait.
  std::uint64_t wait_begin(ProcId proc, const char* what);
  void wait_end(std::uint64_t token);

  class WaitScope {
   public:
    WaitScope(Watchdog& wd, ProcId proc, const char* what)
        : wd_(wd), token_(wd.wait_begin(proc, what)) {}
    ~WaitScope() { wd_.wait_end(token_); }
    WaitScope(const WaitScope&) = delete;
    WaitScope& operator=(const WaitScope&) = delete;

   private:
    Watchdog& wd_;
    std::uint64_t token_;
  };

  /// Source of lock wait-for edges (the lock manager).  Called from the
  /// monitor thread without the watchdog mutex held.
  void set_wait_graph_source(std::function<std::vector<WaitEdge>()> source);

  /// Extra diagnostics filled in when the watchdog fires (lock/barrier
  /// dumps, fabric in-flight counts).  Called without the mutex held.
  void set_diagnostics_source(std::function<void(Diagnostics&)> source);

  /// Source of manager liveness samples (heartbeat counter + mailbox
  /// depth per manager thread).  The monitor fires once a manager's
  /// heartbeat stays frozen for the stall deadline while its mailbox has
  /// pending traffic.  Called without the mutex held.
  void set_manager_probe(std::function<std::vector<ManagerHealth>()> probe);

  [[nodiscard]] bool fired() const {
    return fired_.load(std::memory_order_relaxed);
  }
  /// Number of operations currently registered as blocked — a liveness
  /// gauge for the time-series sampler (obs/timeseries.h).
  [[nodiscard]] std::size_t blocked_waits() const {
    std::scoped_lock lk(mu_);
    return waits_.size();
  }
  [[nodiscard]] std::chrono::nanoseconds poll_interval() const {
    return opts_.poll;
  }

  /// The dump assembled when the watchdog fired (default-constructed with
  /// fired == false otherwise).
  [[nodiscard]] Diagnostics diagnostics() const;

  /// Fire explicitly (first fire wins; later calls are no-ops).
  void fire(const std::string& reason, std::vector<std::string> cycle = {});

  /// Join the monitor thread.  Idempotent; the destructor calls it.
  void stop();

 private:
  struct Wait {
    ProcId proc;
    const char* what;
    std::chrono::steady_clock::time_point since;
  };

  void monitor_loop();
  [[nodiscard]] std::vector<std::string> describe_waits(
      std::chrono::steady_clock::time_point now) const;  // expects mu_ held
  /// One cycle of the wait-for graph as printable edges; empty if acyclic.
  [[nodiscard]] static std::vector<std::string> find_cycle(
      const std::vector<WaitEdge>& edges);

  const Options opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::uint64_t next_token_ = 1;
  std::map<std::uint64_t, Wait> waits_;
  Diagnostics diag_;
  std::vector<std::string> prev_cycle_;  // deadlock persistence across polls

  std::function<std::vector<WaitEdge>()> wait_graph_;
  std::function<void(Diagnostics&)> diag_source_;
  std::function<std::vector<ManagerHealth>()> manager_probe_;
  struct ManagerTrack {
    std::uint64_t heartbeat = 0;
    std::chrono::steady_clock::time_point since;
  };
  /// Per-manager last-progress sample, keyed by ManagerHealth::name.
  std::map<std::string, ManagerTrack> manager_track_;

  std::atomic<bool> fired_{false};
  std::thread monitor_;
};

}  // namespace mc::dsm
