#include "history/operation.h"

namespace mc::history {

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kRead: return "r";
    case OpKind::kWrite: return "w";
    case OpKind::kDelta: return "dec";
    case OpKind::kReadLock: return "rl";
    case OpKind::kReadUnlock: return "ru";
    case OpKind::kWriteLock: return "wl";
    case OpKind::kWriteUnlock: return "wu";
    case OpKind::kBarrier: return "bar";
    case OpKind::kAwait: return "await";
  }
  return "?";
}

std::string Operation::to_string() const {
  std::string out = history::to_string(kind);
  out += std::to_string(proc);
  switch (kind) {
    case OpKind::kRead:
      out += "(x" + std::to_string(var) + ")" + std::to_string(value);
      out += mode == ReadMode::kPram ? "/pram" : "/causal";
      break;
    case OpKind::kWrite:
      out += "(x" + std::to_string(var) + ")" + std::to_string(value);
      break;
    case OpKind::kDelta:
      out += "(x" + std::to_string(var) + ")-" +
             (fp ? std::to_string(double_of(value)) : std::to_string(int_of(value)));
      break;
    case OpKind::kReadLock:
    case OpKind::kReadUnlock:
    case OpKind::kWriteLock:
    case OpKind::kWriteUnlock:
      out += "(l" + std::to_string(lock) + ")@e" + std::to_string(lock_episode);
      break;
    case OpKind::kBarrier:
      out += "(B" + std::to_string(barrier) + "^" + std::to_string(barrier_epoch) + ")";
      break;
    case OpKind::kAwait:
      out += "(x" + std::to_string(var) + "=" + std::to_string(value) + ")";
      break;
  }
  return out;
}

}  // namespace mc::history
