// Graphviz (DOT) export of a history's relations — program order,
// reads-from, and the three synchronization orders, color-coded — for
// documentation and debugging of consistency violations.
//
//   dot -Tsvg history.dot -o history.svg
//
// Any edge subset can be emphasized through DotOptions::highlight_edges
// (used by the incremental checker's counterexample cycles and reusable by
// hand-written repros); counterexample_to_dot renders a violating cycle
// from the graph checker directly.

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "history/causality.h"
#include "history/dep_graph.h"
#include "history/history.h"

namespace mc::history {

struct DotOptions {
  bool include_program_order = true;
  bool include_reads_from = true;
  bool include_sync_orders = true;
  /// Also draw the transitive closure (dotted gray) — busy for anything
  /// beyond litmus-sized histories.
  bool include_causality_closure = false;
  /// Cluster operations by process (one column per process).
  bool cluster_by_process = true;
  /// OpRef pairs to emphasize: whenever an emitted relation contains one of
  /// these edges, `highlight_attrs` is appended to (and so overrides) that
  /// edge's base attributes, and both endpoints get `highlight_node_attrs`.
  std::vector<std::pair<OpRef, OpRef>> highlight_edges;
  std::string highlight_attrs = "color=crimson, fontcolor=crimson, penwidth=2.5";
  std::string highlight_node_attrs = "color=crimson, penwidth=2";
};

/// Render the history's relations as a DOT digraph.  The relations must
/// come from build_relations on the same history.
std::string to_dot(const History& h, const Relations& rel, const DotOptions& opt = {});

/// Convenience: build relations internally; returns an error-comment-only
/// graph if the history is malformed.
std::string to_dot(const History& h, const DotOptions& opt = {});

/// Render a violating cycle from the incremental checker
/// (GraphVerdict::counterexample, expressed in OpRefs) over the history:
/// every operation as a node (clustered by process), program order in faint
/// gray for context, and the cycle's typed edges highlighted.  An empty
/// cycle yields a comment-only graph.
std::string counterexample_to_dot(const History& h, const std::vector<TypedEdge>& cycle,
                                  const DotOptions& opt = {});

}  // namespace mc::history
