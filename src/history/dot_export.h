// Graphviz (DOT) export of a history's relations — program order,
// reads-from, and the three synchronization orders, color-coded — for
// documentation and debugging of consistency violations.
//
//   dot -Tsvg history.dot -o history.svg

#pragma once

#include <string>

#include "history/causality.h"
#include "history/history.h"

namespace mc::history {

struct DotOptions {
  bool include_program_order = true;
  bool include_reads_from = true;
  bool include_sync_orders = true;
  /// Also draw the transitive closure (dotted gray) — busy for anything
  /// beyond litmus-sized histories.
  bool include_causality_closure = false;
  /// Cluster operations by process (one column per process).
  bool cluster_by_process = true;
};

/// Render the history's relations as a DOT digraph.  The relations must
/// come from build_relations on the same history.
std::string to_dot(const History& h, const Relations& rel, const DotOptions& opt = {});

/// Convenience: build relations internally; returns an error-comment-only
/// graph if the history is malformed.
std::string to_dot(const History& h, const DotOptions& opt = {});

}  // namespace mc::history
