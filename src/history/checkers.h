// Consistency checkers for histories: Definitions 2 (causal read),
// 3 (PRAM read), and 4 (mixed consistency) of the paper, plus helpers used
// by the test suites to check *all* reads under one discipline.
//
// The checkers operate on complete histories (typically runtime traces) and
// report the first violations found with human-readable descriptions.  They
// are exact implementations of the paper's definitions with two documented
// generalizations:
//   - reads-from is resolved through write ids instead of the paper's
//     unique-written-values assumption;
//   - commutative delta objects (Section 5.3 counter objects) are checked
//     with set-visibility semantics: a read of a counter must equal the
//     base value combined with all causally-required deltas plus some
//     subset of the concurrent ones.

#pragma once

#include <string>
#include <vector>

#include "history/causality.h"
#include "history/history.h"

namespace mc::history {

struct CheckResult {
  bool ok = true;
  std::vector<std::string> violations;

  /// Convenience: first violation (empty when ok).
  [[nodiscard]] std::string message() const {
    return violations.empty() ? std::string{} : violations.front();
  }

  explicit operator bool() const { return ok; }
};

/// Which discipline to apply to each read operation.
enum class ReadDiscipline {
  kAsLabeled,  ///< Definition 4: check each read under its own label
  kAllCausal,  ///< check every read as a causal read (Definition 2)
  kAllPram,    ///< check every read as a PRAM read (Definition 3)
};

/// Which implementation answers the check (docs/CHECKING.md §7).
enum class CheckerBackend {
  kSearch,  ///< BitMatrix restricted relations + per-read interval search
  kGraph,   ///< incremental typed-dependency-graph checker (the default)
};

/// The backend the argument-free entry points pick for `h`: the graph
/// checker for sequential-process histories without explicit program-order
/// edges, the BitMatrix search pipeline otherwise (partial program orders
/// stay with the search checkers, which the graph checker cannot model).
[[nodiscard]] CheckerBackend default_checker_backend(const History& h);

/// Full mixed-consistency check (Definition 4): well-formedness, acyclic
/// causality, and per-read validity under the read's label.
CheckResult check_mixed_consistency(const History& h);
CheckResult check_mixed_consistency(const History& h, CheckerBackend backend);

/// Check every read under a forced discipline (litmus tests and the
/// causal/PRAM memory checkers).
CheckResult check_consistency(const History& h, ReadDiscipline discipline);
CheckResult check_consistency(const History& h, ReadDiscipline discipline,
                              CheckerBackend backend);

/// Check a single read (by reference) of the history under the given
/// restricted relation.  `restricted` must be restrict_causal(..) or
/// restrict_pram(..) for the read's process.  Exposed for tests.
CheckResult check_read(const History& h, const BitMatrix& restricted, OpRef read);

}  // namespace mc::history
