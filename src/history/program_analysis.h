// Section 4 of the paper: conditions under which programming against mixed
// consistency has the same net effect as sequentially consistent memory.
//
//  - Definition 5 commutativity, decided syntactically for the operation
//    vocabulary of the model;
//  - the Theorem 1 precondition ("every pair of operations not related by
//    the causality relation commutes");
//  - Corollary 1's entry-consistency program condition (shared variables
//    partitioned among locks; reads under a read or write lock; writes
//    under a write lock);
//  - Corollary 2's PRAM-consistency program condition (per barrier phase, a
//    variable is updated at most once and all reads of it follow the
//    update).
//
// These are the checks the paper suggests a compiler could run to decide,
// transparently to the programmer, that weak reads are safe.

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "history/causality.h"
#include "history/checkers.h"
#include "history/history.h"

namespace mc::history {

/// Definition 5, decided syntactically.  Pairs that are never enabled
/// simultaneously (e.g. a write unlock against a competing lock request)
/// commute vacuously.
[[nodiscard]] bool commutes(const Operation& a, const Operation& b);

struct Theorem1Result {
  bool precondition_holds = false;  ///< all causally-unrelated pairs commute
  bool reads_causal = false;        ///< every read passes Definition 2
  std::vector<std::string> violations;

  /// Theorem 1 then promises sequential consistency.
  [[nodiscard]] bool implies_sequentially_consistent() const {
    return precondition_holds && reads_causal;
  }
};

/// Check both hypotheses of Theorem 1 on a history.
Theorem1Result check_theorem1(const History& h);

/// Corollary 1's program condition, evaluated on a history against an
/// explicit variable -> lock association.  Every read of a shared variable
/// must execute under a read or write lock of the associated lock; every
/// write under a write lock.
CheckResult check_entry_consistent(const History& h,
                                   const std::map<VarId, LockId>& association);

/// Infer a variable -> lock association from a history: for each variable,
/// the set of locks held across *all* of its accesses.  Returns nullopt if
/// some access runs outside any common lock.
std::optional<std::map<VarId, LockId>> infer_lock_association(const History& h);

/// Corollary 2's program condition, evaluated per barrier phase: a variable
/// is updated at most once per phase, and every read of a variable updated
/// in the same phase causally follows the update.
CheckResult check_pram_consistent_phases(const History& h);

}  // namespace mc::history
