// Operations of the formal model (Section 3 of the paper).
//
// A history is a set of operations issued by processes p_0..p_{n-1}:
// memory operations (reads labeled PRAM or causal, writes, and the
// commutative *delta* operations of Section 5.3's counter objects) and
// synchronization operations (read/write lock and unlock, barriers, and
// awaits).  Every operation here is the *complete* invocation/response pair;
// the runtime only emits an operation into a trace once its response event
// has occurred, so traces are complete local histories by construction.

#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace mc::history {

enum class OpKind : std::uint8_t {
  kRead,         ///< r_i(x)v, labeled by ReadMode
  kWrite,        ///< w_i(x)v
  kDelta,        ///< commutative decrement of a counter object (Section 5.3)
  kReadLock,     ///< rl(l)
  kReadUnlock,   ///< ru(l)
  kWriteLock,    ///< wl(l)
  kWriteUnlock,  ///< wu(l)
  kBarrier,      ///< b^k_i
  kAwait,        ///< await(x = v)
};

[[nodiscard]] const char* to_string(OpKind k);

[[nodiscard]] constexpr bool is_memory_op(OpKind k) {
  return k == OpKind::kRead || k == OpKind::kWrite || k == OpKind::kDelta;
}
[[nodiscard]] constexpr bool is_lock_op(OpKind k) {
  return k == OpKind::kReadLock || k == OpKind::kReadUnlock ||
         k == OpKind::kWriteLock || k == OpKind::kWriteUnlock;
}
[[nodiscard]] constexpr bool is_unlock(OpKind k) {
  return k == OpKind::kReadUnlock || k == OpKind::kWriteUnlock;
}
[[nodiscard]] constexpr bool is_sync_op(OpKind k) {
  return is_lock_op(k) || k == OpKind::kBarrier || k == OpKind::kAwait;
}
/// Operations visible to other processes in the restricted causality set of
/// Definition 2: writes (and deltas) plus synchronization operations.
[[nodiscard]] constexpr bool is_globally_visible(OpKind k) {
  return k == OpKind::kWrite || k == OpKind::kDelta || is_sync_op(k);
}

/// Reference to an operation inside a History (dense index).
using OpRef = std::uint32_t;
inline constexpr OpRef kNoOp = ~OpRef{0};

struct Operation {
  OpKind kind = OpKind::kRead;
  ProcId proc = kNoProc;

  /// Memory location (reads/writes/deltas/awaits); kNoVar otherwise.
  VarId var = kNoVar;

  /// Lock object (lock ops only).
  LockId lock = 0;

  /// Barrier object and instance number k (barrier ops only).
  BarrierId barrier = 0;
  std::uint32_t barrier_epoch = 0;

  /// Value written / read / awaited.  For deltas, the (signed) amount
  /// subtracted, encoded via value_of(int64).
  Value value = 0;

  /// Label of a read (Definition 4).  Ignored for other kinds.
  ReadMode mode = ReadMode::kCausal;

  /// Floating-point delta (Section 5.3's counter-object Cholesky subtracts
  /// IEEE doubles, not integers): `value` holds the bit pattern of the
  /// double amount.  A variable touched by any fp delta is an fp counter —
  /// writes and reads of it carry double bit patterns too, and the checkers
  /// compare its values with a relative tolerance instead of exactly
  /// (summation order varies across serializations, so bit-exact equality
  /// would reject correct histories).
  bool fp = false;

  /// Identity bookkeeping replacing the paper's unique-written-values
  /// assumption:
  ///  - writes/deltas: this operation's own WriteId;
  ///  - reads: WriteId of the write the read returned (kInitialWrite when the
  ///    location was never written), used to derive reads-from;
  ///  - awaits: WriteId of the operation that established the awaited value
  ///    (a write, or the final delta), defining the |-> await edge.
  WriteId write_id{};

  /// Lock-grant episode (lock ops only).  The lock manager serializes
  /// ownership of each lock into episodes: each write-lock tenure is its own
  /// episode and each maximal group of concurrently-admitted readers shares
  /// one.  Episodes are numbered per lock in grant order; the |-> lock order
  /// is derived from them (see causality.cpp).
  std::uint64_t lock_episode = 0;

  /// Membership view epoch the issuing process had fenced to when the
  /// operation completed (elastic membership, dsm/view.h).  Always 0 in
  /// fixed-membership runs.  The online monitor uses it to gate barrier
  /// instances across view changes; the offline checkers ignore it (the
  /// |-> orders are derived from the operations themselves) and the text
  /// format does not carry it, like trace_id below.
  std::uint64_t view_epoch = 0;

  /// Chrome-trace correlation id (runtime-only; 0 = none).  When tracing is
  /// enabled the node stamps each operation with a flow id and emits a
  /// matching trace instant, so a live-monitor counterexample (DOT) can name
  /// the exact trace events involved.  Not part of the formal model and not
  /// serialized with histories.
  std::uint64_t trace_id = 0;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace mc::history
