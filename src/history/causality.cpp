#include "history/causality.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/check.h"

namespace mc::history {

namespace {

/// Direct program-order edges: the implicit per-process chain (for
/// sequential histories) plus every explicit edge.
BitMatrix build_program_order(const History& h) {
  BitMatrix po(h.size());
  if (h.sequential_processes()) {
    for (ProcId p = 0; p < h.num_procs(); ++p) {
      const auto& ops = h.ops_of(p);
      for (std::size_t k = 1; k < ops.size(); ++k) po.set(ops[k - 1], ops[k]);
    }
  }
  for (const auto& [a, b] : h.explicit_program_edges()) po.set(a, b);
  return po;
}

[[nodiscard]] constexpr bool is_w_class(OpKind k) {
  return k == OpKind::kWriteLock || k == OpKind::kWriteUnlock;
}

/// Object identity for the "one pending invocation per object" condition:
/// memory ops and awaits address a location; lock ops address a lock.
/// Barriers are handled by condition 4 instead.
std::optional<std::uint64_t> object_of(const Operation& op) {
  if (is_memory_op(op.kind) || op.kind == OpKind::kAwait) {
    return std::uint64_t{op.var};
  }
  if (is_lock_op(op.kind)) return (std::uint64_t{1} << 40) | op.lock;
  return std::nullopt;
}

}  // namespace

std::optional<std::string> check_well_formed(const History& h) {
  const BitMatrix po = build_program_order(h);

  // Condition 1: program order is acyclic (and, by History's construction,
  // intra-process only).
  const auto topo = po.topological_order();
  if (!topo) return "program order contains a cycle";

  const BitMatrix po_closed = po.closed();

  for (ProcId p = 0; p < h.num_procs(); ++p) {
    const auto& ops = h.ops_of(p);

    // Condition 2: two operations of one process on the same object must be
    // program-ordered.  Sequential processes satisfy this by construction.
    if (!h.sequential_processes()) {
      for (std::size_t a = 0; a < ops.size(); ++a) {
        for (std::size_t b = a + 1; b < ops.size(); ++b) {
          const auto oa = object_of(h.op(ops[a]));
          const auto ob = object_of(h.op(ops[b]));
          if (!oa || !ob || *oa != *ob) continue;
          if (!po_closed.get(ops[a], ops[b]) && !po_closed.get(ops[b], ops[a])) {
            return "process " + std::to_string(p) +
                   " has concurrent operations on one object: " +
                   h.op(ops[a]).to_string() + " and " + h.op(ops[b]).to_string();
          }
        }
      }
    }

    // Condition 3: unlocks match preceding locks of the same kind on the
    // same lock, scanned in a program-order-compatible sequence.
    std::vector<OpRef> order = ops;
    if (!h.sequential_processes()) {
      std::sort(order.begin(), order.end(), [&](OpRef x, OpRef y) {
        if (po_closed.get(x, y)) return true;
        if (po_closed.get(y, x)) return false;
        return x < y;
      });
    }
    std::map<LockId, int> read_held;
    std::map<LockId, int> write_held;
    for (const OpRef r : order) {
      const Operation& op = h.op(r);
      switch (op.kind) {
        case OpKind::kReadLock: ++read_held[op.lock]; break;
        case OpKind::kWriteLock:
          if (++write_held[op.lock] > 1) {
            return "process " + std::to_string(p) + " re-acquires write lock l" +
                   std::to_string(op.lock) + " without unlocking";
          }
          break;
        case OpKind::kReadUnlock:
          if (--read_held[op.lock] < 0) {
            return "unmatched read unlock on l" + std::to_string(op.lock) +
                   " by process " + std::to_string(p);
          }
          break;
        case OpKind::kWriteUnlock:
          if (--write_held[op.lock] < 0) {
            return "unmatched write unlock on l" + std::to_string(op.lock) +
                   " by process " + std::to_string(p);
          }
          break;
        default: break;
      }
    }

    // Condition 4: barriers are totally ordered with respect to all other
    // operations of the process.  Trivial for sequential processes.
    if (!h.sequential_processes()) {
      for (const OpRef b : ops) {
        if (h.op(b).kind != OpKind::kBarrier) continue;
        for (const OpRef o : ops) {
          if (o == b) continue;
          if (!po_closed.get(o, b) && !po_closed.get(b, o)) {
            return "barrier " + h.op(b).to_string() +
                   " is not ordered with respect to " + h.op(o).to_string();
          }
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<Relations> build_relations(const History& h, std::string* error) {
  auto fail = [&](std::string msg) -> std::optional<Relations> {
    if (error) *error = std::move(msg);
    return std::nullopt;
  };

  if (auto wf = check_well_formed(h)) return fail("malformed history: " + *wf);

  Relations rel{BitMatrix(h.size()), BitMatrix(h.size()), BitMatrix(h.size()),
                BitMatrix(h.size()), BitMatrix(h.size()), BitMatrix(h.size())};
  rel.program_order = build_program_order(h);

  // Reads-from |. : writer -> read, resolved through write ids.  Await
  // resolution feeds the await order instead.
  std::unordered_map<WriteId, OpRef> writer_of;
  for (OpRef i = 0; i < h.size(); ++i) {
    const Operation& op = h.op(i);
    if (op.kind == OpKind::kWrite || op.kind == OpKind::kDelta) {
      if (!op.write_id.valid()) return fail("write without a write id: " + op.to_string());
      if (!writer_of.insert({op.write_id, i}).second) {
        return fail("duplicate write id on " + op.to_string());
      }
    }
  }
  for (OpRef i = 0; i < h.size(); ++i) {
    const Operation& op = h.op(i);
    if (op.kind != OpKind::kRead && op.kind != OpKind::kAwait) continue;
    if (!op.write_id.valid()) continue;  // reads the initial value
    auto it = writer_of.find(op.write_id);
    if (it == writer_of.end()) {
      return fail("read resolves to a write that is not in the history: " + op.to_string());
    }
    const Operation& w = h.op(it->second);
    if (w.var != op.var) {
      return fail("read of x" + std::to_string(op.var) +
                  " resolves to a write of a different location: " + w.to_string());
    }
    if (op.kind == OpKind::kRead) {
      rel.reads_from.set(it->second, i);
    } else {
      rel.sync_await.set(it->second, i);  // |-> await: w(x)v |-> await(x=v)
    }
  }

  // |-> lock from grant episodes: all cross-episode pairs where at least one
  // side is a write-class operation, plus wl -> wu within a write tenure.
  {
    std::map<LockId, std::vector<OpRef>> per_lock;
    for (OpRef i = 0; i < h.size(); ++i) {
      if (is_lock_op(h.op(i).kind)) per_lock[h.op(i).lock].push_back(i);
    }
    for (const auto& [lock, ops] : per_lock) {
      (void)lock;
      for (const OpRef a : ops) {
        for (const OpRef b : ops) {
          if (a == b) continue;
          const Operation& oa = h.op(a);
          const Operation& ob = h.op(b);
          if (oa.lock_episode < ob.lock_episode) {
            if (is_w_class(oa.kind) || is_w_class(ob.kind)) rel.sync_lock.set(a, b);
          } else if (oa.lock_episode == ob.lock_episode &&
                     oa.kind == OpKind::kWriteLock && ob.kind == OpKind::kWriteUnlock) {
            rel.sync_lock.set(a, b);
          }
        }
      }
    }
  }

  // |-> bar: group by (barrier object, epoch); every operation program-
  // ordered before a member's barrier precedes *all* members, and every
  // member precedes all operations program-ordered after any member's
  // barrier (Section 3.1.2).
  {
    const BitMatrix po_closed = rel.program_order.closed();
    std::map<std::pair<BarrierId, std::uint32_t>, std::vector<OpRef>> instances;
    for (OpRef i = 0; i < h.size(); ++i) {
      const Operation& op = h.op(i);
      if (op.kind == OpKind::kBarrier) {
        instances[{op.barrier, op.barrier_epoch}].push_back(i);
      }
    }
    for (const auto& [key, members] : instances) {
      (void)key;
      for (const OpRef b : members) {
        const ProcId p = h.op(b).proc;
        for (const OpRef o : h.ops_of(p)) {
          if (o == b) continue;
          if (po_closed.get(o, b)) {
            for (const OpRef m : members) {
              if (m != o) rel.sync_bar.set(o, m);
            }
          } else if (po_closed.get(b, o)) {
            for (const OpRef m : members) {
              if (m != o) rel.sync_bar.set(m, o);
            }
          }
        }
      }
    }
  }

  // Causality ~>: closure of the union; must be acyclic (Section 3 restricts
  // attention to histories with acyclic causality relations).
  rel.causality = rel.program_order;
  rel.causality.merge(rel.reads_from);
  rel.causality.merge(rel.sync_lock);
  rel.causality.merge(rel.sync_bar);
  rel.causality.merge(rel.sync_await);
  if (rel.causality.has_cycle()) return fail("causality relation is cyclic");
  rel.causality.close_transitively();
  return rel;
}

bool in_restricted_set(const Operation& op, ProcId i) {
  return op.proc == i || is_globally_visible(op.kind);
}

BitMatrix restrict_causal(const History& h, const Relations& rel, ProcId i) {
  BitMatrix out = rel.causality;
  std::vector<bool> keep(h.size());
  for (OpRef r = 0; r < h.size(); ++r) keep[r] = in_restricted_set(h.op(r), i);
  out.mask(keep);
  return out;
}

BitMatrix restrict_group(const History& h, const Relations& rel, ProcId i,
                         const std::vector<ProcId>& group) {
  std::vector<bool> member(h.num_procs(), false);
  for (const ProcId p : group) {
    MC_CHECK(p < h.num_procs());
    member[p] = true;
  }
  MC_CHECK_MSG(member[i], "the reading process must belong to its causality group");

  BitMatrix pram_sync = rel.sync_lock.reduced();
  pram_sync.merge(rel.sync_bar.reduced());
  pram_sync.merge(rel.sync_await.reduced());

  BitMatrix base = rel.program_order;
  const auto incident = [&](OpRef a, std::size_t b) {
    return member[h.op(a).proc] || member[h.op(static_cast<OpRef>(b)).proc];
  };
  for (OpRef a = 0; a < h.size(); ++a) {
    for (const std::size_t b : pram_sync.successors(a)) {
      if (incident(a, b)) base.set(a, b);
    }
    for (const std::size_t b : rel.reads_from.successors(a)) {
      if (incident(a, b)) base.set(a, b);
    }
  }

  base.close_transitively();
  std::vector<bool> keep(h.size());
  for (OpRef r = 0; r < h.size(); ++r) keep[r] = in_restricted_set(h.op(r), i);
  base.mask(keep);
  return base;
}

BitMatrix restrict_pram(const History& h, const Relations& rel, ProcId i) {
  // Step 1: transitive reduction of each synchronization order, unioned.
  BitMatrix pram_sync = rel.sync_lock.reduced();
  pram_sync.merge(rel.sync_bar.reduced());
  pram_sync.merge(rel.sync_await.reduced());

  // Step 2: keep only synchronization and reads-from edges incident to
  // operations of process i.
  BitMatrix base = rel.program_order;
  for (OpRef a = 0; a < h.size(); ++a) {
    for (const std::size_t b : pram_sync.successors(a)) {
      if (h.op(a).proc == i || h.op(b).proc == i) base.set(a, b);
    }
    for (const std::size_t b : rel.reads_from.successors(a)) {
      if (h.op(a).proc == i || h.op(b).proc == i) base.set(a, b);
    }
  }

  // Step 3: close and project onto all operations except reads of other
  // processes.
  base.close_transitively();
  std::vector<bool> keep(h.size());
  for (OpRef r = 0; r < h.size(); ++r) keep[r] = in_restricted_set(h.op(r), i);
  base.mask(keep);
  return base;
}

}  // namespace mc::history
