// Construction of the causality relation of a history (Section 3) and of
// the per-process restricted relations used by Definitions 2 and 3.
//
// The causality relation ~> is the transitive closure of
//     program order (->)  ∪  reads-from (|.)  ∪  synchronization order (|->)
// where |-> is itself the union of the lock, barrier, and await orders.
// All relations are materialized as BitMatrix digraphs over the operation
// indices of the history.

#pragma once

#include <optional>
#include <string>

#include "common/bit_matrix.h"
#include "history/history.h"

namespace mc::history {

/// All generating relations plus the closed causality relation.
struct Relations {
  BitMatrix program_order;  ///< direct -> edges (chain and explicit)
  BitMatrix reads_from;     ///< |. edges, derived from write ids
  BitMatrix sync_lock;      ///< |-> lock edges (episode construction)
  BitMatrix sync_bar;       ///< |-> bar edges
  BitMatrix sync_await;     ///< |-> await edges
  BitMatrix causality;      ///< ~>: transitive closure of the union
};

/// Checks the four well-formedness conditions of Section 3 on every local
/// history:
///   1. program order is a (per-process, acyclic) partial order;
///   2. no two program-order-concurrent operations of one process address
///      the same object (the "at most one pending invocation per object"
///      condition, phrased for complete histories);
///   3. every unlock has a preceding matching lock by the same process on
///      the same lock object (and tenures do not overlap per process);
///   4. every barrier operation is totally ordered with respect to all
///      other operations of its process.
/// Returns a description of the first violation, or nullopt when well
/// formed.
std::optional<std::string> check_well_formed(const History& h);

/// Builds all relations.  Returns std::nullopt (and an error message via
/// `error`) if the history is malformed or its causality relation is
/// cyclic.
std::optional<Relations> build_relations(const History& h, std::string* error = nullptr);

/// The restricted causality relation ~>_{i,C} of Definition 2: the full
/// causality relation projected onto the operations of process i plus all
/// globally-visible (write/delta/synchronization) operations of other
/// processes.  Projection keeps connectivity through excluded operations
/// (closure first, restriction second).
BitMatrix restrict_causal(const History& h, const Relations& rel, ProcId i);

/// The PRAM order ~>_{i,P} of Definition 3:
///  1. transitively reduce each synchronization order separately and union
///     them into |->_PRAM;
///  2. keep only |->_PRAM and reads-from edges incident to operations of
///     process i;
///  3. close under the full program order and project as in Definition 2.
BitMatrix restrict_pram(const History& h, const Relations& rel, ProcId i);

/// Section 3.2's generalization: "the definition can be easily generalized
/// to maintain causality across an arbitrary group of processes; PRAM reads
/// and causal reads form the two end points of the spectrum."  Keeps
/// synchronization and reads-from edges incident to *any member of the
/// group* in step 2 of Definition 3.  group = {i} yields ~>_{i,P}; group =
/// all processes yields ~>_{i,C}.  `i` must be a member.
BitMatrix restrict_group(const History& h, const Relations& rel, ProcId i,
                         const std::vector<ProcId>& group);

/// The operation set underlying both restrictions: ops of process i plus
/// globally-visible ops of others.  Exposed for the checkers.
[[nodiscard]] bool in_restricted_set(const Operation& op, ProcId i);

}  // namespace mc::history
