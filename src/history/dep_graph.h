// Typed dependency graph over the operations of a history — the sparse
// backbone of the incremental checker (docs/CHECKING.md).
//
// Steinke & Nutt show that the classical consistency models are all
// decidable from one dependency structure by varying which edges are
// admitted; this graph materializes that structure with an explicit type
// on every edge:
//
//   kProgram     ->      program order (per-process chain)
//   kReadsFrom   |.      write-to-read data dependence        (WR)
//   kLock/kBarrier/kAwait  the three |-> synchronization orders (SO)
//   kWriteOrder  forced or candidate write-ordering edges      (WW)
//   kAntiDep     read-before-overwrite edges                   (RW)
//
// The generating relations of causality.h (program order, reads-from and
// the sync orders) appear as the first five types; WW and RW edges are
// *derived* by the checker from read observations and only participate in
// the coherence / sequential-consistency analyses.
//
// Unlike common/bit_matrix.h the adjacency is sparse (per-vertex edge
// vectors), so a graph over a million operations costs O(V + E) memory
// instead of O(V^2) bits.  `to_bit_matrix` exports any edge subset densely
// for litmus-scale cross-validation against the BitMatrix pipeline.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bit_matrix.h"
#include "history/operation.h"

namespace mc::history {

enum class EdgeType : std::uint8_t {
  kProgram = 0,
  kReadsFrom,
  kLock,
  kBarrier,
  kAwait,
  kWriteOrder,
  kAntiDep,
};
inline constexpr std::size_t kNumEdgeTypes = 7;

[[nodiscard]] const char* edge_type_name(EdgeType t);

/// Bitmask over edge types for subset selection (Steinke–Nutt style).
using EdgeMask = std::uint8_t;

[[nodiscard]] constexpr EdgeMask edge_bit(EdgeType t) {
  return static_cast<EdgeMask>(1u << static_cast<unsigned>(t));
}

inline constexpr EdgeMask kSyncEdges =
    edge_bit(EdgeType::kLock) | edge_bit(EdgeType::kBarrier) | edge_bit(EdgeType::kAwait);
/// The generating relations of the causality relation ~> (Section 3).
inline constexpr EdgeMask kCausalityEdges =
    edge_bit(EdgeType::kProgram) | edge_bit(EdgeType::kReadsFrom) | kSyncEdges;
inline constexpr EdgeMask kAllEdges =
    kCausalityEdges | edge_bit(EdgeType::kWriteOrder) | edge_bit(EdgeType::kAntiDep);

struct TypedEdge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  EdgeType type = EdgeType::kProgram;

  friend bool operator==(const TypedEdge&, const TypedEdge&) = default;
};

class DepGraph {
 public:
  DepGraph() = default;
  explicit DepGraph(std::size_t reserve_nodes) { adj_.reserve(reserve_nodes); }

  /// Append a vertex; returns its index.
  std::uint32_t add_node();
  void ensure_nodes(std::size_t n);

  [[nodiscard]] std::size_t num_nodes() const { return adj_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }
  [[nodiscard]] std::uint64_t edge_count(EdgeType t) const {
    return by_type_[static_cast<std::size_t>(t)];
  }

  /// Insert a typed edge.  Duplicate (from, to, type) triples are the
  /// caller's concern — the graph stores whatever it is given.
  void add_edge(std::uint32_t from, std::uint32_t to, EdgeType type);

  struct HalfEdge {
    std::uint32_t to;
    EdgeType type;
  };
  [[nodiscard]] const std::vector<HalfEdge>& out_edges(std::uint32_t v) const {
    return adj_[v];
  }

  /// Dense export of the selected edge subset, for cross-validation against
  /// the BitMatrix relations at litmus scale.  O(V^2) memory — do not call
  /// on streaming-scale graphs.
  [[nodiscard]] BitMatrix to_bit_matrix(EdgeMask mask = kAllEdges) const;

  struct SccResult {
    std::vector<std::uint32_t> component;  ///< vertex -> component id
    std::uint32_t count = 0;               ///< number of components
    bool acyclic = true;                   ///< every component is a singleton
  };
  /// Strongly connected components of the selected edge subset (iterative
  /// Tarjan, O(V + E); no recursion, safe at millions of vertices).
  [[nodiscard]] SccResult scc(EdgeMask mask = kAllEdges) const;

  /// Some cycle of the selected subset as a closed edge sequence
  /// (edge[i].to == edge[i+1].from, last wraps to first); empty when the
  /// subset is acyclic.  Used for counterexample extraction.
  [[nodiscard]] std::vector<TypedEdge> find_cycle(EdgeMask mask = kAllEdges) const;

  /// BFS shortest path from -> to over edges selected by `mask` and
  /// accepted by `admit` (pass nullptr to accept all).  Empty when
  /// unreachable or from == to.  Used to close counterexample cycles.
  [[nodiscard]] std::vector<TypedEdge> find_path(
      std::uint32_t from, std::uint32_t to, EdgeMask mask = kAllEdges,
      const std::function<bool(const TypedEdge&)>& admit = nullptr) const;

  /// Drop retired vertices and renumber the survivors (windowed pruning,
  /// docs/CHECKING.md §10).  `remap[v]` is the new index of vertex v or
  /// `~0u` when v is retired; the mapping must be monotone on survivors.
  /// `live` is the surviving vertex count.  Edges with a retired endpoint
  /// disappear and the per-type edge counts are recomputed.
  void compact(const std::vector<std::uint32_t>& remap, std::uint32_t live);

 private:
  std::vector<std::vector<HalfEdge>> adj_;
  std::size_t num_edges_ = 0;
  std::uint64_t by_type_[kNumEdgeTypes] = {};
};

}  // namespace mc::history
