#include "history/program_analysis.h"

#include <set>

#include "common/check.h"

namespace mc::history {

namespace {

bool lock_ops_commute(const Operation& a, const Operation& b) {
  if (a.lock != b.lock) return true;
  auto w = [](OpKind k) { return k == OpKind::kWriteLock; };
  auto r = [](OpKind k) { return k == OpKind::kReadLock; };
  // Pairs that can be simultaneously enabled and whose order matters:
  //   rl vs wl  (free lock: rl;wl is not a legal continuation)
  //   wl vs wl  (free lock: wl;wl is not legal)
  // Everything else is either order-insensitive (rl/rl, unlock bookkeeping)
  // or never simultaneously enabled (any pair involving an unlock whose
  // holder excludes the other operation), hence commutes vacuously under
  // Definition 5.
  if (w(a.kind) && w(b.kind)) return false;
  if ((w(a.kind) && r(b.kind)) || (r(a.kind) && w(b.kind))) return false;
  return true;
}

}  // namespace

bool commutes(const Operation& a, const Operation& b) {
  const bool a_mem = is_memory_op(a.kind) || a.kind == OpKind::kAwait;
  const bool b_mem = is_memory_op(b.kind) || b.kind == OpKind::kAwait;
  if (a_mem && b_mem) {
    if (a.var != b.var) return true;
    const bool a_read = a.kind == OpKind::kRead || a.kind == OpKind::kAwait;
    const bool b_read = b.kind == OpKind::kRead || b.kind == OpKind::kAwait;
    if (a_read && b_read) return true;
    if (a.kind == OpKind::kDelta && b.kind == OpKind::kDelta) return true;
    // An await against a mutation of its location: if the mutation leaves
    // the awaited value in place both orders agree; otherwise one order is
    // not a legal sequential history while the other is — not commuting.
    if (a.kind == OpKind::kAwait && b.kind == OpKind::kWrite && b.value == a.value) return true;
    if (b.kind == OpKind::kAwait && a.kind == OpKind::kWrite && a.value == b.value) return true;
    return false;
  }
  if (is_lock_op(a.kind) && is_lock_op(b.kind)) return lock_ops_commute(a, b);
  // Barriers change no state; memory-vs-lock pairs touch disjoint objects.
  return true;
}

Theorem1Result check_theorem1(const History& h) {
  Theorem1Result out;
  std::string err;
  auto rel = build_relations(h, &err);
  if (!rel) {
    out.violations.push_back(err);
    return out;
  }
  out.precondition_holds = true;
  for (OpRef a = 0; a < h.size() && out.violations.size() < 8; ++a) {
    for (OpRef b = a + 1; b < h.size(); ++b) {
      if (rel->causality.get(a, b) || rel->causality.get(b, a)) continue;
      if (!commutes(h.op(a), h.op(b))) {
        out.precondition_holds = false;
        out.violations.push_back("concurrent non-commuting pair: " + h.op(a).to_string() +
                                 " vs " + h.op(b).to_string());
        if (out.violations.size() >= 8) break;
      }
    }
  }
  out.reads_causal = check_consistency(h, ReadDiscipline::kAllCausal).ok;
  if (!out.reads_causal) out.violations.push_back("some read is not a causal read");
  return out;
}

CheckResult check_entry_consistent(const History& h,
                                   const std::map<VarId, LockId>& association) {
  CheckResult out;
  for (ProcId p = 0; p < h.num_procs(); ++p) {
    std::map<LockId, int> read_held;
    std::map<LockId, int> write_held;
    for (const OpRef r : h.ops_of(p)) {
      const Operation& op = h.op(r);
      switch (op.kind) {
        case OpKind::kReadLock: ++read_held[op.lock]; break;
        case OpKind::kReadUnlock: --read_held[op.lock]; break;
        case OpKind::kWriteLock: ++write_held[op.lock]; break;
        case OpKind::kWriteUnlock: --write_held[op.lock]; break;
        case OpKind::kRead:
        case OpKind::kWrite:
        case OpKind::kDelta: {
          auto it = association.find(op.var);
          if (it == association.end()) {
            out.ok = false;
            out.violations.push_back("x" + std::to_string(op.var) +
                                     " has no associated lock (accessed by " +
                                     op.to_string() + ")");
            break;
          }
          const LockId l = it->second;
          const bool w = write_held[l] > 0;
          const bool rd = read_held[l] > 0;
          if (op.kind == OpKind::kRead ? !(w || rd) : !w) {
            out.ok = false;
            out.violations.push_back(op.to_string() + " executes outside the required " +
                                     (op.kind == OpKind::kRead ? "read/write" : "write") +
                                     " critical section of l" + std::to_string(l));
          }
          break;
        }
        default: break;
      }
      if (out.violations.size() >= 8) return out;
    }
  }
  return out;
}

std::optional<std::map<VarId, LockId>> infer_lock_association(const History& h) {
  std::map<VarId, std::set<LockId>> candidates;
  std::map<VarId, bool> seen;
  for (ProcId p = 0; p < h.num_procs(); ++p) {
    std::map<LockId, int> held;
    for (const OpRef r : h.ops_of(p)) {
      const Operation& op = h.op(r);
      if (op.kind == OpKind::kReadLock || op.kind == OpKind::kWriteLock) ++held[op.lock];
      if (op.kind == OpKind::kReadUnlock || op.kind == OpKind::kWriteUnlock) --held[op.lock];
      if (!is_memory_op(op.kind)) continue;
      std::set<LockId> now;
      for (const auto& [l, n] : held) {
        if (n > 0) now.insert(l);
      }
      if (!seen[op.var]) {
        candidates[op.var] = now;
        seen[op.var] = true;
      } else {
        std::set<LockId> inter;
        for (const LockId l : candidates[op.var]) {
          if (now.count(l)) inter.insert(l);
        }
        candidates[op.var] = inter;
      }
    }
  }
  std::map<VarId, LockId> out;
  for (const auto& [x, locks] : candidates) {
    if (locks.empty()) return std::nullopt;
    out[x] = *locks.begin();
  }
  return out;
}

CheckResult check_pram_consistent_phases(const History& h) {
  CheckResult out;
  std::string err;
  auto rel = build_relations(h, &err);
  if (!rel) {
    out.ok = false;
    out.violations.push_back(err);
    return out;
  }

  // Phase of an operation: number of barrier operations preceding it in its
  // process (sequential processes assumed; traces satisfy this).
  std::vector<std::uint32_t> phase(h.size(), 0);
  for (ProcId p = 0; p < h.num_procs(); ++p) {
    std::uint32_t k = 0;
    for (const OpRef r : h.ops_of(p)) {
      phase[r] = k;
      if (h.op(r).kind == OpKind::kBarrier) ++k;
    }
  }

  std::map<std::pair<VarId, std::uint32_t>, OpRef> writer_in_phase;
  for (OpRef r = 0; r < h.size(); ++r) {
    const Operation& op = h.op(r);
    if (op.kind != OpKind::kWrite && op.kind != OpKind::kDelta) continue;
    auto [it, inserted] = writer_in_phase.insert({{op.var, phase[r]}, r});
    if (!inserted) {
      out.ok = false;
      out.violations.push_back("x" + std::to_string(op.var) + " updated twice in phase " +
                               std::to_string(phase[r]) + ": " + h.op(it->second).to_string() +
                               " and " + op.to_string());
    }
  }
  for (OpRef r = 0; r < h.size() && out.violations.size() < 8; ++r) {
    const Operation& op = h.op(r);
    if (op.kind != OpKind::kRead) continue;
    auto it = writer_in_phase.find({op.var, phase[r]});
    if (it == writer_in_phase.end() || it->second == r) continue;
    if (!rel->causality.get(it->second, r)) {
      out.ok = false;
      out.violations.push_back(op.to_string() + " does not follow same-phase update " +
                               h.op(it->second).to_string());
    }
  }
  return out;
}

}  // namespace mc::history
