#include "history/incremental_checker.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <unordered_set>

#include "common/check.h"

namespace mc::history {

namespace {

/// Same relative tolerance as the batch checker's fp branch (checkers.cpp).
bool fp_close(double a, double b) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= 1e-8 * scale;
}

std::uint64_t bar_key(const Operation& op) {
  return (std::uint64_t{op.barrier} << 32) | op.barrier_epoch;
}

GraphVerdict error_verdict(std::string msg) {
  GraphVerdict v;
  v.well_formed = false;
  v.error = msg;
  for (CheckResult* r : {&v.mixed, &v.causal, &v.pram}) {
    r->ok = false;
    r->violations.push_back(msg);
  }
  return v;
}

}  // namespace

IncrementalChecker::IncrementalChecker(std::size_t num_procs)
    : num_procs_(num_procs),
      prev_node_(num_procs, kNoNode),
      own_track_(num_procs),
      read_held_(num_procs),
      write_held_(num_procs) {
  MC_CHECK(num_procs > 0);
}

void IncrementalChecker::fail(std::string msg) {
  if (error_.empty()) error_ = std::move(msg);
}

std::uint32_t IncrementalChecker::append_node(const Operation& op, std::uint32_t ext_id) {
  const auto node = static_cast<std::uint32_t>(ops_.size());
  ops_.push_back(op);
  ext_.push_back(ext_id);
  const std::uint32_t pred = prev_node_[op.proc];
  pidx_.push_back(pred == kNoNode ? 0 : pidx_[pred] + 1);
  graph_.add_node();
  causal_.resize(ops_.size() * num_procs_, 0);
  pram_.resize(ops_.size() * num_procs_ * num_procs_, 0);
  return node;
}

void IncrementalChecker::connect(std::uint32_t node, std::uint32_t src, EdgeType type) {
  MC_CHECK_MSG(src < node, "dependency edges must point old -> new");
  in_edges_.push_back({src, type});
}

void IncrementalChecker::compute_clocks(std::uint32_t node) {
  const ProcId p = ops_[node].proc;
  const auto join = [this](std::uint32_t* dst, const std::uint32_t* src) {
    for (std::size_t q = 0; q < num_procs_; ++q) dst[q] = std::max(dst[q], src[q]);
  };

  std::uint32_t* c = causal_.data() + static_cast<std::size_t>(node) * num_procs_;
  for (const auto& [src, type] : in_edges_) {
    (void)type;
    join(c, causal_clock(src));
  }
  c[p] = std::max(c[p], pidx_[node] + 1);

  // One clock per observer i: Definition 3's construction — full program
  // order always propagates; synchronization and reads-from edges join only
  // when incident to an operation of process i.
  for (ProcId i = 0; i < num_procs_; ++i) {
    std::uint32_t* g = pram_.data() +
                       (static_cast<std::size_t>(node) * num_procs_ + i) * num_procs_;
    for (const auto& [src, type] : in_edges_) {
      if (type == EdgeType::kProgram || p == i || ops_[src].proc == i) {
        join(g, pram_clock(src, i));
      }
    }
    g[p] = std::max(g[p], pidx_[node] + 1);
  }
}

bool IncrementalChecker::feed(const Operation& op) {
  return feed(op, static_cast<std::uint32_t>(ops_.size()));
}

bool IncrementalChecker::feed(const Operation& op, std::uint32_t ext_id) {
  MC_CHECK_MSG(!finalized_, "feed after finalize");
  if (failed()) return false;
  if (op.proc >= num_procs_) {
    fail("operation of an unknown process: " + op.to_string());
    return false;
  }

  const ProcId p = op.proc;
  const std::uint32_t pred = prev_node_[p];
  const std::uint32_t node = append_node(op, ext_id);
  in_edges_.clear();

  if (pred != kNoNode) {
    connect(node, pred, EdgeType::kProgram);
    // Barrier release: the first operation after a member joins the
    // instance's downstream closure of *all* members.
    if (ops_[pred].kind == OpKind::kBarrier) {
      BarState& b = barriers_[bar_key(ops_[pred])];
      b.released = true;
      for (const std::uint32_t m : b.members) {
        if (m != pred) connect(node, m, EdgeType::kBarrier);
      }
    }
  }

  std::uint32_t rf_writer = kNoNode;
  switch (op.kind) {
    case OpKind::kWrite:
    case OpKind::kDelta: {
      if (!op.write_id.valid()) {
        fail("write without a write id: " + op.to_string());
        return false;
      }
      if (!writers_.insert({op.write_id, node}).second) {
        fail("duplicate write id on " + op.to_string());
        return false;
      }
      break;
    }
    case OpKind::kRead:
    case OpKind::kAwait: {
      if (op.write_id.valid()) {
        auto it = writers_.find(op.write_id);
        if (it == writers_.end()) {
          // The writer either does not exist or has not been fed yet; both
          // breach the reads-from edge of a causal linear extension.
          fail("read resolves to a write that is not in the history: " + op.to_string());
          return false;
        }
        if (ops_[it->second].var != op.var) {
          fail("read of x" + std::to_string(op.var) +
               " resolves to a write of a different location: " +
               ops_[it->second].to_string());
          return false;
        }
        rf_writer = it->second;
        connect(node, rf_writer,
                op.kind == OpKind::kRead ? EdgeType::kReadsFrom : EdgeType::kAwait);
      }
      break;
    }
    case OpKind::kReadLock:
    case OpKind::kReadUnlock:
    case OpKind::kWriteLock:
    case OpKind::kWriteUnlock: {
      if (op.kind == OpKind::kReadLock) {
        ++read_held_[p][op.lock];
      } else if (op.kind == OpKind::kReadUnlock) {
        if (--read_held_[p][op.lock] < 0) {
          fail("malformed history: unmatched read unlock on l" + std::to_string(op.lock) +
               " by process " + std::to_string(p));
          return false;
        }
      } else if (op.kind == OpKind::kWriteLock) {
        if (++write_held_[p][op.lock] > 1) {
          fail("malformed history: process " + std::to_string(p) +
               " re-acquires write lock l" + std::to_string(op.lock) +
               " without unlocking");
          return false;
        }
      } else {
        if (--write_held_[p][op.lock] < 0) {
          fail("malformed history: unmatched write unlock on l" + std::to_string(op.lock) +
               " by process " + std::to_string(p));
          return false;
        }
      }

      LockState& s = locks_[op.lock];
      const std::uint64_t e = op.lock_episode;
      const bool w_class =
          op.kind == OpKind::kWriteLock || op.kind == OpKind::kWriteUnlock;
      if (s.have_w && e < s.w_episode) {
        fail("operations not fed in causal order: " + op.to_string() +
             " belongs to an episode before the current write episode of its lock");
        return false;
      }
      if (op.kind == OpKind::kWriteLock) {
        if (s.have_w && s.w_open && e != s.w_episode) {
          fail("operations not fed in causal order: " + op.to_string() +
               " opens a write episode while another is still locked");
          return false;
        }
        if (s.have_w && !s.w_open && e == s.w_episode) {
          fail("unsupported lock episode structure: " + op.to_string() +
               " re-enters a closed write episode");
          return false;
        }
        if (s.have_w && s.w_open && e == s.w_episode) {
          s.open_wls.push_back(node);  // co-held write tenure: no |-> edges
          break;
        }
        // New write episode: attach behind the accumulated read-class
        // operations, or directly behind the previous write tenure.
        std::vector<std::uint32_t> still_pending;
        for (const std::uint32_t r : s.pending_r) {
          const std::uint64_t re = ops_[r].lock_episode;
          if (re > e) {
            fail("operations not fed in causal order: " + op.to_string() +
                 " arrives after read-class operations of a later episode");
            return false;
          }
          if (re == e) {
            still_pending.push_back(r);  // same-episode read ops: unrelated
          } else {
            connect(node, r, EdgeType::kLock);
          }
        }
        // The previous write tenure's attachment op must reach this episode
        // directly: same-episode read ops attach to it but do not dominate it.
        if (s.tail != kNoNode) connect(node, s.tail, EdgeType::kLock);
        s.prev_tail = s.tail;
        s.pending_r = std::move(still_pending);
        s.have_w = true;
        s.w_open = true;
        s.w_episode = e;
        s.open_wls.assign(1, node);
      } else if (op.kind == OpKind::kWriteUnlock) {
        if (!(s.have_w && s.w_open && e == s.w_episode)) {
          fail("unsupported lock episode structure: " + op.to_string() +
               " unlocks an episode that is not open");
          return false;
        }
        for (const std::uint32_t wl : s.open_wls) connect(node, wl, EdgeType::kLock);
        s.open_wls.clear();
        s.w_open = false;
        s.tail = node;
      } else {  // read-class
        (void)w_class;
        if (s.have_w && s.w_open && e != s.w_episode) {
          fail("operations not fed in causal order: " + op.to_string() +
               " arrives while a write episode is still locked");
          return false;
        }
        if (s.have_w && e == s.w_episode) {
          // Read-class op sharing the write tenure's episode id: the batch
          // relation orders it only against *other* episodes.
          if (s.prev_tail != kNoNode) connect(node, s.prev_tail, EdgeType::kLock);
        } else if (s.have_w) {
          connect(node, s.tail, EdgeType::kLock);
        }
        s.pending_r.push_back(node);
      }
      break;
    }
    case OpKind::kBarrier: {
      BarState& b = barriers_[bar_key(op)];
      if (b.released) {
        fail("operations not fed in causal order: " + op.to_string() +
             " joins a barrier instance that already released");
        return false;
      }
      for (std::size_t k = 0; k < b.members.size(); ++k) {
        if (b.member_pre[k] != kNoNode) {
          connect(node, b.member_pre[k], EdgeType::kBarrier);
        }
      }
      b.members.push_back(node);
      b.member_pre.push_back(pred);
      break;
    }
  }

  for (const auto& [src, type] : in_edges_) graph_.add_edge(src, node, type);
  compute_clocks(node);
  prev_node_[p] = node;

  switch (op.kind) {
    case OpKind::kWrite: {
      ++n_writes_;
      VarState& vs = vars_[op.var];
      if (vs.writes_by_proc.empty()) vs.writes_by_proc.resize(num_procs_);
      vs.writes_by_proc[p].push_back(node);
      vs.writes.push_back(node);
      break;
    }
    case OpKind::kDelta: {
      ++n_deltas_;
      VarState& vs = vars_[op.var];
      if (vs.writes_by_proc.empty()) vs.writes_by_proc.resize(num_procs_);
      vs.deltas.push_back(node);
      vs.counter = true;
      vs.fp = vs.fp || op.fp;
      break;
    }
    case OpKind::kRead: {
      ++n_reads_;
      VarState& vs = vars_[op.var];
      if (vs.writes_by_proc.empty()) vs.writes_by_proc.resize(num_procs_);
      vs.reads.push_back(node);
      if (vs.counter) {
        ++n_deferred_;  // checked at finalize with the complete delta set
      } else {
        check_plain_read(node, /*causal_pass=*/true);
        check_plain_read(node, /*causal_pass=*/false);
      }
      OwnTrack& t = own_track_[p][op.var];
      if (t.last == kNoNode || ops_[t.last].write_id != op.write_id) {
        t.prev_distinct = t.last;
      }
      t.last = node;
      break;
    }
    case OpKind::kAwait: {
      ++n_sync_;
      awaits_.push_back(node);
      OwnTrack& t = own_track_[p][op.var];
      if (t.last == kNoNode || ops_[t.last].write_id != op.write_id) {
        t.prev_distinct = t.last;
      }
      t.last = node;
      break;
    }
    default:
      ++n_sync_;
      break;
  }
  return !failed();
}

void IncrementalChecker::record_violation(std::uint32_t node, bool causal_pass,
                                          std::string message, std::uint32_t cycle_with) {
  const Operation& r = ops_[node];
  Violation v;
  v.node = node;
  v.var = r.var;
  v.causal_pass = causal_pass;
  v.mixed_applies = (r.mode == ReadMode::kCausal) == causal_pass;
  v.message = std::move(message);
  v.cycle_with = cycle_with;
  violations_.push_back(std::move(v));
}

void IncrementalChecker::check_plain_read(std::uint32_t node, bool causal_pass) {
  const Operation& r = ops_[node];
  const ProcId i = r.proc;
  const std::uint32_t* C = causal_pass ? causal_clock(node) : pram_clock(node, i);

  std::uint32_t source = kNoNode;
  if (r.write_id.valid()) {
    source = writers_.at(r.write_id);
    if (!visible(source, C)) {
      record_violation(node, causal_pass,
                       r.to_string() + " returns " + ops_[source].to_string() +
                           " which does not precede it in the restricted relation",
                       kNoNode);
      return;
    }
  }

  VarState& vs = vars_[r.var];
  bool reported = false;

  // Intervening writes: per writing process, only the latest visible write
  // matters (its program-order predecessors reach it transitively), so each
  // process costs one binary search on the per-process write list.
  for (ProcId j = 0; j < num_procs_; ++j) {
    const auto& list = vs.writes_by_proc[j];
    if (list.empty() || C[j] == 0) continue;
    auto it = std::upper_bound(list.begin(), list.end(), C[j] - 1,
                               [this](std::uint32_t limit, std::uint32_t n) {
                                 return limit < pidx_[n];
                               });
    if (it == list.begin()) continue;
    std::uint32_t w1 = *(it - 1);
    if (w1 == source) {
      if (it - 1 == list.begin()) continue;
      w1 = *(it - 2);
    }
    const std::uint32_t* Cw = causal_pass ? causal_clock(w1) : pram_clock(w1, i);
    const bool after_source = source == kNoNode ? true : visible(source, Cw);
    if (after_source) {
      if (!reported) {
        record_violation(node, causal_pass,
                         r.to_string() + " is stale: " + ops_[w1].to_string() +
                             " intervenes between its source and the read",
                         w1);
        reported = true;
      }
    } else if (causal_pass) {
      // w1 is causally visible to the read yet not ordered after its source:
      // any serialization must place w1 before the source (derived WW edge).
      const std::uint64_t key = (std::uint64_t{w1} << 32) | source;
      if (forced_seen_.emplace(key, true).second) {
        forced_[r.var].push_back({w1, source});
      }
    }
  }

  // Intervening reads/awaits of the reading process itself: the latest own
  // observation of a different write suffices (older ones reach it through
  // program order).
  if (!reported) {
    auto it = own_track_[i].find(r.var);
    if (it != own_track_[i].end()) {
      const OwnTrack& t = it->second;
      std::uint32_t cand = kNoNode;
      if (t.last != kNoNode && ops_[t.last].write_id != r.write_id) {
        cand = t.last;
      } else if (t.last != kNoNode) {
        cand = t.prev_distinct;  // its id differs from t.last's == the read's
      }
      if (cand != kNoNode) {
        const std::uint32_t* Cc = causal_pass ? causal_clock(cand) : pram_clock(cand, i);
        const bool after_source = source == kNoNode ? true : visible(source, Cc);
        if (after_source) {
          record_violation(node, causal_pass,
                           r.to_string() + " is stale: " + ops_[cand].to_string() +
                               " intervenes between its source and the read",
                           cand);
        }
      }
    }
  }
}

void IncrementalChecker::check_counter_read(std::uint32_t node, bool causal_pass,
                                            std::vector<Violation>& out) {
  const Operation& r = ops_[node];
  const ProcId i = r.proc;
  const std::uint32_t* C = causal_pass ? causal_clock(node) : pram_clock(node, i);
  const VarState& vs = vars_.at(r.var);
  const bool mixed_applies = (r.mode == ReadMode::kCausal) == causal_pass;

  const auto emit = [&](std::string msg, std::uint32_t cycle_with) {
    out.push_back({node, r.var, causal_pass, mixed_applies, std::move(msg), cycle_with});
  };

  // Base value: every write to the location must precede the read; the base
  // is the R-latest one (same scan rule as the batch checker).
  std::uint32_t base = kNoNode;
  for (const std::uint32_t w : vs.writes) {
    if (!visible(w, C)) {
      emit(r.to_string() + " races with base write " + ops_[w].to_string(), w);
      return;
    }
    const std::uint32_t* Cw = causal_pass ? causal_clock(w) : pram_clock(w, i);
    if (base == kNoNode || visible(base, Cw)) base = w;
  }

  if (vs.fp) {
    check_fp_counter_read(node, causal_pass, base, vs, C, out);
    return;
  }

  const std::int64_t base_val =
      base == kNoNode ? 0 : static_cast<std::int64_t>(ops_[base].value);
  const std::uint32_t* Cb = base == kNoNode
                                ? nullptr
                                : (causal_pass ? causal_clock(base) : pram_clock(base, i));

  std::int64_t required = 0;
  std::vector<std::int64_t> optional;
  for (const std::uint32_t o : vs.deltas) {
    if (Cb != nullptr && visible(o, Cb)) continue;  // folded into the base
    if (visible(o, C)) {
      required += int_of(ops_[o].value);
    } else {
      const std::uint32_t* Co = causal_pass ? causal_clock(o) : pram_clock(o, i);
      if (!visible(node, Co)) optional.push_back(int_of(ops_[o].value));
    }
  }

  const auto target = static_cast<std::int64_t>(r.value);
  std::unordered_set<std::int64_t> sums{base_val - required};
  for (const std::int64_t amt : optional) {
    std::unordered_set<std::int64_t> next = sums;
    for (const std::int64_t s : sums) next.insert(s - amt);
    sums = std::move(next);
    if (sums.count(target)) return;
    if (sums.size() > 100000) {
      emit(r.to_string() + ": counter check exceeded the subset-sum budget", kNoNode);
      return;
    }
  }
  if (!sums.count(target)) {
    emit(r.to_string() + " is not explainable: base " + std::to_string(base_val) +
             " minus required " + std::to_string(required) + " and any subset of " +
             std::to_string(optional.size()) + " concurrent deltas",
         kNoNode);
  }
}

void IncrementalChecker::check_fp_counter_read(std::uint32_t node, bool causal_pass,
                                               std::uint32_t base, const VarState& vs,
                                               const std::uint32_t* clock,
                                               std::vector<Violation>& out) {
  const Operation& r = ops_[node];
  const ProcId i = r.proc;
  const bool mixed_applies = (r.mode == ReadMode::kCausal) == causal_pass;
  const auto emit = [&](std::string msg) {
    out.push_back({node, r.var, causal_pass, mixed_applies, std::move(msg), kNoNode});
  };

  const double base_val = base == kNoNode ? 0.0 : double_of(ops_[base].value);
  const std::uint32_t* Cb = base == kNoNode
                                ? nullptr
                                : (causal_pass ? causal_clock(base) : pram_clock(base, i));

  double required = 0.0;
  std::vector<double> optional;
  for (const std::uint32_t o : vs.deltas) {
    const Operation& op = ops_[o];
    const double amt =
        op.fp ? double_of(op.value) : static_cast<double>(int_of(op.value));
    if (Cb != nullptr && visible(o, Cb)) continue;
    if (visible(o, clock)) {
      required += amt;
    } else {
      const std::uint32_t* Co = causal_pass ? causal_clock(o) : pram_clock(o, i);
      if (!visible(node, Co)) optional.push_back(amt);
    }
  }

  const double target = double_of(r.value);
  std::vector<double> sums{base_val - required};
  for (const double amt : optional) {
    const std::size_t n = sums.size();
    for (std::size_t k = 0; k < n; ++k) {
      const double s = sums[k] - amt;
      if (fp_close(s, target)) return;
      bool dup = false;
      for (std::size_t j = 0; j < sums.size() && !dup; ++j) dup = fp_close(sums[j], s);
      if (!dup) sums.push_back(s);
    }
    if (sums.size() > 100000) {
      emit(r.to_string() + ": fp counter check exceeded the subset-sum budget");
      return;
    }
  }
  for (const double s : sums) {
    if (fp_close(s, target)) return;
  }
  emit(r.to_string() + " is not explainable: fp base " + std::to_string(base_val) +
       " minus required " + std::to_string(required) + " and any subset of " +
       std::to_string(optional.size()) + " concurrent fp deltas");
}

void IncrementalChecker::derive_order_edges() {
  // Forced write-order edges (from causal-visibility observations), skipping
  // counter locations — their reads have no single source write.
  for (auto& [var, edges] : forced_) {
    if (vars_.at(var).counter) continue;
    for (const auto& [a, b] : edges) graph_.add_edge(a, b, EdgeType::kWriteOrder);
  }

  // Sound anti-dependence edges: a read r of source s must precede, in any
  // serialization, every write of the location that is causally after s
  // (and every write at all when s is the initial value).  Per writing
  // process only the earliest such write is needed.
  for (auto& [var, vs] : vars_) {
    (void)var;
    if (vs.counter) continue;
    for (const std::uint32_t r : vs.reads) {
      const Operation& rop = ops_[r];
      std::uint32_t s = kNoNode;
      if (rop.write_id.valid()) {
        auto it = writers_.find(rop.write_id);
        if (it == writers_.end()) continue;
        s = it->second;
      }
      for (ProcId j = 0; j < num_procs_; ++j) {
        const auto& list = vs.writes_by_proc[j];
        if (list.empty()) continue;
        std::size_t k = 0;
        if (s != kNoNode) {
          const ProcId sp = ops_[s].proc;
          const std::uint32_t need = pidx_[s] + 1;
          // Clocks grow monotonically along program order, so the first
          // write of process j that causally includes s is found by search.
          auto it2 = std::lower_bound(list.begin(), list.end(), need,
                                      [this, sp](std::uint32_t n, std::uint32_t lim) {
                                        return causal_clock(n)[sp] < lim;
                                      });
          k = static_cast<std::size_t>(it2 - list.begin());
          if (k < list.size() && list[k] == s) ++k;
        }
        if (k < list.size()) {
          graph_.add_edge(r, list[k], EdgeType::kAntiDep);
          ++n_rw_edges_;
        }
      }
    }
  }
}

void IncrementalChecker::analyze_models(GraphVerdict& v) {
  const DepGraph::SccResult s = graph_.scc(kAllEdges);
  v.sc_acyclic = s.acyclic;
  if (s.acyclic) {
    v.coherent = true;  // every per-location subgraph embeds in the full graph
    return;
  }

  // Coherence: per-location write-serializability.  Each location's
  // conflict subgraph (program order projected to the location, reads-from,
  // derived WW and RW edges) embeds into the full graph with program-order
  // chains expanded, so an acyclic full graph implies coherence; with a
  // cycle present, test each location separately.
  v.coherent = true;
  for (const auto& [var, vs] : vars_) {
    if (vs.counter) continue;
    std::unordered_map<std::uint32_t, std::uint32_t> local;
    DepGraph mini;
    const auto localize = [&](std::uint32_t n) {
      auto [it, fresh] = local.try_emplace(n, 0);
      if (fresh) it->second = mini.add_node();
      return it->second;
    };
    // Per-process chains over this location's operations, in feed order.
    std::vector<std::uint32_t> last(num_procs_, kNoNode);
    const auto chain = [&](std::uint32_t n) {
      const ProcId p = ops_[n].proc;
      const std::uint32_t l = localize(n);
      if (last[p] != kNoNode) mini.add_edge(localize(last[p]), l, EdgeType::kProgram);
      last[p] = n;
    };
    std::vector<std::uint32_t> var_ops;
    for (ProcId j = 0; j < num_procs_; ++j) {
      for (const std::uint32_t w : vs.writes_by_proc[j]) var_ops.push_back(w);
    }
    for (const std::uint32_t r : vs.reads) var_ops.push_back(r);
    std::sort(var_ops.begin(), var_ops.end());
    for (const std::uint32_t n : var_ops) chain(n);

    for (const std::uint32_t r : vs.reads) {
      const Operation& rop = ops_[r];
      if (rop.write_id.valid()) {
        auto it = writers_.find(rop.write_id);
        if (it != writers_.end()) {
          mini.add_edge(localize(it->second), localize(r), EdgeType::kReadsFrom);
        }
      }
    }
    if (auto fit = forced_.find(var); fit != forced_.end()) {
      for (const auto& [a, b] : fit->second) {
        mini.add_edge(localize(a), localize(b), EdgeType::kWriteOrder);
      }
    }
    // RW edges for this location, recovered from the global graph.
    for (const std::uint32_t r : vs.reads) {
      for (const DepGraph::HalfEdge& e : graph_.out_edges(r)) {
        if (e.type == EdgeType::kAntiDep) {
          mini.add_edge(localize(r), localize(e.to), EdgeType::kAntiDep);
        }
      }
    }
    if (!mini.scc(kAllEdges).acyclic) {
      v.coherent = false;
      break;
    }
  }
}

void IncrementalChecker::extract_counterexample(GraphVerdict& v) {
  if (v.sc_acyclic) return;
  // Report the cycle in external ids (OpRefs when a History was replayed)
  // so dot_export can render it against the original history.
  for (const TypedEdge& e : graph_.find_cycle(kAllEdges)) {
    v.counterexample.push_back({ext_[e.from], ext_[e.to], e.type});
  }
}

GraphVerdict IncrementalChecker::finalize() {
  MC_CHECK_MSG(!finalized_, "finalize called twice");
  finalized_ = true;

  if (failed()) return error_verdict(error_);

  GraphVerdict v;

  // Structural await validation (plain locations only, as in the batch
  // checker — a counter's resolving op is its final delta).
  std::vector<Violation> await_viols;
  for (const std::uint32_t a : awaits_) {
    const Operation& op = ops_[a];
    if (!op.write_id.valid()) continue;
    if (vars_.at(op.var).counter) continue;
    const std::uint32_t w = writers_.at(op.write_id);
    if (ops_[w].kind == OpKind::kWrite && ops_[w].value != op.value) {
      await_viols.push_back({a, op.var, true, true,
                             op.to_string() + " resolved by " + ops_[w].to_string() +
                                 " with a different value",
                             kNoNode});
    }
  }
  std::sort(await_viols.begin(), await_viols.end(),
            [this](const Violation& a, const Violation& b) {
              return ext_[a.node] < ext_[b.node];
            });

  // Counter reads were deferred (a concurrent delta arriving later can
  // enlarge the explainable set); check them now.  Reads of a location that
  // only later turned out to be a counter were plain-checked at feed time —
  // retract those verdicts and re-check with counter semantics.
  std::vector<Violation> read_viols;
  for (Violation& pv : violations_) {
    if (!vars_.at(pv.var).counter) read_viols.push_back(std::move(pv));
  }
  for (auto& [var, vs] : vars_) {
    (void)var;
    if (!vs.counter) continue;
    std::sort(vs.writes.begin(), vs.writes.end(),
              [this](std::uint32_t a, std::uint32_t b) { return ext_[a] < ext_[b]; });
    std::sort(vs.deltas.begin(), vs.deltas.end(),
              [this](std::uint32_t a, std::uint32_t b) { return ext_[a] < ext_[b]; });
    for (const std::uint32_t r : vs.reads) {
      check_counter_read(r, /*causal_pass=*/true, read_viols);
      check_counter_read(r, /*causal_pass=*/false, read_viols);
    }
  }
  std::stable_sort(read_viols.begin(), read_viols.end(),
                   [this](const Violation& a, const Violation& b) {
                     return ext_[a.node] < ext_[b.node];
                   });

  const auto assemble = [&](CheckResult& out, auto&& applies) {
    for (const Violation& av : await_viols) {
      out.ok = false;
      if (out.violations.size() < 8) out.violations.push_back(av.message);
    }
    for (const Violation& rv : read_viols) {
      if (!applies(rv)) continue;
      out.ok = false;
      if (out.violations.size() < 8) out.violations.push_back(rv.message);
    }
  };
  assemble(v.causal, [](const Violation& x) { return x.causal_pass; });
  assemble(v.pram, [](const Violation& x) { return !x.causal_pass; });
  assemble(v.mixed, [](const Violation& x) { return x.mixed_applies; });

  derive_order_edges();
  analyze_models(v);
  extract_counterexample(v);
  return v;
}

MetricsSnapshot IncrementalChecker::metrics() const {
  MetricsSnapshot m;
  m.values["checker.ops"] = ops_.size();
  m.values["checker.reads"] = n_reads_;
  m.values["checker.writes"] = n_writes_;
  m.values["checker.deltas"] = n_deltas_;
  m.values["checker.sync_ops"] = n_sync_;
  m.values["checker.deferred_counter_reads"] = n_deferred_;
  m.values["checker.violations"] = violations_.size();
  m.values["checker.edges.po"] = graph_.edge_count(EdgeType::kProgram);
  m.values["checker.edges.rf"] = graph_.edge_count(EdgeType::kReadsFrom);
  m.values["checker.edges.lock"] = graph_.edge_count(EdgeType::kLock);
  m.values["checker.edges.bar"] = graph_.edge_count(EdgeType::kBarrier);
  m.values["checker.edges.await"] = graph_.edge_count(EdgeType::kAwait);
  m.values["checker.edges.ww"] = graph_.edge_count(EdgeType::kWriteOrder);
  m.values["checker.edges.rw"] = graph_.edge_count(EdgeType::kAntiDep);
  return m;
}

GraphVerdict IncrementalChecker::check(const History& h) {
  if (!h.sequential_processes()) {
    return error_verdict(
        "the incremental graph checker requires sequential-process histories "
        "(use the BitMatrix checkers for partial program orders)");
  }
  const auto n = static_cast<std::uint32_t>(h.size());

  // Positions within each process, for explicit-edge validation.
  std::vector<std::uint32_t> pos(n, 0);
  for (ProcId p = 0; p < h.num_procs(); ++p) {
    std::uint32_t k = 0;
    for (const OpRef r : h.ops_of(p)) pos[r] = k++;
  }
  for (const auto& [a, b] : h.explicit_program_edges()) {
    if (pos[a] >= pos[b]) {
      return error_verdict("malformed history: program order contains a cycle");
    }
    // Forward explicit edges are implied by the sequential chain.
  }

  // Well-formedness condition 3 up front, so malformed-lock errors surface
  // with the batch checker's precedence and exact messages.
  for (ProcId p = 0; p < h.num_procs(); ++p) {
    std::map<LockId, int> read_held, write_held;
    for (const OpRef r : h.ops_of(p)) {
      const Operation& op = h.op(r);
      switch (op.kind) {
        case OpKind::kReadLock: ++read_held[op.lock]; break;
        case OpKind::kWriteLock:
          if (++write_held[op.lock] > 1) {
            return error_verdict("malformed history: process " + std::to_string(p) +
                                 " re-acquires write lock l" + std::to_string(op.lock) +
                                 " without unlocking");
          }
          break;
        case OpKind::kReadUnlock:
          if (--read_held[op.lock] < 0) {
            return error_verdict("malformed history: unmatched read unlock on l" +
                                 std::to_string(op.lock) + " by process " +
                                 std::to_string(p));
          }
          break;
        case OpKind::kWriteUnlock:
          if (--write_held[op.lock] < 0) {
            return error_verdict("malformed history: unmatched write unlock on l" +
                                 std::to_string(op.lock) + " by process " +
                                 std::to_string(p));
          }
          break;
        default: break;
      }
    }
  }

  // Sparse generating edges, mirroring build_relations (causality.cpp).
  std::vector<TypedEdge> edges;
  for (ProcId p = 0; p < h.num_procs(); ++p) {
    const auto& ops = h.ops_of(p);
    for (std::size_t k = 1; k < ops.size(); ++k) {
      edges.push_back({ops[k - 1], ops[k], EdgeType::kProgram});
    }
  }

  std::unordered_map<WriteId, OpRef> writer_of;
  for (OpRef i = 0; i < n; ++i) {
    const Operation& op = h.op(i);
    if (op.kind == OpKind::kWrite || op.kind == OpKind::kDelta) {
      if (!op.write_id.valid()) {
        return error_verdict("write without a write id: " + op.to_string());
      }
      if (!writer_of.insert({op.write_id, i}).second) {
        return error_verdict("duplicate write id on " + op.to_string());
      }
    }
  }
  for (OpRef i = 0; i < n; ++i) {
    const Operation& op = h.op(i);
    if ((op.kind != OpKind::kRead && op.kind != OpKind::kAwait) || !op.write_id.valid()) {
      continue;
    }
    auto it = writer_of.find(op.write_id);
    if (it == writer_of.end()) {
      return error_verdict("read resolves to a write that is not in the history: " +
                           op.to_string());
    }
    if (h.op(it->second).var != op.var) {
      return error_verdict("read of x" + std::to_string(op.var) +
                           " resolves to a write of a different location: " +
                           h.op(it->second).to_string());
    }
    edges.push_back({it->second, i,
                     op.kind == OpKind::kRead ? EdgeType::kReadsFrom : EdgeType::kAwait});
  }

  // Lock order: near-transitive-reduction episode edges (same closure as
  // the all-pairs construction of causality.cpp).
  {
    std::map<LockId, std::map<std::uint64_t, std::vector<OpRef>>> per_lock;
    for (OpRef i = 0; i < n; ++i) {
      if (is_lock_op(h.op(i).kind)) {
        per_lock[h.op(i).lock][h.op(i).lock_episode].push_back(i);
      }
    }
    for (const auto& [lock, episodes] : per_lock) {
      (void)lock;
      std::vector<OpRef> tails;      // attachment ops of the last write episode
      std::vector<OpRef> prev_tails; // ... of the one before it
      std::vector<OpRef> pending_r;  // read-class ops since the last write episode
      for (const auto& [eid, eops] : episodes) {
        (void)eid;
        std::vector<OpRef> wls, wus, rs;
        for (const OpRef o : eops) {
          switch (h.op(o).kind) {
            case OpKind::kWriteLock: wls.push_back(o); break;
            case OpKind::kWriteUnlock: wus.push_back(o); break;
            default: rs.push_back(o); break;
          }
        }
        if (wls.empty() && wus.empty()) {
          for (const OpRef r : rs) {
            for (const OpRef t : tails) edges.push_back({t, r, EdgeType::kLock});
            pending_r.push_back(r);
          }
          continue;
        }
        const std::vector<OpRef>& heads = wls.empty() ? wus : wls;
        for (const OpRef t : tails) {
          for (const OpRef hd : heads) edges.push_back({t, hd, EdgeType::kLock});
        }
        for (const OpRef r : pending_r) {
          for (const OpRef hd : heads) edges.push_back({r, hd, EdgeType::kLock});
        }
        for (const OpRef wl : wls) {
          for (const OpRef wu : wus) edges.push_back({wl, wu, EdgeType::kLock});
        }
        // Read-class ops sharing a write episode relate only to *other*
        // episodes: behind the previous write tenure, ahead of the next.
        prev_tails = tails;
        for (const OpRef r : rs) {
          for (const OpRef t : prev_tails) edges.push_back({t, r, EdgeType::kLock});
        }
        pending_r = rs;
        tails = wus.empty() ? wls : wus;
      }
    }
  }

  // Barrier order: members wait for every member's program predecessor;
  // program successors wait for every member.
  {
    std::map<std::pair<BarrierId, std::uint32_t>, std::vector<OpRef>> instances;
    for (OpRef i = 0; i < n; ++i) {
      const Operation& op = h.op(i);
      if (op.kind == OpKind::kBarrier) {
        instances[{op.barrier, op.barrier_epoch}].push_back(i);
      }
    }
    for (const auto& [key, members] : instances) {
      (void)key;
      for (const OpRef m : members) {
        const ProcId p = h.op(m).proc;
        const auto& ops = h.ops_of(p);
        const std::uint32_t at = pos[m];
        if (at > 0) {
          for (const OpRef m2 : members) {
            if (m2 != m) edges.push_back({ops[at - 1], m2, EdgeType::kBarrier});
          }
        }
        if (at + 1 < ops.size()) {
          for (const OpRef m2 : members) {
            if (m2 != m) edges.push_back({m2, ops[at + 1], EdgeType::kBarrier});
          }
        }
      }
    }
  }

  // Kahn's algorithm: a deterministic causal linear extension, or the cycle
  // that proves there is none.
  std::vector<std::uint32_t> indegree(n, 0);
  std::vector<std::vector<std::uint32_t>> succ(n);
  for (const TypedEdge& e : edges) {
    succ[e.from].push_back(e.to);
    ++indegree[e.to];
  }
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>, std::greater<>> ready;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  std::vector<std::uint32_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::uint32_t i = ready.top();
    ready.pop();
    order.push_back(i);
    for (const std::uint32_t j : succ[i]) {
      if (--indegree[j] == 0) ready.push(j);
    }
  }
  if (order.size() != n) {
    GraphVerdict v = error_verdict("causality relation is cyclic");
    DepGraph g;
    g.ensure_nodes(n);
    for (const TypedEdge& e : edges) g.add_edge(e.from, e.to, e.type);
    v.counterexample = g.find_cycle(kAllEdges);
    return v;
  }

  IncrementalChecker chk(h.num_procs());
  for (const std::uint32_t i : order) {
    if (!chk.feed(h.op(i), i)) break;
  }
  return chk.finalize();
}

GraphVerdict check_history_graph(const History& h) { return IncrementalChecker::check(h); }

}  // namespace mc::history
