#include "history/incremental_checker.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <type_traits>
#include <unordered_set>

#include "common/check.h"

namespace mc::history {

namespace {

/// Same relative tolerance as the batch checker's fp branch (checkers.cpp).
bool fp_close(double a, double b) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= 1e-8 * scale;
}

std::uint64_t bar_key(const Operation& op) {
  return (std::uint64_t{op.barrier} << 32) | op.barrier_epoch;
}

GraphVerdict error_verdict(std::string msg) {
  GraphVerdict v;
  v.well_formed = false;
  v.error = msg;
  for (CheckResult* r : {&v.mixed, &v.causal, &v.pram}) {
    r->ok = false;
    r->violations.push_back(msg);
  }
  return v;
}

}  // namespace

IncrementalChecker::IncrementalChecker(std::size_t num_procs)
    : num_procs_(num_procs),
      prev_node_(num_procs, kNoNode),
      own_track_(num_procs),
      read_held_(num_procs),
      write_held_(num_procs),
      departed_at_(num_procs, kNoNode),
      frontier_line_(num_procs, 0),
      retired_seq_(num_procs, 0) {
  MC_CHECK(num_procs > 0);
}

void IncrementalChecker::on_proc_departed(ProcId p) {
  if (p >= num_procs_ || finalized_) return;
  if (departed_at_[p] == kNoNode) {
    departed_at_[p] = static_cast<std::uint32_t>(ops_.size());
  }
}

void IncrementalChecker::fail(std::string msg) {
  if (error_.empty()) error_ = std::move(msg);
}

std::uint32_t IncrementalChecker::append_node(const Operation& op, std::uint32_t ext_id) {
  const auto node = static_cast<std::uint32_t>(ops_.size());
  ops_.push_back(op);
  ext_.push_back(ext_id);
  const std::uint32_t pred = prev_node_[op.proc];
  pidx_.push_back(pred == kNoNode ? 0 : pidx_[pred] + 1);
  graph_.add_node();
  causal_.resize(ops_.size() * num_procs_, 0);
  pram_.resize(ops_.size() * num_procs_ * num_procs_, 0);
  return node;
}

void IncrementalChecker::connect(std::uint32_t node, std::uint32_t src, EdgeType type) {
  MC_CHECK_MSG(src < node, "dependency edges must point old -> new");
  in_edges_.push_back({src, type});
}

void IncrementalChecker::compute_clocks(std::uint32_t node) {
  const ProcId p = ops_[node].proc;
  const auto join = [this](std::uint32_t* dst, const std::uint32_t* src) {
    for (std::size_t q = 0; q < num_procs_; ++q) dst[q] = std::max(dst[q], src[q]);
  };

  std::uint32_t* c = causal_.data() + static_cast<std::size_t>(node) * num_procs_;
  for (const auto& [src, type] : in_edges_) {
    (void)type;
    join(c, causal_clock(src));
  }
  c[p] = std::max(c[p], pidx_[node] + 1);

  // One clock per observer i: Definition 3's construction — full program
  // order always propagates; synchronization and reads-from edges join only
  // when incident to an operation of process i.
  for (ProcId i = 0; i < num_procs_; ++i) {
    std::uint32_t* g = pram_.data() +
                       (static_cast<std::size_t>(node) * num_procs_ + i) * num_procs_;
    for (const auto& [src, type] : in_edges_) {
      if (type == EdgeType::kProgram || p == i || ops_[src].proc == i) {
        join(g, pram_clock(src, i));
      }
    }
    g[p] = std::max(g[p], pidx_[node] + 1);
  }
}

bool IncrementalChecker::feed(const Operation& op) {
  return feed(op, static_cast<std::uint32_t>(ops_.size()));
}

bool IncrementalChecker::feed(const Operation& op, std::uint32_t ext_id) {
  MC_CHECK_MSG(!finalized_, "feed after finalize");
  if (failed()) return false;
  if (op.proc >= num_procs_) {
    fail("operation of an unknown process: " + op.to_string());
    return false;
  }

  const ProcId p = op.proc;
  const std::uint32_t pred = prev_node_[p];
  const std::uint32_t node = append_node(op, ext_id);
  ++n_fed_;
  in_edges_.clear();

  if (pred != kNoNode) {
    connect(node, pred, EdgeType::kProgram);
    // Barrier release: the first operation after a member joins the
    // instance's downstream closure of *all* members.
    if (ops_[pred].kind == OpKind::kBarrier) {
      BarState& b = barriers_[bar_key(ops_[pred])];
      b.released = true;
      for (const std::uint32_t m : b.members) {
        if (m != pred) connect(node, m, EdgeType::kBarrier);
      }
      // Frontier detection (docs/CHECKING.md §10): a full-membership
      // instance whose every member has also fed its program successor.
      // From here on, every future operation's causal clock and every one
      // of its PRAM clocks dominate all operations at or before the
      // members, which is what makes retirement sound.
      if (++b.succ_fed == num_procs_ && b.members.size() == num_procs_) {
        std::vector<std::uint32_t> line(num_procs_, kNoNode);
        bool complete = true;
        for (const std::uint32_t m : b.members) {
          if (line[ops_[m].proc] != kNoNode) complete = false;  // defensive
          line[ops_[m].proc] = pidx_[m];
        }
        for (const std::uint32_t l : line) complete = complete && l != kNoNode;
        if (complete) {
          frontier_line_ = std::move(line);
          frontier_valid_ = true;
        }
      }
    }
  }

  std::uint32_t rf_writer = kNoNode;
  bool rf_retired = false;
  switch (op.kind) {
    case OpKind::kWrite:
    case OpKind::kDelta: {
      if (!op.write_id.valid()) {
        fail("write without a write id: " + op.to_string());
        return false;
      }
      if (!writers_.insert({op.write_id, node}).second) {
        fail("duplicate write id on " + op.to_string());
        return false;
      }
      break;
    }
    case OpKind::kRead:
    case OpKind::kAwait: {
      if (op.write_id.valid()) {
        auto it = writers_.find(op.write_id);
        if (it == writers_.end()) {
          if (op.write_id.proc < num_procs_ &&
              op.write_id.seq <= retired_seq_[op.write_id.proc]) {
            // The source was retired by pruning.  Retirement proves it is
            // superseded in every clock family, so for a plain location a
            // read of it is stale in both passes; for a counter location the
            // read is value-checked later and the dropped reads-from edge is
            // clock-neutral (the reader's clocks already dominate the
            // frontier).  Awaits of retired sources lose only the frozen
            // value cross-check (docs/CHECKING.md §10).
            rf_retired = true;
            break;
          }
          // The writer either does not exist or has not been fed yet; both
          // breach the reads-from edge of a causal linear extension.
          fail("read resolves to a write that is not in the history: " + op.to_string());
          return false;
        }
        if (ops_[it->second].var != op.var) {
          fail("read of x" + std::to_string(op.var) +
               " resolves to a write of a different location: " +
               ops_[it->second].to_string());
          return false;
        }
        rf_writer = it->second;
        connect(node, rf_writer,
                op.kind == OpKind::kRead ? EdgeType::kReadsFrom : EdgeType::kAwait);
      }
      break;
    }
    case OpKind::kReadLock:
    case OpKind::kReadUnlock:
    case OpKind::kWriteLock:
    case OpKind::kWriteUnlock: {
      if (op.kind == OpKind::kReadLock) {
        ++read_held_[p][op.lock];
      } else if (op.kind == OpKind::kReadUnlock) {
        if (--read_held_[p][op.lock] < 0) {
          fail("malformed history: unmatched read unlock on l" + std::to_string(op.lock) +
               " by process " + std::to_string(p));
          return false;
        }
      } else if (op.kind == OpKind::kWriteLock) {
        if (++write_held_[p][op.lock] > 1) {
          fail("malformed history: process " + std::to_string(p) +
               " re-acquires write lock l" + std::to_string(op.lock) +
               " without unlocking");
          return false;
        }
      } else {
        if (--write_held_[p][op.lock] < 0) {
          fail("malformed history: unmatched write unlock on l" + std::to_string(op.lock) +
               " by process " + std::to_string(p));
          return false;
        }
      }

      LockState& s = locks_[op.lock];
      const std::uint64_t e = op.lock_episode;
      const bool w_class =
          op.kind == OpKind::kWriteLock || op.kind == OpKind::kWriteUnlock;
      if (s.have_w && e < s.w_episode) {
        fail("operations not fed in causal order: " + op.to_string() +
             " belongs to an episode before the current write episode of its lock");
        return false;
      }
      if (op.kind == OpKind::kWriteLock) {
        if (s.have_w && s.w_open && e != s.w_episode) {
          fail("operations not fed in causal order: " + op.to_string() +
               " opens a write episode while another is still locked");
          return false;
        }
        if (s.have_w && !s.w_open && e == s.w_episode) {
          fail("unsupported lock episode structure: " + op.to_string() +
               " re-enters a closed write episode");
          return false;
        }
        if (s.have_w && s.w_open && e == s.w_episode) {
          s.open_wls.push_back(node);  // co-held write tenure: no |-> edges
          break;
        }
        // New write episode: attach behind the accumulated read-class
        // operations, or directly behind the previous write tenure.
        std::vector<std::uint32_t> still_pending;
        for (const std::uint32_t r : s.pending_r) {
          const std::uint64_t re = ops_[r].lock_episode;
          if (re > e) {
            fail("operations not fed in causal order: " + op.to_string() +
                 " arrives after read-class operations of a later episode");
            return false;
          }
          if (re == e) {
            still_pending.push_back(r);  // same-episode read ops: unrelated
          } else {
            connect(node, r, EdgeType::kLock);
          }
        }
        // The previous write tenure's attachment op must reach this episode
        // directly: same-episode read ops attach to it but do not dominate it.
        if (s.tail != kNoNode) connect(node, s.tail, EdgeType::kLock);
        s.prev_tail = s.tail;
        s.pending_r = std::move(still_pending);
        s.have_w = true;
        s.w_open = true;
        s.w_episode = e;
        s.open_wls.assign(1, node);
      } else if (op.kind == OpKind::kWriteUnlock) {
        if (!(s.have_w && s.w_open && e == s.w_episode)) {
          fail("unsupported lock episode structure: " + op.to_string() +
               " unlocks an episode that is not open");
          return false;
        }
        for (const std::uint32_t wl : s.open_wls) connect(node, wl, EdgeType::kLock);
        s.open_wls.clear();
        s.w_open = false;
        s.tail = node;
      } else {  // read-class
        (void)w_class;
        if (s.have_w && s.w_open && e != s.w_episode) {
          fail("operations not fed in causal order: " + op.to_string() +
               " arrives while a write episode is still locked");
          return false;
        }
        if (s.have_w && e == s.w_episode) {
          // Read-class op sharing the write tenure's episode id: the batch
          // relation orders it only against *other* episodes.
          if (s.prev_tail != kNoNode) connect(node, s.prev_tail, EdgeType::kLock);
        } else if (s.have_w) {
          connect(node, s.tail, EdgeType::kLock);
        }
        s.pending_r.push_back(node);
      }
      break;
    }
    case OpKind::kBarrier: {
      if (auto it = retired_epoch_.find(op.barrier); it != retired_epoch_.end() &&
                                                     op.barrier_epoch <= it->second) {
        fail("operations not fed in causal order: " + op.to_string() +
             " joins a barrier instance that already released");
        return false;
      }
      BarState& b = barriers_[bar_key(op)];
      if (b.released) {
        fail("operations not fed in causal order: " + op.to_string() +
             " joins a barrier instance that already released");
        return false;
      }
      for (std::size_t k = 0; k < b.members.size(); ++k) {
        if (b.member_pre[k] != kNoNode) {
          connect(node, b.member_pre[k], EdgeType::kBarrier);
        }
      }
      b.members.push_back(node);
      b.member_pre.push_back(pred);
      break;
    }
  }

  for (const auto& [src, type] : in_edges_) graph_.add_edge(src, node, type);
  compute_clocks(node);
  prev_node_[p] = node;

  switch (op.kind) {
    case OpKind::kWrite: {
      ++n_writes_;
      VarState& vs = vars_[op.var];
      if (vs.writes_by_proc.empty()) vs.writes_by_proc.resize(num_procs_);
      vs.writes_by_proc[p].push_back(node);
      vs.writes.push_back(node);
      break;
    }
    case OpKind::kDelta: {
      ++n_deltas_;
      VarState& vs = vars_[op.var];
      if (vs.writes_by_proc.empty()) vs.writes_by_proc.resize(num_procs_);
      vs.deltas.push_back(node);
      vs.counter = true;
      vs.fp = vs.fp || op.fp;
      break;
    }
    case OpKind::kRead: {
      ++n_reads_;
      VarState& vs = vars_[op.var];
      if (vs.writes_by_proc.empty()) vs.writes_by_proc.resize(num_procs_);
      vs.reads.push_back(node);
      if (vs.counter) {
        ++n_deferred_;  // checked at finalize with the complete delta set
      } else if (rf_retired) {
        // Retirement certifies a later same-location write in every clock
        // family, so this read is stale under both disciplines.  Unless a
        // process has since been evicted: the certificate assumed delivery,
        // and the superseding chain may run through writes the crash
        // permanently lost (waived by the masked floors), so the verdict is
        // void for post-departure reads.
        if (!departed_before(node)) {
          for (const bool causal_pass : {true, false}) {
            record_violation(node, causal_pass,
                             op.to_string() +
                                 " is stale: it returns a retired write already "
                                 "superseded before the last pruned barrier frontier",
                             kNoNode);
          }
        }
      } else {
        check_plain_read(node, /*causal_pass=*/true);
        check_plain_read(node, /*causal_pass=*/false);
      }
      OwnTrack& t = own_track_[p][op.var];
      if (t.last == kNoNode || ops_[t.last].write_id != op.write_id) {
        t.prev_distinct = t.last;
      }
      t.last = node;
      break;
    }
    case OpKind::kAwait: {
      ++n_sync_;
      awaits_.push_back(node);
      OwnTrack& t = own_track_[p][op.var];
      if (t.last == kNoNode || ops_[t.last].write_id != op.write_id) {
        t.prev_distinct = t.last;
      }
      t.last = node;
      break;
    }
    default:
      ++n_sync_;
      break;
  }
  return !failed();
}

void IncrementalChecker::record_violation(std::uint32_t node, bool causal_pass,
                                          std::string message, std::uint32_t cycle_with) {
  const Operation& r = ops_[node];
  Violation v;
  v.node = node;
  v.var = r.var;
  v.causal_pass = causal_pass;
  v.mixed_applies = (r.mode == ReadMode::kCausal) == causal_pass;
  v.message = std::move(message);
  v.cycle_with = cycle_with;
  violations_.push_back(std::move(v));
  if (live_capture_ && first_cx_dot_.empty()) {
    // Capture eagerly: a later prune may retire nodes on the cycle's path.
    first_cx_dot_ = render_violation_dot(node, cycle_with);
  }
}

void IncrementalChecker::freeze_violation(FrozenViolation fv) {
  if (frozen_.size() >= kMaxFrozen) {
    ++frozen_dropped_;
    return;
  }
  frozen_.push_back(std::move(fv));
}

std::string IncrementalChecker::render_violation_dot(std::uint32_t node,
                                                     std::uint32_t cycle_with) const {
  // A staleness violation is a cycle: the intervening write reaches the read
  // through causality, and the read must precede the intervener in any
  // serialization (anti-dependence).  Violations without an intervener (a
  // source that never became visible) have no cycle to draw.
  std::vector<TypedEdge> cycle;
  if (cycle_with != kNoNode) {
    cycle = graph_.find_path(cycle_with, node, kCausalityEdges);
    cycle.push_back({node, cycle_with, EdgeType::kAntiDep});
  }
  if (cycle_with == kNoNode || cycle.size() < 2) {
    return "digraph counterexample {\n  // no counterexample cycle\n}\n";
  }

  const auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };

  std::string out =
      "digraph counterexample {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  std::unordered_set<std::uint32_t> hot;
  for (const TypedEdge& e : cycle) {
    hot.insert(e.from);
    hot.insert(e.to);
  }
  for (const std::uint32_t v : hot) {
    const Operation& op = ops_[v];
    std::string label = "p" + std::to_string(op.proc) + " " + op.to_string();
    // Trace correlation: link the operation back to its Chrome-trace
    // instant (docs/TRACING.md) when the runtime stamped one.
    if (op.trace_id != 0) label += "\\ntrace=" + std::to_string(op.trace_id);
    out += "  n" + std::to_string(ext_[v]) + " [label=\"" + escape(label) +
           "\", color=crimson, penwidth=2.0];\n";
  }
  for (const TypedEdge& e : cycle) {
    out += "  n" + std::to_string(ext_[e.from]) + " -> n" + std::to_string(ext_[e.to]) +
           " [label=\"" + edge_type_name(e.type) +
           "\", fontsize=8, color=crimson, penwidth=2.0];\n";
  }
  out += "}\n";
  return out;
}

void IncrementalChecker::check_plain_read(std::uint32_t node, bool causal_pass) {
  const Operation& r = ops_[node];
  const ProcId i = r.proc;
  const std::uint32_t* C = causal_pass ? causal_clock(node) : pram_clock(node, i);

  std::uint32_t source = kNoNode;
  if (r.write_id.valid()) {
    source = writers_.at(r.write_id);
    if (!visible(source, C)) {
      record_violation(node, causal_pass,
                       r.to_string() + " returns " + ops_[source].to_string() +
                           " which does not precede it in the restricted relation",
                       kNoNode);
      return;
    }
  }

  VarState& vs = vars_[r.var];
  bool reported = false;

  // Intervening writes: per writing process, only the latest visible write
  // matters (its program-order predecessors reach it transitively), so each
  // process costs one binary search on the per-process write list.
  for (ProcId j = 0; j < num_procs_; ++j) {
    // A process evicted from the view before this read was fed owes it no
    // freshness: the DSM may have permanently lost the victim's tail (a
    // crashed channel drops retransmits too) and the post-eviction masked
    // applied floors waive exactly those writes.  The own-observation check
    // below still runs, so real regressions stay violations.
    if (node >= departed_at_[j]) continue;
    const auto& list = vs.writes_by_proc[j];
    if (list.empty() || C[j] == 0) continue;
    auto it = std::upper_bound(list.begin(), list.end(), C[j] - 1,
                               [this](std::uint32_t limit, std::uint32_t n) {
                                 return limit < pidx_[n];
                               });
    if (it == list.begin()) continue;
    std::uint32_t w1 = *(it - 1);
    if (w1 == source) {
      if (it - 1 == list.begin()) continue;
      w1 = *(it - 2);
    }
    const std::uint32_t* Cw = causal_pass ? causal_clock(w1) : pram_clock(w1, i);
    const bool after_source = source == kNoNode ? true : visible(source, Cw);
    if (after_source) {
      if (!reported) {
        record_violation(node, causal_pass,
                         r.to_string() + " is stale: " + ops_[w1].to_string() +
                             " intervenes between its source and the read",
                         w1);
        reported = true;
      }
    } else if (causal_pass) {
      // w1 is causally visible to the read yet not ordered after its source:
      // any serialization must place w1 before the source (derived WW edge).
      const std::uint64_t key = (std::uint64_t{w1} << 32) | source;
      if (forced_seen_.emplace(key, true).second) {
        forced_[r.var].push_back({w1, source});
      }
    }
  }

  // Intervening reads/awaits of the reading process itself: the latest own
  // observation of a different write suffices (older ones reach it through
  // program order).
  if (!reported) {
    auto it = own_track_[i].find(r.var);
    if (it != own_track_[i].end()) {
      const OwnTrack& t = it->second;
      std::uint32_t cand = kNoNode;
      if (t.last != kNoNode && ops_[t.last].write_id != r.write_id) {
        cand = t.last;
      } else if (t.last != kNoNode) {
        cand = t.prev_distinct;  // its id differs from t.last's == the read's
      }
      if (cand != kNoNode) {
        const std::uint32_t* Cc = causal_pass ? causal_clock(cand) : pram_clock(cand, i);
        const bool after_source = source == kNoNode ? true : visible(source, Cc);
        if (after_source) {
          record_violation(node, causal_pass,
                           r.to_string() + " is stale: " + ops_[cand].to_string() +
                               " intervenes between its source and the read",
                           cand);
        }
      }
    }
  }
}

void IncrementalChecker::check_counter_read(std::uint32_t node, bool causal_pass,
                                            std::vector<Violation>& out) {
  const Operation& r = ops_[node];
  const ProcId i = r.proc;
  const std::uint32_t* C = causal_pass ? causal_clock(node) : pram_clock(node, i);
  const VarState& vs = vars_.at(r.var);
  const bool mixed_applies = (r.mode == ReadMode::kCausal) == causal_pass;

  const auto emit = [&](std::string msg, std::uint32_t cycle_with) {
    out.push_back({node, r.var, causal_pass, mixed_applies, std::move(msg), cycle_with});
  };

  // Base value: every write to the location must precede the read; the base
  // is the R-latest one (same scan rule as the batch checker).
  std::uint32_t base = kNoNode;
  for (const std::uint32_t w : vs.writes) {
    if (!visible(w, C)) {
      emit(r.to_string() + " races with base write " + ops_[w].to_string(), w);
      return;
    }
    const std::uint32_t* Cw = causal_pass ? causal_clock(w) : pram_clock(w, i);
    if (base == kNoNode || visible(base, Cw)) base = w;
  }

  if (vs.fp) {
    check_fp_counter_read(node, causal_pass, base, vs, C, out);
    return;
  }

  const std::int64_t base_val =
      base == kNoNode ? 0 : static_cast<std::int64_t>(ops_[base].value);
  const std::uint32_t* Cb = base == kNoNode
                                ? nullptr
                                : (causal_pass ? causal_clock(base) : pram_clock(base, i));

  std::int64_t required = 0;
  std::vector<std::int64_t> optional;
  for (const std::uint32_t o : vs.deltas) {
    if (Cb != nullptr && visible(o, Cb)) continue;  // folded into the base
    if (visible(o, C)) {
      required += int_of(ops_[o].value);
    } else {
      const std::uint32_t* Co = causal_pass ? causal_clock(o) : pram_clock(o, i);
      if (!visible(node, Co)) optional.push_back(int_of(ops_[o].value));
    }
  }

  // Retired-delta carry (docs/CHECKING.md §10): deltas released by pruning
  // are visible to every surviving read, so they are required except where
  // already folded into the base under this clock family.
  if (base == kNoNode) {
    required += vs.nobase_i;
  } else if (auto cit = vs.carry_i.find(base); cit != vs.carry_i.end()) {
    required += cit->second[causal_pass ? num_procs_ : i];
  }

  const auto target = static_cast<std::int64_t>(r.value);
  std::unordered_set<std::int64_t> sums{base_val - required};
  for (const std::int64_t amt : optional) {
    std::unordered_set<std::int64_t> next = sums;
    for (const std::int64_t s : sums) next.insert(s - amt);
    sums = std::move(next);
    if (sums.count(target)) return;
    if (sums.size() > 100000) {
      emit(r.to_string() + ": counter check exceeded the subset-sum budget", kNoNode);
      return;
    }
  }
  if (!sums.count(target)) {
    emit(r.to_string() + " is not explainable: base " + std::to_string(base_val) +
             " minus required " + std::to_string(required) + " and any subset of " +
             std::to_string(optional.size()) + " concurrent deltas",
         kNoNode);
  }
}

void IncrementalChecker::check_fp_counter_read(std::uint32_t node, bool causal_pass,
                                               std::uint32_t base, const VarState& vs,
                                               const std::uint32_t* clock,
                                               std::vector<Violation>& out) {
  const Operation& r = ops_[node];
  const ProcId i = r.proc;
  const bool mixed_applies = (r.mode == ReadMode::kCausal) == causal_pass;
  const auto emit = [&](std::string msg) {
    out.push_back({node, r.var, causal_pass, mixed_applies, std::move(msg), kNoNode});
  };

  const double base_val = base == kNoNode ? 0.0 : double_of(ops_[base].value);
  const std::uint32_t* Cb = base == kNoNode
                                ? nullptr
                                : (causal_pass ? causal_clock(base) : pram_clock(base, i));

  double required = 0.0;
  std::vector<double> optional;
  for (const std::uint32_t o : vs.deltas) {
    const Operation& op = ops_[o];
    const double amt =
        op.fp ? double_of(op.value) : static_cast<double>(int_of(op.value));
    if (Cb != nullptr && visible(o, Cb)) continue;
    if (visible(o, clock)) {
      required += amt;
    } else {
      const std::uint32_t* Co = causal_pass ? causal_clock(o) : pram_clock(o, i);
      if (!visible(node, Co)) optional.push_back(amt);
    }
  }

  // Retired-delta carry (docs/CHECKING.md §10); an fp location may have
  // accumulated integer deltas before its first fp one, so both carry maps
  // contribute here.
  if (base == kNoNode) {
    required += vs.nobase_d + static_cast<double>(vs.nobase_i);
  } else {
    const std::size_t fam = causal_pass ? num_procs_ : i;
    if (auto cit = vs.carry_i.find(base); cit != vs.carry_i.end()) {
      required += static_cast<double>(cit->second[fam]);
    }
    if (auto cit = vs.carry_d.find(base); cit != vs.carry_d.end()) {
      required += cit->second[fam];
    }
  }

  const double target = double_of(r.value);
  std::vector<double> sums{base_val - required};
  for (const double amt : optional) {
    const std::size_t n = sums.size();
    for (std::size_t k = 0; k < n; ++k) {
      const double s = sums[k] - amt;
      if (fp_close(s, target)) return;
      bool dup = false;
      for (std::size_t j = 0; j < sums.size() && !dup; ++j) dup = fp_close(sums[j], s);
      if (!dup) sums.push_back(s);
    }
    if (sums.size() > 100000) {
      emit(r.to_string() + ": fp counter check exceeded the subset-sum budget");
      return;
    }
  }
  for (const double s : sums) {
    if (fp_close(s, target)) return;
  }
  emit(r.to_string() + " is not explainable: fp base " + std::to_string(base_val) +
       " minus required " + std::to_string(required) + " and any subset of " +
       std::to_string(optional.size()) + " concurrent fp deltas");
}

void IncrementalChecker::derive_order_edges() {
  // Forced write-order edges (from causal-visibility observations), skipping
  // counter locations — their reads have no single source write.
  for (auto& [var, edges] : forced_) {
    if (vars_.at(var).counter) continue;
    for (const auto& [a, b] : edges) graph_.add_edge(a, b, EdgeType::kWriteOrder);
  }

  // Sound anti-dependence edges: a read r of source s must precede, in any
  // serialization, every write of the location that is causally after s
  // (and every write at all when s is the initial value).  Per writing
  // process only the earliest such write is needed.
  for (auto& [var, vs] : vars_) {
    (void)var;
    if (vs.counter) continue;
    for (const std::uint32_t r : vs.reads) {
      const Operation& rop = ops_[r];
      std::uint32_t s = kNoNode;
      if (rop.write_id.valid()) {
        auto it = writers_.find(rop.write_id);
        if (it == writers_.end()) continue;
        s = it->second;
      }
      for (ProcId j = 0; j < num_procs_; ++j) {
        const auto& list = vs.writes_by_proc[j];
        if (list.empty()) continue;
        std::size_t k = 0;
        if (s != kNoNode) {
          const ProcId sp = ops_[s].proc;
          const std::uint32_t need = pidx_[s] + 1;
          // Clocks grow monotonically along program order, so the first
          // write of process j that causally includes s is found by search.
          auto it2 = std::lower_bound(list.begin(), list.end(), need,
                                      [this, sp](std::uint32_t n, std::uint32_t lim) {
                                        return causal_clock(n)[sp] < lim;
                                      });
          k = static_cast<std::size_t>(it2 - list.begin());
          if (k < list.size() && list[k] == s) ++k;
        }
        if (k < list.size()) {
          graph_.add_edge(r, list[k], EdgeType::kAntiDep);
          ++n_rw_edges_;
        }
      }
    }
  }
}

void IncrementalChecker::analyze_models(GraphVerdict& v) {
  const DepGraph::SccResult s = graph_.scc(kAllEdges);
  v.sc_acyclic = s.acyclic;
  if (s.acyclic) {
    v.coherent = true;  // every per-location subgraph embeds in the full graph
    return;
  }

  // Coherence: per-location write-serializability.  Each location's
  // conflict subgraph (program order projected to the location, reads-from,
  // derived WW and RW edges) embeds into the full graph with program-order
  // chains expanded, so an acyclic full graph implies coherence; with a
  // cycle present, test each location separately.
  v.coherent = true;
  for (const auto& [var, vs] : vars_) {
    if (vs.counter) continue;
    std::unordered_map<std::uint32_t, std::uint32_t> local;
    DepGraph mini;
    const auto localize = [&](std::uint32_t n) {
      auto [it, fresh] = local.try_emplace(n, 0);
      if (fresh) it->second = mini.add_node();
      return it->second;
    };
    // Per-process chains over this location's operations, in feed order.
    std::vector<std::uint32_t> last(num_procs_, kNoNode);
    const auto chain = [&](std::uint32_t n) {
      const ProcId p = ops_[n].proc;
      const std::uint32_t l = localize(n);
      if (last[p] != kNoNode) mini.add_edge(localize(last[p]), l, EdgeType::kProgram);
      last[p] = n;
    };
    std::vector<std::uint32_t> var_ops;
    for (ProcId j = 0; j < num_procs_; ++j) {
      for (const std::uint32_t w : vs.writes_by_proc[j]) var_ops.push_back(w);
    }
    for (const std::uint32_t r : vs.reads) var_ops.push_back(r);
    std::sort(var_ops.begin(), var_ops.end());
    for (const std::uint32_t n : var_ops) chain(n);

    for (const std::uint32_t r : vs.reads) {
      const Operation& rop = ops_[r];
      if (rop.write_id.valid()) {
        auto it = writers_.find(rop.write_id);
        if (it != writers_.end()) {
          mini.add_edge(localize(it->second), localize(r), EdgeType::kReadsFrom);
        }
      }
    }
    if (auto fit = forced_.find(var); fit != forced_.end()) {
      for (const auto& [a, b] : fit->second) {
        mini.add_edge(localize(a), localize(b), EdgeType::kWriteOrder);
      }
    }
    // RW edges for this location, recovered from the global graph.
    for (const std::uint32_t r : vs.reads) {
      for (const DepGraph::HalfEdge& e : graph_.out_edges(r)) {
        if (e.type == EdgeType::kAntiDep) {
          mini.add_edge(localize(r), localize(e.to), EdgeType::kAntiDep);
        }
      }
    }
    if (!mini.scc(kAllEdges).acyclic) {
      v.coherent = false;
      break;
    }
  }
}

void IncrementalChecker::extract_counterexample(GraphVerdict& v) {
  if (v.sc_acyclic) return;
  // Report the cycle in external ids (OpRefs when a History was replayed)
  // so dot_export can render it against the original history.
  for (const TypedEdge& e : graph_.find_cycle(kAllEdges)) {
    v.counterexample.push_back({ext_[e.from], ext_[e.to], e.type});
  }
}

GraphVerdict IncrementalChecker::finalize() {
  MC_CHECK_MSG(!finalized_, "finalize called twice");
  finalized_ = true;

  if (failed()) return error_verdict(error_);

  GraphVerdict v;

  // Structural await validation (plain locations only, as in the batch
  // checker — a counter's resolving op is its final delta).
  std::vector<Violation> await_viols;
  for (const std::uint32_t a : awaits_) {
    const Operation& op = ops_[a];
    if (!op.write_id.valid()) continue;
    auto vit = vars_.find(op.var);
    if (vit != vars_.end() && vit->second.counter) continue;
    auto wit = writers_.find(op.write_id);
    if (wit == writers_.end()) continue;  // source retired: value check waived
    const std::uint32_t w = wit->second;
    if (ops_[w].kind == OpKind::kWrite && ops_[w].value != op.value) {
      await_viols.push_back({a, op.var, true, true,
                             op.to_string() + " resolved by " + ops_[w].to_string() +
                                 " with a different value",
                             kNoNode});
    }
  }
  std::sort(await_viols.begin(), await_viols.end(),
            [this](const Violation& a, const Violation& b) {
              return ext_[a.node] < ext_[b.node];
            });

  // Counter reads were deferred (a concurrent delta arriving later can
  // enlarge the explainable set); check them now.  Reads of a location that
  // only later turned out to be a counter were plain-checked at feed time —
  // retract those verdicts and re-check with counter semantics.
  std::vector<Violation> read_viols;
  for (Violation& pv : violations_) {
    if (!vars_.at(pv.var).counter) read_viols.push_back(std::move(pv));
  }
  for (auto& [var, vs] : vars_) {
    (void)var;
    if (!vs.counter) continue;
    std::sort(vs.writes.begin(), vs.writes.end(),
              [this](std::uint32_t a, std::uint32_t b) { return ext_[a] < ext_[b]; });
    std::sort(vs.deltas.begin(), vs.deltas.end(),
              [this](std::uint32_t a, std::uint32_t b) { return ext_[a] < ext_[b]; });
    for (const std::uint32_t r : vs.reads) {
      check_counter_read(r, /*causal_pass=*/true, read_viols);
      check_counter_read(r, /*causal_pass=*/false, read_viols);
    }
  }
  std::stable_sort(read_viols.begin(), read_viols.end(),
                   [this](const Violation& a, const Violation& b) {
                     return ext_[a.node] < ext_[b.node];
                   });

  // Elastic crash-loss waiver, retroactive by necessity: the crash predates
  // the keepalive give-up verdict by design, so stale reads caused by the
  // victim's permanently lost write tail were recorded live, before
  // on_proc_departed() could mark a feed boundary.  Now that the departed
  // set is complete, drop the read verdicts a departure explains (see
  // waived_read()); survivor-only verdicts all stand.
  if (departed_any()) {
    std::erase_if(read_viols, [this](const Violation& x) {
      return waived_read(ops_[x.node].proc, guilty_proc(x.cycle_with));
    });
  }

  // Verdicts frozen at prune time come first (they carry the oldest ext
  // ids); awaits apply to every model, reads to their own passes.
  std::sort(frozen_.begin(), frozen_.end(),
            [](const FrozenViolation& a, const FrozenViolation& b) {
              return a.ext < b.ext;
            });
  // Frozen read verdicts get the same crash-loss waiver (their waiver
  // inputs were captured at freeze time); erase so live_counts() agrees.
  if (departed_any()) {
    std::erase_if(frozen_, [this](const FrozenViolation& f) {
      return !f.is_await && waived_read(f.reader, f.guilty);
    });
  }

  const auto assemble = [&](CheckResult& out, auto&& applies, auto&& applies_frozen) {
    for (const FrozenViolation& fv : frozen_) {
      if (!fv.is_await && !applies_frozen(fv)) continue;
      out.ok = false;
      if (out.violations.size() < 8) out.violations.push_back(fv.message);
    }
    for (const Violation& av : await_viols) {
      out.ok = false;
      if (out.violations.size() < 8) out.violations.push_back(av.message);
    }
    for (const Violation& rv : read_viols) {
      if (!applies(rv)) continue;
      out.ok = false;
      if (out.violations.size() < 8) out.violations.push_back(rv.message);
    }
  };
  assemble(v.causal, [](const Violation& x) { return x.causal_pass; },
           [](const FrozenViolation& x) { return x.causal_pass; });
  assemble(v.pram, [](const Violation& x) { return !x.causal_pass; },
           [](const FrozenViolation& x) { return !x.causal_pass; });
  assemble(v.mixed, [](const Violation& x) { return x.mixed_applies; },
           [](const FrozenViolation& x) { return x.mixed_applies; });

  derive_order_edges();
  analyze_models(v);
  extract_counterexample(v);

  // Post-finalize live_counts()/metrics() must tally the final verdict
  // set — counter retraction and the crash-loss waiver both happened here —
  // so rebuild the stored violations from the survivors.
  violations_ = std::move(read_viols);
  for (Violation& av : await_viols) violations_.push_back(std::move(av));
  return v;
}

std::size_t IncrementalChecker::prune() {
  if (!frontier_valid_ || failed() || finalized_) return 0;
  frontier_valid_ = false;

  const auto n = static_cast<std::uint32_t>(ops_.size());
  constexpr std::uint32_t kGone = ~std::uint32_t{0};

  // Everything at or before the frontier member of its process is "behind
  // the frontier": fully visible, in every clock family, to every operation
  // that will ever be fed from now on.
  const auto pre = [&](std::uint32_t v) {
    return pidx_[v] <= frontier_line_[ops_[v].proc];
  };

  // ---- keep-set -----------------------------------------------------
  // Pre-frontier operations survive only while some live structure still
  // needs them: lock-episode attachment points, own-observation tracking,
  // per-process tails, members of instances that cannot retire, counter
  // bases, and plain writes not yet superseded in every family.
  std::vector<bool> keep(n, false);
  const auto mark = [&](std::uint32_t v) {
    if (v != kNoNode) keep[v] = true;
  };

  for (const auto& [lock, s] : locks_) {
    (void)lock;
    mark(s.tail);
    mark(s.prev_tail);
    for (const std::uint32_t v : s.open_wls) mark(v);
    for (const std::uint32_t v : s.pending_r) mark(v);
  }
  for (const auto& per_proc : own_track_) {
    for (const auto& [var, t] : per_proc) {
      (void)var;
      mark(t.last);
      mark(t.prev_distinct);
    }
  }
  for (const std::uint32_t v : prev_node_) mark(v);

  // Barrier instances wholly behind the frontier (and released) retire with
  // an epoch watermark; any other instance pins its members and their
  // attachment predecessors.
  std::vector<std::uint64_t> erase_bars;
  for (const auto& [key, b] : barriers_) {
    bool all_pre = b.released;
    for (const std::uint32_t m : b.members) all_pre = all_pre && pre(m);
    if (all_pre) {
      erase_bars.push_back(key);
    } else {
      for (const std::uint32_t m : b.members) mark(m);
      for (const std::uint32_t m : b.member_pre) mark(m);
    }
  }

  // Counter locations never retire writes: any of them can serve as the
  // base of a future read's scan.
  for (const auto& [var, vs] : vars_) {
    (void)var;
    if (!vs.counter) continue;
    for (const std::uint32_t w : vs.writes) keep[w] = true;
  }

  // A plain write may go only once some later write of the same location
  // supersedes it under the causal clock *and* under every observer's PRAM
  // clock — then no future read can name it (stale by watermark) and no
  // future intervener search can need it (the superseding write's clocks
  // contain its whole visibility cone).  Reverse feed-order scan with one
  // running column-max per family; visibility is single-component, so the
  // maxima decide supersession exactly.
  //
  // Only *pre-frontier* writes supply supersession evidence.  The barrier
  // frontier guarantees every future operation sees the pre-frontier
  // superseder (member ~> future op, superseder ~> member), which is what
  // licenses the stale-by-watermark classification of stragglers.  A
  // post-frontier superseder carries no such guarantee: a straggler read
  // fed after this prune may be concurrent with it and legally return the
  // latest pre-frontier write, so that write must survive until a frontier
  // forms past its superseder.
  {
    const std::size_t fams = num_procs_ + 1;  // observers 0..p-1, then causal
    std::vector<std::uint32_t> maxv;
    for (const auto& [var, vs] : vars_) {
      (void)var;
      if (vs.counter || vs.writes.empty()) continue;
      maxv.assign(fams * num_procs_, 0);
      for (auto it = vs.writes.rbegin(); it != vs.writes.rend(); ++it) {
        const std::uint32_t w = *it;
        if (!pre(w)) continue;  // not a candidate, and no evidence either
        const ProcId p = ops_[w].proc;
        const std::uint32_t need = pidx_[w] + 1;
        bool superseded = true;
        for (std::size_t f = 0; f < fams && superseded; ++f) {
          superseded = maxv[f * num_procs_ + p] >= need;
        }
        if (!superseded) keep[w] = true;
        for (ProcId i = 0; i < num_procs_; ++i) {
          const std::uint32_t* g = pram_clock(w, i);
          std::uint32_t* m = maxv.data() + static_cast<std::size_t>(i) * num_procs_;
          for (std::size_t q = 0; q < num_procs_; ++q) m[q] = std::max(m[q], g[q]);
        }
        const std::uint32_t* c = causal_clock(w);
        std::uint32_t* m = maxv.data() + static_cast<std::size_t>(num_procs_) * num_procs_;
        for (std::size_t q = 0; q < num_procs_; ++q) m[q] = std::max(m[q], c[q]);
      }
    }
  }

  std::vector<bool> retire(n, false);
  for (std::uint32_t v = 0; v < n; ++v) retire[v] = pre(v) && !keep[v];

  // ---- settle pre-frontier verdicts on the spot ---------------------
  // Counter reads behind the frontier see their final delta set already:
  // every future delta is post-frontier, hence neither required (not in the
  // read's clock) nor optional (the read is in *its* clock).  Check them now
  // with finalize's exact procedure and freeze the outcomes.
  for (auto& [var, vs] : vars_) {
    (void)var;
    if (!vs.counter) continue;
    std::sort(vs.writes.begin(), vs.writes.end(),
              [this](std::uint32_t a, std::uint32_t b) { return ext_[a] < ext_[b]; });
    std::sort(vs.deltas.begin(), vs.deltas.end(),
              [this](std::uint32_t a, std::uint32_t b) { return ext_[a] < ext_[b]; });
    std::vector<std::uint32_t> later_reads;
    std::vector<Violation> settled;
    for (const std::uint32_t r : vs.reads) {
      if (!pre(r)) {
        later_reads.push_back(r);
        continue;
      }
      check_counter_read(r, /*causal_pass=*/true, settled);
      check_counter_read(r, /*causal_pass=*/false, settled);
    }
    vs.reads = std::move(later_reads);
    for (Violation& sv : settled) {
      freeze_violation({/*is_await=*/false, sv.causal_pass, sv.mixed_applies,
                        ext_[sv.node], std::move(sv.message)});
    }

    // Fold the retiring deltas into per-base per-family carries.  Bases fed
    // after the frontier dominate every retiring delta, so their carry is
    // identically zero and stays absent.
    std::vector<std::uint32_t> gone;
    for (const std::uint32_t o : vs.deltas) {
      if (retire[o]) gone.push_back(o);
    }
    if (gone.empty()) continue;
    for (const std::uint32_t o : gone) {
      if (ops_[o].fp) {
        vs.nobase_d += double_of(ops_[o].value);
      } else {
        vs.nobase_i += int_of(ops_[o].value);
      }
    }
    for (const std::uint32_t w : vs.writes) {
      if (!pre(w)) continue;
      for (std::size_t f = 0; f <= num_procs_; ++f) {
        const std::uint32_t* Cw =
            f == num_procs_ ? causal_clock(w) : pram_clock(w, static_cast<ProcId>(f));
        std::int64_t ci = 0;
        double cd = 0.0;
        for (const std::uint32_t o : gone) {
          if (visible(o, Cw)) continue;  // already folded into this base
          if (ops_[o].fp) {
            cd += double_of(ops_[o].value);
          } else {
            ci += int_of(ops_[o].value);
          }
        }
        if (ci != 0) {
          auto& vec = vs.carry_i[w];
          if (vec.empty()) vec.assign(num_procs_ + 1, 0);
          vec[f] += ci;
        }
        if (cd != 0.0) {
          auto& vec = vs.carry_d[w];
          if (vec.empty()) vec.assign(num_procs_ + 1, 0.0);
          vec[f] += cd;
        }
      }
    }
  }

  // Pre-frontier awaits: run finalize's structural value check now.  A
  // retiring source forfeits only the frozen-value cross-check — retirement
  // already proves the awaited write existed and was superseded.
  {
    std::vector<std::uint32_t> later;
    for (const std::uint32_t a : awaits_) {
      if (!pre(a)) {
        later.push_back(a);
        continue;
      }
      const Operation& op = ops_[a];
      if (!op.write_id.valid()) continue;
      auto vit = vars_.find(op.var);
      if (vit != vars_.end() && vit->second.counter) continue;
      auto wit = writers_.find(op.write_id);
      if (wit == writers_.end() || retire[wit->second]) continue;
      const std::uint32_t w = wit->second;
      if (ops_[w].kind == OpKind::kWrite && ops_[w].value != op.value) {
        freeze_violation({/*is_await=*/true, /*causal_pass=*/true,
                          /*mixed_applies=*/true, ext_[a],
                          op.to_string() + " resolved by " + ops_[w].to_string() +
                              " with a different value"});
      }
    }
    awaits_ = std::move(later);
  }

  // Violations attached to retiring reads: retract the ones finalize would
  // retract (plain checks on locations now known to be counters), freeze the
  // rest.  NB: frozen verdicts do not retract if the location turns into a
  // counter only after this prune (docs/CHECKING.md §10).
  {
    std::vector<Violation> still_live;
    for (Violation& v : violations_) {
      if (!retire[v.node]) {
        still_live.push_back(std::move(v));
        continue;
      }
      auto vit = vars_.find(v.var);
      if (vit != vars_.end() && vit->second.counter) continue;  // retracted
      freeze_violation({/*is_await=*/false, v.causal_pass, v.mixed_applies,
                        ext_[v.node], std::move(v.message), ops_[v.node].proc,
                        guilty_proc(v.cycle_with)});
    }
    violations_ = std::move(still_live);
  }

  // ---- index maintenance --------------------------------------------
  for (auto it = writers_.begin(); it != writers_.end();) {
    if (retire[it->second]) {
      if (it->first.proc < num_procs_) {
        retired_seq_[it->first.proc] = std::max(retired_seq_[it->first.proc], it->first.seq);
      }
      it = writers_.erase(it);
    } else {
      ++it;
    }
  }
  for (const std::uint64_t key : erase_bars) {
    const auto bid = static_cast<BarrierId>(key >> 32);
    const auto epoch = static_cast<std::uint32_t>(key & 0xffffffffu);
    auto& wm = retired_epoch_[bid];
    wm = std::max(wm, epoch);
    barriers_.erase(key);
  }
  for (auto& [var, edges] : forced_) {
    (void)var;
    std::erase_if(edges, [&](const std::pair<std::uint32_t, std::uint32_t>& e) {
      return retire[e.first] || retire[e.second];
    });
  }

  // ---- compaction ---------------------------------------------------
  std::vector<std::uint32_t> remap(n, kGone);
  std::uint32_t live = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (!retire[v]) remap[v] = live++;
  }

  const std::size_t P = num_procs_;
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t nv = remap[v];
    if (nv == kGone || nv == v) continue;  // monotone remap: nv < v
    ops_[nv] = std::move(ops_[v]);
    ext_[nv] = ext_[v];
    pidx_[nv] = pidx_[v];  // positions are preserved, only rows move
    std::copy(causal_.begin() + static_cast<std::ptrdiff_t>(v) * P,
              causal_.begin() + static_cast<std::ptrdiff_t>(v + 1) * P,
              causal_.begin() + static_cast<std::ptrdiff_t>(nv) * P);
    std::copy(pram_.begin() + static_cast<std::ptrdiff_t>(v) * P * P,
              pram_.begin() + static_cast<std::ptrdiff_t>(v + 1) * P * P,
              pram_.begin() + static_cast<std::ptrdiff_t>(nv) * P * P);
  }
  ops_.resize(live);
  ext_.resize(live);
  pidx_.resize(live);
  causal_.resize(static_cast<std::size_t>(live) * P);
  pram_.resize(static_cast<std::size_t>(live) * P * P);
  graph_.compact(remap, live);

  const auto rm = [&](std::uint32_t& v) {
    if (v == kNoNode) return;
    MC_CHECK_MSG(remap[v] != kGone, "pruning retired a referenced node");
    v = remap[v];
  };
  const auto rm_or_drop = [&](std::uint32_t& v) {
    if (v != kNoNode) v = remap[v];  // kGone == kNoNode: retired refs vanish
  };
  static_assert(kGone == IncrementalChecker::kNoNode);

  for (std::uint32_t& v : prev_node_) rm(v);
  for (auto& [wid, v] : writers_) {
    (void)wid;
    rm(v);
  }
  for (auto& [lock, s] : locks_) {
    (void)lock;
    rm_or_drop(s.tail);
    rm_or_drop(s.prev_tail);
    for (std::uint32_t& v : s.open_wls) rm(v);
    for (std::uint32_t& v : s.pending_r) rm(v);
  }
  for (auto& [key, b] : barriers_) {
    (void)key;
    for (std::uint32_t& m : b.members) rm(m);
    for (std::uint32_t& m : b.member_pre) rm_or_drop(m);
  }
  for (auto& per_proc : own_track_) {
    for (auto& [var, t] : per_proc) {
      (void)var;
      rm_or_drop(t.last);
      rm_or_drop(t.prev_distinct);
    }
  }
  for (std::uint32_t& a : awaits_) rm(a);
  for (Violation& v : violations_) {
    rm(v.node);
    rm_or_drop(v.cycle_with);  // a retired intervener: keep the verdict, lose the cycle
  }
  for (auto& [var, vs] : vars_) {
    (void)var;
    const auto filter = [&](std::vector<std::uint32_t>& list) {
      std::erase_if(list, [&](std::uint32_t v) { return retire[v]; });
      for (std::uint32_t& v : list) v = remap[v];
    };
    for (auto& list : vs.writes_by_proc) filter(list);
    filter(vs.writes);
    filter(vs.deltas);
    filter(vs.reads);
    const auto rekey = [&](auto& carry) {
      std::remove_cvref_t<decltype(carry)> next;
      for (auto& [base, vec] : carry) next.emplace(remap[base], std::move(vec));
      carry = std::move(next);
    };
    rekey(vs.carry_i);
    rekey(vs.carry_d);
  }
  forced_seen_.clear();
  for (auto& [var, edges] : forced_) {
    (void)var;
    for (auto& [a, b] : edges) {
      a = remap[a];
      b = remap[b];
      forced_seen_.emplace((std::uint64_t{a} << 32) | b, true);
    }
  }

  const std::size_t retired = n - live;
  n_retired_ += retired;
  ++n_prunes_;
  return retired;
}

IncrementalChecker::LiveCounts IncrementalChecker::live_counts() const {
  LiveCounts c;
  c.fed = n_fed_;
  c.live_nodes = ops_.size();
  c.retired = n_retired_;
  c.prunes = n_prunes_;
  const auto tally = [&](bool is_await, bool causal_pass, bool mixed_applies) {
    if (is_await || causal_pass) ++c.violations_causal;
    if (is_await || !causal_pass) ++c.violations_pram;
    if (is_await || mixed_applies) ++c.violations_mixed;
  };
  for (const Violation& v : violations_) tally(false, v.causal_pass, v.mixed_applies);
  for (const FrozenViolation& f : frozen_) tally(f.is_await, f.causal_pass, f.mixed_applies);
  return c;
}

MetricsSnapshot IncrementalChecker::metrics() const {
  MetricsSnapshot m;
  m.values["checker.ops"] = n_fed_;
  m.values["checker.live_nodes"] = ops_.size();
  m.values["checker.retired_total"] = n_retired_;
  m.values["checker.prunes"] = n_prunes_;
  m.values["checker.reads"] = n_reads_;
  m.values["checker.writes"] = n_writes_;
  m.values["checker.deltas"] = n_deltas_;
  m.values["checker.sync_ops"] = n_sync_;
  m.values["checker.deferred_counter_reads"] = n_deferred_;
  m.values["checker.violations"] = violations_.size() + frozen_.size() + frozen_dropped_;
  m.values["checker.edges.po"] = graph_.edge_count(EdgeType::kProgram);
  m.values["checker.edges.rf"] = graph_.edge_count(EdgeType::kReadsFrom);
  m.values["checker.edges.lock"] = graph_.edge_count(EdgeType::kLock);
  m.values["checker.edges.bar"] = graph_.edge_count(EdgeType::kBarrier);
  m.values["checker.edges.await"] = graph_.edge_count(EdgeType::kAwait);
  m.values["checker.edges.ww"] = graph_.edge_count(EdgeType::kWriteOrder);
  m.values["checker.edges.rw"] = graph_.edge_count(EdgeType::kAntiDep);
  return m;
}

GraphVerdict IncrementalChecker::check(const History& h) {
  if (!h.sequential_processes()) {
    return error_verdict(
        "the incremental graph checker requires sequential-process histories "
        "(use the BitMatrix checkers for partial program orders)");
  }
  const auto n = static_cast<std::uint32_t>(h.size());

  // Positions within each process, for explicit-edge validation.
  std::vector<std::uint32_t> pos(n, 0);
  for (ProcId p = 0; p < h.num_procs(); ++p) {
    std::uint32_t k = 0;
    for (const OpRef r : h.ops_of(p)) pos[r] = k++;
  }
  for (const auto& [a, b] : h.explicit_program_edges()) {
    if (pos[a] >= pos[b]) {
      return error_verdict("malformed history: program order contains a cycle");
    }
    // Forward explicit edges are implied by the sequential chain.
  }

  // Well-formedness condition 3 up front, so malformed-lock errors surface
  // with the batch checker's precedence and exact messages.
  for (ProcId p = 0; p < h.num_procs(); ++p) {
    std::map<LockId, int> read_held, write_held;
    for (const OpRef r : h.ops_of(p)) {
      const Operation& op = h.op(r);
      switch (op.kind) {
        case OpKind::kReadLock: ++read_held[op.lock]; break;
        case OpKind::kWriteLock:
          if (++write_held[op.lock] > 1) {
            return error_verdict("malformed history: process " + std::to_string(p) +
                                 " re-acquires write lock l" + std::to_string(op.lock) +
                                 " without unlocking");
          }
          break;
        case OpKind::kReadUnlock:
          if (--read_held[op.lock] < 0) {
            return error_verdict("malformed history: unmatched read unlock on l" +
                                 std::to_string(op.lock) + " by process " +
                                 std::to_string(p));
          }
          break;
        case OpKind::kWriteUnlock:
          if (--write_held[op.lock] < 0) {
            return error_verdict("malformed history: unmatched write unlock on l" +
                                 std::to_string(op.lock) + " by process " +
                                 std::to_string(p));
          }
          break;
        default: break;
      }
    }
  }

  // Sparse generating edges, mirroring build_relations (causality.cpp).
  std::vector<TypedEdge> edges;
  for (ProcId p = 0; p < h.num_procs(); ++p) {
    const auto& ops = h.ops_of(p);
    for (std::size_t k = 1; k < ops.size(); ++k) {
      edges.push_back({ops[k - 1], ops[k], EdgeType::kProgram});
    }
  }

  std::unordered_map<WriteId, OpRef> writer_of;
  for (OpRef i = 0; i < n; ++i) {
    const Operation& op = h.op(i);
    if (op.kind == OpKind::kWrite || op.kind == OpKind::kDelta) {
      if (!op.write_id.valid()) {
        return error_verdict("write without a write id: " + op.to_string());
      }
      if (!writer_of.insert({op.write_id, i}).second) {
        return error_verdict("duplicate write id on " + op.to_string());
      }
    }
  }
  for (OpRef i = 0; i < n; ++i) {
    const Operation& op = h.op(i);
    if ((op.kind != OpKind::kRead && op.kind != OpKind::kAwait) || !op.write_id.valid()) {
      continue;
    }
    auto it = writer_of.find(op.write_id);
    if (it == writer_of.end()) {
      return error_verdict("read resolves to a write that is not in the history: " +
                           op.to_string());
    }
    if (h.op(it->second).var != op.var) {
      return error_verdict("read of x" + std::to_string(op.var) +
                           " resolves to a write of a different location: " +
                           h.op(it->second).to_string());
    }
    edges.push_back({it->second, i,
                     op.kind == OpKind::kRead ? EdgeType::kReadsFrom : EdgeType::kAwait});
  }

  // Lock order: near-transitive-reduction episode edges (same closure as
  // the all-pairs construction of causality.cpp).
  {
    std::map<LockId, std::map<std::uint64_t, std::vector<OpRef>>> per_lock;
    for (OpRef i = 0; i < n; ++i) {
      if (is_lock_op(h.op(i).kind)) {
        per_lock[h.op(i).lock][h.op(i).lock_episode].push_back(i);
      }
    }
    for (const auto& [lock, episodes] : per_lock) {
      (void)lock;
      std::vector<OpRef> tails;      // attachment ops of the last write episode
      std::vector<OpRef> prev_tails; // ... of the one before it
      std::vector<OpRef> pending_r;  // read-class ops since the last write episode
      for (const auto& [eid, eops] : episodes) {
        (void)eid;
        std::vector<OpRef> wls, wus, rs;
        for (const OpRef o : eops) {
          switch (h.op(o).kind) {
            case OpKind::kWriteLock: wls.push_back(o); break;
            case OpKind::kWriteUnlock: wus.push_back(o); break;
            default: rs.push_back(o); break;
          }
        }
        if (wls.empty() && wus.empty()) {
          for (const OpRef r : rs) {
            for (const OpRef t : tails) edges.push_back({t, r, EdgeType::kLock});
            pending_r.push_back(r);
          }
          continue;
        }
        const std::vector<OpRef>& heads = wls.empty() ? wus : wls;
        for (const OpRef t : tails) {
          for (const OpRef hd : heads) edges.push_back({t, hd, EdgeType::kLock});
        }
        for (const OpRef r : pending_r) {
          for (const OpRef hd : heads) edges.push_back({r, hd, EdgeType::kLock});
        }
        for (const OpRef wl : wls) {
          for (const OpRef wu : wus) edges.push_back({wl, wu, EdgeType::kLock});
        }
        // Read-class ops sharing a write episode relate only to *other*
        // episodes: behind the previous write tenure, ahead of the next.
        prev_tails = tails;
        for (const OpRef r : rs) {
          for (const OpRef t : prev_tails) edges.push_back({t, r, EdgeType::kLock});
        }
        pending_r = rs;
        tails = wus.empty() ? wls : wus;
      }
    }
  }

  // Barrier order: members wait for every member's program predecessor;
  // program successors wait for every member.
  {
    std::map<std::pair<BarrierId, std::uint32_t>, std::vector<OpRef>> instances;
    for (OpRef i = 0; i < n; ++i) {
      const Operation& op = h.op(i);
      if (op.kind == OpKind::kBarrier) {
        instances[{op.barrier, op.barrier_epoch}].push_back(i);
      }
    }
    for (const auto& [key, members] : instances) {
      (void)key;
      for (const OpRef m : members) {
        const ProcId p = h.op(m).proc;
        const auto& ops = h.ops_of(p);
        const std::uint32_t at = pos[m];
        if (at > 0) {
          for (const OpRef m2 : members) {
            if (m2 != m) edges.push_back({ops[at - 1], m2, EdgeType::kBarrier});
          }
        }
        if (at + 1 < ops.size()) {
          for (const OpRef m2 : members) {
            if (m2 != m) edges.push_back({m2, ops[at + 1], EdgeType::kBarrier});
          }
        }
      }
    }
  }

  // Kahn's algorithm: a deterministic causal linear extension, or the cycle
  // that proves there is none.
  std::vector<std::uint32_t> indegree(n, 0);
  std::vector<std::vector<std::uint32_t>> succ(n);
  for (const TypedEdge& e : edges) {
    succ[e.from].push_back(e.to);
    ++indegree[e.to];
  }
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>, std::greater<>> ready;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  std::vector<std::uint32_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::uint32_t i = ready.top();
    ready.pop();
    order.push_back(i);
    for (const std::uint32_t j : succ[i]) {
      if (--indegree[j] == 0) ready.push(j);
    }
  }
  if (order.size() != n) {
    GraphVerdict v = error_verdict("causality relation is cyclic");
    DepGraph g;
    g.ensure_nodes(n);
    for (const TypedEdge& e : edges) g.add_edge(e.from, e.to, e.type);
    v.counterexample = g.find_cycle(kAllEdges);
    return v;
  }

  IncrementalChecker chk(h.num_procs());
  for (const std::uint32_t i : order) {
    if (!chk.feed(h.op(i), i)) break;
  }
  return chk.finalize();
}

GraphVerdict check_history_graph(const History& h) { return IncrementalChecker::check(h); }

}  // namespace mc::history
