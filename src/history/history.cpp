#include "history/history.h"

#include <unordered_map>

#include "common/check.h"

namespace mc::history {

OpRef History::add(Operation op) {
  MC_CHECK(op.proc < num_procs_);
  const auto ref = static_cast<OpRef>(ops_.size());
  ops_.push_back(op);
  by_proc_[op.proc].push_back(ref);
  return ref;
}

void History::add_program_edge(OpRef before, OpRef after) {
  MC_CHECK(before < ops_.size() && after < ops_.size());
  MC_CHECK_MSG(ops_[before].proc == ops_[after].proc,
               "program order relates operations of one process only");
  explicit_po_.push_back({before, after});
}

OpRef History::read(ProcId p, VarId x, Value v, ReadMode mode, WriteId source) {
  Operation op;
  op.kind = OpKind::kRead;
  op.proc = p;
  op.var = x;
  op.value = v;
  op.mode = mode;
  op.write_id = source;
  return add(op);
}

OpRef History::write(ProcId p, VarId x, Value v) {
  Operation op;
  op.kind = OpKind::kWrite;
  op.proc = p;
  op.var = x;
  op.value = v;
  op.write_id = WriteId{p, ++write_seq_[p]};
  return add(op);
}

OpRef History::delta(ProcId p, VarId x, std::int64_t amount) {
  Operation op;
  op.kind = OpKind::kDelta;
  op.proc = p;
  op.var = x;
  op.value = value_of(amount);
  op.write_id = WriteId{p, ++write_seq_[p]};
  return add(op);
}

OpRef History::delta_double(ProcId p, VarId x, double amount) {
  Operation op;
  op.kind = OpKind::kDelta;
  op.proc = p;
  op.var = x;
  op.value = value_of(amount);
  op.fp = true;
  op.write_id = WriteId{p, ++write_seq_[p]};
  return add(op);
}

namespace {
Operation lock_op(OpKind k, ProcId p, LockId l, std::uint64_t episode) {
  Operation op;
  op.kind = k;
  op.proc = p;
  op.lock = l;
  op.lock_episode = episode;
  return op;
}
}  // namespace

OpRef History::rlock(ProcId p, LockId l, std::uint64_t e) { return add(lock_op(OpKind::kReadLock, p, l, e)); }
OpRef History::runlock(ProcId p, LockId l, std::uint64_t e) { return add(lock_op(OpKind::kReadUnlock, p, l, e)); }
OpRef History::wlock(ProcId p, LockId l, std::uint64_t e) { return add(lock_op(OpKind::kWriteLock, p, l, e)); }
OpRef History::wunlock(ProcId p, LockId l, std::uint64_t e) { return add(lock_op(OpKind::kWriteUnlock, p, l, e)); }

OpRef History::barrier(ProcId p, std::uint32_t epoch, BarrierId b) {
  Operation op;
  op.kind = OpKind::kBarrier;
  op.proc = p;
  op.barrier = b;
  op.barrier_epoch = epoch;
  return add(op);
}

OpRef History::await(ProcId p, VarId x, Value v, WriteId resolved_by) {
  Operation op;
  op.kind = OpKind::kAwait;
  op.proc = p;
  op.var = x;
  op.value = v;
  op.write_id = resolved_by;
  return add(op);
}

WriteId History::last_write_of(ProcId p) const {
  MC_CHECK(p < num_procs_);
  return write_seq_[p] == 0 ? kInitialWrite : WriteId{p, write_seq_[p]};
}

std::optional<std::string> History::resolve_reads_by_value() {
  // Map (var, value) -> writing op, flagging duplicates.
  std::unordered_map<std::uint64_t, OpRef> writers;
  auto key = [](VarId x, Value v) {
    return (static_cast<std::uint64_t>(x) << 48) ^ (v * 0x9e3779b97f4a7c15ull);
  };
  for (OpRef i = 0; i < ops_.size(); ++i) {
    const Operation& op = ops_[i];
    if (op.kind != OpKind::kWrite) continue;
    auto [it, inserted] = writers.insert({key(op.var, op.value), i});
    if (!inserted) {
      return "duplicate written value " + std::to_string(op.value) + " on x" +
             std::to_string(op.var) +
             " — unique-values resolution is ambiguous; set write_id explicitly";
    }
  }
  for (Operation& op : ops_) {
    if ((op.kind != OpKind::kRead && op.kind != OpKind::kAwait) || op.write_id.valid()) {
      continue;
    }
    auto it = writers.find(key(op.var, op.value));
    if (it != writers.end()) {
      op.write_id = ops_[it->second].write_id;
    }
    // No writer: the read returns the initial value; write_id stays
    // kInitialWrite, which the checkers treat as the virtual initial write.
  }
  return std::nullopt;
}

std::string History::to_string() const {
  std::string out;
  for (ProcId p = 0; p < num_procs_; ++p) {
    out += "p" + std::to_string(p) + ":";
    for (const OpRef r : by_proc_[p]) {
      out += ' ';
      out += ops_[r].to_string();
    }
    out += '\n';
  }
  return out;
}

}  // namespace mc::history
