#include "history/serialization.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

#include "common/check.h"
#include "history/causality.h"

namespace mc::history {

namespace {

struct VarState {
  WriteId last_write{};       // identity of the latest write (plain vars)
  std::int64_t value = 0;     // numeric value (integer counters)
  double dvalue = 0.0;        // numeric value (fp counters)
  bool written = false;
};

struct LockState {
  ProcId writer = kNoProc;
  std::map<ProcId, int> readers;  // per-process read-hold counts
};

class Searcher {
 public:
  Searcher(const History& h, const Relations& rel) : h_(h) {
    const std::size_t n = h.size();
    preds_.resize(n);
    for (OpRef c = 0; c < n; ++c) {
      for (OpRef p = 0; p < n; ++p) {
        if (p != c && rel.causality.get(p, c)) preds_[c].push_back(p);
      }
    }
    executed_.assign(n, false);
    for (const Operation& op : h.ops()) {
      if (op.var != kNoVar) vars_.try_emplace(op.var);
      if (is_lock_op(op.kind)) locks_.try_emplace(op.lock);
      if (op.kind == OpKind::kDelta) {
        counters_.insert(op.var);
        if (op.fp) fp_counters_.insert(op.var);
      }
    }
  }

  bool search(std::vector<OpRef>* witness) {
    if (dfs()) {
      *witness = path_;
      return true;
    }
    return false;
  }

 private:
  bool eligible(const Operation& op) const {
    switch (op.kind) {
      case OpKind::kRead:
      case OpKind::kAwait: {
        const VarState& v = vars_.at(op.var);
        if (fp_counters_.count(op.var)) {
          // Fp accumulator: serialization order reassociates the sums, so
          // the witness search matches with a relative tolerance.
          const double want = double_of(op.value);
          const double scale = std::max({1.0, std::abs(want), std::abs(v.dvalue)});
          return std::abs(v.dvalue - want) <= 1e-8 * scale;
        }
        if (counters_.count(op.var)) {
          return v.value == static_cast<std::int64_t>(op.value);
        }
        return v.last_write == op.write_id;
      }
      case OpKind::kReadLock: {
        return locks_.at(op.lock).writer == kNoProc;
      }
      case OpKind::kWriteLock: {
        const LockState& l = locks_.at(op.lock);
        return l.writer == kNoProc && l.readers.empty();
      }
      case OpKind::kReadUnlock: {
        const LockState& l = locks_.at(op.lock);
        auto it = l.readers.find(op.proc);
        return it != l.readers.end() && it->second > 0;
      }
      case OpKind::kWriteUnlock: {
        return locks_.at(op.lock).writer == op.proc;
      }
      default:
        return true;  // writes, deltas, barriers
    }
  }

  struct Undo {
    VarState var;
    VarId var_id = kNoVar;
    ProcId lock_writer = kNoProc;
    bool had_lock = false;
    LockId lock_id = 0;
  };

  Undo apply(const Operation& op) {
    Undo u;
    if (op.var != kNoVar && is_memory_op(op.kind)) {
      u.var_id = op.var;
      u.var = vars_.at(op.var);
      VarState& v = vars_[op.var];
      if (op.kind == OpKind::kWrite) {
        v.last_write = op.write_id;
        v.value = static_cast<std::int64_t>(op.value);
        v.dvalue = double_of(op.value);
        v.written = true;
      } else if (op.kind == OpKind::kDelta) {
        v.last_write = op.write_id;
        if (op.fp) {
          v.dvalue -= double_of(op.value);
        } else {
          v.value -= int_of(op.value);
          v.dvalue -= static_cast<double>(int_of(op.value));
        }
        v.written = true;
      }
    }
    if (is_lock_op(op.kind)) {
      u.had_lock = true;
      u.lock_id = op.lock;
      LockState& l = locks_[op.lock];
      u.lock_writer = l.writer;
      switch (op.kind) {
        case OpKind::kReadLock: ++l.readers[op.proc]; break;
        case OpKind::kReadUnlock:
          if (--l.readers[op.proc] == 0) l.readers.erase(op.proc);
          break;
        case OpKind::kWriteLock: l.writer = op.proc; break;
        case OpKind::kWriteUnlock: l.writer = kNoProc; break;
        default: break;
      }
    }
    return u;
  }

  void undo(const Operation& op, const Undo& u) {
    if (u.var_id != kNoVar) vars_[u.var_id] = u.var;
    if (u.had_lock) {
      LockState& l = locks_[u.lock_id];
      l.writer = u.lock_writer;
      switch (op.kind) {
        case OpKind::kReadLock:
          if (--l.readers[op.proc] == 0) l.readers.erase(op.proc);
          break;
        case OpKind::kReadUnlock: ++l.readers[op.proc]; break;
        default: break;
      }
    }
  }

  std::string state_key() const {
    std::string key;
    key.reserve(executed_.size() / 8 + vars_.size() * 16);
    for (std::size_t i = 0; i < executed_.size(); i += 8) {
      char byte = 0;
      for (std::size_t b = 0; b < 8 && i + b < executed_.size(); ++b) {
        if (executed_[i + b]) byte = static_cast<char>(byte | (1 << b));
      }
      key.push_back(byte);
    }
    // Per-variable last-write identity and numeric value: two serializations
    // of the same executed set can differ in them, so they are part of the
    // memo key.
    for (const auto& [x, v] : vars_) {
      key.append(reinterpret_cast<const char*>(&x), sizeof(x));
      key.append(reinterpret_cast<const char*>(&v.last_write), sizeof(v.last_write));
      key.append(reinterpret_cast<const char*>(&v.value), sizeof(v.value));
    }
    for (const auto& [l, s] : locks_) {
      key.append(reinterpret_cast<const char*>(&l), sizeof(l));
      key.append(reinterpret_cast<const char*>(&s.writer), sizeof(s.writer));
      key.push_back(static_cast<char>(s.readers.size()));
    }
    return key;
  }

  bool dfs() {
    if (path_.size() == h_.size()) return true;
    const std::string key = state_key();
    if (failed_.count(key)) return false;

    for (OpRef c = 0; c < h_.size(); ++c) {
      if (executed_[c]) continue;
      bool ready = true;
      for (const OpRef p : preds_[c]) {
        if (!executed_[p]) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      const Operation& op = h_.op(c);
      if (!eligible(op)) continue;

      executed_[c] = true;
      path_.push_back(c);
      const Undo u = apply(op);
      if (dfs()) return true;
      undo(op, u);
      path_.pop_back();
      executed_[c] = false;
    }
    failed_.insert(key);
    return false;
  }

  const History& h_;
  std::vector<std::vector<OpRef>> preds_;
  std::vector<bool> executed_;
  std::vector<OpRef> path_;
  std::map<VarId, VarState> vars_;
  std::map<LockId, LockState> locks_;
  std::unordered_set<VarId> counters_;
  std::unordered_set<VarId> fp_counters_;
  std::unordered_set<std::string> failed_;
};

}  // namespace

ScResult check_sequential_consistency(const History& h, std::size_t max_ops) {
  ScResult out;
  if (h.size() > max_ops) {
    out.exhausted_budget = true;
    return out;
  }
  std::string err;
  auto rel = build_relations(h, &err);
  if (!rel) {
    out.error = err;
    return out;
  }
  Searcher s(h, *rel);
  out.sequentially_consistent = s.search(&out.witness);
  return out;
}

}  // namespace mc::history
