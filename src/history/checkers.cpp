#include "history/checkers.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "history/incremental_checker.h"

namespace mc::history {

namespace {

/// Is `x` a delta (counter) object in this history?
std::vector<bool> delta_vars(const History& h) {
  VarId max_var = 0;
  for (const Operation& op : h.ops()) {
    if (op.var != kNoVar) max_var = std::max(max_var, op.var);
  }
  std::vector<bool> is_delta(static_cast<std::size_t>(max_var) + 1, false);
  for (const Operation& op : h.ops()) {
    if (op.kind == OpKind::kDelta) is_delta[op.var] = true;
  }
  return is_delta;
}

/// Checks a read of a plain (non-counter) location against Definition 2/3
/// with relation R: the source write must R-precede the read (unless it is
/// the virtual initial write, which precedes everything), and no
/// read-or-write of a different value may sit R-between them.
void check_plain_read(const History& h, const BitMatrix& R, OpRef read,
                      CheckResult& out) {
  const Operation& r = h.op(read);
  OpRef source = kNoOp;
  if (r.write_id.valid()) {
    for (OpRef i = 0; i < h.size(); ++i) {
      const Operation& op = h.op(i);
      if ((op.kind == OpKind::kWrite || op.kind == OpKind::kDelta) &&
          op.write_id == r.write_id) {
        source = i;
        break;
      }
    }
    MC_CHECK_MSG(source != kNoOp, "build_relations validated write ids");
    if (!R.get(source, read)) {
      out.ok = false;
      out.violations.push_back(r.to_string() + " returns " +
                               h.op(source).to_string() +
                               " which does not precede it in the restricted relation");
      return;
    }
  }

  for (OpRef o = 0; o < h.size(); ++o) {
    if (o == read || o == source) continue;
    const Operation& op = h.op(o);
    if (op.var != r.var) continue;

    // Candidate intervening operations o(x)u with u != v: writes of any
    // process in the restricted set, and reads/awaits of the reading
    // process itself (other processes' reads are outside the restricted
    // set by Definition 2).
    bool different_value = false;
    if (op.kind == OpKind::kWrite || op.kind == OpKind::kDelta) {
      different_value = !(r.write_id.valid() && op.write_id == r.write_id);
    } else if ((op.kind == OpKind::kRead || op.kind == OpKind::kAwait) &&
               op.proc == r.proc) {
      different_value = op.write_id != r.write_id;
    } else {
      continue;
    }
    if (!different_value) continue;

    const bool after_source = source == kNoOp ? true : R.get(source, o);
    if (after_source && R.get(o, read)) {
      out.ok = false;
      out.violations.push_back(r.to_string() + " is stale: " + op.to_string() +
                               " intervenes between its source and the read");
      return;
    }
  }
}

/// Relative-tolerance comparison for fp accumulators.  1e-8 matches the
/// factorization-error oracle of the counter-object Cholesky (the only
/// producer of fp deltas) and is loose enough to absorb any reassociation
/// of at most a few thousand summands.
bool fp_close(double a, double b) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= 1e-8 * scale;
}

/// check_counter_read's floating-point branch: same set-visibility rule,
/// but values are double bit patterns, sums are doubles, and the target
/// match carries a relative tolerance.  The reachable-sum set is a vector
/// (tolerant lookups preclude hashing); dedup keeps it from exploding when
/// concurrent deltas repeat.
void check_fp_counter_read(const History& h, const BitMatrix& R, OpRef read,
                           OpRef base_ref, CheckResult& out) {
  const Operation& r = h.op(read);
  const double base = base_ref == kNoOp ? 0.0 : double_of(h.op(base_ref).value);

  double required = 0.0;
  std::vector<double> optional;
  for (OpRef o = 0; o < h.size(); ++o) {
    const Operation& op = h.op(o);
    if (op.kind != OpKind::kDelta || op.var != r.var) continue;
    const double amt = op.fp ? double_of(op.value)
                             : static_cast<double>(int_of(op.value));
    if (base_ref != kNoOp && R.get(o, base_ref)) continue;  // folded into base
    if (R.get(o, read)) {
      required += amt;
    } else if (!R.get(read, o)) {
      optional.push_back(amt);
    }
  }

  const double target = double_of(r.value);
  std::vector<double> sums{base - required};
  for (const double amt : optional) {
    const std::size_t n = sums.size();
    for (std::size_t i = 0; i < n; ++i) {
      const double s = sums[i] - amt;
      if (fp_close(s, target)) return;
      bool dup = false;
      for (std::size_t j = 0; j < sums.size() && !dup; ++j) dup = fp_close(sums[j], s);
      if (!dup) sums.push_back(s);
    }
    if (sums.size() > 100000) {
      out.ok = false;
      out.violations.push_back(r.to_string() +
                               ": fp counter check exceeded the subset-sum budget");
      return;
    }
  }
  for (const double s : sums) {
    if (fp_close(s, target)) return;
  }
  out.ok = false;
  out.violations.push_back(
      r.to_string() + " is not explainable: fp base " + std::to_string(base) +
      " minus required " + std::to_string(required) + " and any subset of " +
      std::to_string(optional.size()) + " concurrent fp deltas");
}

/// Set-visibility check for counter (delta) objects: the read value must be
/// explainable as
///     base  -  sum(all deltas that R-precede the read)
///           -  sum(S) for some S among the deltas concurrent with the read,
/// where base is the R-latest write to the location (or 0 when unwritten).
void check_counter_read(const History& h, const BitMatrix& R, OpRef read,
                        CheckResult& out) {
  const Operation& r = h.op(read);

  // Base value: writes to this location must be R-ordered before the read.
  OpRef base_ref = kNoOp;
  for (OpRef o = 0; o < h.size(); ++o) {
    const Operation& op = h.op(o);
    if (op.kind != OpKind::kWrite || op.var != r.var) continue;
    if (!R.get(o, read)) {
      // A write concurrent with the read makes counter semantics ambiguous;
      // programs in the counter style initialize before going parallel.
      out.ok = false;
      out.violations.push_back(r.to_string() + " races with base write " + op.to_string());
      return;
    }
    if (base_ref == kNoOp || R.get(base_ref, o)) base_ref = o;
  }
  // Any fp delta makes the whole location an fp accumulator: values are
  // IEEE-double bit patterns and comparisons carry a relative tolerance
  // (summation order varies across valid serializations).
  bool fp = false;
  for (const Operation& op : h.ops()) {
    if (op.kind == OpKind::kDelta && op.var == r.var && op.fp) fp = true;
  }
  if (fp) {
    check_fp_counter_read(h, R, read, base_ref, out);
    return;
  }

  const auto base = base_ref == kNoOp
                        ? std::int64_t{0}
                        : static_cast<std::int64_t>(h.op(base_ref).value);

  std::int64_t required = 0;
  std::vector<std::int64_t> optional;
  for (OpRef o = 0; o < h.size(); ++o) {
    const Operation& op = h.op(o);
    if (op.kind != OpKind::kDelta || op.var != r.var) continue;
    // A delta that precedes the base write is already folded into the
    // written value (the writer observed it); counting it again would
    // double-subtract.
    if (base_ref != kNoOp && R.get(o, base_ref)) continue;
    if (R.get(o, read)) {
      required += int_of(op.value);
    } else if (!R.get(read, o)) {
      optional.push_back(int_of(op.value));
    }
  }

  const auto target = static_cast<std::int64_t>(r.value);
  // Subset-sum over the concurrent deltas; at history-checking scale the
  // reachable-sum set stays tiny (counter decrements are small integers).
  std::unordered_set<std::int64_t> sums{base - required};
  for (const std::int64_t amt : optional) {
    std::unordered_set<std::int64_t> next = sums;
    for (const std::int64_t s : sums) next.insert(s - amt);
    sums = std::move(next);
    if (sums.count(target)) return;
    if (sums.size() > 100000) {
      out.ok = false;
      out.violations.push_back(r.to_string() +
                               ": counter check exceeded the subset-sum budget");
      return;
    }
  }
  if (!sums.count(target)) {
    out.ok = false;
    out.violations.push_back(
        r.to_string() + " is not explainable: base " + std::to_string(base) +
        " minus required " + std::to_string(required) + " and any subset of " +
        std::to_string(optional.size()) + " concurrent deltas");
  }
}

CheckResult run_checks(const History& h, ReadDiscipline discipline) {
  CheckResult out;
  std::string err;
  auto rel = build_relations(h, &err);
  if (!rel) {
    out.ok = false;
    out.violations.push_back(err);
    return out;
  }

  const std::vector<bool> is_counter = delta_vars(h);

  // Structural await validation: the awaited value must match the resolving
  // write for plain locations (counters are covered by the value check the
  // runtime performs; their resolving op is the final delta).
  for (OpRef i = 0; i < h.size(); ++i) {
    const Operation& op = h.op(i);
    if (op.kind != OpKind::kAwait || !op.write_id.valid()) continue;
    if (is_counter[op.var]) continue;
    for (OpRef wop = 0; wop < h.size(); ++wop) {
      const Operation& w = h.op(wop);
      if (w.kind == OpKind::kWrite && w.write_id == op.write_id &&
          w.value != op.value) {
        out.ok = false;
        out.violations.push_back(op.to_string() + " resolved by " + w.to_string() +
                                 " with a different value");
      }
    }
  }

  // Lazily build one restricted relation per (process, mode) actually used.
  std::vector<BitMatrix> causal_rel(h.num_procs());
  std::vector<BitMatrix> pram_rel(h.num_procs());
  std::vector<bool> have_causal(h.num_procs(), false);
  std::vector<bool> have_pram(h.num_procs(), false);

  for (OpRef i = 0; i < h.size(); ++i) {
    const Operation& op = h.op(i);
    if (op.kind != OpKind::kRead) continue;
    ReadMode mode = op.mode;
    if (discipline == ReadDiscipline::kAllCausal) mode = ReadMode::kCausal;
    if (discipline == ReadDiscipline::kAllPram) mode = ReadMode::kPram;

    const ProcId p = op.proc;
    const BitMatrix* R = nullptr;
    if (mode == ReadMode::kCausal) {
      if (!have_causal[p]) {
        causal_rel[p] = restrict_causal(h, *rel, p);
        have_causal[p] = true;
      }
      R = &causal_rel[p];
    } else {
      if (!have_pram[p]) {
        pram_rel[p] = restrict_pram(h, *rel, p);
        have_pram[p] = true;
      }
      R = &pram_rel[p];
    }

    if (is_counter[op.var]) {
      check_counter_read(h, *R, i, out);
    } else {
      check_plain_read(h, *R, i, out);
    }
    if (out.violations.size() >= 8) break;  // enough evidence
  }
  return out;
}

}  // namespace

CheckerBackend default_checker_backend(const History& h) {
  return h.sequential_processes() && h.explicit_program_edges().empty()
             ? CheckerBackend::kGraph
             : CheckerBackend::kSearch;
}

CheckResult check_mixed_consistency(const History& h) {
  return check_mixed_consistency(h, default_checker_backend(h));
}

CheckResult check_mixed_consistency(const History& h, CheckerBackend backend) {
  if (backend == CheckerBackend::kGraph) return check_history_graph(h).mixed;
  return run_checks(h, ReadDiscipline::kAsLabeled);
}

CheckResult check_consistency(const History& h, ReadDiscipline discipline) {
  return check_consistency(h, discipline, default_checker_backend(h));
}

CheckResult check_consistency(const History& h, ReadDiscipline discipline,
                              CheckerBackend backend) {
  if (backend == CheckerBackend::kGraph) {
    GraphVerdict v = check_history_graph(h);
    switch (discipline) {
      case ReadDiscipline::kAsLabeled: return std::move(v.mixed);
      case ReadDiscipline::kAllCausal: return std::move(v.causal);
      case ReadDiscipline::kAllPram: return std::move(v.pram);
    }
  }
  return run_checks(h, discipline);
}

CheckResult check_read(const History& h, const BitMatrix& restricted, OpRef read) {
  CheckResult out;
  const std::vector<bool> is_counter = delta_vars(h);
  MC_CHECK(h.op(read).kind == OpKind::kRead);
  if (is_counter[h.op(read).var]) {
    check_counter_read(h, restricted, read, out);
  } else {
    check_plain_read(h, restricted, read, out);
  }
  return out;
}

}  // namespace mc::history
