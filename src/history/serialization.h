// Sequential consistency (Definition 1): a history is sequentially
// consistent iff some serialization — a total order on its operations that
// respects the causality relation — is a *sequential* history, i.e. every
// read (and await) observes the most recent write at its position and lock
// semantics hold.
//
// The checker performs a memoized backtracking search over causality-
// respecting serializations.  Worst case is exponential; it is intended for
// litmus-scale histories (tens of operations), which is exactly how the
// test suites use it.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "history/history.h"

namespace mc::history {

struct ScResult {
  /// True when a sequential serialization exists.
  bool sequentially_consistent = false;
  /// A witness serialization when one exists.
  std::vector<OpRef> witness;
  /// Set when the history is malformed (cannot even be searched).
  std::string error;
  /// True when the search was abandoned because the history exceeds the
  /// configured size budget (result unknown, not a verdict).
  bool exhausted_budget = false;
};

/// Search for a sequential serialization.  `max_ops` bounds the history
/// size accepted (beyond it, exhausted_budget is reported).
ScResult check_sequential_consistency(const History& h, std::size_t max_ops = 96);

}  // namespace mc::history
