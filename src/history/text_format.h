// A line-oriented text format for histories, so executions can be stored,
// shared, and fed to the checkers from outside the process (see
// examples/check_history.cpp).
//
//   # comment / blank lines ignored
//   procs 3
//   0 write x0 42
//   1 read x0 42 pram            # reads-from resolved by unique value
//   1 read x1 7 causal @0.2      # or explicitly: write #2 of process 0
//   1 read x2 0 pram @initial    # explicitly the initial value
//   0 dec x5 1
//   2 await x1 7 @0.2
//   0 wlock l0 e1
//   0 wunlock l0 e1
//   1 rlock l0 e2
//   1 runlock l0 e2
//   0 barrier b0 e0
//
// Every operation line starts with the issuing process id.  Lock lines
// carry the grant episode (eN); barrier lines the instance epoch (eN).

#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "history/history.h"

namespace mc::history {

struct ParseResult {
  std::optional<History> history;  // nullopt on error
  std::string error;               // first problem, with a line number
};

/// Parse the text format.  Reads-from is taken from explicit `@proc.seq`
/// annotations where present; remaining reads are resolved by unique
/// written values (an error if ambiguous).
ParseResult parse_history(std::istream& in);
ParseResult parse_history_text(const std::string& text);

/// Print a history in the same format (always with explicit `@`
/// annotations, so round-trips are exact even with duplicate values).
std::string format_history(const History& h);

}  // namespace mc::history
