#include "history/text_format.h"

#include <charconv>
#include <istream>
#include <sstream>
#include <vector>

namespace mc::history {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ss(line);
  std::string tok;
  while (ss >> tok) {
    if (tok[0] == '#') break;  // trailing comment
    out.push_back(tok);
  }
  return out;
}

/// Parse an unsigned number, optionally behind a one-letter prefix
/// (x0, l3, b1, e7).
std::optional<std::uint64_t> number(const std::string& tok, char prefix = '\0') {
  std::size_t start = 0;
  if (prefix != '\0') {
    if (tok.empty() || tok[0] != prefix) return std::nullopt;
    start = 1;
  }
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(tok.data() + start, tok.data() + tok.size(), v);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) return std::nullopt;
  return v;
}

std::optional<std::int64_t> signed_number(const std::string& tok) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) return std::nullopt;
  return v;
}

/// Parse a reads-from annotation: "@initial" or "@proc.seq".
std::optional<WriteId> source(const std::string& tok) {
  if (tok == "@initial") return kInitialWrite;
  if (tok.size() < 4 || tok[0] != '@') return std::nullopt;
  const auto dot = tok.find('.');
  if (dot == std::string::npos) return std::nullopt;
  const auto proc = number(tok.substr(1, dot - 1));
  const auto seq = number(tok.substr(dot + 1));
  if (!proc || !seq) return std::nullopt;
  return WriteId{static_cast<ProcId>(*proc), *seq};
}

}  // namespace

ParseResult parse_history(std::istream& in) {
  ParseResult out;
  std::string line;
  int lineno = 0;
  std::optional<History> h;
  // Per-process write counters so explicit @proc.seq annotations line up
  // with the ids the appenders assign.
  auto fail = [&](const std::string& why) {
    out.history.reset();
    out.error = "line " + std::to_string(lineno) + ": " + why;
    return out;
  };

  bool needs_value_resolution = false;
  while (std::getline(in, line)) {
    ++lineno;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;

    if (toks[0] == "procs") {
      if (h.has_value()) return fail("duplicate procs directive");
      if (toks.size() != 2) return fail("procs needs a count");
      const auto n = number(toks[1]);
      if (!n || *n == 0 || *n > 64) return fail("invalid process count");
      h.emplace(*n);
      continue;
    }
    if (!h.has_value()) return fail("the first directive must be `procs N`");

    const auto proc = number(toks[0]);
    if (!proc || *proc >= h->num_procs()) return fail("bad process id");
    const auto p = static_cast<ProcId>(*proc);
    if (toks.size() < 2) return fail("missing operation kind");
    const std::string& kind = toks[1];

    if (kind == "write" || kind == "dec" || kind == "decd") {
      if (toks.size() != 4) return fail(kind + " needs: xVAR VALUE");
      const auto var = number(toks[2], 'x');
      if (!var) return fail("bad variable");
      if (kind == "write") {
        const auto v = number(toks[3]);
        if (!v) return fail("bad value");
        h->write(p, static_cast<VarId>(*var), *v);
      } else if (kind == "decd") {
        // Floating-point decrement: the amount is the double's raw bit
        // pattern as an unsigned word, so round trips stay bit-exact.
        const auto bits = number(toks[3]);
        if (!bits) return fail("bad fp decrement bits");
        h->delta_double(p, static_cast<VarId>(*var), double_of(*bits));
      } else {
        const auto amt = signed_number(toks[3]);
        if (!amt) return fail("bad decrement amount");
        h->delta(p, static_cast<VarId>(*var), *amt);
      }
    } else if (kind == "read") {
      if (toks.size() != 5 && toks.size() != 6) {
        return fail("read needs: xVAR VALUE pram|causal [@src]");
      }
      const auto var = number(toks[2], 'x');
      const auto v = number(toks[3]);
      if (!var || !v) return fail("bad read target");
      ReadMode mode;
      if (toks[4] == "pram") {
        mode = ReadMode::kPram;
      } else if (toks[4] == "causal") {
        mode = ReadMode::kCausal;
      } else {
        return fail("read label must be pram or causal");
      }
      WriteId src = kInitialWrite;
      if (toks.size() == 6) {
        const auto s = source(toks[5]);
        if (!s) return fail("bad reads-from annotation");
        src = *s;
      } else {
        needs_value_resolution = true;
      }
      h->read(p, static_cast<VarId>(*var), *v, mode, src);
    } else if (kind == "await") {
      if (toks.size() != 4 && toks.size() != 5) {
        return fail("await needs: xVAR VALUE [@src]");
      }
      const auto var = number(toks[2], 'x');
      const auto v = number(toks[3]);
      if (!var || !v) return fail("bad await target");
      WriteId src = kInitialWrite;
      if (toks.size() == 5) {
        const auto s = source(toks[4]);
        if (!s) return fail("bad await annotation");
        src = *s;
      } else {
        needs_value_resolution = true;
      }
      h->await(p, static_cast<VarId>(*var), *v, src);
    } else if (kind == "rlock" || kind == "runlock" || kind == "wlock" ||
               kind == "wunlock") {
      if (toks.size() != 4) return fail(kind + " needs: lLOCK eEPISODE");
      const auto lock = number(toks[2], 'l');
      const auto ep = number(toks[3], 'e');
      if (!lock || !ep) return fail("bad lock line");
      const auto l = static_cast<LockId>(*lock);
      if (kind == "rlock") h->rlock(p, l, *ep);
      if (kind == "runlock") h->runlock(p, l, *ep);
      if (kind == "wlock") h->wlock(p, l, *ep);
      if (kind == "wunlock") h->wunlock(p, l, *ep);
    } else if (kind == "barrier") {
      if (toks.size() != 4) return fail("barrier needs: bBARRIER eEPOCH");
      const auto b = number(toks[2], 'b');
      const auto ep = number(toks[3], 'e');
      if (!b || !ep) return fail("bad barrier line");
      h->barrier(p, static_cast<std::uint32_t>(*ep), static_cast<BarrierId>(*b));
    } else {
      return fail("unknown operation `" + kind + "`");
    }
  }
  if (!h.has_value()) {
    lineno = 0;
    return fail("empty input (expected `procs N`)");
  }
  if (needs_value_resolution) {
    if (auto err = h->resolve_reads_by_value()) {
      lineno = 0;
      return fail(*err);
    }
  }
  out.history = std::move(h);
  return out;
}

ParseResult parse_history_text(const std::string& text) {
  std::istringstream in(text);
  return parse_history(in);
}

std::string format_history(const History& h) {
  std::string out = "procs " + std::to_string(h.num_procs()) + "\n";
  auto src = [](const WriteId& id) {
    if (!id.valid()) return std::string(" @initial");
    return " @" + std::to_string(id.proc) + "." + std::to_string(id.seq);
  };
  for (const Operation& op : h.ops()) {
    out += std::to_string(op.proc);
    switch (op.kind) {
      case OpKind::kWrite:
        out += " write x" + std::to_string(op.var) + " " + std::to_string(op.value);
        break;
      case OpKind::kDelta:
        out += op.fp ? " decd x" + std::to_string(op.var) + " " + std::to_string(op.value)
                     : " dec x" + std::to_string(op.var) + " " + std::to_string(int_of(op.value));
        break;
      case OpKind::kRead:
        out += " read x" + std::to_string(op.var) + " " + std::to_string(op.value) +
               (op.mode == ReadMode::kPram ? " pram" : " causal") + src(op.write_id);
        break;
      case OpKind::kAwait:
        out += " await x" + std::to_string(op.var) + " " + std::to_string(op.value) +
               src(op.write_id);
        break;
      case OpKind::kReadLock:
      case OpKind::kReadUnlock:
      case OpKind::kWriteLock:
      case OpKind::kWriteUnlock: {
        const char* name = op.kind == OpKind::kReadLock     ? "rlock"
                           : op.kind == OpKind::kReadUnlock ? "runlock"
                           : op.kind == OpKind::kWriteLock  ? "wlock"
                                                            : "wunlock";
        out += std::string(" ") + name + " l" + std::to_string(op.lock) + " e" +
               std::to_string(op.lock_episode);
        break;
      }
      case OpKind::kBarrier:
        out += " barrier b" + std::to_string(op.barrier) + " e" +
               std::to_string(op.barrier_epoch);
        break;
    }
    out += '\n';
  }
  return out;
}

}  // namespace mc::history
