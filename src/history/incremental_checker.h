// Incremental (streaming) consistency checker over the typed dependency
// graph — the O(n) replacement for the BitMatrix pipeline at trace scale.
// Full theory, complexity analysis, and the mapping from edge subsets to
// consistency models in docs/CHECKING.md.
//
// Operations are fed one at a time in a *causal linear extension*: each
// process's operations in program order, and every reads-from /
// synchronization predecessor before its successor.  Runtime traces satisfy
// this naturally (an operation completes only after everything it depends
// on); for an arbitrary sequential History, `IncrementalChecker::check`
// derives such an order by Kahn's algorithm over the sparse generating
// edges — or reports the cyclic causality the order cannot exist for.
//
// Per-model verdicts come from one pass:
//   - causal / PRAM / mixed: per-read interval checks against vector-clock
//     reachability indices (the full causality clock, and one clock per
//     observer that admits only synchronization and reads-from edges
//     incident to that observer — Definition 3's filtered closure);
//   - coherence: per-location write-serializability (Tarjan per variable);
//   - SC: acyclicity of the full graph after derived write-order (WW) and
//     anti-dependence (RW) edges are installed — a cycle certifies the
//     history is not sequentially consistent.
//
// The checker accepts only sequential-process histories (partial intra-
// process orders stay with the BitMatrix checkers) and defers counter
// (delta-object) reads to finalize(): a concurrent delta arriving later can
// enlarge the explainable value set, so a streaming-time rejection would
// disagree with the batch checker.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "history/checkers.h"
#include "history/dep_graph.h"
#include "history/history.h"

namespace mc::history {

/// Everything the graph checker decides about one history.
struct GraphVerdict {
  /// False on malformed input, cyclic causality, or a feed-order breach;
  /// `error` then explains, and the per-model results carry it too.
  bool well_formed = true;
  std::string error;

  CheckResult mixed;   ///< Definition 4: each read under its own label
  CheckResult causal;  ///< every read as a causal read (Definition 2)
  CheckResult pram;    ///< every read as a PRAM read (Definition 3)

  /// Per-location write-serializability under causal visibility: every
  /// variable's writes admit a total order consistent with ~> and with all
  /// observations of that variable (docs/CHECKING.md §6).
  bool coherent = true;

  /// False when the full graph (causality ∪ derived WW ∪ RW) has a cycle —
  /// a certificate that no sequentially consistent serialization exists.
  /// True means "no cycle found", not a proof of SC (docs/CHECKING.md §6).
  bool sc_acyclic = true;

  /// The violating cycle behind the first failure, when one exists as a
  /// cycle (staleness and SC failures do; a source that never became
  /// visible is a path *absence* and leaves this empty).  Render with
  /// counterexample_to_dot (history/dot_export.h).
  std::vector<TypedEdge> counterexample;

  [[nodiscard]] bool ok() const { return well_formed && mixed.ok; }
};

class IncrementalChecker {
 public:
  explicit IncrementalChecker(std::size_t num_procs);

  /// Feed the next operation (see the file comment for the required feed
  /// order).  `ext_id` names the operation in diagnostics — pass the OpRef
  /// when replaying a History; defaults to the feed sequence number.
  /// Returns false once the checker has hit a structural error (further
  /// feeds are ignored).
  bool feed(const Operation& op);
  bool feed(const Operation& op, std::uint32_t ext_id);

  /// Elastic membership (docs/FAULTS.md): mark process `p` as evicted from
  /// the view.  A crash-stopped process's unreplicated write suffix may be
  /// permanently lost — after the view change the DSM's masked applied
  /// floors waive it by design — so `p`'s writes stop generating freshness
  /// obligations for reads fed after this call.  Reads are still validated
  /// against the reading process's own prior observations, so a genuine
  /// value regression at a single process remains a violation.
  void on_proc_departed(ProcId p);

  /// True once a malformed-input / feed-order error has been recorded.
  [[nodiscard]] bool failed() const { return !error_.empty(); }

  /// Finish: counter-object reads, structural await validation, derived
  /// WW/RW edges, coherence and SC analyses, counterexample extraction.
  /// Call exactly once; feed() must not be called afterwards.
  GraphVerdict finalize();

  /// Epoch-windowed pruning (docs/CHECKING.md §10): once every process has
  /// fed a member of some full-membership barrier instance *and* the
  /// operation after it, everything at or before those members is fully
  /// visible to all future operations in every clock family and can retire.
  /// Pre-frontier counter reads and awaits are checked on the spot (their
  /// verdicts freeze into the final result); superseded plain writes,
  /// retired deltas (folded into per-base carries), and their graph rows are
  /// released.  Returns the number of operations retired (0 when no frontier
  /// is pending).  Per-model read verdicts are unchanged by pruning; SC /
  /// coherence verdicts become window-local (see the doc).  Only valid when
  /// operations are fed in feed-sequence ext order (the default).
  std::size_t prune();

  /// True when a completed barrier frontier is pending, i.e. the next
  /// prune() call will actually attempt retirement.
  [[nodiscard]] bool prune_pending() const { return frontier_valid_; }

  /// Capture a DOT counterexample for the first violation as it is recorded
  /// (live monitoring): the staleness cycle rendered with per-operation
  /// trace correlation ids.  Must be set before the violating feed.
  void set_live_capture(bool on) { live_capture_ = on; }

  /// The captured DOT document; empty until a violation with a cycle has
  /// been recorded (violations without a cycle capture a placeholder).
  [[nodiscard]] const std::string& first_violation_dot() const { return first_cx_dot_; }

  /// Rolling counters for live monitoring.  Violation counts are
  /// provisional: plain-read verdicts on locations that later turn out to
  /// be counters are retracted at finalize (or frozen at prune time).
  struct LiveCounts {
    std::uint64_t fed = 0;         ///< operations fed since construction
    std::uint64_t live_nodes = 0;  ///< operations currently resident
    std::uint64_t retired = 0;     ///< operations released by prune()
    std::uint64_t prunes = 0;      ///< prune() calls that found a frontier
    std::uint64_t violations_causal = 0;
    std::uint64_t violations_pram = 0;
    std::uint64_t violations_mixed = 0;
  };
  [[nodiscard]] LiveCounts live_counts() const;

  [[nodiscard]] std::size_t num_ops() const { return ops_.size(); }
  [[nodiscard]] std::size_t num_procs() const { return num_procs_; }
  [[nodiscard]] const DepGraph& graph() const { return graph_; }

  /// Progress counters under "checker.*" keys (docs/METRICS.md).
  [[nodiscard]] MetricsSnapshot metrics() const;

  /// Check a complete sequential-process history: derive a causal linear
  /// extension by Kahn's algorithm over the sparse generating edges, feed
  /// it, and finalize.  Reports cyclic causality (with the cycle as the
  /// counterexample) when no such order exists.
  static GraphVerdict check(const History& h);

 private:
  static constexpr std::uint32_t kNoNode = ~std::uint32_t{0};

  struct VarState {
    std::vector<std::vector<std::uint32_t>> writes_by_proc;  // nodes, po order
    std::vector<std::uint32_t> writes;  // all writes (kWrite), feed order
    std::vector<std::uint32_t> deltas;  // all deltas, feed order
    std::vector<std::uint32_t> reads;   // all reads, feed order
    bool counter = false;               // any delta seen
    bool fp = false;                    // any fp delta seen
    bool writes_retired = false;        // pruning retired a plain write

    // Retired-delta carries (docs/CHECKING.md §10): per surviving base
    // write, the sum of retired delta amounts NOT folded into that base
    // under each clock family (index 0..p-1 = PRAM observer, p = causal).
    // Post-frontier bases see every retired delta folded, so they carry 0
    // and are simply absent.  `nobase` is the family-independent sum added
    // when the location has no base write at all.
    std::unordered_map<std::uint32_t, std::vector<std::int64_t>> carry_i;
    std::unordered_map<std::uint32_t, std::vector<double>> carry_d;
    std::int64_t nobase_i = 0;
    double nobase_d = 0.0;
  };

  struct LockState {
    bool have_w = false;   // some write episode seen
    bool w_open = false;   // write episode locked, unlock pending
    std::uint64_t w_episode = 0;
    std::vector<std::uint32_t> open_wls;    // wl nodes of the open episode
    std::uint32_t tail = kNoNode;           // attachment point of last W episode
    std::uint32_t prev_tail = kNoNode;      // ... of the W episode before it
    std::vector<std::uint32_t> pending_r;   // read-class ops since last W closed
  };

  struct BarState {
    std::vector<std::uint32_t> members;
    std::vector<std::uint32_t> member_pre;  // po-predecessor of each member
    bool released = false;                  // some post-member op arrived
    std::uint32_t succ_fed = 0;             // members whose po-successor fed
  };

  struct OwnTrack {
    std::uint32_t last = kNoNode;           // latest own read/await of the var
    std::uint32_t prev_distinct = kNoNode;  // latest with a different write id
  };

  /// A recorded per-read violation, attributed to disciplines and
  /// retractable when the variable later turns out to be a counter.
  struct Violation {
    std::uint32_t node;
    VarId var;
    bool causal_pass;   // found under the causal clocks (else PRAM)
    bool mixed_applies; // the read's own label matches the pass
    std::string message;
    std::uint32_t cycle_with = kNoNode;  // intervening op closing a cycle
  };

  void fail(std::string msg);
  [[nodiscard]] std::uint32_t append_node(const Operation& op, std::uint32_t ext_id);
  void connect(std::uint32_t node, std::uint32_t src, EdgeType type);
  void compute_clocks(std::uint32_t node);

  // Clock accessors: entries count operations per process ("the first k
  // ops of process q are visible").
  [[nodiscard]] const std::uint32_t* causal_clock(std::uint32_t node) const {
    return causal_.data() + static_cast<std::size_t>(node) * num_procs_;
  }
  [[nodiscard]] const std::uint32_t* pram_clock(std::uint32_t node, ProcId observer) const {
    return pram_.data() +
           (static_cast<std::size_t>(node) * num_procs_ + observer) * num_procs_;
  }
  [[nodiscard]] bool visible(std::uint32_t node, const std::uint32_t* clock) const {
    return clock[ops_[node].proc] >= pidx_[node] + 1;
  }

  /// A violation whose operation has been retired: the attribution flags
  /// and message survive, the node does not.  Awaits apply to every model.
  struct FrozenViolation {
    bool is_await = false;
    bool causal_pass = false;
    bool mixed_applies = false;
    std::uint32_t ext = 0;
    std::string message;
    /// Elastic crash-loss waiver inputs (read verdicts only): the reading
    /// process and the process owing the freshness obligation (kNoNode =
    /// certificate-based, waived by any departure).  Departures are only
    /// fully known at finalize, so the frozen record carries the inputs.
    std::uint32_t reader = kNoNode;
    std::uint32_t guilty = kNoNode;
  };

  void check_plain_read(std::uint32_t node, bool causal_pass);
  void record_violation(std::uint32_t node, bool causal_pass, std::string message,
                        std::uint32_t cycle_with);
  void freeze_violation(FrozenViolation fv);
  [[nodiscard]] std::string render_violation_dot(std::uint32_t node,
                                                 std::uint32_t cycle_with) const;
  void check_counter_read(std::uint32_t node, bool causal_pass,
                          std::vector<Violation>& out);
  void check_fp_counter_read(std::uint32_t node, bool causal_pass,
                             std::uint32_t base, const VarState& vs,
                             const std::uint32_t* clock, std::vector<Violation>& out);
  void derive_order_edges();
  void analyze_models(GraphVerdict& v);
  void extract_counterexample(GraphVerdict& v);

  const std::size_t num_procs_;
  bool finalized_ = false;
  std::string error_;

  DepGraph graph_;
  std::vector<Operation> ops_;
  std::vector<std::uint32_t> ext_;
  std::vector<std::uint32_t> pidx_;            // position within own process
  std::vector<std::uint32_t> prev_node_;       // last node per process
  std::vector<std::uint32_t> causal_;          // n * p entries
  std::vector<std::uint32_t> pram_;            // n * p * p entries
  std::vector<std::pair<std::uint32_t, EdgeType>> in_edges_;  // scratch

  std::unordered_map<WriteId, std::uint32_t> writers_;
  std::unordered_map<VarId, VarState> vars_;
  std::unordered_map<LockId, LockState> locks_;
  std::unordered_map<std::uint64_t, BarState> barriers_;
  std::vector<std::unordered_map<VarId, OwnTrack>> own_track_;
  std::vector<std::unordered_map<LockId, int>> read_held_, write_held_;
  std::vector<std::uint32_t> awaits_;
  /// Per process: ops_.size() at the moment on_proc_departed() marked it
  /// (kNoNode = still a member).  Reads at node indices >= this boundary
  /// owe no freshness to that process's writes.
  std::vector<std::uint32_t> departed_at_;
  [[nodiscard]] bool departed_before(std::uint32_t node) const {
    for (const std::uint32_t d : departed_at_) {
      if (node >= d) return true;
    }
    return false;
  }
  [[nodiscard]] bool departed(std::uint32_t p) const {
    return p < num_procs_ && departed_at_[p] != kNoNode;
  }
  [[nodiscard]] bool departed_any() const {
    for (const std::uint32_t d : departed_at_) {
      if (d != kNoNode) return true;
    }
    return false;
  }
  /// The process owing the freshness obligation behind a read violation:
  /// the intervening write's process, or for an own-observation cycle the
  /// writer of the value that observation returned.  kNoNode when the
  /// verdict has no intervening node (source / retirement certificates).
  [[nodiscard]] std::uint32_t guilty_proc(std::uint32_t cycle_with) const {
    if (cycle_with == kNoNode) return kNoNode;
    const Operation& g = ops_[cycle_with];
    return g.kind == OpKind::kWrite || g.kind == OpKind::kDelta
               ? g.proc
               : g.write_id.proc;
  }
  /// Elastic crash-loss waiver (docs/FAULTS.md), applied at finalize when
  /// the departed set is fully known: a crash predates its keepalive
  /// verdict, so honest crash-loss staleness is recorded live before
  /// on_proc_departed() can mark the boundary.  A read verdict is waived
  /// when the reader itself was evicted (its post-crash tail runs outside
  /// the view), when the obligation traces to an evicted process's write,
  /// or — for certificate-based verdicts, which assume delivery — when any
  /// process departed.
  [[nodiscard]] bool waived_read(std::uint32_t reader, std::uint32_t guilty) const {
    if (departed(reader)) return true;
    return guilty == kNoNode ? departed_any() : departed(guilty);
  }

  std::vector<Violation> violations_;
  // Derived write-order constraints per variable, deduplicated.
  std::unordered_map<VarId, std::vector<std::pair<std::uint32_t, std::uint32_t>>> forced_;
  std::unordered_map<std::uint64_t, bool> forced_seen_;

  // --- windowed pruning state (docs/CHECKING.md §10) ---
  bool frontier_valid_ = false;
  std::vector<std::uint32_t> frontier_line_;  // per proc: pidx of its member
  /// Per process: highest write/delta sequence number among retired writes.
  /// A read resolving below this watermark names a retired (hence provably
  /// superseded) write: an immediate violation in both passes for plain
  /// locations, and a clock-neutral no-op for counter locations.
  std::vector<SeqNo> retired_seq_;
  /// Per barrier object: highest retired instance epoch, so a straggler
  /// arriving at an erased instance still fails feed-order like it would
  /// against the live `released` flag.
  std::unordered_map<BarrierId, std::uint32_t> retired_epoch_;
  static constexpr std::size_t kMaxFrozen = 4096;
  std::vector<FrozenViolation> frozen_;
  std::uint64_t frozen_dropped_ = 0;

  bool live_capture_ = false;
  std::string first_cx_dot_;

  std::uint64_t n_reads_ = 0, n_writes_ = 0, n_deltas_ = 0, n_sync_ = 0;
  std::uint64_t n_deferred_ = 0, n_rw_edges_ = 0;
  std::uint64_t n_fed_ = 0, n_retired_ = 0, n_prunes_ = 0;
};

/// checkers.h backend selection for the free-function API.
[[nodiscard]] GraphVerdict check_history_graph(const History& h);

}  // namespace mc::history
