#include "history/dot_export.h"

#include <unordered_set>

namespace mc::history {

namespace {

std::uint64_t edge_key(std::size_t a, std::size_t b) {
  return (std::uint64_t{static_cast<std::uint32_t>(a)} << 32) |
         static_cast<std::uint32_t>(b);
}

void emit_edges(std::string& out, const BitMatrix& rel, const char* attrs,
                const std::unordered_set<std::uint64_t>& highlight,
                const std::string& highlight_attrs) {
  for (std::size_t a = 0; a < rel.size(); ++a) {
    for (const std::size_t b : rel.successors(a)) {
      out += "  n" + std::to_string(a) + " -> n" + std::to_string(b) + " [" + attrs;
      // Later attributes win in DOT, so appending overrides the base style.
      if (highlight.count(edge_key(a, b))) out += ", " + highlight_attrs;
      out += "];\n";
    }
  }
}

/// Escape the few characters DOT labels care about.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::unordered_set<std::uint64_t> highlight_set(const DotOptions& opt) {
  std::unordered_set<std::uint64_t> set;
  for (const auto& [a, b] : opt.highlight_edges) set.insert(edge_key(a, b));
  return set;
}

void emit_node(std::string& out, const History& h, OpRef r, const DotOptions& opt,
               const std::unordered_set<OpRef>& hot, const char* indent) {
  out += indent;
  out += "n" + std::to_string(r) + " [label=\"" + escape(h.op(r).to_string()) + "\"";
  if (hot.count(r)) out += ", " + opt.highlight_node_attrs;
  out += "];\n";
}

std::unordered_set<OpRef> hot_nodes(const DotOptions& opt) {
  std::unordered_set<OpRef> hot;
  for (const auto& [a, b] : opt.highlight_edges) {
    hot.insert(a);
    hot.insert(b);
  }
  return hot;
}

}  // namespace

std::string to_dot(const History& h, const Relations& rel, const DotOptions& opt) {
  std::string out = "digraph history {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  const auto highlight = highlight_set(opt);
  const auto hot = hot_nodes(opt);

  if (opt.cluster_by_process) {
    for (ProcId p = 0; p < h.num_procs(); ++p) {
      out += "  subgraph cluster_p" + std::to_string(p) + " {\n    label=\"p" +
             std::to_string(p) + "\";\n    style=dashed;\n";
      for (const OpRef r : h.ops_of(p)) emit_node(out, h, r, opt, hot, "    ");
      out += "  }\n";
    }
  } else {
    for (OpRef r = 0; r < h.size(); ++r) emit_node(out, h, r, opt, hot, "  ");
  }

  if (opt.include_program_order) {
    emit_edges(out, rel.program_order, "color=black, label=\"po\", fontsize=8",
               highlight, opt.highlight_attrs);
  }
  if (opt.include_reads_from) {
    emit_edges(out, rel.reads_from, "color=blue, label=\"rf\", fontsize=8", highlight,
               opt.highlight_attrs);
  }
  if (opt.include_sync_orders) {
    emit_edges(out, rel.sync_lock, "color=red, label=\"lock\", fontsize=8", highlight,
               opt.highlight_attrs);
    emit_edges(out, rel.sync_bar, "color=darkgreen, label=\"bar\", fontsize=8",
               highlight, opt.highlight_attrs);
    emit_edges(out, rel.sync_await, "color=purple, label=\"await\", fontsize=8",
               highlight, opt.highlight_attrs);
  }
  if (opt.include_causality_closure) {
    emit_edges(out, rel.causality, "color=gray, style=dotted", highlight,
               opt.highlight_attrs);
  }
  out += "}\n";
  return out;
}

std::string to_dot(const History& h, const DotOptions& opt) {
  std::string err;
  const auto rel = build_relations(h, &err);
  if (!rel) {
    return "digraph history {\n  // malformed history: " + err + "\n}\n";
  }
  return to_dot(h, *rel, opt);
}

std::string counterexample_to_dot(const History& h, const std::vector<TypedEdge>& cycle,
                                  const DotOptions& opt) {
  if (cycle.empty()) {
    return "digraph counterexample {\n  // no counterexample cycle\n}\n";
  }

  std::string out =
      "digraph counterexample {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n";

  std::unordered_set<OpRef> hot;
  for (const TypedEdge& e : cycle) {
    hot.insert(e.from);
    hot.insert(e.to);
  }

  DotOptions node_opt = opt;
  if (opt.cluster_by_process) {
    for (ProcId p = 0; p < h.num_procs(); ++p) {
      out += "  subgraph cluster_p" + std::to_string(p) + " {\n    label=\"p" +
             std::to_string(p) + "\";\n    style=dashed;\n";
      for (const OpRef r : h.ops_of(p)) emit_node(out, h, r, node_opt, hot, "    ");
      out += "  }\n";
    }
  } else {
    for (OpRef r = 0; r < h.size(); ++r) emit_node(out, h, r, node_opt, hot, "  ");
  }

  // Faint program order for orientation.
  if (opt.include_program_order) {
    for (ProcId p = 0; p < h.num_procs(); ++p) {
      const auto& ops = h.ops_of(p);
      for (std::size_t k = 1; k < ops.size(); ++k) {
        out += "  n" + std::to_string(ops[k - 1]) + " -> n" + std::to_string(ops[k]) +
               " [color=gray, style=dotted];\n";
      }
    }
  }

  for (const TypedEdge& e : cycle) {
    out += "  n" + std::to_string(e.from) + " -> n" + std::to_string(e.to) +
           " [label=\"" + edge_type_name(e.type) + "\", fontsize=8, " +
           opt.highlight_attrs + "];\n";
  }

  out += "}\n";
  return out;
}

}  // namespace mc::history
