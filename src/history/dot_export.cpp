#include "history/dot_export.h"

namespace mc::history {

namespace {

void emit_edges(std::string& out, const BitMatrix& rel, const char* attrs) {
  for (std::size_t a = 0; a < rel.size(); ++a) {
    for (const std::size_t b : rel.successors(a)) {
      out += "  n" + std::to_string(a) + " -> n" + std::to_string(b) + " [" + attrs +
             "];\n";
    }
  }
}

/// Escape the few characters DOT labels care about.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string to_dot(const History& h, const Relations& rel, const DotOptions& opt) {
  std::string out = "digraph history {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n";

  if (opt.cluster_by_process) {
    for (ProcId p = 0; p < h.num_procs(); ++p) {
      out += "  subgraph cluster_p" + std::to_string(p) + " {\n    label=\"p" +
             std::to_string(p) + "\";\n    style=dashed;\n";
      for (const OpRef r : h.ops_of(p)) {
        out += "    n" + std::to_string(r) + " [label=\"" + escape(h.op(r).to_string()) +
               "\"];\n";
      }
      out += "  }\n";
    }
  } else {
    for (OpRef r = 0; r < h.size(); ++r) {
      out += "  n" + std::to_string(r) + " [label=\"" + escape(h.op(r).to_string()) +
             "\"];\n";
    }
  }

  if (opt.include_program_order) {
    emit_edges(out, rel.program_order, "color=black, label=\"po\", fontsize=8");
  }
  if (opt.include_reads_from) {
    emit_edges(out, rel.reads_from, "color=blue, label=\"rf\", fontsize=8");
  }
  if (opt.include_sync_orders) {
    emit_edges(out, rel.sync_lock, "color=red, label=\"lock\", fontsize=8");
    emit_edges(out, rel.sync_bar, "color=darkgreen, label=\"bar\", fontsize=8");
    emit_edges(out, rel.sync_await, "color=purple, label=\"await\", fontsize=8");
  }
  if (opt.include_causality_closure) {
    emit_edges(out, rel.causality, "color=gray, style=dotted");
  }
  out += "}\n";
  return out;
}

std::string to_dot(const History& h, const DotOptions& opt) {
  std::string err;
  const auto rel = build_relations(h, &err);
  if (!rel) {
    return "digraph history {\n  // malformed history: " + err + "\n}\n";
  }
  return to_dot(h, *rel, opt);
}

}  // namespace mc::history
