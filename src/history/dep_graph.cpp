#include "history/dep_graph.h"

#include <algorithm>

#include "common/check.h"

namespace mc::history {

const char* edge_type_name(EdgeType t) {
  switch (t) {
    case EdgeType::kProgram: return "po";
    case EdgeType::kReadsFrom: return "rf";
    case EdgeType::kLock: return "lock";
    case EdgeType::kBarrier: return "bar";
    case EdgeType::kAwait: return "await";
    case EdgeType::kWriteOrder: return "ww";
    case EdgeType::kAntiDep: return "rw";
  }
  return "?";
}

std::uint32_t DepGraph::add_node() {
  adj_.emplace_back();
  return static_cast<std::uint32_t>(adj_.size() - 1);
}

void DepGraph::ensure_nodes(std::size_t n) {
  if (adj_.size() < n) adj_.resize(n);
}

void DepGraph::add_edge(std::uint32_t from, std::uint32_t to, EdgeType type) {
  MC_CHECK(from < adj_.size() && to < adj_.size());
  adj_[from].push_back({to, type});
  ++num_edges_;
  ++by_type_[static_cast<std::size_t>(type)];
}

BitMatrix DepGraph::to_bit_matrix(EdgeMask mask) const {
  BitMatrix m(adj_.size());
  for (std::uint32_t v = 0; v < adj_.size(); ++v) {
    for (const HalfEdge& e : adj_[v]) {
      if (mask & edge_bit(e.type)) m.set(v, e.to);
    }
  }
  return m;
}

DepGraph::SccResult DepGraph::scc(EdgeMask mask) const {
  // Iterative Tarjan.  An explicit frame stack replaces recursion so the
  // algorithm survives million-vertex graphs without blowing the C stack.
  const std::uint32_t n = static_cast<std::uint32_t>(adj_.size());
  constexpr std::uint32_t kUnvisited = ~std::uint32_t{0};

  SccResult out;
  out.component.assign(n, kUnvisited);

  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> stack;

  struct Frame {
    std::uint32_t v;
    std::uint32_t edge;  // next out-edge to examine
  };
  std::vector<Frame> frames;
  std::uint32_t next_index = 0;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& edges = adj_[f.v];
      bool descended = false;
      while (f.edge < edges.size()) {
        const HalfEdge& e = edges[f.edge++];
        if (!(mask & edge_bit(e.type))) continue;
        if (index[e.to] == kUnvisited) {
          index[e.to] = lowlink[e.to] = next_index++;
          stack.push_back(e.to);
          on_stack[e.to] = true;
          frames.push_back({e.to, 0});
          descended = true;
          break;
        }
        if (on_stack[e.to]) lowlink[f.v] = std::min(lowlink[f.v], index[e.to]);
      }
      if (descended) continue;

      const std::uint32_t v = f.v;
      if (lowlink[v] == index[v]) {
        std::uint32_t size = 0;
        for (;;) {
          const std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          out.component[w] = out.count;
          ++size;
          if (w == v) break;
        }
        if (size > 1) out.acyclic = false;
        ++out.count;
      }
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().v] = std::min(lowlink[frames.back().v], lowlink[v]);
      }
    }
  }

  // Self-loops make a singleton component cyclic.
  if (out.acyclic) {
    for (std::uint32_t v = 0; v < n && out.acyclic; ++v) {
      for (const HalfEdge& e : adj_[v]) {
        if (e.to == v && (mask & edge_bit(e.type))) {
          out.acyclic = false;
          break;
        }
      }
    }
  }
  return out;
}

std::vector<TypedEdge> DepGraph::find_cycle(EdgeMask mask) const {
  const SccResult s = scc(mask);
  if (s.acyclic) return {};

  // Locate one non-trivial component (or a self-loop) and walk a cycle
  // inside it: BFS from any member back to itself using only intra-
  // component edges.
  const std::uint32_t n = static_cast<std::uint32_t>(adj_.size());
  std::vector<std::uint32_t> comp_size(s.count, 0);
  for (std::uint32_t v = 0; v < n; ++v) ++comp_size[s.component[v]];

  for (std::uint32_t v = 0; v < n; ++v) {
    for (const HalfEdge& e : adj_[v]) {
      if (e.to == v && (mask & edge_bit(e.type))) return {{v, v, e.type}};
    }
  }

  std::uint32_t start = n;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (comp_size[s.component[v]] > 1) {
      start = v;
      break;
    }
  }
  MC_CHECK(start < n);
  const std::uint32_t comp = s.component[start];
  const auto intra = [&](const TypedEdge& e) {
    return s.component[e.to] == comp;
  };

  // First hop off `start`, then shortest path back.
  for (const HalfEdge& e : adj_[start]) {
    if (!(mask & edge_bit(e.type)) || s.component[e.to] != comp) continue;
    if (e.to == start) return {{start, start, e.type}};
    auto back = find_path(e.to, start, mask, intra);
    if (!back.empty()) {
      std::vector<TypedEdge> cycle{{start, e.to, e.type}};
      cycle.insert(cycle.end(), back.begin(), back.end());
      return cycle;
    }
  }
  MC_CHECK_MSG(false, "non-trivial SCC must contain a cycle");
  return {};
}

void DepGraph::compact(const std::vector<std::uint32_t>& remap, std::uint32_t live) {
  MC_CHECK(remap.size() == adj_.size());
  constexpr std::uint32_t kGone = ~std::uint32_t{0};
  std::vector<std::vector<HalfEdge>> next(live);
  num_edges_ = 0;
  for (auto& c : by_type_) c = 0;
  for (std::uint32_t v = 0; v < adj_.size(); ++v) {
    if (remap[v] == kGone) continue;
    std::vector<HalfEdge>& out = next[remap[v]];
    out.reserve(adj_[v].size());
    for (const HalfEdge& e : adj_[v]) {
      if (remap[e.to] == kGone) continue;
      out.push_back({remap[e.to], e.type});
      ++num_edges_;
      ++by_type_[static_cast<std::size_t>(e.type)];
    }
  }
  adj_ = std::move(next);
}

std::vector<TypedEdge> DepGraph::find_path(
    std::uint32_t from, std::uint32_t to, EdgeMask mask,
    const std::function<bool(const TypedEdge&)>& admit) const {
  const std::uint32_t n = static_cast<std::uint32_t>(adj_.size());
  MC_CHECK(from < n && to < n);
  constexpr std::uint32_t kNone = ~std::uint32_t{0};
  std::vector<std::uint32_t> parent(n, kNone);
  std::vector<EdgeType> via(n, EdgeType::kProgram);

  std::vector<std::uint32_t> queue{from};
  parent[from] = from;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t v = queue[head];
    for (const HalfEdge& e : adj_[v]) {
      if (!(mask & edge_bit(e.type))) continue;
      if (parent[e.to] != kNone) continue;
      const TypedEdge te{v, e.to, e.type};
      if (admit && !admit(te)) continue;
      parent[e.to] = v;
      via[e.to] = e.type;
      if (e.to == to) {
        std::vector<TypedEdge> path;
        for (std::uint32_t cur = to; cur != from; cur = parent[cur]) {
          path.push_back({parent[cur], cur, via[cur]});
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(e.to);
    }
  }
  return {};
}

}  // namespace mc::history
