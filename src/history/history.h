// Histories of the formal model (Section 3).
//
// A History is the pair (Op, ~>) of the paper: the set of operations of all
// processes together with the relations that generate the causality
// relation.  Program order within each process is a *partial* order — the
// model explicitly supports concurrency inside a process — represented here
// as:
//   - an implicit chain edge between consecutively appended operations of a
//     process (the common, sequential-process case), which can be turned
//     off per history, plus
//   - arbitrary explicit intra-process edges for partial-order tests.
//
// Histories are built either by hand (unit tests, litmus tests) with the
// fluent per-process appenders, or mechanically from runtime traces
// (dsm/trace.h).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "history/operation.h"

namespace mc::history {

class History {
 public:
  explicit History(std::size_t num_procs, bool sequential_processes = true)
      : num_procs_(num_procs), sequential_(sequential_processes) {}

  [[nodiscard]] std::size_t num_procs() const { return num_procs_; }
  [[nodiscard]] std::size_t size() const { return ops_.size(); }
  [[nodiscard]] const Operation& op(OpRef r) const { return ops_[r]; }
  [[nodiscard]] const std::vector<Operation>& ops() const { return ops_; }
  [[nodiscard]] const std::vector<OpRef>& ops_of(ProcId p) const { return by_proc_[p]; }

  /// Append an operation; when the history is sequential, a program-order
  /// edge from the process's previous operation is implied.
  OpRef add(Operation op);

  /// Explicit intra-process program-order edge (for partial-order
  /// histories).  Both ends must belong to the same process.
  void add_program_edge(OpRef before, OpRef after);

  [[nodiscard]] bool sequential_processes() const { return sequential_; }
  [[nodiscard]] const std::vector<std::pair<OpRef, OpRef>>& explicit_program_edges() const {
    return explicit_po_;
  }

  // ----- convenience appenders (tests and examples) -----

  OpRef read(ProcId p, VarId x, Value v, ReadMode mode = ReadMode::kCausal,
             WriteId source = kInitialWrite);
  OpRef write(ProcId p, VarId x, Value v);
  OpRef delta(ProcId p, VarId x, std::int64_t amount);
  OpRef delta_double(ProcId p, VarId x, double amount);
  OpRef rlock(ProcId p, LockId l, std::uint64_t episode);
  OpRef runlock(ProcId p, LockId l, std::uint64_t episode);
  OpRef wlock(ProcId p, LockId l, std::uint64_t episode);
  OpRef wunlock(ProcId p, LockId l, std::uint64_t episode);
  OpRef barrier(ProcId p, std::uint32_t epoch, BarrierId b = 0);
  OpRef await(ProcId p, VarId x, Value v, WriteId resolved_by);

  /// The WriteId of the most recent `write`/`delta` appended via the
  /// convenience appenders for process p (handy when wiring reads-from).
  [[nodiscard]] WriteId last_write_of(ProcId p) const;

  /// Resolve reads-from for reads/awaits whose write_id was left as
  /// kInitialWrite but whose value matches exactly one write in the history
  /// — this recovers the paper's unique-written-values convention for
  /// hand-built histories.  Returns an error description if a value matches
  /// more than one write.
  std::optional<std::string> resolve_reads_by_value();

  /// Pretty printer (one process per line).
  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t num_procs_;
  bool sequential_;
  std::vector<Operation> ops_;
  std::vector<std::vector<OpRef>> by_proc_{num_procs_};
  std::vector<std::pair<OpRef, OpRef>> explicit_po_;
  std::vector<SeqNo> write_seq_{std::vector<SeqNo>(num_procs_, 0)};
};

}  // namespace mc::history
