#include "net/reliable.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "net/fabric.h"
#include "obs/tracer.h"

namespace mc::net {

ReliableChannel::ReliableChannel(Fabric& fabric, std::size_t endpoints,
                                 ReliabilityConfig cfg)
    : fabric_(fabric),
      endpoints_(endpoints),
      cfg_(cfg),
      send_(endpoints * endpoints),
      recv_(endpoints * endpoints),
      ready_(endpoints) {
  MC_CHECK(cfg_.initial_rto.count() > 0);
  MC_CHECK(cfg_.max_retries >= 1);
  MC_CHECK(cfg_.ack_every >= 1);
  MC_CHECK_MSG(cfg_.ack_every == 1 || cfg_.ack_flush < cfg_.initial_rto,
               "ack flush window must undercut the retransmit timeout or "
               "sender backoff fires spuriously");
  timer_ = std::thread([this] { timer_loop(); });
}

ReliableChannel::~ReliableChannel() { stop(); }

void ReliableChannel::stop() {
  {
    std::scoped_lock lk(mu_);
    if (stop_) return;
    stop_ = true;
  }
  timer_cv_.notify_all();
  if (timer_.joinable()) timer_.join();
}

void ReliableChannel::on_send(Message& m) {
  std::scoped_lock lk(mu_);
  SendState& st = send_[channel(m.src, m.dst)];
  m.rel_seq = st.next_seq++;
  RecvState& reverse = recv_[channel(m.dst, m.src)];
  m.rel_ack = reverse.delivered;
  // The piggyback satisfies any suppressed standalone ack for the reverse
  // channel (should this message be lost, the peer's retransmit is re-acked
  // immediately, same as a lost standalone ack).
  reverse.acked = reverse.delivered;
  if (!st.dead) {
    InFlight entry;
    entry.msg = m;
    entry.rto = cfg_.initial_rto;
    entry.deadline = std::chrono::steady_clock::now() + entry.rto;
    st.inflight.emplace(m.rel_seq, std::move(entry));
  }
}

Message ReliableChannel::make_ack(Endpoint from, Endpoint to, std::uint64_t acked) const {
  Message a;
  a.src = from;
  a.dst = to;
  a.kind = kRelAckKind;
  a.a = acked;
  return a;
}

void ReliableChannel::handle_ack(std::size_t ch, std::uint64_t acked) {
  SendState& st = send_[ch];
  st.inflight.erase(st.inflight.begin(), st.inflight.upper_bound(acked));
}

void ReliableChannel::process(Endpoint e, Message m, std::vector<Message>& acks_out) {
  // Any message carries a cumulative ack for the channel we send on
  // (e -> m.src), piggybacked or standalone.
  if (m.rel_ack != 0) handle_ack(channel(e, m.src), m.rel_ack);
  if (m.kind == kRelAckKind) {
    handle_ack(channel(e, m.src), m.a);
    // Acks are consumed here, never handed up: close their flow so every
    // flow start has a matching end.
    obs::trace_flow_end("msg", "net", m.trace_id);
    return;
  }
  if (m.rel_seq == 0) {
    // Pre-reliability or control traffic: pass through untouched.
    ready_[e].push_back(std::move(m));
    return;
  }

  const std::size_t ch = channel(m.src, e);
  RecvState& st = recv_[ch];
  if (m.rel_seq <= st.delivered || st.reorder.count(m.rel_seq) != 0) {
    dup_dropped_.add();
    if (obs::trace_enabled()) {
      obs::trace_instant("rel.dup_drop", "net", {"src", m.src},
                         {"seq", m.rel_seq});
      // This physical copy terminates here; close its flow.
      obs::trace_flow_end("msg", "net", m.trace_id);
    }
    // Re-ack so a sender retransmitting into a lost-ack window quiesces.
    st.acked = st.delivered;
    acks_out.push_back(make_ack(e, m.src, st.delivered));
    return;
  }
  const Endpoint sender = m.src;
  const bool was_pending = st.delivered > st.acked;
  st.reorder.emplace(m.rel_seq, std::move(m));
  while (!st.reorder.empty() && st.reorder.begin()->first == st.delivered + 1) {
    ready_[e].push_back(std::move(st.reorder.begin()->second));
    st.reorder.erase(st.reorder.begin());
    ++st.delivered;
  }
  if (cfg_.ack_every <= 1 || st.delivered - st.acked >= cfg_.ack_every) {
    st.acked = st.delivered;
    acks_out.push_back(make_ack(e, sender, st.delivered));
  } else if (st.delivered > st.acked) {
    // Delayed cumulative ack: suppress the standalone ack; a later k-th
    // delivery, reverse-traffic piggyback, or the flush timer covers it.
    if (!was_pending) st.ack_pending_since = std::chrono::steady_clock::now();
    acks_delayed_.add();
  }
}

std::optional<Message> ReliableChannel::recv(Endpoint e) {
  for (;;) {
    std::vector<Message> acks;
    {
      std::scoped_lock lk(mu_);
      if (!ready_[e].empty()) {
        Message out = std::move(ready_[e].front());
        ready_[e].pop_front();
        return out;
      }
    }
    auto raw = fabric_.mailbox(e).recv();
    if (!raw.has_value()) {
      std::scoped_lock lk(mu_);
      if (ready_[e].empty()) return std::nullopt;
      Message out = std::move(ready_[e].front());
      ready_[e].pop_front();
      return out;
    }
    {
      std::scoped_lock lk(mu_);
      process(e, std::move(*raw), acks);
    }
    for (Message& a : acks) {
      acks_sent_.add();
      ack_bytes_.add(a.wire_bytes());
      fabric_.send_raw(std::move(a));
    }
  }
}

void ReliableChannel::timer_loop() {
  std::unique_lock lk(mu_);
  while (!stop_) {
    timer_cv_.wait_for(lk, cfg_.tick);
    if (stop_) break;
    const auto now = std::chrono::steady_clock::now();
    std::vector<Message> resends;
    for (std::size_t ch = 0; ch < send_.size(); ++ch) {
      SendState& st = send_[ch];
      if (st.dead || st.inflight.empty()) continue;
      for (auto& [seq, entry] : st.inflight) {
        if (entry.deadline > now) continue;
        if (entry.attempts >= cfg_.max_retries) {
          st.dead = true;
          PeerUnreachable err;
          err.src = static_cast<Endpoint>(ch / endpoints_);
          err.dst = static_cast<Endpoint>(ch % endpoints_);
          err.first_unacked = seq;
          err.retries = entry.attempts;
          errors_.push_back(err);
          if (obs::trace_enabled()) {
            obs::trace_instant("rel.peer_unreachable", "net", {"dst", err.dst},
                               {"seq", seq});
          }
          break;
        }
        ++entry.attempts;
        entry.rto = std::min(entry.rto * 2, cfg_.max_rto);
        entry.deadline = now + entry.rto;
        rto_ns_.record(entry.rto);
        retransmits_.add();
        if (obs::trace_enabled()) {
          obs::trace_instant("rel.retransmit", "net", {"dst", entry.msg.dst},
                             {"seq", seq});
        }
        resends.push_back(entry.msg);
        if (obs::trace_enabled()) {
          // Each physical copy gets its own flow, marked so the
          // critical-path analyzer bills its transit to `retransmit`.
          resends.back().trace_id = obs::next_flow_id() | obs::kFlowRetransmitBit;
        }
      }
      if (st.dead) st.inflight.clear();
    }
    // Flush suppressed acks past their window, so sender RTOs never fire
    // on a healthy-but-quiet channel.
    std::vector<Message> ack_flushes;
    if (cfg_.ack_every > 1) {
      for (std::size_t ch = 0; ch < recv_.size(); ++ch) {
        RecvState& st = recv_[ch];
        if (st.delivered > st.acked && now - st.ack_pending_since >= cfg_.ack_flush) {
          st.acked = st.delivered;
          ack_flushes.push_back(make_ack(static_cast<Endpoint>(ch % endpoints_),
                                         static_cast<Endpoint>(ch / endpoints_),
                                         st.delivered));
        }
      }
    }
    if (!resends.empty() || !ack_flushes.empty()) {
      lk.unlock();
      for (Message& m : resends) fabric_.send_raw(std::move(m));
      for (Message& a : ack_flushes) {
        acks_sent_.add();
        ack_bytes_.add(a.wire_bytes());
        fabric_.send_raw(std::move(a));
      }
      lk.lock();
    }
  }
}

std::vector<ReliableChannel::PeerUnreachable> ReliableChannel::errors() const {
  std::scoped_lock lk(mu_);
  return errors_;
}

void ReliableChannel::add_metrics(MetricsSnapshot& snap) const {
  snap.values["net.retransmits"] = retransmits_.get();
  snap.values["net.dup_dropped"] = dup_dropped_.get();
  snap.values["net.acks"] = acks_sent_.get();
  snap.values["net.ack_bytes"] = ack_bytes_.get();
  snap.values["net.ack.delayed"] = acks_delayed_.get();
  snap.add_histogram("net.rto_ns", rto_ns_);
  std::scoped_lock lk(mu_);
  snap.values["net.peer_unreachable"] = errors_.size();
}

}  // namespace mc::net
