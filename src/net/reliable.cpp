#include "net/reliable.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "net/fabric.h"
#include "obs/tracer.h"

namespace mc::net {

namespace {
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

std::chrono::nanoseconds ReliableChannel::backoff_rto(
    std::chrono::nanoseconds prev, const ReliabilityConfig& cfg,
    std::uint64_t channel, std::uint64_t seq, int attempt) {
  auto next = std::min(prev * 2, cfg.max_rto);
  if (cfg.jitter > 0.0) {
    std::uint64_t h = cfg.jitter_seed;
    h = splitmix64(h ^ channel);
    h = splitmix64(h ^ seq);
    h = splitmix64(h ^ static_cast<std::uint64_t>(attempt));
    // 53 uniform bits -> u in [-1, 1).
    const double u =
        static_cast<double>(h >> 11) / 4503599627370496.0 - 1.0;
    const auto scaled = std::chrono::nanoseconds(static_cast<std::int64_t>(
        static_cast<double>(next.count()) * (1.0 + cfg.jitter * u)));
    next = std::clamp(scaled, std::chrono::nanoseconds(1), cfg.max_rto);
  }
  return next;
}

ReliableChannel::ReliableChannel(Fabric& fabric, std::size_t endpoints,
                                 ReliabilityConfig cfg)
    : fabric_(fabric),
      endpoints_(endpoints),
      cfg_(cfg),
      send_(endpoints * endpoints),
      recv_(endpoints * endpoints),
      ready_(endpoints) {
  MC_CHECK(cfg_.initial_rto.count() > 0);
  MC_CHECK(cfg_.max_retries >= 1);
  MC_CHECK(cfg_.ack_every >= 1);
  MC_CHECK(cfg_.jitter >= 0.0 && cfg_.jitter <= 1.0);
  MC_CHECK_MSG(cfg_.ack_every == 1 || cfg_.ack_flush < cfg_.initial_rto,
               "ack flush window must undercut the retransmit timeout or "
               "sender backoff fires spuriously");
  timer_ = std::thread([this] { timer_loop(); });
}

ReliableChannel::~ReliableChannel() { stop(); }

void ReliableChannel::stop() {
  {
    std::scoped_lock lk(mu_);
    if (stop_) return;
    stop_ = true;
  }
  timer_cv_.notify_all();
  if (timer_.joinable()) timer_.join();
}

void ReliableChannel::set_unreachable_callback(
    std::function<void(const PeerUnreachable&)> cb) {
  std::scoped_lock lk(mu_);
  unreachable_cb_ = std::move(cb);
}

void ReliableChannel::mark_dead(Endpoint e) {
  std::scoped_lock lk(mu_);
  for (std::size_t src = 0; src < endpoints_; ++src) {
    SendState& st = send_[channel(static_cast<Endpoint>(src), e)];
    st.dead = true;
    st.inflight.clear();
  }
}

void ReliableChannel::on_send(Message& m) {
  std::scoped_lock lk(mu_);
  SendState& st = send_[channel(m.src, m.dst)];
  m.rel_seq = st.next_seq++;
  RecvState& reverse = recv_[channel(m.dst, m.src)];
  m.rel_ack = reverse.delivered;
  // The piggyback satisfies any suppressed standalone ack for the reverse
  // channel (should this message be lost, the peer's retransmit is re-acked
  // immediately, same as a lost standalone ack).
  reverse.acked = reverse.delivered;
  st.last_activity = std::chrono::steady_clock::now();
  if (!st.dead) {
    InFlight entry;
    entry.msg = m;
    entry.rto = cfg_.initial_rto;
    entry.deadline = st.last_activity + entry.rto;
    st.inflight.emplace(m.rel_seq, std::move(entry));
  }
}

Message ReliableChannel::make_ack(Endpoint from, Endpoint to, std::uint64_t acked) const {
  Message a;
  a.src = from;
  a.dst = to;
  a.kind = kRelAckKind;
  a.a = acked;
  return a;
}

void ReliableChannel::handle_ack(std::size_t ch, std::uint64_t acked) {
  SendState& st = send_[ch];
  st.inflight.erase(st.inflight.begin(), st.inflight.upper_bound(acked));
  st.last_activity = std::chrono::steady_clock::now();
}

void ReliableChannel::process(Endpoint e, Message m, std::vector<Message>& acks_out) {
  // Any message carries a cumulative ack for the channel we send on
  // (e -> m.src), piggybacked or standalone.
  if (m.rel_ack != 0) handle_ack(channel(e, m.src), m.rel_ack);
  if (m.kind == kRelAckKind) {
    handle_ack(channel(e, m.src), m.a);
    // Acks are consumed here, never handed up: close their flow so every
    // flow start has a matching end.
    obs::trace_flow_end("msg", "net", m.trace_id);
    return;
  }
  if (m.rel_seq == 0) {
    // Pre-reliability or control traffic: pass through untouched.
    ready_[e].push_back(std::move(m));
    return;
  }

  const std::size_t ch = channel(m.src, e);
  RecvState& st = recv_[ch];
  if (m.rel_seq <= st.delivered || st.reorder.count(m.rel_seq) != 0) {
    dup_dropped_.add();
    if (obs::trace_enabled()) {
      obs::trace_instant("rel.dup_drop", "net", {"src", m.src},
                         {"seq", m.rel_seq});
      // This physical copy terminates here; close its flow.
      obs::trace_flow_end("msg", "net", m.trace_id);
    }
    // Re-ack so a sender retransmitting into a lost-ack window quiesces.
    st.acked = st.delivered;
    acks_out.push_back(make_ack(e, m.src, st.delivered));
    return;
  }
  const Endpoint sender = m.src;
  const bool was_pending = st.delivered > st.acked;
  st.reorder.emplace(m.rel_seq, std::move(m));
  while (!st.reorder.empty() && st.reorder.begin()->first == st.delivered + 1) {
    Message next = std::move(st.reorder.begin()->second);
    st.reorder.erase(st.reorder.begin());
    ++st.delivered;
    if (next.kind == kRelPingKind) {
      // Keepalive probes occupy sequence space (so they are acked and
      // retransmitted like anything else) but carry no payload for the
      // application: consume them here.
      obs::trace_flow_end("msg", "net", next.trace_id);
    } else {
      ready_[e].push_back(std::move(next));
    }
  }
  if (cfg_.ack_every <= 1 || st.delivered - st.acked >= cfg_.ack_every) {
    st.acked = st.delivered;
    acks_out.push_back(make_ack(e, sender, st.delivered));
  } else if (st.delivered > st.acked) {
    // Delayed cumulative ack: suppress the standalone ack; a later k-th
    // delivery, reverse-traffic piggyback, or the flush timer covers it.
    if (!was_pending) st.ack_pending_since = std::chrono::steady_clock::now();
    acks_delayed_.add();
  }
}

std::optional<Message> ReliableChannel::recv(Endpoint e) {
  for (;;) {
    std::vector<Message> acks;
    {
      std::scoped_lock lk(mu_);
      if (!ready_[e].empty()) {
        Message out = std::move(ready_[e].front());
        ready_[e].pop_front();
        return out;
      }
    }
    auto raw = fabric_.mailbox(e).recv();
    if (!raw.has_value()) {
      std::scoped_lock lk(mu_);
      if (ready_[e].empty()) return std::nullopt;
      Message out = std::move(ready_[e].front());
      ready_[e].pop_front();
      return out;
    }
    {
      std::scoped_lock lk(mu_);
      process(e, std::move(*raw), acks);
    }
    for (Message& a : acks) {
      acks_sent_.add();
      ack_bytes_.add(a.wire_bytes());
      fabric_.send_raw(std::move(a));
    }
  }
}

void ReliableChannel::timer_loop() {
  std::unique_lock lk(mu_);
  while (!stop_) {
    timer_cv_.wait_for(lk, cfg_.tick);
    if (stop_) break;
    const auto now = std::chrono::steady_clock::now();
    std::vector<Message> resends;
    std::vector<PeerUnreachable> new_errors;
    for (std::size_t ch = 0; ch < send_.size(); ++ch) {
      SendState& st = send_[ch];
      if (st.dead || st.inflight.empty()) continue;
      for (auto& [seq, entry] : st.inflight) {
        if (entry.deadline > now) continue;
        if (entry.attempts >= cfg_.max_retries) {
          st.dead = true;
          PeerUnreachable err;
          err.src = static_cast<Endpoint>(ch / endpoints_);
          err.dst = static_cast<Endpoint>(ch % endpoints_);
          err.first_unacked = seq;
          err.retries = entry.attempts;
          errors_.push_back(err);
          new_errors.push_back(err);
          if (obs::trace_enabled()) {
            obs::trace_instant("rel.peer_unreachable", "net", {"dst", err.dst},
                               {"seq", seq});
          }
          break;
        }
        ++entry.attempts;
        entry.rto = backoff_rto(entry.rto, cfg_, ch, seq, entry.attempts);
        entry.deadline = now + entry.rto;
        rto_ns_.record(entry.rto);
        retransmits_.add();
        if (obs::trace_enabled()) {
          obs::trace_instant("rel.retransmit", "net", {"dst", entry.msg.dst},
                             {"seq", seq});
        }
        resends.push_back(entry.msg);
        if (obs::trace_enabled()) {
          // Each physical copy gets its own flow, marked so the
          // critical-path analyzer bills its transit to `retransmit`.
          resends.back().trace_id = obs::next_flow_id() | obs::kFlowRetransmitBit;
        }
      }
      if (st.dead) st.inflight.clear();
    }
    // Keepalive probing: a once-used channel with nothing in flight and no
    // recent ack gets a sequenced ping, so a silently dead peer is detected
    // even when every sender is blocked and producing no app traffic.
    std::vector<Message> pings;
    if (cfg_.keepalive.count() > 0) {
      for (std::size_t ch = 0; ch < send_.size(); ++ch) {
        SendState& st = send_[ch];
        const auto src = static_cast<Endpoint>(ch / endpoints_);
        const auto dst = static_cast<Endpoint>(ch % endpoints_);
        if (st.dead || src == dst || st.next_seq == 1 || !st.inflight.empty()) {
          continue;
        }
        if (now - st.last_activity < cfg_.keepalive) continue;
        Message ping;
        ping.src = src;
        ping.dst = dst;
        ping.kind = kRelPingKind;
        pings.push_back(ping);
        st.last_activity = now;  // rate-limit until on_send restamps it
        keepalives_.add();
      }
    }
    // Flush suppressed acks past their window, so sender RTOs never fire
    // on a healthy-but-quiet channel.
    std::vector<Message> ack_flushes;
    if (cfg_.ack_every > 1) {
      for (std::size_t ch = 0; ch < recv_.size(); ++ch) {
        RecvState& st = recv_[ch];
        if (st.delivered > st.acked && now - st.ack_pending_since >= cfg_.ack_flush) {
          st.acked = st.delivered;
          ack_flushes.push_back(make_ack(static_cast<Endpoint>(ch % endpoints_),
                                         static_cast<Endpoint>(ch / endpoints_),
                                         st.delivered));
        }
      }
    }
    if (!resends.empty() || !ack_flushes.empty() || !new_errors.empty() ||
        !pings.empty()) {
      // Snapshot the callback under the lock; invoke it outside so it may
      // re-enter the fabric (e.g. to send a view-fault report).
      auto cb = unreachable_cb_;
      lk.unlock();
      for (Message& m : resends) fabric_.send_raw(std::move(m));
      // Pings take the full send path: they must be sequenced (on_send) and
      // are subject to the fault plan like any other message.
      for (Message& m : pings) fabric_.send(std::move(m));
      for (Message& a : ack_flushes) {
        acks_sent_.add();
        ack_bytes_.add(a.wire_bytes());
        fabric_.send_raw(std::move(a));
      }
      if (cb) {
        for (const PeerUnreachable& err : new_errors) cb(err);
      }
      lk.lock();
    }
  }
}

std::vector<ReliableChannel::PeerUnreachable> ReliableChannel::errors() const {
  std::scoped_lock lk(mu_);
  return errors_;
}

void ReliableChannel::add_metrics(MetricsSnapshot& snap) const {
  snap.values["net.retransmits"] = retransmits_.get();
  snap.values["net.dup_dropped"] = dup_dropped_.get();
  snap.values["net.acks"] = acks_sent_.get();
  snap.values["net.ack_bytes"] = ack_bytes_.get();
  snap.values["net.ack.delayed"] = acks_delayed_.get();
  snap.values["net.keepalives"] = keepalives_.get();
  snap.add_histogram("net.rto_ns", rto_ns_);
  std::scoped_lock lk(mu_);
  snap.values["net.peer_unreachable"] = errors_.size();
}

}  // namespace mc::net
