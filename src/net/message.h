// Wire-format message envelope for the simulated fabric.
//
// The fabric is protocol-agnostic: higher layers (the mixed-consistency DSM
// runtime, the SC baseline) encode their protocol messages into this fixed
// envelope — a small scalar header plus a variable-length vector of 64-bit
// words (vector timestamps, count vectors, write-set digests).  Keeping one
// concrete envelope lets the fabric account for bytes on the wire exactly
// as a real implementation would.

#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace mc::net {

/// Endpoint index within a fabric.  DSM processes occupy the low indices;
/// manager processes (lock manager, barrier manager, sequencer) are ordinary
/// endpoints above them, exactly as Section 6 maps every lock/barrier to a
/// manager *process*.
using Endpoint = std::uint32_t;

inline constexpr Endpoint kNoEndpoint = ~Endpoint{0};

using SimTime = std::chrono::steady_clock::time_point;

struct Message {
  Endpoint src = kNoEndpoint;
  Endpoint dst = kNoEndpoint;

  /// Protocol-defined discriminator (see dsm/wire.h, baseline/wire.h).
  std::uint16_t kind = 0;

  /// Small scalar payload fields, meaning defined per kind.
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t d = 0;

  /// Variable-length payload (vector clocks, count vectors, digests).
  std::vector<std::uint64_t> payload;

  // --- stamped by the reliability layer (net/reliable.h) when enabled ---

  /// Per-(src,dst) reliable sequence number; 0 means the message is outside
  /// the reliable protocol (control traffic, or reliability disabled).
  std::uint64_t rel_seq = 0;

  /// Piggybacked cumulative ack for the reverse channel (dst -> src):
  /// the highest in-order sequence the sender has delivered from dst.
  std::uint64_t rel_ack = 0;

  // --- stamped by the fabric on send ---

  /// Trace correlation id (obs/tracer.h flow events): stamped by the fabric
  /// when tracing is enabled, 0 otherwise.  Consumers re-emit it as a flow
  /// end so Perfetto binds each send to its delivery.  Observability
  /// metadata, not wire payload — it does not count toward wire_bytes()
  /// (a real implementation would ship it only in sampled-tracing builds).
  /// The top bit (obs::kFlowRetransmitBit) marks retransmitted copies.
  std::uint64_t trace_id = 0;

  /// Per-(src,dst) channel sequence number; receivers can assert FIFO.
  std::uint64_t channel_seq = 0;

  /// Simulated arrival time; the mailbox does not surface the message
  /// before this instant.
  SimTime deliver_at{};

  /// Modeled size on the wire: fixed header plus payload words, plus the
  /// reliability header (seq + ack) when the message travels reliably.
  /// `payload` must hold the *encoded* words a real wire format would ship
  /// — encoders that compress (kBatch delta-encodes vector clocks against
  /// a base clock, dsm/batch.h) pack the compressed form here, so byte
  /// metrics charge the delta-encoded size, never the logical full-clock
  /// size.
  [[nodiscard]] std::size_t wire_bytes() const {
    return kHeaderBytes + payload.size() * sizeof(std::uint64_t) +
           (rel_seq != 0 || rel_ack != 0 ? kRelHeaderBytes : 0);
  }

  static constexpr std::size_t kHeaderBytes = 48;
  static constexpr std::size_t kRelHeaderBytes = 16;
};

}  // namespace mc::net
