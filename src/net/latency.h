// Per-message latency models for the simulated fabric.
//
// The reproduction judges the paper's claims primarily on message counts,
// but latency injection is what surfaces *blocking*: an SC write that waits
// for a sequencer round trip, a causal read that waits for a missing
// dependency, an eager unlock that waits for global acknowledgements.  The
// model is deterministic given a seed.

#pragma once

#include <chrono>
#include <cstdint>

#include "net/message.h"

namespace mc::net {

struct LatencyModel {
  /// Fixed one-way cost per message.
  std::chrono::nanoseconds base{0};

  /// Additional cost per 64-bit payload word (bandwidth term).
  std::chrono::nanoseconds per_word{0};

  /// Uniform jitter in [0, jitter] added per message.
  std::chrono::nanoseconds jitter{0};

  /// Convenience factories.
  static LatencyModel zero() { return {}; }
  static LatencyModel lan();   ///< ~30us base, small bandwidth term, jitter
  static LatencyModel fast();  ///< ~2us base, used by latency-sensitive tests

  [[nodiscard]] bool is_zero() const {
    return base.count() == 0 && per_word.count() == 0 && jitter.count() == 0;
  }
};

/// Stateful stamper: produces monotone per-channel deliver_at stamps so the
/// simulated channels stay FIFO under jitter.  Not thread-safe; the fabric
/// guards it.
class LatencyStamper {
 public:
  LatencyStamper(LatencyModel model, std::size_t endpoints, std::uint64_t seed);

  /// Compute the deliver_at stamp for a message sent now.
  SimTime stamp(const Message& m, SimTime now);

 private:
  LatencyModel model_;
  std::size_t endpoints_;
  std::uint64_t rng_state_;
  std::vector<SimTime> last_;  // [src * endpoints_ + dst]
};

}  // namespace mc::net
