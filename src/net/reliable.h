// Reliable FIFO channels on top of a lossy fabric.
//
// The paper's Section 6 implementation assumes reliable FIFO channels; a
// workstation network only approximates them.  This layer reconstructs the
// assumption the way a real deployment must: per-channel sequence numbers,
// receiver-side dedup and reorder buffering, cumulative acks (piggybacked
// on reverse traffic and sent standalone), and retransmission on timeout
// with exponential backoff.  A channel that exhausts its retries surfaces a
// structured PeerUnreachable record instead of retrying forever — the
// stall itself is the watchdog's job to report (src/dsm/watchdog.h).
//
// The protocol state machine (sender and receiver sides) is documented in
// docs/FAULTS.md.  When reliability is disabled the fabric never consults
// this class; when enabled, every non-ack message is sequenced and the
// fabric's recv path routes through ReliableChannel::recv.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "net/message.h"

namespace mc::net {

class Fabric;

/// Wire kind of standalone cumulative acks (field a = acked sequence).
/// Chosen high so protocol layers' own kinds (1..~20) never collide.
inline constexpr std::uint16_t kRelAckKind = 62;

/// Wire kind of keepalive probes (ReliabilityConfig::keepalive).  Probes
/// are sequenced like app traffic — so an unreachable peer fails them
/// through the normal retransmit/give-up path — but the receiver consumes
/// them after acking; they are never handed up.
inline constexpr std::uint16_t kRelPingKind = 61;

struct ReliabilityConfig {
  /// First retransmit timeout for a freshly sent message.
  std::chrono::nanoseconds initial_rto{std::chrono::milliseconds(2)};
  /// Backoff cap.
  std::chrono::nanoseconds max_rto{std::chrono::milliseconds(200)};
  /// Retransmissions per message before the channel is declared dead.
  int max_retries = 10;
  /// Granularity of the retransmit timer thread.
  std::chrono::nanoseconds tick{std::chrono::microseconds(500)};

  /// Delayed cumulative acks: emit a standalone ack only every `ack_every`
  /// deliveries on a channel (1 = classic ack-per-message).  Acks are
  /// cumulative, so skipping intermediates loses nothing; duplicates are
  /// still re-acked immediately (the sender is already retransmitting) and
  /// reverse traffic still piggybacks the newest ack for free.
  std::uint64_t ack_every = 1;
  /// Flush window bounding how long a suppressed ack may wait before the
  /// timer ships it anyway.  Must stay comfortably below initial_rto or
  /// sender backoff fires spuriously on perfectly healthy channels.
  std::chrono::nanoseconds ack_flush{std::chrono::microseconds(500)};

  /// Deterministic seeded backoff jitter in [0, 1].  Each doubled RTO is
  /// scaled by a factor in [1-jitter, 1+jitter] drawn from a splitmix64
  /// hash of (jitter_seed, channel, seq, attempt), then re-clamped to
  /// max_rto — retransmit storms from many channels against one dead peer
  /// de-synchronize, while the give-up verdict stays bounded by
  /// max_retries * max_rto per message.  0 disables jitter.
  double jitter = 0.0;
  std::uint64_t jitter_seed = 1;

  /// Failure detection on quiet channels: a channel that has carried
  /// sequenced traffic but has been idle (nothing in flight, no acks) for
  /// this long sends a ping.  The ping rides the normal sequence space, so
  /// a dead peer fails it through retransmit/give-up and surfaces a
  /// PeerUnreachable verdict even when every survivor is blocked in a
  /// barrier and generating no app traffic of its own.  0 disables probing
  /// (the default); elastic membership turns it on (dsm/system.cpp).
  std::chrono::nanoseconds keepalive{0};
};

class ReliableChannel {
 public:
  /// A channel that exhausted its retries.  Surfaced through errors() and
  /// `net.peer_unreachable`; the watchdog includes it in diagnostics.
  struct PeerUnreachable {
    Endpoint src = kNoEndpoint;
    Endpoint dst = kNoEndpoint;
    std::uint64_t first_unacked = 0;
    int retries = 0;
  };

  ReliableChannel(Fabric& fabric, std::size_t endpoints, ReliabilityConfig cfg);
  ~ReliableChannel();

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Sender side: assign the next per-channel sequence number, piggyback
  /// the reverse channel's cumulative ack, and buffer a copy for
  /// retransmission.  Called by Fabric::send before the message enters the
  /// lossy path.  Thread-safe.
  void on_send(Message& m);

  /// Receiver side: blocking receive of the next in-order message for
  /// endpoint `e` — the reliable replacement for Mailbox::recv.  Consumes
  /// protocol traffic (acks, duplicates, out-of-order buffering)
  /// internally.  Returns nullopt once the underlying mailbox is closed
  /// and drained.  One consumer thread per endpoint.
  std::optional<Message> recv(Endpoint e);

  /// Stop the retransmit timer (idempotent; called by Fabric::shutdown
  /// before mailboxes close).
  void stop();

  /// Register a callback invoked — outside the channel lock, from the
  /// timer thread — each time a channel exhausts its retries.  Elastic
  /// membership (dsm/view.h) routes the verdict to the view manager as a
  /// fault report.  Install before protocol traffic flows.
  void set_unreachable_callback(std::function<void(const PeerUnreachable&)> cb);

  /// Declare endpoint `e` dead: every channel *to* it is marked dead and
  /// its retransmit buffers are discarded.  Called after a view change has
  /// evicted the peer, so survivors stop retransmitting into the void.
  void mark_dead(Endpoint e);

  /// The next backoff step for a message on `channel` with sequence `seq`
  /// entering retransmit `attempt`: doubled, jittered, clamped to
  /// cfg.max_rto.  Pure — exposed for unit testing the jitter contract.
  [[nodiscard]] static std::chrono::nanoseconds backoff_rto(
      std::chrono::nanoseconds prev, const ReliabilityConfig& cfg,
      std::uint64_t channel, std::uint64_t seq, int attempt);

  // --- accounting (docs/METRICS.md) ---
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_.get(); }
  [[nodiscard]] std::uint64_t dup_dropped() const { return dup_dropped_.get(); }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_.get(); }
  [[nodiscard]] std::uint64_t ack_bytes() const { return ack_bytes_.get(); }
  /// Deliveries whose standalone ack was suppressed by ack_every (they were
  /// covered later by a cumulative ack, a piggyback, or the flush timer).
  [[nodiscard]] std::uint64_t acks_delayed() const { return acks_delayed_.get(); }
  /// Keepalive probes sent (ReliabilityConfig::keepalive).
  [[nodiscard]] std::uint64_t keepalives() const { return keepalives_.get(); }
  [[nodiscard]] const LatencyHistogram& rto_ns() const { return rto_ns_; }
  [[nodiscard]] std::vector<PeerUnreachable> errors() const;

  void add_metrics(MetricsSnapshot& snap) const;

 private:
  struct InFlight {
    Message msg;  // deliver_at restamped on every (re)send
    std::chrono::steady_clock::time_point deadline;
    std::chrono::nanoseconds rto;
    int attempts = 0;
  };

  struct SendState {
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, InFlight> inflight;
    bool dead = false;
    /// Last send or ack on this channel; keepalive probes fire once a
    /// once-used channel has been quiet past cfg_.keepalive.
    std::chrono::steady_clock::time_point last_activity{};
  };

  struct RecvState {
    std::uint64_t delivered = 0;  // highest in-order sequence handed up
    std::uint64_t acked = 0;      // highest sequence the sender knows about
    /// A suppressed ack is pending since this instant (valid when
    /// acked < delivered); the timer flushes it after cfg_.ack_flush.
    std::chrono::steady_clock::time_point ack_pending_since{};
    std::map<std::uint64_t, Message> reorder;
  };

  [[nodiscard]] std::size_t channel(Endpoint src, Endpoint dst) const {
    return static_cast<std::size_t>(src) * endpoints_ + dst;
  }

  /// Process one raw message for consumer `e`; in-order app messages are
  /// appended to ready_[e].  Returns acks to transmit (sent without the
  /// lock held).
  void process(Endpoint e, Message m, std::vector<Message>& acks_out);
  void handle_ack(std::size_t ch, std::uint64_t acked);
  [[nodiscard]] Message make_ack(Endpoint from, Endpoint to, std::uint64_t acked) const;

  void timer_loop();

  Fabric& fabric_;
  const std::size_t endpoints_;
  const ReliabilityConfig cfg_;

  mutable std::mutex mu_;
  std::vector<SendState> send_;                 // [src * n + dst]
  std::vector<RecvState> recv_;                 // [src * n + dst]
  std::vector<std::deque<Message>> ready_;      // per endpoint, in order
  std::vector<PeerUnreachable> errors_;
  std::function<void(const PeerUnreachable&)> unreachable_cb_;

  Counter retransmits_, dup_dropped_, acks_sent_, ack_bytes_, acks_delayed_;
  Counter keepalives_;
  LatencyHistogram rto_ns_;

  std::condition_variable timer_cv_;
  bool stop_ = false;
  std::thread timer_;
};

}  // namespace mc::net
