// Deterministic fault injection for the simulated fabric.
//
// Section 6 of the paper assumes "processes are connected by reliable FIFO
// channels".  The ideal fabric grants that assumption for free; this layer
// takes it away on purpose — seeded, replayable loss, duplication, delay
// spikes, partition windows, and crash-stop endpoints — so the reliability
// layer (net/reliable.h) and the DSM protocols above it can be proven to
// *construct* the paper's channel model instead of inheriting it.
//
// Every decision is a pure function of the fault plan, the seed, and the
// order in which messages reach the injector, so a single-threaded chaos
// run replays exactly; every injected fault is counted and emitted as a
// tracer event (`fault.*`) for Chrome-trace visibility.

#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "net/message.h"

namespace mc::net {

/// A declarative, seeded chaos plan applied inside `Fabric::send`.
struct FaultPlan {
  std::uint64_t seed = 1;

  /// Per-message drop probability applied to every channel.
  double drop_prob = 0.0;
  /// Per-channel overrides of `drop_prob` (keyed by (src, dst)).
  std::map<std::pair<Endpoint, Endpoint>, double> channel_drop_prob;

  /// Per-message probability of delivering a second, independent copy.
  double dup_prob = 0.0;

  /// Per-message probability of a delay spike.  The spike multiplies the
  /// message's modeled latency by `delay_factor` and adds `delay_floor`
  /// (the floor keeps spikes meaningful under the zero-latency model).
  double delay_prob = 0.0;
  double delay_factor = 10.0;
  std::chrono::nanoseconds delay_floor{0};

  /// Partition window: while the fabric-wide send index is inside
  /// [from_send, until_send), every message between `group_a` and `group_b`
  /// (either direction) is dropped.  Indexing by send count rather than
  /// wall clock keeps windows deterministic and replayable.
  struct Partition {
    std::vector<Endpoint> group_a;
    std::vector<Endpoint> group_b;
    std::uint64_t from_send = 0;
    std::uint64_t until_send = 0;
  };
  std::vector<Partition> partitions;

  /// Crash-stop: after endpoint `e` has sent its Nth message, it is dead —
  /// everything it sends and everything sent to it is dropped.
  std::map<Endpoint, std::uint64_t> crash_after_sends;

  [[nodiscard]] bool trivial() const {
    return drop_prob == 0.0 && channel_drop_prob.empty() && dup_prob == 0.0 &&
           delay_prob == 0.0 && partitions.empty() && crash_after_sends.empty();
  }
};

/// Applies a FaultPlan to each message offered by the fabric.  Thread-safe;
/// the fabric consults it only when installed (one branch on a null pointer
/// otherwise — see Fabric::send).
class FaultInjector {
 public:
  struct Decision {
    bool drop = false;
    bool duplicate = false;
    std::chrono::nanoseconds extra_delay{0};
  };

  FaultInjector(FaultPlan plan, std::size_t endpoints);

  /// Decide the fate of `m`; counts and traces whatever it injects.
  /// `modeled_latency` is the latency the stamper would charge the message
  /// (delay spikes scale it).
  Decision decide(const Message& m, std::chrono::nanoseconds modeled_latency);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  // --- accounting (docs/FAULTS.md, docs/METRICS.md) ---
  [[nodiscard]] std::uint64_t dropped() const { return dropped_.get(); }
  [[nodiscard]] std::uint64_t duplicated() const { return duplicated_.get(); }
  [[nodiscard]] std::uint64_t delayed() const { return delayed_.get(); }
  [[nodiscard]] std::uint64_t partitioned() const { return partitioned_.get(); }
  [[nodiscard]] std::uint64_t crashed_drops() const { return crashed_.get(); }

  void add_metrics(MetricsSnapshot& snap) const;

 private:
  [[nodiscard]] double drop_prob_for(Endpoint src, Endpoint dst) const;
  [[nodiscard]] bool partitioned_now(Endpoint src, Endpoint dst,
                                     std::uint64_t send_index) const;

  const FaultPlan plan_;
  const std::size_t endpoints_;

  std::mutex mu_;
  Rng rng_;
  std::uint64_t send_index_ = 0;            // fabric-wide, monotone
  std::vector<std::uint64_t> sends_by_;     // per-endpoint send counts
  std::vector<bool> crashed_now_;           // crash-stop already triggered

  Counter dropped_, duplicated_, delayed_, partitioned_, crashed_;
};

}  // namespace mc::net
