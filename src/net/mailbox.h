// A multi-producer single-consumer mailbox with simulated-latency release.
//
// Messages become visible to the consumer only once their `deliver_at`
// stamp has passed; among deliverable messages the mailbox releases them in
// arrival order, which — combined with the fabric's per-channel monotone
// deliver_at stamping — yields the FIFO channels that Section 6 assumes.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <queue>

#include "net/message.h"

namespace mc::net {

class Mailbox {
 public:
  /// Enqueue a message (called by the fabric).  Never blocks.  Returns
  /// false — and discards the message — once the mailbox is closed, so the
  /// fabric can account for shutdown-raced sends instead of losing them
  /// silently (`net.send_after_close`).
  [[nodiscard]] bool push(Message m);

  /// Blocking receive.  Returns nullopt once the mailbox is closed *and*
  /// drained — pending messages are still delivered after close so that
  /// shutdown cannot drop protocol traffic.
  std::optional<Message> recv();

  /// Non-blocking receive of a deliverable message.
  std::optional<Message> try_recv();

  /// Wake all blocked receivers and reject future pushes.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t pending() const;

 private:
  struct Entry {
    Message msg;
    std::uint64_t arrival = 0;

    // Min-heap by (deliver_at, arrival): earliest deliverable first, FIFO
    // among equal stamps.
    bool operator>(const Entry& o) const {
      if (msg.deliver_at != o.msg.deliver_at) return msg.deliver_at > o.msg.deliver_at;
      return arrival > o.arrival;
    }
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t arrivals_ = 0;
  bool closed_ = false;
};

}  // namespace mc::net
