#include "net/mailbox.h"

namespace mc::net {

bool Mailbox::push(Message m) {
  {
    std::scoped_lock lk(mu_);
    if (closed_) return false;  // late traffic after shutdown is rejected
    heap_.push(Entry{std::move(m), arrivals_++});
  }
  cv_.notify_all();
  return true;
}

std::optional<Message> Mailbox::recv() {
  std::unique_lock lk(mu_);
  for (;;) {
    if (!heap_.empty()) {
      const SimTime due = heap_.top().msg.deliver_at;
      const SimTime now = std::chrono::steady_clock::now();
      if (due <= now) {
        Message out = heap_.top().msg;
        heap_.pop();
        return out;
      }
      // Wait until the head becomes deliverable or something earlier/closing
      // arrives.
      cv_.wait_until(lk, due);
      continue;
    }
    if (closed_) return std::nullopt;
    cv_.wait(lk);
  }
}

std::optional<Message> Mailbox::try_recv() {
  std::scoped_lock lk(mu_);
  if (heap_.empty()) return std::nullopt;
  if (heap_.top().msg.deliver_at > std::chrono::steady_clock::now()) return std::nullopt;
  Message out = heap_.top().msg;
  heap_.pop();
  return out;
}

void Mailbox::close() {
  {
    std::scoped_lock lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Mailbox::closed() const {
  std::scoped_lock lk(mu_);
  return closed_;
}

std::size_t Mailbox::pending() const {
  std::scoped_lock lk(mu_);
  return heap_.size();
}

}  // namespace mc::net
