#include "net/fabric.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "obs/tracer.h"

namespace mc::net {

Fabric::Fabric(std::size_t endpoints, LatencyModel latency, std::uint64_t seed)
    : stamper_(latency, endpoints, seed), channel_seq_(endpoints * endpoints, 0) {
  MC_CHECK(endpoints > 0);
  mailboxes_.reserve(endpoints);
  for (std::size_t i = 0; i < endpoints; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Mailbox& Fabric::mailbox(Endpoint e) {
  MC_CHECK(e < mailboxes_.size());
  return *mailboxes_[e];
}

void Fabric::send(Message m) {
  MC_CHECK(m.src < mailboxes_.size());
  MC_CHECK(m.dst < mailboxes_.size());
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::scoped_lock lk(stamp_mu_);
    m.channel_seq = channel_seq_[m.src * mailboxes_.size() + m.dst]++;
    m.deliver_at = stamper_.stamp(m, t0);
  }
  messages_.add();
  bytes_.add(m.wire_bytes());
  per_kind_[std::min<std::size_t>(m.kind, kKindBuckets - 1)].add();
  if (obs::trace_enabled()) {
    obs::trace_instant("send", "net", {"kind", m.kind}, {"dst", m.dst});
  }
  const Endpoint dst = m.dst;
  mailboxes_[dst]->push(std::move(m));
  send_ns_.record(std::chrono::steady_clock::now() - t0);
}

void Fabric::multicast(const Message& m, const std::vector<Endpoint>& dsts) {
  for (const Endpoint d : dsts) {
    Message copy = m;
    copy.dst = d;
    send(std::move(copy));
  }
}

void Fabric::shutdown() {
  for (auto& mb : mailboxes_) mb->close();
}

std::uint64_t Fabric::messages_of_kind(std::uint16_t kind) const {
  return per_kind_[std::min<std::size_t>(kind, kKindBuckets - 1)].get();
}

void Fabric::name_kind(std::uint16_t kind, std::string name) {
  MC_CHECK(kind < kKindBuckets);
  std::scoped_lock lk(names_mu_);
  kind_names_[kind] = std::move(name);
}

MetricsSnapshot Fabric::metrics() const {
  MetricsSnapshot snap;
  snap.values["net.messages"] = messages_.get();
  snap.values["net.bytes"] = bytes_.get();
  snap.add_histogram("net.send_ns", send_ns_);
  std::scoped_lock lk(names_mu_);
  for (std::size_t k = 0; k < kKindBuckets; ++k) {
    const std::uint64_t n = per_kind_[k].get();
    if (n == 0) continue;
    const std::string& name = kind_names_[k];
    snap.values["net.msg." + (name.empty() ? std::to_string(k) : name)] = n;
  }
  return snap;
}

}  // namespace mc::net
