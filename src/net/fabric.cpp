#include "net/fabric.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "net/reliable.h"
#include "obs/tracer.h"

namespace mc::net {

// Optional robustness layers.  Installed once under ext_mu_ and published
// through the fabric's single atomic pointer; the raw atomics inside let the
// hot path read the current layer without taking a lock.  Retired fault
// injectors stay alive (their counters feed metrics, and in-flight senders
// may still hold a pointer).
struct Fabric::Ext {
  std::vector<std::unique_ptr<FaultInjector>> fault_storage;
  std::atomic<FaultInjector*> faults{nullptr};

  std::unique_ptr<ReliableChannel> rel_storage;
  std::atomic<ReliableChannel*> reliable{nullptr};
};

Fabric::Fabric(std::size_t endpoints, LatencyModel latency, std::uint64_t seed)
    : stamper_(latency, endpoints, seed), channel_seq_(endpoints * endpoints, 0) {
  MC_CHECK(endpoints > 0);
  mailboxes_.reserve(endpoints);
  for (std::size_t i = 0; i < endpoints; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  // Registered here, not in enable_reliability(): a metrics key must never
  // degrade to a bare number ("net.msg.62") just because the reliability
  // layer was attached after the first ack went out, or never attached.
  name_kind(kRelAckKind, "rel_ack");
}

Fabric::~Fabric() = default;

Mailbox& Fabric::mailbox(Endpoint e) {
  MC_CHECK(e < mailboxes_.size());
  return *mailboxes_[e];
}

void Fabric::send(Message m) {
  Ext* ext = ext_.load(std::memory_order_acquire);
  if (ext != nullptr) {
    ReliableChannel* rel = ext->reliable.load(std::memory_order_acquire);
    if (rel != nullptr && m.kind != kRelAckKind) rel->on_send(m);
  }
  deliver(std::move(m), ext);
}

void Fabric::send_raw(Message m) {
  deliver(std::move(m), ext_.load(std::memory_order_acquire));
}

void Fabric::deliver(Message m, Ext* ext) {
  MC_CHECK(m.src < mailboxes_.size());
  MC_CHECK(m.dst < mailboxes_.size());
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::scoped_lock lk(stamp_mu_);
    m.channel_seq = channel_seq_[m.src * mailboxes_.size() + m.dst]++;
    m.deliver_at = stamper_.stamp(m, t0);
  }
  messages_.add();
  bytes_.add(m.wire_bytes());
  {
    const std::size_t bucket = std::min<std::size_t>(m.kind, kKindBuckets - 1);
    per_kind_[bucket].add();
    per_kind_bytes_[bucket].add(m.wire_bytes());
  }

  FaultInjector::Decision fate;
  if (ext != nullptr) {
    FaultInjector* faults = ext->faults.load(std::memory_order_acquire);
    if (faults != nullptr) {
      fate = faults->decide(
          m, std::chrono::duration_cast<std::chrono::nanoseconds>(m.deliver_at - t0));
    }
  }
  if (fate.drop) {
    send_ns_.record(std::chrono::steady_clock::now() - t0);
    return;
  }
  m.deliver_at += fate.extra_delay;

  if (obs::trace_enabled()) {
    // Stamp the flow correlation id (keep ids the reliability layer already
    // assigned to retransmitted copies) and open the flow; the consumer
    // emits the matching flow end (docs/TRACING.md).
    if (m.trace_id == 0) m.trace_id = obs::next_flow_id();
    obs::trace_instant("send", "net", {"kind", m.kind}, {"dst", m.dst});
    obs::trace_flow_start("msg", "net", m.trace_id, {"kind", m.kind});
  }
  const Endpoint dst = m.dst;
  if (fate.duplicate) {
    // The wire carried the message twice: account for the extra copy and
    // deliver it with identical stamps (the mailbox keeps arrival order).
    messages_.add();
    bytes_.add(m.wire_bytes());
    {
      const std::size_t bucket = std::min<std::size_t>(m.kind, kKindBuckets - 1);
      per_kind_[bucket].add();
      per_kind_bytes_[bucket].add(m.wire_bytes());
    }
    Message copy = m;
    if (!mailboxes_[dst]->push(std::move(copy))) send_after_close_.add();
  }
  if (!mailboxes_[dst]->push(std::move(m))) send_after_close_.add();
  send_ns_.record(std::chrono::steady_clock::now() - t0);
}

std::optional<Message> Fabric::recv(Endpoint e) {
  MC_CHECK(e < mailboxes_.size());
  Ext* ext = ext_.load(std::memory_order_acquire);
  if (ext != nullptr) {
    ReliableChannel* rel = ext->reliable.load(std::memory_order_acquire);
    if (rel != nullptr) return rel->recv(e);
  }
  return mailboxes_[e]->recv();
}

void Fabric::multicast(const Message& m, const std::vector<Endpoint>& dsts) {
  for (const Endpoint d : dsts) {
    Message copy = m;
    copy.dst = d;
    send(std::move(copy));
  }
}

void Fabric::shutdown() {
  // Stop retransmissions before closing mailboxes so the timer thread never
  // races shutdown with late pushes (they would be rejected and counted as
  // send_after_close, muddying the metric).
  Ext* ext = ext_.load(std::memory_order_acquire);
  if (ext != nullptr) {
    ReliableChannel* rel = ext->reliable.load(std::memory_order_acquire);
    if (rel != nullptr) rel->stop();
  }
  for (auto& mb : mailboxes_) mb->close();
}

void Fabric::inject_faults(const FaultPlan& plan) {
  std::scoped_lock lk(ext_mu_);
  if (!ext_storage_) {
    ext_storage_ = std::make_unique<Ext>();
    ext_.store(ext_storage_.get(), std::memory_order_release);
  }
  ext_storage_->fault_storage.push_back(
      std::make_unique<FaultInjector>(plan, endpoints()));
  ext_storage_->faults.store(ext_storage_->fault_storage.back().get(),
                             std::memory_order_release);
}

void Fabric::clear_faults() {
  std::scoped_lock lk(ext_mu_);
  if (ext_storage_) ext_storage_->faults.store(nullptr, std::memory_order_release);
}

void Fabric::enable_reliability(const ReliabilityConfig& cfg) {
  std::scoped_lock lk(ext_mu_);
  if (!ext_storage_) {
    ext_storage_ = std::make_unique<Ext>();
    ext_.store(ext_storage_.get(), std::memory_order_release);
  }
  MC_CHECK_MSG(ext_storage_->rel_storage == nullptr,
               "reliability can only be enabled once per fabric");
  name_kind(kRelAckKind, "rel_ack");
  ext_storage_->rel_storage =
      std::make_unique<ReliableChannel>(*this, endpoints(), cfg);
  ext_storage_->reliable.store(ext_storage_->rel_storage.get(),
                               std::memory_order_release);
}

bool Fabric::reliability_enabled() const {
  Ext* ext = ext_.load(std::memory_order_acquire);
  return ext != nullptr && ext->reliable.load(std::memory_order_acquire) != nullptr;
}

ReliableChannel* Fabric::reliable_channel() {
  Ext* ext = ext_.load(std::memory_order_acquire);
  return ext == nullptr ? nullptr : ext->reliable.load(std::memory_order_acquire);
}

std::uint64_t Fabric::messages_of_kind(std::uint16_t kind) const {
  return per_kind_[std::min<std::size_t>(kind, kKindBuckets - 1)].get();
}

std::uint64_t Fabric::bytes_of_kind(std::uint16_t kind) const {
  return per_kind_bytes_[std::min<std::size_t>(kind, kKindBuckets - 1)].get();
}

std::vector<std::size_t> Fabric::in_flight() const {
  std::vector<std::size_t> counts;
  counts.reserve(mailboxes_.size());
  for (const auto& mb : mailboxes_) counts.push_back(mb->pending());
  return counts;
}

void Fabric::name_kind(std::uint16_t kind, std::string name) {
  MC_CHECK(kind < kKindBuckets);
  std::scoped_lock lk(names_mu_);
  kind_names_[kind] = std::move(name);
}

MetricsSnapshot Fabric::metrics() const {
  MetricsSnapshot snap;
  snap.values["net.messages"] = messages_.get();
  snap.values["net.bytes"] = bytes_.get();
  snap.values["net.send_after_close"] = send_after_close_.get();
  snap.add_histogram("net.send_ns", send_ns_);
  {
    std::scoped_lock lk(names_mu_);
    for (std::size_t k = 0; k < kKindBuckets; ++k) {
      const std::uint64_t n = per_kind_[k].get();
      if (n == 0) continue;
      const std::string& name = kind_names_[k];
      const std::string label = name.empty() ? std::to_string(k) : name;
      snap.values["net.msg." + label] = n;
      snap.values["net.bytes." + label] = per_kind_bytes_[k].get();
    }
  }
  {
    std::scoped_lock lk(ext_mu_);
    if (ext_storage_) {
      // Retired injectors are reported too (later installs overwrite the
      // shared keys; chaos runs install one plan, so this is exact there).
      for (const auto& inj : ext_storage_->fault_storage) inj->add_metrics(snap);
      if (ext_storage_->rel_storage) ext_storage_->rel_storage->add_metrics(snap);
    }
  }
  return snap;
}

}  // namespace mc::net
