// The simulated message-passing fabric: a fixed set of endpoints connected
// by FIFO channels with configurable latency and full traffic accounting.
//
// This is the substitute for the workstation network underneath the Maya
// platform (Section 6): processes and managers are endpoints, each endpoint
// owns a mailbox, and every protocol byte is counted so benchmarks can
// report machine-independent costs.
//
// Two optional layers sandwich the ideal channel (both off by default, one
// branch on a null pointer when absent):
//   - a FaultInjector (net/fault.h) makes the channel lossy — seeded drops,
//     duplication, delay spikes, partitions, crash-stop endpoints;
//   - a ReliableChannel (net/reliable.h) rebuilds the paper's reliable-FIFO
//     assumption on top of the lossy channel with acks and retransmits.

#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "net/fault.h"
#include "net/latency.h"
#include "net/mailbox.h"
#include "net/message.h"

namespace mc::net {

class ReliableChannel;
struct ReliabilityConfig;

class Fabric {
 public:
  /// Up to this many distinct protocol message kinds are accounted
  /// separately (kinds at or above the cap share the last bucket).
  static constexpr std::size_t kKindBuckets = 64;

  Fabric(std::size_t endpoints, LatencyModel latency = LatencyModel::zero(),
         std::uint64_t seed = 1);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] std::size_t endpoints() const { return mailboxes_.size(); }

  [[nodiscard]] Mailbox& mailbox(Endpoint e);

  /// Send `m` from m.src to m.dst, stamping channel sequence and simulated
  /// delivery time.  Runs the message through the reliability layer and the
  /// fault plan when installed.  Thread-safe.
  void send(Message m);

  /// Send bypassing the reliability wrap (retransmissions and acks — they
  /// still face the fault plan and normal stamping/accounting).
  void send_raw(Message m);

  /// Receive the next message for endpoint `e`: the reliable in-order
  /// stream when reliability is enabled, the raw mailbox otherwise.  One
  /// consumer thread per endpoint.
  std::optional<Message> recv(Endpoint e);

  /// Send a copy of `m` from `src` to every endpoint in `dsts`.
  void multicast(const Message& m, const std::vector<Endpoint>& dsts);

  /// Close every mailbox (messages already in flight are still delivered)
  /// and stop the reliability layer's retransmit timer.
  void shutdown();

  // --- fault injection & reliability (docs/FAULTS.md) ---

  /// Install (or replace) a fault plan.  Runtime-togglable; do not call
  /// concurrently with in-flight sends you care about replaying.
  void inject_faults(const FaultPlan& plan);

  /// Stop injecting faults (the injector's counters survive for metrics).
  void clear_faults();

  /// Layer the ack/retransmit protocol over every subsequent send/recv.
  /// Enable once, before protocol traffic starts.
  void enable_reliability(const ReliabilityConfig& cfg);

  [[nodiscard]] bool reliability_enabled() const;
  [[nodiscard]] ReliableChannel* reliable_channel();

  // --- accounting ---

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_.get(); }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_.get(); }
  [[nodiscard]] std::uint64_t messages_of_kind(std::uint16_t kind) const;
  [[nodiscard]] std::uint64_t bytes_of_kind(std::uint16_t kind) const;

  /// Sends rejected because the destination mailbox had already been
  /// closed — shutdown races, visible instead of silent.
  [[nodiscard]] std::uint64_t sends_after_close() const {
    return send_after_close_.get();
  }

  /// Messages currently sitting in each endpoint's mailbox (diagnostics).
  [[nodiscard]] std::vector<std::size_t> in_flight() const;

  /// Latency of the send path itself (stamping + mailbox insertion,
  /// including contention on the stamping lock) — the fabric's hot path.
  [[nodiscard]] const LatencyHistogram& send_latency() const { return send_ns_; }

  /// Snapshot of fabric-level metrics, with per-kind counts labeled through
  /// `kind_name` (protocol layers install their kind names at startup).
  /// Includes fault and reliability counters when those layers exist.
  [[nodiscard]] MetricsSnapshot metrics() const;

  /// Register a human-readable name for a message kind (for metrics keys).
  void name_kind(std::uint16_t kind, std::string name);

 private:
  /// Optional layers, behind a single pointer so the hot path pays one
  /// branch when neither is installed.
  struct Ext;

  void deliver(Message m, Ext* ext);

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  std::mutex stamp_mu_;
  LatencyStamper stamper_;
  std::vector<std::uint64_t> channel_seq_;  // [src * n + dst]

  mutable std::mutex ext_mu_;           // guards installation, not the hot path
  std::unique_ptr<Ext> ext_storage_;
  std::atomic<Ext*> ext_{nullptr};

  Counter messages_;
  Counter bytes_;
  Counter send_after_close_;
  std::array<Counter, kKindBuckets> per_kind_;
  std::array<Counter, kKindBuckets> per_kind_bytes_;
  LatencyHistogram send_ns_;

  mutable std::mutex names_mu_;
  std::array<std::string, kKindBuckets> kind_names_;
};

}  // namespace mc::net
