// The simulated message-passing fabric: a fixed set of endpoints connected
// by FIFO channels with configurable latency and full traffic accounting.
//
// This is the substitute for the workstation network underneath the Maya
// platform (Section 6): processes and managers are endpoints, each endpoint
// owns a mailbox, and every protocol byte is counted so benchmarks can
// report machine-independent costs.

#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"
#include "net/latency.h"
#include "net/mailbox.h"
#include "net/message.h"

namespace mc::net {

class Fabric {
 public:
  /// Up to this many distinct protocol message kinds are accounted
  /// separately (kinds at or above the cap share the last bucket).
  static constexpr std::size_t kKindBuckets = 64;

  Fabric(std::size_t endpoints, LatencyModel latency = LatencyModel::zero(),
         std::uint64_t seed = 1);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] std::size_t endpoints() const { return mailboxes_.size(); }

  [[nodiscard]] Mailbox& mailbox(Endpoint e);

  /// Send `m` from m.src to m.dst, stamping channel sequence and simulated
  /// delivery time.  Thread-safe.
  void send(Message m);

  /// Send a copy of `m` from `src` to every endpoint in `dsts`.
  void multicast(const Message& m, const std::vector<Endpoint>& dsts);

  /// Close every mailbox (messages already in flight are still delivered).
  void shutdown();

  // --- accounting ---

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_.get(); }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_.get(); }
  [[nodiscard]] std::uint64_t messages_of_kind(std::uint16_t kind) const;

  /// Latency of the send path itself (stamping + mailbox insertion,
  /// including contention on the stamping lock) — the fabric's hot path.
  [[nodiscard]] const LatencyHistogram& send_latency() const { return send_ns_; }

  /// Snapshot of fabric-level metrics, with per-kind counts labeled through
  /// `kind_name` (protocol layers install their kind names at startup).
  [[nodiscard]] MetricsSnapshot metrics() const;

  /// Register a human-readable name for a message kind (for metrics keys).
  void name_kind(std::uint16_t kind, std::string name);

 private:
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  std::mutex stamp_mu_;
  LatencyStamper stamper_;
  std::vector<std::uint64_t> channel_seq_;  // [src * n + dst]

  Counter messages_;
  Counter bytes_;
  std::array<Counter, kKindBuckets> per_kind_;
  LatencyHistogram send_ns_;

  mutable std::mutex names_mu_;
  std::array<std::string, kKindBuckets> kind_names_;
};

}  // namespace mc::net
