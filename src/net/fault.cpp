#include "net/fault.h"

#include <algorithm>

#include "common/check.h"
#include "obs/tracer.h"

namespace mc::net {

FaultInjector::FaultInjector(FaultPlan plan, std::size_t endpoints)
    : plan_(std::move(plan)),
      endpoints_(endpoints),
      rng_(plan_.seed),
      sends_by_(endpoints, 0),
      crashed_now_(endpoints, false) {
  for (const auto& [channel, p] : plan_.channel_drop_prob) {
    MC_CHECK(channel.first < endpoints_ && channel.second < endpoints_);
    MC_CHECK(p >= 0.0 && p <= 1.0);
  }
  for (const auto& part : plan_.partitions) {
    for (const Endpoint e : part.group_a) MC_CHECK(e < endpoints_);
    for (const Endpoint e : part.group_b) MC_CHECK(e < endpoints_);
  }
  for (const auto& [e, n] : plan_.crash_after_sends) {
    (void)n;
    MC_CHECK(e < endpoints_);
  }
}

double FaultInjector::drop_prob_for(Endpoint src, Endpoint dst) const {
  const auto it = plan_.channel_drop_prob.find({src, dst});
  return it == plan_.channel_drop_prob.end() ? plan_.drop_prob : it->second;
}

bool FaultInjector::partitioned_now(Endpoint src, Endpoint dst,
                                    std::uint64_t send_index) const {
  for (const auto& part : plan_.partitions) {
    if (send_index < part.from_send || send_index >= part.until_send) continue;
    const bool src_a = std::find(part.group_a.begin(), part.group_a.end(), src) !=
                       part.group_a.end();
    const bool src_b = std::find(part.group_b.begin(), part.group_b.end(), src) !=
                       part.group_b.end();
    const bool dst_a = std::find(part.group_a.begin(), part.group_a.end(), dst) !=
                       part.group_a.end();
    const bool dst_b = std::find(part.group_b.begin(), part.group_b.end(), dst) !=
                       part.group_b.end();
    if ((src_a && dst_b) || (src_b && dst_a)) return true;
  }
  return false;
}

FaultInjector::Decision FaultInjector::decide(const Message& m,
                                              std::chrono::nanoseconds modeled_latency) {
  Decision d;
  std::scoped_lock lk(mu_);
  const std::uint64_t index = send_index_++;
  const std::uint64_t nth_send = ++sends_by_[m.src];

  if (const auto crash = plan_.crash_after_sends.find(m.src);
      crash != plan_.crash_after_sends.end() && nth_send > crash->second) {
    crashed_now_[m.src] = true;
  }
  if (crashed_now_[m.src] || crashed_now_[m.dst]) {
    crashed_.add();
    if (obs::trace_enabled()) {
      obs::trace_instant("fault.crash_drop", "fault", {"src", m.src}, {"dst", m.dst});
    }
    d.drop = true;
    return d;
  }

  if (partitioned_now(m.src, m.dst, index)) {
    partitioned_.add();
    if (obs::trace_enabled()) {
      obs::trace_instant("fault.partition_drop", "fault", {"src", m.src}, {"dst", m.dst});
    }
    d.drop = true;
    return d;
  }

  if (rng_.chance(drop_prob_for(m.src, m.dst))) {
    dropped_.add();
    if (obs::trace_enabled()) {
      obs::trace_instant("fault.drop", "fault", {"kind", m.kind}, {"dst", m.dst});
    }
    d.drop = true;
    return d;
  }

  if (plan_.dup_prob > 0.0 && rng_.chance(plan_.dup_prob)) {
    duplicated_.add();
    if (obs::trace_enabled()) {
      obs::trace_instant("fault.duplicate", "fault", {"kind", m.kind}, {"dst", m.dst});
    }
    d.duplicate = true;
  }

  if (plan_.delay_prob > 0.0 && rng_.chance(plan_.delay_prob)) {
    delayed_.add();
    const auto scaled = modeled_latency * static_cast<std::int64_t>(plan_.delay_factor);
    d.extra_delay = (scaled > modeled_latency ? scaled - modeled_latency
                                              : std::chrono::nanoseconds{0}) +
                    plan_.delay_floor;
    if (obs::trace_enabled()) {
      obs::trace_instant("fault.delay", "fault", {"kind", m.kind},
                         {"extra_ns", static_cast<std::uint64_t>(d.extra_delay.count())});
    }
  }
  return d;
}

void FaultInjector::add_metrics(MetricsSnapshot& snap) const {
  snap.values["net.fault.dropped"] = dropped_.get();
  snap.values["net.fault.duplicated"] = duplicated_.get();
  snap.values["net.fault.delayed"] = delayed_.get();
  snap.values["net.fault.partitioned"] = partitioned_.get();
  snap.values["net.fault.crashed"] = crashed_.get();
}

}  // namespace mc::net
