#include "net/latency.h"

#include <algorithm>

#include "common/check.h"

namespace mc::net {

LatencyModel LatencyModel::lan() {
  using namespace std::chrono_literals;
  return LatencyModel{.base = 30us, .per_word = 40ns, .jitter = 10us};
}

LatencyModel LatencyModel::fast() {
  using namespace std::chrono_literals;
  return LatencyModel{.base = 2us, .per_word = 5ns, .jitter = 500ns};
}

LatencyStamper::LatencyStamper(LatencyModel model, std::size_t endpoints, std::uint64_t seed)
    : model_(model), endpoints_(endpoints), rng_state_(seed | 1),
      last_(endpoints * endpoints) {}

SimTime LatencyStamper::stamp(const Message& m, SimTime now) {
  if (model_.is_zero()) return now;
  auto delay = model_.base + model_.per_word * static_cast<std::int64_t>(m.payload.size());
  if (model_.jitter.count() > 0) {
    // SplitMix64 step, inlined to avoid a dependency cycle with common/rng.
    std::uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    delay += std::chrono::nanoseconds(
        static_cast<std::int64_t>(z % static_cast<std::uint64_t>(model_.jitter.count() + 1)));
  }
  MC_CHECK(m.src < endpoints_ && m.dst < endpoints_);
  SimTime& channel_last = last_[m.src * endpoints_ + m.dst];
  // Clamp to keep the channel FIFO: a later send must never arrive earlier.
  const SimTime candidate = now + delay;
  const SimTime stamped = std::max(candidate, channel_last + std::chrono::nanoseconds(1));
  channel_last = stamped;
  return stamped;
}

}  // namespace mc::net
