// The sequencer process of the SC baseline: a total-order broadcast point.
//
// Every write is forwarded to the sequencer, stamped with a global sequence
// number, and re-broadcast to every replica (including the writer).
// Combined with in-order application and writer-blocks-until-self-applied
// (sc_node.h), this is the classic fast-read/slow-write implementation of
// sequential consistency — the strong baseline the paper's weak models are
// measured against.
//
// The sequencer also serves barriers: a release carries the global sequence
// watermark at the moment the last process arrived, which every process
// must apply before continuing — all pre-barrier writes are then visible
// everywhere.

#pragma once

#include <map>
#include <thread>
#include <vector>

#include "baseline/wire.h"
#include "net/fabric.h"

namespace mc::baseline {

class Sequencer {
 public:
  Sequencer(net::Fabric& fabric, net::Endpoint self, std::size_t num_procs);
  ~Sequencer();

  Sequencer(const Sequencer&) = delete;
  Sequencer& operator=(const Sequencer&) = delete;

  void join();

 private:
  void run();

  net::Fabric& fabric_;
  net::Endpoint self_;
  std::size_t num_procs_;
  std::uint64_t next_seq_ = 0;
  std::map<std::pair<BarrierId, std::uint64_t>, std::size_t> arrivals_;
  std::thread thread_;
};

}  // namespace mc::baseline
