// Hybrid consistency baseline (Attiya & Friedman, STOC '92) — the closest
// relative the paper compares itself against (Section 2): operations are
// labeled *weak* or *strong*; all processes observe the same order between
// any two strong operations and between a strong and a weak operation of
// one process, while adjacent weak operations may be observed in different
// orders.
//
// Implementation (the standard construction):
//   - weak writes broadcast over FIFO channels and apply on arrival; weak
//     reads are local — the PRAM fast path;
//   - a strong operation first *flushes* (probe + acknowledgements ensure
//     every peer has applied this process's earlier weak writes), then
//     takes a sequencer round trip: strong writes are applied everywhere in
//     global order, strong reads block until the issuer has applied the
//     global prefix assigned to them.
//
// The paper's point (Section 2): mixed consistency replaces strong
// *operations* with explicit synchronization *primitives* (locks, barriers,
// awaits).  bench_sync's C10 experiment quantifies that trade on a
// producer/consumer handoff.

#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "net/fabric.h"
#include "net/fault.h"
#include "net/reliable.h"

namespace mc::baseline {

enum HybridMsgKind : std::uint16_t {
  /// Weak write broadcast.  a=var, b=value, c=writer seq.
  kHybridWeak = 48,
  /// Process -> sequencer strong write.  a=var, b=value, c=writer seq.
  kHybridStrongWrite = 49,
  /// Sequencer -> everyone.  a=var, b=value, c=writer seq, d=global seq;
  /// payload = {writer}.
  kHybridOrdered = 50,
  /// Strong-operation flush probe / ack.  a=token.
  kHybridFlush = 51,
  kHybridFlushAck = 52,
  /// Process -> sequencer strong-read ticket request.  a=token.
  kHybridReadTicket = 53,
  /// Sequencer -> requester.  a=token, b=global seq watermark.
  kHybridTicket = 54,
};

struct HybridConfig {
  std::size_t num_procs = 2;
  std::size_t num_vars = 64;
  net::LatencyModel latency = net::LatencyModel::zero();
  std::uint64_t seed = 1;
  /// Robustness layers, mirroring dsm::Config (docs/FAULTS.md): reliability
  /// first, then the fault plan, so cross-model comparisons can run all
  /// three systems on the same faulty fabric.
  bool reliable = false;
  net::ReliabilityConfig reliability;
  std::optional<net::FaultPlan> faults;
};

struct HybridStats {
  Counter weak_reads, weak_writes, strong_reads, strong_writes;
  LatencyHistogram strong_blocked;
};

class HybridNode {
 public:
  HybridNode(const HybridConfig& cfg, ProcId self, net::Fabric& fabric,
             net::Endpoint sequencer);
  ~HybridNode();

  HybridNode(const HybridNode&) = delete;
  HybridNode& operator=(const HybridNode&) = delete;

  [[nodiscard]] ProcId id() const { return self_; }

  [[nodiscard]] Value weak_read(VarId x);
  void weak_write(VarId x, Value v);
  [[nodiscard]] Value strong_read(VarId x);
  void strong_write(VarId x, Value v);

  [[nodiscard]] const HybridStats& stats() const { return stats_; }

  void stop();

 private:
  void run_delivery();
  /// Ensure every peer has applied this process's weak prefix (the
  /// weak-before-strong ordering guarantee).
  void flush(std::unique_lock<std::mutex>& lk);

  const HybridConfig& cfg_;
  const ProcId self_;
  net::Fabric& fabric_;
  const net::Endpoint sequencer_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Value> store_;
  std::uint64_t applied_global_ = 0;  // strong writes applied, in order
  SeqNo issued_strong_ = 0;
  SeqNo applied_own_strong_ = 0;
  std::uint64_t token_counter_ = 0;
  std::map<std::uint64_t, std::size_t> flush_acks_;
  std::map<std::uint64_t, std::uint64_t> read_tickets_;

  HybridStats stats_;
  std::thread delivery_;
};

/// The sequencer + node bundle, mirroring ScSystem.
class HybridSystem {
 public:
  explicit HybridSystem(HybridConfig cfg);
  ~HybridSystem();

  HybridSystem(const HybridSystem&) = delete;
  HybridSystem& operator=(const HybridSystem&) = delete;

  [[nodiscard]] HybridNode& node(ProcId p);
  void run(const std::function<void(HybridNode&, ProcId)>& body);
  [[nodiscard]] MetricsSnapshot metrics() const;
  void shutdown();

 private:
  void run_sequencer();

  HybridConfig cfg_;
  net::Fabric fabric_;
  std::vector<std::unique_ptr<HybridNode>> nodes_;
  std::uint64_t next_seq_ = 0;
  std::thread sequencer_;
  bool down_ = false;
};

}  // namespace mc::baseline
