#include "baseline/sequencer.h"

#include "common/check.h"
#include "obs/tracer.h"

namespace mc::baseline {

Sequencer::Sequencer(net::Fabric& fabric, net::Endpoint self, std::size_t num_procs)
    : fabric_(fabric), self_(self), num_procs_(num_procs) {
  thread_ = std::thread([this] { run(); });
}

Sequencer::~Sequencer() { join(); }

void Sequencer::join() {
  if (thread_.joinable()) thread_.join();
}

void Sequencer::run() {
  std::vector<net::Endpoint> everyone(num_procs_);
  for (net::Endpoint e = 0; e < num_procs_; ++e) everyone[e] = e;

  while (auto m = fabric_.recv(self_)) {
    obs::TraceSpan span("deliver", "net", {"kind", m->kind}, {"src", m->src});
    obs::trace_flow_end("msg", "net", m->trace_id);
    switch (m->kind) {
      case kScWrite: {
        net::Message ordered;
        ordered.src = self_;
        ordered.kind = kScOrdered;
        ordered.a = m->a;
        ordered.b = m->b;
        ordered.c = m->c;
        ordered.d = ++next_seq_;
        ordered.payload = {m->src};
        fabric_.multicast(ordered, everyone);
        break;
      }
      case kScBarrierArrive: {
        const auto key = std::make_pair(static_cast<BarrierId>(m->a), m->b);
        if (++arrivals_[key] == num_procs_) {
          arrivals_.erase(key);
          net::Message release;
          release.src = self_;
          release.kind = kScBarrierRelease;
          release.a = m->a;
          release.b = m->b;
          release.c = next_seq_;  // watermark: all writes sequenced so far
          fabric_.multicast(release, everyone);
        }
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace mc::baseline
