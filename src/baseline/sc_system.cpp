#include "baseline/sc_system.h"

#include <chrono>

#include "common/check.h"
#include "obs/tracer.h"

namespace mc::baseline {

using namespace std::chrono_literals;

namespace {
constexpr auto kLivenessDeadline = 30s;

template <typename Pred>
void wait_or_die(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
                 const char* what, Pred pred) {
  if (!cv.wait_for(lk, kLivenessDeadline, pred)) {
    MC_CHECK_MSG(false, what);
  }
}
}  // namespace

ScNode::ScNode(const ScConfig& cfg, ProcId self, net::Fabric& fabric,
               net::Endpoint sequencer)
    : cfg_(cfg), self_(self), fabric_(fabric), sequencer_(sequencer),
      store_(cfg.num_vars) {
  delivery_ = std::thread([this] { run_delivery(); });
}

ScNode::~ScNode() { stop(); }

void ScNode::stop() {
  if (delivery_.joinable()) delivery_.join();
}

void ScNode::run_delivery() {
  while (auto m = fabric_.recv(self_)) {
    obs::TraceSpan span("deliver", "net", {"kind", m->kind}, {"src", m->src});
    obs::trace_flow_end("msg", "net", m->trace_id);
    switch (m->kind) {
      case kScOrdered: {
        std::unique_lock lk(mu_);
        // The sequencer multicasts in sequence order over FIFO channels, so
        // ordered writes arrive — and are applied — in global order.
        MC_CHECK_MSG(m->d == applied_seq_ + 1, "global order gap at a replica");
        applied_seq_ = m->d;
        const auto writer = static_cast<ProcId>(m->payload.at(0));
        Slot& s = store_[static_cast<VarId>(m->a)];
        s.value = m->b;
        s.last = WriteId{writer, m->c};
        if (writer == self_) ++applied_own_writes_;
        lk.unlock();
        cv_.notify_all();
        break;
      }
      case kScBarrierRelease: {
        {
          std::scoped_lock lk(mu_);
          barrier_release_[{static_cast<BarrierId>(m->a), m->b}] = m->c;
        }
        cv_.notify_all();
        break;
      }
      default:
        break;
    }
  }
}

Value ScNode::read(VarId x) {
  stats_.reads.add();
  std::scoped_lock lk(mu_);
  MC_CHECK(x < store_.size());
  const Slot& s = store_[x];
  if (cfg_.record_trace) {
    history::Operation op;
    op.kind = history::OpKind::kRead;
    op.proc = self_;
    op.var = x;
    op.value = s.value;
    op.mode = ReadMode::kCausal;  // label is irrelevant for the SC checker
    op.write_id = s.last;
    trace_.push_back(op);
  }
  return s.value;
}

void ScNode::write(VarId x, Value v) {
  stats_.writes.add();
  Stopwatch blocked;
  SeqNo my_seq = 0;
  {
    std::scoped_lock lk(mu_);
    my_seq = ++issued_writes_;
  }
  net::Message m;
  m.src = self_;
  m.dst = sequencer_;
  m.kind = kScWrite;
  m.a = x;
  m.b = v;
  m.c = my_seq;
  fabric_.send(std::move(m));

  std::unique_lock lk(mu_);
  wait_or_die(cv_, lk, "SC write blocked past the liveness deadline",
              [&] { return applied_own_writes_ >= my_seq; });
  stats_.write_blocked.record(blocked.elapsed());
  if (cfg_.record_trace) {
    history::Operation op;
    op.kind = history::OpKind::kWrite;
    op.proc = self_;
    op.var = x;
    op.value = v;
    op.write_id = WriteId{self_, my_seq};
    trace_.push_back(op);
  }
}

void ScNode::await(VarId x, Value v) {
  stats_.awaits.add();
  Stopwatch blocked;
  std::unique_lock lk(mu_);
  wait_or_die(cv_, lk, "SC await blocked past the liveness deadline",
              [&] { return store_[x].value == v; });
  stats_.await_blocked.record(blocked.elapsed());
  if (cfg_.record_trace) {
    history::Operation op;
    op.kind = history::OpKind::kAwait;
    op.proc = self_;
    op.var = x;
    op.value = v;
    op.write_id = store_[x].last;
    trace_.push_back(op);
  }
}

void ScNode::barrier(BarrierId b) {
  stats_.barriers.add();
  Stopwatch blocked;
  std::uint64_t epoch = 0;
  {
    std::scoped_lock lk(mu_);
    epoch = barrier_epoch_[b]++;
  }
  net::Message arrive;
  arrive.src = self_;
  arrive.dst = sequencer_;
  arrive.kind = kScBarrierArrive;
  arrive.a = b;
  arrive.b = epoch;
  fabric_.send(std::move(arrive));

  std::unique_lock lk(mu_);
  const auto key = std::make_pair(b, epoch);
  wait_or_die(cv_, lk, "SC barrier blocked past the liveness deadline", [&] {
    auto it = barrier_release_.find(key);
    return it != barrier_release_.end() && applied_seq_ >= it->second;
  });
  barrier_release_.erase(key);
  stats_.barrier_blocked.record(blocked.elapsed());
  if (cfg_.record_trace) {
    history::Operation op;
    op.kind = history::OpKind::kBarrier;
    op.proc = self_;
    op.barrier = b;
    op.barrier_epoch = static_cast<std::uint32_t>(epoch);
    trace_.push_back(op);
  }
}

ScSystem::ScSystem(ScConfig cfg)
    : cfg_(std::move(cfg)), fabric_(cfg_.num_procs + 1, cfg_.latency, cfg_.seed) {
  register_kind_names(fabric_);
  // Same layering as dsm::MixedSystem: reliability first so every protocol
  // message is sequenced from the start, then the lossy fault plan.
  if (cfg_.reliable) fabric_.enable_reliability(cfg_.reliability);
  if (cfg_.faults.has_value()) fabric_.inject_faults(*cfg_.faults);
  const auto seq_ep = static_cast<net::Endpoint>(cfg_.num_procs);
  sequencer_ = std::make_unique<Sequencer>(fabric_, seq_ep, cfg_.num_procs);
  nodes_.reserve(cfg_.num_procs);
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    nodes_.push_back(std::make_unique<ScNode>(cfg_, p, fabric_, seq_ep));
  }
}

ScSystem::~ScSystem() { shutdown(); }

ScNode& ScSystem::node(ProcId p) {
  MC_CHECK(p < nodes_.size());
  return *nodes_[p];
}

void ScSystem::run(const std::function<void(ScNode&, ProcId)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(cfg_.num_procs);
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    threads.emplace_back([this, &body, p] {
      // Application-lane marker for the critical-path analyzer.
      obs::trace_instant("proc.start", "dsm", {"proc", p});
      body(*nodes_[p], p);
      obs::trace_instant("proc.end", "dsm", {"proc", p});
    });
  }
  for (auto& t : threads) t.join();
}

history::History ScSystem::collect_history() const {
  history::History h(cfg_.num_procs);
  for (const auto& n : nodes_) {
    for (const history::Operation& op : n->trace()) h.add(op);
  }
  return h;
}

MetricsSnapshot ScSystem::metrics() const {
  MetricsSnapshot snap = fabric_.metrics();
  std::uint64_t blocked = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  for (const auto& n : nodes_) {
    blocked += n->stats().write_blocked.sum_ns() + n->stats().await_blocked.sum_ns() +
               n->stats().barrier_blocked.sum_ns();
    reads += n->stats().reads.get();
    writes += n->stats().writes.get();
  }
  snap.values["sc.blocked_ns"] = blocked;
  snap.values["sc.reads"] = reads;
  snap.values["sc.writes"] = writes;
  return snap;
}

void ScSystem::shutdown() {
  if (down_) return;
  down_ = true;
  fabric_.shutdown();
  sequencer_->join();
  for (auto& n : nodes_) n->stop();
}

}  // namespace mc::baseline
