// Wire protocol of the sequentially consistent baseline memory.

#pragma once

#include <cstdint>

#include "net/fabric.h"

namespace mc::baseline {

enum MsgKind : std::uint16_t {
  /// Process -> sequencer.  a=var, b=value, c=writer's local write seq.
  kScWrite = 32,
  /// Sequencer -> everyone.  a=var, b=value, c=writer's local write seq,
  /// d=global sequence number; src field of the original writer is carried
  /// in payload[0].
  kScOrdered = 33,
  /// Process -> sequencer.  a=barrier object, b=epoch.
  kScBarrierArrive = 34,
  /// Sequencer -> everyone.  a=barrier object, b=epoch, c=global sequence
  /// watermark all processes must apply before proceeding.
  kScBarrierRelease = 35,
};

inline void register_kind_names(net::Fabric& fabric) {
  fabric.name_kind(kScWrite, "sc_write");
  fabric.name_kind(kScOrdered, "sc_ordered");
  fabric.name_kind(kScBarrierArrive, "sc_barrier_arrive");
  fabric.name_kind(kScBarrierRelease, "sc_barrier_release");
}

}  // namespace mc::baseline
