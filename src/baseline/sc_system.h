// Sequentially consistent DSM baseline on the simulated fabric.
//
// Reads are local and instantaneous; writes are totally ordered through the
// sequencer and block until the writer has applied its own write (which, by
// in-order application, implies it has applied every earlier write in the
// global order).  This realizes Definition 1 and exposes the latency/
// message costs that motivate the paper's weak models (Section 1).

#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "baseline/sequencer.h"
#include "common/stats.h"
#include "common/types.h"
#include "history/history.h"
#include "net/fabric.h"
#include "net/fault.h"
#include "net/reliable.h"

namespace mc::baseline {

struct ScConfig {
  std::size_t num_procs = 2;
  std::size_t num_vars = 64;
  net::LatencyModel latency = net::LatencyModel::zero();
  std::uint64_t seed = 1;
  bool record_trace = false;
  /// Robustness layers, mirroring dsm::Config (docs/FAULTS.md): reliability
  /// is installed before the fault plan so every protocol message is
  /// sequenced before the channel turns lossy.  Cross-model comparisons can
  /// then run all three systems on the same faulty fabric.
  bool reliable = false;
  net::ReliabilityConfig reliability;
  std::optional<net::FaultPlan> faults;
};

struct ScStats {
  Counter reads, writes, awaits, barriers;
  LatencyHistogram write_blocked, await_blocked, barrier_blocked;
};

class ScNode {
 public:
  ScNode(const ScConfig& cfg, ProcId self, net::Fabric& fabric, net::Endpoint sequencer);
  ~ScNode();

  ScNode(const ScNode&) = delete;
  ScNode& operator=(const ScNode&) = delete;

  [[nodiscard]] ProcId id() const { return self_; }

  [[nodiscard]] Value read(VarId x);
  void write(VarId x, Value v);
  void await(VarId x, Value v);
  void barrier(BarrierId b = 0);

  [[nodiscard]] double read_double(VarId x) { return double_of(read(x)); }
  void write_double(VarId x, double d) { write(x, value_of(d)); }
  [[nodiscard]] std::int64_t read_int(VarId x) { return int_of(read(x)); }
  void write_int(VarId x, std::int64_t i) { write(x, value_of(i)); }
  void await_int(VarId x, std::int64_t i) { await(x, value_of(i)); }

  [[nodiscard]] const ScStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<history::Operation>& trace() const { return trace_; }

  void stop();

 private:
  void run_delivery();

  const ScConfig& cfg_;
  const ProcId self_;
  net::Fabric& fabric_;
  const net::Endpoint sequencer_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  struct Slot {
    Value value = 0;
    WriteId last = kInitialWrite;
  };
  std::vector<Slot> store_;
  std::uint64_t applied_seq_ = 0;      // highest applied global sequence
  SeqNo issued_writes_ = 0;            // local writes sent to the sequencer
  SeqNo applied_own_writes_ = 0;       // local writes already applied
  std::map<BarrierId, std::uint64_t> barrier_epoch_;
  std::map<std::pair<BarrierId, std::uint64_t>, std::uint64_t> barrier_release_;

  std::vector<history::Operation> trace_;
  ScStats stats_;
  std::thread delivery_;
};

class ScSystem {
 public:
  explicit ScSystem(ScConfig cfg);
  ~ScSystem();

  ScSystem(const ScSystem&) = delete;
  ScSystem& operator=(const ScSystem&) = delete;

  [[nodiscard]] const ScConfig& config() const { return cfg_; }
  [[nodiscard]] ScNode& node(ProcId p);
  [[nodiscard]] net::Fabric& fabric() { return fabric_; }

  void run(const std::function<void(ScNode&, ProcId)>& body);

  [[nodiscard]] history::History collect_history() const;
  [[nodiscard]] MetricsSnapshot metrics() const;

  void shutdown();

 private:
  ScConfig cfg_;
  net::Fabric fabric_;
  std::unique_ptr<Sequencer> sequencer_;
  std::vector<std::unique_ptr<ScNode>> nodes_;
  bool down_ = false;
};

}  // namespace mc::baseline
