#include "baseline/hybrid_system.h"

#include <chrono>

#include "common/check.h"
#include "obs/tracer.h"

namespace mc::baseline {

using namespace std::chrono_literals;

namespace {
constexpr auto kLivenessDeadline = 30s;

template <typename Pred>
void wait_or_die(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
                 const char* what, Pred pred) {
  if (!cv.wait_for(lk, kLivenessDeadline, pred)) {
    MC_CHECK_MSG(false, what);
  }
}

void register_hybrid_kind_names(net::Fabric& fabric) {
  fabric.name_kind(kHybridWeak, "hy_weak");
  fabric.name_kind(kHybridStrongWrite, "hy_strong_write");
  fabric.name_kind(kHybridOrdered, "hy_ordered");
  fabric.name_kind(kHybridFlush, "hy_flush");
  fabric.name_kind(kHybridFlushAck, "hy_flush_ack");
  fabric.name_kind(kHybridReadTicket, "hy_read_ticket");
  fabric.name_kind(kHybridTicket, "hy_ticket");
}
}  // namespace

HybridNode::HybridNode(const HybridConfig& cfg, ProcId self, net::Fabric& fabric,
                       net::Endpoint sequencer)
    : cfg_(cfg), self_(self), fabric_(fabric), sequencer_(sequencer),
      store_(cfg.num_vars, 0) {
  delivery_ = std::thread([this] { run_delivery(); });
}

HybridNode::~HybridNode() { stop(); }

void HybridNode::stop() {
  if (delivery_.joinable()) delivery_.join();
}

void HybridNode::run_delivery() {
  while (auto m = fabric_.recv(self_)) {
    obs::TraceSpan span("deliver", "net", {"kind", m->kind}, {"src", m->src});
    obs::trace_flow_end("msg", "net", m->trace_id);
    switch (m->kind) {
      case kHybridWeak: {
        {
          std::scoped_lock lk(mu_);
          store_[static_cast<VarId>(m->a)] = m->b;
        }
        cv_.notify_all();
        break;
      }
      case kHybridOrdered: {
        {
          std::scoped_lock lk(mu_);
          MC_CHECK_MSG(m->d == applied_global_ + 1, "strong order gap at a replica");
          applied_global_ = m->d;
          store_[static_cast<VarId>(m->a)] = m->b;
          if (static_cast<ProcId>(m->payload.at(0)) == self_) ++applied_own_strong_;
        }
        cv_.notify_all();
        break;
      }
      case kHybridFlush: {
        // FIFO channels: by the time the probe arrives, every earlier weak
        // write from the prober has been applied here.
        net::Message ack;
        ack.src = self_;
        ack.dst = m->src;
        ack.kind = kHybridFlushAck;
        ack.a = m->a;
        fabric_.send(std::move(ack));
        break;
      }
      case kHybridFlushAck: {
        {
          std::scoped_lock lk(mu_);
          ++flush_acks_[m->a];
        }
        cv_.notify_all();
        break;
      }
      case kHybridTicket: {
        {
          std::scoped_lock lk(mu_);
          read_tickets_[m->a] = m->b;
        }
        cv_.notify_all();
        break;
      }
      default:
        break;
    }
  }
}

Value HybridNode::weak_read(VarId x) {
  stats_.weak_reads.add();
  std::scoped_lock lk(mu_);
  MC_CHECK(x < store_.size());
  return store_[x];
}

void HybridNode::weak_write(VarId x, Value v) {
  stats_.weak_writes.add();
  std::scoped_lock lk(mu_);
  MC_CHECK(x < store_.size());
  store_[x] = v;
  net::Message m;
  m.src = self_;
  m.kind = kHybridWeak;
  m.a = x;
  m.b = v;
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    if (p == self_) continue;
    net::Message copy = m;
    copy.dst = p;
    fabric_.send(std::move(copy));
  }
}

void HybridNode::flush(std::unique_lock<std::mutex>& lk) {
  if (cfg_.num_procs <= 1) return;
  const std::uint64_t token = ++token_counter_;
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    if (p == self_) continue;
    net::Message probe;
    probe.src = self_;
    probe.dst = p;
    probe.kind = kHybridFlush;
    probe.a = token;
    fabric_.send(std::move(probe));
  }
  wait_or_die(cv_, lk, "hybrid flush blocked past the liveness deadline",
              [&] { return flush_acks_[token] == cfg_.num_procs - 1; });
  flush_acks_.erase(token);
}

void HybridNode::strong_write(VarId x, Value v) {
  stats_.strong_writes.add();
  Stopwatch blocked;
  std::unique_lock lk(mu_);
  flush(lk);
  const SeqNo my_seq = ++issued_strong_;
  net::Message m;
  m.src = self_;
  m.dst = sequencer_;
  m.kind = kHybridStrongWrite;
  m.a = x;
  m.b = v;
  m.c = my_seq;
  fabric_.send(std::move(m));
  wait_or_die(cv_, lk, "hybrid strong write blocked past the liveness deadline",
              [&] { return applied_own_strong_ >= my_seq; });
  stats_.strong_blocked.record(blocked.elapsed());
}

Value HybridNode::strong_read(VarId x) {
  stats_.strong_reads.add();
  Stopwatch blocked;
  std::unique_lock lk(mu_);
  flush(lk);
  const std::uint64_t token = ++token_counter_;
  net::Message m;
  m.src = self_;
  m.dst = sequencer_;
  m.kind = kHybridReadTicket;
  m.a = token;
  fabric_.send(std::move(m));
  wait_or_die(cv_, lk, "hybrid strong read blocked past the liveness deadline", [&] {
    auto it = read_tickets_.find(token);
    return it != read_tickets_.end() && applied_global_ >= it->second;
  });
  read_tickets_.erase(token);
  stats_.strong_blocked.record(blocked.elapsed());
  return store_[x];
}

HybridSystem::HybridSystem(HybridConfig cfg)
    : cfg_(std::move(cfg)), fabric_(cfg_.num_procs + 1, cfg_.latency, cfg_.seed) {
  register_hybrid_kind_names(fabric_);
  // Same layering as dsm::MixedSystem: reliability first so every protocol
  // message is sequenced from the start, then the lossy fault plan.
  if (cfg_.reliable) fabric_.enable_reliability(cfg_.reliability);
  if (cfg_.faults.has_value()) fabric_.inject_faults(*cfg_.faults);
  const auto seq_ep = static_cast<net::Endpoint>(cfg_.num_procs);
  nodes_.reserve(cfg_.num_procs);
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    nodes_.push_back(std::make_unique<HybridNode>(cfg_, p, fabric_, seq_ep));
  }
  sequencer_ = std::thread([this] { run_sequencer(); });
}

HybridSystem::~HybridSystem() { shutdown(); }

void HybridSystem::run_sequencer() {
  const auto seq_ep = static_cast<net::Endpoint>(cfg_.num_procs);
  std::vector<net::Endpoint> everyone(cfg_.num_procs);
  for (net::Endpoint e = 0; e < cfg_.num_procs; ++e) everyone[e] = e;
  while (auto m = fabric_.recv(seq_ep)) {
    obs::TraceSpan span("deliver", "net", {"kind", m->kind}, {"src", m->src});
    obs::trace_flow_end("msg", "net", m->trace_id);
    switch (m->kind) {
      case kHybridStrongWrite: {
        net::Message ordered;
        ordered.src = seq_ep;
        ordered.kind = kHybridOrdered;
        ordered.a = m->a;
        ordered.b = m->b;
        ordered.c = m->c;
        ordered.d = ++next_seq_;
        ordered.payload = {m->src};
        fabric_.multicast(ordered, everyone);
        break;
      }
      case kHybridReadTicket: {
        net::Message ticket;
        ticket.src = seq_ep;
        ticket.dst = m->src;
        ticket.kind = kHybridTicket;
        ticket.a = m->a;
        ticket.b = next_seq_;  // the strong prefix the reader must apply
        fabric_.send(std::move(ticket));
        break;
      }
      default:
        break;
    }
  }
}

HybridNode& HybridSystem::node(ProcId p) {
  MC_CHECK(p < nodes_.size());
  return *nodes_[p];
}

void HybridSystem::run(const std::function<void(HybridNode&, ProcId)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(cfg_.num_procs);
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    threads.emplace_back([this, &body, p] {
      // Application-lane marker for the critical-path analyzer.
      obs::trace_instant("proc.start", "dsm", {"proc", p});
      body(*nodes_[p], p);
      obs::trace_instant("proc.end", "dsm", {"proc", p});
    });
  }
  for (auto& t : threads) t.join();
}

MetricsSnapshot HybridSystem::metrics() const {
  MetricsSnapshot snap = fabric_.metrics();
  std::uint64_t blocked = 0;
  for (const auto& n : nodes_) blocked += n->stats().strong_blocked.sum_ns();
  snap.values["hybrid.blocked_ns"] = blocked;
  return snap;
}

void HybridSystem::shutdown() {
  if (down_) return;
  down_ = true;
  fabric_.shutdown();
  if (sequencer_.joinable()) sequencer_.join();
  for (auto& n : nodes_) n->stop();
}

}  // namespace mc::baseline
