# Empty dependencies file for history_dot_export_test.
# This may be replaced when dependencies are built.
