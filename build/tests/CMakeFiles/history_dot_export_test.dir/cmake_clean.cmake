file(REMOVE_RECURSE
  "CMakeFiles/history_dot_export_test.dir/history_dot_export_test.cpp.o"
  "CMakeFiles/history_dot_export_test.dir/history_dot_export_test.cpp.o.d"
  "history_dot_export_test"
  "history_dot_export_test.pdb"
  "history_dot_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_dot_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
