file(REMOVE_RECURSE
  "CMakeFiles/apps_matrix_test.dir/apps_matrix_test.cpp.o"
  "CMakeFiles/apps_matrix_test.dir/apps_matrix_test.cpp.o.d"
  "apps_matrix_test"
  "apps_matrix_test.pdb"
  "apps_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
