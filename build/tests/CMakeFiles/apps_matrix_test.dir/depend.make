# Empty dependencies file for apps_matrix_test.
# This may be replaced when dependencies are built.
