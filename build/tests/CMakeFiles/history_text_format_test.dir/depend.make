# Empty dependencies file for history_text_format_test.
# This may be replaced when dependencies are built.
