file(REMOVE_RECURSE
  "CMakeFiles/history_text_format_test.dir/history_text_format_test.cpp.o"
  "CMakeFiles/history_text_format_test.dir/history_text_format_test.cpp.o.d"
  "history_text_format_test"
  "history_text_format_test.pdb"
  "history_text_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_text_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
