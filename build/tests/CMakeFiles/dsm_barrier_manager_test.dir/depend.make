# Empty dependencies file for dsm_barrier_manager_test.
# This may be replaced when dependencies are built.
