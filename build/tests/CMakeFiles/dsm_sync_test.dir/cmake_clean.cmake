file(REMOVE_RECURSE
  "CMakeFiles/dsm_sync_test.dir/dsm_sync_test.cpp.o"
  "CMakeFiles/dsm_sync_test.dir/dsm_sync_test.cpp.o.d"
  "dsm_sync_test"
  "dsm_sync_test.pdb"
  "dsm_sync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
