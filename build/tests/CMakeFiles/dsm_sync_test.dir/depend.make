# Empty dependencies file for dsm_sync_test.
# This may be replaced when dependencies are built.
