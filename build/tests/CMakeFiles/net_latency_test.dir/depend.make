# Empty dependencies file for net_latency_test.
# This may be replaced when dependencies are built.
