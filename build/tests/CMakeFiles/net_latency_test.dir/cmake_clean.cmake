file(REMOVE_RECURSE
  "CMakeFiles/net_latency_test.dir/net_latency_test.cpp.o"
  "CMakeFiles/net_latency_test.dir/net_latency_test.cpp.o.d"
  "net_latency_test"
  "net_latency_test.pdb"
  "net_latency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_latency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
