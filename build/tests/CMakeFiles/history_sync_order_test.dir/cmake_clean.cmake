file(REMOVE_RECURSE
  "CMakeFiles/history_sync_order_test.dir/history_sync_order_test.cpp.o"
  "CMakeFiles/history_sync_order_test.dir/history_sync_order_test.cpp.o.d"
  "history_sync_order_test"
  "history_sync_order_test.pdb"
  "history_sync_order_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_sync_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
