# Empty compiler generated dependencies file for history_sync_order_test.
# This may be replaced when dependencies are built.
