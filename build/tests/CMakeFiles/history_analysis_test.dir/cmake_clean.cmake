file(REMOVE_RECURSE
  "CMakeFiles/history_analysis_test.dir/history_analysis_test.cpp.o"
  "CMakeFiles/history_analysis_test.dir/history_analysis_test.cpp.o.d"
  "history_analysis_test"
  "history_analysis_test.pdb"
  "history_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
