file(REMOVE_RECURSE
  "CMakeFiles/apps_async_solver_test.dir/apps_async_solver_test.cpp.o"
  "CMakeFiles/apps_async_solver_test.dir/apps_async_solver_test.cpp.o.d"
  "apps_async_solver_test"
  "apps_async_solver_test.pdb"
  "apps_async_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_async_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
