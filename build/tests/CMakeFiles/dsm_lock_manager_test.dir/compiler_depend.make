# Empty compiler generated dependencies file for dsm_lock_manager_test.
# This may be replaced when dependencies are built.
