file(REMOVE_RECURSE
  "CMakeFiles/dsm_lock_manager_test.dir/dsm_lock_manager_test.cpp.o"
  "CMakeFiles/dsm_lock_manager_test.dir/dsm_lock_manager_test.cpp.o.d"
  "dsm_lock_manager_test"
  "dsm_lock_manager_test.pdb"
  "dsm_lock_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_lock_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
