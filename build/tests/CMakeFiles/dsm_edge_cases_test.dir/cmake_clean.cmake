file(REMOVE_RECURSE
  "CMakeFiles/dsm_edge_cases_test.dir/dsm_edge_cases_test.cpp.o"
  "CMakeFiles/dsm_edge_cases_test.dir/dsm_edge_cases_test.cpp.o.d"
  "dsm_edge_cases_test"
  "dsm_edge_cases_test.pdb"
  "dsm_edge_cases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
