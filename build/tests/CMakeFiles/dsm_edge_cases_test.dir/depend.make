# Empty dependencies file for dsm_edge_cases_test.
# This may be replaced when dependencies are built.
