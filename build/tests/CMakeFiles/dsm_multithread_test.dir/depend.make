# Empty dependencies file for dsm_multithread_test.
# This may be replaced when dependencies are built.
