file(REMOVE_RECURSE
  "CMakeFiles/dsm_multithread_test.dir/dsm_multithread_test.cpp.o"
  "CMakeFiles/dsm_multithread_test.dir/dsm_multithread_test.cpp.o.d"
  "dsm_multithread_test"
  "dsm_multithread_test.pdb"
  "dsm_multithread_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_multithread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
