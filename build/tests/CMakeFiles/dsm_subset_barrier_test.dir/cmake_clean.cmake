file(REMOVE_RECURSE
  "CMakeFiles/dsm_subset_barrier_test.dir/dsm_subset_barrier_test.cpp.o"
  "CMakeFiles/dsm_subset_barrier_test.dir/dsm_subset_barrier_test.cpp.o.d"
  "dsm_subset_barrier_test"
  "dsm_subset_barrier_test.pdb"
  "dsm_subset_barrier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_subset_barrier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
