# Empty compiler generated dependencies file for dsm_subset_barrier_test.
# This may be replaced when dependencies are built.
