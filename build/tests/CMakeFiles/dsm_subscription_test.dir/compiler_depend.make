# Empty compiler generated dependencies file for dsm_subscription_test.
# This may be replaced when dependencies are built.
