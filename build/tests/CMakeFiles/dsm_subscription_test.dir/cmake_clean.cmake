file(REMOVE_RECURSE
  "CMakeFiles/dsm_subscription_test.dir/dsm_subscription_test.cpp.o"
  "CMakeFiles/dsm_subscription_test.dir/dsm_subscription_test.cpp.o.d"
  "dsm_subscription_test"
  "dsm_subscription_test.pdb"
  "dsm_subscription_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_subscription_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
