file(REMOVE_RECURSE
  "CMakeFiles/dsm_property_test.dir/dsm_property_test.cpp.o"
  "CMakeFiles/dsm_property_test.dir/dsm_property_test.cpp.o.d"
  "dsm_property_test"
  "dsm_property_test.pdb"
  "dsm_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
