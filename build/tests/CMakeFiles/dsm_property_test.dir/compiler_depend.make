# Empty compiler generated dependencies file for dsm_property_test.
# This may be replaced when dependencies are built.
