file(REMOVE_RECURSE
  "CMakeFiles/history_group_test.dir/history_group_test.cpp.o"
  "CMakeFiles/history_group_test.dir/history_group_test.cpp.o.d"
  "history_group_test"
  "history_group_test.pdb"
  "history_group_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
