# Empty dependencies file for apps_cholesky_test.
# This may be replaced when dependencies are built.
