file(REMOVE_RECURSE
  "CMakeFiles/apps_cholesky_test.dir/apps_cholesky_test.cpp.o"
  "CMakeFiles/apps_cholesky_test.dir/apps_cholesky_test.cpp.o.d"
  "apps_cholesky_test"
  "apps_cholesky_test.pdb"
  "apps_cholesky_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_cholesky_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
