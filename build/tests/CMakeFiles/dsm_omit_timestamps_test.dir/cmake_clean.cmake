file(REMOVE_RECURSE
  "CMakeFiles/dsm_omit_timestamps_test.dir/dsm_omit_timestamps_test.cpp.o"
  "CMakeFiles/dsm_omit_timestamps_test.dir/dsm_omit_timestamps_test.cpp.o.d"
  "dsm_omit_timestamps_test"
  "dsm_omit_timestamps_test.pdb"
  "dsm_omit_timestamps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_omit_timestamps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
