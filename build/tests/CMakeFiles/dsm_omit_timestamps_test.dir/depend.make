# Empty dependencies file for dsm_omit_timestamps_test.
# This may be replaced when dependencies are built.
