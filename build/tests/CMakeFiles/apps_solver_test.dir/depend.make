# Empty dependencies file for apps_solver_test.
# This may be replaced when dependencies are built.
