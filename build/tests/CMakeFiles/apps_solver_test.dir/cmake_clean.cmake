file(REMOVE_RECURSE
  "CMakeFiles/apps_solver_test.dir/apps_solver_test.cpp.o"
  "CMakeFiles/apps_solver_test.dir/apps_solver_test.cpp.o.d"
  "apps_solver_test"
  "apps_solver_test.pdb"
  "apps_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
