file(REMOVE_RECURSE
  "CMakeFiles/history_counter_semantics_test.dir/history_counter_semantics_test.cpp.o"
  "CMakeFiles/history_counter_semantics_test.dir/history_counter_semantics_test.cpp.o.d"
  "history_counter_semantics_test"
  "history_counter_semantics_test.pdb"
  "history_counter_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_counter_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
