# Empty compiler generated dependencies file for history_counter_semantics_test.
# This may be replaced when dependencies are built.
