file(REMOVE_RECURSE
  "CMakeFiles/history_model_test.dir/history_model_test.cpp.o"
  "CMakeFiles/history_model_test.dir/history_model_test.cpp.o.d"
  "history_model_test"
  "history_model_test.pdb"
  "history_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
