file(REMOVE_RECURSE
  "CMakeFiles/history_litmus_test.dir/history_litmus_test.cpp.o"
  "CMakeFiles/history_litmus_test.dir/history_litmus_test.cpp.o.d"
  "history_litmus_test"
  "history_litmus_test.pdb"
  "history_litmus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_litmus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
