# Empty dependencies file for history_litmus_test.
# This may be replaced when dependencies are built.
