file(REMOVE_RECURSE
  "CMakeFiles/examples_histories_test.dir/examples_histories_test.cpp.o"
  "CMakeFiles/examples_histories_test.dir/examples_histories_test.cpp.o.d"
  "examples_histories_test"
  "examples_histories_test.pdb"
  "examples_histories_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/examples_histories_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
