# Empty compiler generated dependencies file for examples_histories_test.
# This may be replaced when dependencies are built.
