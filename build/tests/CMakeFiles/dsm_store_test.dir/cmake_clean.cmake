file(REMOVE_RECURSE
  "CMakeFiles/dsm_store_test.dir/dsm_store_test.cpp.o"
  "CMakeFiles/dsm_store_test.dir/dsm_store_test.cpp.o.d"
  "dsm_store_test"
  "dsm_store_test.pdb"
  "dsm_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
