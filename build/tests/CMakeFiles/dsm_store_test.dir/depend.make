# Empty dependencies file for dsm_store_test.
# This may be replaced when dependencies are built.
