file(REMOVE_RECURSE
  "CMakeFiles/history_checker_api_test.dir/history_checker_api_test.cpp.o"
  "CMakeFiles/history_checker_api_test.dir/history_checker_api_test.cpp.o.d"
  "history_checker_api_test"
  "history_checker_api_test.pdb"
  "history_checker_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_checker_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
