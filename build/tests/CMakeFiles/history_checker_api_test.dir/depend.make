# Empty dependencies file for history_checker_api_test.
# This may be replaced when dependencies are built.
