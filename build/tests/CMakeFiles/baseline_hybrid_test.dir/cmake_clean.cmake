file(REMOVE_RECURSE
  "CMakeFiles/baseline_hybrid_test.dir/baseline_hybrid_test.cpp.o"
  "CMakeFiles/baseline_hybrid_test.dir/baseline_hybrid_test.cpp.o.d"
  "baseline_hybrid_test"
  "baseline_hybrid_test.pdb"
  "baseline_hybrid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_hybrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
