# Empty dependencies file for baseline_hybrid_test.
# This may be replaced when dependencies are built.
