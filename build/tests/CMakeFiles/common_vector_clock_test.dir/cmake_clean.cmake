file(REMOVE_RECURSE
  "CMakeFiles/common_vector_clock_test.dir/common_vector_clock_test.cpp.o"
  "CMakeFiles/common_vector_clock_test.dir/common_vector_clock_test.cpp.o.d"
  "common_vector_clock_test"
  "common_vector_clock_test.pdb"
  "common_vector_clock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_vector_clock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
