# Empty compiler generated dependencies file for common_vector_clock_test.
# This may be replaced when dependencies are built.
