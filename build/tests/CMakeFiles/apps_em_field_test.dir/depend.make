# Empty dependencies file for apps_em_field_test.
# This may be replaced when dependencies are built.
