# Empty compiler generated dependencies file for history_hierarchy_property_test.
# This may be replaced when dependencies are built.
