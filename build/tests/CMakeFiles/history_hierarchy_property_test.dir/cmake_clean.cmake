file(REMOVE_RECURSE
  "CMakeFiles/history_hierarchy_property_test.dir/history_hierarchy_property_test.cpp.o"
  "CMakeFiles/history_hierarchy_property_test.dir/history_hierarchy_property_test.cpp.o.d"
  "history_hierarchy_property_test"
  "history_hierarchy_property_test.pdb"
  "history_hierarchy_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_hierarchy_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
