file(REMOVE_RECURSE
  "CMakeFiles/apps_em_field2d_test.dir/apps_em_field2d_test.cpp.o"
  "CMakeFiles/apps_em_field2d_test.dir/apps_em_field2d_test.cpp.o.d"
  "apps_em_field2d_test"
  "apps_em_field2d_test.pdb"
  "apps_em_field2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_em_field2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
