# Empty compiler generated dependencies file for apps_em_field2d_test.
# This may be replaced when dependencies are built.
