# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for apps_em_field2d_test.
