file(REMOVE_RECURSE
  "CMakeFiles/dsm_memory_test.dir/dsm_memory_test.cpp.o"
  "CMakeFiles/dsm_memory_test.dir/dsm_memory_test.cpp.o.d"
  "dsm_memory_test"
  "dsm_memory_test.pdb"
  "dsm_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
