# Empty dependencies file for dsm_memory_test.
# This may be replaced when dependencies are built.
