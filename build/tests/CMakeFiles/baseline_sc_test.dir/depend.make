# Empty dependencies file for baseline_sc_test.
# This may be replaced when dependencies are built.
