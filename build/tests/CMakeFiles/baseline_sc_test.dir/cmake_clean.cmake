file(REMOVE_RECURSE
  "CMakeFiles/baseline_sc_test.dir/baseline_sc_test.cpp.o"
  "CMakeFiles/baseline_sc_test.dir/baseline_sc_test.cpp.o.d"
  "baseline_sc_test"
  "baseline_sc_test.pdb"
  "baseline_sc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_sc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
