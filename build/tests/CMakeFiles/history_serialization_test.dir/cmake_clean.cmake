file(REMOVE_RECURSE
  "CMakeFiles/history_serialization_test.dir/history_serialization_test.cpp.o"
  "CMakeFiles/history_serialization_test.dir/history_serialization_test.cpp.o.d"
  "history_serialization_test"
  "history_serialization_test.pdb"
  "history_serialization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
