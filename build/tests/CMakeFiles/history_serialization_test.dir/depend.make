# Empty dependencies file for history_serialization_test.
# This may be replaced when dependencies are built.
