# Empty dependencies file for common_bit_matrix_test.
# This may be replaced when dependencies are built.
