file(REMOVE_RECURSE
  "CMakeFiles/common_bit_matrix_test.dir/common_bit_matrix_test.cpp.o"
  "CMakeFiles/common_bit_matrix_test.dir/common_bit_matrix_test.cpp.o.d"
  "common_bit_matrix_test"
  "common_bit_matrix_test.pdb"
  "common_bit_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_bit_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
