# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for common_bit_matrix_test.
