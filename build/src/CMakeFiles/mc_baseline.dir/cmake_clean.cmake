file(REMOVE_RECURSE
  "CMakeFiles/mc_baseline.dir/baseline/hybrid_system.cpp.o"
  "CMakeFiles/mc_baseline.dir/baseline/hybrid_system.cpp.o.d"
  "CMakeFiles/mc_baseline.dir/baseline/sc_system.cpp.o"
  "CMakeFiles/mc_baseline.dir/baseline/sc_system.cpp.o.d"
  "CMakeFiles/mc_baseline.dir/baseline/sequencer.cpp.o"
  "CMakeFiles/mc_baseline.dir/baseline/sequencer.cpp.o.d"
  "libmc_baseline.a"
  "libmc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
