file(REMOVE_RECURSE
  "libmc_baseline.a"
)
