
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/hybrid_system.cpp" "src/CMakeFiles/mc_baseline.dir/baseline/hybrid_system.cpp.o" "gcc" "src/CMakeFiles/mc_baseline.dir/baseline/hybrid_system.cpp.o.d"
  "/root/repo/src/baseline/sc_system.cpp" "src/CMakeFiles/mc_baseline.dir/baseline/sc_system.cpp.o" "gcc" "src/CMakeFiles/mc_baseline.dir/baseline/sc_system.cpp.o.d"
  "/root/repo/src/baseline/sequencer.cpp" "src/CMakeFiles/mc_baseline.dir/baseline/sequencer.cpp.o" "gcc" "src/CMakeFiles/mc_baseline.dir/baseline/sequencer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mc_history.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
