# Empty dependencies file for mc_baseline.
# This may be replaced when dependencies are built.
