file(REMOVE_RECURSE
  "CMakeFiles/mc_common.dir/common/bit_matrix.cpp.o"
  "CMakeFiles/mc_common.dir/common/bit_matrix.cpp.o.d"
  "CMakeFiles/mc_common.dir/common/rng.cpp.o"
  "CMakeFiles/mc_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/mc_common.dir/common/stats.cpp.o"
  "CMakeFiles/mc_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/mc_common.dir/common/vector_clock.cpp.o"
  "CMakeFiles/mc_common.dir/common/vector_clock.cpp.o.d"
  "libmc_common.a"
  "libmc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
