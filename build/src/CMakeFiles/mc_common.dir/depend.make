# Empty dependencies file for mc_common.
# This may be replaced when dependencies are built.
