file(REMOVE_RECURSE
  "libmc_common.a"
)
