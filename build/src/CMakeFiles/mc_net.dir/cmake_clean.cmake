file(REMOVE_RECURSE
  "CMakeFiles/mc_net.dir/net/fabric.cpp.o"
  "CMakeFiles/mc_net.dir/net/fabric.cpp.o.d"
  "CMakeFiles/mc_net.dir/net/latency.cpp.o"
  "CMakeFiles/mc_net.dir/net/latency.cpp.o.d"
  "CMakeFiles/mc_net.dir/net/mailbox.cpp.o"
  "CMakeFiles/mc_net.dir/net/mailbox.cpp.o.d"
  "libmc_net.a"
  "libmc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
