file(REMOVE_RECURSE
  "libmc_net.a"
)
