# Empty dependencies file for mc_net.
# This may be replaced when dependencies are built.
