
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/fabric.cpp" "src/CMakeFiles/mc_net.dir/net/fabric.cpp.o" "gcc" "src/CMakeFiles/mc_net.dir/net/fabric.cpp.o.d"
  "/root/repo/src/net/latency.cpp" "src/CMakeFiles/mc_net.dir/net/latency.cpp.o" "gcc" "src/CMakeFiles/mc_net.dir/net/latency.cpp.o.d"
  "/root/repo/src/net/mailbox.cpp" "src/CMakeFiles/mc_net.dir/net/mailbox.cpp.o" "gcc" "src/CMakeFiles/mc_net.dir/net/mailbox.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
