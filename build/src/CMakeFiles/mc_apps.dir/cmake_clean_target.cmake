file(REMOVE_RECURSE
  "libmc_apps.a"
)
