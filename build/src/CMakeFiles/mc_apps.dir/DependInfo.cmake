
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cholesky.cpp" "src/CMakeFiles/mc_apps.dir/apps/cholesky.cpp.o" "gcc" "src/CMakeFiles/mc_apps.dir/apps/cholesky.cpp.o.d"
  "/root/repo/src/apps/em_field.cpp" "src/CMakeFiles/mc_apps.dir/apps/em_field.cpp.o" "gcc" "src/CMakeFiles/mc_apps.dir/apps/em_field.cpp.o.d"
  "/root/repo/src/apps/em_field2d.cpp" "src/CMakeFiles/mc_apps.dir/apps/em_field2d.cpp.o" "gcc" "src/CMakeFiles/mc_apps.dir/apps/em_field2d.cpp.o.d"
  "/root/repo/src/apps/equation_solver.cpp" "src/CMakeFiles/mc_apps.dir/apps/equation_solver.cpp.o" "gcc" "src/CMakeFiles/mc_apps.dir/apps/equation_solver.cpp.o.d"
  "/root/repo/src/apps/matrix.cpp" "src/CMakeFiles/mc_apps.dir/apps/matrix.cpp.o" "gcc" "src/CMakeFiles/mc_apps.dir/apps/matrix.cpp.o.d"
  "/root/repo/src/apps/sparse.cpp" "src/CMakeFiles/mc_apps.dir/apps/sparse.cpp.o" "gcc" "src/CMakeFiles/mc_apps.dir/apps/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mc_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mc_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mc_history.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
