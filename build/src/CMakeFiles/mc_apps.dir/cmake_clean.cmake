file(REMOVE_RECURSE
  "CMakeFiles/mc_apps.dir/apps/cholesky.cpp.o"
  "CMakeFiles/mc_apps.dir/apps/cholesky.cpp.o.d"
  "CMakeFiles/mc_apps.dir/apps/em_field.cpp.o"
  "CMakeFiles/mc_apps.dir/apps/em_field.cpp.o.d"
  "CMakeFiles/mc_apps.dir/apps/em_field2d.cpp.o"
  "CMakeFiles/mc_apps.dir/apps/em_field2d.cpp.o.d"
  "CMakeFiles/mc_apps.dir/apps/equation_solver.cpp.o"
  "CMakeFiles/mc_apps.dir/apps/equation_solver.cpp.o.d"
  "CMakeFiles/mc_apps.dir/apps/matrix.cpp.o"
  "CMakeFiles/mc_apps.dir/apps/matrix.cpp.o.d"
  "CMakeFiles/mc_apps.dir/apps/sparse.cpp.o"
  "CMakeFiles/mc_apps.dir/apps/sparse.cpp.o.d"
  "libmc_apps.a"
  "libmc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
