# Empty compiler generated dependencies file for mc_apps.
# This may be replaced when dependencies are built.
