file(REMOVE_RECURSE
  "libmc_dsm.a"
)
