
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsm/barrier_manager.cpp" "src/CMakeFiles/mc_dsm.dir/dsm/barrier_manager.cpp.o" "gcc" "src/CMakeFiles/mc_dsm.dir/dsm/barrier_manager.cpp.o.d"
  "/root/repo/src/dsm/lock_manager.cpp" "src/CMakeFiles/mc_dsm.dir/dsm/lock_manager.cpp.o" "gcc" "src/CMakeFiles/mc_dsm.dir/dsm/lock_manager.cpp.o.d"
  "/root/repo/src/dsm/node.cpp" "src/CMakeFiles/mc_dsm.dir/dsm/node.cpp.o" "gcc" "src/CMakeFiles/mc_dsm.dir/dsm/node.cpp.o.d"
  "/root/repo/src/dsm/store.cpp" "src/CMakeFiles/mc_dsm.dir/dsm/store.cpp.o" "gcc" "src/CMakeFiles/mc_dsm.dir/dsm/store.cpp.o.d"
  "/root/repo/src/dsm/system.cpp" "src/CMakeFiles/mc_dsm.dir/dsm/system.cpp.o" "gcc" "src/CMakeFiles/mc_dsm.dir/dsm/system.cpp.o.d"
  "/root/repo/src/dsm/trace.cpp" "src/CMakeFiles/mc_dsm.dir/dsm/trace.cpp.o" "gcc" "src/CMakeFiles/mc_dsm.dir/dsm/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mc_history.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
