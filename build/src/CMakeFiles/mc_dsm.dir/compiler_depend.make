# Empty compiler generated dependencies file for mc_dsm.
# This may be replaced when dependencies are built.
