file(REMOVE_RECURSE
  "CMakeFiles/mc_dsm.dir/dsm/barrier_manager.cpp.o"
  "CMakeFiles/mc_dsm.dir/dsm/barrier_manager.cpp.o.d"
  "CMakeFiles/mc_dsm.dir/dsm/lock_manager.cpp.o"
  "CMakeFiles/mc_dsm.dir/dsm/lock_manager.cpp.o.d"
  "CMakeFiles/mc_dsm.dir/dsm/node.cpp.o"
  "CMakeFiles/mc_dsm.dir/dsm/node.cpp.o.d"
  "CMakeFiles/mc_dsm.dir/dsm/store.cpp.o"
  "CMakeFiles/mc_dsm.dir/dsm/store.cpp.o.d"
  "CMakeFiles/mc_dsm.dir/dsm/system.cpp.o"
  "CMakeFiles/mc_dsm.dir/dsm/system.cpp.o.d"
  "CMakeFiles/mc_dsm.dir/dsm/trace.cpp.o"
  "CMakeFiles/mc_dsm.dir/dsm/trace.cpp.o.d"
  "libmc_dsm.a"
  "libmc_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
