
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/history/causality.cpp" "src/CMakeFiles/mc_history.dir/history/causality.cpp.o" "gcc" "src/CMakeFiles/mc_history.dir/history/causality.cpp.o.d"
  "/root/repo/src/history/checkers.cpp" "src/CMakeFiles/mc_history.dir/history/checkers.cpp.o" "gcc" "src/CMakeFiles/mc_history.dir/history/checkers.cpp.o.d"
  "/root/repo/src/history/dot_export.cpp" "src/CMakeFiles/mc_history.dir/history/dot_export.cpp.o" "gcc" "src/CMakeFiles/mc_history.dir/history/dot_export.cpp.o.d"
  "/root/repo/src/history/history.cpp" "src/CMakeFiles/mc_history.dir/history/history.cpp.o" "gcc" "src/CMakeFiles/mc_history.dir/history/history.cpp.o.d"
  "/root/repo/src/history/operation.cpp" "src/CMakeFiles/mc_history.dir/history/operation.cpp.o" "gcc" "src/CMakeFiles/mc_history.dir/history/operation.cpp.o.d"
  "/root/repo/src/history/program_analysis.cpp" "src/CMakeFiles/mc_history.dir/history/program_analysis.cpp.o" "gcc" "src/CMakeFiles/mc_history.dir/history/program_analysis.cpp.o.d"
  "/root/repo/src/history/serialization.cpp" "src/CMakeFiles/mc_history.dir/history/serialization.cpp.o" "gcc" "src/CMakeFiles/mc_history.dir/history/serialization.cpp.o.d"
  "/root/repo/src/history/text_format.cpp" "src/CMakeFiles/mc_history.dir/history/text_format.cpp.o" "gcc" "src/CMakeFiles/mc_history.dir/history/text_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
