file(REMOVE_RECURSE
  "libmc_history.a"
)
