# Empty dependencies file for mc_history.
# This may be replaced when dependencies are built.
