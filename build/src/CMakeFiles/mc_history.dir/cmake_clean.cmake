file(REMOVE_RECURSE
  "CMakeFiles/mc_history.dir/history/causality.cpp.o"
  "CMakeFiles/mc_history.dir/history/causality.cpp.o.d"
  "CMakeFiles/mc_history.dir/history/checkers.cpp.o"
  "CMakeFiles/mc_history.dir/history/checkers.cpp.o.d"
  "CMakeFiles/mc_history.dir/history/dot_export.cpp.o"
  "CMakeFiles/mc_history.dir/history/dot_export.cpp.o.d"
  "CMakeFiles/mc_history.dir/history/history.cpp.o"
  "CMakeFiles/mc_history.dir/history/history.cpp.o.d"
  "CMakeFiles/mc_history.dir/history/operation.cpp.o"
  "CMakeFiles/mc_history.dir/history/operation.cpp.o.d"
  "CMakeFiles/mc_history.dir/history/program_analysis.cpp.o"
  "CMakeFiles/mc_history.dir/history/program_analysis.cpp.o.d"
  "CMakeFiles/mc_history.dir/history/serialization.cpp.o"
  "CMakeFiles/mc_history.dir/history/serialization.cpp.o.d"
  "CMakeFiles/mc_history.dir/history/text_format.cpp.o"
  "CMakeFiles/mc_history.dir/history/text_format.cpp.o.d"
  "libmc_history.a"
  "libmc_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
