file(REMOVE_RECURSE
  "../bench/bench_sync"
  "../bench/bench_sync.pdb"
  "CMakeFiles/bench_sync.dir/bench_sync.cpp.o"
  "CMakeFiles/bench_sync.dir/bench_sync.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
