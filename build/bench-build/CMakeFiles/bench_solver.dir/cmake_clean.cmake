file(REMOVE_RECURSE
  "../bench/bench_solver"
  "../bench/bench_solver.pdb"
  "CMakeFiles/bench_solver.dir/bench_solver.cpp.o"
  "CMakeFiles/bench_solver.dir/bench_solver.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
