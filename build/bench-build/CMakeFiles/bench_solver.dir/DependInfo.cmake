
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_solver.cpp" "bench-build/CMakeFiles/bench_solver.dir/bench_solver.cpp.o" "gcc" "bench-build/CMakeFiles/bench_solver.dir/bench_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mc_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mc_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mc_history.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
