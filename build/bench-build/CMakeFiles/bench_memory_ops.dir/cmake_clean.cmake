file(REMOVE_RECURSE
  "../bench/bench_memory_ops"
  "../bench/bench_memory_ops.pdb"
  "CMakeFiles/bench_memory_ops.dir/bench_memory_ops.cpp.o"
  "CMakeFiles/bench_memory_ops.dir/bench_memory_ops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
