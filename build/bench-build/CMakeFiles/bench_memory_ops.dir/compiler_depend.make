# Empty compiler generated dependencies file for bench_memory_ops.
# This may be replaced when dependencies are built.
