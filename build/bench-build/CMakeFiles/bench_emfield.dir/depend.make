# Empty dependencies file for bench_emfield.
# This may be replaced when dependencies are built.
