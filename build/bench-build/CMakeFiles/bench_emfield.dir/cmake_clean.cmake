file(REMOVE_RECURSE
  "../bench/bench_emfield"
  "../bench/bench_emfield.pdb"
  "CMakeFiles/bench_emfield.dir/bench_emfield.cpp.o"
  "CMakeFiles/bench_emfield.dir/bench_emfield.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_emfield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
