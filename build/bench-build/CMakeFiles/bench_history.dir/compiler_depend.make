# Empty compiler generated dependencies file for bench_history.
# This may be replaced when dependencies are built.
