file(REMOVE_RECURSE
  "../bench/bench_history"
  "../bench/bench_history.pdb"
  "CMakeFiles/bench_history.dir/bench_history.cpp.o"
  "CMakeFiles/bench_history.dir/bench_history.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
