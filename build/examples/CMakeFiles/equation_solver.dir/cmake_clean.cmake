file(REMOVE_RECURSE
  "CMakeFiles/equation_solver.dir/equation_solver.cpp.o"
  "CMakeFiles/equation_solver.dir/equation_solver.cpp.o.d"
  "equation_solver"
  "equation_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equation_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
