# Empty compiler generated dependencies file for equation_solver.
# This may be replaced when dependencies are built.
