# Empty compiler generated dependencies file for em_field.
# This may be replaced when dependencies are built.
