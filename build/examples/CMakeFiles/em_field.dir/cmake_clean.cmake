file(REMOVE_RECURSE
  "CMakeFiles/em_field.dir/em_field.cpp.o"
  "CMakeFiles/em_field.dir/em_field.cpp.o.d"
  "em_field"
  "em_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
