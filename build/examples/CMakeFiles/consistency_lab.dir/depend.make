# Empty dependencies file for consistency_lab.
# This may be replaced when dependencies are built.
