file(REMOVE_RECURSE
  "CMakeFiles/consistency_lab.dir/consistency_lab.cpp.o"
  "CMakeFiles/consistency_lab.dir/consistency_lab.cpp.o.d"
  "consistency_lab"
  "consistency_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
