# Empty compiler generated dependencies file for cholesky.
# This may be replaced when dependencies are built.
