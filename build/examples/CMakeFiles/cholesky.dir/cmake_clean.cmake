file(REMOVE_RECURSE
  "CMakeFiles/cholesky.dir/cholesky.cpp.o"
  "CMakeFiles/cholesky.dir/cholesky.cpp.o.d"
  "cholesky"
  "cholesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
