file(REMOVE_RECURSE
  "CMakeFiles/check_history.dir/check_history.cpp.o"
  "CMakeFiles/check_history.dir/check_history.cpp.o.d"
  "check_history"
  "check_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
