# Empty dependencies file for check_history.
# This may be replaced when dependencies are built.
