// Experiment C11 — the price of robustness (docs/FAULTS.md).
//
// The reliability layer rebuilds the reliable-FIFO channel Section 6
// assumes; this harness measures what that costs.  Each Section 5
// application runs three ways:
//
//   ideal     — the bare fabric, no faults, no reliability (the seed
//               configuration every other experiment uses);
//   reliable  — reliability enabled on a clean fabric (pure protocol
//               overhead: sequence headers + acks, zero retransmits);
//   chaos     — reliability over a faulty fabric (drops, duplicates,
//               delay spikes), the configuration the chaos suite tests.
//
// Reported per case: wall time, messages, bytes, retransmits, ack bytes —
// so the overhead decomposes into "headers and acks" vs "repairing loss".

#include <cstdio>
#include <string>

#include "apps/cholesky.h"
#include "apps/em_field.h"
#include "apps/em_field2d.h"
#include "apps/equation_solver.h"
#include "bench_util.h"
#include "net/fault.h"

using namespace mc;
using namespace mc::apps;
using namespace mc::bench;

namespace {

enum class Mode { kIdeal, kReliable, kChaos };

const char* to_string(Mode m) {
  switch (m) {
    case Mode::kIdeal: return "ideal";
    case Mode::kReliable: return "reliable";
    default: return "chaos";
  }
}

net::FaultPlan chaos_plan(std::uint64_t seed) {
  net::FaultPlan plan;
  plan.seed = seed;
  plan.drop_prob = 0.05;
  plan.dup_prob = 0.05;
  plan.delay_prob = 0.02;
  plan.delay_factor = 10.0;
  plan.delay_floor = std::chrono::microseconds(50);
  return plan;
}

void report(Harness& h, const std::string& app, Mode mode, double ms,
            const MetricsSnapshot& m) {
  std::printf("%-10s %-9s time=%8.2fms msgs=%-8llu bytes=%-10llu "
              "retrans=%-5llu ack_bytes=%-8llu dropped=%-5llu\n",
              app.c_str(), to_string(mode), ms, msgs(m), bytes(m),
              static_cast<unsigned long long>(m.get("net.retransmits")),
              static_cast<unsigned long long>(m.get("net.ack_bytes")),
              static_cast<unsigned long long>(m.get("net.fault.dropped")));
  auto& row = h.add_row(app + "-" + to_string(mode));
  row.params["app"] = app;
  row.params["mode"] = to_string(mode);
  row.wall_ms = ms;
  row.metrics = m;
}

void solver_case(Harness& h, Mode mode) {
  const LinearSystem sys = LinearSystem::random(16, 2);
  SolverOptions opt;
  opt.workers = 3;
  opt.reliable = mode != Mode::kIdeal;
  if (mode == Mode::kChaos) opt.faults = chaos_plan(11);
  if (h.profiling()) opt.profile = h.profile_options();
  const auto r = solve_barrier_pram(sys, opt);
  report(h, "solver", mode, r.elapsed_ms, r.metrics);
  if (h.profiling() && !r.profile.empty()) {
    Harness::set_profile(h.last_row(), r.profile);
  }
}

void cholesky_case(Harness& h, Mode mode) {
  const SparseSpd m = SparseSpd::random(20, 3, 0.1, 3);
  const Symbolic sym = analyze(m);
  CholeskyOptions opt;
  opt.procs = 3;
  opt.reliable = mode != Mode::kIdeal;
  if (mode == Mode::kChaos) opt.faults = chaos_plan(22);
  if (h.profiling()) opt.profile = h.profile_options();
  const auto r = cholesky_locks(m, sym, opt);
  report(h, "cholesky", mode, r.elapsed_ms, r.metrics);
  if (h.profiling() && !r.profile.empty()) {
    Harness::set_profile(h.last_row(), r.profile);
  }
}

void em_case(Harness& h, Mode mode) {
  EmProblem prob;
  prob.m = 64;
  prob.steps = 16;
  const auto r = em_mixed(
      prob, 4, ReadMode::kPram, EmSharing::kFullGrid, {}, 1, false,
      mode == Mode::kChaos ? std::optional<net::FaultPlan>(chaos_plan(33))
                           : std::nullopt,
      mode != Mode::kIdeal);
  report(h, "em-field", mode, r.elapsed_ms, r.metrics);
}

void em2d_case(Harness& h, Mode mode) {
  Em2dProblem prob;
  prob.nx = 24;
  prob.ny = 16;
  prob.steps = 8;
  const auto r = em2d_mixed(
      prob, 3, ReadMode::kPram, {}, 1,
      mode == Mode::kChaos ? std::optional<net::FaultPlan>(chaos_plan(44))
                           : std::nullopt,
      mode != Mode::kIdeal);
  report(h, "em-field2d", mode, r.elapsed_ms, r.metrics);
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("bench_chaos", argc, argv);
  h.config("fault_plan", "drop=0.05 dup=0.05 delay=0.02x10+50us");

  print_header("C11 — reliability overhead and chaos recovery (docs/FAULTS.md)",
               "each app: bare fabric vs reliability-on-clean vs "
               "reliability-under-faults");
  for (const Mode mode : {Mode::kIdeal, Mode::kReliable, Mode::kChaos}) {
    solver_case(h, mode);
  }
  if (!h.smoke()) {
    std::printf("\n");
    for (const Mode mode : {Mode::kIdeal, Mode::kReliable, Mode::kChaos}) {
      cholesky_case(h, mode);
    }
    std::printf("\n");
    for (const Mode mode : {Mode::kIdeal, Mode::kReliable, Mode::kChaos}) {
      em_case(h, mode);
    }
    std::printf("\n");
    for (const Mode mode : {Mode::kIdeal, Mode::kReliable, Mode::kChaos}) {
      em2d_case(h, mode);
    }
  }

  h.finish();
  return 0;
}
