// Experiments F5, C2: Section 5.3 sparse Cholesky factorization.
//
// Figure 5's lock-based column algorithm against the counter-object
// formulation.  Section 7's Maya result (C2): "an algorithm using counter
// objects outperforms the lock-based algorithm significantly" — here that
// must show as fewer messages, zero lock traffic, and lower wall time.

#include <cstdio>
#include <string>

#include "apps/cholesky.h"
#include "bench_util.h"

using namespace mc;
using namespace mc::apps;
using namespace mc::bench;

namespace {

void run_case(Harness& h, std::size_t n, std::size_t procs) {
  const SparseSpd m = SparseSpd::random(n, 3, 0.05, 9000 + n);
  const Symbolic sym = analyze(m);
  CholeskyOptions opt;
  opt.procs = procs;
  opt.latency = net::LatencyModel::fast();
  if (h.profiling()) opt.profile = h.profile_options();

  struct Row {
    const char* name;
    CholeskyResult r;
  };
  const Row rows[] = {
      {"fig5-locks-causal", cholesky_locks(m, sym, opt)},
      {"counter-objects", cholesky_counters(m, sym, opt)},
  };
  for (const Row& row : rows) {
    const double err = factorization_error(m, row.r.l);
    std::printf("%-18s n=%-4zu procs=%zu nnzL=%-6zu time=%8.2fms msgs=%-8llu "
                "bytes=%-10llu locks=%-6llu err=%.1e\n",
                row.name, n, procs, sym.fill_nnz(), row.r.elapsed_ms,
                msgs(row.r.metrics), bytes(row.r.metrics),
                static_cast<unsigned long long>(row.r.metrics.get("net.msg.lock_req")),
                err);
    auto& out = h.add_row(row.name);
    out.params["n"] = std::to_string(n);
    out.params["procs"] = std::to_string(procs);
    out.params["nnzL"] = std::to_string(sym.fill_nnz());
    out.wall_ms = row.r.elapsed_ms;
    out.stats["factorization_error"] = err;
    out.metrics = row.r.metrics;
    if (h.profiling() && !row.r.profile.empty()) {
      Harness::set_profile(out, row.r.profile);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("bench_cholesky", argc, argv);
  h.config("latency", "fast");

  print_header("F5/C2 — sparse Cholesky factorization (Section 5.3, Figure 5)",
               "write locks + causal reads vs commutative counter objects; "
               "expect counters to win significantly (Section 7)");
  const std::vector<std::size_t> sizes =
      h.smoke() ? std::vector<std::size_t>{24} : std::vector<std::size_t>{32, 64, 96};
  const std::vector<std::size_t> proc_counts =
      h.smoke() ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4};
  for (const std::size_t n : sizes) {
    for (const std::size_t procs : proc_counts) {
      run_case(h, n, procs);
    }
    std::printf("\n");
  }
  return 0;
}
