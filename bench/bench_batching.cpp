// Experiment C12 — batched update propagation (DESIGN.md §6.3).
//
// PR 4's optimization stack against the C11 baseline, on the Figure 2
// equation solver with the reliability layer on a *clean* fabric (so every
// message is protocol cost, none is repair):
//
//   unbatched-ack1  — the C11 "reliable" configuration: one kUpdate fan-out
//                     per write, one standalone ack per delivery.
//   batch8-ack1     — coalesced kBatch frames (≤8 records), classic acks.
//   batch32-ack1    — bigger frames; the per-message floor amortizes more.
//   batch32-ack8    — frames plus delayed cumulative acks (stride 8): the
//                     full stack, and the configuration the acceptance
//                     numbers quote.
//   unbatched-ack8  — delayed acks alone, isolating their contribution.
//
// Expected shape: batching cuts wire messages ≥3× on its own (many writes
// per barrier interval share one frame per destination); delayed acks take
// the standalone-ack-to-data-message ratio from ~1.0 to ≤0.2; combined,
// both the message count and the ack ratio collapse.  A second table runs
// the 2-D Yee grid unbatched vs batched as a stencil cross-check.

#include <cstdio>
#include <string>

#include "apps/em_field2d.h"
#include "apps/equation_solver.h"
#include "bench_util.h"

using namespace mc;
using namespace mc::apps;
using namespace mc::bench;

namespace {

struct Variant {
  const char* name;
  std::optional<dsm::BatchingConfig> batching;
  std::uint64_t ack_every = 1;
};

std::vector<Variant> variants() {
  dsm::BatchingConfig small;
  small.max_updates = 8;
  dsm::BatchingConfig big;
  big.max_updates = 32;
  return {
      {"unbatched-ack1", std::nullopt, 1},
      {"batch8-ack1", small, 1},
      {"batch32-ack1", big, 1},
      {"batch32-ack8", big, 8},
      {"unbatched-ack8", std::nullopt, 8},
  };
}

/// Derived columns shared by both tables: split total traffic into data
/// messages vs standalone acks, and report the delayed-ack ratio the C12
/// acceptance numbers quote.
obs::RunReport::Row& report(Harness& h, const std::string& name, double ms,
                            std::size_t iters, const MetricsSnapshot& m,
                            const std::string& app) {
  const auto total = static_cast<double>(m.get("net.messages"));
  const auto acks = static_cast<double>(m.get("net.msg.rel_ack"));
  const double data = total - acks;
  const double ack_ratio = data > 0 ? acks / data : 0.0;
  std::printf("%-16s time=%8.2fms msgs=%-8llu data=%-8llu acks=%-8llu "
              "ack/data=%.2f bytes=%-10llu coalesced=%-7llu upd/msg=%llu\n",
              name.c_str(), ms, msgs(m),
              static_cast<unsigned long long>(data),
              static_cast<unsigned long long>(acks), ack_ratio, bytes(m),
              static_cast<unsigned long long>(m.get("net.batch.coalesced")),
              static_cast<unsigned long long>(
                  m.get("net.batch.updates_per_msg.mean")));
  auto& row = h.add_row(app + "-" + name);
  row.params["app"] = app;
  row.params["variant"] = name;
  if (iters != 0) row.stats["iterations"] = static_cast<double>(iters);
  row.wall_ms = ms;
  row.stats["data_msgs"] = data;
  row.stats["standalone_acks"] = acks;
  row.stats["ack_to_data_ratio"] = ack_ratio;
  row.metrics = m;
  return row;
}

void solver_table(Harness& h) {
  const std::size_t n = h.smoke() ? 16 : 48;
  const LinearSystem sys = LinearSystem::random(n, 1000 + n);
  print_header("C12 — batched update propagation: Figure 2 solver, reliable "
               "clean fabric",
               "unbatched vs kBatch frames vs delayed cumulative acks; expect "
               "≥3x fewer messages and ack/data ≤0.2 with the full stack");
  for (const Variant& v : variants()) {
    SolverOptions opt;
    opt.workers = 3;
    opt.latency = net::LatencyModel::fast();
    opt.reliable = true;
    opt.reliability.ack_every = v.ack_every;
    opt.batching = v.batching;
    if (h.profiling()) opt.profile = h.profile_options();
    const SolverResult r = solve_barrier_pram(sys, opt);
    auto& row = report(h, v.name, r.elapsed_ms, r.iterations, r.metrics, "solver");
    if (h.profiling() && !r.profile.empty()) Harness::set_profile(row, r.profile);
  }
}

void em2d_table(Harness& h) {
  Em2dProblem prob;
  prob.nx = h.smoke() ? 16 : 32;
  prob.ny = h.smoke() ? 12 : 24;
  prob.steps = 8;
  print_header("C12b — 2-D Yee grid stencil cross-check (ghost rows, "
               "reliable clean fabric)",
               "whole ghost rows coalesce into one frame per barrier "
               "interval; ack stride fixed at 1");
  const struct {
    const char* name;
    std::optional<dsm::BatchingConfig> batching;
  } rows[] = {
      {"unbatched", std::nullopt},
      {"batch32", dsm::BatchingConfig{.max_updates = 32}},
  };
  for (const auto& v : rows) {
    const Em2dResult r = em2d_mixed(
        prob, 3, ReadMode::kPram, net::LatencyModel::fast(), 1, std::nullopt,
        /*reliable=*/true, v.batching, std::nullopt,
        h.profiling() ? std::optional(h.profile_options()) : std::nullopt);
    auto& row = report(h, v.name, r.elapsed_ms, 0, r.metrics, "em-field2d");
    if (h.profiling() && !r.profile.empty()) Harness::set_profile(row, r.profile);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("bench_batching", argc, argv);
  h.config("latency", "fast");
  h.config("fabric", "clean+reliable");

  solver_table(h);
  em2d_table(h);
  return 0;
}
