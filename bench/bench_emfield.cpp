// Experiment F4: the Section 5.2 electromagnetic-field computation
// (Figure 4) — barriers between E/H phases, PRAM reads — plus the §5.2
// ghost-copy ablation and the SC baseline.
//
// Expected shape: full-grid DSM sharing costs orders of magnitude more
// update traffic than ghost-boundary sharing (the optimization the paper
// says PRAM makes the system's job rather than the programmer's); SC adds
// sequencer round trips on every published value.

#include <cstdio>
#include <string>

#include "apps/em_field.h"
#include "apps/em_field2d.h"
#include "bench_util.h"

using namespace mc;
using namespace mc::apps;
using namespace mc::bench;

namespace {

void run_case(Harness& h, std::size_t m, std::size_t procs) {
  EmProblem prob;
  prob.m = m;
  prob.steps = 12;
  const auto lat = net::LatencyModel::fast();
  const auto ref = em_reference(prob);

  struct Row {
    const char* name;
    EmResult r;
  };
  const Row rows[] = {
      {"full-grid-pram", em_mixed(prob, procs, ReadMode::kPram, EmSharing::kFullGrid, lat)},
      {"full-grid-causal", em_mixed(prob, procs, ReadMode::kCausal, EmSharing::kFullGrid, lat)},
      {"ghost-pram", em_mixed(prob, procs, ReadMode::kPram, EmSharing::kGhost, lat)},
      {"ghost-pram-optimized", em_mixed(prob, procs, ReadMode::kPram, EmSharing::kGhost,
                                        lat, 1, /*pattern_optimized=*/true)},
      {"sc-ghost", em_sc(prob, procs, lat)},
  };
  for (const Row& row : rows) {
    const bool exact = row.r.e == ref.e && row.r.h == ref.h;
    std::printf("%-18s grid=%-4zu procs=%zu time=%8.2fms msgs=%-8llu bytes=%-10llu "
                "exact=%s\n",
                row.name, m, procs, row.r.elapsed_ms, msgs(row.r.metrics),
                bytes(row.r.metrics), exact ? "yes" : "NO");
    auto& out = h.add_row(row.name);
    out.params["grid"] = std::to_string(m);
    out.params["procs"] = std::to_string(procs);
    out.params["steps"] = std::to_string(prob.steps);
    out.params["exact"] = exact ? "yes" : "no";
    out.wall_ms = row.r.elapsed_ms;
    out.metrics = row.r.metrics;
  }
}

}  // namespace

namespace {

void run_case_2d(Harness& h, std::size_t nx, std::size_t ny, std::size_t procs) {
  Em2dProblem prob;
  prob.nx = nx;
  prob.ny = ny;
  prob.steps = 10;
  const auto ref = em2d_reference(prob);
  const auto par = em2d_mixed(
      prob, procs, ReadMode::kPram, net::LatencyModel::fast(), 1, std::nullopt,
      false, std::nullopt, std::nullopt,
      h.profiling() ? std::optional(h.profile_options()) : std::nullopt);
  const bool exact = par.ez == ref.ez && par.hx == ref.hx && par.hy == ref.hy;
  std::printf("2d-yee-pram        grid=%zux%-3zu procs=%zu time=%8.2fms msgs=%-8llu "
              "bytes=%-10llu exact=%s\n",
              nx, ny, procs, par.elapsed_ms, msgs(par.metrics), bytes(par.metrics),
              exact ? "yes" : "NO");
  auto& out = h.add_row("2d-yee-pram");
  out.params["grid"] = std::to_string(nx) + "x" + std::to_string(ny);
  out.params["procs"] = std::to_string(procs);
  out.params["steps"] = std::to_string(prob.steps);
  out.params["exact"] = exact ? "yes" : "no";
  out.wall_ms = par.elapsed_ms;
  out.metrics = par.metrics;
  if (h.profiling() && !par.profile.empty()) Harness::set_profile(out, par.profile);
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("bench_emfield", argc, argv);
  h.config("latency", "fast");

  print_header("F4 — electromagnetic field computation (Section 5.2, Figure 4)",
               "alternating E/H phases with barriers; PRAM reads suffice "
               "(Corollary 2); ghost sharing slashes update traffic");
  const std::vector<std::size_t> sizes =
      h.smoke() ? std::vector<std::size_t>{32} : std::vector<std::size_t>{64, 128};
  const std::vector<std::size_t> proc_counts =
      h.smoke() ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4};
  for (const std::size_t m : sizes) {
    for (const std::size_t procs : proc_counts) {
      run_case(h, m, procs);
    }
    std::printf("\n");
  }

  print_header("F4b — 2-D TE-mode Yee grid (Madsen-style spatial fields)",
               "row strips, ghost boundary rows over DSM, PRAM reads");
  for (const std::size_t procs : proc_counts) {
    run_case_2d(h, h.smoke() ? 24 : 48, h.smoke() ? 16 : 48, procs);
    if (!h.smoke()) run_case_2d(h, 96, 64, procs);
  }
  return 0;
}
