// Experiments F1, C6 and C13: the formal-model tooling.
//
// F1 — Figure 1's synchronization orders: derive |->lock and |->bar edges
// for a lock/barrier history of the figure's shape and report edge counts.
//
// C6 — checker throughput: relation construction, restricted relations,
// and the full mixed-consistency check on random histories of growing
// size, with the search and graph backends side by side.  This bounds the
// history sizes the BitMatrix pipeline can verify.
//
// C13 — streaming graph checker at trace scale: feed a generated
// million-op trace through IncrementalChecker one operation at a time and
// check it to a verdict (docs/CHECKING.md §8).  The O(n^2)-bit BitMatrix
// pipeline is infeasible at this size (~10^12 bits of relation state); the
// graph checker's clocks and sparse edges keep it linear.  A second row
// injects a stale read mid-trace and must converge to a violation.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "history/causality.h"
#include "history/checkers.h"
#include "history/incremental_checker.h"

using namespace mc;
using namespace mc::bench;
using namespace mc::history;

namespace {

/// A well-formed random history: per-process chains of writes and reads
/// (reads resolve to the latest write of a random process at generation
/// time — consistent by construction), with barrier rounds interspersed.
History random_history(std::size_t procs, std::size_t ops_per_proc, std::uint64_t seed) {
  History h(procs);
  Rng rng(seed);
  std::vector<std::vector<std::pair<WriteId, Value>>> writes(procs);
  std::uint32_t epoch = 0;
  for (std::size_t step = 0; step < ops_per_proc; ++step) {
    if (step % 16 == 15) {
      for (ProcId p = 0; p < procs; ++p) h.barrier(p, epoch);
      ++epoch;
      continue;
    }
    for (ProcId p = 0; p < procs; ++p) {
      const auto x = static_cast<VarId>(rng.below(8));
      if (rng.chance(0.5)) {
        h.write(p, x, (std::uint64_t{p} << 32) | step);
        writes[p].push_back({h.last_write_of(p), (std::uint64_t{p} << 32) | step});
      } else if (!writes[p].empty()) {
        // Read own latest write: always valid under both disciplines.
        const auto& [id, v] = writes[p].back();
        const Operation& w_op = h.op(0);
        (void)w_op;
        Operation op;
        op.kind = OpKind::kRead;
        op.proc = p;
        op.var = h.op(static_cast<OpRef>(h.size() - 1)).var;  // placeholder, fixed below
        op.value = v;
        op.mode = rng.chance(0.5) ? ReadMode::kPram : ReadMode::kCausal;
        op.write_id = id;
        // Locate the var the write targeted.
        for (OpRef r = static_cast<OpRef>(h.size()); r-- > 0;) {
          if (h.op(r).write_id == id &&
              (h.op(r).kind == OpKind::kWrite || h.op(r).kind == OpKind::kDelta)) {
            op.var = h.op(r).var;
            break;
          }
        }
        h.add(op);
      }
    }
  }
  return h;
}

void report(Harness& h, const char* name, std::size_t ops_per_proc, std::size_t history_ops,
            const MicroResult& r) {
  std::printf("%-24s ops/proc=%-4zu history=%-5zu ops  %10.1f ns/op  "
              "(%llu iters in %.1fms)\n",
              name, ops_per_proc, history_ops, r.ns_per_op,
              static_cast<unsigned long long>(r.iterations), r.total_ms);
  auto& row = h.add_row(name);
  row.params["ops_per_proc"] = std::to_string(ops_per_proc);
  row.params["history_ops"] = std::to_string(history_ops);
  row.wall_ms = r.total_ms;
  row.stats["ns_per_op"] = r.ns_per_op;
  row.stats["iterations"] = static_cast<double>(r.iterations);
}

void checker_throughput(Harness& h) {
  const std::vector<std::size_t> sizes =
      h.smoke() ? std::vector<std::size_t>{16} : std::vector<std::size_t>{16, 64, 128};
  const double min_ms = h.smoke() ? 5.0 : 50.0;
  std::printf("\n=== C6 — checker throughput (4 procs, random histories) ===\n");
  for (const std::size_t ops : sizes) {
    const auto hist = random_history(4, ops, 11);
    report(h, "build-relations", ops, hist.size(),
           measure_op([&] { do_not_optimize(build_relations(hist)); }, min_ms));
  }
  for (const std::size_t ops : sizes) {
    const auto hist = random_history(4, ops, 13);
    const auto rel = build_relations(hist);
    report(h, "restrict-pram", ops, hist.size(),
           measure_op([&] { do_not_optimize(restrict_pram(hist, *rel, 1)); }, min_ms));
  }
  for (const std::size_t ops : sizes) {
    const auto hist = random_history(4, ops, 17);
    report(h, "check-mixed-search", ops, hist.size(),
           measure_op(
               [&] {
                 do_not_optimize(
                     check_mixed_consistency(hist, CheckerBackend::kSearch));
               },
               min_ms));
    report(h, "check-mixed-graph", ops, hist.size(),
           measure_op(
               [&] {
                 do_not_optimize(check_mixed_consistency(hist, CheckerBackend::kGraph));
               },
               min_ms));
  }
}

/// C13 trace generator: feed a synthetic shared-memory trace straight into
/// the streaming checker.  Shape: `procs` processes over 8 shared plain
/// locations plus one private location per process.
/// Each barrier epoch designates one writer per shared location (rotating
/// with the epoch); everyone else reads the owner's final write of the
/// *previous* epoch, which the barrier made causally visible, so the trace
/// is consistent by construction.  Round-robin emission across processes is
/// a causal linear extension.  With `inject`, one read mid-trace resolves
/// to the owner write from two epochs back instead — stale, because a
/// newer causally-visible write intervenes.
struct StreamVerdict {
  GraphVerdict verdict;
  MetricsSnapshot metrics;
  std::size_t ops = 0;
  double wall_ms = 0.0;
};

StreamVerdict stream_check(std::size_t procs, std::size_t target_ops, bool inject,
                           std::uint64_t seed) {
  constexpr std::size_t kVars = 8;
  constexpr std::size_t kRoundsPerEpoch = 64;

  IncrementalChecker chk(procs);
  Rng rng(seed);
  std::vector<SeqNo> seq(procs, 0);

  struct VarView {
    WriteId visible;       // owner's final write of the last completed epoch
    Value visible_val = 0;
    WriteId stale;         // ... of the epoch before that
    Value stale_val = 0;
    WriteId cur;           // owner's latest write in the current epoch
    Value cur_val = 0;
  };
  std::vector<VarView> view(kVars);

  std::uint32_t epoch = 0;
  bool injected = false;
  Stopwatch sw;

  const auto feed = [&](const Operation& op) {
    if (!chk.feed(op)) {
      std::fprintf(stderr, "stream-check: feed failed: %s\n",
                   chk.failed() ? "structural error" : "unknown");
      std::exit(1);
    }
  };

  while (chk.num_ops() < target_ops) {
    for (std::size_t round = 0; round < kRoundsPerEpoch; ++round) {
      for (ProcId p = 0; p < procs; ++p) {
        const auto x = static_cast<VarId>(rng.below(kVars));
        const ProcId owner = static_cast<ProcId>((x + epoch) % procs);
        Operation op;
        op.proc = p;
        if (p == owner) {
          op.kind = OpKind::kWrite;
          op.var = x;
          op.value = (std::uint64_t{epoch} << 16) | (std::uint64_t{x} << 8) | round;
          op.write_id = WriteId{p, ++seq[p]};
          view[x].cur = op.write_id;
          view[x].cur_val = op.value;
        } else if (view[x].visible.valid()) {
          op.kind = OpKind::kRead;
          op.var = x;
          op.mode = rng.chance(0.5) ? ReadMode::kPram : ReadMode::kCausal;
          if (inject && !injected && epoch >= 3 && view[x].stale.valid()) {
            op.write_id = view[x].stale;
            op.value = view[x].stale_val;
            injected = true;
          } else {
            op.write_id = view[x].visible;
            op.value = view[x].visible_val;
          }
        } else {
          // Nothing readable yet (first epochs): write the private location.
          op.kind = OpKind::kWrite;
          op.var = static_cast<VarId>(kVars + p);
          op.value = round;
          op.write_id = WriteId{p, ++seq[p]};
        }
        feed(op);
      }
    }
    for (ProcId p = 0; p < procs; ++p) {
      Operation b;
      b.kind = OpKind::kBarrier;
      b.proc = p;
      b.barrier = 0;
      b.barrier_epoch = epoch;
      feed(b);
    }
    for (auto& vv : view) {
      if (vv.cur.valid()) {
        vv.stale = vv.visible;
        vv.stale_val = vv.visible_val;
        vv.visible = vv.cur;
        vv.visible_val = vv.cur_val;
        vv.cur = WriteId{};
      }
    }
    ++epoch;
  }

  StreamVerdict out;
  out.ops = chk.num_ops();
  out.verdict = chk.finalize();
  out.wall_ms = sw.elapsed_ms();
  out.metrics = chk.metrics();
  return out;
}

void streaming_check(Harness& h) {
  const std::size_t target = h.smoke() ? 50'000 : 1'200'000;
  std::printf("\n=== C13 — streaming graph checker (4 procs, %zu-op traces) ===\n",
              target);

  for (const bool inject : {false, true}) {
    const StreamVerdict r = stream_check(4, target, inject, inject ? 23 : 19);
    const double ops_per_sec = static_cast<double>(r.ops) / (r.wall_ms / 1e3);
    const bool expected =
        inject ? (!r.verdict.mixed.ok &&
                  r.verdict.mixed.message().find("stale") != std::string::npos)
               : r.verdict.ok();
    std::printf("%-24s ops=%-8zu %8.1fms  %12.0f ops/sec  verdict=%s%s\n",
                inject ? "stream-check-injected" : "stream-check-clean", r.ops,
                r.wall_ms, ops_per_sec, r.verdict.ok() ? "ok" : "violation",
                expected ? "" : "  ** UNEXPECTED **");
    if (!expected) {
      std::fprintf(stderr, "stream-check: unexpected verdict (%s)\n",
                   r.verdict.well_formed ? r.verdict.mixed.message().c_str()
                                         : r.verdict.error.c_str());
      std::exit(1);
    }
    auto& row = h.add_row(inject ? "stream-check-injected" : "stream-check-clean");
    row.params["procs"] = "4";
    row.params["target_ops"] = std::to_string(target);
    row.params["injected"] = inject ? "true" : "false";
    row.wall_ms = r.wall_ms;
    row.stats["history_ops"] = static_cast<double>(r.ops);
    row.stats["ops_per_sec"] = ops_per_sec;
    row.stats["verdict_ok"] = r.verdict.ok() ? 1.0 : 0.0;
    row.metrics = r.metrics;
  }
}

/// F1: construct the Figure 1 shape — a write episode, two concurrent
/// reader episodes... (readers share one), another write episode, around a
/// barrier — and report the derived synchronization-order edges.
void figure1_table(Harness& harness) {
  History h(3);
  h.wlock(0, 0, 1);
  h.wunlock(0, 0, 1);
  h.rlock(1, 0, 2);
  h.rlock(2, 0, 2);
  h.runlock(1, 0, 2);
  h.runlock(2, 0, 2);
  h.wlock(0, 0, 3);
  h.wunlock(0, 0, 3);
  for (ProcId p = 0; p < 3; ++p) h.barrier(p, 0);
  h.write(0, 0, 42);
  const auto rel = build_relations(h);
  std::printf("\n=== F1 — Figure 1 synchronization orders ===\n");
  std::printf("history: %zu ops; |->lock edges=%zu |->bar edges=%zu causality edges=%zu\n",
              h.size(), rel->sync_lock.edge_count(), rel->sync_bar.edge_count(),
              rel->causality.edge_count());
  std::printf("reduced |->lock edges=%zu (the PRAM order keeps only direct "
              "episode-to-episode dependencies)\n",
              rel->sync_lock.reduced().edge_count());
  auto& row = harness.add_row("figure1-sync-orders");
  row.stats["history_ops"] = static_cast<double>(h.size());
  row.stats["lock_edges"] = static_cast<double>(rel->sync_lock.edge_count());
  row.stats["bar_edges"] = static_cast<double>(rel->sync_bar.edge_count());
  row.stats["causality_edges"] = static_cast<double>(rel->causality.edge_count());
  row.stats["reduced_lock_edges"] =
      static_cast<double>(rel->sync_lock.reduced().edge_count());
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("bench_history", argc, argv);
  h.config("procs", "4");

  checker_throughput(h);
  streaming_check(h);
  figure1_table(h);
  return 0;
}
