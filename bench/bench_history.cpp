// Experiments F1 and C6: the formal-model tooling.
//
// F1 — Figure 1's synchronization orders: derive |->lock and |->bar edges
// for a lock/barrier history of the figure's shape and report edge counts.
//
// C6 — checker throughput: relation construction, restricted relations,
// and the full mixed-consistency check on random histories of growing
// size.  This bounds the history sizes the integration tests can verify.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "history/causality.h"
#include "history/checkers.h"

using namespace mc;
using namespace mc::bench;
using namespace mc::history;

namespace {

/// A well-formed random history: per-process chains of writes and reads
/// (reads resolve to the latest write of a random process at generation
/// time — consistent by construction), with barrier rounds interspersed.
History random_history(std::size_t procs, std::size_t ops_per_proc, std::uint64_t seed) {
  History h(procs);
  Rng rng(seed);
  std::vector<std::vector<std::pair<WriteId, Value>>> writes(procs);
  std::uint32_t epoch = 0;
  for (std::size_t step = 0; step < ops_per_proc; ++step) {
    if (step % 16 == 15) {
      for (ProcId p = 0; p < procs; ++p) h.barrier(p, epoch);
      ++epoch;
      continue;
    }
    for (ProcId p = 0; p < procs; ++p) {
      const auto x = static_cast<VarId>(rng.below(8));
      if (rng.chance(0.5)) {
        h.write(p, x, (std::uint64_t{p} << 32) | step);
        writes[p].push_back({h.last_write_of(p), (std::uint64_t{p} << 32) | step});
      } else if (!writes[p].empty()) {
        // Read own latest write: always valid under both disciplines.
        const auto& [id, v] = writes[p].back();
        const Operation& w_op = h.op(0);
        (void)w_op;
        Operation op;
        op.kind = OpKind::kRead;
        op.proc = p;
        op.var = h.op(static_cast<OpRef>(h.size() - 1)).var;  // placeholder, fixed below
        op.value = v;
        op.mode = rng.chance(0.5) ? ReadMode::kPram : ReadMode::kCausal;
        op.write_id = id;
        // Locate the var the write targeted.
        for (OpRef r = static_cast<OpRef>(h.size()); r-- > 0;) {
          if (h.op(r).write_id == id &&
              (h.op(r).kind == OpKind::kWrite || h.op(r).kind == OpKind::kDelta)) {
            op.var = h.op(r).var;
            break;
          }
        }
        h.add(op);
      }
    }
  }
  return h;
}

void report(Harness& h, const char* name, std::size_t ops_per_proc, std::size_t history_ops,
            const MicroResult& r) {
  std::printf("%-24s ops/proc=%-4zu history=%-5zu ops  %10.1f ns/op  "
              "(%llu iters in %.1fms)\n",
              name, ops_per_proc, history_ops, r.ns_per_op,
              static_cast<unsigned long long>(r.iterations), r.total_ms);
  auto& row = h.add_row(name);
  row.params["ops_per_proc"] = std::to_string(ops_per_proc);
  row.params["history_ops"] = std::to_string(history_ops);
  row.wall_ms = r.total_ms;
  row.stats["ns_per_op"] = r.ns_per_op;
  row.stats["iterations"] = static_cast<double>(r.iterations);
}

void checker_throughput(Harness& h) {
  const std::vector<std::size_t> sizes =
      h.smoke() ? std::vector<std::size_t>{16} : std::vector<std::size_t>{16, 64, 128};
  const double min_ms = h.smoke() ? 5.0 : 50.0;
  std::printf("\n=== C6 — checker throughput (4 procs, random histories) ===\n");
  for (const std::size_t ops : sizes) {
    const auto hist = random_history(4, ops, 11);
    report(h, "build-relations", ops, hist.size(),
           measure_op([&] { do_not_optimize(build_relations(hist)); }, min_ms));
  }
  for (const std::size_t ops : sizes) {
    const auto hist = random_history(4, ops, 13);
    const auto rel = build_relations(hist);
    report(h, "restrict-pram", ops, hist.size(),
           measure_op([&] { do_not_optimize(restrict_pram(hist, *rel, 1)); }, min_ms));
  }
  for (const std::size_t ops : sizes) {
    const auto hist = random_history(4, ops, 17);
    report(h, "check-mixed-consistency", ops, hist.size(),
           measure_op([&] { do_not_optimize(check_mixed_consistency(hist)); }, min_ms));
  }
}

/// F1: construct the Figure 1 shape — a write episode, two concurrent
/// reader episodes... (readers share one), another write episode, around a
/// barrier — and report the derived synchronization-order edges.
void figure1_table(Harness& harness) {
  History h(3);
  h.wlock(0, 0, 1);
  h.wunlock(0, 0, 1);
  h.rlock(1, 0, 2);
  h.rlock(2, 0, 2);
  h.runlock(1, 0, 2);
  h.runlock(2, 0, 2);
  h.wlock(0, 0, 3);
  h.wunlock(0, 0, 3);
  for (ProcId p = 0; p < 3; ++p) h.barrier(p, 0);
  h.write(0, 0, 42);
  const auto rel = build_relations(h);
  std::printf("\n=== F1 — Figure 1 synchronization orders ===\n");
  std::printf("history: %zu ops; |->lock edges=%zu |->bar edges=%zu causality edges=%zu\n",
              h.size(), rel->sync_lock.edge_count(), rel->sync_bar.edge_count(),
              rel->causality.edge_count());
  std::printf("reduced |->lock edges=%zu (the PRAM order keeps only direct "
              "episode-to-episode dependencies)\n",
              rel->sync_lock.reduced().edge_count());
  auto& row = harness.add_row("figure1-sync-orders");
  row.stats["history_ops"] = static_cast<double>(h.size());
  row.stats["lock_edges"] = static_cast<double>(rel->sync_lock.edge_count());
  row.stats["bar_edges"] = static_cast<double>(rel->sync_bar.edge_count());
  row.stats["causality_edges"] = static_cast<double>(rel->causality.edge_count());
  row.stats["reduced_lock_edges"] =
      static_cast<double>(rel->sync_lock.reduced().edge_count());
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("bench_history", argc, argv);
  h.config("procs", "4");

  checker_throughput(h);
  figure1_table(h);
  return 0;
}
