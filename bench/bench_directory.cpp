// Experiment C14 — directory-based partial replication (docs/DIRECTORY.md).
//
// PR 9's ownership directory against PR 4's broadcast batching, on a
// strip-partitioned keyspace at 64 simulated processes.  Each process owns
// a stripe of variables (which the static homing maps back to it), updates
// its own stripe every round, and reads a small window from its ring
// neighbour's stripe — the paper's locality assumption: the keyspace is
// far larger than any node's working set.
//
//   full-replication — kBatch staging, every update fanned out to all
//                      P-1 peers (PR 4 semantics).
//   directory        — the same staging, but each update multicast only
//                      to the variable's registered sharers; foreign
//                      reads demand-page replicas in and the LRU budget
//                      evicts cold ones.
//
// Expected shape: update fan-out drops from P-1 destinations per write to
// |sharers| (~1 here), so wire bytes collapse by roughly P/2x and wall
// time follows.  The CI acceptance gate asserts directory wins BOTH wire
// bytes and wall time at the full 64-process size.

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>

#include "bench_util.h"
#include "dsm/system.h"

using namespace mc;
using namespace mc::bench;

namespace {

struct Shape {
  std::size_t procs;
  std::size_t stripe;   // variables owned (and statically homed) per process
  std::size_t window;   // foreign variables read from the ring neighbour
  std::size_t rounds;
};

struct RunResult {
  double wall_ms = 0.0;
  MetricsSnapshot metrics;
  bool profiled = false;
  obs::ProfileReport profile;
};

RunResult run_case(const Harness& h, const Shape& s,
                   std::optional<dsm::DirectoryConfig> directory) {
  dsm::Config cfg;
  cfg.num_procs = s.procs;
  cfg.num_vars = s.procs * s.stripe;
  cfg.batching = dsm::BatchingConfig{};
  cfg.directory = directory;
  // Profile every variable (top_k = num_vars): the CI gate reads the full
  // per-variable fetch attribution to check that the boundary rows of each
  // stripe carry >= 90% of the fetch traffic (docs/PROFILING.md).
  if (h.profiling()) cfg.profile = h.profile_options(cfg.num_vars);
  dsm::MixedSystem sys(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  sys.run([&](dsm::Node& n, ProcId p) {
    const auto base = static_cast<VarId>(p * s.stripe);
    for (std::size_t r = 0; r < s.rounds; ++r) {
      // The read window walks the ring one stripe per round: the working
      // set churns, so the replica budget has cold replicas to evict.
      const auto neighbour =
          static_cast<VarId>(((p + 1 + r) % s.procs) * s.stripe);
      for (std::size_t i = 0; i < s.stripe; ++i) {
        n.write_int(base + static_cast<VarId>(i),
                    static_cast<Value>(100 * r + i));
      }
      n.barrier();
      for (std::size_t i = 0; i < s.window; ++i) {
        const Value got =
            n.read_int(neighbour + static_cast<VarId>(i), ReadMode::kPram);
        MC_CHECK(got == static_cast<Value>(100 * r + i));
      }
      n.barrier();
    }
  });
  RunResult out;
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  out.metrics = sys.metrics();
  if (h.profiling()) {
    out.profiled = true;
    out.profile = sys.profile();
  }
  return out;
}

void report(Harness& h, const std::string& name, const Shape& s,
            const RunResult& r) {
  std::printf("%-18s time=%8.2fms msgs=%-9llu bytes=%-11llu fills=%-6llu "
              "evicts=%-6llu batch-bytes=%llu\n",
              name.c_str(), r.wall_ms, msgs(r.metrics), bytes(r.metrics),
              static_cast<unsigned long long>(r.metrics.get("directory.fills")),
              static_cast<unsigned long long>(
                  r.metrics.get("directory.evictions")),
              static_cast<unsigned long long>(r.metrics.get("net.bytes.batch")));
  auto& row = h.add_row(name);
  row.params["variant"] = name;
  row.params["procs"] = std::to_string(s.procs);
  row.params["vars"] = std::to_string(s.procs * s.stripe);
  row.params["stripe"] = std::to_string(s.stripe);
  row.params["window"] = std::to_string(s.window);
  row.wall_ms = r.wall_ms;
  row.stats["rounds"] = static_cast<double>(s.rounds);
  row.metrics = r.metrics;
  if (r.profiled) Harness::set_profile(row, r.profile);
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("bench_directory", argc, argv);
  h.config("latency", "zero");
  h.config("fabric", "ideal");

  // Smoke shrinks the fleet, not the structure: the keyspace still dwarfs
  // the per-node working set, so the directory still pages and evicts.
  Shape s;
  s.procs = h.smoke() ? 8 : 64;
  s.stripe = 8;
  s.window = 4;
  s.rounds = h.smoke() ? 3 : 10;
  h.config("procs", std::to_string(s.procs));

  print_header("C14 — directory multicast vs full-replication broadcast "
               "(strip-partitioned keyspace, ring-neighbour working set)",
               "directory must beat full replication on BOTH wire bytes and "
               "wall time (CI acceptance gate at 64 processes)");

  const RunResult full = run_case(h, s, std::nullopt);
  report(h, "full-replication", s, full);

  dsm::DirectoryConfig dir;
  // Budget covers the neighbour window with a little slack; homed stripes
  // are pinned and never count against it.
  dir.replica_budget = s.window + 2;
  dir.fetch_frame = s.window;
  const RunResult directed = run_case(h, s, dir);
  report(h, "directory", s, directed);

  const double byte_shrink = static_cast<double>(bytes(full.metrics)) /
                             static_cast<double>(bytes(directed.metrics));
  const double speedup = full.wall_ms / directed.wall_ms;
  std::printf("\nbytes shrink: %.1fx   wall speedup: %.2fx\n", byte_shrink,
              speedup);
  return 0;
}
