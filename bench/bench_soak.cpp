// Chaos soak — long-horizon fault soak with the online consistency monitor
// and the time-series sampler attached (docs/FAULTS.md, docs/CHECKING.md §10).
//
// The Section 5 applications loop under a seeded fault plan (drops,
// duplicates, delay spikes) with the reliability layer repairing the
// channel.  Every iteration runs with a live ConsistencyMonitor attached to
// the nodes' operation sinks, so consistency is checked *while* the faults
// are active, not post-mortem; a background MetricsSampler diffs the merged
// metrics into timestamped delta records.  The run streams as JSONL
// (--jsonl): one meta line, sample lines from the time-series, one line per
// iteration with its verdict, a violation line (with the counterexample DOT
// embedded) if the monitor ever fires, and a final summary line.
// tools/validate_soak.py checks the stream's invariants.
//
//   bench_soak --duration 30 --seed 1 --jsonl soak.jsonl
//   bench_soak --smoke               # one quick pass per app
//   bench_soak --crash-rate 1 ...    # every iteration crash-stops a process
//
// With --crash-rate in (0, 1], that fraction of iterations runs an elastic
// variant (docs/FAULTS.md "Membership and views") and crash-stops one
// process mid-run on top of the usual chaos: the survivors must complete
// via the view change, the monitor must stay clean across the eviction, and
// each such iteration emits a view_change JSONL record with the final epoch.
//
// Clean runs must report zero violations: the faults live strictly below
// the reliability layer, so the memory-model guarantees still hold — that
// is the soak's whole point.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "apps/cholesky.h"
#include "apps/equation_solver.h"
#include "bench_util.h"
#include "dsm/system.h"
#include "net/fault.h"
#include "obs/json.h"
#include "obs/monitor.h"
#include "obs/timeseries.h"

using namespace mc;
using namespace mc::apps;
using namespace mc::bench;

namespace {

net::FaultPlan chaos_plan(std::uint64_t seed) {
  net::FaultPlan plan;
  plan.seed = seed;
  plan.drop_prob = 0.05;
  plan.dup_prob = 0.05;
  plan.delay_prob = 0.02;
  plan.delay_factor = 10.0;
  plan.delay_floor = std::chrono::microseconds(50);
  return plan;
}

/// splitmix64: decorrelate per-iteration seeds from the master seed.
std::uint64_t mix_seed(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Everything the sampler thread reads while iterations come and go.  The
/// cumulative snapshot accumulates counters (and overwrites gauges) across
/// finished iterations; the live monitor of the current iteration is
/// layered on top, so counter deltas stay monotone over the whole soak.
struct SoakState {
  std::mutex mu;
  MetricsSnapshot cumulative;
  obs::ConsistencyMonitor* live = nullptr;
  std::uint64_t iterations = 0;
  std::uint64_t stalls = 0;
  std::uint64_t crashes = 0;
  std::uint64_t view_changes = 0;
  std::uint64_t violations_causal = 0;
  std::uint64_t violations_pram = 0;
  std::uint64_t violations_mixed = 0;

  void merge(const MetricsSnapshot& add) {
    for (const auto& [k, v] : add.values) {
      if (obs::timeseries_is_gauge(k)) {
        cumulative.values[k] = v;
      } else {
        cumulative.values[k] += v;
      }
    }
  }

  [[nodiscard]] MetricsSnapshot snapshot() {
    std::scoped_lock lk(mu);
    MetricsSnapshot snap = cumulative;
    std::uint64_t vc = violations_causal, vp = violations_pram, vm = violations_mixed;
    if (live != nullptr) {
      const auto st = live->status();
      for (const auto& [k, v] : live->metrics().values) {
        if (obs::timeseries_is_gauge(k)) {
          snap.values[k] = v;
        } else {
          snap.values[k] += v;
        }
      }
      vc += st.counts.violations_causal;
      vp += st.counts.violations_pram;
      vm += st.counts.violations_mixed;
    }
    // Soak-wide rolling verdicts (1 = no violation of that model so far),
    // overriding the current iteration's local view.
    snap.values["monitor.verdict.causal"] = vc == 0 ? 1 : 0;
    snap.values["monitor.verdict.pram"] = vp == 0 ? 1 : 0;
    snap.values["monitor.verdict.mixed"] = vm == 0 ? 1 : 0;
    snap.values["soak.iterations"] = iterations;
    snap.values["soak.crashes"] = crashes;
    snap.values["soak.view_changes"] = view_changes;
    snap.values["watchdog.stalls"] = stalls;
    return snap;
  }
};

struct IterationOutcome {
  std::string app;
  double wall_ms = 0.0;
  bool stalled = false;
  std::string stall_reason;
  bool crashed = false;
  history::GraphVerdict verdict;
  obs::ConsistencyMonitor::Status status;
  std::string first_dot;
  MetricsSnapshot metrics;
  obs::ProfileReport profile;  ///< only under --profile
};

/// One application run under chaos with a fresh monitor attached.  The
/// monitor is per-iteration because WriteId sequence numbers restart with
/// each MixedSystem.  Crash iterations run the elastic variants and
/// crash-stop one process on top of the chaos plan.
IterationOutcome run_iteration(std::size_t which, std::uint64_t seed, bool crash,
                               const std::optional<obs::ProfilerOptions>& prof,
                               SoakState& state) {
  IterationOutcome out;
  out.crashed = crash;
  const auto cases = which % 4;

  std::size_t procs = 4;  // workers + coordinator
  if (!crash && (cases == 2 || cases == 3)) procs = 3;
  if (crash && cases % 2 == 1) procs = 3;
  auto monitor = std::make_unique<obs::ConsistencyMonitor>(procs);
  if (crash) monitor->enable_elastic(dsm::full_mask(procs));
  {
    std::scoped_lock lk(state.mu);
    state.live = monitor.get();
  }
  const auto hook = [&](dsm::MixedSystem& sys) { sys.attach_op_sink(monitor.get()); };
  const auto stall_timeout = std::chrono::seconds(10);

  if (crash) {
    if (cases % 2 == 0) {
      // Elastic barrier solver: one worker goes silent after an early
      // sweep; the coordinator keeps planning it until the reliability
      // layer's give-up verdict drives the eviction.
      const LinearSystem sys = LinearSystem::random(16, 2);
      SolverOptions opt;
      opt.workers = procs - 1;
      opt.seed = seed;
      opt.faults = chaos_plan(seed);
      opt.reliable = true;
      opt.system_hook = hook;
      opt.stall_timeout = stall_timeout;
      opt.profile = prof;
      ElasticSchedule sched;
      sched.crash_after[seed % opt.workers] = (seed >> 8) % 3;
      const SolverResult r = solve_barrier_elastic(sys, opt, sched);
      out.app = "solver-elastic-crash";
      out.wall_ms = r.elapsed_ms;
      out.stalled = r.stalled;
      out.stall_reason = r.stall_reason;
      out.metrics = r.metrics;
      out.profile = r.profile;
    } else {
      // Cholesky crash drill: the victim finishes its columns, then skips
      // the final barrier; the survivors complete via the view change.
      const SparseSpd m = SparseSpd::random(20, 3, 0.1, 3);
      const Symbolic sym = analyze(m);
      CholeskyOptions opt;
      opt.procs = procs;
      opt.seed = seed;
      // No chaos on top of the crash: the drill's contract is that the
      // victim's contributions all propagated before it went silent, but a
      // chaos-dropped copy whose retransmit the crash injector then kills
      // is lost forever — a survivor awaiting that count decrement stalls.
      // The solver iteration covers chaos+crash (sweeps self-heal).
      opt.reliable = true;
      opt.system_hook = hook;
      opt.stall_timeout = stall_timeout;
      opt.profile = prof;
      opt.crash_proc = static_cast<ProcId>(1 + seed % (procs - 1));
      const CholeskyResult r = cholesky_locks(m, sym, opt);
      out.app = "cholesky-locks-crash";
      out.wall_ms = r.elapsed_ms;
      out.stalled = r.stalled;
      out.stall_reason = r.stall_reason;
      out.metrics = r.metrics;
      out.profile = r.profile;
    }
  } else if (cases == 0 || cases == 1) {
    const LinearSystem sys = LinearSystem::random(16, 2);
    SolverOptions opt;
    opt.workers = procs - 1;
    opt.seed = seed;
    opt.faults = chaos_plan(seed);
    opt.reliable = true;
    opt.system_hook = hook;
    opt.stall_timeout = stall_timeout;
    opt.profile = prof;
    const SolverResult r =
        cases == 0 ? solve_barrier_pram(sys, opt) : solve_handshake_causal(sys, opt);
    out.app = cases == 0 ? "solver-barrier" : "solver-handshake";
    out.wall_ms = r.elapsed_ms;
    out.stalled = r.stalled;
    out.stall_reason = r.stall_reason;
    out.metrics = r.metrics;
    out.profile = r.profile;
  } else {
    const SparseSpd m = SparseSpd::random(20, 3, 0.1, 3);
    const Symbolic sym = analyze(m);
    CholeskyOptions opt;
    opt.procs = procs;
    opt.seed = seed;
    opt.faults = chaos_plan(seed);
    opt.reliable = true;
    opt.system_hook = hook;
    opt.stall_timeout = stall_timeout;
    opt.profile = prof;
    const CholeskyResult r =
        cases == 2 ? cholesky_locks(m, sym, opt) : cholesky_counters(m, sym, opt);
    out.app = cases == 2 ? "cholesky-locks" : "cholesky-counters";
    out.wall_ms = r.elapsed_ms;
    out.stalled = r.stalled;
    out.stall_reason = r.stall_reason;
    out.metrics = r.metrics;
    out.profile = r.profile;
  }

  // Detach from the sampler before the monitor is finalized and destroyed.
  {
    std::scoped_lock lk(state.mu);
    state.live = nullptr;
  }
  out.verdict = monitor->finalize();
  out.status = monitor->status();
  out.first_dot = monitor->first_violation_dot();

  std::scoped_lock lk(state.mu);
  state.merge(out.metrics);
  state.merge(monitor->metrics());
  ++state.iterations;
  if (out.stalled) ++state.stalls;
  if (crash) ++state.crashes;
  state.view_changes += out.metrics.get("view.changes");
  state.violations_causal += out.status.counts.violations_causal;
  state.violations_pram += out.status.counts.violations_pram;
  state.violations_mixed += out.status.counts.violations_mixed;
  return out;
}

void jsonl_verdict(obs::JsonWriter& w, const history::GraphVerdict& v) {
  w.key("verdict").begin_object();
  w.key("well_formed").value(v.well_formed);
  w.key("mixed").value(v.mixed.ok);
  w.key("causal").value(v.causal.ok);
  w.key("pram").value(v.pram.ok);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  double duration_s = 10.0;
  double crash_rate = 0.0;
  std::uint64_t seed = 1;
  std::string jsonl_path;

  // Peel off our own flags before Harness (which rejects unknown ones).
  std::vector<char*> pass{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--duration" && i + 1 < argc) {
      duration_s = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--jsonl" && i + 1 < argc) {
      jsonl_path = argv[++i];
    } else if (arg == "--crash-rate" && i + 1 < argc) {
      crash_rate = std::atof(argv[++i]);
    } else {
      pass.push_back(argv[i]);
    }
  }
  Harness h("bench_soak", static_cast<int>(pass.size()), pass.data());
  h.config("fault_plan", "drop=0.05 dup=0.05 delay=0.02x10+50us");
  h.config("seed", std::to_string(seed));
  h.config("crash_rate", std::to_string(crash_rate));
  if (h.smoke()) duration_s = 0.0;  // one rotation through the apps

  print_header("Chaos soak — online consistency monitoring under faults",
               "each iteration: one Section 5 app under chaos, live monitor "
               "attached, verdict per model");

  SoakState state;
  obs::MetricsSampler sampler([&state] { return state.snapshot(); },
                              std::chrono::milliseconds(250),
                              /*capacity=*/1 << 16);

  std::vector<std::string> iteration_lines;
  std::string violation_line;
  std::uint64_t violations_total = 0;
  std::uint64_t skipped_total = 0;
  bool structural_failure = false;

  // Under --profile, each iteration's contention profile merges into a
  // soak-cumulative report; the stream carries one `profile` record per
  // iteration (tracked/overflow counts are monotone — validate_soak.py
  // checks that).
  const std::optional<obs::ProfilerOptions> prof =
      h.profiling() ? std::optional(h.profile_options()) : std::nullopt;
  obs::ProfileReport cumulative_profile(prof.value_or(obs::ProfilerOptions{}));

  Stopwatch clock;
  std::size_t iter = 0;
  // At least one full rotation through the app mix, then run out the clock.
  std::uint64_t view_changes_cum = 0;
  while (iter < 4 || clock.elapsed_ms() < duration_s * 1000.0) {
    // Seeded crash decision: deterministic per (seed, iter), so a given
    // command line always crashes the same iterations.
    const bool crash =
        crash_rate > 0.0 &&
        static_cast<double>(mix_seed(seed * 1000003 + iter) % 1000000) <
            crash_rate * 1e6;
    const IterationOutcome out =
        run_iteration(iter, mix_seed(seed + iter), crash, prof, state);

    const auto& c = out.status.counts;
    const std::uint64_t iter_violations =
        c.violations_causal + c.violations_pram + c.violations_mixed;
    violations_total += iter_violations;
    skipped_total += out.status.skipped;
    structural_failure = structural_failure || out.status.structural_failed;

    obs::JsonWriter w(0);
    w.begin_object();
    w.key("type").value("iteration");
    w.key("n").value(static_cast<std::uint64_t>(iter));
    w.key("app").value(out.app);
    w.key("wall_ms").value(out.wall_ms);
    w.key("stalled").value(out.stalled);
    jsonl_verdict(w, out.verdict);
    w.key("ops").value(c.fed);
    w.key("live_nodes").value(c.live_nodes);
    w.key("retired").value(c.retired);
    w.key("prunes").value(c.prunes);
    w.key("skipped").value(out.status.skipped);
    w.end_object();
    iteration_lines.push_back(w.str());

    if (out.crashed) {
      // One membership record per crash iteration: the epoch the survivors
      // finished under plus the cumulative view-change count (monotone
      // across the stream — validate_soak.py checks both).
      view_changes_cum += out.metrics.get("view.changes");
      obs::JsonWriter vw(0);
      vw.begin_object();
      vw.key("type").value("view_change");
      vw.key("iteration").value(static_cast<std::uint64_t>(iter));
      vw.key("app").value(out.app);
      vw.key("epoch").value(out.metrics.get("view.epoch"));
      vw.key("faults").value(out.metrics.get("view.faults"));
      vw.key("locks_revoked").value(out.metrics.get("view.locks_revoked"));
      vw.key("reseed_assignments").value(out.metrics.get("view.reseed_assignments"));
      vw.key("total").value(view_changes_cum);
      vw.end_object();
      iteration_lines.push_back(vw.str());
    }

    if (prof.has_value()) {
      cumulative_profile.merge(out.profile);
      const auto hot_vars = cumulative_profile.top_vars(1);
      const auto hot_locks = cumulative_profile.top_locks(1);
      obs::JsonWriter pw(0);
      pw.begin_object();
      pw.key("type").value("profile");
      pw.key("iteration").value(static_cast<std::uint64_t>(iter));
      pw.key("app").value(out.app);
      pw.key("vars_tracked").value(
          static_cast<std::uint64_t>(cumulative_profile.vars.entries.size()));
      pw.key("vars_overflow").value(cumulative_profile.vars.overflow_events);
      pw.key("locks_tracked").value(
          static_cast<std::uint64_t>(cumulative_profile.locks.entries.size()));
      pw.key("locks_overflow").value(cumulative_profile.locks.overflow_events);
      pw.key("barriers_tracked").value(
          static_cast<std::uint64_t>(cumulative_profile.barriers.entries.size()));
      pw.key("barriers_overflow").value(cumulative_profile.barriers.overflow_events);
      if (!hot_vars.empty()) {
        pw.key("hot_var").value(static_cast<std::uint64_t>(hot_vars.front().first));
        pw.key("hot_var_ops").value(hot_vars.front().second.total_ops());
      }
      if (!hot_locks.empty()) {
        pw.key("hot_lock").value(static_cast<std::uint64_t>(hot_locks.front().first));
        pw.key("hot_lock_acquires").value(hot_locks.front().second.acquires);
      }
      pw.end_object();
      iteration_lines.push_back(pw.str());
    }

    if (iter_violations > 0 && violation_line.empty()) {
      obs::JsonWriter vw(0);
      vw.begin_object();
      vw.key("type").value("violation");
      vw.key("iteration").value(static_cast<std::uint64_t>(iter));
      vw.key("app").value(out.app);
      vw.key("message").value(out.verdict.mixed.ok ? out.verdict.causal.message()
                                                   : out.verdict.mixed.message());
      vw.key("dot").value(out.first_dot);
      vw.end_object();
      violation_line = vw.str();
      if (!jsonl_path.empty() && !out.first_dot.empty()) {
        std::ofstream dot(jsonl_path + ".cx.dot");
        dot << out.first_dot;
      }
    }

    std::printf("iter %-4zu %-18s %7.1fms  verdict mixed=%s causal=%s pram=%s "
                "ops=%-6llu live=%-5llu prunes=%-4llu%s\n",
                iter, out.app.c_str(), out.wall_ms,
                out.verdict.mixed.ok ? "ok" : "VIOLATION",
                out.verdict.causal.ok ? "ok" : "violation",
                out.verdict.pram.ok ? "ok" : "violation",
                static_cast<unsigned long long>(c.fed),
                static_cast<unsigned long long>(c.live_nodes),
                static_cast<unsigned long long>(c.prunes),
                out.stalled ? "  STALLED" : "");

    auto& row = h.add_row("soak-" + std::to_string(iter) + "-" + out.app);
    row.params["app"] = out.app;
    row.params["seed"] = std::to_string(mix_seed(seed + iter));
    row.wall_ms = out.wall_ms;
    row.metrics = out.metrics;
    if (prof.has_value() && !out.profile.empty()) {
      Harness::set_profile(row, out.profile);
    }
    ++iter;
  }

  sampler.stop();
  const MetricsSnapshot last = state.snapshot();

  if (!jsonl_path.empty()) {
    std::ofstream f(jsonl_path);
    obs::JsonWriter meta(0);
    meta.begin_object();
    meta.key("type").value("meta");
    meta.key("bench").value("bench_soak");
    meta.key("seed").value(seed);
    meta.key("duration_s").value(duration_s);
    meta.key("smoke").value(h.smoke());
    meta.key("crash_rate").value(crash_rate);
    meta.key("apps").begin_array();
    for (const char* a : {"solver-barrier", "solver-handshake", "cholesky-locks",
                          "cholesky-counters"}) {
      meta.value(a);
    }
    meta.end_array();
    meta.end_object();
    f << meta.str() << '\n';
    f << sampler.series().to_jsonl();
    for (const auto& line : iteration_lines) f << line << '\n';
    if (!violation_line.empty()) f << violation_line << '\n';

    obs::JsonWriter fin(0);
    fin.begin_object();
    fin.key("type").value("final");
    fin.key("iterations").value(static_cast<std::uint64_t>(iter));
    fin.key("stalls").value(state.stalls);
    fin.key("crashes").value(state.crashes);
    fin.key("view_changes").value(state.view_changes);
    fin.key("violations").value(violations_total);
    fin.key("skipped").value(skipped_total);
    fin.key("structural_failure").value(structural_failure);
    fin.key("verdict").begin_object();
    fin.key("causal").value(last.get("monitor.verdict.causal") == 1);
    fin.key("pram").value(last.get("monitor.verdict.pram") == 1);
    fin.key("mixed").value(last.get("monitor.verdict.mixed") == 1);
    fin.end_object();
    fin.key("samples").value(static_cast<std::uint64_t>(sampler.series().size()));
    fin.key("samples_dropped").value(sampler.series().dropped());
    fin.key("elapsed_s").value(clock.elapsed_ms() / 1000.0);
    fin.end_object();
    f << fin.str() << '\n';
    std::fprintf(stderr, "wrote %s (%zu samples, %zu iterations)\n",
                 jsonl_path.c_str(), sampler.series().size(), iter);
  }

  std::printf("\nsoak: %zu iterations, %llu violations, %llu stalls, "
              "%zu samples (%llu dropped)\n",
              iter, static_cast<unsigned long long>(violations_total),
              static_cast<unsigned long long>(state.stalls),
              sampler.series().size(),
              static_cast<unsigned long long>(sampler.series().dropped()));

  h.finish();
  return violations_total == 0 && !structural_failure ? 0 : 1;
}
