// Shared helpers for the experiment harnesses: table printing, hand-rolled
// micro-timing, and the observability wiring (the `--json` / `--trace`
// flags every bench binary supports).
//
// Each bench binary regenerates one experiment row-set from DESIGN.md's
// per-experiment index, printing machine-independent protocol costs
// (messages, bytes, blocked time) next to wall time — and, when asked,
// emitting the same rows as a versioned RunReport JSON document
// (docs/METRICS.md) plus an optional Chrome-trace event dump.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "common/check.h"
#include "common/stats.h"
#include "obs/critical_path.h"
#include "obs/profiler.h"
#include "obs/run_report.h"
#include "obs/tracer.h"

namespace mc::bench {

inline void print_header(const char* title, const char* columns) {
  std::printf("\n=== %s ===\n%s\n", title, columns);
}

inline unsigned long long msgs(const MetricsSnapshot& m) {
  return static_cast<unsigned long long>(m.get("net.messages"));
}

inline unsigned long long bytes(const MetricsSnapshot& m) {
  return static_cast<unsigned long long>(m.get("net.bytes"));
}

inline double blocked_ms(const MetricsSnapshot& m, const char* key = "dsm.blocked_ns") {
  return static_cast<double>(m.get(key)) / 1e6;
}

/// Harness-level observability: parses `--json <path>` (emit a RunReport
/// document on exit) and `--trace <path>` / the MC_TRACE environment
/// variable (enable the event tracer, dump Chrome-trace JSON on exit).
/// Construct once at the top of main; rows added via add_row() are written
/// when the harness is destroyed.
class Harness {
 public:
  Harness(const char* name, int argc, char** argv) {
    report_.bench = name;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        json_path_ = argv[++i];
      } else if (arg == "--trace" && i + 1 < argc) {
        trace_path_ = argv[++i];
      } else if (arg == "--smoke") {
        smoke_ = true;
      } else if (arg == "--profile") {
        profile_ = true;
      } else {
        std::fprintf(stderr,
                     "%s: unknown argument '%s' (supported: --json <path>, "
                     "--trace <path>, --smoke, --profile)\n",
                     name, argv[i]);
        std::exit(2);
      }
    }
    if (trace_path_.empty()) {
      if (const char* env = std::getenv("MC_TRACE")) trace_path_ = env;
    }
    if (!trace_path_.empty()) obs::Tracer::instance().enable();
    row_mark_ns_ = tracing() ? obs::Tracer::now_ns() : 0;
  }

  ~Harness() { finish(); }

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  /// Run-level configuration recorded in the report's `config` object.
  void config(const std::string& key, const std::string& value) {
    report_.config[key] = value;
  }

  /// CI smoke mode (`--smoke`): benches shrink to one tiny configuration —
  /// enough to exercise the measurement path and produce a valid RunReport,
  /// not enough to produce meaningful numbers.
  [[nodiscard]] bool smoke() const { return smoke_; }

  /// Whether `--trace` / MC_TRACE is active for this run.
  [[nodiscard]] bool tracing() const { return !trace_path_.empty(); }

  /// Whether `--profile` is active: benches thread profile_options() into
  /// Config::profile and attach the result to their rows via set_profile()
  /// (docs/PROFILING.md).
  [[nodiscard]] bool profiling() const { return profile_; }

  /// Sketch bounds for a profiled run.  Defaults; benches with more than
  /// `top_k` interesting objects widen it (bench_directory reports every
  /// variable so CI can check the fetch-traffic split).
  [[nodiscard]] obs::ProfilerOptions profile_options(
      std::size_t top_k = obs::ProfilerOptions{}.top_k) const {
    obs::ProfilerOptions opt;
    opt.top_k = top_k;
    return opt;
  }

  /// Attach a contention profile to a row (no-op shape: callers guard on
  /// profiling() themselves since collecting the report costs a merge).
  static void set_profile(obs::RunReport::Row& row, obs::ProfileReport profile) {
    row.profile_present = true;
    row.profile = std::move(profile);
  }

  /// Start the next row's trace window here (call right before the timed
  /// run).  Without an explicit mark the window starts at the previous
  /// add_row(), which also includes inter-case setup.
  void mark() {
    if (tracing()) row_mark_ns_ = obs::Tracer::now_ns();
  }

  /// Append a result row (fill params/wall_ms/metrics on the reference).
  /// Under --trace, the row gets a critical_path section computed from the
  /// events recorded since the last mark()/add_row() — so call this right
  /// after the case's run, before any other traced work.
  obs::RunReport::Row& add_row(std::string name) {
    obs::RunReport::Row& row = report_.add_row(std::move(name));
    if (tracing()) {
      const std::uint64_t now = obs::Tracer::now_ns();
      const obs::CriticalPath cp = obs::analyze_trace(
          obs::Tracer::instance().snapshot(), row_mark_ns_, now);
      row.critical_path.present = true;
      row.critical_path.total_ms = static_cast<double>(cp.total_ns) / 1e6;
      for (std::size_t c = 0; c < obs::kCpCategories; ++c) {
        if (cp.category_ns[c] == 0) continue;
        row.critical_path.category_ms[obs::to_string(
            static_cast<obs::CpCategory>(c))] =
            static_cast<double>(cp.category_ns[c]) / 1e6;
      }
      row.critical_path.dag_nodes = cp.dag_nodes;
      row.critical_path.path_nodes = cp.path_nodes;
      row_mark_ns_ = now;
    }
    return row;
  }

  /// The most recently added row (for attaching late-computed sections such
  /// as a profile collected after the row was emitted).
  obs::RunReport::Row& last_row() {
    MC_CHECK(!report_.rows.empty());
    return report_.rows.back();
  }

  /// Write the report and/or trace now (idempotent; the destructor calls it).
  void finish() {
    if (finished_) return;
    finished_ = true;
    if (!json_path_.empty()) {
      if (report_.write_file(json_path_)) {
        std::fprintf(stderr, "wrote %s (%zu rows)\n", json_path_.c_str(),
                     report_.rows.size());
      } else {
        std::fprintf(stderr, "FAILED to write %s\n", json_path_.c_str());
      }
    }
    if (!trace_path_.empty()) {
      obs::Tracer::instance().disable();
      if (obs::Tracer::instance().dump_chrome_trace(trace_path_)) {
        std::fprintf(stderr, "wrote %s (%llu events)\n", trace_path_.c_str(),
                     static_cast<unsigned long long>(
                         obs::Tracer::instance().events_recorded()));
      } else {
        std::fprintf(stderr, "FAILED to write %s\n", trace_path_.c_str());
      }
    }
  }

 private:
  obs::RunReport report_;
  std::string json_path_;
  std::string trace_path_;
  std::uint64_t row_mark_ns_ = 0;
  bool smoke_ = false;
  bool profile_ = false;
  bool finished_ = false;
};

/// Keep `value` observable so timing loops are not optimized away.
template <typename T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

struct MicroResult {
  double ns_per_op = 0.0;
  std::uint64_t iterations = 0;
  double total_ms = 0.0;
};

/// Repeat `op` until `min_ms` of wall time has elapsed (after a short
/// warmup) and report the mean cost per call.
template <typename F>
MicroResult measure_op(F&& op, double min_ms = 100.0) {
  for (int i = 0; i < 1024; ++i) op();
  MicroResult r;
  Stopwatch sw;
  do {
    for (int i = 0; i < 2048; ++i) op();
    r.iterations += 2048;
  } while (sw.elapsed_ms() < min_ms);
  r.total_ms = sw.elapsed_ms();
  r.ns_per_op = r.total_ms * 1e6 / static_cast<double>(r.iterations);
  return r;
}

}  // namespace mc::bench
