// Shared table-printing helpers for the experiment harnesses.
//
// Each bench binary regenerates one experiment row-set from DESIGN.md's
// per-experiment index, printing machine-independent protocol costs
// (messages, bytes, blocked time) next to wall time.

#pragma once

#include <cstdio>

#include "common/stats.h"

namespace mc::bench {

inline void print_header(const char* title, const char* columns) {
  std::printf("\n=== %s ===\n%s\n", title, columns);
}

inline unsigned long long msgs(const MetricsSnapshot& m) {
  return static_cast<unsigned long long>(m.get("net.messages"));
}

inline unsigned long long bytes(const MetricsSnapshot& m) {
  return static_cast<unsigned long long>(m.get("net.bytes"));
}

inline double blocked_ms(const MetricsSnapshot& m, const char* key = "dsm.blocked_ns") {
  return static_cast<double>(m.get(key)) / 1e6;
}

}  // namespace mc::bench
