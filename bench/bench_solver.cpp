// Experiments F2, F3, C1: the Section 5.1 equation solver.
//
// Regenerates the Section 7 comparison between the Figure 2 (barriers +
// PRAM) and Figure 3 (handshaking + causal) formulations, with the SC
// baseline as the strong-memory reference.  The paper's claim (C1): the
// barrier formulation outperforms handshaking.  Judged on protocol cost —
// messages, bytes, and time blocked in the consistency machinery.

#include <cstdio>
#include <string>
#include <vector>

#include "apps/equation_solver.h"
#include "bench_util.h"

using namespace mc;
using namespace mc::apps;
using namespace mc::bench;

namespace {

void run_case(Harness& h, std::size_t n, std::size_t workers) {
  const LinearSystem sys = LinearSystem::random(n, 1000 + n);
  SolverOptions opt;
  opt.workers = workers;
  opt.latency = net::LatencyModel::fast();
  opt.tol = 1e-8;
  if (h.profiling()) opt.profile = h.profile_options();

  SolverOptions no_ts = opt;
  no_ts.omit_timestamps = true;  // Section 6: legal because Fig 2 is
                                 // PRAM-consistent (Corollary 2)

  // Run each formulation and report it immediately, so that under --trace
  // the row's critical-path window covers exactly that solve.
  const auto run_one = [&](const char* name, auto&& solve,
                           const char* blocked_key) {
    h.mark();
    const SolverResult r = solve();
    std::printf("%-24s n=%-4zu workers=%zu iters=%-3zu time=%8.2fms msgs=%-8llu "
                "bytes=%-10llu blocked=%8.2fms\n",
                name, n, workers, r.iterations, r.elapsed_ms, msgs(r.metrics),
                bytes(r.metrics), blocked_ms(r.metrics, blocked_key));
    auto& out = h.add_row(name);
    out.params["n"] = std::to_string(n);
    out.params["workers"] = std::to_string(workers);
    out.wall_ms = r.elapsed_ms;
    out.stats["iterations"] = static_cast<double>(r.iterations);
    out.metrics = r.metrics;
    // The SC baseline runs without a profiler, so its report stays empty.
    if (h.profiling() && !r.profile.empty()) Harness::set_profile(out, r.profile);
  };
  run_one("fig2-barrier-pram", [&] { return solve_barrier_pram(sys, opt); },
          "dsm.blocked_ns");
  run_one("fig2-pram-no-timestamps", [&] { return solve_barrier_pram(sys, no_ts); },
          "dsm.blocked_ns");
  run_one("fig3-handshake-causal", [&] { return solve_handshake_causal(sys, opt); },
          "dsm.blocked_ns");
  if (n <= 24 && workers == 2) {
    // Section 7's chaotic-relaxation observation: converges with zero
    // synchronization, at the cost of free-running (redundant) sweeps and
    // update traffic.  Reported on the small case only; `iters` counts the
    // coordinator's residual polls.
    run_one("async-gauss-seidel", [&] { return solve_async_gauss_seidel(sys, opt); },
            "dsm.blocked_ns");
  }
  run_one("sc-baseline", [&] { return solve_sc_baseline(sys, opt); },
          "sc.blocked_ns");
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("bench_solver", argc, argv);
  h.config("latency", "fast");
  h.config("tol", "1e-8");

  print_header("F2/F3/C1 — iterative equation solver (Section 5.1, Figures 2-3)",
               "barrier+PRAM vs handshake+causal vs SC; expect fig2 cheapest "
               "(fewer messages, less blocking), SC most expensive");
  const std::vector<std::size_t> sizes =
      h.smoke() ? std::vector<std::size_t>{16} : std::vector<std::size_t>{24, 48, 96};
  const std::vector<std::size_t> worker_counts =
      h.smoke() ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4};
  for (const std::size_t n : sizes) {
    for (const std::size_t workers : worker_counts) {
      run_case(h, n, workers);
    }
    std::printf("\n");
  }
  return 0;
}
