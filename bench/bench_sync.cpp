// Experiments C4 and C5: the Section 6 synchronization design space.
//
// C4 — eager vs lazy vs demand-driven propagation for lock/unlock: a
// migratory critical section (read-modify-write ping-pong) under each
// policy.  Expected shape: eager pays flush probes + acks on every unlock;
// lazy defers to acquire-time blocking; demand-driven stops broadcasting
// entirely and ships values only when accessed.
//
// C5 — the count-vector barrier implementation: per-barrier cost as the
// process count grows (two messages per process per barrier).

#include <cstdio>
#include <string>

#include "baseline/hybrid_system.h"
#include "baseline/sc_system.h"
#include "bench_util.h"
#include "dsm/system.h"

using namespace mc;
using namespace mc::dsm;
using namespace mc::bench;

namespace {

void lock_policy_case(Harness& h, LockPolicy policy, std::size_t procs, int rounds) {
  Config cfg;
  cfg.num_procs = procs;
  cfg.num_vars = 8;
  cfg.default_lock_policy = policy;
  if (policy == LockPolicy::kDemand) {
    for (VarId x = 0; x < 4; ++x) cfg.demand_association[x] = 0;
  }
  cfg.latency = net::LatencyModel::fast();
  if (h.profiling()) cfg.profile = h.profile_options();
  MixedSystem sys(cfg);

  h.mark();  // critical-path window starts at the timed run, not at setup
  Stopwatch clock;
  sys.run([&](Node& n, ProcId) {
    for (int i = 0; i < rounds; ++i) {
      n.wlock(0);
      // Touch a small working set inside the critical section.
      for (VarId x = 0; x < 4; ++x) {
        n.write_int(x, n.read_int(x, ReadMode::kCausal) + 1);
      }
      n.wunlock(0);
    }
  });
  const double ms = clock.elapsed_ms();
  const auto m = sys.metrics();
  std::printf("%-8s procs=%zu rounds=%d time=%8.2fms msgs=%-8llu bytes=%-10llu "
              "updates=%-6llu syncs=%-5llu fetches=%-5llu blocked=%8.2fms\n",
              to_string(policy), procs, rounds, ms, msgs(m), bytes(m),
              static_cast<unsigned long long>(m.get("net.msg.update")),
              static_cast<unsigned long long>(m.get("net.msg.sync_req")),
              static_cast<unsigned long long>(m.get("net.msg.fetch_req")),
              blocked_ms(m));
  auto& row = h.add_row(std::string("lock-") + to_string(policy));
  row.params["policy"] = to_string(policy);
  row.params["procs"] = std::to_string(procs);
  row.params["rounds"] = std::to_string(rounds);
  row.wall_ms = ms;
  row.metrics = m;
  if (h.profiling()) Harness::set_profile(row, sys.profile());
}

void barrier_case(Harness& h, std::size_t procs, int rounds) {
  Config cfg;
  cfg.num_procs = procs;
  cfg.num_vars = 4;
  cfg.latency = net::LatencyModel::fast();
  if (h.profiling()) cfg.profile = h.profile_options();
  MixedSystem sys(cfg);
  h.mark();
  Stopwatch clock;
  sys.run([&](Node& n, ProcId) {
    for (int i = 0; i < rounds; ++i) n.barrier();
  });
  const double ms = clock.elapsed_ms();
  const auto m = sys.metrics();
  std::printf("barrier  procs=%zu rounds=%d time=%8.2fms per-barrier=%6.1fus "
              "msgs=%-7llu msgs/barrier=%.1f\n",
              procs, rounds, ms, 1000.0 * ms / rounds, msgs(m),
              static_cast<double>(m.get("net.messages")) / rounds);
  auto& row = h.add_row("barrier");
  row.params["procs"] = std::to_string(procs);
  row.params["rounds"] = std::to_string(rounds);
  row.wall_ms = ms;
  row.stats["us_per_barrier"] = 1000.0 * ms / rounds;
  row.stats["msgs_per_barrier"] = static_cast<double>(m.get("net.messages")) / rounds;
  row.metrics = m;
  if (h.profiling()) Harness::set_profile(row, sys.profile());
}

/// C10: a repeated producer/consumer handoff — the paper's await primitive
/// against hybrid consistency's strong operations (Section 2's comparison)
/// and the SC baseline.  `rounds` payload+flag pairs from p0 to p1, with a
/// third process as innocent bystander paying broadcast costs.
void handoff_case(Harness& h, int rounds) {
  const auto lat = net::LatencyModel::fast();

  // Each variant's report row is appended immediately after its run so the
  // row's critical-path window covers exactly that sub-run under --trace.
  const auto emit = [&](const char* name, double ms, const MetricsSnapshot& m) {
    auto& row = h.add_row(name);
    row.params["rounds"] = std::to_string(rounds);
    row.wall_ms = ms;
    row.metrics = m;
  };

  // Mixed consistency: weak writes + await (the |->await edge carries the
  // producer's context, PRAM reads suffice afterwards).
  double mixed_ms = 0.0;
  MetricsSnapshot mixed_m;
  {
    Config cfg;
    cfg.num_procs = 3;
    cfg.num_vars = 4;
    cfg.latency = lat;
    if (h.profiling()) cfg.profile = h.profile_options();
    MixedSystem sys(cfg);
    h.mark();
    Stopwatch clock;
    // Two-way handshake (the Figure 3 pattern): awaits are exact-value, so
    // the producer must not overwrite the flag before the consumer's
    // acknowledgement.
    sys.run([&](Node& n, ProcId p) {
      for (int r = 1; r <= rounds; ++r) {
        if (p == 0) {
          n.write(0, static_cast<Value>(r * 100));
          n.write(1, static_cast<Value>(r));
          n.await(2, static_cast<Value>(r));
        } else if (p == 1) {
          n.await(1, static_cast<Value>(r));
          std::ignore = n.read(0, ReadMode::kPram);
          n.write(2, static_cast<Value>(r));
        }
      }
    });
    mixed_ms = clock.elapsed_ms();
    mixed_m = sys.metrics();
    emit("handoff-mixed-await", mixed_ms, mixed_m);
    if (h.profiling()) Harness::set_profile(h.last_row(), sys.profile());
  }

  // Hybrid consistency: weak payload + strong flag, consumer polls with
  // strong reads.
  double hybrid_ms = 0.0;
  MetricsSnapshot hybrid_m;
  {
    baseline::HybridConfig cfg;
    cfg.num_procs = 3;
    cfg.num_vars = 4;
    cfg.latency = lat;
    baseline::HybridSystem sys(cfg);
    h.mark();
    Stopwatch clock;
    sys.run([&](baseline::HybridNode& n, ProcId p) {
      for (int r = 1; r <= rounds; ++r) {
        if (p == 0) {
          n.weak_write(0, static_cast<Value>(r * 100));
          n.strong_write(1, static_cast<Value>(r));
          while (n.strong_read(2) < static_cast<Value>(r)) std::this_thread::yield();
        } else if (p == 1) {
          while (n.strong_read(1) < static_cast<Value>(r)) std::this_thread::yield();
          std::ignore = n.weak_read(0);
          n.strong_write(2, static_cast<Value>(r));
        }
      }
    });
    hybrid_ms = clock.elapsed_ms();
    hybrid_m = sys.metrics();
    emit("handoff-hybrid-strong", hybrid_ms, hybrid_m);
  }

  // SC baseline: every write through the sequencer, consumer awaits.
  double sc_ms = 0.0;
  MetricsSnapshot sc_m;
  {
    baseline::ScConfig cfg;
    cfg.num_procs = 3;
    cfg.num_vars = 4;
    cfg.latency = lat;
    baseline::ScSystem sys(cfg);
    h.mark();
    Stopwatch clock;
    sys.run([&](baseline::ScNode& n, ProcId p) {
      for (int r = 1; r <= rounds; ++r) {
        if (p == 0) {
          n.write(0, static_cast<Value>(r * 100));
          n.write(1, static_cast<Value>(r));
          n.await(2, static_cast<Value>(r));
        } else if (p == 1) {
          n.await(1, static_cast<Value>(r));
          std::ignore = n.read(0);
          n.write(2, static_cast<Value>(r));
        }
      }
    });
    sc_ms = clock.elapsed_ms();
    sc_m = sys.metrics();
    emit("handoff-sc-baseline", sc_ms, sc_m);
  }

  std::printf("mixed-await     rounds=%d time=%8.2fms msgs=%-7llu bytes=%-9llu "
              "blocked=%8.2fms\n",
              rounds, mixed_ms, msgs(mixed_m), bytes(mixed_m), blocked_ms(mixed_m));
  std::printf("hybrid-strong   rounds=%d time=%8.2fms msgs=%-7llu bytes=%-9llu "
              "blocked=%8.2fms\n",
              rounds, hybrid_ms, msgs(hybrid_m), bytes(hybrid_m),
              blocked_ms(hybrid_m, "hybrid.blocked_ns"));
  std::printf("sc-baseline     rounds=%d time=%8.2fms msgs=%-7llu bytes=%-9llu "
              "blocked=%8.2fms\n",
              rounds, sc_ms, msgs(sc_m), bytes(sc_m), blocked_ms(sc_m, "sc.blocked_ns"));
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("bench_sync", argc, argv);
  h.config("latency", "fast");

  print_header("C4 — lock propagation policies (Section 6)",
               "migratory critical sections under eager / lazy / demand-driven "
               "update propagation");
  const int lock_rounds = h.smoke() ? 8 : 40;
  const std::vector<std::size_t> lock_procs =
      h.smoke() ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4};
  for (const std::size_t procs : lock_procs) {
    lock_policy_case(h, LockPolicy::kEager, procs, lock_rounds);
    lock_policy_case(h, LockPolicy::kLazy, procs, lock_rounds);
    lock_policy_case(h, LockPolicy::kDemand, procs, lock_rounds);
    std::printf("\n");
  }

  print_header("C5 — count-vector barrier cost (Section 6)",
               "two messages per process per barrier, one manager round trip");
  const std::vector<std::size_t> barrier_procs =
      h.smoke() ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4, 8};
  for (const std::size_t procs : barrier_procs) {
    barrier_case(h, procs, h.smoke() ? 10 : 100);
  }

  print_header("C10 — explicit synchronization vs strong operations (Section 2)",
               "producer/consumer handoff: mixed's await vs hybrid consistency's "
               "strong flag vs the SC baseline");
  handoff_case(h, h.smoke() ? 5 : 50);
  return 0;
}
