// Experiment C3: the paper's core premise (Sections 1 and 6) — weaker
// consistency means lower access latency.  Microbenchmarks of the memory
// operations on the mixed-consistency runtime and the SC baseline:
//
//   PRAM read  ~  causal read  <  mixed write (local apply + async
//   broadcast)  <<  SC write (sequencer round trip).
//
// Hand-rolled timing loops (bench_util.h) cover the unloaded fast path; a
// second table reports *blocked* time under a LAN-like latency model,
// where the SC write's round trip dominates.

#include <cstdio>
#include <tuple>

#include "baseline/sc_system.h"
#include "bench_util.h"
#include "dsm/system.h"

using namespace mc;
using namespace mc::bench;

namespace {

dsm::MixedSystem& mixed_instance() {
  static auto* sys = [] {
    dsm::Config cfg;
    cfg.num_procs = 4;
    cfg.num_vars = 64;
    return new dsm::MixedSystem(cfg);
  }();
  return *sys;
}

baseline::ScSystem& sc_instance() {
  static auto* sys = [] {
    baseline::ScConfig cfg;
    cfg.num_procs = 4;
    cfg.num_vars = 64;
    return new baseline::ScSystem(cfg);
  }();
  return *sys;
}

void report(Harness& h, const char* name, const MicroResult& r) {
  std::printf("%-18s %10.1f ns/op  (%llu iters in %.1fms)\n", name, r.ns_per_op,
              static_cast<unsigned long long>(r.iterations), r.total_ms);
  auto& row = h.add_row(name);
  row.wall_ms = r.total_ms;
  row.stats["ns_per_op"] = r.ns_per_op;
  row.stats["iterations"] = static_cast<double>(r.iterations);
}

void micro_table(Harness& h) {
  // Smoke runs trim each timing loop to ~2ms — enough to exercise the path,
  // not enough for stable numbers.
  const double min_ms = h.smoke() ? 2.0 : 100.0;
  std::printf("\n=== C3 — memory-operation fast-path latency (unloaded) ===\n");
  {
    dsm::Node& n = mixed_instance().node(0);
    n.write(0, 1);
    report(h, "mixed-pram-read",
           measure_op([&] { do_not_optimize(n.read(0, ReadMode::kPram)); }, min_ms));
  }
  {
    dsm::Node& n = mixed_instance().node(0);
    n.write(1, 1);
    report(h, "mixed-causal-read",
           measure_op([&] { do_not_optimize(n.read(1, ReadMode::kCausal)); }, min_ms));
  }
  {
    dsm::Node& n = mixed_instance().node(1);
    Value v = 0;
    report(h, "mixed-write", measure_op([&] { n.write(2, ++v); }, min_ms));
  }
  {
    dsm::Node& n = mixed_instance().node(2);
    report(h, "mixed-delta", measure_op([&] { n.dec_int(3, 1); }, min_ms));
  }
  {
    baseline::ScNode& n = sc_instance().node(0);
    n.write(0, 1);
    report(h, "sc-read", measure_op([&] { do_not_optimize(n.read(0)); }, min_ms));
  }
  {
    baseline::ScNode& n = sc_instance().node(1);
    Value v = 0;
    report(h, "sc-write", measure_op([&] { n.write(2, ++v); }, min_ms));
  }
}

/// Blocked-time table under LAN-like latency: every process writes a slot
/// and reads all others between barriers; SC pays a sequencer round trip
/// per write, the mixed system's writes stay asynchronous.
void latency_table(Harness& h) {
  const auto lat = net::LatencyModel::lan();
  const int kRounds = h.smoke() ? 3 : 30;

  dsm::Config mcfg;
  mcfg.num_procs = 4;
  mcfg.num_vars = 8;
  mcfg.latency = lat;
  if (h.profiling()) mcfg.profile = h.profile_options();
  dsm::MixedSystem mixed(mcfg);
  Stopwatch mix_clock;
  mixed.run([&](dsm::Node& n, ProcId p) {
    for (int i = 0; i < kRounds; ++i) {
      n.write_int(p, i);
      n.barrier();
      for (ProcId q = 0; q < 4; ++q) std::ignore = n.read_int(q, ReadMode::kPram);
      n.barrier();
    }
  });
  const double mixed_ms = mix_clock.elapsed_ms();

  baseline::ScConfig scfg;
  scfg.num_procs = 4;
  scfg.num_vars = 8;
  scfg.latency = lat;
  baseline::ScSystem sc(scfg);
  Stopwatch sc_clock;
  sc.run([&](baseline::ScNode& n, ProcId p) {
    for (int i = 0; i < kRounds; ++i) {
      n.write_int(p, i);
      n.barrier();
      for (ProcId q = 0; q < 4; ++q) std::ignore = n.read_int(q);
      n.barrier();
    }
  });
  const double sc_ms = sc_clock.elapsed_ms();

  std::printf("\n=== C3 — blocking under LAN latency (%d write/read rounds, 4 procs) ===\n",
              kRounds);
  std::printf("mixed (PRAM reads, async writes): time=%8.2fms blocked=%8.2fms\n",
              mixed_ms, blocked_ms(mixed.metrics()));
  std::printf("SC baseline (sequencer writes):   time=%8.2fms blocked=%8.2fms\n",
              sc_ms, blocked_ms(sc.metrics(), "sc.blocked_ns"));
  std::printf("expected shape: SC blocks for a round trip per write; the mixed "
              "system only blocks at barriers\n");

  auto& mrow = h.add_row("lan-mixed");
  mrow.params["latency"] = "lan";
  mrow.params["rounds"] = std::to_string(kRounds);
  mrow.wall_ms = mixed_ms;
  mrow.metrics = mixed.metrics();
  if (h.profiling()) Harness::set_profile(mrow, mixed.profile());
  auto& srow = h.add_row("lan-sc");
  srow.params["latency"] = "lan";
  srow.params["rounds"] = std::to_string(kRounds);
  srow.wall_ms = sc_ms;
  srow.metrics = sc.metrics();
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("bench_memory_ops", argc, argv);
  h.config("procs", "4");

  micro_table(h);
  latency_table(h);

  // The micro rows time the fast path of long-lived systems; attach their
  // cumulative runtime metrics once so histogram keys appear in the report.
  auto& mixed_row = h.add_row("micro-mixed-system");
  mixed_row.metrics = mixed_instance().metrics();
  auto& sc_row = h.add_row("micro-sc-system");
  sc_row.metrics = sc_instance().metrics();
  return 0;
}
