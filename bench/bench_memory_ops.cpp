// Experiment C3: the paper's core premise (Sections 1 and 6) — weaker
// consistency means lower access latency.  Microbenchmarks of the memory
// operations on the mixed-consistency runtime and the SC baseline:
//
//   PRAM read  ~  causal read  <  mixed write (local apply + async
//   broadcast)  <<  SC write (sequencer round trip).
//
// Google-benchmark timings cover the unloaded fast path; a second table
// reports *blocked* time under a LAN-like latency model, where the SC
// write's round trip dominates.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <tuple>

#include "baseline/sc_system.h"
#include "bench_util.h"
#include "dsm/system.h"

using namespace mc;

namespace {

dsm::MixedSystem& mixed_instance() {
  static auto* sys = [] {
    dsm::Config cfg;
    cfg.num_procs = 4;
    cfg.num_vars = 64;
    return new dsm::MixedSystem(cfg);
  }();
  return *sys;
}

baseline::ScSystem& sc_instance() {
  static auto* sys = [] {
    baseline::ScConfig cfg;
    cfg.num_procs = 4;
    cfg.num_vars = 64;
    return new baseline::ScSystem(cfg);
  }();
  return *sys;
}

void BM_MixedPramRead(benchmark::State& state) {
  dsm::Node& n = mixed_instance().node(0);
  n.write(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(n.read(0, ReadMode::kPram));
  }
}
BENCHMARK(BM_MixedPramRead);

void BM_MixedCausalRead(benchmark::State& state) {
  dsm::Node& n = mixed_instance().node(0);
  n.write(1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(n.read(1, ReadMode::kCausal));
  }
}
BENCHMARK(BM_MixedCausalRead);

void BM_MixedWrite(benchmark::State& state) {
  dsm::Node& n = mixed_instance().node(1);
  Value v = 0;
  for (auto _ : state) {
    n.write(2, ++v);
  }
}
BENCHMARK(BM_MixedWrite);

void BM_MixedDelta(benchmark::State& state) {
  dsm::Node& n = mixed_instance().node(2);
  for (auto _ : state) {
    n.dec_int(3, 1);
  }
}
BENCHMARK(BM_MixedDelta);

void BM_ScRead(benchmark::State& state) {
  baseline::ScNode& n = sc_instance().node(0);
  n.write(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(n.read(0));
  }
}
BENCHMARK(BM_ScRead);

void BM_ScWrite(benchmark::State& state) {
  baseline::ScNode& n = sc_instance().node(1);
  Value v = 0;
  for (auto _ : state) {
    n.write(2, ++v);
  }
}
BENCHMARK(BM_ScWrite);

/// Blocked-time table under LAN-like latency: every process writes a slot
/// and reads all others between barriers; SC pays a sequencer round trip
/// per write, the mixed system's writes stay asynchronous.
void latency_table() {
  using mc::bench::blocked_ms;
  const auto lat = net::LatencyModel::lan();
  constexpr int kRounds = 30;

  dsm::Config mcfg;
  mcfg.num_procs = 4;
  mcfg.num_vars = 8;
  mcfg.latency = lat;
  dsm::MixedSystem mixed(mcfg);
  Stopwatch mix_clock;
  mixed.run([&](dsm::Node& n, ProcId p) {
    for (int i = 0; i < kRounds; ++i) {
      n.write_int(p, i);
      n.barrier();
      for (ProcId q = 0; q < 4; ++q) std::ignore = n.read_int(q, ReadMode::kPram);
      n.barrier();
    }
  });
  const double mixed_ms = mix_clock.elapsed_ms();

  baseline::ScConfig scfg;
  scfg.num_procs = 4;
  scfg.num_vars = 8;
  scfg.latency = lat;
  baseline::ScSystem sc(scfg);
  Stopwatch sc_clock;
  sc.run([&](baseline::ScNode& n, ProcId p) {
    for (int i = 0; i < kRounds; ++i) {
      n.write_int(p, i);
      n.barrier();
      for (ProcId q = 0; q < 4; ++q) std::ignore = n.read_int(q);
      n.barrier();
    }
  });
  const double sc_ms = sc_clock.elapsed_ms();

  std::printf("\n=== C3 — blocking under LAN latency (30 write/read rounds, 4 procs) ===\n");
  std::printf("mixed (PRAM reads, async writes): time=%8.2fms blocked=%8.2fms\n",
              mixed_ms, blocked_ms(mixed.metrics()));
  std::printf("SC baseline (sequencer writes):   time=%8.2fms blocked=%8.2fms\n",
              sc_ms, blocked_ms(sc.metrics(), "sc.blocked_ns"));
  std::printf("expected shape: SC blocks for a round trip per write; the mixed "
              "system only blocks at barriers\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  latency_table();
  return 0;
}
