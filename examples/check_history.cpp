// check_history: a command-line consistency checker for history files.
//
//   build/examples/check_history <file>           # check a history file
//   build/examples/check_history --demo           # run on a built-in example
//   build/examples/check_history --dot <file>     # emit Graphviz instead
//   build/examples/check_history --dot-cx <file>  # emit the counterexample
//                                                 # cycle as Graphviz
//
// Reads the text format of history/text_format.h and reports, for the
// recorded execution: well-formedness, mixed consistency (Definition 4),
// whether *all* reads would pass as causal / as PRAM, sequential
// consistency (exhaustive search, small histories, cross-checked against
// the dependency-graph cycle analysis of docs/CHECKING.md), and the
// Theorem 1 / Corollary 1-2 program analyses.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "history/checkers.h"
#include "history/dot_export.h"
#include "history/incremental_checker.h"
#include "history/program_analysis.h"
#include "history/serialization.h"
#include "history/text_format.h"

using namespace mc;
using namespace mc::history;

namespace {

constexpr const char* kDemo = R"(# the paper's transitive-staleness shape
procs 3
0 write x0 1
1 read x0 1 causal
1 write x1 2
2 read x1 2 causal
2 read x0 0 pram @initial
)";

void report(const History& h) {
  std::printf("history: %zu processes, %zu operations\n", h.num_procs(), h.size());
  std::printf("%s", h.to_string().c_str());

  if (const auto wf = check_well_formed(h)) {
    std::printf("NOT well-formed: %s\n", wf->c_str());
    return;
  }
  std::printf("well-formed: yes\n");

  const auto mixed = check_mixed_consistency(h);
  std::printf("mixed consistent (per-read labels):   %s\n",
              mixed.ok ? "yes" : mixed.message().c_str());
  const auto causal = check_consistency(h, ReadDiscipline::kAllCausal);
  std::printf("all reads valid as causal reads:      %s\n",
              causal.ok ? "yes" : causal.message().c_str());
  const auto pram = check_consistency(h, ReadDiscipline::kAllPram);
  std::printf("all reads valid as PRAM reads:        %s\n",
              pram.ok ? "yes" : pram.message().c_str());

  const auto sc = check_sequential_consistency(h);
  if (sc.exhausted_budget) {
    std::printf("sequentially consistent:              (history too large to search)\n");
  } else {
    std::printf("sequentially consistent:              %s\n",
                sc.sequentially_consistent ? "yes" : "no");
  }

  const GraphVerdict gv = check_history_graph(h);
  if (gv.well_formed) {
    std::printf("graph checker: coherent=%s sc-graph=%s", gv.coherent ? "yes" : "no",
                gv.sc_acyclic ? "acyclic" : "cyclic");
    if (!gv.counterexample.empty()) {
      std::printf("  counterexample cycle: ");
      for (std::size_t i = 0; i < gv.counterexample.size(); ++i) {
        const auto& e = gv.counterexample[i];
        std::printf("%sn%u -%s-> n%u", i == 0 ? "" : ", ", e.from,
                    edge_type_name(e.type), e.to);
      }
      std::printf("  (render with --dot-cx)");
    }
    std::printf("\n");
  }

  const auto t1 = check_theorem1(h);
  std::printf("Theorem 1 precondition (commuting):   %s\n",
              t1.precondition_holds ? "yes" : t1.violations.front().c_str());
  if (const auto assoc = infer_lock_association(h)) {
    const auto entry = check_entry_consistent(h, *assoc);
    std::printf("entry-consistent (Corollary 1):       %s\n",
                entry.ok ? "yes" : entry.message().c_str());
  } else {
    std::printf("entry-consistent (Corollary 1):       no (accesses outside locks)\n");
  }
  const auto phases = check_pram_consistent_phases(h);
  std::printf("PRAM-consistent phases (Corollary 2): %s\n",
              phases.ok ? "yes" : phases.message().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool dot = false;
  bool dot_cx = false;
  const char* target = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--dot") {
      dot = true;
    } else if (std::string(argv[i]) == "--dot-cx") {
      dot_cx = true;
    } else {
      target = argv[i];
    }
  }
  if (target == nullptr) {
    std::fprintf(stderr, "usage: %s [--dot | --dot-cx] <history-file> | --demo\n",
                 argv[0]);
    return 2;
  }

  ParseResult parsed;
  if (std::string(target) == "--demo") {
    if (!dot) std::printf("(demo input)\n%s\n", kDemo);
    parsed = parse_history_text(kDemo);
  } else {
    std::ifstream in(target);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", target);
      return 2;
    }
    parsed = parse_history(in);
  }

  if (!parsed.history) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
    return 2;
  }
  if (dot) {
    std::printf("%s", to_dot(*parsed.history).c_str());
    return 0;
  }
  if (dot_cx) {
    const GraphVerdict gv = check_history_graph(*parsed.history);
    std::printf("%s", counterexample_to_dot(*parsed.history, gv.counterexample).c_str());
    return 0;
  }
  report(*parsed.history);
  return check_mixed_consistency(*parsed.history).ok ? 0 : 1;
}
