// Consistency lab: the model's hierarchy, demonstrated on paper (hand-built
// histories through the checkers) and in silicon (executions of the real
// runtime, recorded and re-checked).
//
//   build/examples/consistency_lab
//
// Walks through:
//   1. a PRAM-but-not-causal history (transitive staleness),
//   2. a causal-but-not-SC history (divergent observers),
//   3. Theorem 1 on a producer/consumer program,
//   4. the same producer/consumer program executed on the runtime, with
//      its trace checked mechanically.

#include <cstdio>
#include <tuple>

#include "dsm/system.h"
#include "history/checkers.h"
#include "history/program_analysis.h"
#include "history/serialization.h"

using namespace mc;
using namespace mc::history;

namespace {

void verdict(const char* what, bool ok) {
  std::printf("  %-52s %s\n", what, ok ? "yes" : "no");
}

void part1_transitive_staleness() {
  std::printf("\n[1] Transitive staleness — w0(x)1 |. r1(x)1 -> w1(y)2 |. r2(y)2 -> r2(x)0\n");
  History h(3);
  const OpRef wx = h.write(0, 0, 1);
  h.read(1, 0, 1, ReadMode::kCausal, h.op(wx).write_id);
  const OpRef wy = h.write(1, 1, 2);
  h.read(2, 1, 2, ReadMode::kCausal, h.op(wy).write_id);
  h.read(2, 0, 0, ReadMode::kCausal, kInitialWrite);
  verdict("all reads valid as PRAM reads (Definition 3)?",
          check_consistency(h, ReadDiscipline::kAllPram).ok);
  verdict("all reads valid as causal reads (Definition 2)?",
          check_consistency(h, ReadDiscipline::kAllCausal).ok);
  std::printf("  -> labeling the final read PRAM makes the history mixed consistent;\n"
              "     labeling it causal does not.\n");
}

void part2_divergent_observers() {
  std::printf("\n[2] Divergent observers — two readers see concurrent writes in opposite orders\n");
  History h(4);
  const OpRef w1 = h.write(0, 0, 1);
  const OpRef w2 = h.write(1, 0, 2);
  h.read(2, 0, 1, ReadMode::kCausal, h.op(w1).write_id);
  h.read(2, 0, 2, ReadMode::kCausal, h.op(w2).write_id);
  h.read(3, 0, 2, ReadMode::kCausal, h.op(w2).write_id);
  h.read(3, 0, 1, ReadMode::kCausal, h.op(w1).write_id);
  verdict("causally consistent?", check_consistency(h, ReadDiscipline::kAllCausal).ok);
  verdict("sequentially consistent (Definition 1 search)?",
          check_sequential_consistency(h).sequentially_consistent);
  std::printf("  -> causal memory admits executions no single serialization explains.\n");
}

void part3_theorem1() {
  std::printf("\n[3] Theorem 1 — producer/consumer with an await\n");
  History h(2);
  const OpRef w = h.write(0, 0, 7);
  const OpRef f = h.write(0, 1, 1);
  h.await(1, 1, 1, h.op(f).write_id);
  h.read(1, 0, 7, ReadMode::kCausal, h.op(w).write_id);
  const auto t = check_theorem1(h);
  verdict("every causally-unrelated pair commutes?", t.precondition_holds);
  verdict("every read is a causal read?", t.reads_causal);
  verdict("=> sequentially consistent (theorem)?", t.implies_sequentially_consistent());
  verdict("   confirmed by the exhaustive search?",
          check_sequential_consistency(h).sequentially_consistent);
}

void part4_runtime() {
  std::printf("\n[4] The same program on the runtime, trace-checked\n");
  dsm::Config cfg;
  cfg.num_procs = 2;
  cfg.num_vars = 4;
  cfg.record_trace = true;
  dsm::MixedSystem sys(cfg);
  sys.run([](dsm::Node& n, ProcId p) {
    if (p == 0) {
      n.write_int(0, 7);
      n.write_int(1, 1);
    } else {
      n.await_int(1, 1);
      std::ignore = n.read_int(0, ReadMode::kCausal);
      std::ignore = n.read_int(0, ReadMode::kPram);
    }
  });
  const auto h = sys.collect_history();
  std::printf("  recorded history:\n");
  std::printf("%s", h.to_string().c_str());
  verdict("mixed consistent (Definition 4)?", check_mixed_consistency(h).ok);
  const auto sc = check_sequential_consistency(h);
  verdict("sequentially consistent?", sc.sequentially_consistent);
}

}  // namespace

int main() {
  std::printf("mixed consistency lab — PRAM < causal < SC, mechanically\n");
  part1_transitive_staleness();
  part2_divergent_observers();
  part3_theorem1();
  part4_runtime();
  return 0;
}
