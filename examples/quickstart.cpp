// Quickstart: a five-minute tour of the mixed-consistency DSM.
//
//   build/examples/quickstart
//
// Demonstrates per-read consistency labels, the four synchronization
// primitives, counter objects, and checking a recorded execution against
// the paper's formal definitions.

#include <cstdio>

#include "dsm/system.h"
#include "history/checkers.h"

using namespace mc;

int main() {
  // A DSM with three processes and a handful of shared locations.
  // record_trace keeps a formal history we can check afterwards.
  dsm::Config cfg;
  cfg.num_procs = 3;
  cfg.num_vars = 8;
  cfg.record_trace = true;
  dsm::MixedSystem sys(cfg);

  constexpr VarId kData = 0;     // producer/consumer payload
  constexpr VarId kFlag = 1;     // handshake flag
  constexpr VarId kShared = 2;   // lock-protected accumulator
  constexpr VarId kCounter = 3;  // commutative counter object
  constexpr LockId kLock = 0;

  sys.node(0).write_int(kCounter, 10);  // initialize before going parallel

  sys.run([&](dsm::Node& node, ProcId p) {
    // Synchronize with the initialization write (programs that skip this
    // would race, and the checker below would say so).
    node.await_int(kCounter, 10);

    if (p == 0) {
      // Producer: fill the payload, then raise the flag.  The await on the
      // consumer side establishes the |->await synchronization edge.
      node.write_int(kData, 1234);
      node.write_int(kFlag, 1);
    } else if (p == 1) {
      // Consumer: awaits make the producer's context visible — even a
      // cheap PRAM read returns the payload.
      node.await_int(kFlag, 1);
      std::printf("consumer saw data = %lld (PRAM read)\n",
                  static_cast<long long>(node.read_int(kData, ReadMode::kPram)));
    }

    // Everyone: a lock-protected read-modify-write...
    node.wlock(kLock);
    node.write_int(kShared, node.read_int(kShared, ReadMode::kCausal) + 1);
    node.wunlock(kLock);

    // ...and a lock-free commutative decrement of the counter object.
    node.dec_int(kCounter, 2);

    // Barriers separate computation phases; all pre-barrier updates are
    // visible afterwards, even to PRAM reads.
    node.barrier();
    std::printf("p%u after barrier: shared=%lld counter=%lld\n", p,
                static_cast<long long>(node.read_int(kShared, ReadMode::kPram)),
                static_cast<long long>(node.read_int(kCounter, ReadMode::kPram)));
  });

  // Check the recorded execution against Definition 4 of the paper.
  const auto history = sys.collect_history();
  const auto verdict = history::check_mixed_consistency(history);
  std::printf("history of %zu operations is %s\n", history.size(),
              verdict.ok ? "mixed consistent" : verdict.message().c_str());

  const auto metrics = sys.metrics();
  std::printf("fabric traffic: %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(metrics.get("net.messages")),
              static_cast<unsigned long long>(metrics.get("net.bytes")));
  return verdict.ok ? 0 : 1;
}
