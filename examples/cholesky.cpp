// Section 5.3 example: sparse Cholesky factorization with Figure 5's
// lock-based algorithm against the counter-object formulation that
// Section 7 reports as significantly faster under Maya.
//
//   build/examples/cholesky [n] [procs]

#include <cstdio>
#include <cstdlib>

#include "apps/cholesky.h"

using namespace mc;
using namespace mc::apps;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
  const std::size_t procs = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;

  const SparseSpd m = SparseSpd::random(n, /*band=*/3, /*fill_prob=*/0.06, /*seed=*/7);
  const Symbolic sym = analyze(m);
  std::printf("matrix: n=%zu, nnz(A lower)=%zu, nnz(L with fill)=%zu\n", n,
              m.nnz_lower(), sym.fill_nnz());

  CholeskyOptions opt;
  opt.procs = procs;
  opt.latency = net::LatencyModel::fast();

  struct Row {
    const char* name;
    CholeskyResult result;
  };
  const Row rows[] = {
      {"figure-5 write locks + causal reads", cholesky_locks(m, sym, opt)},
      {"counter objects, no critical sections", cholesky_counters(m, sym, opt)},
  };

  std::printf("\n%-40s %9s %10s %12s %12s\n", "variant", "time(ms)", "messages",
              "bytes", "||LL^T-A||");
  for (const Row& row : rows) {
    std::printf("%-40s %9.2f %10llu %12llu %12.2e\n", row.name, row.result.elapsed_ms,
                static_cast<unsigned long long>(row.result.metrics.get("net.messages")),
                static_cast<unsigned long long>(row.result.metrics.get("net.bytes")),
                factorization_error(m, row.result.l));
  }
  std::printf("\nlock traffic: %llu lock requests in the Figure 5 run, %llu in the\n"
              "counter-object run (Section 5.3's point: commutativity removes the\n"
              "critical sections entirely).\n",
              static_cast<unsigned long long>(rows[0].result.metrics.get("net.msg.lock_req")),
              static_cast<unsigned long long>(rows[1].result.metrics.get("net.msg.lock_req")));
  return 0;
}
