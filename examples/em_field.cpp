// Section 5.2 example: electromagnetic-field computation on a strip-
// partitioned grid, with the paper's full-DSM sharing (the system provides
// "ghost copies" transparently) against hand-rolled boundary sharing and
// the SC baseline.
//
//   build/examples/em_field [grid] [procs] [steps]

#include <cstdio>
#include <cstdlib>

#include "apps/em_field.h"

using namespace mc;
using namespace mc::apps;

int main(int argc, char** argv) {
  EmProblem prob;
  prob.m = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 96;
  const std::size_t procs = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  prob.steps = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 12;

  const auto ref = em_reference(prob);

  struct Row {
    const char* name;
    EmResult result;
  };
  const Row rows[] = {
      {"mixed, full grid in DSM, PRAM", em_mixed(prob, procs, ReadMode::kPram, EmSharing::kFullGrid)},
      {"mixed, full grid in DSM, causal", em_mixed(prob, procs, ReadMode::kCausal, EmSharing::kFullGrid)},
      {"mixed, ghost boundaries, PRAM", em_mixed(prob, procs, ReadMode::kPram, EmSharing::kGhost)},
      {"SC baseline, ghost boundaries", em_sc(prob, procs)},
  };

  std::printf("grid=%zu procs=%zu steps=%zu\n", prob.m, procs, prob.steps);
  std::printf("%-34s %9s %10s %12s %8s\n", "variant", "time(ms)", "messages", "bytes",
              "exact?");
  for (const Row& row : rows) {
    const bool exact = row.result.e == ref.e && row.result.h == ref.h;
    std::printf("%-34s %9.2f %10llu %12llu %8s\n", row.name, row.result.elapsed_ms,
                static_cast<unsigned long long>(row.result.metrics.get("net.messages")),
                static_cast<unsigned long long>(row.result.metrics.get("net.bytes")),
                exact ? "yes" : "NO");
  }

  // A small field snapshot so the physics is visible.
  std::printf("\nfinal E field (every 8th node): ");
  for (std::size_t i = 0; i < prob.m; i += 8) std::printf("%+.3f ", ref.e[i]);
  std::printf("\n");
  return 0;
}
