// Section 5.1 example: solve a random diagonally dominant system with both
// of the paper's parallel formulations and the SC baseline, and compare
// their protocol costs.
//
//   build/examples/equation_solver [n] [workers]

#include <cstdio>
#include <cstdlib>

#include "apps/equation_solver.h"

using namespace mc;
using namespace mc::apps;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
  const std::size_t workers = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3;

  const LinearSystem sys = LinearSystem::random(n, /*seed=*/2026);
  SolverOptions opt;
  opt.workers = workers;
  opt.latency = net::LatencyModel::fast();

  const auto ref = jacobi_reference(sys, opt.tol, opt.max_iters);
  std::printf("reference: %zu iterations, residual < %g: %s\n", ref.iterations, opt.tol,
              ref.converged ? "yes" : "no");

  struct Row {
    const char* name;
    SolverResult result;
  };
  const Row rows[] = {
      {"figure-2 barriers + PRAM reads", solve_barrier_pram(sys, opt)},
      {"figure-3 handshake + causal reads", solve_handshake_causal(sys, opt)},
      {"SC baseline (sequencer memory)", solve_sc_baseline(sys, opt)},
  };

  std::printf("\n%-36s %6s %9s %10s %12s %10s\n", "variant", "iters", "time(ms)",
              "messages", "bytes", "err-vs-ref");
  for (const Row& row : rows) {
    const double err = max_abs_diff(row.result.x, ref.x);
    std::printf("%-36s %6zu %9.2f %10llu %12llu %10.2e\n", row.name,
                row.result.iterations, row.result.elapsed_ms,
                static_cast<unsigned long long>(row.result.metrics.get("net.messages")),
                static_cast<unsigned long long>(row.result.metrics.get("net.bytes")), err);
  }
  std::printf("\nSection 7's Maya observation: the barrier formulation outperforms the\n"
              "handshaking one — compare the message and time columns above.\n");
  return 0;
}
