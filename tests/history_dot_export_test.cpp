// DOT export: structure, edge labeling, escaping, and malformed input.

#include <gtest/gtest.h>

#include "history/dot_export.h"

namespace mc::history {
namespace {

History producer_consumer() {
  History h(2);
  const OpRef w = h.write(0, 0, 7);
  const OpRef f = h.write(0, 1, 1);
  h.await(1, 1, 1, h.op(f).write_id);
  h.read(1, 0, 7, ReadMode::kPram, h.op(w).write_id);
  return h;
}

TEST(DotExport, ContainsEveryOperationNode) {
  const History h = producer_consumer();
  const std::string dot = to_dot(h);
  for (OpRef r = 0; r < h.size(); ++r) {
    EXPECT_NE(dot.find("n" + std::to_string(r) + " [label="), std::string::npos) << r;
  }
  EXPECT_NE(dot.find("digraph history"), std::string::npos);
  EXPECT_EQ(dot.find("malformed"), std::string::npos);
}

TEST(DotExport, LabelsEdgesByRelation) {
  const std::string dot = to_dot(producer_consumer());
  EXPECT_NE(dot.find("label=\"po\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"rf\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"await\""), std::string::npos);
  EXPECT_EQ(dot.find("label=\"lock\""), std::string::npos);  // no lock ops
}

TEST(DotExport, ClustersByProcessByDefault) {
  const std::string dot = to_dot(producer_consumer());
  EXPECT_NE(dot.find("subgraph cluster_p0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_p1"), std::string::npos);
}

TEST(DotExport, OptionsDisableSections) {
  DotOptions opt;
  opt.include_program_order = false;
  opt.include_reads_from = false;
  opt.include_sync_orders = false;
  opt.cluster_by_process = false;
  const std::string dot = to_dot(producer_consumer(), opt);
  EXPECT_EQ(dot.find("label=\"po\""), std::string::npos);
  EXPECT_EQ(dot.find("label=\"rf\""), std::string::npos);
  EXPECT_EQ(dot.find("subgraph"), std::string::npos);
}

TEST(DotExport, ClosureEdgesAreOptIn) {
  DotOptions opt;
  opt.include_causality_closure = true;
  const std::string with = to_dot(producer_consumer(), opt);
  const std::string without = to_dot(producer_consumer());
  EXPECT_NE(with.find("style=dotted"), std::string::npos);
  EXPECT_EQ(without.find("style=dotted"), std::string::npos);
}

TEST(DotExport, MalformedHistoryYieldsCommentGraph) {
  History h(1);
  h.wunlock(0, 0, 1);  // unmatched
  const std::string dot = to_dot(h);
  EXPECT_NE(dot.find("malformed history"), std::string::npos);
}

TEST(DotExport, LockAndBarrierEdgesRendered) {
  History h(2);
  h.wlock(0, 0, 1);
  h.wunlock(0, 0, 1);
  h.wlock(1, 0, 2);
  h.wunlock(1, 0, 2);
  h.barrier(0, 0);
  h.barrier(1, 0);
  const std::string dot = to_dot(h);
  EXPECT_NE(dot.find("label=\"lock\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"bar\""), std::string::npos);
}

}  // namespace
}  // namespace mc::history
