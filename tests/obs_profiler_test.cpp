// Contention-profiler unit + end-to-end tests (docs/PROFILING.md): the
// bounded-sketch accounting (exact rows, overflow aggregate, counted
// overflow events), cap-respecting merge, deterministic rankings, the
// advisor/hot-summary passes, and the two system-level contracts — strict
// reconciliation against metrics() when enabled, zero profile surface when
// disabled.

#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "common/stats.h"
#include "dsm/system.h"
#include "net/latency.h"

namespace mc {
namespace {

using obs::BoundedTable;
using obs::ContentionProfiler;
using obs::ProfileReport;
using obs::ProfilerOptions;
using obs::VarProfile;

TEST(BoundedTableTest, OverflowAccountingIsExact) {
  BoundedTable<VarProfile> t;
  t.cap = 2;
  t.slot(10).reads += 1;
  t.slot(20).reads += 1;
  t.slot(10).writes += 1;  // existing id stays exact even when full
  t.slot(30).reads += 1;   // third id: routed to overflow
  t.slot(40).writes += 1;
  t.slot(30).reads += 1;  // still overflow — ids are not remembered there

  EXPECT_EQ(t.entries.size(), 2u);
  EXPECT_TRUE(t.entries.count(10));
  EXPECT_TRUE(t.entries.count(20));
  EXPECT_EQ(t.overflow_events, 3u);
  EXPECT_EQ(t.overflow.reads, 2u);
  EXPECT_EQ(t.overflow.writes, 1u);
  // Nothing was dropped: exact rows + overflow = everything recorded.
  const std::uint64_t reads =
      t.entries[10].reads + t.entries[20].reads + t.overflow.reads;
  EXPECT_EQ(reads, 4u);
}

TEST(BoundedTableTest, MergeRespectsDestinationCap) {
  BoundedTable<VarProfile> small;
  small.cap = 1;
  small.slot(1).reads = 5;

  BoundedTable<VarProfile> big;
  big.cap = 4;
  big.slot(1).reads = 2;
  big.slot(2).writes = 3;
  big.slot(3).reads = 7;
  big.overflow_events = 2;
  big.overflow.reads = 2;

  small.merge(big);
  // id 1 merged exactly; ids 2 and 3 spilled into overflow with their
  // event counts added to the tally; the source overflow carried over.
  EXPECT_EQ(small.entries.size(), 1u);
  EXPECT_EQ(small.entries[1].reads, 7u);
  EXPECT_EQ(small.overflow.writes, 3u);
  EXPECT_EQ(small.overflow.reads, 9u);
  EXPECT_EQ(small.overflow_events, 2u + 3u + 7u);
}

TEST(ProfileReportTest, RankingsAreDeterministicWithIdTieBreak) {
  ProfilerOptions opt;
  ProfileReport r(opt);
  r.vars.slot(7).reads = 10;
  r.vars.slot(3).reads = 10;  // tie with 7: lower id must rank first
  r.vars.slot(5).reads = 99;

  const auto top = r.top_vars(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 5u);
  EXPECT_EQ(top[1].first, 3u);
  EXPECT_EQ(top[2].first, 7u);
  // Repeated ranking of the same report is identical.
  const auto again = r.top_vars(3);
  ASSERT_EQ(again.size(), top.size());
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(again[i].first, top[i].first);
  }
}

TEST(ProfileReportTest, SnapshotIsConsistentAndMergeable) {
  ContentionProfiler p{ProfilerOptions{}};
  p.record_read(1);
  p.record_write(1);
  p.record_lock_acquire(4, 1000);
  p.record_lock_queue(4, 3, /*contended=*/true);
  p.record_barrier_instance(0, 500, 2);

  const ProfileReport a = p.snapshot();
  EXPECT_EQ(a.vars.entries.at(1).reads, 1u);
  EXPECT_EQ(a.locks.entries.at(4).max_queue, 3u);
  EXPECT_EQ(a.barriers.entries.at(0).arrivals, 2u);

  ProfileReport sum{ProfilerOptions{}};
  sum.merge(a);
  sum.merge(a);
  EXPECT_EQ(sum.vars.entries.at(1).reads, 2u);
  EXPECT_EQ(sum.locks.entries.at(4).acquire_ns_sum, 2000u);
  EXPECT_EQ(sum.barriers.entries.at(0).instances, 2u);
}

TEST(ProfileReportTest, AdvisorAndHotSummaryNameCulprits) {
  ProfileReport r{ProfilerOptions{}};
  auto& v = r.vars.slot(9);
  v.reads = 1000;
  v.writes = 1000;
  auto& l = r.locks.slot(2);
  l.acquires = 100;
  l.contended = 90;
  l.acquire_ns_sum = 90'000'000;
  l.acquire_ns_max = 5'000'000;
  l.holds = 100;
  l.hold_ns_sum = 1'000'000;
  l.max_queue = 7;

  const auto hot = r.hot_summary();
  ASSERT_FALSE(hot.empty());
  bool lock_named = false, var_named = false;
  for (const auto& line : hot) {
    lock_named |= line.find("lock 2") != std::string::npos;
    var_named |= line.find("var 9") != std::string::npos;
  }
  EXPECT_TRUE(lock_named);
  EXPECT_TRUE(var_named);
  // The advisor fires on a 90%-contended lock, and twice over the same
  // report is deterministic.
  const auto advice = r.advise();
  EXPECT_FALSE(advice.empty());
  EXPECT_EQ(advice, r.advise());
  // An empty report stays silent.
  EXPECT_TRUE(ProfileReport{ProfilerOptions{}}.advise().empty());
  EXPECT_TRUE(ProfileReport{ProfilerOptions{}}.hot_summary().empty());
}

dsm::Config profiled_config() {
  dsm::Config cfg;
  cfg.num_procs = 2;
  cfg.num_vars = 8;
  cfg.latency = net::LatencyModel::fast();
  cfg.profile = ProfilerOptions{};
  return cfg;
}

void contended_workload(dsm::MixedSystem& sys) {
  sys.run([](dsm::Node& n, ProcId p) {
    for (int i = 0; i < 20; ++i) {
      n.wlock(0);
      n.write_int(0, n.read_int(0, ReadMode::kCausal) + 1);
      n.wunlock(0);
      std::ignore = n.read_int(0, ReadMode::kPram);
      n.barrier();
    }
    if (p == 0) n.write(1, 7);
    n.barrier();
    n.await(1, 7);
  });
}

TEST(ProfilerSystemTest, EnabledRunReconcilesAgainstMetrics) {
  dsm::MixedSystem sys(profiled_config());
  contended_workload(sys);

  const ProfileReport pr = sys.profile();
  const MetricsSnapshot m = sys.metrics();
  ASSERT_FALSE(pr.empty());

  // The strict identities tools/validate_profile.py enforces in CI.
  VarProfile totals;
  for (const auto& [id, row] : pr.vars.entries) totals.merge(row);
  totals.merge(pr.vars.overflow);
  EXPECT_EQ(totals.reads, m.get("dsm.reads_pram") + m.get("dsm.reads_causal"));
  EXPECT_EQ(totals.writes, m.get("dsm.writes") + m.get("dsm.deltas"));

  // Lock 0 was acquired 40 times total (2 procs x 20), same as lockmgr.
  ASSERT_TRUE(pr.locks.entries.count(0));
  EXPECT_EQ(pr.locks.entries.at(0).acquires, m.get("lockmgr.grants"));
  EXPECT_GT(pr.locks.entries.at(0).acquire_ns_sum, 0u);
  EXPECT_GT(pr.barriers.entries.size(), 0u);

  // Sketch-occupancy metrics mirror the report.
  EXPECT_EQ(m.get("profile.vars.tracked"), pr.vars.entries.size());
  EXPECT_EQ(m.get("profile.locks.tracked"), pr.locks.entries.size());
  EXPECT_EQ(m.get("profile.vars.overflow"), 0u);
}

TEST(ProfilerSystemTest, DisabledRunHasZeroProfileSurface) {
  dsm::Config cfg = profiled_config();
  cfg.profile.reset();
  dsm::MixedSystem sys(cfg);
  contended_workload(sys);

  EXPECT_TRUE(sys.profile().empty());
  for (const auto& [key, value] : sys.metrics().values) {
    EXPECT_EQ(key.rfind("profile.", 0), std::string::npos)
        << "unprofiled run leaked metric " << key << " = " << value;
  }
}

TEST(ProfilerSystemTest, TinyCapsOverflowButStillReconcile) {
  dsm::Config cfg = profiled_config();
  ProfilerOptions tiny;
  tiny.max_vars = 1;  // 8 vars through a 1-row sketch: overflow is certain
  tiny.max_locks = 1;
  tiny.max_barriers = 1;
  cfg.profile = tiny;
  dsm::MixedSystem sys(cfg);
  sys.run([](dsm::Node& n, ProcId) {
    for (VarId v = 0; v < 8; ++v) n.write(v, static_cast<int>(v));
    n.barrier();
  });

  const ProfileReport pr = sys.profile();
  EXPECT_LE(pr.vars.entries.size(), 1u);
  EXPECT_GT(pr.vars.overflow_events, 0u);
  VarProfile totals;
  for (const auto& [id, row] : pr.vars.entries) totals.merge(row);
  totals.merge(pr.vars.overflow);
  const MetricsSnapshot m = sys.metrics();
  EXPECT_EQ(totals.writes, m.get("dsm.writes") + m.get("dsm.deltas"));
  EXPECT_EQ(m.get("profile.vars.overflow"), pr.vars.overflow_events);
}

}  // namespace
}  // namespace mc
