// Differential oracle for the graph checker (docs/CHECKING.md §7): every
// history in the litmus corpus, every shipped sample file, and a seeded sweep
// of randomized histories go through BOTH backends — the serialization-search
// checker and the incremental dependency-graph checker — and must agree.
//
// The contract being enforced:
//   - mixed / all-causal / all-PRAM verdicts are identical (ok flags always
//     match; on the curated corpus the first message matches too — both
//     backends scan reads in OpRef order, but when several writes intervene
//     they may name different witnesses, so randoms compare verdicts only);
//   - the graph's SC verdict is *sound*: a cycle over all edges means the
//     search checker must also reject the history (the converse need not
//     hold — the graph only inserts order edges it can prove).

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "history/checkers.h"
#include "history/incremental_checker.h"
#include "history/serialization.h"
#include "history/text_format.h"
#include "litmus_histories.h"

namespace mc::history {
namespace {

void expect_backends_agree(const History& h, const std::string& name,
                           bool compare_messages) {
  const CheckResult mixed_s = check_mixed_consistency(h, CheckerBackend::kSearch);
  const CheckResult mixed_g = check_mixed_consistency(h, CheckerBackend::kGraph);
  EXPECT_EQ(mixed_s.ok, mixed_g.ok) << name << " (mixed)";
  if (compare_messages && !mixed_s.ok && !mixed_g.ok) {
    ASSERT_FALSE(mixed_s.violations.empty()) << name;
    ASSERT_FALSE(mixed_g.violations.empty()) << name;
    EXPECT_EQ(mixed_s.violations.front(), mixed_g.violations.front()) << name;
  }

  for (const ReadDiscipline d : {ReadDiscipline::kAllCausal, ReadDiscipline::kAllPram}) {
    const char* dn = d == ReadDiscipline::kAllCausal ? "causal" : "pram";
    const CheckResult s = check_consistency(h, d, CheckerBackend::kSearch);
    const CheckResult g = check_consistency(h, d, CheckerBackend::kGraph);
    EXPECT_EQ(s.ok, g.ok) << name << " (" << dn << ")";
    if (compare_messages && !s.ok && !g.ok) {
      ASSERT_FALSE(s.violations.empty()) << name;
      ASSERT_FALSE(g.violations.empty()) << name;
      EXPECT_EQ(s.violations.front(), g.violations.front()) << name << " (" << dn << ")";
    }
  }

  // SC soundness: a cycle in the full dependency graph certifies that no
  // serialization exists, so search must reject too (unless it gave up).
  const GraphVerdict gv = check_history_graph(h);
  if (gv.well_formed && !gv.sc_acyclic) {
    const auto sc = check_sequential_consistency(h);
    if (!sc.exhausted_budget) {
      EXPECT_FALSE(sc.sequentially_consistent) << name << " (graph cycle but search says SC)";
    }
    EXPECT_FALSE(gv.counterexample.empty()) << name;
  }
}

TEST(Differential, LitmusCorpus) {
  for (const auto& [name, h] : litmus::corpus()) {
    SCOPED_TRACE(name);
    expect_backends_agree(h, name, /*compare_messages=*/true);
  }
}

// On the hand-named corpus the graph's sound edges are strong enough to
// decide SC exactly — except for counter-object value violations, which are
// arithmetic facts rather than order cycles and therefore invisible to the
// acyclicity test (docs/CHECKING.md §6); those histories are excluded.
TEST(Differential, LitmusCorpusScAgreesExactly) {
  for (const auto& [name, h] : litmus::corpus()) {
    bool has_delta = false;
    for (OpRef i = 0; i < h.size(); ++i) {
      has_delta |= h.op(i).kind == OpKind::kDelta;
    }
    if (has_delta && !check_mixed_consistency(h).ok) continue;
    const GraphVerdict gv = check_history_graph(h);
    ASSERT_TRUE(gv.well_formed) << name;
    const auto sc = check_sequential_consistency(h);
    ASSERT_FALSE(sc.exhausted_budget) << name;
    EXPECT_EQ(sc.sequentially_consistent, gv.sc_acyclic) << name;
  }
}

TEST(Differential, SampleHistoryFiles) {
  const std::filesystem::path dir(MC_HISTORY_SAMPLES_DIR);
  std::size_t n_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".mch") continue;
    ++n_files;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.is_open()) << entry.path();
    auto parsed = parse_history(in);
    ASSERT_TRUE(parsed.history.has_value()) << entry.path() << ": " << parsed.error;
    SCOPED_TRACE(entry.path().filename().string());
    expect_backends_agree(*parsed.history, entry.path().filename().string(),
                          /*compare_messages=*/true);
  }
  EXPECT_GE(n_files, 6u);  // the shipped samples, including store_buffer.mch
}

// Randomized sweep: small histories over a few variables where readers
// sometimes pick a deliberately stale source, plus occasional barriers so
// sync edges participate.  Every seed must produce identical verdicts.
History random_history(std::mt19937_64& rng) {
  const std::size_t procs = 2 + rng() % 3;
  const std::size_t vars = 1 + rng() % 3;
  History h(procs);
  // All writes observed so far, per var, in issue order.
  std::vector<std::vector<OpRef>> writes(vars);
  const std::size_t ops = 12 + rng() % 28;
  std::uint32_t epoch = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    const auto p = static_cast<ProcId>(rng() % procs);
    const auto x = static_cast<VarId>(rng() % vars);
    switch (rng() % 8) {
      case 0:
      case 1:
      case 2:
        writes[x].push_back(h.write(p, x, rng() % 5));
        break;
      case 3: {  // barrier round: everyone joins, then writes are fresh news
        for (ProcId q = 0; q < procs; ++q) h.barrier(q, epoch);
        ++epoch;
        break;
      }
      default: {
        if (writes[x].empty() || rng() % 5 == 0) {
          h.read(p, x, 0, ReadMode::kCausal, kInitialWrite);  // maybe stale
        } else {
          // Usually the latest write; sometimes an older (possibly stale) one.
          const std::size_t pick = rng() % 3 == 0 ? rng() % writes[x].size()
                                                  : writes[x].size() - 1;
          const OpRef w = writes[x][pick];
          const auto mode = rng() % 2 == 0 ? ReadMode::kCausal : ReadMode::kPram;
          h.read(p, x, h.op(w).value, mode, h.op(w).write_id);
        }
        break;
      }
    }
  }
  return h;
}

TEST(Differential, RandomizedHistories) {
  std::mt19937_64 rng(20260808);
  for (int trial = 0; trial < 400; ++trial) {
    const History h = random_history(rng);
    SCOPED_TRACE("trial " + std::to_string(trial));
    expect_backends_agree(h, "trial " + std::to_string(trial),
                          /*compare_messages=*/false);
  }
}

}  // namespace
}  // namespace mc::history
