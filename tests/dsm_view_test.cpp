// Elastic membership (dsm/view.h, docs/FAULTS.md "Membership and views"):
// the epoch-stamped reconfiguration protocol run by the view manager.
//
// Unit pieces (View mask helpers) plus whole-system protocol tests:
// graceful leave shrinks barriers without revoking anything, a crash-stop
// fault revokes the victim's locks and re-seeds its variables from the
// causally-latest surviving replica, and a live join demand-fetches the
// store under the new epoch before entering the application body.  The
// online ConsistencyMonitor rides along where noted and must stay clean
// across every view change.

#include "dsm/view.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "dsm/system.h"
#include "net/fault.h"
#include "obs/monitor.h"

namespace mc::dsm {
namespace {

using namespace std::chrono_literals;

constexpr auto kDeadline = 30s;

Config elastic_cfg(std::size_t procs) {
  Config cfg;
  cfg.num_procs = procs;
  cfg.num_vars = 128;
  cfg.elastic = true;
  cfg.record_trace = false;
  return cfg;
}

/// Fast give-up so crash tests reach their PeerUnreachable verdict quickly.
void fast_reliability(Config& cfg) {
  cfg.reliable = true;
  cfg.reliability.initial_rto = 200us;
  cfg.reliability.max_rto = 2ms;
  cfg.reliability.max_retries = 3;
  cfg.reliability.tick = 100us;
  cfg.reliability.jitter = 0.25;
  cfg.reliability.jitter_seed = 9;
}

TEST(View, MaskHelpers) {
  View v;
  EXPECT_EQ(v.epoch, 0u);

  v.alive_mask = full_mask(3);
  EXPECT_EQ(v.alive_mask, 0b111u);
  EXPECT_EQ(v.live_count(), 3u);
  EXPECT_TRUE(v.is_alive(0));
  EXPECT_TRUE(v.is_alive(2));
  EXPECT_FALSE(v.is_alive(3));

  v.alive_mask = mask_of(std::vector<ProcId>{0, 2});
  EXPECT_EQ(v.alive_mask, 0b101u);
  EXPECT_FALSE(v.is_alive(1));
  EXPECT_EQ(v.members(), (std::vector<ProcId>{0, 2}));

  v.epoch = 4;
  EXPECT_EQ(v.to_string(), "epoch 4 {0,2}");

  EXPECT_EQ(full_mask(64), ~std::uint64_t{0});
  EXPECT_EQ(popcount64(~std::uint64_t{0}), 64u);
  EXPECT_EQ(popcount64(0), 0u);
}

// A process that leaves gracefully: flushes, departs without revocations,
// and the survivors' next barrier rendezvouses the shrunken membership.
TEST(ElasticView, GracefulLeaveShrinksBarriersWithoutRevocation) {
  Config cfg = elastic_cfg(3);
  MixedSystem sys(cfg);

  obs::ConsistencyMonitor mon(3);
  mon.enable_elastic(full_mask(3));
  sys.attach_op_sink(&mon);

  const auto outcome = sys.run(
      [&](Node& n, ProcId p) {
        n.write_int(/*x=*/p, 100 + static_cast<std::int64_t>(p));
        n.barrier();
        for (ProcId q = 0; q < 3; ++q) {
          EXPECT_EQ(n.read_int(q, ReadMode::kPram), 100 + q);
        }
        if (p == 2) {
          n.leave();
          return;  // clean departure; no further participation
        }
        // Survivors: wait for the commit, then synchronize as a pair.
        while (n.view().epoch == 0) std::this_thread::sleep_for(200us);
        n.write_int(/*x=*/10 + p, 7);
        n.barrier();
        EXPECT_EQ(n.read_int(10 + (1 - p), ReadMode::kPram), 7);
      },
      kDeadline);
  EXPECT_FALSE(outcome.stalled) << outcome.diagnostics.reason;

  const View v = sys.view();
  EXPECT_EQ(v.epoch, 1u);
  EXPECT_EQ(v.live_count(), 2u);
  EXPECT_FALSE(v.is_alive(2));

  const auto snap = sys.metrics();
  EXPECT_EQ(snap.get("view.epoch"), 1u);
  EXPECT_EQ(snap.get("view.leaves"), 1u);
  EXPECT_EQ(snap.get("view.faults"), 0u);
  EXPECT_EQ(snap.get("view.locks_revoked"), 0u);

  const auto verdict = mon.finalize();
  EXPECT_TRUE(verdict.well_formed) << verdict.error;
  EXPECT_TRUE(verdict.causal.ok && verdict.pram.ok && verdict.mixed.ok);
  EXPECT_FALSE(mon.status().structural_failed);
}

// Crash-stop mid-run: the victim holds a write lock and owns the latest
// write of a variable when its endpoint goes silent.  The reliability
// layer's give-up verdict must drive a view change that revokes the lock
// (the blocked survivor acquires it) and re-seeds the variable from a
// surviving replica so the LWW winner stays well-defined.
TEST(ElasticView, CrashRevokesLocksAndReseedsVariables) {
  Config cfg = elastic_cfg(3);
  fast_reliability(cfg);
  MixedSystem sys(cfg);

  constexpr VarId kShared = 100;  // victim's last write, replicated pre-crash
  constexpr VarId kAck0 = 101, kAck1 = 102;
  constexpr LockId kLock = 7;

  const auto outcome = sys.run(
      [&](Node& n, ProcId p) {
        if (p == 2) {
          n.wlock(kLock);
          n.write_int(kShared, 55);
          // Make sure both survivors *applied* the write before dying, so
          // the causally-latest surviving replica is well-defined.
          n.await_int(kAck0, 1);
          n.await_int(kAck1, 1);
          net::FaultPlan crash;
          crash.crash_after_sends[/*endpoint=*/2] = 0;
          sys.fabric().inject_faults(crash);
          n.write_int(kShared, 56);  // tripwire: dropped, dies with the node
          return;                    // crash-stop: still holding kLock
        }
        n.await_int(kShared, 55);
        n.write_int(p == 0 ? kAck0 : kAck1, 1);
        // Heartbeats generate traffic toward the corpse until a channel
        // exhausts its retries and the view manager commits the eviction.
        std::int64_t beat = 0;
        while (n.view().epoch == 0) {
          n.write_int(/*x=*/110 + p, ++beat);
          std::this_thread::sleep_for(500us);
        }
        if (p == 0) {
          n.wlock(kLock);  // would deadlock forever without revocation
          EXPECT_EQ(n.read_int(kShared, ReadMode::kPram), 55);
          n.wunlock(kLock);
        }
        EXPECT_EQ(n.read_int(kShared, ReadMode::kCausal), 55);
      },
      kDeadline);
  EXPECT_FALSE(outcome.stalled) << outcome.diagnostics.reason;

  const View v = sys.view();
  EXPECT_GE(v.epoch, 1u);
  EXPECT_EQ(v.live_count(), 2u);
  EXPECT_FALSE(v.is_alive(2));

  const auto snap = sys.metrics();
  EXPECT_GE(snap.get("view.faults"), 1u);
  EXPECT_EQ(snap.get("view.locks_revoked"), 1u);
  // The victim's kShared write was re-mastered: one donor assignment, and
  // re-seed records actually moved.
  EXPECT_GE(snap.get("view.reseed_assignments"), 1u);
  EXPECT_GE(snap.get("view.reseed_records_out"), 1u);
  EXPECT_GE(snap.get("view.reseed_records_in"), 1u);
}

// Live join: a process outside the initial view joins mid-run, receives
// the store by state transfer under the new epoch, and participates in
// awaits, locks, and full barriers as a first-class member.
TEST(ElasticView, LiveJoinTransfersStateAndJoinsBarriers) {
  Config cfg = elastic_cfg(3);
  cfg.initial_members = std::vector<ProcId>{0, 1};
  MixedSystem sys(cfg);

  obs::ConsistencyMonitor mon(3);
  mon.enable_elastic(mask_of(std::vector<ProcId>{0, 1}));
  sys.attach_op_sink(&mon);

  constexpr VarId kA = 0, kB = 1, kC = 2, kUnderLock = 4;
  constexpr LockId kLock = 1;

  const auto outcome = sys.run(
      [&](Node& n, ProcId p) {
        if (p == 2) {
          n.join();
          EXPECT_TRUE(n.view().is_alive(2));
          // Pre-join writes must be visible (donor snapshot or update).
          n.await_int(kA, 11);
          n.await_int(kB, 22);
          n.wlock(kLock);
          n.write_int(kUnderLock, 44);
          n.wunlock(kLock);
          n.write_int(kC, 33);  // releases the others into the barrier
        } else {
          n.write_int(p == 0 ? kA : kB, p == 0 ? 11 : 22);
          n.await_int(kC, 33);
        }
        n.barrier();  // full barrier: all three, under epoch 1
        EXPECT_EQ(n.read_int(kA, ReadMode::kPram), 11);
        EXPECT_EQ(n.read_int(kB, ReadMode::kPram), 22);
        EXPECT_EQ(n.read_int(kC, ReadMode::kPram), 33);
        if (p == 0) {
          n.wlock(kLock);
          EXPECT_EQ(n.read_int(kUnderLock, ReadMode::kPram), 44);
          n.wunlock(kLock);
        }
      },
      kDeadline);
  EXPECT_FALSE(outcome.stalled) << outcome.diagnostics.reason;

  const View v = sys.view();
  EXPECT_EQ(v.epoch, 1u);
  EXPECT_EQ(v.live_count(), 3u);
  EXPECT_TRUE(v.is_alive(2));

  const auto snap = sys.metrics();
  EXPECT_EQ(snap.get("view.joins"), 1u);
  EXPECT_EQ(snap.get("view.locks_revoked"), 0u);

  const auto verdict = mon.finalize();
  EXPECT_TRUE(verdict.well_formed) << verdict.error;
  EXPECT_TRUE(verdict.causal.ok && verdict.pram.ok && verdict.mixed.ok);
  EXPECT_FALSE(mon.status().structural_failed);
}

// Config validation: elastic demands vector-clock mode and a sane initial
// membership.
TEST(ElasticView, RunsWithSingleInitialMemberAndGrows) {
  Config cfg = elastic_cfg(2);
  cfg.initial_members = std::vector<ProcId>{0};
  MixedSystem sys(cfg);

  const auto outcome = sys.run(
      [&](Node& n, ProcId p) {
        if (p == 1) {
          n.join();
          n.await_int(0, 5);
          n.write_int(1, 6);
        } else {
          n.write_int(0, 5);
          n.await_int(1, 6);
        }
        n.barrier();
      },
      kDeadline);
  EXPECT_FALSE(outcome.stalled) << outcome.diagnostics.reason;
  EXPECT_EQ(sys.view().live_count(), 2u);
}

}  // namespace
}  // namespace mc::dsm
