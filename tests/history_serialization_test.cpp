// The Definition 1 serialization search in depth: lock legality, await
// scheduling, counters, witness validity, and the search budget.

#include <gtest/gtest.h>

#include "history/causality.h"
#include "history/serialization.h"

namespace mc::history {
namespace {

/// Replays a witness and asserts it is a legal sequential history.
void assert_valid_witness(const History& h, const std::vector<OpRef>& order) {
  ASSERT_EQ(order.size(), h.size());
  std::vector<bool> done(h.size(), false);
  std::map<VarId, WriteId> last;
  std::map<VarId, std::int64_t> counters;
  const auto rel = build_relations(h);
  ASSERT_TRUE(rel.has_value());
  for (const OpRef r : order) {
    const Operation& op = h.op(r);
    for (OpRef p = 0; p < h.size(); ++p) {
      if (rel->causality.get(p, r)) {
        EXPECT_TRUE(done[p]) << "causality violated";
      }
    }
    if (op.kind == OpKind::kWrite) {
      last[op.var] = op.write_id;
      counters[op.var] = static_cast<std::int64_t>(op.value);
    }
    if (op.kind == OpKind::kDelta) {
      last[op.var] = op.write_id;
      counters[op.var] -= int_of(op.value);
    }
    if (op.kind == OpKind::kRead) {
      EXPECT_EQ(last[op.var], op.write_id) << "read of a non-latest write";
    }
    done[r] = true;
  }
}

TEST(Serialization, WitnessIsAValidSequentialHistory) {
  History h(3);
  const OpRef w1 = h.write(0, 0, 1);
  h.read(1, 0, 1, ReadMode::kCausal, h.op(w1).write_id);
  const OpRef w2 = h.write(1, 1, 2);
  h.read(2, 1, 2, ReadMode::kCausal, h.op(w2).write_id);
  const auto sc = check_sequential_consistency(h);
  ASSERT_TRUE(sc.sequentially_consistent);
  assert_valid_witness(h, sc.witness);
}

TEST(Serialization, LockSemanticsConstrainTheSearch) {
  // p0's read inside a critical section and p1's write inside another on
  // the same lock: the episode order forces the read before the write, so
  // the read must return the initial value.
  History h(2);
  h.wlock(0, 0, 1);
  h.read(0, 3, 0, ReadMode::kCausal, kInitialWrite);
  h.wunlock(0, 0, 1);
  h.wlock(1, 0, 2);
  h.write(1, 3, 9);
  h.wunlock(1, 0, 2);
  EXPECT_TRUE(check_sequential_consistency(h).sequentially_consistent);

  // Flip the value: reading 9 before the episode that writes it is
  // impossible.
  History bad(2);
  bad.wlock(0, 0, 1);
  bad.read(0, 3, 9, ReadMode::kCausal, WriteId{1, 1});
  bad.wunlock(0, 0, 1);
  bad.wlock(1, 0, 2);
  bad.write(1, 3, 9);
  bad.wunlock(1, 0, 2);
  std::string err;
  const auto rel = build_relations(bad, &err);
  // The reads-from edge against the lock order makes causality cyclic —
  // rejected before any search.
  EXPECT_FALSE(rel.has_value());
  EXPECT_NE(err.find("cyclic"), std::string::npos);
}

TEST(Serialization, AwaitSchedulesOnlyWhenValueHolds) {
  // await(x=2) with an interposed overwrite: serialization must order the
  // await between w(x)2 and w(x)3.
  History h(2);
  const OpRef w2 = h.write(0, 0, 2);
  h.write(0, 0, 3);
  h.await(1, 0, 2, h.op(w2).write_id);
  const OpRef r = h.read(1, 0, 3, ReadMode::kCausal, WriteId{0, 2});
  (void)r;
  const auto sc = check_sequential_consistency(h);
  ASSERT_TRUE(sc.sequentially_consistent);
  assert_valid_witness(h, sc.witness);
}

TEST(Serialization, CountersSerializeByValue) {
  History h(2);
  h.write(0, 0, 10);
  h.delta(0, 0, 1);
  h.delta(1, 0, 1);
  // A read of 9 must sit between the two decrements.
  h.read(0, 0, 9, ReadMode::kCausal);
  EXPECT_TRUE(check_sequential_consistency(h).sequentially_consistent);

  History bad(2);
  bad.write(0, 0, 10);
  bad.delta(0, 0, 1);
  bad.delta(1, 0, 1);
  bad.read(0, 0, 7, ReadMode::kCausal);  // unreachable value
  EXPECT_FALSE(check_sequential_consistency(bad).sequentially_consistent);
}

TEST(Serialization, BudgetCapsTheSearch) {
  History h(2);
  for (int i = 0; i < 10; ++i) h.write(0, 0, 100 + i);
  const auto sc = check_sequential_consistency(h, /*max_ops=*/4);
  EXPECT_TRUE(sc.exhausted_budget);
  EXPECT_FALSE(sc.sequentially_consistent);
}

TEST(Serialization, MalformedHistoryReportsError) {
  History h(1);
  h.wunlock(0, 0, 1);
  const auto sc = check_sequential_consistency(h);
  EXPECT_FALSE(sc.sequentially_consistent);
  EXPECT_FALSE(sc.error.empty());
}

TEST(Serialization, MemoizationHandlesWideHistories) {
  // 3 processes x 8 independent writes each: huge interleaving space, but
  // the memoized search must finish fast.
  History h(3);
  for (ProcId p = 0; p < 3; ++p) {
    for (int i = 0; i < 8; ++i) {
      h.write(p, static_cast<VarId>(p), static_cast<Value>(i + 1000 * p));
    }
  }
  const auto sc = check_sequential_consistency(h);
  EXPECT_TRUE(sc.sequentially_consistent);
}

TEST(Serialization, IrifWitnessRespectsBarriers) {
  History h(2);
  const OpRef w = h.write(0, 0, 5);
  h.barrier(0, 0);
  h.barrier(1, 0);
  const OpRef r = h.read(1, 0, 5, ReadMode::kPram, h.op(w).write_id);
  const auto sc = check_sequential_consistency(h);
  ASSERT_TRUE(sc.sequentially_consistent);
  std::size_t pos_w = 0;
  std::size_t pos_r = 0;
  for (std::size_t i = 0; i < sc.witness.size(); ++i) {
    if (sc.witness[i] == w) pos_w = i;
    if (sc.witness[i] == r) pos_r = i;
  }
  EXPECT_LT(pos_w, pos_r);
}

}  // namespace
}  // namespace mc::history
