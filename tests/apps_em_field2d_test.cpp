// 2-D TE-mode Yee scheme (Section 5.2's full-size shape): strip-parallel
// runs agree bitwise with the sequential reference.

#include <gtest/gtest.h>

#include "apps/em_field2d.h"

namespace mc::apps {
namespace {

struct Case {
  std::size_t nx;
  std::size_t ny;
  std::size_t steps;
  std::size_t procs;
};

class Em2dSweep : public ::testing::TestWithParam<Case> {};

INSTANTIATE_TEST_SUITE_P(Grids, Em2dSweep,
                         ::testing::Values(Case{16, 16, 6, 2}, Case{24, 16, 5, 3},
                                           Case{32, 24, 4, 4}, Case{17, 9, 7, 3}),
                         [](const auto& info) {
                           return "x" + std::to_string(info.param.nx) + "y" +
                                  std::to_string(info.param.ny) + "_t" +
                                  std::to_string(info.param.steps) + "_p" +
                                  std::to_string(info.param.procs);
                         });

TEST_P(Em2dSweep, MatchesReferenceExactly) {
  Em2dProblem prob;
  prob.nx = GetParam().nx;
  prob.ny = GetParam().ny;
  prob.steps = GetParam().steps;
  const auto ref = em2d_reference(prob);
  const auto par = em2d_mixed(prob, GetParam().procs, ReadMode::kPram);
  EXPECT_EQ(ref.ez, par.ez);
  EXPECT_EQ(ref.hx, par.hx);
  EXPECT_EQ(ref.hy, par.hy);
}

TEST(Em2d, CausalModeAlsoExact) {
  Em2dProblem prob;
  prob.nx = 20;
  prob.ny = 12;
  prob.steps = 5;
  const auto ref = em2d_reference(prob);
  const auto par = em2d_mixed(prob, 3, ReadMode::kCausal);
  EXPECT_EQ(ref.ez, par.ez);
}

TEST(Em2d, PulseSpreadsFromCenter) {
  Em2dProblem prob;
  prob.nx = 32;
  prob.ny = 32;
  prob.steps = 12;
  const auto ref = em2d_reference(prob);
  // H fields pick up energy as the pulse propagates.
  double h_energy = 0.0;
  for (const double v : ref.hx) h_energy += v * v;
  for (const double v : ref.hy) h_energy += v * v;
  EXPECT_GT(h_energy, 1e-4);
  // Total energy stays bounded (stable Courant number).
  double total = h_energy;
  for (const double v : ref.ez) total += v * v;
  EXPECT_LT(total, 1e4);
}

TEST(Em2d, OnlyBoundaryRowsCrossTheFabric) {
  Em2dProblem prob;
  prob.nx = 32;
  prob.ny = 16;
  prob.steps = 6;
  const auto par = em2d_mixed(prob, 4, ReadMode::kPram);
  // Per step: each proc publishes <= 2 rows of ny values to 3 peers, plus
  // the initial publication and barrier traffic — far below shipping the
  // whole grid every phase.
  const auto updates = par.metrics.get("net.msg.update");
  EXPECT_LT(updates, (prob.steps + 1) * 2 * prob.ny * 4 * 3 + 1);
  EXPECT_GT(updates, 0u);
}

TEST(Em2d, WorksUnderLatency) {
  Em2dProblem prob;
  prob.nx = 16;
  prob.ny = 8;
  prob.steps = 4;
  const auto ref = em2d_reference(prob);
  const auto par = em2d_mixed(prob, 2, ReadMode::kPram, net::LatencyModel::fast());
  EXPECT_EQ(ref.ez, par.ez);
}

}  // namespace
}  // namespace mc::apps
