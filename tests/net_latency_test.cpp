// LatencyStamper and LatencyModel unit tests: monotone per-channel stamps
// under jitter, bandwidth terms, and determinism.

#include <gtest/gtest.h>

#include "net/latency.h"

namespace mc::net {
namespace {

Message msg(Endpoint src, Endpoint dst, std::size_t payload_words = 0) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.payload.assign(payload_words, 0);
  return m;
}

TEST(LatencyModel, ZeroModelIsZero) {
  EXPECT_TRUE(LatencyModel::zero().is_zero());
  EXPECT_FALSE(LatencyModel::lan().is_zero());
  EXPECT_FALSE(LatencyModel::fast().is_zero());
}

TEST(LatencyStamper, ZeroModelStampsNow) {
  LatencyStamper s(LatencyModel::zero(), 2, 1);
  const SimTime now = std::chrono::steady_clock::now();
  EXPECT_EQ(s.stamp(msg(0, 1), now), now);
}

TEST(LatencyStamper, BaseDelayApplied) {
  LatencyModel m;
  m.base = std::chrono::microseconds(100);
  LatencyStamper s(m, 2, 1);
  const SimTime now = std::chrono::steady_clock::now();
  EXPECT_EQ(s.stamp(msg(0, 1), now) - now, std::chrono::microseconds(100));
}

TEST(LatencyStamper, PerWordBandwidthTerm) {
  LatencyModel m;
  m.base = std::chrono::microseconds(10);
  m.per_word = std::chrono::nanoseconds(500);
  LatencyStamper s(m, 2, 1);
  const SimTime now = std::chrono::steady_clock::now();
  const auto small = s.stamp(msg(0, 1, 0), now) - now;
  const auto big = s.stamp(msg(1, 0, 100), now) - now;  // different channel
  EXPECT_EQ(big - small, std::chrono::nanoseconds(500) * 100);
}

TEST(LatencyStamper, ChannelStampsAreStrictlyMonotoneUnderJitter) {
  LatencyModel m;
  m.base = std::chrono::microseconds(5);
  m.jitter = std::chrono::microseconds(50);
  LatencyStamper s(m, 2, 42);
  SimTime now = std::chrono::steady_clock::now();
  SimTime prev{};
  for (int i = 0; i < 200; ++i) {
    const SimTime t = s.stamp(msg(0, 1), now);
    EXPECT_GT(t, prev);
    prev = t;
    now += std::chrono::microseconds(1);
  }
}

TEST(LatencyStamper, IndependentChannelsDoNotClampEachOther) {
  LatencyModel m;
  m.base = std::chrono::microseconds(10);
  LatencyStamper s(m, 3, 1);
  const SimTime now = std::chrono::steady_clock::now();
  // Saturate channel 0->1 far into the future.
  SimTime last{};
  for (int i = 0; i < 50; ++i) last = s.stamp(msg(0, 1), now);
  // Channel 0->2 is unaffected by 0->1's history.
  const SimTime other = s.stamp(msg(0, 2), now);
  EXPECT_LT(other, last);
}

TEST(LatencyStamper, DeterministicForEqualSeeds) {
  LatencyModel m;
  m.base = std::chrono::microseconds(5);
  m.jitter = std::chrono::microseconds(20);
  LatencyStamper a(m, 2, 7);
  LatencyStamper b(m, 2, 7);
  const SimTime now = std::chrono::steady_clock::now();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.stamp(msg(0, 1), now), b.stamp(msg(0, 1), now));
  }
}

TEST(Message, WireBytesCountHeaderAndPayload) {
  Message m = msg(0, 1, 3);
  EXPECT_EQ(m.wire_bytes(), Message::kHeaderBytes + 3 * 8);
}

}  // namespace
}  // namespace mc::net
