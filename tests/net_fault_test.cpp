#include "net/fault.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "net/fabric.h"

namespace mc::net {
namespace {

Message make(Endpoint src, Endpoint dst, std::uint16_t kind, std::uint64_t a = 0) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.kind = kind;
  m.a = a;
  return m;
}

std::vector<std::uint64_t> drain(Fabric& f, Endpoint e) {
  std::vector<std::uint64_t> got;
  while (const auto m = f.mailbox(e).try_recv()) got.push_back(m->a);
  return got;
}

TEST(FaultInjector, SameSeedReplaysIdentically) {
  FaultPlan plan;
  plan.seed = 42;
  plan.drop_prob = 0.5;
  plan.dup_prob = 0.1;

  std::vector<std::uint64_t> runs[2];
  for (auto& run : runs) {
    Fabric f(2);
    f.inject_faults(plan);
    for (std::uint64_t i = 0; i < 500; ++i) f.send(make(0, 1, 1, i));
    run = drain(f, 1);
  }
  EXPECT_FALSE(runs[0].empty());
  EXPECT_LT(runs[0].size(), 500u);
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(FaultInjector, DropsRoughlyTheConfiguredFraction) {
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_prob = 0.3;
  Fabric f(2);
  f.inject_faults(plan);
  constexpr std::uint64_t kTotal = 2000;
  for (std::uint64_t i = 0; i < kTotal; ++i) f.send(make(0, 1, 1, i));
  const auto got = drain(f, 1);
  const auto snap = f.metrics();
  EXPECT_EQ(got.size() + snap.get("net.fault.dropped"), kTotal);
  EXPECT_NEAR(static_cast<double>(snap.get("net.fault.dropped")), 0.3 * kTotal,
              0.05 * kTotal);
  // Dropped messages still count as sent: loss happens in flight.
  EXPECT_EQ(f.messages_sent(), kTotal);
}

TEST(FaultInjector, PartitionWindowDropsByFabricSendIndex) {
  FaultPlan plan;
  FaultPlan::Partition part;
  part.group_a = {0};
  part.group_b = {1};
  part.from_send = 10;
  part.until_send = 20;
  plan.partitions.push_back(part);
  Fabric f(2);
  f.inject_faults(plan);
  for (std::uint64_t i = 0; i < 30; ++i) f.send(make(0, 1, 1, i));
  const auto got = drain(f, 1);
  std::vector<std::uint64_t> expected;
  for (std::uint64_t i = 0; i < 30; ++i) {
    if (i < 10 || i >= 20) expected.push_back(i);
  }
  EXPECT_EQ(got, expected);
  EXPECT_EQ(f.metrics().get("net.fault.partitioned"), 10u);
}

TEST(FaultInjector, PartitionLeavesOtherChannelsAlone) {
  FaultPlan plan;
  FaultPlan::Partition part;
  part.group_a = {0};
  part.group_b = {1};
  part.from_send = 0;
  part.until_send = 1000;
  plan.partitions.push_back(part);
  Fabric f(3);
  f.inject_faults(plan);
  for (std::uint64_t i = 0; i < 10; ++i) {
    f.send(make(0, 1, 1, i));  // partitioned
    f.send(make(0, 2, 1, i));  // unaffected
    f.send(make(2, 1, 1, i));  // unaffected
  }
  EXPECT_TRUE(drain(f, 1).size() == 10u);  // only the 2 -> 1 traffic
  EXPECT_EQ(drain(f, 2).size(), 10u);
  EXPECT_EQ(f.metrics().get("net.fault.partitioned"), 10u);
}

TEST(FaultInjector, CrashStopKillsTrafficBothWays) {
  FaultPlan plan;
  plan.crash_after_sends[0] = 5;
  Fabric f(2);
  f.inject_faults(plan);
  for (std::uint64_t i = 0; i < 10; ++i) f.send(make(0, 1, 1, i));
  f.send(make(1, 0, 1, 99));  // towards the corpse
  const auto got = drain(f, 1);
  EXPECT_EQ(got, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(drain(f, 0).empty());
  EXPECT_EQ(f.metrics().get("net.fault.crashed"), 6u);
}

TEST(FaultInjector, DelaySpikeHoldsDeliveryUntilTheFloor) {
  FaultPlan plan;
  plan.delay_prob = 1.0;
  plan.delay_floor = std::chrono::milliseconds(5);
  Fabric f(2);
  f.inject_faults(plan);
  f.send(make(0, 1, 1, 1));
  // The spike pushed deliver_at into the future: not deliverable yet.
  EXPECT_FALSE(f.mailbox(1).try_recv().has_value());
  const auto m = f.mailbox(1).recv();  // blocks until the stamp passes
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->a, 1u);
  EXPECT_EQ(f.metrics().get("net.fault.delayed"), 1u);
}

TEST(FaultInjector, DuplicatesDeliverAndAccountTwice) {
  FaultPlan plan;
  plan.dup_prob = 1.0;
  Fabric f(2);
  f.inject_faults(plan);
  for (std::uint64_t i = 0; i < 10; ++i) f.send(make(0, 1, 1, i));
  const auto got = drain(f, 1);
  EXPECT_EQ(got.size(), 20u);
  EXPECT_EQ(f.messages_sent(), 20u);  // duplicates are real wire traffic
  EXPECT_EQ(f.metrics().get("net.fault.duplicated"), 10u);
}

TEST(FaultInjector, ClearFaultsRestoresTheIdealChannelKeepingCounters) {
  FaultPlan plan;
  plan.drop_prob = 1.0;
  Fabric f(2);
  f.inject_faults(plan);
  for (std::uint64_t i = 0; i < 5; ++i) f.send(make(0, 1, 1, i));
  EXPECT_TRUE(drain(f, 1).empty());
  f.clear_faults();
  for (std::uint64_t i = 0; i < 5; ++i) f.send(make(0, 1, 1, i));
  EXPECT_EQ(drain(f, 1).size(), 5u);
  EXPECT_EQ(f.metrics().get("net.fault.dropped"), 5u);
}

}  // namespace
}  // namespace mc::net
