#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>

#include "common/stats.h"
#include "obs/json.h"

namespace mc::obs {
namespace {

MetricsSnapshot snap(std::initializer_list<std::pair<const std::string, std::uint64_t>> kv) {
  MetricsSnapshot s;
  s.values = kv;
  return s;
}

TEST(TimeSeriesIsGauge, SplitsKeysByKind) {
  // Histogram summary keys are levels; .count/.sum are monotone.
  EXPECT_TRUE(timeseries_is_gauge("lock.acquire_ns.mean"));
  EXPECT_TRUE(timeseries_is_gauge("lock.acquire_ns.p50"));
  EXPECT_TRUE(timeseries_is_gauge("lock.acquire_ns.p99"));
  EXPECT_TRUE(timeseries_is_gauge("lock.acquire_ns.max"));
  EXPECT_FALSE(timeseries_is_gauge("lock.acquire_ns.count"));
  EXPECT_FALSE(timeseries_is_gauge("lock.acquire_ns.sum"));
  // Resident-state sizes and rolling verdicts are levels.
  EXPECT_TRUE(timeseries_is_gauge("checker.live_nodes"));
  EXPECT_TRUE(timeseries_is_gauge("monitor.queued"));
  EXPECT_TRUE(timeseries_is_gauge("monitor.verdict.mixed"));
  EXPECT_TRUE(timeseries_is_gauge("monitor.structural_ok"));
  EXPECT_TRUE(timeseries_is_gauge("watchdog.blocked_waits"));
  // Everything else counts up.
  EXPECT_FALSE(timeseries_is_gauge("net.messages"));
  EXPECT_FALSE(timeseries_is_gauge("checker.ops"));
  EXPECT_FALSE(timeseries_is_gauge("monitor.enqueued"));
}

TEST(TimeSeries, FirstSampleIsTheBaseline) {
  TimeSeries ts;
  const auto r = ts.sample(snap({{"net.messages", 40}, {"checker.live_nodes", 7}}), 100);
  EXPECT_EQ(r.t_ms, 100u);
  EXPECT_EQ(r.dt_ms, 100u);  // interval since the sampler's epoch
  EXPECT_EQ(r.counters.at("net.messages"), 40u);
  EXPECT_EQ(r.gauges.at("checker.live_nodes"), 7u);
  EXPECT_EQ(ts.size(), 1u);
}

TEST(TimeSeries, CountersDeltaGaugesLevel) {
  TimeSeries ts;
  ts.sample(snap({{"net.messages", 40}, {"checker.live_nodes", 7}}), 100);
  const auto r = ts.sample(snap({{"net.messages", 100}, {"checker.live_nodes", 3}}), 350);
  EXPECT_EQ(r.t_ms, 350u);
  EXPECT_EQ(r.dt_ms, 250u);
  EXPECT_EQ(r.counters.at("net.messages"), 60u);    // delta
  EXPECT_EQ(r.gauges.at("checker.live_nodes"), 3u);  // current level, may shrink
}

TEST(TimeSeries, ResetCounterClampsToZeroDelta) {
  TimeSeries ts;
  ts.sample(snap({{"net.messages", 90}}), 100);
  const auto r = ts.sample(snap({{"net.messages", 10}}), 200);
  EXPECT_EQ(r.counters.at("net.messages"), 0u);  // went backwards: clamp, don't wrap
}

TEST(TimeSeries, NeverFiredKeysStayAbsent) {
  TimeSeries ts;
  ts.sample(snap({{"net.messages", 1}}), 100);
  const auto r = ts.sample(snap({{"net.messages", 2}, {"net.drops", 5}}), 200);
  // A key appearing mid-run deltas against an implicit zero baseline.
  EXPECT_EQ(r.counters.at("net.drops"), 5u);
  EXPECT_EQ(r.counters.count("never_fired"), 0u);
  EXPECT_EQ(r.gauges.count("never_fired"), 0u);
}

TEST(TimeSeries, GrowingHistogramRoundTrips) {
  // A histogram that keeps absorbing samples: .count/.sum advance as
  // deltas, the quantile levels track the current distribution.
  LatencyHistogram h;
  h.record_ns(1000);
  MetricsSnapshot s1;
  s1.add_histogram("op_ns", h);
  TimeSeries ts;
  ts.sample(s1, 100);

  h.record_ns(2000);
  h.record_ns(4000);
  MetricsSnapshot s2;
  s2.add_histogram("op_ns", h);
  const auto r = ts.sample(s2, 200);
  EXPECT_EQ(r.counters.at("op_ns.count"), 2u);
  EXPECT_EQ(r.counters.at("op_ns.sum"), 6000u);
  EXPECT_GE(r.gauges.at("op_ns.max"), 4000u);
  EXPECT_EQ(r.counters.count("op_ns.p50"), 0u);  // quantiles are gauges
  EXPECT_GT(r.gauges.at("op_ns.p50"), 0u);
}

TEST(TimeSeries, RingDropsOldestAtCapacity) {
  TimeSeries ts(2);
  ts.sample(snap({{"c", 1}}), 10);
  ts.sample(snap({{"c", 2}}), 20);
  ts.sample(snap({{"c", 3}}), 30);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.dropped(), 1u);
  const auto recs = ts.records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs.front().t_ms, 20u);  // oldest retained
  EXPECT_EQ(recs.back().t_ms, 30u);
}

TEST(TimeSeriesRecord, JsonlLineParsesWithExpectedShape) {
  TimeSeries ts;
  ts.sample(snap({{"net.messages", 100}, {"checker.live_nodes", 7}}), 500);
  const auto r = ts.sample(snap({{"net.messages", 600}, {"checker.live_nodes", 9}}), 1500);
  const auto doc = JsonValue::parse(r.to_jsonl());
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->kind, JsonValue::Kind::kObject);
  ASSERT_NE(doc->find("type"), nullptr);
  EXPECT_EQ(doc->find("type")->string, "sample");
  EXPECT_EQ(doc->find("t_ms")->uint_value, 1500u);
  EXPECT_EQ(doc->find("dt_ms")->uint_value, 1000u);
  const auto* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("net.messages")->uint_value, 500u);
  const auto* gauges = doc->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->find("checker.live_nodes")->uint_value, 9u);
  // Two-sample rate: 500 events over 1000 ms -> 500 events/s.
  const auto* rates = doc->find("rates");
  ASSERT_NE(rates, nullptr);
  EXPECT_EQ(rates->find("net.messages")->uint_value, 500u);
}

TEST(TimeSeriesRecord, BaselineRecordOmitsRatesWhenInstant) {
  TimeSeries ts;
  const auto r = ts.sample(snap({{"c", 3}}), 0);  // t=0: no interval yet
  const auto doc = JsonValue::parse(r.to_jsonl());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("rates"), nullptr);
}

TEST(TimeSeries, ToJsonlEmitsOneLinePerRecord) {
  TimeSeries ts;
  ts.sample(snap({{"c", 1}}), 10);
  ts.sample(snap({{"c", 2}}), 20);
  const std::string out = ts.to_jsonl();
  std::size_t lines = 0;
  for (const char ch : out) lines += ch == '\n';
  EXPECT_EQ(lines, 2u);
  // Every line is a complete JSON document.
  std::size_t start = 0;
  while (start < out.size()) {
    const auto end = out.find('\n', start);
    EXPECT_TRUE(JsonValue::parse(out.substr(start, end - start)).has_value());
    start = end + 1;
  }
}

TEST(MetricsSampler, StopTakesAFinalSample) {
  std::atomic<std::uint64_t> calls{0};
  MetricsSampler sampler(
      [&calls] {
        MetricsSnapshot s;
        s.values = {{"probe.calls", calls.fetch_add(1) + 1}};
        return s;
      },
      std::chrono::hours(1));  // period never fires: only the stop sample
  sampler.stop();
  EXPECT_GE(sampler.series().size(), 1u);
  EXPECT_GE(calls.load(), 1u);
  sampler.stop();  // idempotent
}

TEST(MetricsSampler, PeriodicSamplesAccumulate) {
  std::atomic<std::uint64_t> n{0};
  MetricsSampler sampler(
      [&n] {
        MetricsSnapshot s;
        s.values = {{"ticks", n.fetch_add(1)}};
        return s;
      },
      std::chrono::milliseconds(5));
  while (n.load() < 3) std::this_thread::yield();
  sampler.stop();
  EXPECT_GE(sampler.series().size(), 3u);
  // Timestamps are monotone non-decreasing.
  const auto recs = sampler.series().records();
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LE(recs[i - 1].t_ms, recs[i].t_ms);
  }
}

}  // namespace
}  // namespace mc::obs
